# Empty compiler generated dependencies file for test_dfa_index.
# This may be replaced when dependencies are built.
