file(REMOVE_RECURSE
  "CMakeFiles/test_dfa_index.dir/test_dfa_index.cpp.o"
  "CMakeFiles/test_dfa_index.dir/test_dfa_index.cpp.o.d"
  "test_dfa_index"
  "test_dfa_index.pdb"
  "test_dfa_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfa_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
