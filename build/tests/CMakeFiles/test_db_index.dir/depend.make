# Empty dependencies file for test_db_index.
# This may be replaced when dependencies are built.
