file(REMOVE_RECURSE
  "CMakeFiles/test_db_index.dir/test_db_index.cpp.o"
  "CMakeFiles/test_db_index.dir/test_db_index.cpp.o.d"
  "test_db_index"
  "test_db_index.pdb"
  "test_db_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
