# Empty dependencies file for test_fragment_assembly.
# This may be replaced when dependencies are built.
