file(REMOVE_RECURSE
  "CMakeFiles/test_fragment_assembly.dir/test_fragment_assembly.cpp.o"
  "CMakeFiles/test_fragment_assembly.dir/test_fragment_assembly.cpp.o.d"
  "test_fragment_assembly"
  "test_fragment_assembly.pdb"
  "test_fragment_assembly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fragment_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
