file(REMOVE_RECURSE
  "CMakeFiles/test_multimatrix.dir/test_multimatrix.cpp.o"
  "CMakeFiles/test_multimatrix.dir/test_multimatrix.cpp.o.d"
  "test_multimatrix"
  "test_multimatrix.pdb"
  "test_multimatrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multimatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
