# Empty compiler generated dependencies file for test_multimatrix.
# This may be replaced when dependencies are built.
