file(REMOVE_RECURSE
  "CMakeFiles/test_two_hit.dir/test_two_hit.cpp.o"
  "CMakeFiles/test_two_hit.dir/test_two_hit.cpp.o.d"
  "test_two_hit"
  "test_two_hit.pdb"
  "test_two_hit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_hit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
