# Empty dependencies file for test_two_hit.
# This may be replaced when dependencies are built.
