file(REMOVE_RECURSE
  "CMakeFiles/test_smith_waterman.dir/test_smith_waterman.cpp.o"
  "CMakeFiles/test_smith_waterman.dir/test_smith_waterman.cpp.o.d"
  "test_smith_waterman"
  "test_smith_waterman.pdb"
  "test_smith_waterman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smith_waterman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
