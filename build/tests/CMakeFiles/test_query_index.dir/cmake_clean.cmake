file(REMOVE_RECURSE
  "CMakeFiles/test_query_index.dir/test_query_index.cpp.o"
  "CMakeFiles/test_query_index.dir/test_query_index.cpp.o.d"
  "test_query_index"
  "test_query_index.pdb"
  "test_query_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
