# Empty dependencies file for test_query_index.
# This may be replaced when dependencies are built.
