
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_partition.cpp" "tests/CMakeFiles/test_partition.dir/test_partition.cpp.o" "gcc" "tests/CMakeFiles/test_partition.dir/test_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/mublastp_report.dir/DependInfo.cmake"
  "/root/repo/build/src/fasta/CMakeFiles/mublastp_fasta.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/mublastp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mublastp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mublastp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/mublastp_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mublastp_index.dir/DependInfo.cmake"
  "/root/repo/build/src/score/CMakeFiles/mublastp_score.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mublastp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mublastp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
