# Empty dependencies file for test_ungapped.
# This may be replaced when dependencies are built.
