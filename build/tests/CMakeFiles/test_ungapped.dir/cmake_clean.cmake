file(REMOVE_RECURSE
  "CMakeFiles/test_ungapped.dir/test_ungapped.cpp.o"
  "CMakeFiles/test_ungapped.dir/test_ungapped.cpp.o.d"
  "test_ungapped"
  "test_ungapped.pdb"
  "test_ungapped[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ungapped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
