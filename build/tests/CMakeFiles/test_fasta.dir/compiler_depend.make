# Empty compiler generated dependencies file for test_fasta.
# This may be replaced when dependencies are built.
