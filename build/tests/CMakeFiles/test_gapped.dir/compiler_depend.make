# Empty compiler generated dependencies file for test_gapped.
# This may be replaced when dependencies are built.
