file(REMOVE_RECURSE
  "CMakeFiles/test_gapped.dir/test_gapped.cpp.o"
  "CMakeFiles/test_gapped.dir/test_gapped.cpp.o.d"
  "test_gapped"
  "test_gapped.pdb"
  "test_gapped[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gapped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
