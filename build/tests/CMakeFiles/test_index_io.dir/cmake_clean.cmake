file(REMOVE_RECURSE
  "CMakeFiles/test_index_io.dir/test_index_io.cpp.o"
  "CMakeFiles/test_index_io.dir/test_index_io.cpp.o.d"
  "test_index_io"
  "test_index_io.pdb"
  "test_index_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
