file(REMOVE_RECURSE
  "CMakeFiles/test_karlin.dir/test_karlin.cpp.o"
  "CMakeFiles/test_karlin.dir/test_karlin.cpp.o.d"
  "test_karlin"
  "test_karlin.pdb"
  "test_karlin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_karlin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
