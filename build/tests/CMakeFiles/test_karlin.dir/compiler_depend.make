# Empty compiler generated dependencies file for test_karlin.
# This may be replaced when dependencies are built.
