# Empty dependencies file for test_gapped_stats.
# This may be replaced when dependencies are built.
