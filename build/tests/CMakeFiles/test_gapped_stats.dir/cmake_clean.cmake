file(REMOVE_RECURSE
  "CMakeFiles/test_gapped_stats.dir/test_gapped_stats.cpp.o"
  "CMakeFiles/test_gapped_stats.dir/test_gapped_stats.cpp.o.d"
  "test_gapped_stats"
  "test_gapped_stats.pdb"
  "test_gapped_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gapped_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
