# Empty compiler generated dependencies file for test_longseq.
# This may be replaced when dependencies are built.
