file(REMOVE_RECURSE
  "CMakeFiles/test_longseq.dir/test_longseq.cpp.o"
  "CMakeFiles/test_longseq.dir/test_longseq.cpp.o.d"
  "test_longseq"
  "test_longseq.pdb"
  "test_longseq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_longseq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
