# Empty compiler generated dependencies file for irregularity_profile.
# This may be replaced when dependencies are built.
