file(REMOVE_RECURSE
  "CMakeFiles/irregularity_profile.dir/irregularity_profile.cpp.o"
  "CMakeFiles/irregularity_profile.dir/irregularity_profile.cpp.o.d"
  "irregularity_profile"
  "irregularity_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregularity_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
