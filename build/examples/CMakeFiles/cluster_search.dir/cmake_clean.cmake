file(REMOVE_RECURSE
  "CMakeFiles/cluster_search.dir/cluster_search.cpp.o"
  "CMakeFiles/cluster_search.dir/cluster_search.cpp.o.d"
  "cluster_search"
  "cluster_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
