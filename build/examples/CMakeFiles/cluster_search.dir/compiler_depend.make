# Empty compiler generated dependencies file for cluster_search.
# This may be replaced when dependencies are built.
