file(REMOVE_RECURSE
  "CMakeFiles/fig7_lengths.dir/fig7_lengths.cpp.o"
  "CMakeFiles/fig7_lengths.dir/fig7_lengths.cpp.o.d"
  "fig7_lengths"
  "fig7_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
