# Empty compiler generated dependencies file for fig7_lengths.
# This may be replaced when dependencies are built.
