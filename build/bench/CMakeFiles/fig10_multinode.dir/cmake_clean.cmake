file(REMOVE_RECURSE
  "CMakeFiles/fig10_multinode.dir/fig10_multinode.cpp.o"
  "CMakeFiles/fig10_multinode.dir/fig10_multinode.cpp.o.d"
  "fig10_multinode"
  "fig10_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
