# Empty compiler generated dependencies file for fig10_multinode.
# This may be replaced when dependencies are built.
