# Empty dependencies file for abl_longseq.
# This may be replaced when dependencies are built.
