file(REMOVE_RECURSE
  "CMakeFiles/abl_longseq.dir/abl_longseq.cpp.o"
  "CMakeFiles/abl_longseq.dir/abl_longseq.cpp.o.d"
  "abl_longseq"
  "abl_longseq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_longseq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
