# Empty compiler generated dependencies file for abl_sort.
# This may be replaced when dependencies are built.
