file(REMOVE_RECURSE
  "CMakeFiles/abl_sort.dir/abl_sort.cpp.o"
  "CMakeFiles/abl_sort.dir/abl_sort.cpp.o.d"
  "abl_sort"
  "abl_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
