# Empty dependencies file for abl_decouple.
# This may be replaced when dependencies are built.
