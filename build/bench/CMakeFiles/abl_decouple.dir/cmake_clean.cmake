file(REMOVE_RECURSE
  "CMakeFiles/abl_decouple.dir/abl_decouple.cpp.o"
  "CMakeFiles/abl_decouple.dir/abl_decouple.cpp.o.d"
  "abl_decouple"
  "abl_decouple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_decouple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
