file(REMOVE_RECURSE
  "CMakeFiles/fig8_blocksize.dir/fig8_blocksize.cpp.o"
  "CMakeFiles/fig8_blocksize.dir/fig8_blocksize.cpp.o.d"
  "fig8_blocksize"
  "fig8_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
