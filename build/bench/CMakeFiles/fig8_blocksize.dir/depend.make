# Empty dependencies file for fig8_blocksize.
# This may be replaced when dependencies are built.
