file(REMOVE_RECURSE
  "CMakeFiles/abl_looporder.dir/abl_looporder.cpp.o"
  "CMakeFiles/abl_looporder.dir/abl_looporder.cpp.o.d"
  "abl_looporder"
  "abl_looporder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_looporder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
