# Empty dependencies file for abl_looporder.
# This may be replaced when dependencies are built.
