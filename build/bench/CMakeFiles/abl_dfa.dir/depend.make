# Empty dependencies file for abl_dfa.
# This may be replaced when dependencies are built.
