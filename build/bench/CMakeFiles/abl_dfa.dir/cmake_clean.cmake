file(REMOVE_RECURSE
  "CMakeFiles/abl_dfa.dir/abl_dfa.cpp.o"
  "CMakeFiles/abl_dfa.dir/abl_dfa.cpp.o.d"
  "abl_dfa"
  "abl_dfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
