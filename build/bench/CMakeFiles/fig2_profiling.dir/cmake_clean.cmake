file(REMOVE_RECURSE
  "CMakeFiles/fig2_profiling.dir/fig2_profiling.cpp.o"
  "CMakeFiles/fig2_profiling.dir/fig2_profiling.cpp.o.d"
  "fig2_profiling"
  "fig2_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
