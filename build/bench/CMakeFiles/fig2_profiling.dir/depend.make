# Empty dependencies file for fig2_profiling.
# This may be replaced when dependencies are built.
