# Empty dependencies file for fig9_singlenode.
# This may be replaced when dependencies are built.
