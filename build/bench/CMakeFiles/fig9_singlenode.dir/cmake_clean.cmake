file(REMOVE_RECURSE
  "CMakeFiles/fig9_singlenode.dir/fig9_singlenode.cpp.o"
  "CMakeFiles/fig9_singlenode.dir/fig9_singlenode.cpp.o.d"
  "fig9_singlenode"
  "fig9_singlenode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_singlenode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
