file(REMOVE_RECURSE
  "CMakeFiles/fig6_prefilter.dir/fig6_prefilter.cpp.o"
  "CMakeFiles/fig6_prefilter.dir/fig6_prefilter.cpp.o.d"
  "fig6_prefilter"
  "fig6_prefilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
