# Empty dependencies file for fig6_prefilter.
# This may be replaced when dependencies are built.
