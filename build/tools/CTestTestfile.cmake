# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_verify_engines "/root/repo/build/tools/mublastp_verify" "--residues=131072" "--queries=2" "--qlen=96")
set_tests_properties(tool_verify_engines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_synth_roundtrip "/root/repo/build/tools/mublastp_synthgen" "--preset=envnr" "--residues=65536" "--out=/root/repo/build/itest_db.fasta" "--queries=1" "--qlen=64" "--qout=/root/repo/build/itest_q.fasta")
set_tests_properties(tool_synth_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_makedb "/root/repo/build/tools/mublastp_makedb" "--in=/root/repo/build/itest_db.fasta" "--out=/root/repo/build/itest_db.mbi" "--block-kb=64")
set_tests_properties(tool_makedb PROPERTIES  DEPENDS "tool_synth_roundtrip" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_search "/root/repo/build/tools/mublastp_search" "--index=/root/repo/build/itest_db.mbi" "--query=/root/repo/build/itest_q.fasta" "--outfmt=tabular")
set_tests_properties(tool_search PROPERTIES  DEPENDS "tool_makedb" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_dbinfo "/root/repo/build/tools/mublastp_dbinfo" "--index=/root/repo/build/itest_db.mbi")
set_tests_properties(tool_dbinfo PROPERTIES  DEPENDS "tool_makedb" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
