file(REMOVE_RECURSE
  "CMakeFiles/mublastp_search.dir/mublastp_search.cpp.o"
  "CMakeFiles/mublastp_search.dir/mublastp_search.cpp.o.d"
  "mublastp_search"
  "mublastp_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
