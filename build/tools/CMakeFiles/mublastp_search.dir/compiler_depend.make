# Empty compiler generated dependencies file for mublastp_search.
# This may be replaced when dependencies are built.
