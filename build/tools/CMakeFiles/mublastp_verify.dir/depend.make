# Empty dependencies file for mublastp_verify.
# This may be replaced when dependencies are built.
