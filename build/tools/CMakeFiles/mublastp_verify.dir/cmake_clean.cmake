file(REMOVE_RECURSE
  "CMakeFiles/mublastp_verify.dir/mublastp_verify.cpp.o"
  "CMakeFiles/mublastp_verify.dir/mublastp_verify.cpp.o.d"
  "mublastp_verify"
  "mublastp_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
