# Empty dependencies file for mublastp_synthgen.
# This may be replaced when dependencies are built.
