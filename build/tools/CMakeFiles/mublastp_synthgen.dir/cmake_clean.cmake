file(REMOVE_RECURSE
  "CMakeFiles/mublastp_synthgen.dir/mublastp_synthgen.cpp.o"
  "CMakeFiles/mublastp_synthgen.dir/mublastp_synthgen.cpp.o.d"
  "mublastp_synthgen"
  "mublastp_synthgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_synthgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
