file(REMOVE_RECURSE
  "CMakeFiles/mublastp_makedb.dir/mublastp_makedb.cpp.o"
  "CMakeFiles/mublastp_makedb.dir/mublastp_makedb.cpp.o.d"
  "mublastp_makedb"
  "mublastp_makedb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_makedb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
