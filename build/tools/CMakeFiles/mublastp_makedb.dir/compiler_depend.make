# Empty compiler generated dependencies file for mublastp_makedb.
# This may be replaced when dependencies are built.
