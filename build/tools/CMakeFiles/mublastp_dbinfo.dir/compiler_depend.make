# Empty compiler generated dependencies file for mublastp_dbinfo.
# This may be replaced when dependencies are built.
