file(REMOVE_RECURSE
  "CMakeFiles/mublastp_dbinfo.dir/mublastp_dbinfo.cpp.o"
  "CMakeFiles/mublastp_dbinfo.dir/mublastp_dbinfo.cpp.o.d"
  "mublastp_dbinfo"
  "mublastp_dbinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_dbinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
