file(REMOVE_RECURSE
  "CMakeFiles/mublastp_synth.dir/synth.cpp.o"
  "CMakeFiles/mublastp_synth.dir/synth.cpp.o.d"
  "libmublastp_synth.a"
  "libmublastp_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
