file(REMOVE_RECURSE
  "libmublastp_synth.a"
)
