# Empty dependencies file for mublastp_synth.
# This may be replaced when dependencies are built.
