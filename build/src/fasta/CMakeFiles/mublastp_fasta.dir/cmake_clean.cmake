file(REMOVE_RECURSE
  "CMakeFiles/mublastp_fasta.dir/fasta.cpp.o"
  "CMakeFiles/mublastp_fasta.dir/fasta.cpp.o.d"
  "libmublastp_fasta.a"
  "libmublastp_fasta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_fasta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
