file(REMOVE_RECURSE
  "libmublastp_fasta.a"
)
