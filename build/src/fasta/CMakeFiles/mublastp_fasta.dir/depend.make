# Empty dependencies file for mublastp_fasta.
# This may be replaced when dependencies are built.
