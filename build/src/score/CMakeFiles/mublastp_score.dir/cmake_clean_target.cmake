file(REMOVE_RECURSE
  "libmublastp_score.a"
)
