# Empty dependencies file for mublastp_score.
# This may be replaced when dependencies are built.
