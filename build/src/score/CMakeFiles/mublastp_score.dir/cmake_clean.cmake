file(REMOVE_RECURSE
  "CMakeFiles/mublastp_score.dir/karlin.cpp.o"
  "CMakeFiles/mublastp_score.dir/karlin.cpp.o.d"
  "CMakeFiles/mublastp_score.dir/matrix.cpp.o"
  "CMakeFiles/mublastp_score.dir/matrix.cpp.o.d"
  "libmublastp_score.a"
  "libmublastp_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
