
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/score/karlin.cpp" "src/score/CMakeFiles/mublastp_score.dir/karlin.cpp.o" "gcc" "src/score/CMakeFiles/mublastp_score.dir/karlin.cpp.o.d"
  "/root/repo/src/score/matrix.cpp" "src/score/CMakeFiles/mublastp_score.dir/matrix.cpp.o" "gcc" "src/score/CMakeFiles/mublastp_score.dir/matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mublastp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
