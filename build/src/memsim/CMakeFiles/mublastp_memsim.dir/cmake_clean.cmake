file(REMOVE_RECURSE
  "CMakeFiles/mublastp_memsim.dir/memsim.cpp.o"
  "CMakeFiles/mublastp_memsim.dir/memsim.cpp.o.d"
  "libmublastp_memsim.a"
  "libmublastp_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
