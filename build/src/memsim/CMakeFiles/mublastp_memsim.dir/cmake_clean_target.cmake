file(REMOVE_RECURSE
  "libmublastp_memsim.a"
)
