# Empty dependencies file for mublastp_memsim.
# This may be replaced when dependencies are built.
