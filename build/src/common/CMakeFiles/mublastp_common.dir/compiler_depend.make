# Empty compiler generated dependencies file for mublastp_common.
# This may be replaced when dependencies are built.
