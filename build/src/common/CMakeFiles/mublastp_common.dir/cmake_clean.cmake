file(REMOVE_RECURSE
  "CMakeFiles/mublastp_common.dir/alphabet.cpp.o"
  "CMakeFiles/mublastp_common.dir/alphabet.cpp.o.d"
  "CMakeFiles/mublastp_common.dir/error.cpp.o"
  "CMakeFiles/mublastp_common.dir/error.cpp.o.d"
  "CMakeFiles/mublastp_common.dir/sequence.cpp.o"
  "CMakeFiles/mublastp_common.dir/sequence.cpp.o.d"
  "libmublastp_common.a"
  "libmublastp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
