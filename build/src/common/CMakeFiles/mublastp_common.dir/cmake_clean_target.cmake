file(REMOVE_RECURSE
  "libmublastp_common.a"
)
