# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("score")
subdirs("fasta")
subdirs("synth")
subdirs("sort")
subdirs("memsim")
subdirs("index")
subdirs("core")
subdirs("baseline")
subdirs("report")
subdirs("cluster")
