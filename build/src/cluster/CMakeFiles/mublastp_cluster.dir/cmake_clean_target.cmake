file(REMOVE_RECURSE
  "libmublastp_cluster.a"
)
