file(REMOVE_RECURSE
  "CMakeFiles/mublastp_cluster.dir/cluster.cpp.o"
  "CMakeFiles/mublastp_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/mublastp_cluster.dir/partition.cpp.o"
  "CMakeFiles/mublastp_cluster.dir/partition.cpp.o.d"
  "libmublastp_cluster.a"
  "libmublastp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
