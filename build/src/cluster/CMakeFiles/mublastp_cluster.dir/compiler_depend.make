# Empty compiler generated dependencies file for mublastp_cluster.
# This may be replaced when dependencies are built.
