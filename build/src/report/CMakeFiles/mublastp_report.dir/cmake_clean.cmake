file(REMOVE_RECURSE
  "CMakeFiles/mublastp_report.dir/report.cpp.o"
  "CMakeFiles/mublastp_report.dir/report.cpp.o.d"
  "libmublastp_report.a"
  "libmublastp_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
