file(REMOVE_RECURSE
  "libmublastp_report.a"
)
