# Empty compiler generated dependencies file for mublastp_report.
# This may be replaced when dependencies are built.
