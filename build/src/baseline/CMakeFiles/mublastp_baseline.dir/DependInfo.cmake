
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/gapped_stats.cpp" "src/baseline/CMakeFiles/mublastp_baseline.dir/gapped_stats.cpp.o" "gcc" "src/baseline/CMakeFiles/mublastp_baseline.dir/gapped_stats.cpp.o.d"
  "/root/repo/src/baseline/interleaved_engine.cpp" "src/baseline/CMakeFiles/mublastp_baseline.dir/interleaved_engine.cpp.o" "gcc" "src/baseline/CMakeFiles/mublastp_baseline.dir/interleaved_engine.cpp.o.d"
  "/root/repo/src/baseline/query_engine.cpp" "src/baseline/CMakeFiles/mublastp_baseline.dir/query_engine.cpp.o" "gcc" "src/baseline/CMakeFiles/mublastp_baseline.dir/query_engine.cpp.o.d"
  "/root/repo/src/baseline/smith_waterman.cpp" "src/baseline/CMakeFiles/mublastp_baseline.dir/smith_waterman.cpp.o" "gcc" "src/baseline/CMakeFiles/mublastp_baseline.dir/smith_waterman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mublastp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/score/CMakeFiles/mublastp_score.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mublastp_index.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/mublastp_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mublastp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
