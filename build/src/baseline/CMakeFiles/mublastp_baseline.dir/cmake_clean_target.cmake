file(REMOVE_RECURSE
  "libmublastp_baseline.a"
)
