file(REMOVE_RECURSE
  "CMakeFiles/mublastp_baseline.dir/gapped_stats.cpp.o"
  "CMakeFiles/mublastp_baseline.dir/gapped_stats.cpp.o.d"
  "CMakeFiles/mublastp_baseline.dir/interleaved_engine.cpp.o"
  "CMakeFiles/mublastp_baseline.dir/interleaved_engine.cpp.o.d"
  "CMakeFiles/mublastp_baseline.dir/query_engine.cpp.o"
  "CMakeFiles/mublastp_baseline.dir/query_engine.cpp.o.d"
  "CMakeFiles/mublastp_baseline.dir/smith_waterman.cpp.o"
  "CMakeFiles/mublastp_baseline.dir/smith_waterman.cpp.o.d"
  "libmublastp_baseline.a"
  "libmublastp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
