# Empty compiler generated dependencies file for mublastp_baseline.
# This may be replaced when dependencies are built.
