file(REMOVE_RECURSE
  "libmublastp_index.a"
)
