
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/db_index.cpp" "src/index/CMakeFiles/mublastp_index.dir/db_index.cpp.o" "gcc" "src/index/CMakeFiles/mublastp_index.dir/db_index.cpp.o.d"
  "/root/repo/src/index/db_index_io.cpp" "src/index/CMakeFiles/mublastp_index.dir/db_index_io.cpp.o" "gcc" "src/index/CMakeFiles/mublastp_index.dir/db_index_io.cpp.o.d"
  "/root/repo/src/index/dfa_index.cpp" "src/index/CMakeFiles/mublastp_index.dir/dfa_index.cpp.o" "gcc" "src/index/CMakeFiles/mublastp_index.dir/dfa_index.cpp.o.d"
  "/root/repo/src/index/neighbor.cpp" "src/index/CMakeFiles/mublastp_index.dir/neighbor.cpp.o" "gcc" "src/index/CMakeFiles/mublastp_index.dir/neighbor.cpp.o.d"
  "/root/repo/src/index/query_index.cpp" "src/index/CMakeFiles/mublastp_index.dir/query_index.cpp.o" "gcc" "src/index/CMakeFiles/mublastp_index.dir/query_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mublastp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/score/CMakeFiles/mublastp_score.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
