file(REMOVE_RECURSE
  "CMakeFiles/mublastp_index.dir/db_index.cpp.o"
  "CMakeFiles/mublastp_index.dir/db_index.cpp.o.d"
  "CMakeFiles/mublastp_index.dir/db_index_io.cpp.o"
  "CMakeFiles/mublastp_index.dir/db_index_io.cpp.o.d"
  "CMakeFiles/mublastp_index.dir/dfa_index.cpp.o"
  "CMakeFiles/mublastp_index.dir/dfa_index.cpp.o.d"
  "CMakeFiles/mublastp_index.dir/neighbor.cpp.o"
  "CMakeFiles/mublastp_index.dir/neighbor.cpp.o.d"
  "CMakeFiles/mublastp_index.dir/query_index.cpp.o"
  "CMakeFiles/mublastp_index.dir/query_index.cpp.o.d"
  "libmublastp_index.a"
  "libmublastp_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
