# Empty dependencies file for mublastp_index.
# This may be replaced when dependencies are built.
