# Empty dependencies file for mublastp_core.
# This may be replaced when dependencies are built.
