
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gapped.cpp" "src/core/CMakeFiles/mublastp_core.dir/gapped.cpp.o" "gcc" "src/core/CMakeFiles/mublastp_core.dir/gapped.cpp.o.d"
  "/root/repo/src/core/mublastp_engine.cpp" "src/core/CMakeFiles/mublastp_core.dir/mublastp_engine.cpp.o" "gcc" "src/core/CMakeFiles/mublastp_core.dir/mublastp_engine.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/mublastp_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/mublastp_core.dir/params.cpp.o.d"
  "/root/repo/src/core/results.cpp" "src/core/CMakeFiles/mublastp_core.dir/results.cpp.o" "gcc" "src/core/CMakeFiles/mublastp_core.dir/results.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mublastp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/score/CMakeFiles/mublastp_score.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mublastp_index.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/mublastp_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
