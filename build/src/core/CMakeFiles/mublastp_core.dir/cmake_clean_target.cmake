file(REMOVE_RECURSE
  "libmublastp_core.a"
)
