file(REMOVE_RECURSE
  "CMakeFiles/mublastp_core.dir/gapped.cpp.o"
  "CMakeFiles/mublastp_core.dir/gapped.cpp.o.d"
  "CMakeFiles/mublastp_core.dir/mublastp_engine.cpp.o"
  "CMakeFiles/mublastp_core.dir/mublastp_engine.cpp.o.d"
  "CMakeFiles/mublastp_core.dir/params.cpp.o"
  "CMakeFiles/mublastp_core.dir/params.cpp.o.d"
  "CMakeFiles/mublastp_core.dir/results.cpp.o"
  "CMakeFiles/mublastp_core.dir/results.cpp.o.d"
  "libmublastp_core.a"
  "libmublastp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mublastp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
