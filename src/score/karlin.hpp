// Karlin-Altschul statistics for local alignment significance.
//
// BLAST converts raw alignment scores S into bit scores S' = (lambda*S -
// ln K) / ln 2 and E-values E = K*m*n*exp(-lambda*S). lambda is the unique
// positive solution of sum_ij p_i p_j exp(lambda * s_ij) = 1 for background
// residue frequencies p; K is estimated with the standard geometric-series
// approximation. These statistics rank the final results (paper Section
// II-A, stage 4) and gate ungapped/gapped cutoffs.
#pragma once

#include <array>

#include "score/matrix.hpp"

namespace mublastp {

/// Robinson & Robinson (1991) background amino-acid frequencies, indexed by
/// the standard 20 residues of the library alphabet; ambiguity codes get 0.
const std::array<double, kAlphabetSize>& robinson_frequencies();

/// Ungapped Karlin-Altschul parameters for a scoring system.
struct KarlinParams {
  double lambda = 0.0;  ///< scale of the scoring system (nats per raw unit)
  double K = 0.0;       ///< search-space correction constant
  double H = 0.0;       ///< relative entropy (nats per aligned pair)
};

/// Computes ungapped Karlin-Altschul parameters for `matrix` under background
/// frequencies `freqs`. Throws mublastp::Error if the scoring system has a
/// non-negative expected score (no positive lambda exists).
KarlinParams compute_karlin(const ScoreMatrix& matrix,
                            const std::array<double, kAlphabetSize>& freqs);

/// Convenience overload using Robinson-Robinson frequencies.
KarlinParams compute_karlin(const ScoreMatrix& matrix);

/// Gapped parameters are not derivable analytically; BLAST ships lookup
/// tables fitted by simulation. Returns the published values for common
/// (matrix, gap open, gap extend) triples, falling back to the ungapped
/// parameters scaled by the NCBI convention when the triple is unknown.
KarlinParams gapped_params(const ScoreMatrix& matrix, Score gap_open,
                           Score gap_extend);

/// Bit score of a raw score under `params`.
double bit_score(Score raw, const KarlinParams& params);

/// E-value of a raw score for query length m and database length n.
double evalue(Score raw, std::size_t m, std::size_t n,
              const KarlinParams& params);

/// Inverse of evalue: the minimum raw score whose E-value is <= `target` for
/// the given search-space size. Used to derive reporting cutoffs.
Score cutoff_for_evalue(double target, std::size_t m, std::size_t n,
                        const KarlinParams& params);

}  // namespace mublastp
