// Substitution matrices for protein alignment.
//
// All matrices are 24x24 over the alphabet ordering in common/alphabet.hpp
// (ARNDCQEGHILKMFPSTWYVBZX*). BLOSUM62 is the default for BLASTP and is the
// matrix used throughout the paper's evaluation; BLOSUM50/80 and PAM250 are
// provided for completeness of the public API.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "common/alphabet.hpp"

namespace mublastp {

/// Raw alignment score type. BLASTP raw scores fit easily in 32 bits.
using Score = std::int32_t;

/// A 24x24 substitution matrix with flat row-major storage.
class ScoreMatrix {
 public:
  ScoreMatrix(std::string_view name,
              const std::array<std::array<Score, kAlphabetSize>, kAlphabetSize>&
                  cells);

  /// Score of aligning residues a and b.
  Score operator()(Residue a, Residue b) const {
    return cells_[static_cast<std::size_t>(a) * kAlphabetSize + b];
  }

  /// Row for residue a (contiguous, useful for inner loops).
  std::span<const Score, kAlphabetSize> row(Residue a) const {
    return std::span<const Score, kAlphabetSize>(
        cells_.data() + static_cast<std::size_t>(a) * kAlphabetSize,
        kAlphabetSize);
  }

  /// Human-readable matrix name, e.g. "BLOSUM62".
  std::string_view name() const { return name_; }

  /// Highest score in the matrix (used for extension bound reasoning).
  Score max_score() const { return max_score_; }

  /// Lowest score in the matrix.
  Score min_score() const { return min_score_; }

 private:
  std::array<Score, kAlphabetSize * kAlphabetSize> cells_;
  std::string_view name_;
  Score max_score_;
  Score min_score_;
};

/// The BLOSUM62 matrix (BLASTP default; used in the paper's experiments).
const ScoreMatrix& blosum62();
/// The BLOSUM50 matrix.
const ScoreMatrix& blosum50();
/// The BLOSUM80 matrix.
const ScoreMatrix& blosum80();
/// The PAM250 matrix.
const ScoreMatrix& pam250();

/// Looks a matrix up by name ("BLOSUM62", "BLOSUM50", "BLOSUM80", "PAM250");
/// throws mublastp::Error for unknown names.
const ScoreMatrix& matrix_by_name(std::string_view name);

}  // namespace mublastp
