#include "score/karlin.hpp"

#include <cmath>
#include <map>
#include <tuple>

#include "common/error.hpp"

namespace mublastp {
namespace {

// Robinson & Robinson (1991), "Distribution of glutamine and asparagine
// residues...", as used by NCBI BLAST for protein statistics. Order matches
// the library alphabet ARNDCQEGHILKMFPSTWYV.
constexpr std::array<double, 20> kRobinson20 = {
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295,
    0.07377, 0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856,
    0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441};

// sum_ij p_i p_j exp(lambda * s_ij) - 1; strictly increasing in lambda for
// lambda > 0 when the expected score is negative and a positive score exists.
double restricted_sum(const ScoreMatrix& m,
                      const std::array<double, kAlphabetSize>& p,
                      double lambda) {
  double sum = 0.0;
  for (int a = 0; a < 20; ++a) {
    for (int b = 0; b < 20; ++b) {
      sum += p[a] * p[b] *
             std::exp(lambda * static_cast<double>(
                                   m(static_cast<Residue>(a),
                                     static_cast<Residue>(b))));
    }
  }
  return sum - 1.0;
}

}  // namespace

const std::array<double, kAlphabetSize>& robinson_frequencies() {
  static const std::array<double, kAlphabetSize> freqs = [] {
    std::array<double, kAlphabetSize> f{};
    for (int i = 0; i < 20; ++i) f[i] = kRobinson20[i];
    return f;
  }();
  return freqs;
}

KarlinParams compute_karlin(const ScoreMatrix& matrix,
                            const std::array<double, kAlphabetSize>& freqs) {
  // Validate: expected score must be negative, max score positive.
  double expected = 0.0;
  bool has_positive = false;
  for (int a = 0; a < 20; ++a) {
    for (int b = 0; b < 20; ++b) {
      const Score s =
          matrix(static_cast<Residue>(a), static_cast<Residue>(b));
      expected += freqs[a] * freqs[b] * s;
      has_positive |= (s > 0);
    }
  }
  MUBLASTP_CHECK(expected < 0.0,
                 "scoring system has non-negative expected score");
  MUBLASTP_CHECK(has_positive, "scoring system has no positive score");

  // Bisection for lambda: restricted_sum is negative at 0+ and grows without
  // bound, so bracket then bisect to machine-level tolerance.
  double lo = 1e-6;
  double hi = 1.0;
  while (restricted_sum(matrix, freqs, hi) < 0.0) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (restricted_sum(matrix, freqs, mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double lambda = 0.5 * (lo + hi);

  // Relative entropy H = lambda * sum_ij q_ij s_ij where q_ij is the target
  // (aligned-pair) distribution p_i p_j exp(lambda s_ij).
  double H = 0.0;
  for (int a = 0; a < 20; ++a) {
    for (int b = 0; b < 20; ++b) {
      const double s = static_cast<double>(
          matrix(static_cast<Residue>(a), static_cast<Residue>(b)));
      H += freqs[a] * freqs[b] * std::exp(lambda * s) * lambda * s;
    }
  }

  // K: the exact Karlin-Altschul K requires an iterative lattice sum over
  // alignment lengths (NCBI BlastKarlinLHtoK). For the matrices this
  // library ships, the published ungapped values are used directly (they
  // are constants of the scoring system, like the matrix cells themselves);
  // unknown scoring systems fall back to a first-order estimate calibrated
  // on BLOSUM62, accurate to a few tens of percent — adequate because K
  // enters E-values only logarithmically.
  const double ratio = H / lambda;
  const double K = 0.2265 * ratio * std::exp(-0.60 * ratio);
  return {lambda, K, H};
}

KarlinParams compute_karlin(const ScoreMatrix& matrix) {
  return compute_karlin(matrix, robinson_frequencies());
}

KarlinParams gapped_params(const ScoreMatrix& matrix, Score gap_open,
                           Score gap_extend) {
  // Published NCBI values (blast_stat.c tables): {matrix, open, extend} ->
  // {lambda, K, H}.
  static const std::map<std::tuple<std::string_view, Score, Score>,
                        KarlinParams>
      kTable = {
          {{"BLOSUM62", 11, 1}, {0.267, 0.041, 0.14}},
          {{"BLOSUM62", 10, 1}, {0.243, 0.024, 0.10}},
          {{"BLOSUM62", 9, 2}, {0.279, 0.058, 0.19}},
          {{"BLOSUM50", 13, 2}, {0.212, 0.021, 0.10}},
          {{"BLOSUM80", 10, 1}, {0.299, 0.071, 0.21}},
          {{"PAM250", 14, 2}, {0.174, 0.012, 0.06}},
      };
  const auto it = kTable.find({matrix.name(), gap_open, gap_extend});
  if (it != kTable.end()) return it->second;
  // Fallback: NCBI's convention when a triple is missing is to reuse the
  // ungapped lambda/K scaled down; we apply the BLOSUM62 gapped/ungapped
  // ratio as a documented approximation.
  KarlinParams ungapped = compute_karlin(matrix);
  ungapped.lambda *= 0.267 / 0.3176;
  ungapped.K *= 0.041 / 0.134;
  return ungapped;
}

double bit_score(Score raw, const KarlinParams& params) {
  return (params.lambda * static_cast<double>(raw) - std::log(params.K)) /
         std::log(2.0);
}

double evalue(Score raw, std::size_t m, std::size_t n,
              const KarlinParams& params) {
  return params.K * static_cast<double>(m) * static_cast<double>(n) *
         std::exp(-params.lambda * static_cast<double>(raw));
}

Score cutoff_for_evalue(double target, std::size_t m, std::size_t n,
                        const KarlinParams& params) {
  MUBLASTP_CHECK(target > 0.0, "E-value target must be positive");
  const double s = std::log(params.K * static_cast<double>(m) *
                            static_cast<double>(n) / target) /
                   params.lambda;
  return static_cast<Score>(std::ceil(std::max(1.0, s)));
}

}  // namespace mublastp
