// Key-value sorting kernels for hit reordering.
//
// Section IV-B of the paper weighs LSD radix sort, MSD radix sort and merge
// sort for reordering hits and picks LSD radix because (1) index blocking
// keeps the hit buffer within LLC size so bandwidth is not the bottleneck,
// (2) length-sorted blocks give fixed-width keys so all records take the
// same number of passes, and (3) hits arrive ordered by query offset and the
// sort must be *stable* to preserve that order. All three algorithms are
// implemented here so the choice can be benchmarked (bench/abl_sort).
//
// All sorts are stable and operate on arbitrary record types through a key
// projection returning an unsigned integer.
#pragma once

#include <algorithm>
#include <bit>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <vector>

namespace mublastp::sorting {

/// Number of bits per LSD/MSD digit. 8 bits -> 256 counting buckets, the
/// standard choice for cache-resident counting arrays.
inline constexpr int kRadixBits = 8;
inline constexpr std::size_t kRadixBuckets = std::size_t{1} << kRadixBits;

namespace detail {

template <typename T, typename KeyFn>
using key_t = std::invoke_result_t<KeyFn, const T&>;

template <typename T, typename KeyFn>
concept UnsignedKeyFn = std::unsigned_integral<key_t<T, KeyFn>>;

}  // namespace detail

/// Stable LSD (least-significant-digit-first) radix sort.
///
/// `key_bits` bounds the number of passes: pass only over digits below
/// key_bits. The first counting pass doubles as a key scan — OR-accumulating
/// every key gives bit_width(accum) == bit_width(max key), and key_bits is
/// clamped to it — so callers passing a loose bound (or none at all) still
/// pay only for the digits the data actually populates. With block-local
/// sequence ids and bounded diagonals the packed hit key fits well under 32
/// bits, so most blocks sort in 3 passes.
template <typename T, typename KeyFn>
  requires detail::UnsignedKeyFn<T, KeyFn>
void radix_sort_lsd(std::vector<T>& v, KeyFn key,
                    int key_bits = 8 * static_cast<int>(sizeof(detail::key_t<T, KeyFn>))) {
  using Key = detail::key_t<T, KeyFn>;
  if (v.size() < 2) return;
  std::vector<T> buf(v.size());
  T* src = v.data();
  T* dst = buf.data();
  const std::size_t n = v.size();
  bool swapped = false;

  // Fused first pass: the shift-0 histogram and the OR-accumulated key.
  std::size_t count[kRadixBuckets] = {};
  Key seen = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Key k = static_cast<Key>(key(src[i]));
    seen |= k;
    ++count[k & (kRadixBuckets - 1)];
  }
  key_bits = std::min(key_bits,
                      std::max(1, static_cast<int>(std::bit_width(seen))));

  bool have_count = true;
  for (int shift = 0; shift < key_bits; shift += kRadixBits) {
    if (!have_count) {
      std::memset(count, 0, sizeof(count));
      for (std::size_t i = 0; i < n; ++i) {
        ++count[(static_cast<Key>(key(src[i])) >> shift) & (kRadixBuckets - 1)];
      }
    }
    have_count = false;
    // Skip passes where every record lands in one bucket (common for the
    // high digits of block-local keys).
    bool trivial = false;
    for (std::size_t b = 0; b < kRadixBuckets; ++b) {
      if (count[b] == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;
    std::size_t pos = 0;
    for (std::size_t b = 0; b < kRadixBuckets; ++b) {
      const std::size_t c = count[b];
      count[b] = pos;
      pos += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[count[(static_cast<Key>(key(src[i])) >> shift) & (kRadixBuckets - 1)]++] =
          src[i];
    }
    std::swap(src, dst);
    swapped = !swapped;
  }
  if (swapped) {
    std::memcpy(v.data(), buf.data(), n * sizeof(T));
  }
}

namespace detail {

template <typename T, typename KeyFn>
void insertion_sort(T* first, T* last, KeyFn key) {
  for (T* i = first + 1; i < last; ++i) {
    T tmp = *i;
    T* j = i;
    // '<=' would break stability; strictly-greater keeps equal keys in
    // arrival order.
    while (j > first && key(*(j - 1)) > key(tmp)) {
      *j = *(j - 1);
      --j;
    }
    *j = tmp;
  }
}

template <typename T, typename KeyFn>
void msd_recurse(T* first, T* last, KeyFn key, int shift,
                 std::vector<T>& scratch) {
  using Key = key_t<T, KeyFn>;
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n < 2) return;
  // MSD's small-subarray penalty (the paper's reason to prefer LSD for
  // hundreds-of-KB buffers) is mitigated the standard way: fall back to
  // insertion sort below a threshold.
  if (n <= 32) {
    insertion_sort(first, last, key);
    return;
  }
  std::size_t count[kRadixBuckets] = {};
  for (T* p = first; p < last; ++p) {
    ++count[(static_cast<Key>(key(*p)) >> shift) & (kRadixBuckets - 1)];
  }
  std::size_t start[kRadixBuckets + 1];
  start[0] = 0;
  for (std::size_t b = 0; b < kRadixBuckets; ++b) {
    start[b + 1] = start[b] + count[b];
  }
  scratch.assign(first, last);
  std::size_t cursor[kRadixBuckets];
  std::copy(start, start + kRadixBuckets, cursor);
  for (const T& rec : scratch) {
    first[cursor[(static_cast<Key>(key(rec)) >> shift) & (kRadixBuckets - 1)]++] =
        rec;
  }
  if (shift == 0) return;
  for (std::size_t b = 0; b < kRadixBuckets; ++b) {
    msd_recurse(first + start[b], first + start[b + 1], key,
                shift - kRadixBits, scratch);
  }
}

}  // namespace detail

/// Stable MSD (most-significant-digit-first) radix sort. Provided for the
/// sort ablation; the paper rejects MSD as "too slow for small datasets".
template <typename T, typename KeyFn>
  requires detail::UnsignedKeyFn<T, KeyFn>
void radix_sort_msd(std::vector<T>& v, KeyFn key,
                    int key_bits = 8 * static_cast<int>(sizeof(detail::key_t<T, KeyFn>))) {
  if (v.size() < 2) return;
  const int top_shift = ((key_bits + kRadixBits - 1) / kRadixBits - 1) * kRadixBits;
  std::vector<T> scratch;
  scratch.reserve(v.size());
  detail::msd_recurse(v.data(), v.data() + v.size(), key, top_shift, scratch);
}

/// Two-level binning (the reordering scheme of the paper's own preliminary
/// work [22], discussed in Related Work): scatter hits into diagonal bins
/// first, then into sequence bins. Each level is a full-width stable
/// counting scatter, so the result is ordered by (sequence, diagonal) with
/// arrival order preserved inside a diagonal — the same order the radix
/// sort produces on a packed key. The drawbacks the paper cites are
/// visible in the implementation: the counting arrays span the FULL
/// diagonal/sequence ranges (large preallocated memory) and every record
/// moves twice regardless of how few will survive filtering.
template <typename T, typename DiagFn, typename SeqFn>
  requires detail::UnsignedKeyFn<T, DiagFn> && detail::UnsignedKeyFn<T, SeqFn>
void two_level_bin(std::vector<T>& v, DiagFn diag, std::size_t num_diags,
                   SeqFn seq, std::size_t num_seqs) {
  if (v.size() < 2) return;
  std::vector<T> buf(v.size());

  // Level 1: bin by diagonal id.
  {
    std::vector<std::size_t> count(num_diags + 1, 0);
    for (const T& r : v) ++count[static_cast<std::size_t>(diag(r)) + 1];
    for (std::size_t b = 1; b <= num_diags; ++b) count[b] += count[b - 1];
    for (const T& r : v) buf[count[static_cast<std::size_t>(diag(r))]++] = r;
  }
  // Level 2: bin by sequence id (stable, so diagonal order survives).
  {
    std::vector<std::size_t> count(num_seqs + 1, 0);
    for (const T& r : buf) ++count[static_cast<std::size_t>(seq(r)) + 1];
    for (std::size_t b = 1; b <= num_seqs; ++b) count[b] += count[b - 1];
    for (const T& r : buf) v[count[static_cast<std::size_t>(seq(r))]++] = r;
  }
}

/// Stable bottom-up merge sort (the paper's O(n log n) comparison point).
template <typename T, typename KeyFn>
  requires detail::UnsignedKeyFn<T, KeyFn>
void merge_sort(std::vector<T>& v, KeyFn key) {
  const std::size_t n = v.size();
  if (n < 2) return;
  std::vector<T> buf(n);
  T* src = v.data();
  T* dst = buf.data();
  bool swapped = false;
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo;
      std::size_t j = mid;
      std::size_t k = lo;
      while (i < mid && j < hi) {
        // '<=' keeps the left run first on ties: stability.
        if (key(src[i]) <= key(src[j])) {
          dst[k++] = src[i++];
        } else {
          dst[k++] = src[j++];
        }
      }
      while (i < mid) dst[k++] = src[i++];
      while (j < hi) dst[k++] = src[j++];
    }
    std::swap(src, dst);
    swapped = !swapped;
  }
  if (swapped) {
    std::memcpy(v.data(), buf.data(), n * sizeof(T));
  }
}

}  // namespace mublastp::sorting
