// Structured tracing: per-thread timelines of the pipeline's stage spans,
// emitted as Chrome trace-event JSON ("mublastp-trace-v1", loadable in
// Perfetto / chrome://tracing).
//
// Follows the NullStats/PipelineStats policy split one level up: engines
// stay templated on a stats recorder, and tracing rides along as a wrapper
// recorder (TracingRecorder<Base>) that forwards every hook to the base
// policy and additionally timestamps stage boundaries via the new mark()
// hook — which is an empty inline in both stats policies, so untraced
// builds compile to exactly the code they compiled to before.
//
// Recording is wait-free on the hot path: each thread owns a lock-free
// SPSC ring (a "lane") and pushes fixed-size Span records into it; the
// serial point of the block loop drains every lane into the run's span
// list (flush()). Overflowing a lane drops the span and bumps a counter —
// tracing never blocks or reallocates inside a parallel region.
//
// Distributed timelines: thread-mode shard workers record into child
// tracers sharing the parent's clock epoch (no re-basing); fork-process
// workers ship their raw spans back over the orchestrator's CRC-framed
// pipes together with their own epoch, and absorb() re-bases them onto the
// parent's epoch — CLOCK_MONOTONIC is system-wide on Linux, so one merged
// timeline covers the whole fan-out.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "stats/stats.hpp"
#include "trace/perfctr.hpp"

namespace mublastp::trace {

/// "Not attributed" marker for the Span id fields.
inline constexpr std::uint32_t kNoId = 0xffffffffu;

/// Span types. The first kNumStages values mirror stats::Stage one-to-one
/// (same underlying integers), so stage spans and stats-v1 stage seconds
/// are trivially cross-checkable.
enum class SpanKind : std::uint8_t {
  kHitDetect = 0,   ///< stage 1: hit detection (+ pre-filter)
  kSort = 1,        ///< stage 2a: hit reordering
  kUngapped = 2,    ///< stage 2b: ungapped extension sweep
  kGapped = 3,      ///< stage 3: gapped extension
  kFinalize = 4,    ///< stage 4: merge, cull, traceback, E-values
  kFlatten = 5,     ///< FlatNeighborhood build (hit-kernel setup)
  kIndexLoad = 6,   ///< index open/parse/map
  kShardWorker = 7, ///< one shard worker's whole batch
  kBatch = 8,       ///< one checkpoint batch
  kMerge = 9,       ///< cross-shard result merge
};
inline constexpr int kNumSpanKinds = 10;

/// Stable JSON event name ("hit_detect", "flatten", ...).
const char* span_name(SpanKind k);
/// Trace-event category ("stage", "setup", "shard", "run").
const char* span_category(SpanKind k);

/// One closed interval on one thread's timeline. Trivially copyable by
/// design: fork-mode workers ship these raw over the result pipe.
struct Span {
  std::uint64_t begin_ns = 0;  ///< ns since the owning tracer's epoch
  std::uint64_t end_ns = 0;
  std::uint32_t block = kNoId;
  std::uint32_t query = kNoId;
  std::uint32_t shard = kNoId;
  std::uint32_t batch = kNoId;
  std::uint32_t lane = kNoId;  ///< recording thread's lane index
  SpanKind kind = SpanKind::kHitDetect;
  std::uint8_t has_counters = 0;
  perfctr::PerfCounts counters;  ///< deltas over the span, if has_counters
};
static_assert(std::is_trivially_copyable_v<Span>);

namespace detail {

/// Single-producer single-consumer span ring: the owning thread pushes,
/// flush() (serial) drains. Capacity is rounded up to a power of two; a
/// full ring drops the span and counts it rather than blocking.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity);

  bool push(const Span& s);
  void drain(std::vector<Span>& out);
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Span> buf_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// One thread's recording state: its ring plus (optionally) its hardware
/// counter group, opened on the owning thread so the events follow it.
struct Lane {
  explicit Lane(std::size_t capacity) : ring(capacity) {}
  SpanRing ring;
  std::uint32_t index = 0;
  bool counters_ok = false;
  perfctr::PerfCounterGroup group;
};

}  // namespace detail

struct TracerOptions {
  std::size_t ring_capacity = 4096;  ///< spans per lane between flushes
  bool counters = false;  ///< open a perf counter group per lane
};

class Tracer;

/// A thread's write handle into a tracer — one thread-local lane lookup at
/// construction, then wait-free stamping/pushing. Cheap to copy.
class Handle {
 public:
  Handle() = default;

  bool enabled() const { return lane_ != nullptr; }

  /// A stage-boundary timestamp, optionally with a counter sample.
  struct Stamp {
    std::uint64_t t = 0;  ///< ns since the tracer's epoch
    perfctr::PerfCounts c;
    bool counters = false;
  };
  Stamp stamp() const;

  /// Records [begin, end] with counter deltas when both stamps carry them.
  void span(SpanKind kind, std::uint32_t block, std::uint32_t query,
            const Stamp& begin, const Stamp& end);

  /// Records a bare interval (no counters), optionally shard-attributed.
  void span_raw(SpanKind kind, std::uint32_t block, std::uint32_t query,
                std::uint32_t shard, std::uint64_t begin_ns,
                std::uint64_t end_ns);

 private:
  friend class Tracer;
  Handle(Tracer* owner, detail::Lane* lane) : owner_(owner), lane_(lane) {}
  Tracer* owner_ = nullptr;
  detail::Lane* lane_ = nullptr;
};

/// The per-run span collector ("RingTrace" of the design: the compile-to-
/// nothing "NullTrace" counterpart is simply the engines' untraced template
/// instantiation, where mark() is the stats policies' empty inline).
class Tracer {
 public:
  explicit Tracer(TracerOptions opts = {});
  /// Child tracer sharing a parent's clock epoch (thread-mode shard
  /// workers): its spans need no re-basing and are stamped with `shard`.
  Tracer(TracerOptions opts, std::uint64_t epoch_raw_ns, std::uint32_t shard);

  /// Raw CLOCK_MONOTONIC (steady_clock) ns — the clock all epochs live on.
  static std::uint64_t raw_now_ns();

  std::uint64_t epoch_raw_ns() const { return epoch_raw_ns_; }
  /// ns since this tracer's epoch.
  std::uint64_t now_ns() const { return raw_now_ns() - epoch_raw_ns_; }

  bool counters_enabled() const { return opts_.counters; }
  /// The options this tracer was built with (child tracers inherit them).
  const TracerOptions& options() const { return opts_; }

  /// Default shard attribution of locally recorded spans (kNoId = main).
  void set_shard(std::uint32_t shard) { shard_ = shard; }
  /// Batch id stamped onto spans as they are pushed. Serial-point use only.
  void set_batch(std::uint32_t batch) {
    batch_.store(batch, std::memory_order_relaxed);
  }
  std::uint32_t batch() const {
    return batch_.load(std::memory_order_relaxed);
  }

  /// The calling thread's write handle; allocates its lane (and counter
  /// group, if enabled) on first use per thread.
  Handle handle();

  /// Records one span from the calling thread (serial bookkeeping spans:
  /// index load, shard workers, merges). Timestamps are now_ns() values.
  void record(SpanKind kind, std::uint64_t begin_ns, std::uint64_t end_ns,
              std::uint32_t block = kNoId, std::uint32_t query = kNoId,
              std::uint32_t shard = kNoId);

  /// Drains every lane into the run's span list, stamping this tracer's
  /// shard id onto spans without one. Called at serial points (block-loop
  /// merge, end of batch); safe against concurrent pushes.
  void flush();

  /// Appends externally collected spans (a child tracer's, or a fork-mode
  /// worker's shipped over the pipe), shifting timestamps by `offset_ns`
  /// (child_epoch_raw - parent_epoch_raw) and filling in `shard` / the
  /// current batch where unattributed.
  void absorb(const Span* spans, std::size_t n, std::int64_t offset_ns,
              std::uint32_t shard);

  /// Folds a child's overflow-drop count into this tracer's total.
  void add_dropped(std::uint64_t n);

  /// Flushed spans (call flush() first for completeness).
  const std::vector<Span>& spans() const { return spans_; }

  /// Spans lost to ring overflow, including absorbed children's.
  std::uint64_t dropped() const;

  /// True when at least one lane's counter group actually opened.
  bool counters_available() const {
    return counters_opened_.load(std::memory_order_relaxed);
  }

  /// Per-stage totals of the counter-annotated stage spans (for the
  /// stats-v1 "perf_counters" object). Call flush() first.
  stats::PerfCounterStats perf_totals() const;

 private:
  friend class Handle;

  TracerOptions opts_;
  std::uint64_t epoch_raw_ns_;
  std::uint64_t id_;  ///< process-global tracer id (thread-local lane cache key)
  std::uint32_t shard_ = kNoId;
  std::atomic<std::uint32_t> batch_{kNoId};
  std::atomic<bool> counters_opened_{false};

  mutable std::mutex mu_;  ///< guards lanes_, spans_, absorbed_dropped_
  std::vector<std::unique_ptr<detail::Lane>> lanes_;
  std::vector<Span> spans_;
  std::uint64_t absorbed_dropped_ = 0;
};

/// Run metadata carried into the trace file header.
struct TraceMeta {
  std::string engine;
  std::string kernel;
  int threads = 0;
  std::uint32_t shards = 0;  ///< 0 = unsharded
};

/// Flushes the tracer and serializes its spans to the "mublastp-trace-v1"
/// contract: a Chrome trace-event JSON object (Perfetto-loadable) whose
/// "X" complete events carry stage/block/query/batch ids and counter
/// deltas in args. Deterministically ordered (sorted by begin time).
std::string to_chrome_json(Tracer& tracer, const TraceMeta& meta);

/// Recorder wrapper that adds span recording to any stats recorder policy.
/// Satisfies the same interface the engines are templated on; mark() (a
/// no-op on the base policies) stamps stage boundaries here, and the
/// existing book-keeping hooks close the spans those stamps opened:
///   - block_round() with three prior stamps emits the decoupled
///     hit_detect / sort / ungapped spans (mublastp engine); with one
///     prior stamp it emits a single fused hit_detect span (the
///     interleaved engines, mirroring their stats booking).
///   - stage() closes [last stamp, now] as the corresponding stage span
///     and re-stamps, so gapped.end == finalize.begin exactly.
///   - hit_kernel() with flatten_builds != 0 closes a flatten span.
template <typename Base>
class TracingRecorder {
 public:
  /// Forces the engines' recorder-guarded bookkeeping on even when the
  /// base policy is NullStats (spans need the stage boundaries evaluated).
  static constexpr bool kEnabled = true;

  TracingRecorder(Base base, Tracer* tracer, std::uint32_t query)
      : base_(base), h_(tracer->handle()), query_(query) {}

  void mark() {
    if (n_ < kMaxStamps) stamps_[n_++] = h_.stamp();
  }

  void block_round(std::uint32_t block, const stats::StageCounters& c,
                   double detect_sec, double sort_sec, double extend_sec) {
    base_.block_round(block, c, detect_sec, sort_sec, extend_sec);
    const Handle::Stamp end = h_.stamp();
    if (n_ >= 3) {
      h_.span(SpanKind::kHitDetect, block, query_, stamps_[n_ - 3],
              stamps_[n_ - 2]);
      h_.span(SpanKind::kSort, block, query_, stamps_[n_ - 2],
              stamps_[n_ - 1]);
      h_.span(SpanKind::kUngapped, block, query_, stamps_[n_ - 1], end);
    } else if (n_ >= 1) {
      h_.span(SpanKind::kHitDetect, block, query_, stamps_[n_ - 1], end);
    }
    n_ = 0;
  }

  void stage(stats::Stage s, double sec) {
    base_.stage(s, sec);
    const Handle::Stamp end = h_.stamp();
    if (n_ >= 1) {
      h_.span(static_cast<SpanKind>(s), kNoId, query_, stamps_[n_ - 1], end);
    }
    stamps_[0] = end;  // chain: this stage's end opens the next stage
    n_ = 1;
  }

  void add(const stats::StageCounters& c) { base_.add(c); }
  void workspace(std::uint64_t bytes) { base_.workspace(bytes); }

  void hit_kernel(const stats::HitKernelStats& d) {
    base_.hit_kernel(d);
    if (d.flatten_builds != 0) {
      const Handle::Stamp end = h_.stamp();
      if (n_ >= 1) {
        h_.span(SpanKind::kFlatten, kNoId, query_, stamps_[n_ - 1], end);
      }
      n_ = 0;
    }
  }

 private:
  static constexpr int kMaxStamps = 4;
  Base base_;
  Handle h_;
  std::uint32_t query_;
  Handle::Stamp stamps_[kMaxStamps];
  int n_ = 0;
};

}  // namespace mublastp::trace
