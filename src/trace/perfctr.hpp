// Per-thread hardware-counter groups for the tracer (cycles, instructions,
// LLC misses, branch mispredicts) via perf_event_open(2).
//
// This is strictly best-effort telemetry: perf_event_open is Linux-only and
// commonly forbidden (perf_event_paranoid >= 2 in containers, seccomp, no
// PMU in VMs). open() therefore never throws — it returns false and the
// group stays disabled, so every caller degrades to plain timestamped
// spans. The "trace.perfctr_open" fault-injection site forces that path
// deterministically in tests.
//
// One PerfCounterGroup is owned by one tracer lane (== one thread): the
// events are opened with pid=0/cpu=-1 on the owning thread, so read()
// observes exactly that thread's work, following the counters across CPU
// migrations. The four events are opened as a single group (one leader,
// PERF_FORMAT_GROUP) so a sample is one read(2) and all four values come
// from the same scheduling interval.
#pragma once

#include <cstdint>

namespace mublastp::trace::perfctr {

/// One sample (or delta) of the four tracked events.
struct PerfCounts {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;

  PerfCounts operator-(const PerfCounts& o) const {
    return {cycles - o.cycles, instructions - o.instructions,
            llc_misses - o.llc_misses, branch_misses - o.branch_misses};
  }
  PerfCounts& operator+=(const PerfCounts& o) {
    cycles += o.cycles;
    instructions += o.instructions;
    llc_misses += o.llc_misses;
    branch_misses += o.branch_misses;
    return *this;
  }
  friend bool operator==(const PerfCounts&, const PerfCounts&) = default;
};

/// A grouped set of per-thread counters. Not copyable (owns fds); safe to
/// destroy without open() ever having succeeded.
class PerfCounterGroup {
 public:
  PerfCounterGroup() = default;
  ~PerfCounterGroup() { close(); }
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// Opens the event group on the calling thread. Returns true when all
  /// four events opened and counting started; false (with everything
  /// closed again) on any failure — including the "trace.perfctr_open"
  /// injected fault and non-Linux builds, where it is a constant no-op.
  bool open();

  /// True after a successful open().
  bool ok() const { return leader_fd_ >= 0; }

  /// Samples the four counters. Returns false (zeroed *out) when the group
  /// is not open or the read fails.
  bool read(PerfCounts* out) const;

  /// Closes all fds; ok() is false afterwards. Idempotent.
  void close();

 private:
  int leader_fd_ = -1;
  int sibling_fds_[3] = {-1, -1, -1};
};

}  // namespace mublastp::trace::perfctr
