#include "trace/perfctr.hpp"

#include "common/faultinject.hpp"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace mublastp::trace::perfctr {

#ifdef __linux__

namespace {

int perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                    unsigned long flags) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

int open_event(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts disabled, armed below
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1, group_fd, 0);
}

}  // namespace

bool PerfCounterGroup::open() {
  if (ok()) return true;
  if (MUBLASTP_FI_FAIL("trace.perfctr_open")) return false;
  leader_fd_ = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader_fd_ < 0) return false;
  const std::uint64_t sibling_configs[3] = {
      PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_MISSES,       // "LLC misses" in perf-stat terms
      PERF_COUNT_HW_BRANCH_MISSES,
  };
  for (int i = 0; i < 3; ++i) {
    sibling_fds_[i] =
        open_event(PERF_TYPE_HARDWARE, sibling_configs[i], leader_fd_);
    if (sibling_fds_[i] < 0) {
      close();
      return false;
    }
  }
  if (ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    close();
    return false;
  }
  return true;
}

bool PerfCounterGroup::read(PerfCounts* out) const {
  *out = {};
  if (!ok()) return false;
  // PERF_FORMAT_GROUP layout: nr, then one value per event in open order.
  std::uint64_t buf[1 + 4];
  const ssize_t n = ::read(leader_fd_, buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf)) || buf[0] != 4) return false;
  out->cycles = buf[1];
  out->instructions = buf[2];
  out->llc_misses = buf[3];
  out->branch_misses = buf[4];
  return true;
}

void PerfCounterGroup::close() {
  for (int i = 0; i < 3; ++i) {
    if (sibling_fds_[i] >= 0) ::close(sibling_fds_[i]);
    sibling_fds_[i] = -1;
  }
  if (leader_fd_ >= 0) ::close(leader_fd_);
  leader_fd_ = -1;
}

#else  // !__linux__

bool PerfCounterGroup::open() {
  // Still consult the fault site so the graceful-degradation test is
  // portable (the site's call count advances on every platform).
  (void)MUBLASTP_FI_FAIL("trace.perfctr_open");
  return false;
}

bool PerfCounterGroup::read(PerfCounts* out) const {
  *out = {};
  return false;
}

void PerfCounterGroup::close() {}

#endif  // __linux__

}  // namespace mublastp::trace::perfctr
