#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/json_writer.hpp"

namespace mublastp::trace {

const char* span_name(SpanKind k) {
  switch (k) {
    case SpanKind::kHitDetect:
      return "hit_detect";
    case SpanKind::kSort:
      return "sort";
    case SpanKind::kUngapped:
      return "ungapped";
    case SpanKind::kGapped:
      return "gapped";
    case SpanKind::kFinalize:
      return "finalize";
    case SpanKind::kFlatten:
      return "flatten";
    case SpanKind::kIndexLoad:
      return "index_load";
    case SpanKind::kShardWorker:
      return "shard_worker";
    case SpanKind::kBatch:
      return "batch";
    case SpanKind::kMerge:
      return "merge";
  }
  return "unknown";
}

const char* span_category(SpanKind k) {
  switch (k) {
    case SpanKind::kHitDetect:
    case SpanKind::kSort:
    case SpanKind::kUngapped:
    case SpanKind::kGapped:
    case SpanKind::kFinalize:
      return "stage";
    case SpanKind::kFlatten:
    case SpanKind::kIndexLoad:
      return "setup";
    case SpanKind::kShardWorker:
    case SpanKind::kMerge:
      return "shard";
    case SpanKind::kBatch:
      return "run";
  }
  return "other";
}

namespace detail {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

SpanRing::SpanRing(std::size_t capacity)
    : buf_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(buf_.size() - 1) {}

bool SpanRing::push(const Span& s) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= buf_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  buf_[head & mask_] = s;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

void SpanRing::drain(std::vector<Span>& out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  while (tail != head) {
    out.push_back(buf_[tail & mask_]);
    ++tail;
  }
  tail_.store(tail, std::memory_order_release);
}

}  // namespace detail

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

// Thread-local lane cache: one lookup per (thread, tracer) pair, then
// lock-free. The id check makes stale entries (destroyed tracers, or the
// thread moving to another tracer) miss safely — ids are never reused.
struct LaneCache {
  std::uint64_t tracer_id = 0;
  detail::Lane* lane = nullptr;
};
thread_local LaneCache tl_lane;

}  // namespace

std::uint64_t Tracer::raw_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer(TracerOptions opts)
    : opts_(opts),
      epoch_raw_ns_(raw_now_ns()),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::Tracer(TracerOptions opts, std::uint64_t epoch_raw_ns,
               std::uint32_t shard)
    : opts_(opts),
      epoch_raw_ns_(epoch_raw_ns),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      shard_(shard) {}

Handle Tracer::handle() {
  if (tl_lane.tracer_id != id_) {
    std::lock_guard<std::mutex> lk(mu_);
    auto lane = std::make_unique<detail::Lane>(opts_.ring_capacity);
    lane->index = static_cast<std::uint32_t>(lanes_.size());
    if (opts_.counters) {
      // Opened here, on the owning thread, so the group counts this thread.
      lane->counters_ok = lane->group.open();
      if (lane->counters_ok) {
        counters_opened_.store(true, std::memory_order_relaxed);
      }
    }
    tl_lane = {id_, lanes_.emplace_back(std::move(lane)).get()};
  }
  return Handle(this, tl_lane.lane);
}

void Tracer::record(SpanKind kind, std::uint64_t begin_ns,
                    std::uint64_t end_ns, std::uint32_t block,
                    std::uint32_t query, std::uint32_t shard) {
  handle().span_raw(kind, block, query, shard, begin_ns, end_ns);
}

void Tracer::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& lane : lanes_) {
    const std::size_t first = spans_.size();
    lane->ring.drain(spans_);
    for (std::size_t i = first; i < spans_.size(); ++i) {
      Span& s = spans_[i];
      s.lane = lane->index;
      if (s.shard == kNoId) s.shard = shard_;
    }
  }
}

void Tracer::absorb(const Span* spans, std::size_t n, std::int64_t offset_ns,
                    std::uint32_t shard) {
  const std::uint32_t batch = batch_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  spans_.reserve(spans_.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    Span s = spans[i];
    s.begin_ns = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(s.begin_ns) + offset_ns);
    s.end_ns = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(s.end_ns) + offset_ns);
    if (s.shard == kNoId) s.shard = shard;
    if (s.batch == kNoId) s.batch = batch;
    spans_.push_back(s);
  }
}

void Tracer::add_dropped(std::uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  absorbed_dropped_ += n;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = absorbed_dropped_;
  for (const auto& lane : lanes_) total += lane->ring.dropped();
  return total;
}

stats::PerfCounterStats Tracer::perf_totals() const {
  stats::PerfCounterStats out;
  for (const Span& s : spans_) {
    if (!s.has_counters) continue;
    const int k = static_cast<int>(s.kind);
    if (k >= stats::kNumStages) continue;
    ++out.sampled_spans;
    out.cycles[k] += s.counters.cycles;
    out.instructions[k] += s.counters.instructions;
    out.llc_misses[k] += s.counters.llc_misses;
    out.branch_misses[k] += s.counters.branch_misses;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

Handle::Stamp Handle::stamp() const {
  Stamp st;
  st.t = owner_->now_ns();
  if (lane_->counters_ok) st.counters = lane_->group.read(&st.c);
  return st;
}

void Handle::span(SpanKind kind, std::uint32_t block, std::uint32_t query,
                  const Stamp& begin, const Stamp& end) {
  Span s;
  s.begin_ns = begin.t;
  s.end_ns = end.t;
  s.block = block;
  s.query = query;
  s.batch = owner_->batch();
  s.kind = kind;
  if (begin.counters && end.counters) {
    s.has_counters = 1;
    s.counters = end.c - begin.c;
  }
  lane_->ring.push(s);
}

void Handle::span_raw(SpanKind kind, std::uint32_t block, std::uint32_t query,
                      std::uint32_t shard, std::uint64_t begin_ns,
                      std::uint64_t end_ns) {
  Span s;
  s.begin_ns = begin_ns;
  s.end_ns = end_ns;
  s.block = block;
  s.query = query;
  s.shard = shard;
  s.batch = owner_->batch();
  s.kind = kind;
  lane_->ring.push(s);
}

// ---------------------------------------------------------------------------
// Emission: Chrome trace-event JSON ("mublastp-trace-v1").
// ---------------------------------------------------------------------------

namespace {

// ts/dur are microseconds; three decimals keep full ns precision.
void append_us(std::string& out, std::uint64_t ns) {
  jsonw::append_fixed(out, static_cast<double>(ns) / 1000.0, 3);
}

void append_f(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

// pid 0 is the main process / unsharded run; shard k maps to pid k + 1.
std::uint32_t pid_of(const Span& s) {
  return s.shard == kNoId ? 0 : s.shard + 1;
}

}  // namespace

std::string to_chrome_json(Tracer& tracer, const TraceMeta& meta) {
  tracer.flush();
  std::vector<Span> spans = tracer.spans();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     if (a.begin_ns != b.begin_ns) {
                       return a.begin_ns < b.begin_ns;
                     }
                     if (a.end_ns != b.end_ns) return a.end_ns < b.end_ns;
                     if (a.shard != b.shard) return a.shard < b.shard;
                     return a.lane < b.lane;
                   });

  std::string out;
  out.reserve(256 + 192 * spans.size());
  out += "{\n  \"schema\": \"mublastp-trace-v1\",\n";
  out += "  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {";
  append_f(out, "\"engine\": \"%s\", \"kernel\": \"%s\", \"threads\": %d, ",
           meta.engine.c_str(), meta.kernel.c_str(), meta.threads);
  append_f(out, "\"shards\": %u, \"span_count\": %zu, ", meta.shards,
           spans.size());
  append_f(out, "\"dropped_spans\": %" PRIu64 ", ", tracer.dropped());
  append_f(out, "\"counters\": %s},\n",
           tracer.counters_available() ? "true" : "false");
  out += "  \"traceEvents\": [";

  // Process-name metadata rows so Perfetto labels the shard fan-out.
  std::vector<std::uint32_t> pids;
  for (const Span& s : spans) pids.push_back(pid_of(s));
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  bool first = true;
  for (const std::uint32_t pid : pids) {
    out += first ? "\n" : ",\n";
    first = false;
    append_f(out,
             "    {\"ph\": \"M\", \"pid\": %u, \"name\": \"process_name\","
             " \"args\": {\"name\": \"",
             pid);
    if (pid == 0) {
      out += "mublastp";
    } else {
      append_f(out, "shard %u", pid - 1);
    }
    out += "\"}}";
  }

  for (const Span& s : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    append_f(out, "    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\","
                  " \"pid\": %u, \"tid\": %u, \"ts\": ",
             span_name(s.kind), span_category(s.kind), pid_of(s),
             s.lane == kNoId ? 0 : s.lane);
    append_us(out, s.begin_ns);
    out += ", \"dur\": ";
    append_us(out, s.end_ns >= s.begin_ns ? s.end_ns - s.begin_ns : 0);
    out += ", \"args\": {";
    bool afirst = true;
    const auto arg_u32 = [&](const char* key, std::uint32_t v) {
      if (v == kNoId) return;
      append_f(out, "%s\"%s\": %u", afirst ? "" : ", ", key, v);
      afirst = false;
    };
    arg_u32("block", s.block);
    arg_u32("query", s.query);
    arg_u32("shard", s.shard);
    arg_u32("batch", s.batch);
    if (s.has_counters) {
      append_f(out,
               "%s\"cycles\": %" PRIu64 ", \"instructions\": %" PRIu64
               ", \"llc_misses\": %" PRIu64 ", \"branch_misses\": %" PRIu64,
               afirst ? "" : ", ", s.counters.cycles, s.counters.instructions,
               s.counters.llc_misses, s.counters.branch_misses);
      afirst = false;
    }
    out += "}}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace mublastp::trace
