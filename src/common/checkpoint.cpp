#include "common/checkpoint.hpp"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/checksum.hpp"
#include "common/durable.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"

namespace mublastp {
namespace {

constexpr char kMagic[8] = {'M', 'U', 'C', 'K', 'P', 'T', '0', '1'};
constexpr std::size_t kHeaderBytes = 16;

struct RecordImage {
  std::uint64_t batch;
  std::uint64_t out_offset;
  std::uint32_t crc;
  std::uint32_t reserved;
};
static_assert(sizeof(RecordImage) == 24);

std::uint32_t record_crc(const RecordImage& r) {
  return crc32(&r, 16);  // batch + out_offset only
}

}  // namespace

CheckpointJournal::CheckpointJournal(const std::string& path,
                                     std::uint32_t fingerprint)
    : path_(path) {
  // Replay phase: read whatever exists, stopping at the first torn or
  // corrupt record (a kill -9 can leave one), and remember how many bytes
  // were valid so the tail can be truncated before appending resumes.
  std::size_t valid_bytes = 0;
  std::error_code ec;
  const bool exists = std::filesystem::exists(path_, ec) && !ec;
  if (exists) {
    MUBLASTP_CHECK_KIND(std::filesystem::is_regular_file(path_, ec) && !ec,
                        ErrorKind::kIo,
                        "checkpoint path is not a regular file: " + path_);
    std::ifstream in(path_, std::ios::binary);
    MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kIo,
                        "cannot open checkpoint file: " + path_);
    char header[kHeaderBytes];
    in.read(header, kHeaderBytes);
    if (in.gcount() > 0) {  // an empty file is treated as fresh
      MUBLASTP_CHECK_KIND(in.gcount() == kHeaderBytes &&
                              std::memcmp(header, kMagic, sizeof(kMagic)) == 0,
                          ErrorKind::kCorrupt,
                          "not a muBLASTP checkpoint file: " + path_);
      std::uint32_t stored_fp = 0;
      std::memcpy(&stored_fp, header + sizeof(kMagic), sizeof(stored_fp));
      MUBLASTP_CHECK(stored_fp == fingerprint,
                     "checkpoint " + path_ +
                         " was written by a different run configuration"
                         " (index/query/batch-size changed); delete it to"
                         " restart from scratch");
      valid_bytes = kHeaderBytes;
      RecordImage rec;
      while (in.read(reinterpret_cast<char*>(&rec), sizeof(rec)) &&
             in.gcount() == sizeof(rec)) {
        if (record_crc(rec) != rec.crc) break;  // torn/garbage tail
        done_.insert(rec.batch);
        resume_offset_ = rec.out_offset;
        valid_bytes += sizeof(rec);
      }
    }
  }

  if (valid_bytes == 0) {
    // Fresh journal (missing, empty, or header never made it to disk).
    file_ = std::fopen(path_.c_str(), "wb");
    MUBLASTP_CHECK_KIND(file_ != nullptr, ErrorKind::kIo,
                        "cannot create checkpoint file: " + path_);
    char header[kHeaderBytes] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    std::memcpy(header + sizeof(kMagic), &fingerprint, sizeof(fingerprint));
    const bool ok = std::fwrite(header, 1, kHeaderBytes, file_) ==
                        kHeaderBytes &&
                    std::fflush(file_) == 0 && ::fsync(fileno(file_)) == 0;
    MUBLASTP_CHECK_KIND(ok, ErrorKind::kIo,
                        "cannot write checkpoint header: " + path_);
    // The header fsync makes the *content* durable but not the *name*: a
    // crash before the parent directory is synced can lose the freshly
    // created journal entirely, silently restarting the run from batch 0.
    durable::fsync_parent_dir(path_, "checkpoint.dirsync");
    return;
  }

  // Drop any torn tail, then append after the last valid record.
  std::filesystem::resize_file(path_, valid_bytes, ec);
  MUBLASTP_CHECK_KIND(!ec, ErrorKind::kIo,
                      "cannot truncate checkpoint tail: " + path_);
  file_ = std::fopen(path_.c_str(), "ab");
  MUBLASTP_CHECK_KIND(file_ != nullptr, ErrorKind::kIo,
                      "cannot reopen checkpoint file: " + path_);
}

CheckpointJournal::~CheckpointJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointJournal::append(std::uint64_t batch,
                               std::uint64_t out_offset) {
  MUBLASTP_CHECK_KIND(!MUBLASTP_FI_FAIL("checkpoint.write"), ErrorKind::kIo,
                      "injected checkpoint write failure (checkpoint.write): " +
                          path_);
  RecordImage rec{batch, out_offset, 0, 0};
  rec.crc = record_crc(rec);
  const bool ok = std::fwrite(&rec, 1, sizeof(rec), file_) == sizeof(rec) &&
                  std::fflush(file_) == 0 && ::fsync(fileno(file_)) == 0;
  MUBLASTP_CHECK_KIND(ok, ErrorKind::kIo,
                      "checkpoint write failed: " + path_);
  done_.insert(batch);
  resume_offset_ = out_offset;
}

}  // namespace mublastp
