#include "common/checksum.hpp"

#include <array>

namespace mublastp {
namespace {

// Table generated at static-init time from the reflected polynomial; the
// classic byte-at-a-time Sarwate algorithm. Fast enough to checksum index
// sections at load (GB/s range), with zero code dependencies.
constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data,
                    std::uint32_t crc) noexcept {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (const std::byte b : data) {
    c = kTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace mublastp
