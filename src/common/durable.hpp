// Durable file publication: the fsync/rename discipline that makes index
// builds and manifests crash-consistent.
//
// The protocol every publisher in this repo follows (docs/INCREMENTAL.md
// has the full ordering argument):
//
//   1. write the complete payload to `<final>.tmp`
//   2. fsync the temp file            (content durable, name still temp)
//   3. rename(<final>.tmp, <final>)   (atomic: the name appears all-at-once)
//   4. fsync the parent directory     (the rename itself durable)
//
// A crash anywhere in 1-3 leaves at worst an orphaned `.tmp` file — the
// published namespace is untouched, so readers keep resolving the previous
// state. A crash after 3 but before 4 can lose the rename across power
// failure, which again just re-exposes the previous state. The commit
// point of a multi-file publish (index data + manifest) is the *manifest*
// rename, so data files must be fully durable before their manifest is.
//
// Each helper takes an optional fault-injection site so the build-path
// fault matrix ("build.fsync", "build.publish_rename", ...) can drive
// every failure branch; pass nullptr to skip injection.
#pragma once

#include <string>

namespace mublastp::durable {

/// `path + ".tmp"` — the single temp-name convention. Anything matching
/// `*.tmp` next to an index is, by construction, an orphan of a crashed
/// publish and safe to delete.
std::string temp_path_for(const std::string& path);

/// True when `path` names an orphaned temp file (ends in ".tmp").
bool is_temp_path(const std::string& path);

/// fsync(2) an already-written file by path (open O_RDONLY + fsync, which
/// flushes file data and metadata on Linux). Throws Error(kIo) on failure
/// or when the injection `site` fires.
void fsync_file(const std::string& path, const char* site = nullptr);

/// fsync(2) the parent directory of `path`, making a rename/creat/unlink
/// of that name durable. Throws Error(kIo) on failure or injection.
void fsync_parent_dir(const std::string& path, const char* site = nullptr);

/// Writes `bytes` to `path` in one shot and fsyncs the file (NOT the
/// directory — callers publishing via rename sync the directory after the
/// rename instead). `write_site` fires on the write, `fsync_site` on the
/// flush. Throws Error(kIo) on any failure.
void write_file_durable(const std::string& path, const std::string& bytes,
                        const char* write_site = nullptr,
                        const char* fsync_site = nullptr);

/// Steps 3+4 of the protocol: atomic rename(tmp, final) followed by a
/// parent-directory fsync. Throws Error(kIo) on failure or injection.
void publish_rename(const std::string& tmp, const std::string& final_path,
                    const char* rename_site = nullptr,
                    const char* fsync_site = nullptr);

}  // namespace mublastp::durable
