#include "common/faultinject.hpp"

#include <csignal>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace mublastp::fi {
namespace {

// The registry. Sorted for readability; lookup is a linear strcmp scan
// (the list is tiny and only walked while faults are armed).
constexpr const char* kSites[] = {
    "alloc.workspace",       // engine workspace growth (simulated bad_alloc)
    "build.block_write",     // index data-file write during a build/publish
    "build.fsync",           // fsync of a build artifact (file or directory)
    "build.gc_unlink",       // unlink of a stale generation during GC
    "build.manifest_write",  // MUGEN01 generation-manifest temp write
    "build.publish_rename",  // atomic rename publishing a build artifact
    "checkpoint.dirsync",    // parent-dir fsync after journal creation
    "checkpoint.write",      // checkpoint journal append
    "index.crc",             // v3 section checksum verification
    "index.mmap",        // mmap(2) of an index file
    "index.open",        // open(2)/ifstream of an index file
    "index.prefault",    // SIGBUS during guarded first-touch prefault
    "io.read",           // bulk input reads (FASTA, index stream slurp)
    "shard.manifest",    // MUSHARD01 manifest open/read
    "shard.worker",      // one shard worker of a sharded search batch
    "stage.ungapped",    // ungapped-extension stage of a search round
    "trace.perfctr_open",  // perf_event_open(2) of a tracer counter group
};
constexpr std::size_t kNumSites = sizeof(kSites) / sizeof(kSites[0]);

struct ArmedEntry {
  std::uint64_t nth = 0;
  int err = 0;
};

struct SiteState {
  std::atomic<std::uint64_t> calls{0};
  // Written only while arming (single-threaded, before evaluation starts);
  // read lock-free during evaluation.
  std::vector<ArmedEntry> armed;
  // Kill-arming (MUBLASTP_FAULTS_KILL): evaluations at which the process
  // SIGKILLs itself — the scripted half of the kill-anywhere campaign,
  // deterministic where an external `kill -9` would race the publish.
  std::vector<std::uint64_t> kill_at;
};

SiteState g_sites[kNumSites];
std::atomic<bool> g_any_armed{false};

int site_index(std::string_view site) noexcept {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    if (site == kSites[i]) return static_cast<int>(i);
  }
  return -1;
}

// Arms from MUBLASTP_FAULTS / MUBLASTP_FAULTS_KILL once, before main()
// runs, so every binary in the repo honours the env without per-tool
// wiring.
const bool g_env_armed = [] {
  const char* spec = std::getenv("MUBLASTP_FAULTS");
  if (spec != nullptr && *spec != '\0') arm_from_spec(spec);
  const char* kill_spec = std::getenv("MUBLASTP_FAULTS_KILL");
  if (kill_spec != nullptr && *kill_spec != '\0') {
    arm_kill_from_spec(kill_spec);
  }
  return true;
}();

}  // namespace

bool any_armed() noexcept {
  return g_any_armed.load(std::memory_order_relaxed);
}

bool should_fail(const char* site) noexcept {
  const int idx = site_index(site);
  if (idx < 0) return false;
  SiteState& s = g_sites[static_cast<std::size_t>(idx)];
  const std::uint64_t n =
      s.calls.fetch_add(1, std::memory_order_relaxed) + 1;
  for (const std::uint64_t kill_nth : s.kill_at) {
    if (kill_nth == n) {
      // A real crash, not an exception: the point is to leave whatever is
      // on disk exactly as a power failure at this instant would.
      ::raise(SIGKILL);
    }
  }
  for (const ArmedEntry& e : s.armed) {
    if (e.nth == n) {
      if (e.err != 0) errno = e.err;
      return true;
    }
  }
  return false;
}

void arm(std::string_view site, std::uint64_t nth, int err) {
  const int idx = site_index(site);
  MUBLASTP_CHECK(idx >= 0, "unknown fault-injection site: '" +
                               std::string(site) + "'");
  MUBLASTP_CHECK(nth > 0, "fault-injection Nth must be >= 1");
  g_sites[static_cast<std::size_t>(idx)].armed.push_back({nth, err});
  g_any_armed.store(true, std::memory_order_relaxed);
}

void arm_kill(std::string_view site, std::uint64_t nth) {
  const int idx = site_index(site);
  MUBLASTP_CHECK(idx >= 0, "unknown fault-injection site: '" +
                               std::string(site) + "'");
  MUBLASTP_CHECK(nth > 0, "fault-injection Nth must be >= 1");
  g_sites[static_cast<std::size_t>(idx)].kill_at.push_back(nth);
  g_any_armed.store(true, std::memory_order_relaxed);
}

void arm_kill_from_spec(std::string_view spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t c1 = entry.find(':');
    MUBLASTP_CHECK(c1 != std::string_view::npos,
                   "kill spec entry needs 'site:nth': '" + std::string(entry) +
                       "'");
    const std::string nth_str(entry.substr(c1 + 1));
    char* endp = nullptr;
    const std::uint64_t nth = std::strtoull(nth_str.c_str(), &endp, 10);
    MUBLASTP_CHECK(endp != nth_str.c_str() && *endp == '\0' && nth > 0,
                   "bad kill-injection Nth in '" + std::string(entry) + "'");
    arm_kill(entry.substr(0, c1), nth);
  }
}

void arm_from_spec(std::string_view spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const std::size_t c1 = entry.find(':');
    MUBLASTP_CHECK(c1 != std::string_view::npos,
                   "fault spec entry needs 'site:nth[:errno]': '" +
                       std::string(entry) + "'");
    const std::string_view site = entry.substr(0, c1);
    const std::string_view rest = entry.substr(c1 + 1);
    const std::size_t c2 = rest.find(':');
    const std::string nth_str(c2 == std::string_view::npos
                                  ? rest
                                  : rest.substr(0, c2));
    char* endp = nullptr;
    const std::uint64_t nth = std::strtoull(nth_str.c_str(), &endp, 10);
    MUBLASTP_CHECK(endp != nth_str.c_str() && *endp == '\0' && nth > 0,
                   "bad fault-injection Nth in '" + std::string(entry) + "'");
    int err = 0;
    if (c2 != std::string_view::npos) {
      const std::string err_str(rest.substr(c2 + 1));
      err = static_cast<int>(std::strtol(err_str.c_str(), &endp, 10));
      MUBLASTP_CHECK(endp != err_str.c_str() && *endp == '\0',
                     "bad fault-injection errno in '" + std::string(entry) +
                         "'");
    }
    arm(site, nth, err);
  }
}

void reset() noexcept {
  for (SiteState& s : g_sites) {
    s.armed.clear();
    s.kill_at.clear();
    s.calls.store(0, std::memory_order_relaxed);
  }
  g_any_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t call_count(std::string_view site) noexcept {
  const int idx = site_index(site);
  if (idx < 0) return 0;
  return g_sites[static_cast<std::size_t>(idx)].calls.load(
      std::memory_order_relaxed);
}

std::span<const char* const> registered_sites() noexcept {
  return {kSites, kNumSites};
}

bool is_registered(std::string_view site) noexcept {
  return site_index(site) >= 0;
}

}  // namespace mublastp::fi
