// Deterministic fault injection: named sites compiled into the pipeline's
// error paths, armed on demand so every recovery path (quarantine, retry,
// fallback, clean typed failure) is exercisable in tests and in the field.
//
// Design:
//  - A *site* is a stable string id ("index.mmap", "stage.ungapped", ...)
//    from a fixed compile-time registry. Arming an unknown site throws, so
//    a typo in MUBLASTP_FAULTS fails loudly instead of silently injecting
//    nothing.
//  - Each evaluation of a site increments that site's call counter; the
//    site *fires* (returns true) exactly when the counter equals an armed
//    Nth value. Firing is single-shot per armed entry — arm the same site
//    at several Nths ("index.mmap:1,index.mmap:2") to fail consecutive
//    attempts, which is how retry-then-fallback paths are driven.
//  - When nothing is armed, MUBLASTP_FI_FAIL is one relaxed atomic load and
//    a predictable branch — cheap enough for round-granularity sites (it is
//    deliberately not placed in per-hit inner loops).
//  - Arming is process-global and NOT thread-safe against concurrent
//    evaluation: arm in the main thread before starting work (tools arm
//    from --inject/MUBLASTP_FAULTS before any search runs). Evaluation
//    itself is thread-safe (atomic counters).
//
// Spec grammar (env MUBLASTP_FAULTS or --inject=):
//   spec    := entry (',' entry)*
//   entry   := site ':' nth [':' errno]
// e.g. MUBLASTP_FAULTS=index.crc:1 or --inject=index.mmap:1:12,io.read:2
// The optional errno is stored into ::errno when the site fires, so
// syscall-shaped failure paths see a realistic error code.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mublastp::fi {

/// True when at least one site is armed. The fast path of MUBLASTP_FI_FAIL.
bool any_armed() noexcept;

/// Counts one evaluation of `site` and reports whether it fires this call.
/// Sets ::errno when the fired entry carried one. `site` must be a
/// registered site (unregistered sites never fire and are not counted).
bool should_fail(const char* site) noexcept;

/// Arms `site` to fire on its `nth` evaluation (1-based) after this call.
/// Throws mublastp::Error(kInvalid) for unknown sites or nth == 0.
void arm(std::string_view site, std::uint64_t nth, int err = 0);

/// Parses and arms a comma-separated spec ("site:nth[:errno],...").
/// Throws mublastp::Error(kInvalid) on malformed specs or unknown sites.
void arm_from_spec(std::string_view spec);

/// Arms `site` to SIGKILL the process at its `nth` evaluation — the
/// scripted half of the kill-anywhere campaign (env MUBLASTP_FAULTS_KILL).
/// Unlike a fired error entry, nothing is thrown and no cleanup runs: the
/// on-disk state is exactly what a power failure at that instant leaves.
void arm_kill(std::string_view site, std::uint64_t nth);

/// Parses and arms a comma-separated kill spec ("site:nth,...").
/// Throws mublastp::Error(kInvalid) on malformed specs or unknown sites.
void arm_kill_from_spec(std::string_view spec);

/// Disarms everything and zeroes all call counters.
void reset() noexcept;

/// Evaluations of `site` since the last reset/arm-from-zero (test hook).
std::uint64_t call_count(std::string_view site) noexcept;

/// The full injection-site registry (sorted, stable names). Tests iterate
/// this to prove every site has a recovery path; docs/ROBUSTNESS.md lists
/// the same names with their documented behaviour.
std::span<const char* const> registered_sites() noexcept;

/// True if `site` names a registered injection site.
bool is_registered(std::string_view site) noexcept;

}  // namespace mublastp::fi

/// Evaluates (and possibly fires) an injection site. Compiles to a single
/// relaxed load + never-taken branch while nothing is armed.
#define MUBLASTP_FI_FAIL(site) \
  (::mublastp::fi::any_armed() && ::mublastp::fi::should_fail(site))
