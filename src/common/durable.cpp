#include "common/durable.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string_view>

#include "common/error.hpp"
#include "common/faultinject.hpp"

namespace mublastp::durable {
namespace {

// One strerror-suffixed kIo throw so every failure message carries the
// syscall's errno text (real or injected).
[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  const int err = errno;
  throw Error(what + " '" + path + "': " + std::strerror(err ? err : EIO),
              ErrorKind::kIo);
}

bool fire(const char* site) {
  return site != nullptr && MUBLASTP_FI_FAIL(site);
}

}  // namespace

std::string temp_path_for(const std::string& path) { return path + ".tmp"; }

bool is_temp_path(const std::string& path) {
  constexpr std::string_view kSuffix = ".tmp";
  return path.size() > kSuffix.size() &&
         path.compare(path.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0;
}

void fsync_file(const std::string& path, const char* site) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_io("cannot open for fsync", path);
  const bool injected = fire(site);
  if (injected || ::fsync(fd) != 0) {
    ::close(fd);
    throw_io(injected ? "injected fsync failure (" + std::string(site) +
                            ") on"
                      : "fsync",
             path);
  }
  ::close(fd);
}

void fsync_parent_dir(const std::string& path, const char* site) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_io("cannot open directory for fsync", parent.string());
  const bool injected = fire(site);
  if (injected || ::fsync(fd) != 0) {
    ::close(fd);
    throw_io(injected ? "injected directory fsync failure (" +
                            std::string(site) + ") on"
                      : "fsync",
             parent.string());
  }
  ::close(fd);
}

void write_file_durable(const std::string& path, const std::string& bytes,
                        const char* write_site, const char* fsync_site) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw_io("cannot create", path);
  const bool write_injected = fire(write_site);
  if (write_injected ||
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size() ||
      std::fflush(f) != 0) {
    std::fclose(f);
    throw_io(write_injected ? "injected write failure on" : "cannot write",
             path);
  }
  const bool fsync_injected = fire(fsync_site);
  if (fsync_injected || ::fsync(fileno(f)) != 0) {
    std::fclose(f);
    throw_io(fsync_injected ? "injected fsync failure on" : "fsync", path);
  }
  std::fclose(f);
}

void publish_rename(const std::string& tmp, const std::string& final_path,
                    const char* rename_site, const char* fsync_site) {
  if (fire(rename_site)) {
    throw_io("injected publish-rename failure on", final_path);
  }
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    throw_io("cannot rename '" + tmp + "' to", final_path);
  }
  fsync_parent_dir(final_path, fsync_site);
}

}  // namespace mublastp::durable
