// Deterministic random number generation.
//
// All stochastic components (synthetic databases, query sampling, planted
// families) draw from this generator so that every experiment is exactly
// reproducible from a printed seed. xoshiro256** is used instead of
// std::mt19937 for speed and because its output is specified bit-exactly,
// unlike std::uniform_*_distribution which may differ across standard
// libraries.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace mublastp {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes state from a 64-bit seed via SplitMix64, which guarantees
  /// a well-mixed nonzero state for any seed value.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) {
    for (;;) {
      const std::uint64_t x = next_u64();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal variate (Marsaglia polar method).
  double next_normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace mublastp
