#include "common/alphabet.hpp"

#include <cctype>

#include "common/error.hpp"

namespace mublastp {
namespace {

// 256-entry ASCII -> residue table, built once at static init.
struct EncodeTable {
  std::array<Residue, 256> map{};
  EncodeTable() {
    map.fill(kResidueX);
    for (std::size_t i = 0; i < kLetters.size(); ++i) {
      const char c = kLetters[i];
      map[static_cast<unsigned char>(c)] = static_cast<Residue>(i);
      map[static_cast<unsigned char>(std::tolower(c))] = static_cast<Residue>(i);
    }
    // Common non-standard codes seen in real FASTA files. U (selenocysteine)
    // is scored like C by convention; J (Leu/Ile) and O (pyrrolysine) fall
    // back to X, matching NCBI makeblastdb behaviour for the 24-letter table.
    map[static_cast<unsigned char>('U')] = encode_of('C');
    map[static_cast<unsigned char>('u')] = encode_of('C');
  }

 private:
  static Residue encode_of(char c) {
    return static_cast<Residue>(kLetters.find(c));
  }
};

const EncodeTable& table() {
  static const EncodeTable t;
  return t;
}

}  // namespace

Residue encode_residue(char c) noexcept {
  return table().map[static_cast<unsigned char>(c)];
}

char decode_residue(Residue r) noexcept {
  return r < kLetters.size() ? kLetters[r] : 'X';
}

std::vector<Residue> encode_sequence(std::string_view ascii) {
  std::vector<Residue> out;
  out.reserve(ascii.size());
  for (char c : ascii) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    out.push_back(encode_residue(c));
  }
  return out;
}

std::string decode_sequence(const std::vector<Residue>& seq) {
  std::string out;
  out.reserve(seq.size());
  for (Residue r : seq) out.push_back(decode_residue(r));
  return out;
}

std::string word_to_string(std::uint32_t key) {
  MUBLASTP_CHECK(key < static_cast<std::uint32_t>(kNumWords),
                 "word key out of range");
  std::array<Residue, kWordLength> w{};
  unpack_word(key, w.data());
  std::string s(kWordLength, '?');
  for (int i = 0; i < kWordLength; ++i) s[i] = decode_residue(w[i]);
  return s;
}

std::uint32_t word_from_string(std::string_view w) {
  MUBLASTP_CHECK(w.size() == static_cast<std::size_t>(kWordLength),
                 "word must have exactly kWordLength letters");
  std::array<Residue, kWordLength> r{};
  for (int i = 0; i < kWordLength; ++i) r[i] = encode_residue(w[i]);
  return word_key(r.data());
}

}  // namespace mublastp
