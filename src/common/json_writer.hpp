// Locale-independent JSON number formatting, shared by every JSON contract
// in the repo (mublastp-stats-v1, mublastp-bench-v1, mublastp-trace-v1).
//
// printf-family float formatting honours LC_NUMERIC: under a comma-decimal
// locale "%.17g" prints "0,5", which silently corrupts the emitted JSON.
// These helpers format through std::to_chars, which is locale-independent
// by specification, then normalize the exponent spelling to printf's
// ("1e-05", sign + at least two digits) so output is byte-identical to the
// historical C-locale "%.17g"/"%.*f" emission on every host.
#pragma once

#include <string>
#include <string_view>

namespace mublastp::jsonw {

/// Appends `v` with round-trip precision — byte-identical to C-locale
/// "%.17g" — regardless of the process locale.
void append_double(std::string& out, double v);

/// Appends `v` in fixed notation with `precision` fractional digits —
/// byte-identical to C-locale "%.*f" — regardless of the process locale.
void append_fixed(std::string& out, double v, int precision);

/// Parses a JSON number token (locale-independent strtod replacement).
/// Returns 0.0 on an empty or malformed token, mirroring strtod's
/// no-conversion behaviour for the minimal parsers built on it.
double parse_double(std::string_view token);

}  // namespace mublastp::jsonw
