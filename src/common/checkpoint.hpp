// Resumable-batch checkpoint journal: a CRC-guarded append-only record of
// completed query batches, so a killed multi-million-query run resumes
// without re-searching what it already finished.
//
// File layout (little-endian, like the index formats):
//   8 bytes  magic "MUCKPT01"
//   4 bytes  run fingerprint (caller-supplied; rejects resume under a
//            different index/query/batch configuration)
//   4 bytes  reserved (zero)
//   N x 24-byte records: { u64 batch_id, u64 out_offset, u32 crc32 of the
//            first 16 bytes, u32 reserved }
//
// Records are appended with write + flush + fsync AFTER the batch's output
// bytes are themselves durable, so a journaled batch id implies its output
// prefix survived the crash. A kill -9 can leave a torn or garbage tail;
// opening the journal replays records until the first short or CRC-invalid
// one, truncates the tail away, and resumes appending from there — the
// interrupted batch is simply re-searched, and because rendering is
// deterministic the resumed output is bit-identical to an uninterrupted
// run (asserted by the CI kill-and-resume job).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_set>

namespace mublastp {

class CheckpointJournal {
 public:
  /// Opens (or creates) the journal at `path` and replays its valid
  /// records. Throws Error(kIo) if the file cannot be opened or created,
  /// Error(kCorrupt) if the header is damaged, and Error(kInvalid) if the
  /// stored fingerprint does not match `fingerprint` (the journal belongs
  /// to a different run configuration — delete it to restart).
  CheckpointJournal(const std::string& path, std::uint32_t fingerprint);
  ~CheckpointJournal();

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// True if `batch` was journaled as completed (possibly by a previous,
  /// killed process).
  bool completed(std::uint64_t batch) const {
    return done_.count(batch) != 0;
  }

  /// Number of completed batches replayed or appended so far.
  std::size_t num_completed() const { return done_.size(); }

  /// Output-file offset recorded by the latest valid record: everything
  /// before it is output of completed batches. 0 for a fresh journal.
  std::uint64_t resume_offset() const { return resume_offset_; }

  /// Journals `batch` as completed with the output file now `out_offset`
  /// bytes long. Durable (flush + fsync) before returning. Throws
  /// Error(kIo) on write failure (injection site "checkpoint.write").
  void append(std::uint64_t batch, std::uint64_t out_offset);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::unordered_set<std::uint64_t> done_;
  std::uint64_t resume_offset_ = 0;
};

}  // namespace mublastp
