#include "common/sequence.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace mublastp {

SeqId SequenceStore::add(std::span<const Residue> residues, std::string name) {
  MUBLASTP_CHECK(!residues.empty(), "cannot add an empty sequence");
  arena_.insert(arena_.end(), residues.begin(), residues.end());
  offsets_.push_back(arena_.size());
  names_.push_back(std::move(name));
  return static_cast<SeqId>(size() - 1);
}

SeqId SequenceStore::add_ascii(std::string_view ascii, std::string name) {
  const std::vector<Residue> enc = encode_sequence(ascii);
  return add(enc, std::move(name));
}

SequenceStore SequenceStore::permuted(const std::vector<SeqId>& order) const {
  MUBLASTP_CHECK(order.size() == size(), "permutation size mismatch");
  SequenceStore out;
  out.arena_.reserve(arena_.size());
  for (SeqId old_id : order) {
    MUBLASTP_CHECK(old_id < size(), "permutation index out of range");
    out.add(sequence(old_id), names_[old_id]);
  }
  return out;
}

std::vector<SeqId> SequenceStore::ids_by_length() const {
  std::vector<SeqId> ids(size());
  std::iota(ids.begin(), ids.end(), SeqId{0});
  std::stable_sort(ids.begin(), ids.end(), [this](SeqId a, SeqId b) {
    return length(a) < length(b);
  });
  return ids;
}

}  // namespace mublastp
