#include "common/json_writer.hpp"

#include <array>
#include <charconv>
#include <cstddef>
#include <cstring>

namespace mublastp::jsonw {
namespace {

// printf spells exponents with a mandatory sign and at least two digits
// ("1e+20", "1e-05"); std::to_chars omits the '+' and leading zero
// ("1e20", "1e-5"). Rewrites the to_chars spelling in place so the output
// stays byte-identical to the historical C-locale printf emission.
void normalize_exponent(std::string& out, std::size_t start) {
  const std::size_t e = out.find('e', start);
  if (e == std::string::npos) return;
  std::size_t digits = e + 1;
  if (digits < out.size() && (out[digits] == '+' || out[digits] == '-')) {
    ++digits;
  } else {
    out.insert(digits, 1, '+');
    ++digits;
  }
  if (out.size() - digits < 2) out.insert(digits, 1, '0');
}

}  // namespace

void append_double(std::string& out, double v) {
  std::array<char, 64> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v,
                                 std::chars_format::general, 17);
  const std::size_t start = out.size();
  out.append(buf.data(), res.ptr);
  normalize_exponent(out, start);
}

void append_fixed(std::string& out, double v, int precision) {
  std::array<char, 512> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v,
                                 std::chars_format::fixed, precision);
  if (res.ec != std::errc{}) {
    // Magnitude too large for the stack buffer; fall back to round-trip form.
    append_double(out, v);
    return;
  }
  out.append(buf.data(), res.ptr);
}

double parse_double(std::string_view token) {
  double v = 0.0;
  std::from_chars(token.data(), token.data() + token.size(), v);
  return v;
}

}  // namespace mublastp::jsonw
