// In-memory sequence storage shared by every engine.
//
// A SequenceStore owns the encoded residues of a whole database in one
// contiguous arena (cache- and prefetcher-friendly; mirrors how BLAST stores
// formatted databases) and exposes each sequence as a span into the arena.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/alphabet.hpp"

namespace mublastp {

/// Identifies a sequence inside a SequenceStore.
using SeqId = std::uint32_t;

/// A database (or query batch) of encoded protein sequences.
class SequenceStore {
 public:
  SequenceStore() = default;

  /// Appends an already-encoded sequence; returns its id.
  SeqId add(std::span<const Residue> residues, std::string name = {});

  /// Appends an ASCII sequence (encoded on the way in); returns its id.
  SeqId add_ascii(std::string_view ascii, std::string name = {});

  /// Number of sequences.
  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Residues of sequence `id`.
  std::span<const Residue> sequence(SeqId id) const {
    return {arena_.data() + offsets_[id], offsets_[id + 1] - offsets_[id]};
  }

  /// Length in residues of sequence `id`.
  std::size_t length(SeqId id) const {
    return offsets_[id + 1] - offsets_[id];
  }

  /// FASTA header (may be empty) of sequence `id`.
  const std::string& name(SeqId id) const { return names_[id]; }

  /// Total residues across all sequences.
  std::size_t total_residues() const { return arena_.size(); }

  /// The raw residue arena (used by the memory-access tracer to compute
  /// logical addresses).
  std::span<const Residue> arena() const { return arena_; }

  /// Byte offset of sequence `id` inside the arena.
  std::size_t arena_offset(SeqId id) const { return offsets_[id]; }

  /// All size() + 1 arena offsets (offsets()[i]..offsets()[i+1] brackets
  /// sequence i). Exposed so index serialization and zero-copy views can
  /// address the arena without per-sequence calls.
  std::span<const std::size_t> arena_offsets() const { return offsets_; }

  /// Returns a copy with sequences permuted by `order` (order[i] = old id of
  /// the sequence that becomes new id i). Used for length-sorting databases.
  SequenceStore permuted(const std::vector<SeqId>& order) const;

  /// Sequence ids sorted by ascending length (ties broken by id, so the
  /// result is deterministic).
  std::vector<SeqId> ids_by_length() const;

 private:
  std::vector<Residue> arena_;
  std::vector<std::size_t> offsets_{0};
  std::vector<std::string> names_;
};

}  // namespace mublastp
