// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) for index-file
// section checksums.
//
// CRC32 is chosen over a cryptographic hash deliberately: the threat model
// is bit rot and truncation, not adversaries, and a table-driven CRC runs at
// memory bandwidth on the multi-hundred-MB sections a mapped index verifies
// at open time. The implementation is self-contained so the index format
// does not depend on zlib being present.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace mublastp {

/// Incrementally extends a CRC32 with `data`. Start (and finish) with
/// `crc = 0`; the update handles the standard pre/post inversion, so
/// `crc32(b, crc32(a, 0))` equals `crc32(ab, 0)`.
std::uint32_t crc32(std::span<const std::byte> data,
                    std::uint32_t crc = 0) noexcept;

/// Convenience overload for raw buffers.
inline std::uint32_t crc32(const void* data, std::size_t size,
                           std::uint32_t crc = 0) noexcept {
  return crc32({static_cast<const std::byte*>(data), size}, crc);
}

}  // namespace mublastp
