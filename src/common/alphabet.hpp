// Protein alphabet handling for muBLASTP.
//
// BLASTP operates on a 24-letter alphabet: the 20 standard amino acids plus
// the ambiguity codes B (Asx), Z (Glx), X (any) and the stop/translation
// marker '*' (paper, Section II-A: "24 possible characters").  Residues are
// stored encoded (0..23) everywhere inside the library; ASCII appears only at
// the FASTA boundary.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mublastp {

/// Encoded residue. Values are indices into ScoreMatrix rows/columns.
using Residue = std::uint8_t;

/// Number of letters in the protein alphabet (20 amino acids + B, Z, X, *).
inline constexpr int kAlphabetSize = 24;

/// Word length W used for hit detection (paper: "Typically, W is 3").
inline constexpr int kWordLength = 3;

/// Number of distinct words of length kWordLength: 24^3 = 13824.
inline constexpr int kNumWords = kAlphabetSize * kAlphabetSize * kAlphabetSize;

/// Canonical letter ordering. This is the classic BLOSUM row order; every
/// scoring matrix in src/score uses the same ordering.
inline constexpr std::string_view kLetters = "ARNDCQEGHILKMFPSTWYVBZX*";

/// Encoded value of the ambiguity residue 'X' (used as the fallback for
/// characters outside the alphabet, e.g. J/O/U).
inline constexpr Residue kResidueX = 22;

/// Maps an ASCII character to its encoded residue; unknown characters and
/// lowercase letters are accepted (lowercase is upcased, unknown -> X).
Residue encode_residue(char c) noexcept;

/// Maps an encoded residue back to its ASCII letter.
char decode_residue(Residue r) noexcept;

/// Encodes an ASCII protein sequence. Whitespace is skipped.
std::vector<Residue> encode_sequence(std::string_view ascii);

/// Decodes an encoded sequence back to ASCII.
std::string decode_sequence(const std::vector<Residue>& seq);

/// Packs kWordLength residues starting at `p` into a word key in
/// [0, kNumWords): key = p[0]*24^2 + p[1]*24 + p[2].
inline constexpr std::uint32_t word_key(const Residue* p) noexcept {
  std::uint32_t k = 0;
  for (int i = 0; i < kWordLength; ++i) {
    k = k * static_cast<std::uint32_t>(kAlphabetSize) + p[i];
  }
  return k;
}

/// Inverse of word_key: writes kWordLength residues into `out`.
inline constexpr void unpack_word(std::uint32_t key, Residue* out) noexcept {
  for (int i = kWordLength - 1; i >= 0; --i) {
    out[i] = static_cast<Residue>(key % kAlphabetSize);
    key /= static_cast<std::uint32_t>(kAlphabetSize);
  }
}

/// Returns the ASCII spelling of a word key, e.g. 0 -> "AAA".
std::string word_to_string(std::uint32_t key);

/// Parses an ASCII word of exactly kWordLength letters into its key.
std::uint32_t word_from_string(std::string_view w);

/// True if the encoded residue is one of the 20 standard amino acids.
inline constexpr bool is_standard_residue(Residue r) noexcept { return r < 20; }

}  // namespace mublastp
