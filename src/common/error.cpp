#include "common/error.hpp"

#include <sstream>

namespace mublastp::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "MUBLASTP_CHECK failed: " << msg << " [" << expr << "] at " << file
     << ":" << line;
  throw Error(os.str());
}

}  // namespace mublastp::detail
