#include "common/error.hpp"

#include <sstream>

namespace mublastp {

const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInvalid: return "invalid";
    case ErrorKind::kIo: return "io";
    case ErrorKind::kCorrupt: return "corrupt";
    case ErrorKind::kResource: return "resource";
    case ErrorKind::kCanceled: return "canceled";
  }
  return "unknown";
}

int exit_code_for(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInvalid: return 1;
    case ErrorKind::kIo: return 4;
    case ErrorKind::kCorrupt: return 5;
    case ErrorKind::kResource: return 6;
    case ErrorKind::kCanceled: return 7;
  }
  return 1;
}

namespace detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg, ErrorKind kind) {
  std::ostringstream os;
  os << "MUBLASTP_CHECK failed: " << msg << " [" << expr << "] at " << file
     << ":" << line;
  throw Error(os.str(), kind);
}

}  // namespace detail
}  // namespace mublastp
