// Error handling: a library-specific exception type plus a CHECK macro for
// precondition violations. Following the C++ Core Guidelines (E.2, I.5) the
// library reports contract violations by throwing, never by aborting, so
// callers and tests can observe failures.
#pragma once

#include <stdexcept>
#include <string>

namespace mublastp {

/// Exception thrown for all muBLASTP error conditions (bad input, violated
/// preconditions, malformed files).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

/// Validates a precondition; throws mublastp::Error with location info on
/// failure. Always active (not compiled out in release builds): the checks
/// guard API boundaries, not inner loops.
#define MUBLASTP_CHECK(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mublastp::detail::throw_check_failure(#expr, __FILE__, __LINE__,  \
                                              (msg));                     \
    }                                                                     \
  } while (false)

}  // namespace mublastp
