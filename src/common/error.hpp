// Error handling: a library-specific exception type plus a CHECK macro for
// precondition violations. Following the C++ Core Guidelines (E.2, I.5) the
// library reports contract violations by throwing, never by aborting, so
// callers and tests can observe failures.
//
// Every Error carries an ErrorKind so callers can branch on *category*
// (retry an Io failure, quarantine a Corrupt block, shrink on Resource)
// without parsing message strings, and so the tools can map each kind to a
// documented process exit code (docs/ROBUSTNESS.md).
#pragma once

#include <stdexcept>
#include <string>

namespace mublastp {

/// Coarse error categories callers are expected to branch on.
enum class ErrorKind {
  kInvalid,   ///< violated precondition / malformed request (default)
  kIo,        ///< the environment failed us: open/read/stat/mmap/write
  kCorrupt,   ///< data failed validation: bad magic, CRC, torn records
  kResource,  ///< allocation, mapping or budget exhaustion
  kCanceled,  ///< the run was cut short on purpose (budget/interrupt)
};

/// Stable lowercase name of a kind ("invalid", "io", "corrupt", ...).
const char* error_kind_name(ErrorKind kind);

/// Documented process exit code for a kind: invalid=1, io=4, corrupt=5,
/// resource=6, canceled=7. (0 = complete, 2 = usage, 3 = partial results;
/// those are not error kinds — see docs/ROBUSTNESS.md for the full table.)
int exit_code_for(ErrorKind kind);

/// Exception thrown for all muBLASTP error conditions (bad input, violated
/// preconditions, malformed files).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrorKind kind = ErrorKind::kInvalid)
      : std::runtime_error(what), kind_(kind) {}

  ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg,
                                      ErrorKind kind = ErrorKind::kInvalid);
}  // namespace detail

/// Validates a precondition; throws mublastp::Error with location info on
/// failure. Always active (not compiled out in release builds): the checks
/// guard API boundaries, not inner loops.
#define MUBLASTP_CHECK(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mublastp::detail::throw_check_failure(#expr, __FILE__, __LINE__,  \
                                              (msg));                     \
    }                                                                     \
  } while (false)

/// Same as MUBLASTP_CHECK but tags the thrown Error with an ErrorKind so
/// callers (and the tools' exit-code mapping) can branch on the category.
#define MUBLASTP_CHECK_KIND(expr, kind, msg)                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::mublastp::detail::throw_check_failure(#expr, __FILE__, __LINE__,  \
                                              (msg), (kind));             \
    }                                                                     \
  } while (false)

}  // namespace mublastp
