// Data-partitioning framework (paper Section IV-D3).
//
// The paper credits muBLASTP's inter-node load balance to its partitioning
// ("sort the database by sequence length, and distribute sequences into
// database blocks/partitions in a round robin manner") and mentions a
// companion framework (PaPar [33]) for expressing such policies. This
// module provides the policies as first-class strategies that return the
// actual sequence -> partition assignment, so both the cluster simulator
// and a real deployment tool can consume them:
//
//  * kContiguous       — split the database in input order (mpiBLAST's
//                        formatdb-style fragmentation);
//  * kRoundRobinSorted — length-sort then deal round-robin (muBLASTP);
//  * kGreedyLpt        — longest-processing-time-first bin packing: always
//                        give the next-longest sequence to the lightest
//                        partition (the classic 4/3-approximation).
#pragma once

#include <cstdint>
#include <vector>

namespace mublastp::cluster {

/// Available partitioning policies.
enum class PartitionStrategy {
  kContiguous,
  kRoundRobinSorted,
  kGreedyLpt,
};

/// A computed partitioning: assignment plus per-partition summaries.
struct Partitioning {
  /// part[i] = partition owning sequence i (input numbering).
  std::vector<std::uint32_t> assignment;
  /// Residues per partition.
  std::vector<double> chars;
  /// Sequence count per partition.
  std::vector<std::size_t> counts;

  /// (max - min) / max of per-partition residue counts — 0 is perfect.
  double imbalance() const;
};

/// Partitions sequences of the given lengths into `parts` partitions.
Partitioning make_partitioning(const std::vector<std::size_t>& seq_lens,
                               int parts, PartitionStrategy strategy);

/// Human-readable strategy name (for bench/table output).
const char* strategy_name(PartitionStrategy strategy);

}  // namespace mublastp::cluster
