// Data-partitioning framework (paper Section IV-D3).
//
// The paper credits muBLASTP's inter-node load balance to its partitioning
// ("sort the database by sequence length, and distribute sequences into
// database blocks/partitions in a round robin manner") and mentions a
// companion framework (PaPar [33]) for expressing such policies. This
// module provides the policies as first-class strategies that return the
// actual sequence -> partition assignment, so both the cluster simulator
// and a real deployment tool can consume them:
//
//  * kContiguous       — split the database in input order (mpiBLAST's
//                        formatdb-style fragmentation);
//  * kRoundRobinSorted — length-sort then deal round-robin (muBLASTP);
//  * kGreedyLpt        — longest-processing-time-first bin packing: always
//                        give the next-longest sequence to the lightest
//                        partition (the classic 4/3-approximation).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace mublastp::cluster {

/// Available partitioning policies.
enum class PartitionStrategy {
  kContiguous,
  kRoundRobinSorted,
  kGreedyLpt,
};

/// A computed partitioning: assignment plus per-partition summaries.
struct Partitioning {
  /// part[i] = partition owning sequence i (input numbering).
  std::vector<std::uint32_t> assignment;
  /// Residues per partition.
  std::vector<double> chars;
  /// Sequence count per partition.
  std::vector<std::size_t> counts;

  /// (max - min) / max of per-partition residue counts — 0 is perfect.
  /// Empty partitions are well-defined (real `--shards=N` hits them when
  /// N exceeds the sequence count): any empty partition alongside a
  /// non-empty one yields 1.0 (maximal imbalance), and an all-empty
  /// partitioning yields 0.0 (no work to balance — never NaN).
  double imbalance() const;
};

/// Partitions sequences of the given lengths into `parts` partitions.
/// `parts` may exceed seq_lens.size(); the surplus partitions come back
/// empty (counts 0) under every strategy.
Partitioning make_partitioning(const std::vector<std::size_t>& seq_lens,
                               int parts, PartitionStrategy strategy);

/// Human-readable strategy name (for bench/table output).
const char* strategy_name(PartitionStrategy strategy);

/// Parses a CLI strategy spec. Accepts the short forms used by
/// `mublastp_makedb --strategy=` ("rr", "lpt", "contig") and the full
/// strategy_name() forms. Throws mublastp::Error(kInvalid) on anything
/// else, naming the accepted spellings.
PartitionStrategy parse_strategy(std::string_view spec);

}  // namespace mublastp::cluster
