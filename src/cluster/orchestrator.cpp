#include "cluster/orchestrator.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <type_traits>

#include "cluster/partition.hpp"
#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "core/results.hpp"
#include "index/db_index_io.hpp"
#include "trace/trace.hpp"

namespace mublastp::cluster {
namespace {

/// Exit status a fault-doomed process-mode child dies with (distinctive, so
/// the quarantine reason can say "injected" vs a real crash).
constexpr int kInjectedExitStatus = 113;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// Result-frame serialization (process mode)
// ---------------------------------------------------------------------------
//
// The child buffers one payload for the whole batch, then writes a single
// frame: u64 payload length, u32 CRC32, payload. The parent drains the pipe
// fully before waitpid, so a child blocked on a full pipe always finishes.
// Payload layout:
//   f64 worker seconds
//   per query: u64 n_alignments; per alignment the GappedAlignment fields
//              (ops as u64 length + bytes); u64 n_ungapped + raw
//              UngappedAlignment records; raw StageStats.
// Traced runs (parent tracer non-null on both sides of the fork) append:
//   u64 n_spans + raw trace::Span records + u64 child epoch (raw
//   CLOCK_MONOTONIC ns, for parent-side re-basing) + u64 dropped spans.

template <typename T>
void put(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

struct FrameReader {
  std::span<const std::byte> bytes;
  std::size_t pos = 0;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos + sizeof(T) > bytes.size()) {
      throw Error("shard result frame truncated", ErrorKind::kIo);
    }
    T v{};
    std::memcpy(&v, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::string get_string(std::uint64_t n) {
    if (n > bytes.size() - pos) {
      throw Error("shard result frame truncated", ErrorKind::kIo);
    }
    std::string s(reinterpret_cast<const char*>(bytes.data() + pos),
                  static_cast<std::size_t>(n));
    pos += static_cast<std::size_t>(n);
    return s;
  }
};

std::string encode_results(double seconds,
                           const std::vector<QueryResult>& results,
                           const trace::Tracer* tracer = nullptr) {
  std::string out;
  put(out, seconds);
  for (const QueryResult& r : results) {
    put(out, static_cast<std::uint64_t>(r.alignments.size()));
    for (const GappedAlignment& a : r.alignments) {
      put(out, a.subject);
      put(out, a.q_start);
      put(out, a.q_end);
      put(out, a.s_start);
      put(out, a.s_end);
      put(out, a.score);
      put(out, a.bit_score);
      put(out, a.evalue);
      put(out, a.anchor_q);
      put(out, a.anchor_s);
      put(out, static_cast<std::uint64_t>(a.ops.size()));
      out.append(a.ops);
    }
    put(out, static_cast<std::uint64_t>(r.ungapped.size()));
    for (const UngappedAlignment& u : r.ungapped) put(out, u);
    put(out, r.stats);
  }
  if (tracer != nullptr) {
    const std::vector<trace::Span>& spans = tracer->spans();
    put(out, static_cast<std::uint64_t>(spans.size()));
    for (const trace::Span& s : spans) put(out, s);
    put(out, tracer->epoch_raw_ns());
    put(out, tracer->dropped());
  }
  return out;
}

/// A fork-mode worker's trace section, decoded alongside its results.
struct ChildTrace {
  std::vector<trace::Span> spans;
  std::uint64_t epoch_raw_ns = 0;
  std::uint64_t dropped = 0;
};

std::vector<QueryResult> decode_results(std::span<const std::byte> payload,
                                        std::size_t num_queries,
                                        double* seconds,
                                        ChildTrace* child_trace = nullptr) {
  FrameReader in{payload};
  *seconds = in.get<double>();
  std::vector<QueryResult> results(num_queries);
  for (QueryResult& r : results) {
    const std::uint64_t n_align = in.get<std::uint64_t>();
    r.alignments.resize(static_cast<std::size_t>(n_align));
    for (GappedAlignment& a : r.alignments) {
      a.subject = in.get<SeqId>();
      a.q_start = in.get<std::uint32_t>();
      a.q_end = in.get<std::uint32_t>();
      a.s_start = in.get<std::uint32_t>();
      a.s_end = in.get<std::uint32_t>();
      a.score = in.get<Score>();
      a.bit_score = in.get<double>();
      a.evalue = in.get<double>();
      a.anchor_q = in.get<std::uint32_t>();
      a.anchor_s = in.get<std::uint32_t>();
      a.ops = in.get_string(in.get<std::uint64_t>());
    }
    const std::uint64_t n_ungapped = in.get<std::uint64_t>();
    r.ungapped.resize(static_cast<std::size_t>(n_ungapped));
    for (UngappedAlignment& u : r.ungapped) u = in.get<UngappedAlignment>();
    r.stats = in.get<StageStats>();
  }
  if (child_trace != nullptr) {
    const std::uint64_t n_spans = in.get<std::uint64_t>();
    if (n_spans > (payload.size() - in.pos) / sizeof(trace::Span)) {
      throw Error("shard result frame truncated", ErrorKind::kIo);
    }
    child_trace->spans.resize(static_cast<std::size_t>(n_spans));
    for (trace::Span& s : child_trace->spans) s = in.get<trace::Span>();
    child_trace->epoch_raw_ns = in.get<std::uint64_t>();
    child_trace->dropped = in.get<std::uint64_t>();
  }
  if (in.pos != payload.size()) {
    throw Error("shard result frame has trailing bytes", ErrorKind::kIo);
  }
  return results;
}

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF before the frame completed
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

std::vector<QueryResult> merge_shard_results(
    const ShardSet& set,
    const std::vector<std::vector<QueryResult>>& per_shard,
    std::size_t num_queries, std::size_t max_alignments) {
  std::vector<std::span<const SeqId>> remaps(set.shard_count());
  for (std::uint32_t k = 0; k < set.shard_count(); ++k) {
    remaps[k] = set.to_global(k);
  }
  return merge_partition_results(per_shard, remaps, num_queries,
                                 max_alignments);
}

// ---------------------------------------------------------------------------
// Shard construction helpers
// ---------------------------------------------------------------------------

MuBlastpOptions shard_engine_options(const ShardSetOptions& opts,
                                     std::uint64_t combined_residues) {
  MuBlastpOptions engine = opts.engine;
  // The one invariant sharding lives on: every shard prices E-values over
  // the combined search space, exactly like the unsharded run.
  engine.effective_db_residues = combined_residues;
  return engine;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

bool final_ranking_less(const GappedAlignment& a, const GappedAlignment& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.subject != b.subject) return a.subject < b.subject;
  if (a.q_start != b.q_start) return a.q_start < b.q_start;
  return a.s_start < b.s_start;
}

std::vector<QueryResult> merge_partition_results(
    const std::vector<std::vector<QueryResult>>& per_member,
    const std::vector<std::span<const SeqId>>& to_global,
    std::size_t num_queries, std::size_t max_alignments) {
  std::vector<QueryResult> merged(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    QueryResult& out = merged[q];
    std::size_t total_alignments = 0;
    std::size_t total_ungapped = 0;
    for (std::size_t k = 0; k < per_member.size(); ++k) {
      if (per_member[k].empty()) continue;
      total_alignments += per_member[k][q].alignments.size();
      total_ungapped += per_member[k][q].ungapped.size();
    }
    out.alignments.reserve(total_alignments);
    out.ungapped.reserve(total_ungapped);
    for (std::size_t k = 0; k < per_member.size(); ++k) {
      if (per_member[k].empty()) continue;  // quarantined or empty member
      const QueryResult& r = per_member[k][q];
      const std::span<const SeqId> remap = to_global[k];
      for (GappedAlignment a : r.alignments) {
        a.subject = remap[a.subject];
        out.alignments.push_back(std::move(a));
      }
      for (UngappedAlignment u : r.ungapped) {
        u.subject = remap[u.subject];
        out.ungapped.push_back(u);
      }
      out.stats += r.stats;
    }
    std::stable_sort(out.alignments.begin(), out.alignments.end(),
                     final_ranking_less);
    if (out.alignments.size() > max_alignments) {
      out.alignments.resize(max_alignments);
    }
    canonicalize_ungapped(out.ungapped);
  }
  return merged;
}

const char* shard_mode_name(ShardWorkerMode mode) {
  switch (mode) {
    case ShardWorkerMode::kThread: return "thread";
    case ShardWorkerMode::kProcess: return "process";
  }
  return "unknown";
}

ShardWorkerMode parse_shard_mode(std::string_view spec) {
  if (spec == "thread") return ShardWorkerMode::kThread;
  if (spec == "process") return ShardWorkerMode::kProcess;
  throw Error("unknown shard worker mode '" + std::string(spec) +
              "' (expected thread or process)");
}

double ShardSet::predicted_imbalance() const {
  if (shards_.empty()) return 0.0;
  std::uint64_t lo = shards_.front().num_residues;
  std::uint64_t hi = lo;
  for (const Shard& s : shards_) {
    lo = std::min(lo, s.num_residues);
    hi = std::max(hi, s.num_residues);
  }
  if (hi == 0) return 0.0;
  return static_cast<double>(hi - lo) / static_cast<double>(hi);
}

ShardSet ShardSet::load(const std::string& path, const ShardSetOptions& opts,
                        stats::DegradedStats* degraded) {
  MUBLASTP_CHECK(opts.strict || degraded != nullptr,
                 "non-strict ShardSet::load needs a DegradedStats sink");
  const ShardManifest manifest = load_shard_manifest(path);
  const std::string dir = dirname_of(path);

  ShardSet set;
  set.total_sequences_ = manifest.total_sequences;
  set.total_residues_ = manifest.total_residues;
  set.strategy_ = manifest.strategy;
  set.options_ = opts;
  set.shards_.resize(manifest.shards.size());

  for (std::uint32_t k = 0; k < manifest.shard_count(); ++k) {
    const ShardManifest::Shard& m = manifest.shards[k];
    Shard& shard = set.shards_[k];
    shard.to_global = m.to_global;
    shard.num_residues = m.num_residues;
    if (m.num_sequences == 0) continue;  // empty shard: no index file

    const std::string shard_path = dir + "/" + m.path;
    try {
      std::ifstream in(shard_path, std::ios::binary);
      MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kIo,
                          "cannot open shard index: " + shard_path);
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      MUBLASTP_CHECK_KIND(!in.bad(), ErrorKind::kIo,
                          "failed reading shard index: " + shard_path);
      // Whole-file CRC against the manifest: names a rotted shard before
      // the (section-level) index loader even runs.
      const std::uint32_t crc = crc32(bytes.data(), bytes.size());
      MUBLASTP_CHECK_KIND(crc == m.index_crc32, ErrorKind::kCorrupt,
                          "shard " + std::to_string(k) +
                              " index checksum mismatch (manifest says " +
                              std::to_string(m.index_crc32) + ", file has " +
                              std::to_string(crc) + ")");
      std::istringstream stream(std::move(bytes));
      auto index = std::make_unique<DbIndex>(load_db_index(stream));
      // Structural cross-check: the index must describe the slice the
      // manifest promised.
      const DbIndexView view(*index);
      MUBLASTP_CHECK_KIND(view.num_sequences() == m.num_sequences &&
                              view.total_residues() == m.num_residues,
                          ErrorKind::kCorrupt,
                          "shard " + std::to_string(k) +
                              " index does not match its manifest entry");
      shard.engine = std::make_unique<MuBlastpEngine>(
          DbIndexView(*index), opts.params,
          shard_engine_options(opts, manifest.total_residues));
      shard.index = std::move(index);
    } catch (const Error& e) {
      if (opts.strict) throw;
      degraded->quarantined_shards.push_back({k, e.what()});
      degraded->partial = true;
      shard.index.reset();
      shard.engine.reset();
    }
  }

  // Rebuild the database in global original-id order for report rendering.
  // Quarantined shards contribute empty placeholders (they contribute no
  // alignments either, so the placeholders are never rendered).
  std::vector<std::pair<std::uint32_t, SeqId>> locate(
      manifest.total_sequences, {0, 0});
  for (std::uint32_t k = 0; k < set.shard_count(); ++k) {
    const auto& tg = set.shards_[k].to_global;
    for (SeqId local = 0; local < tg.size(); ++local) {
      locate[tg[local]] = {k, local};
    }
  }
  for (std::uint64_t g = 0; g < manifest.total_sequences; ++g) {
    const auto [k, local] = locate[g];
    const Shard& shard = set.shards_[k];
    if (shard.index == nullptr) {
      // Placeholder for a load-quarantined shard's sequence (the store
      // rejects truly empty sequences). Never rendered: a quarantined
      // shard contributes no alignments, so nothing references this id.
      const Residue placeholder{};
      set.global_db_.add({&placeholder, 1}, {});
      continue;
    }
    const SeqId sorted = shard.index->sorted_id(local);
    set.global_db_.add(shard.index->db().sequence(sorted),
                       shard.index->db().name(sorted));
  }
  return set;
}

ShardSet ShardSet::build_in_memory(const SequenceStore& db, int shards,
                                   PartitionStrategy strategy,
                                   const DbIndexConfig& config,
                                   const ShardSetOptions& opts) {
  MUBLASTP_CHECK(shards >= 1, "shard count must be >= 1");
  std::vector<std::size_t> seq_lens(db.size());
  for (SeqId i = 0; i < db.size(); ++i) seq_lens[i] = db.length(i);
  const Partitioning parts = make_partitioning(seq_lens, shards, strategy);

  ShardSet set;
  set.total_sequences_ = db.size();
  set.total_residues_ = db.total_residues();
  set.strategy_ = strategy;
  set.options_ = opts;
  set.shards_.resize(static_cast<std::size_t>(shards));
  for (SeqId i = 0; i < db.size(); ++i) {
    // Ascending global-id walk: each shard's to_global comes out strictly
    // increasing, and its store's local order is the global order
    // restricted to the shard.
    set.shards_[parts.assignment[i]].to_global.push_back(i);
  }
  for (Shard& shard : set.shards_) {
    if (shard.to_global.empty()) continue;
    SequenceStore shard_db;
    for (const SeqId g : shard.to_global) {
      shard_db.add(db.sequence(g), db.name(g));
      shard.num_residues += db.length(g);
    }
    shard.index = std::make_unique<DbIndex>(DbIndex::build(shard_db, config));
    shard.engine = std::make_unique<MuBlastpEngine>(
        DbIndexView(*shard.index), opts.params,
        shard_engine_options(opts, db.total_residues()));
  }
  for (SeqId i = 0; i < db.size(); ++i) {
    set.global_db_.add(db.sequence(i), db.name(i));
  }
  return set;
}

namespace {

struct WorkerOutcome {
  std::vector<QueryResult> results;  ///< empty when the shard failed
  double seconds = 0.0;
  bool failed = false;
  std::string reason;
};

void run_thread_workers(const ShardSet& set, const SequenceStore& queries,
                        int threads, const std::vector<bool>& doomed,
                        std::vector<WorkerOutcome>& outcomes,
                        trace::Tracer* tracer) {
  std::vector<std::uint32_t> live;
  for (std::uint32_t k = 0; k < set.shard_count(); ++k) {
    if (set.engine(k) != nullptr && !doomed[k]) live.push_back(k);
  }
  const int per_shard = std::max<int>(
      1, threads / std::max<std::size_t>(1, live.size()));

  // One child tracer per live shard, sharing the parent's clock epoch so
  // the absorbed spans need no re-basing (offset 0).
  std::vector<std::unique_ptr<trace::Tracer>> child_tracers(
      set.shard_count());
  if (tracer != nullptr) {
    for (const std::uint32_t k : live) {
      child_tracers[k] = std::make_unique<trace::Tracer>(
          tracer->options(), tracer->epoch_raw_ns(), k);
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(live.size());
  for (const std::uint32_t k : live) {
    workers.emplace_back([&, k] {
      WorkerOutcome& out = outcomes[k];
      trace::Tracer* ct = child_tracers[k].get();
      const std::uint64_t span_begin = ct != nullptr ? ct->now_ns() : 0;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        out.results = set.engine(k)->search_batch(queries, per_shard,
                                                  nullptr, nullptr, ct);
      } catch (const std::exception& e) {
        out.failed = true;
        out.reason = e.what();
        out.results.clear();
      }
      out.seconds = seconds_since(t0);
      if (ct != nullptr) {
        ct->record(trace::SpanKind::kShardWorker, span_begin, ct->now_ns(),
                   trace::kNoId, trace::kNoId, k);
        ct->flush();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  if (tracer != nullptr) {
    for (const std::uint32_t k : live) {
      const trace::Tracer& ct = *child_tracers[k];
      tracer->absorb(ct.spans().data(), ct.spans().size(), 0, k);
      tracer->add_dropped(ct.dropped());
    }
  }
  for (std::uint32_t k = 0; k < set.shard_count(); ++k) {
    if (doomed[k] && set.engine(k) != nullptr) {
      outcomes[k].failed = true;
      outcomes[k].reason = "shard worker failed (injected fault)";
    }
  }
}

void run_process_workers(const ShardSet& set, const SequenceStore& queries,
                         const std::vector<bool>& doomed,
                         std::vector<WorkerOutcome>& outcomes,
                         trace::Tracer* tracer) {
  struct Child {
    std::uint32_t shard = 0;
    pid_t pid = -1;
    int fd = -1;
  };
  std::vector<Child> children;

  for (std::uint32_t k = 0; k < set.shard_count(); ++k) {
    if (set.engine(k) == nullptr) continue;
    int fds[2];
    if (::pipe(fds) != 0) {
      outcomes[k].failed = true;
      outcomes[k].reason = std::string("pipe failed: ") +
                           std::strerror(errno);
      continue;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      outcomes[k].failed = true;
      outcomes[k].reason = std::string("fork failed: ") +
                           std::strerror(errno);
      continue;
    }
    if (pid == 0) {
      // Child. A doomed child dies like a real crash so the parent's
      // recovery path (EOF on the pipe + nonzero waitpid status) is the
      // one exercised. Live children must stay out of OpenMP regions —
      // libgomp state does not survive fork — so the batch runs as a
      // plain single-threaded loop.
      ::close(fds[0]);
      if (doomed[k]) ::_exit(kInjectedExitStatus);
      int status = 0;
      try {
        // The child builds its own tracer post-fork (the parent's lanes
        // and thread-local caches don't survive fork): same options, its
        // own epoch. The epoch ships back in the frame so the parent can
        // re-base — CLOCK_MONOTONIC is system-wide, so the offset is just
        // the epoch difference.
        std::unique_ptr<trace::Tracer> child_tracer;
        if (tracer != nullptr) {
          child_tracer = std::make_unique<trace::Tracer>(tracer->options());
          child_tracer->set_shard(k);
        }
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<QueryResult> results;
        results.reserve(queries.size());
        for (SeqId q = 0; q < queries.size(); ++q) {
          if (child_tracer != nullptr) {
            results.push_back(set.engine(k)->search(
                queries.sequence(q), static_cast<std::uint32_t>(q),
                *child_tracer));
          } else {
            results.push_back(set.engine(k)->search(queries.sequence(q)));
          }
        }
        if (child_tracer != nullptr) {
          child_tracer->record(trace::SpanKind::kShardWorker, 0,
                               child_tracer->now_ns(), trace::kNoId,
                               trace::kNoId, k);
          child_tracer->flush();
        }
        const std::string payload = encode_results(
            seconds_since(t0), results, child_tracer.get());
        const std::uint64_t len = payload.size();
        const std::uint32_t crc = crc32(payload.data(), payload.size());
        if (!write_all(fds[1], &len, sizeof(len)) ||
            !write_all(fds[1], &crc, sizeof(crc)) ||
            !write_all(fds[1], payload.data(), payload.size())) {
          status = 1;
        }
      } catch (...) {
        status = 1;
      }
      ::close(fds[1]);
      ::_exit(status);
    }
    ::close(fds[1]);
    children.push_back({k, pid, fds[0]});
  }

  // Drain each pipe fully, in shard order, then reap. Children blocked on
  // a full pipe unblock when their turn comes; no deadlock.
  for (const Child& c : children) {
    WorkerOutcome& out = outcomes[c.shard];
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    std::string payload;
    bool frame_ok = read_all(c.fd, &len, sizeof(len)) &&
                    read_all(c.fd, &crc, sizeof(crc));
    if (frame_ok) {
      payload.resize(static_cast<std::size_t>(len));
      frame_ok = payload.empty() ||
                 read_all(c.fd, payload.data(), payload.size());
    }
    ::close(c.fd);
    int status = 0;
    while (::waitpid(c.pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      out.failed = true;
      if (WIFEXITED(status) && WEXITSTATUS(status) == kInjectedExitStatus) {
        out.reason = "shard worker exited with status " +
                     std::to_string(kInjectedExitStatus) +
                     " (injected fault)";
      } else if (WIFSIGNALED(status)) {
        out.reason = "shard worker killed by signal " +
                     std::to_string(WTERMSIG(status));
      } else {
        out.reason = "shard worker exited with status " +
                     std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                                      : -1);
      }
      continue;
    }
    if (!frame_ok) {
      out.failed = true;
      out.reason = "shard worker result frame truncated";
      continue;
    }
    if (crc32(payload.data(), payload.size()) != crc) {
      out.failed = true;
      out.reason = "shard worker result frame checksum mismatch";
      continue;
    }
    try {
      ChildTrace child_trace;
      out.results = decode_results(
          {reinterpret_cast<const std::byte*>(payload.data()),
           payload.size()},
          queries.size(), &out.seconds,
          tracer != nullptr ? &child_trace : nullptr);
      if (tracer != nullptr) {
        const std::int64_t offset =
            static_cast<std::int64_t>(child_trace.epoch_raw_ns) -
            static_cast<std::int64_t>(tracer->epoch_raw_ns());
        tracer->absorb(child_trace.spans.data(), child_trace.spans.size(),
                       offset, c.shard);
        tracer->add_dropped(child_trace.dropped);
      }
    } catch (const std::exception& e) {
      out.failed = true;
      out.reason = e.what();
      out.results.clear();
    }
  }
}

}  // namespace

ShardedSearchResult search_sharded(const ShardSet& set,
                                   const SequenceStore& queries,
                                   int threads, ShardWorkerMode mode,
                                   trace::Tracer* tracer) {
  MUBLASTP_CHECK(set.shard_count() > 0, "shard set is empty");
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }

  // Evaluate the injection site in the parent, once per shard in ascending
  // order — deterministic regardless of worker scheduling, and immune to
  // fork duplicating the counter into every child.
  std::vector<bool> doomed(set.shard_count(), false);
  for (std::uint32_t k = 0; k < set.shard_count(); ++k) {
    if (set.engine(k) == nullptr) continue;
    doomed[k] = MUBLASTP_FI_FAIL("shard.worker");
  }

  std::vector<WorkerOutcome> outcomes(set.shard_count());
  if (mode == ShardWorkerMode::kThread) {
    run_thread_workers(set, queries, threads, doomed, outcomes, tracer);
  } else {
    run_process_workers(set, queries, doomed, outcomes, tracer);
  }

  ShardedSearchResult out;
  out.shards.count = set.shard_count();
  out.shards.mode = shard_mode_name(mode);
  out.shards.strategy = strategy_name(set.strategy());
  out.shards.imbalance_predicted = set.predicted_imbalance();

  std::vector<std::vector<QueryResult>> per_shard(set.shard_count());
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (std::uint32_t k = 0; k < set.shard_count(); ++k) {
    WorkerOutcome& o = outcomes[k];
    if (o.failed) {
      if (set.options().strict) {
        throw Error("shard " + std::to_string(k) + " failed: " + o.reason,
                    ErrorKind::kIo);
      }
      out.degraded.quarantined_shards.push_back({k, o.reason});
      out.degraded.partial = true;
      o.results.clear();
    }
    stats::ShardStats entry;
    entry.shard = k;
    entry.seconds = o.seconds;
    for (const QueryResult& r : o.results) {
      entry.hits += r.stats.hits;
      entry.alignments += r.alignments.size();
    }
    out.shards.per_shard.push_back(entry);
    if (set.engine(k) != nullptr && !o.failed) {
      lo = first ? o.seconds : std::min(lo, o.seconds);
      hi = first ? o.seconds : std::max(hi, o.seconds);
      first = false;
    }
    per_shard[k] = std::move(o.results);
  }
  out.shards.imbalance_measured = hi > 0.0 ? (hi - lo) / hi : 0.0;

  const std::uint64_t merge_begin =
      tracer != nullptr ? tracer->now_ns() : 0;
  out.results = merge_shard_results(set, per_shard, queries.size(),
                                    set.options().params.max_alignments);
  if (tracer != nullptr) {
    tracer->record(trace::SpanKind::kMerge, merge_begin, tracer->now_ns());
    tracer->flush();
  }
  return out;
}

}  // namespace mublastp::cluster
