#include "cluster/partition.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/error.hpp"

namespace mublastp::cluster {

double Partitioning::imbalance() const {
  MUBLASTP_CHECK(!chars.empty(), "empty partitioning");
  // The max == 0 guard defines the all-empty case as 0.0 (nothing to
  // balance) instead of 0/0 = NaN; a mix of empty and non-empty partitions
  // falls through to (max - 0) / max = 1.0.
  const auto [lo, hi] = std::minmax_element(chars.begin(), chars.end());
  return *hi == 0.0 ? 0.0 : (*hi - *lo) / *hi;
}

PartitionStrategy parse_strategy(std::string_view spec) {
  if (spec == "rr" || spec == "round-robin-sorted") {
    return PartitionStrategy::kRoundRobinSorted;
  }
  if (spec == "lpt" || spec == "greedy-lpt") {
    return PartitionStrategy::kGreedyLpt;
  }
  if (spec == "contig" || spec == "contiguous") {
    return PartitionStrategy::kContiguous;
  }
  throw Error("unknown partition strategy '" + std::string(spec) +
              "' (expected rr, lpt or contig)");
}

const char* strategy_name(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kContiguous:
      return "contiguous";
    case PartitionStrategy::kRoundRobinSorted:
      return "round-robin-sorted";
    case PartitionStrategy::kGreedyLpt:
      return "greedy-lpt";
  }
  return "unknown";
}

Partitioning make_partitioning(const std::vector<std::size_t>& seq_lens,
                               int parts, PartitionStrategy strategy) {
  MUBLASTP_CHECK(parts > 0, "parts must be positive");
  MUBLASTP_CHECK(!seq_lens.empty(), "no sequences to partition");
  const auto p = static_cast<std::size_t>(parts);
  Partitioning out;
  out.assignment.resize(seq_lens.size());
  out.chars.assign(p, 0.0);
  out.counts.assign(p, 0);

  const auto assign = [&](std::size_t seq, std::size_t part) {
    out.assignment[seq] = static_cast<std::uint32_t>(part);
    out.chars[part] += static_cast<double>(seq_lens[seq]);
    ++out.counts[part];
  };

  switch (strategy) {
    case PartitionStrategy::kContiguous: {
      const std::size_t n = seq_lens.size();
      for (std::size_t part = 0; part < p; ++part) {
        const std::size_t lo = n * part / p;
        const std::size_t hi = n * (part + 1) / p;
        for (std::size_t i = lo; i < hi; ++i) assign(i, part);
      }
      break;
    }
    case PartitionStrategy::kRoundRobinSorted: {
      std::vector<std::size_t> order(seq_lens.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return seq_lens[a] < seq_lens[b];
                       });
      for (std::size_t rank = 0; rank < order.size(); ++rank) {
        assign(order[rank], rank % p);
      }
      break;
    }
    case PartitionStrategy::kGreedyLpt: {
      std::vector<std::size_t> order(seq_lens.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return seq_lens[a] > seq_lens[b];
                       });
      // Min-heap of (load, partition).
      using Slot = std::pair<double, std::size_t>;
      std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
      for (std::size_t part = 0; part < p; ++part) heap.push({0.0, part});
      for (const std::size_t seq : order) {
        auto [load, part] = heap.top();
        heap.pop();
        assign(seq, part);
        heap.push({load + static_cast<double>(seq_lens[seq]), part});
      }
      break;
    }
  }
  return out;
}

}  // namespace mublastp::cluster
