// Multi-node execution simulator (paper Section IV-D / Figure 10).
//
// The paper's inter-node results come from 128 Stampede nodes running MPI;
// neither MPI nor that hardware is available here, so the *scheduling
// designs* are reproduced in a discrete-event simulation:
//
//  * muBLASTP model — one process per node with t threads; the database is
//    length-sorted and distributed round-robin so every node holds a
//    partition of nearly identical size and length mix; queries are
//    broadcast; nodes work independently on the whole batch and results are
//    merged ONCE per batch by a tree reduction.
//  * mpiBLAST model — cores_per_node single-threaded workers per node; the
//    (unsorted) database is split into contiguous fragments, one per
//    worker; queries run synchronously one at a time: the master schedules
//    a query to the group, waits for the slowest fragment, and serially
//    merges the per-worker results before starting the next query
//    (mpiBLAST's per-query merge barrier).
//
// Task costs come from a calibrated model: cost(q, partition) =
// (fixed + sec_per_cell * query_len * partition_chars) * density(q), where
// density is a per-query lognormal factor expressing BLAST's
// input-sensitivity ("the execution time is unpredictable"). The bench
// calibrates sec_per_cell against a real measured single-node muBLASTP run
// so absolute times are grounded in this machine's kernel speed.
#pragma once

#include <cstdint>
#include <vector>

namespace mublastp::cluster {

/// Calibration of the per-task cost model.
struct CostModelParams {
  /// Seconds per (query residue x partition residue) of search work.
  double sec_per_cell = 2.0e-10;
  /// Fixed per-(query, partition) overhead in seconds.
  double query_fixed_sec = 5.0e-4;
  /// Lognormal sigma of the per-query cost multiplier (irregularity).
  double irregularity_sigma = 0.5;
  /// Homolog hot-spot: the share of a query's total work concentrated on
  /// its best-matching subject sequence (extension work clusters there).
  /// A single sequence lives in exactly one partition, so this share lands
  /// whole on one column — harmless for node-sized partitions, ruinous for
  /// worker-sized fragments. Median share (lognormal with hotspot_sigma).
  double hotspot_share_median = 6.0e-4;
  double hotspot_sigma = 0.8;
};

/// cost[q][p]: seconds for query q against partition p at one core.
std::vector<std::vector<double>> cost_matrix(
    const std::vector<std::size_t>& query_lens,
    const std::vector<double>& partition_chars, const CostModelParams& params,
    std::uint64_t seed);

/// muBLASTP partitioning: sort sequences by length, deal them round-robin
/// into `parts` partitions; returns each partition's residue count.
std::vector<double> partition_chars_round_robin_sorted(
    const std::vector<std::size_t>& seq_lens, int parts);

/// mpiBLAST partitioning: contiguous chunks of the database in its original
/// order, one per worker; returns each fragment's residue count.
std::vector<double> partition_chars_contiguous(
    const std::vector<std::size_t>& seq_lens, int parts);

/// muBLASTP cluster parameters.
struct MuBlastpClusterConfig {
  int nodes = 1;
  int threads_per_node = 16;
  /// Parallel efficiency of the intra-node OpenMP region (cache sharing
  /// makes this high; Section V reports 88-92% end-to-end).
  double thread_efficiency = 0.95;
  /// Per-hop cost of the final tree reduction (latency + batch payload —
  /// small: only the top-ranked alignments of the batch travel).
  double merge_hop_sec = 0.02;
};

/// mpiBLAST cluster parameters.
struct MpiBlastClusterConfig {
  int nodes = 1;
  int procs_per_node = 16;
  /// Master overhead to issue one query to the group.
  double sched_overhead_sec = 1.0e-3;
  /// Master time to fold ONE worker's result into a query's merged output
  /// (the per-query serial merge).
  double merge_per_worker_sec = 5.0e-6;
  /// Slowdown of each worker from memory-bandwidth contention: 16
  /// independent processes do not share index or sequence data the way 16
  /// threads sharing one block do.
  double mem_contention = 1.25;
  /// Algorithmic slowdown of an mpiBLAST worker relative to the calibrated
  /// muBLASTP kernel: mpiBLAST runs query-indexed NCBI-BLAST per fragment
  /// (no reusable database index), which Figure 9 shows is several times
  /// slower per core. Calibrate from the fig9 bench measurement.
  double worker_slowdown = 2.5;
};

/// Full accounting of one simulated run.
struct SimReport {
  double total_sec = 0.0;           ///< simulated wall-clock
  std::vector<double> busy_sec;     ///< per node (mu) / per worker (mpi)
  double merge_sec = 0.0;           ///< wall-clock attributable to merging
  double sched_sec = 0.0;           ///< wall-clock attributable to scheduling

  /// Mean fraction of the run each execution unit spent busy — the
  /// load-balance diagnostic behind the efficiency numbers.
  double utilization() const;
};

/// Simulated run of the muBLASTP design with full accounting. `costs` must
/// have one partition column per node (round-robin partitioning).
SimReport simulate_mublastp_report(const std::vector<std::vector<double>>& costs,
                                   const MuBlastpClusterConfig& config);

/// Simulated wall-clock seconds for the muBLASTP design.
double simulate_mublastp(const std::vector<std::vector<double>>& costs,
                         const MuBlastpClusterConfig& config);

/// Simulated run of the mpiBLAST design with full accounting. `costs` must
/// have one fragment column per worker (nodes * procs_per_node).
SimReport simulate_mpiblast_report(const std::vector<std::vector<double>>& costs,
                                   const MpiBlastClusterConfig& config);

/// Simulated wall-clock seconds for the mpiBLAST design.
double simulate_mpiblast(const std::vector<std::vector<double>>& costs,
                         const MpiBlastClusterConfig& config);

/// Strong-scaling efficiency: t1 / (n * tn).
double scaling_efficiency(double t1, double tn, int n);

}  // namespace mublastp::cluster
