#include "cluster/shard_manifest.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>
#include <type_traits>

#include "common/checksum.hpp"
#include "common/durable.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "index/db_index_format.hpp"

namespace mublastp::cluster {
namespace {

constexpr char kMagic[12] = "MUSHARD01";  // NUL-padded to 12 bytes
constexpr std::size_t kNumSections = 4;

template <typename T>
void append_pod(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

std::size_t align_up(std::size_t n) {
  return (n + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

[[noreturn]] void fail_section(ShardSectionId id, const std::string& what) {
  throw Error("shard manifest section '" +
                  std::string(shard_section_name(id)) + "' " + what,
              ErrorKind::kCorrupt);
}

[[noreturn]] void fail_file(const std::string& what) {
  throw Error("shard manifest " + what, ErrorKind::kCorrupt);
}

}  // namespace

std::string_view shard_section_name(ShardSectionId id) {
  switch (id) {
    case ShardSectionId::kConfig: return "config";
    case ShardSectionId::kShardMeta: return "shard-meta";
    case ShardSectionId::kRemap: return "remap";
    case ShardSectionId::kPaths: return "paths";
  }
  return "unknown";
}

double ShardManifest::predicted_imbalance() const {
  if (shards.empty()) return 0.0;
  std::uint64_t lo = shards.front().num_residues;
  std::uint64_t hi = lo;
  for (const Shard& s : shards) {
    lo = std::min(lo, s.num_residues);
    hi = std::max(hi, s.num_residues);
  }
  // Same empty-partition semantics as Partitioning::imbalance: all-empty is
  // perfectly balanced (0.0), never NaN.
  if (hi == 0) return 0.0;
  return static_cast<double>(hi - lo) / static_cast<double>(hi);
}

void save_shard_manifest(const std::string& path,
                         const ShardManifest& manifest) {
  MUBLASTP_CHECK(!manifest.shards.empty(),
                 "shard manifest needs at least one shard");

  // Validate the input is self-consistent before anything hits disk: the
  // loader enforces these invariants, so a writer bug should fail here,
  // loudly, not at the next load.
  std::uint64_t sum_seqs = 0;
  std::uint64_t sum_residues = 0;
  for (const ShardManifest::Shard& s : manifest.shards) {
    MUBLASTP_CHECK(s.to_global.size() == s.num_sequences,
                   "shard remap size must match its sequence count");
    MUBLASTP_CHECK(s.path.empty() == (s.num_sequences == 0),
                   "shard path must be empty exactly for empty shards");
    MUBLASTP_CHECK(s.path.find('\0') == std::string::npos,
                   "shard path must not contain NUL");
    for (std::size_t i = 1; i < s.to_global.size(); ++i) {
      MUBLASTP_CHECK(s.to_global[i - 1] < s.to_global[i],
                     "shard remap must be strictly increasing");
    }
    sum_seqs += s.num_sequences;
    sum_residues += s.num_residues;
  }
  MUBLASTP_CHECK(sum_seqs == manifest.total_sequences,
                 "shard sequence counts must sum to total_sequences");
  MUBLASTP_CHECK(sum_residues == manifest.total_residues,
                 "shard residue counts must sum to total_residues");

  // Build the four section payloads.
  const std::uint32_t shard_count = manifest.shard_count();
  std::string config;
  ShardConfigRecord cfg{};
  cfg.shard_count = shard_count;
  cfg.strategy = static_cast<std::uint32_t>(manifest.strategy);
  cfg.total_sequences = manifest.total_sequences;
  cfg.total_residues = manifest.total_residues;
  append_pod(config, cfg);

  std::string meta;
  std::string remap;
  std::string paths;
  std::uint64_t remap_offset = 0;
  for (const ShardManifest::Shard& s : manifest.shards) {
    ShardMetaRecord rec{};
    rec.num_sequences = s.num_sequences;
    rec.num_residues = s.num_residues;
    rec.remap_offset = remap_offset;
    rec.index_crc32 = s.index_crc32;
    rec.reserved = 0;
    append_pod(meta, rec);
    remap_offset += s.num_sequences;
    for (const SeqId id : s.to_global) append_pod(remap, id);
    paths.append(s.path);
    paths.push_back('\0');
  }

  const std::string* payloads[kNumSections] = {&config, &meta, &remap,
                                               &paths};
  constexpr ShardSectionId kIds[kNumSections] = {
      ShardSectionId::kConfig, ShardSectionId::kShardMeta,
      ShardSectionId::kRemap, ShardSectionId::kPaths};

  // Lay out the file: header, table, aligned payloads.
  const std::size_t table_bytes = kNumSections * sizeof(SectionRecord);
  std::uint64_t cursor = align_up(sizeof(ShardManifestHeader) + table_bytes);
  SectionRecord table[kNumSections];
  for (std::size_t i = 0; i < kNumSections; ++i) {
    table[i].id = static_cast<std::uint32_t>(kIds[i]);
    table[i].reserved = 0;
    table[i].offset = cursor;
    table[i].length = payloads[i]->size();
    table[i].crc32 = crc32(payloads[i]->data(), payloads[i]->size());
    cursor = align_up(cursor + payloads[i]->size());
  }

  ShardManifestHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(header.magic));
  header.version = kShardManifestVersion;
  header.section_count = kNumSections;
  header.table_crc32 = crc32(table, table_bytes);
  header.file_bytes = cursor;

  std::string image;
  image.reserve(cursor);
  append_pod(image, header);
  image.append(reinterpret_cast<const char*>(table), table_bytes);
  for (std::size_t i = 0; i < kNumSections; ++i) {
    image.resize(table[i].offset, '\0');
    image.append(*payloads[i]);
  }
  image.resize(cursor, '\0');

  // Publish with the durable protocol (temp → fsync → atomic rename → dir
  // fsync): a crash while makedb writes the manifest leaves either the old
  // manifest (or none) plus an orphaned .tmp, never a torn MUSHARD01.
  const std::string tmp = durable::temp_path_for(path);
  durable::write_file_durable(tmp, image, "build.manifest_write",
                              "build.fsync");
  durable::publish_rename(tmp, path, "build.publish_rename", "build.fsync");
}

ShardManifest parse_shard_manifest(std::span<const std::byte> image) {
  if (image.size() < sizeof(ShardManifestHeader)) {
    fail_file("is too short for a header (truncated file)");
  }
  ShardManifestHeader header{};
  std::memcpy(&header, image.data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(header.magic)) != 0) {
    fail_file("has bad magic (not a MUSHARD01 file)");
  }
  if (header.version != kShardManifestVersion) {
    fail_file("has unsupported version " + std::to_string(header.version));
  }
  if (header.file_bytes != image.size()) {
    fail_file("size mismatch: header says " +
              std::to_string(header.file_bytes) + " bytes, file has " +
              std::to_string(image.size()) + " (truncated file)");
  }
  if (header.section_count != kNumSections) {
    fail_file("has wrong section count " +
              std::to_string(header.section_count));
  }

  const std::size_t table_bytes =
      header.section_count * sizeof(SectionRecord);
  if (sizeof(header) + table_bytes > image.size()) {
    fail_file("is too short for its section table (truncated file)");
  }
  std::vector<SectionRecord> table(header.section_count);
  std::memcpy(table.data(), image.data() + sizeof(header), table_bytes);
  if (crc32(table.data(), table_bytes) != header.table_crc32) {
    fail_file("section table checksum mismatch");
  }

  // Locate, bounds-check and checksum each required section exactly once.
  std::span<const std::byte> sections[kNumSections + 1];  // indexed by id
  bool seen[kNumSections + 1] = {};
  for (const SectionRecord& rec : table) {
    if (rec.id < 1 || rec.id > kNumSections) {
      fail_file("has unknown section id " + std::to_string(rec.id));
    }
    const auto id = static_cast<ShardSectionId>(rec.id);
    if (seen[rec.id]) fail_section(id, "appears twice in the table");
    seen[rec.id] = true;
    if (rec.offset % kSectionAlign != 0) {
      fail_section(id, "is misaligned");
    }
    if (rec.offset > image.size() ||
        rec.length > image.size() - rec.offset) {
      fail_section(id, "extends past the end of the file (truncated file)");
    }
    const std::span<const std::byte> payload =
        image.subspan(rec.offset, rec.length);
    if (crc32(payload) != static_cast<std::uint32_t>(rec.crc32)) {
      fail_section(id, "checksum mismatch");
    }
    sections[rec.id] = payload;
  }

  // kConfig.
  const auto cfg_bytes =
      sections[static_cast<std::size_t>(ShardSectionId::kConfig)];
  if (cfg_bytes.size() != sizeof(ShardConfigRecord)) {
    fail_section(ShardSectionId::kConfig, "has invalid size");
  }
  ShardConfigRecord cfg{};
  std::memcpy(&cfg, cfg_bytes.data(), sizeof(cfg));
  if (cfg.shard_count == 0) {
    fail_section(ShardSectionId::kConfig, "declares zero shards");
  }
  if (cfg.strategy > static_cast<std::uint32_t>(
                         PartitionStrategy::kGreedyLpt)) {
    fail_section(ShardSectionId::kConfig,
                 "declares unknown partition strategy " +
                     std::to_string(cfg.strategy));
  }

  // kShardMeta.
  const auto meta_bytes =
      sections[static_cast<std::size_t>(ShardSectionId::kShardMeta)];
  if (meta_bytes.size() !=
      static_cast<std::size_t>(cfg.shard_count) * sizeof(ShardMetaRecord)) {
    fail_section(ShardSectionId::kShardMeta,
                 "has invalid size (expected one record per shard)");
  }
  std::vector<ShardMetaRecord> meta(cfg.shard_count);
  std::memcpy(meta.data(), meta_bytes.data(), meta_bytes.size());

  // kRemap.
  const auto remap_bytes =
      sections[static_cast<std::size_t>(ShardSectionId::kRemap)];
  if (remap_bytes.size() != cfg.total_sequences * sizeof(SeqId)) {
    fail_section(ShardSectionId::kRemap,
                 "has invalid size (expected one id per sequence)");
  }
  std::vector<SeqId> remap(cfg.total_sequences);
  if (!remap.empty()) {
    std::memcpy(remap.data(), remap_bytes.data(), remap_bytes.size());
  }

  // kPaths: exactly shard_count NUL-terminated names consuming the section.
  const auto paths_bytes =
      sections[static_cast<std::size_t>(ShardSectionId::kPaths)];
  std::vector<std::string> shard_paths;
  shard_paths.reserve(cfg.shard_count);
  std::size_t pos = 0;
  for (std::uint32_t k = 0; k < cfg.shard_count; ++k) {
    const auto* base = reinterpret_cast<const char*>(paths_bytes.data());
    const void* nul = std::memchr(base + pos, '\0', paths_bytes.size() - pos);
    if (nul == nullptr) {
      fail_section(ShardSectionId::kPaths,
                   "is missing a path terminator (truncated payload)");
    }
    const std::size_t len =
        static_cast<const char*>(nul) - (base + pos);
    shard_paths.emplace_back(base + pos, len);
    pos += len + 1;
  }
  if (pos != paths_bytes.size()) {
    fail_section(ShardSectionId::kPaths, "has trailing bytes");
  }

  // Cross-section structural invariants.
  ShardManifest out;
  out.strategy = static_cast<PartitionStrategy>(cfg.strategy);
  out.total_sequences = cfg.total_sequences;
  out.total_residues = cfg.total_residues;
  out.shards.resize(cfg.shard_count);
  std::uint64_t remap_cursor = 0;
  std::uint64_t sum_residues = 0;
  std::vector<bool> covered(cfg.total_sequences, false);
  for (std::uint32_t k = 0; k < cfg.shard_count; ++k) {
    const ShardMetaRecord& rec = meta[k];
    if (rec.remap_offset != remap_cursor) {
      fail_section(ShardSectionId::kShardMeta,
                   "has non-contiguous remap offsets");
    }
    if (rec.num_sequences > cfg.total_sequences - remap_cursor) {
      fail_section(ShardSectionId::kShardMeta,
                   "shard sequence counts exceed total_sequences");
    }
    if (shard_paths[k].empty() != (rec.num_sequences == 0)) {
      fail_section(ShardSectionId::kPaths,
                   "has an empty path for a non-empty shard (or vice versa)");
    }
    ShardManifest::Shard& shard = out.shards[k];
    shard.path = std::move(shard_paths[k]);
    shard.num_sequences = rec.num_sequences;
    shard.num_residues = rec.num_residues;
    shard.index_crc32 = rec.index_crc32;
    shard.to_global.assign(
        remap.begin() + static_cast<std::ptrdiff_t>(remap_cursor),
        remap.begin() +
            static_cast<std::ptrdiff_t>(remap_cursor + rec.num_sequences));
    for (std::size_t i = 0; i < shard.to_global.size(); ++i) {
      const SeqId g = shard.to_global[i];
      if (g >= cfg.total_sequences) {
        fail_section(ShardSectionId::kRemap,
                     "maps a local id outside the database");
      }
      if (covered[g]) {
        fail_section(ShardSectionId::kRemap,
                     "maps the same global id twice");
      }
      covered[g] = true;
      if (i > 0 && shard.to_global[i - 1] >= g) {
        fail_section(ShardSectionId::kRemap,
                     "is not strictly increasing within a shard");
      }
    }
    remap_cursor += rec.num_sequences;
    sum_residues += rec.num_residues;
  }
  if (remap_cursor != cfg.total_sequences) {
    fail_section(ShardSectionId::kShardMeta,
                 "shard sequence counts do not sum to total_sequences");
  }
  if (sum_residues != cfg.total_residues) {
    fail_section(ShardSectionId::kShardMeta,
                 "shard residue counts do not sum to total_residues");
  }
  return out;
}

ShardManifest load_shard_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good() || MUBLASTP_FI_FAIL("shard.manifest")) {
    throw Error("cannot open shard manifest: " + path, ErrorKind::kIo);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad() || MUBLASTP_FI_FAIL("shard.manifest")) {
    throw Error("failed reading shard manifest: " + path, ErrorKind::kIo);
  }
  return parse_shard_manifest(
      {reinterpret_cast<const std::byte*>(bytes.data()), bytes.size()});
}

}  // namespace mublastp::cluster
