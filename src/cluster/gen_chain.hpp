// Generation-chain search: composes the base + delta members of a MUGEN01
// generation (index/generation.hpp) back into single-database search
// results, transparently to the caller.
//
// Why chain output is bit-identical to a from-scratch rebuild: a chain is
// a disjoint-subject partition of the database in append order (global
// original id = member id_offset + member-local original id), which is
// exactly the contract sharded execution already proves merge-exact
// (orchestrator.hpp):
//  * every member engine prices E-values over the COMBINED residue total
//    from the manifest (MuBlastpOptions::effective_db_residues);
//  * finalize culling is same-subject only and subjects are disjoint
//    across members;
//  * stage counters are additive over disjoint subject sets and invariant
//    to block partitioning (fragments never straddle blocks, blocks never
//    straddle members);
//  * the merge is merge_partition_results — concat remapped lists, re-sort
//    with finalize's exact comparator, truncate, canonicalize.
// tests/test_incremental.cpp proves this differentially per generation,
// and mublastp_verify's gen-chain run re-proves it (counters included) on
// every CI build.
//
// Members are searched sequentially, each with the full thread budget —
// deltas are typically small next to the base, so per-member OpenMP
// parallelism recovers the unsharded thread scaling without the worker
// orchestration sharding needs.
//
// Degraded mode composes PR 4's per-block CRC quarantine unchanged: each
// member loads with tolerate_block_corruption, damaged blocks are
// quarantined (reasons prefixed with the member path) and the run is
// marked partial. A member that cannot load at all is quarantined whole
// (recorded as a quarantined "shard" slot = chain position). Strict mode
// fails closed on any damage, including a manifest-vs-file CRC mismatch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "index/generation.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"

namespace mublastp::cluster {

/// Configuration shared by every member engine plus the failure policy.
struct GenChainOptions {
  SearchParams params;
  /// Engine options for every member. effective_db_residues is overwritten
  /// with the chain's combined total — that field is the chain's, not the
  /// caller's.
  MuBlastpOptions engine;
  /// Fail closed: any member damage (manifest CRC mismatch, load failure,
  /// block corruption) throws instead of quarantining and continuing.
  bool strict = false;
};

/// The members of one resolved generation, loaded and ready to search.
class GenerationChain {
 public:
  /// Resolves the newest generation next to `base_path` (bare base file =
  /// generation 0) and loads every member with the copy loader. With
  /// opts.strict any damage throws (kCorrupt); otherwise damaged blocks or
  /// members are quarantined into `degraded` (must be non-null then) and
  /// the rest of the chain loads normally.
  static GenerationChain load(const std::string& base_path,
                              const GenChainOptions& opts,
                              stats::DegradedStats* degraded);

  std::uint32_t generation() const { return generation_; }
  std::uint32_t member_count() const {
    return static_cast<std::uint32_t>(members_.size());
  }
  std::uint64_t total_sequences() const { return total_sequences_; }
  std::uint64_t total_residues() const { return total_residues_; }

  /// The whole database in global original-id order, for report rendering
  /// (merged results carry global subject ids). Members quarantined at
  /// load time contribute empty sequences — harmless, since they
  /// contribute no alignments either.
  const SequenceStore& global_db() const { return global_db_; }

  /// Member k's engine, or null for a load-quarantined member.
  const MuBlastpEngine* engine(std::uint32_t k) const {
    return members_[k].engine.get();
  }

  /// Member k's local-original-id -> global-original-id map.
  const std::vector<SeqId>& to_global(std::uint32_t k) const {
    return members_[k].to_global;
  }

  /// Member k's index file path (directory-joined).
  const std::string& member_path(std::uint32_t k) const {
    return members_[k].path;
  }

  const GenChainOptions& options() const { return options_; }

 private:
  struct Member {
    std::string path;
    std::vector<SeqId> to_global;
    std::unique_ptr<DbIndex> index;          ///< null when quarantined
    std::unique_ptr<MuBlastpEngine> engine;  ///< null when quarantined
  };

  std::vector<Member> members_;
  SequenceStore global_db_;
  std::uint32_t generation_ = 0;
  std::uint64_t total_sequences_ = 0;
  std::uint64_t total_residues_ = 0;
  GenChainOptions options_;
};

/// What a chain search returns: merged per-query results (global subject
/// ids, finalize ranking, counters summed over members) plus any
/// degradation picked up while searching.
struct ChainSearchResult {
  std::vector<QueryResult> results;
  stats::DegradedStats degraded;
};

/// Searches `queries` against every live member of `chain`, sequentially
/// with the full `threads` budget each, and merges with
/// merge_partition_results. A member that fails mid-search is quarantined
/// into the result's DegradedStats (slot = chain position) unless
/// chain.options().strict, which throws Error(kIo) instead. With `tracer`
/// non-null every member's stage spans land in one merged timeline (member
/// spans carry the chain position in the shard lane, like shard workers).
ChainSearchResult search_chain(const GenerationChain& chain,
                               const SequenceStore& queries, int threads,
                               trace::Tracer* tracer = nullptr);

}  // namespace mublastp::cluster
