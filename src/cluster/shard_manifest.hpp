// MUSHARD01: the manifest tying N self-contained shard indexes back into
// one logical database (paper Section IV-D made real).
//
// `mublastp_makedb --shards=N` partitions the database with one of the
// src/cluster partitioning policies and writes one ordinary v3 index per
// shard plus this manifest. The manifest records everything a merger needs
// to reconstruct single-database semantics from per-shard results:
//
//  * the shard count and the strategy that produced the partitioning;
//  * the COMBINED database totals (sequences, residues) — per-shard
//    searches compute E-values over the combined residue count, which is
//    what makes merged statistics identical to an unsharded run;
//  * a per-shard sequence-id remap table: shard-local original id ->
//    global original id. Shard stores are built by walking global ids in
//    ascending order, so each shard's remap slice is strictly increasing
//    (validated at load) and local order is global order restricted to the
//    shard — the property that makes the global merge a plain re-sort;
//  * a full-file CRC32 per shard index, so a rotted shard is named before
//    a search ever runs over it;
//  * the shard index file names, stored relative to the manifest.
//
// The on-disk layout follows the v3 index idiom (db_index_format.hpp): a
// 64-byte header, a CRC-guarded section table of SectionRecord rows, then
// 64-byte-aligned checksummed payload sections. Corruption errors name the
// offending section ("shard manifest section 'remap' checksum mismatch"),
// never crash, and never yield a silently partial search.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/partition.hpp"
#include "common/sequence.hpp"

namespace mublastp::cluster {

/// Current manifest format version.
inline constexpr std::uint32_t kShardManifestVersion = 1;

/// Sections of a MUSHARD01 file. Values are stable on-disk ids.
enum class ShardSectionId : std::uint32_t {
  kConfig = 1,     ///< ShardConfigRecord (counts, strategy, combined totals)
  kShardMeta = 2,  ///< shard_count x ShardMetaRecord
  kRemap = 3,      ///< total_sequences x u32 local -> global original ids
  kPaths = 4,      ///< shard_count NUL-terminated index file names
};

/// Human-readable section name used in error messages.
std::string_view shard_section_name(ShardSectionId id);

/// Fixed-size file header at offset 0.
struct ShardManifestHeader {
  char magic[12];              ///< "MUSHARD01", NUL-padded
  std::uint32_t version;       ///< kShardManifestVersion
  std::uint32_t section_count;
  std::uint32_t table_crc32;   ///< CRC32 of the section-table bytes
  std::uint32_t reserved0;     ///< zero
  std::uint32_t reserved1;     ///< zero; aligns file_bytes to 8
  std::uint64_t file_bytes;    ///< total file size (fast truncation check)
  std::uint8_t reserved[24];   ///< zero; pads the header to 64 bytes
};
static_assert(sizeof(ShardManifestHeader) == 64);

/// Payload of the kConfig section.
struct ShardConfigRecord {
  std::uint32_t shard_count;
  std::uint32_t strategy;            ///< raw PartitionStrategy value
  std::uint64_t total_sequences;     ///< combined database sequence count
  std::uint64_t total_residues;      ///< combined database residue count
};
static_assert(sizeof(ShardConfigRecord) == 24);

/// One row of the kShardMeta section.
struct ShardMetaRecord {
  std::uint64_t num_sequences;  ///< sequences in this shard
  std::uint64_t num_residues;   ///< residues in this shard
  std::uint64_t remap_offset;   ///< start of this shard's kRemap slice
  std::uint32_t index_crc32;    ///< CRC32 of the whole shard index file
  std::uint32_t reserved;       ///< zero
};
static_assert(sizeof(ShardMetaRecord) == 32);

/// In-memory form of a manifest (what save consumes and load produces).
struct ShardManifest {
  PartitionStrategy strategy = PartitionStrategy::kRoundRobinSorted;
  std::uint64_t total_sequences = 0;
  std::uint64_t total_residues = 0;

  struct Shard {
    /// Shard index file name, relative to the manifest's directory. Empty
    /// iff the shard holds no sequences (more shards than sequences) — an
    /// empty database cannot be indexed, so empty shards have no file.
    std::string path;
    std::uint64_t num_sequences = 0;
    std::uint64_t num_residues = 0;
    /// CRC32 over the shard index file's bytes (0 for an empty shard).
    std::uint32_t index_crc32 = 0;
    /// Shard-local original id -> global original id, strictly increasing.
    std::vector<SeqId> to_global;
  };
  std::vector<Shard> shards;

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards.size());
  }

  /// (max - min) / max of per-shard residue counts (the partitioner's
  /// promised balance; same definition as Partitioning::imbalance, with
  /// the same empty-partition semantics).
  double predicted_imbalance() const;
};

/// Writes `manifest` to `path`. Throws Error(kInvalid) on inconsistent
/// input (totals not matching the shard lists) and Error(kIo) on write
/// failure.
void save_shard_manifest(const std::string& path,
                         const ShardManifest& manifest);

/// Parses and validates a complete manifest image. Checks, in order:
/// header magic / version / size, section-table CRC, per-section bounds +
/// alignment + CRC32, then structural invariants (per-shard counts sum to
/// the totals, remap offsets contiguous, the remap is a permutation of the
/// global ids with strictly increasing per-shard slices, one path per
/// shard). Throws Error(kCorrupt) naming the offending section; never
/// returns a partially-valid manifest.
ShardManifest parse_shard_manifest(std::span<const std::byte> image);

/// Reads and parses a manifest file. Rejects missing/empty/non-regular
/// paths with Error(kIo or kCorrupt). Injection site "shard.manifest"
/// fails the read. Shard paths come back as stored (relative); callers
/// resolve them against the manifest's directory.
ShardManifest load_shard_manifest(const std::string& path);

}  // namespace mublastp::cluster
