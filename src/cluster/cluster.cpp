#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mublastp::cluster {

std::vector<std::vector<double>> cost_matrix(
    const std::vector<std::size_t>& query_lens,
    const std::vector<double>& partition_chars, const CostModelParams& params,
    std::uint64_t seed) {
  MUBLASTP_CHECK(!query_lens.empty() && !partition_chars.empty(),
                 "cost matrix needs queries and partitions");
  Rng rng(seed);
  // For placing hot-spots proportionally to partition size.
  std::vector<double> cumulative(partition_chars.size());
  double total_chars = 0.0;
  for (std::size_t p = 0; p < partition_chars.size(); ++p) {
    total_chars += partition_chars[p];
    cumulative[p] = total_chars;
  }

  std::vector<std::vector<double>> costs(query_lens.size());
  for (std::size_t q = 0; q < query_lens.size(); ++q) {
    // Per-query irregularity: some queries hit dense word neighborhoods or
    // repetitive families and cost several times the mean.
    const double density =
        std::exp(params.irregularity_sigma * rng.next_normal());
    costs[q].resize(partition_chars.size());
    double total = 0.0;
    for (std::size_t p = 0; p < partition_chars.size(); ++p) {
      costs[q][p] =
          (params.query_fixed_sec + params.sec_per_cell *
                                        static_cast<double>(query_lens[q]) *
                                        partition_chars[p]) *
          density;
      total += costs[q][p];
    }
    // Homolog hot-spot: a share of the query's work belongs to its best
    // subject sequence, which lives in exactly one partition (chosen
    // proportionally to partition size, as any sequence would be).
    const double share = std::min(
        0.5, params.hotspot_share_median *
                 std::exp(params.hotspot_sigma * rng.next_normal()));
    const double pick = rng.next_double() * total_chars;
    const std::size_t hot = static_cast<std::size_t>(
        std::distance(cumulative.begin(),
                      std::lower_bound(cumulative.begin(), cumulative.end(),
                                       pick)));
    for (auto& c : costs[q]) c *= (1.0 - share);
    costs[q][std::min(hot, costs[q].size() - 1)] += share * total;
  }
  return costs;
}

std::vector<double> partition_chars_round_robin_sorted(
    const std::vector<std::size_t>& seq_lens, int parts) {
  MUBLASTP_CHECK(parts > 0, "parts must be positive");
  std::vector<std::size_t> sorted = seq_lens;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> chars(static_cast<std::size_t>(parts), 0.0);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    chars[i % static_cast<std::size_t>(parts)] +=
        static_cast<double>(sorted[i]);
  }
  return chars;
}

std::vector<double> partition_chars_contiguous(
    const std::vector<std::size_t>& seq_lens, int parts) {
  MUBLASTP_CHECK(parts > 0, "parts must be positive");
  // Split by sequence count (mpiBLAST's formatdb-style fragmentation):
  // contiguous runs of the unsorted database, so fragment residue counts
  // inherit the local length skew of the input order.
  std::vector<double> chars(static_cast<std::size_t>(parts), 0.0);
  const std::size_t n = seq_lens.size();
  for (std::size_t p = 0; p < static_cast<std::size_t>(parts); ++p) {
    const std::size_t lo = n * p / static_cast<std::size_t>(parts);
    const std::size_t hi = n * (p + 1) / static_cast<std::size_t>(parts);
    for (std::size_t i = lo; i < hi; ++i) {
      chars[p] += static_cast<double>(seq_lens[i]);
    }
  }
  return chars;
}

double SimReport::utilization() const {
  MUBLASTP_CHECK(!busy_sec.empty() && total_sec > 0.0, "empty report");
  double busy = 0.0;
  for (const double b : busy_sec) busy += b;
  return busy / (total_sec * static_cast<double>(busy_sec.size()));
}

SimReport simulate_mublastp_report(const std::vector<std::vector<double>>& costs,
                                   const MuBlastpClusterConfig& config) {
  MUBLASTP_CHECK(config.nodes > 0 && config.threads_per_node > 0,
                 "invalid cluster shape");
  MUBLASTP_CHECK(!costs.empty(), "empty cost matrix");
  MUBLASTP_CHECK(costs.front().size() ==
                     static_cast<std::size_t>(config.nodes),
                 "cost matrix must have one partition per node");

  // Every node processes the whole query batch against its partition with
  // an OpenMP pool; the batch is a bag of independent tasks, so node time
  // is total work / effective cores.
  const double effective_cores =
      static_cast<double>(config.threads_per_node) * config.thread_efficiency;
  SimReport report;
  report.busy_sec.resize(static_cast<std::size_t>(config.nodes), 0.0);
  double slowest = 0.0;
  for (int p = 0; p < config.nodes; ++p) {
    double work = 0.0;
    for (const auto& row : costs) {
      work += row[static_cast<std::size_t>(p)];
    }
    const double node_time = work / effective_cores;
    report.busy_sec[static_cast<std::size_t>(p)] = node_time;
    slowest = std::max(slowest, node_time);
  }
  // One batch-level tree reduction at the end (Section IV-D: "we merge
  // results after the local alignment for all queries in a batch").
  report.merge_sec =
      config.merge_hop_sec *
      std::ceil(std::log2(static_cast<double>(config.nodes) + 1.0));
  report.total_sec = slowest + report.merge_sec;
  return report;
}

double simulate_mublastp(const std::vector<std::vector<double>>& costs,
                         const MuBlastpClusterConfig& config) {
  return simulate_mublastp_report(costs, config).total_sec;
}

SimReport simulate_mpiblast_report(const std::vector<std::vector<double>>& costs,
                                   const MpiBlastClusterConfig& config) {
  MUBLASTP_CHECK(config.nodes > 0 && config.procs_per_node > 0,
                 "invalid cluster shape");
  const std::size_t workers =
      static_cast<std::size_t>(config.nodes) *
      static_cast<std::size_t>(config.procs_per_node);
  MUBLASTP_CHECK(!costs.empty(), "empty cost matrix");
  MUBLASTP_CHECK(costs.front().size() == workers,
                 "cost matrix must have one fragment per worker");

  // Discrete-event walk of mpiBLAST's synchronous per-query protocol: the
  // master schedules one query to the group, every worker searches its
  // fragment, the results are merged serially, and only then does the next
  // query start. The critical path per query is the slowest fragment (the
  // straggler — contiguous fragments are uneven, and the spread of the
  // per-fragment maximum grows with the worker count) plus the
  // O(workers) merge. This is the load-imbalance + synchronization
  // structure Section IV-D contrasts with muBLASTP's batch merging.
  const double slowdown = config.mem_contention * config.worker_slowdown;
  SimReport report;
  report.busy_sec.resize(workers, 0.0);
  double clock = 0.0;
  for (const auto& row : costs) {
    clock += config.sched_overhead_sec;
    report.sched_sec += config.sched_overhead_sec;
    double straggler = 0.0;
    for (std::size_t w = 0; w < workers; ++w) {
      const double t = row[w] * slowdown;
      report.busy_sec[w] += t;
      straggler = std::max(straggler, t);
    }
    const double merge =
        config.merge_per_worker_sec * static_cast<double>(workers);
    report.merge_sec += merge;
    clock += straggler + merge;
  }
  report.total_sec = clock;
  return report;
}

double simulate_mpiblast(const std::vector<std::vector<double>>& costs,
                         const MpiBlastClusterConfig& config) {
  return simulate_mpiblast_report(costs, config).total_sec;
}

double scaling_efficiency(double t1, double tn, int n) {
  MUBLASTP_CHECK(t1 > 0 && tn > 0 && n > 0, "invalid scaling inputs");
  return t1 / (static_cast<double>(n) * tn);
}

}  // namespace mublastp::cluster
