#include "cluster/gen_chain.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "cluster/orchestrator.hpp"
#include "common/checksum.hpp"
#include "common/error.hpp"
#include "index/db_index_format.hpp"
#include "index/db_index_io.hpp"

namespace mublastp::cluster {
namespace {

MuBlastpOptions chain_engine_options(const GenChainOptions& opts,
                                     std::uint64_t combined_residues) {
  MuBlastpOptions engine = opts.engine;
  // The invariant chains live on (same as sharding): every member prices
  // E-values over the combined search space, exactly like a full rebuild.
  engine.effective_db_residues = combined_residues;
  return engine;
}

/// What resolve_generations + the manifest promise about one member before
/// it is loaded. num_sequences == 0 means "unknown" (bare generation 0 has
/// no manifest to promise anything).
struct MemberPlan {
  std::string path;
  std::uint64_t num_sequences = 0;
  std::uint64_t num_residues = 0;
  std::uint64_t id_offset = 0;
  std::uint32_t index_crc32 = 0;
  bool have_manifest_entry = false;
};

}  // namespace

GenerationChain GenerationChain::load(const std::string& base_path,
                                      const GenChainOptions& opts,
                                      stats::DegradedStats* degraded) {
  MUBLASTP_CHECK(opts.strict || degraded != nullptr,
                 "non-strict GenerationChain::load needs a DegradedStats"
                 " sink");
  const ResolvedGeneration resolved = resolve_generations(base_path);

  GenerationChain chain;
  chain.options_ = opts;
  chain.generation_ = resolved.generation;

  std::vector<MemberPlan> plans;
  if (resolved.manifest.has_value()) {
    const GenerationManifest& m = *resolved.manifest;
    chain.total_sequences_ = m.total_sequences;
    chain.total_residues_ = m.total_residues;
    for (std::size_t k = 0; k < m.members.size(); ++k) {
      const GenerationMember& gm = m.members[k];
      plans.push_back({resolved.member_paths[k], gm.num_sequences,
                       gm.num_residues, gm.id_offset, gm.index_crc32, true});
    }
  } else {
    MUBLASTP_CHECK_KIND(!resolved.member_paths.empty(), ErrorKind::kIo,
                        "no index found at " + base_path +
                            " (no base file, no generation manifest)");
    plans.push_back({resolved.member_paths[0], 0, 0, 0, 0, false});
  }

  // Pass 1: load every member index (engines come after — a bare
  // generation 0 only learns the combined totals from the loaded base).
  chain.members_.resize(plans.size());
  for (std::uint32_t k = 0; k < plans.size(); ++k) {
    const MemberPlan& plan = plans[k];
    Member& member = chain.members_[k];
    member.path = plan.path;
    try {
      std::unique_ptr<DbIndex> index;
      if (opts.strict) {
        if (plan.have_manifest_entry) {
          std::ifstream in(plan.path, std::ios::binary);
          MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kIo,
                              "cannot open chain member: " + plan.path);
          std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
          MUBLASTP_CHECK_KIND(!in.bad(), ErrorKind::kIo,
                              "failed reading chain member: " + plan.path);
          // Whole-file CRC against the manifest: names a rotted member
          // before the (section-level) index loader even runs.
          const std::uint32_t crc = crc32(bytes.data(), bytes.size());
          MUBLASTP_CHECK_KIND(
              crc == plan.index_crc32, ErrorKind::kCorrupt,
              "chain member " + std::to_string(k) +
                  " index checksum mismatch (manifest says " +
                  std::to_string(plan.index_crc32) + ", file has " +
                  std::to_string(crc) + ")");
          std::istringstream stream(std::move(bytes));
          index = std::make_unique<DbIndex>(load_db_index(stream));
        } else {
          index = std::make_unique<DbIndex>(load_db_index_file(plan.path));
        }
      } else {
        // Degraded mode skips the whole-file CRC on purpose: a single
        // rotted block would fail it and quarantine the entire member,
        // defeating the block-level quarantine the tolerant loader gives.
        std::vector<BlockQuarantine> quarantined;
        IndexLoadOptions lopts;
        lopts.tolerate_block_corruption = true;
        lopts.quarantined = &quarantined;
        index = std::make_unique<DbIndex>(load_db_index_file(plan.path,
                                                             lopts));
        for (const BlockQuarantine& q : quarantined) {
          degraded->quarantined.push_back(
              {q.block, "chain member " + std::to_string(k) + " (" +
                            plan.path + "): " + q.reason});
          degraded->partial = true;
        }
      }
      // Structural cross-check: the member must describe the slice the
      // manifest promised (block quarantine never touches the sequence
      // store sections, so this holds in degraded mode too).
      const DbIndexView view(*index);
      if (plan.have_manifest_entry) {
        MUBLASTP_CHECK_KIND(view.num_sequences() == plan.num_sequences &&
                                view.total_residues() == plan.num_residues,
                            ErrorKind::kCorrupt,
                            "chain member " + std::to_string(k) +
                                " index does not match its manifest entry");
      }
      member.to_global.reserve(view.num_sequences());
      for (SeqId local = 0; local < view.num_sequences(); ++local) {
        member.to_global.push_back(
            static_cast<SeqId>(plan.id_offset + local));
      }
      member.index = std::move(index);
    } catch (const Error& e) {
      if (opts.strict) throw;
      degraded->quarantined_shards.push_back({k, e.what()});
      degraded->partial = true;
      member.index.reset();
    }
  }

  if (!resolved.manifest.has_value() &&
      chain.members_.front().index != nullptr) {
    const DbIndexView view(*chain.members_.front().index);
    chain.total_sequences_ = view.num_sequences();
    chain.total_residues_ = view.total_residues();
  }

  // Pass 2: engines, now that the combined residue total is known.
  for (Member& member : chain.members_) {
    if (member.index == nullptr) continue;
    member.engine = std::make_unique<MuBlastpEngine>(
        DbIndexView(*member.index), opts.params,
        chain_engine_options(opts, chain.total_residues_));
  }

  // Rebuild the database in global original-id order for report rendering.
  // Members are contiguous id ranges in chain order, so this is a plain
  // walk. Quarantined members contribute placeholders (never rendered:
  // they contribute no alignments either).
  for (std::uint32_t k = 0; k < plans.size(); ++k) {
    const Member& member = chain.members_[k];
    if (member.index == nullptr) {
      const Residue placeholder{};
      for (std::uint64_t i = 0; i < plans[k].num_sequences; ++i) {
        chain.global_db_.add({&placeholder, 1}, {});
      }
      continue;
    }
    const DbIndex& index = *member.index;
    for (SeqId local = 0; local < index.db().size(); ++local) {
      const SeqId sorted = index.sorted_id(local);
      chain.global_db_.add(index.db().sequence(sorted),
                           index.db().name(sorted));
    }
  }
  return chain;
}

ChainSearchResult search_chain(const GenerationChain& chain,
                               const SequenceStore& queries, int threads,
                               trace::Tracer* tracer) {
  MUBLASTP_CHECK(chain.member_count() > 0, "generation chain is empty");
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }

  ChainSearchResult out;
  std::vector<std::vector<QueryResult>> per_member(chain.member_count());
  std::vector<std::span<const SeqId>> remaps(chain.member_count());
  for (std::uint32_t k = 0; k < chain.member_count(); ++k) {
    remaps[k] = chain.to_global(k);
    const MuBlastpEngine* engine = chain.engine(k);
    if (engine == nullptr) continue;  // quarantined at load time

    // Same child-tracer scheme as thread-mode shard workers: the child
    // shares the parent's clock epoch, so absorbed spans need no re-basing,
    // and every span carries the chain position in the shard lane.
    std::unique_ptr<trace::Tracer> child;
    if (tracer != nullptr) {
      child = std::make_unique<trace::Tracer>(tracer->options(),
                                              tracer->epoch_raw_ns(), k);
    }
    const std::uint64_t span_begin = child != nullptr ? child->now_ns() : 0;
    try {
      stats::DegradedStats member_degraded;
      per_member[k] = engine->search_batch(
          queries, threads,
          /*ps=*/nullptr,
          chain.options().strict ? nullptr : &member_degraded, child.get());
      for (const stats::QuarantinedBlock& q : member_degraded.quarantined) {
        out.degraded.quarantined.push_back(
            {q.block,
             "chain member " + std::to_string(k) + ": " + q.reason});
      }
      out.degraded.load_retries += member_degraded.load_retries;
      out.degraded.time_budget_trips += member_degraded.time_budget_trips;
      out.degraded.mem_budget_trips += member_degraded.mem_budget_trips;
      out.degraded.partial = out.degraded.partial || member_degraded.partial;
    } catch (const std::exception& e) {
      if (chain.options().strict) {
        throw Error("chain member " + std::to_string(k) +
                        " failed: " + e.what(),
                    ErrorKind::kIo);
      }
      out.degraded.quarantined_shards.push_back({k, e.what()});
      out.degraded.partial = true;
      per_member[k].clear();
    }
    if (child != nullptr) {
      child->record(trace::SpanKind::kShardWorker, span_begin,
                    child->now_ns(), trace::kNoId, trace::kNoId, k);
      child->flush();
      tracer->absorb(child->spans().data(), child->spans().size(), 0, k);
      tracer->add_dropped(child->dropped());
    }
  }

  const std::uint64_t merge_begin = tracer != nullptr ? tracer->now_ns() : 0;
  out.results =
      merge_partition_results(per_member, remaps, queries.size(),
                              chain.options().params.max_alignments);
  if (tracer != nullptr) {
    tracer->record(trace::SpanKind::kMerge, merge_begin, tracer->now_ns());
    tracer->flush();
  }
  return out;
}

}  // namespace mublastp::cluster
