// Sharded execution orchestrator: fans one query batch out over the N
// self-contained shard indexes of a MUSHARD01 manifest and merges the
// per-shard results back into single-database output.
//
// Why merged output can be bit-identical to an unsharded run:
//  * every shard engine computes E-values over the COMBINED database size
//    (MuBlastpOptions::effective_db_residues), so scores, bit scores and
//    E-values match the unsharded run exactly;
//  * finalize-stage culling is same-subject only, and subjects are disjoint
//    across shards, so no cross-shard alignment can suppress another;
//  * each shard's kept list is a prefix (under the final ranking order) of
//    its non-redundant alignments that contains the global top-K members
//    living in that shard, so concatenating the remapped per-shard lists,
//    re-sorting with finalize's exact comparator (score desc, subject asc,
//    q_start asc, s_start asc) and truncating to max_alignments reproduces
//    the unsharded final list;
//  * stage counters are additive over disjoint subject sets.
// tests/test_shards.cpp proves this differentially for every (N, strategy,
// worker mode) cell.
//
// Two worker modes:
//  * kThread  — one std::thread per shard, each running the engine's
//    OpenMP batch search with its share of the thread budget;
//  * kProcess — one fork(2)ed child per shard, results serialized back
//    over a pipe with a length + CRC frame. A child that dies (crash,
//    injected fault, torn frame) is quarantined: the surviving shards'
//    results are still merged, the victim lands in
//    DegradedStats::quarantined_shards, and the run is marked partial
//    (exit code 3 in the tools). Strict mode fails closed instead with
//    Error(kIo) — exit code 4.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/shard_manifest.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "stats/stats.hpp"

namespace mublastp::cluster {

/// How shard workers execute.
enum class ShardWorkerMode {
  kThread,   ///< one thread per shard, in-process
  kProcess,  ///< one fork(2)ed child per shard, results over a pipe
};

/// finalize_stage's exact ranking order (core/results.cpp): score desc,
/// then subject asc, q_start asc, s_start asc. Any disjoint-subject
/// partition of the database (shards, generation chains) merges back to
/// the unpartitioned final list by re-sorting with this comparator.
bool final_ranking_less(const GappedAlignment& a, const GappedAlignment& b);

/// Merges per-member results of ANY disjoint-subject partition of one
/// logical database back into single-database output: remaps each member's
/// local subject ids through its `to_global` slice, concatenates, sums
/// stage counters, re-sorts with final_ranking_less, truncates to
/// `max_alignments`, and canonicalizes the ungapped lists. An empty
/// per-member vector means that member was quarantined and contributes
/// nothing. Shared by sharded search and generation-chain search.
std::vector<QueryResult> merge_partition_results(
    const std::vector<std::vector<QueryResult>>& per_member,
    const std::vector<std::span<const SeqId>>& to_global,
    std::size_t num_queries, std::size_t max_alignments);

/// "thread" or "process".
const char* shard_mode_name(ShardWorkerMode mode);

/// Parses a CLI mode spec ("thread" / "process"). Throws
/// mublastp::Error(kInvalid) on anything else.
ShardWorkerMode parse_shard_mode(std::string_view spec);

/// Configuration shared by every shard engine plus the failure policy.
struct ShardSetOptions {
  SearchParams params;
  /// Engine options for every shard. effective_db_residues is overwritten
  /// with the manifest's combined total — that field is the orchestrator's,
  /// not the caller's.
  MuBlastpOptions engine;
  /// Fail closed: any shard failure (load, worker crash, torn result
  /// frame) throws (kCorrupt for load-time damage, kIo for worker death)
  /// instead of quarantining the shard and continuing.
  bool strict = false;
};

/// N shard engines sharing one logical database. Load-quarantined shards
/// keep their slot with a null engine so shard numbering matches the
/// manifest throughout.
class ShardSet {
 public:
  /// Opens every shard index named by the MUSHARD01 manifest at `path`.
  /// Each shard file is checksummed whole against the manifest's recorded
  /// CRC and structurally cross-checked (sequence/residue counts) before
  /// use. With opts.strict, any damage throws; otherwise the damaged shard
  /// is quarantined into `degraded` (which must be non-null then) and the
  /// rest of the set loads normally.
  static ShardSet load(const std::string& path, const ShardSetOptions& opts,
                       stats::DegradedStats* degraded);

  /// Builds a shard set directly from an in-memory database — the test and
  /// verification path (no files involved). Partitions `db` with
  /// make_partitioning, builds one index per non-empty shard.
  static ShardSet build_in_memory(const SequenceStore& db, int shards,
                                  PartitionStrategy strategy,
                                  const DbIndexConfig& config,
                                  const ShardSetOptions& opts);

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint64_t total_sequences() const { return total_sequences_; }
  std::uint64_t total_residues() const { return total_residues_; }
  PartitionStrategy strategy() const { return strategy_; }

  /// (max - min) / max of per-shard residue counts.
  double predicted_imbalance() const;

  /// The whole database in global original-id order, for report rendering
  /// (merged results carry global subject ids). Shards quarantined at load
  /// time contribute empty sequences — harmless, since a quarantined shard
  /// contributes no alignments to render.
  const SequenceStore& global_db() const { return global_db_; }

  /// Shard k's engine, or null for an empty or load-quarantined shard.
  const MuBlastpEngine* engine(std::uint32_t k) const {
    return shards_[k].engine.get();
  }

  /// Shard k's local-original-id -> global-original-id map.
  std::span<const SeqId> to_global(std::uint32_t k) const {
    return shards_[k].to_global;
  }

  const ShardSetOptions& options() const { return options_; }

 private:
  struct Shard {
    std::vector<SeqId> to_global;
    std::uint64_t num_residues = 0;
    std::unique_ptr<DbIndex> index;          ///< null for empty/quarantined
    std::unique_ptr<MuBlastpEngine> engine;  ///< null for empty/quarantined
  };

  std::vector<Shard> shards_;
  SequenceStore global_db_;
  std::uint64_t total_sequences_ = 0;
  std::uint64_t total_residues_ = 0;
  PartitionStrategy strategy_ = PartitionStrategy::kRoundRobinSorted;
  ShardSetOptions options_;
};

/// What a sharded search returns: merged per-query results (global subject
/// ids, finalize ranking, counters summed over shards) plus the telemetry
/// the tools surface in stats-v1.
struct ShardedSearchResult {
  std::vector<QueryResult> results;
  stats::ShardsStats shards;
  stats::DegradedStats degraded;
};

/// Searches `queries` against every live shard of `set` and merges.
/// `threads` is the total budget, split across shard workers (each worker
/// gets at least one). Injection site "shard.worker" is evaluated in the
/// parent once per shard, in ascending shard order: a fired thread-mode
/// worker fails before searching; a fired process-mode worker forks and
/// dies like a real crash, exercising the pipe/waitpid recovery path. Any
/// failed shard is quarantined (degraded.partial set) unless
/// set.options().strict, which throws Error(kIo) instead.
///
/// With `tracer` non-null every shard worker records stage spans into the
/// merged timeline. Thread-mode workers write into child tracers that share
/// the parent tracer's clock epoch; fork-process workers ship their raw
/// spans (plus their own epoch) back inside the CRC-framed result pipe and
/// the parent re-bases them onto its epoch. Each worker additionally
/// records one shard_worker span covering its whole batch, and the parent
/// records the cross-shard merge.
ShardedSearchResult search_sharded(const ShardSet& set,
                                   const SequenceStore& queries,
                                   int threads, ShardWorkerMode mode,
                                   trace::Tracer* tracer = nullptr);

}  // namespace mublastp::cluster
