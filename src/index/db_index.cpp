#include "index/db_index.hpp"

#include <omp.h>

#include <algorithm>
#include <exception>
#include <bit>

#include "common/error.hpp"

namespace mublastp {
namespace {

// Splits sequence `seq` (length `len`) into fragment windows per config.
// Fragments overlap by `overlap` so any alignment spanning a cut is fully
// contained in (or re-extendable from) at least one fragment.
std::vector<FragmentRef> split_sequence(SeqId seq, std::size_t len,
                                        const DbIndexConfig& cfg) {
  std::vector<FragmentRef> out;
  if (len <= cfg.long_seq_limit) {
    out.push_back({seq, 0, static_cast<std::uint32_t>(len)});
    return out;
  }
  const std::size_t step = cfg.long_seq_limit - cfg.long_seq_overlap;
  for (std::size_t start = 0; start < len; start += step) {
    const std::size_t flen = std::min(cfg.long_seq_limit, len - start);
    out.push_back({seq, static_cast<std::uint32_t>(start),
                   static_cast<std::uint32_t>(flen)});
    if (start + flen >= len) break;
  }
  return out;
}

int bits_for(std::size_t max_value) {
  return std::max(1, static_cast<int>(std::bit_width(max_value)));
}

}  // namespace

std::size_t DbIndex::optimal_block_bytes(std::size_t l3_bytes, int threads) {
  MUBLASTP_CHECK(threads > 0, "thread count must be positive");
  return l3_bytes / (2 * static_cast<std::size_t>(threads) + 1);
}

DbIndex DbIndex::build(const SequenceStore& db, const DbIndexConfig& config,
                       BuildTelemetry* telemetry) {
  const double t_start = omp_get_wtime();
  MUBLASTP_CHECK(!db.empty(), "cannot index an empty database");
  MUBLASTP_CHECK(config.block_bytes >= 4096, "block_bytes too small");
  MUBLASTP_CHECK(config.long_seq_limit > config.long_seq_overlap,
                 "long_seq_limit must exceed long_seq_overlap");
  MUBLASTP_CHECK(
      config.long_seq_overlap >= static_cast<std::size_t>(kWordLength),
      "fragment overlap must cover at least one word");

  // Sort by length (paper Section III / IV-D) and keep the inverse map so
  // callers can report hits against their original ids.
  std::vector<SeqId> order = db.ids_by_length();
  SequenceStore sorted = db.permuted(order);

  NeighborTable neighbors(*config.matrix, config.neighbor_threshold);
  DbIndex index(std::move(sorted), std::move(order), config,
                std::move(neighbors));
  index.inverse_.resize(index.order_.size());
  for (SeqId sorted_pos = 0; sorted_pos < index.order_.size(); ++sorted_pos) {
    index.inverse_[index.order_[sorted_pos]] = sorted_pos;
  }

  // Enumerate fragments in sorted order, then greedily pack them into
  // blocks of ~block_chars characters ("if a sequence exceeds the block
  // boundary, we put it in the next block" — i.e. no fragment straddles two
  // blocks).
  const std::size_t block_chars = config.block_bytes / sizeof(std::uint32_t);
  std::vector<FragmentRef> all_frags;
  for (SeqId id = 0; id < index.db_.size(); ++id) {
    const auto frags = split_sequence(id, index.db_.length(id), config);
    all_frags.insert(all_frags.end(), frags.begin(), frags.end());
  }

  // Plan block boundaries serially (cheap), then build the blocks in
  // parallel — blocks are fully independent, and the result is identical
  // for any thread count.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;  // [first, last)
  {
    std::size_t i = 0;
    while (i < all_frags.size()) {
      const std::size_t first = i;
      std::size_t chars = 0;
      while (i < all_frags.size() &&
             (i == first || chars + all_frags[i].len <= block_chars)) {
        chars += all_frags[i].len;
        ++i;
      }
      ranges.emplace_back(first, i);
    }
  }

  index.blocks_.resize(ranges.size());
  const int threads = config.build_threads > 0 ? config.build_threads
                                               : omp_get_max_threads();
  const double t_plan = omp_get_wtime();
  std::vector<double> block_seconds(telemetry != nullptr ? ranges.size() : 0);
  // Exceptions must not escape the parallel region (that would terminate);
  // capture the first one and rethrow afterwards.
  std::exception_ptr build_error = nullptr;
#pragma omp parallel for schedule(dynamic) num_threads(threads)
  for (std::size_t b = 0; b < ranges.size(); ++b) {
    const double t_block = telemetry != nullptr ? omp_get_wtime() : 0.0;
    try {
    DbIndexBlock& block = index.blocks_[b];
    block.fragments_.assign(all_frags.begin() + ranges[b].first,
                            all_frags.begin() + ranges[b].second);
    std::size_t chars = 0;
    for (const FragmentRef& f : block.fragments_) {
      chars += f.len;
      block.max_fragment_len_ =
          std::max(block.max_fragment_len_, static_cast<std::size_t>(f.len));
    }
    block.total_chars_ = chars;

    // Pack entries as (local fragment id << offset_bits) | offset.
    block.offset_bits_ = bits_for(block.max_fragment_len_);
    const std::size_t id_bits = static_cast<std::size_t>(
        bits_for(block.fragments_.size() > 0 ? block.fragments_.size() - 1
                                             : 0));
    MUBLASTP_CHECK(
        id_bits + static_cast<std::size_t>(block.offset_bits_) <= 32,
        "block too large to pack entries into 32 bits");

    // Counting pass over all words of all fragments.
    block.offsets_.assign(static_cast<std::size_t>(kNumWords) + 1, 0);
    for (const FragmentRef& f : block.fragments_) {
      if (f.len < static_cast<std::size_t>(kWordLength)) continue;
      const auto seq = index.db_.sequence(f.seq).subspan(f.start, f.len);
      for (std::size_t p = 0; p + kWordLength <= seq.size(); ++p) {
        ++block.offsets_[word_key(seq.data() + p) + 1];
      }
    }
    for (std::size_t w = 0; w < static_cast<std::size_t>(kNumWords); ++w) {
      block.offsets_[w + 1] += block.offsets_[w];
    }
    block.entries_.resize(block.offsets_.back());

    // Fill pass: iterate fragments in local-id order so each word's entry
    // list is ordered by (fragment, offset) without sorting.
    std::vector<std::uint32_t> cursor(block.offsets_.begin(),
                                      block.offsets_.end() - 1);
    for (std::uint32_t local = 0; local < block.fragments_.size(); ++local) {
      const FragmentRef& f = block.fragments_[local];
      if (f.len < static_cast<std::size_t>(kWordLength)) continue;
      const auto seq = index.db_.sequence(f.seq).subspan(f.start, f.len);
      for (std::size_t p = 0; p + kWordLength <= seq.size(); ++p) {
        const std::uint32_t w = word_key(seq.data() + p);
        block.entries_[cursor[w]++] =
            (local << block.offset_bits_) | static_cast<std::uint32_t>(p);
      }
    }
    } catch (...) {
#pragma omp critical(mublastp_index_build_error)
      if (!build_error) build_error = std::current_exception();
    }
    if (telemetry != nullptr) block_seconds[b] = omp_get_wtime() - t_block;
  }
  if (build_error) std::rethrow_exception(build_error);

  if (telemetry != nullptr) {
    telemetry->total_seconds = omp_get_wtime() - t_start;
    telemetry->plan_seconds = t_plan - t_start;
    telemetry->threads = threads;
    telemetry->block_seconds = std::move(block_seconds);
  }
  return index;
}

}  // namespace mublastp
