#include "index/dfa_index.hpp"

#include "common/error.hpp"

namespace mublastp {

DfaQueryIndex::DfaQueryIndex(std::span<const Residue> query,
                             const NeighborTable& neighbors) {
  MUBLASTP_CHECK(query.size() >= static_cast<std::size_t>(kWordLength),
                 "query shorter than word length");
  // Count positions per word via each query word's neighborhood (identical
  // to QueryIndex), then lay lists out flat in word-key order — which is
  // also (state, residue) order since word = state * 24 + c.
  std::vector<std::uint32_t> counts(kNumWords, 0);
  const std::size_t num_words = query.size() - kWordLength + 1;
  for (std::size_t p = 0; p < num_words; ++p) {
    const std::uint32_t w = word_key(query.data() + p);
    for (const std::uint32_t nb : neighbors.neighbors(w)) {
      ++counts[nb];
    }
  }

  cells_.resize(kNumWords);
  std::uint32_t total = 0;
  for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords); ++w) {
    cells_[w].offset = total;
    total += counts[w];
  }
  positions_.resize(total);

  std::vector<std::uint32_t> cursor(kNumWords, 0);
  for (std::size_t p = 0; p < num_words; ++p) {
    const std::uint32_t w = word_key(query.data() + p);
    for (const std::uint32_t nb : neighbors.neighbors(w)) {
      positions_[cells_[nb].offset + cursor[nb]++] =
          static_cast<std::uint32_t>(p);
    }
  }
  for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords); ++w) {
    cells_[w].count = counts[w];
  }
}

}  // namespace mublastp
