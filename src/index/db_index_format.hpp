// On-disk layout of index format v3: a checksummed section table over
// 64-byte-aligned raw sections.
//
// v2 streamed every vector through length-prefixed records, which forces a
// copying deserialization pass. v3 instead lays out each array as one
// contiguous section whose in-file representation IS the in-memory
// representation, so a loader can mmap the file and serve spans straight
// out of the mapping:
//
//   FileHeaderV3 (64 bytes, magic "MUBI", version 3, CRC of section table)
//   SectionRecord[section_count]   (id, offset, length, CRC32 per section)
//   ...zero padding to 64-byte boundaries...
//   section payloads, each starting on a 64-byte boundary
//
// Alignment is 64 bytes (one cache line) so that every typed span carved
// out of the mapping is naturally aligned and block data never straddles a
// line needlessly. All scalars are little-endian; this library only targets
// little-endian hosts (same contract as v2).
//
// The section table names every payload, which is what lets corruption
// errors say *which* part of the file is bad ("index section 'entries'
// checksum mismatch") instead of a generic stream failure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/sequence.hpp"
#include "index/db_index.hpp"

namespace mublastp {

/// Current (sectioned, mmap-able) file-format version.
inline constexpr std::uint32_t kDbIndexFormatV3 = 3;
/// Legacy streamed format still accepted by the copy loader.
inline constexpr std::uint32_t kDbIndexFormatV2 = 2;

/// Section payload alignment: one cache line.
inline constexpr std::size_t kSectionAlign = 64;

/// Identifies a section in the v3 table. Values are stable on-disk ids.
enum class SectionId : std::uint32_t {
  kConfig = 1,       ///< build config + matrix name + element counts
  kSeqOffsets = 2,   ///< (num_seqs + 1) x u64 arena offsets
  kArena = 3,        ///< residue arena of the length-sorted store
  kNameOffsets = 4,  ///< (num_seqs + 1) x u64 offsets into the name blob
  kNameBlob = 5,     ///< concatenated sequence names (no terminators)
  kOrder = 6,        ///< num_seqs x u32 sorted-id -> original-id
  kInverse = 7,      ///< num_seqs x u32 original-id -> sorted-id
  kBlockMeta = 8,    ///< num_blocks x BlockMetaRecord
  kFragments = 9,    ///< concatenated FragmentRef arrays of all blocks
  kCsrOffsets = 10,  ///< num_blocks x (kNumWords + 1) x u32
  kEntries = 11,     ///< concatenated packed-entry arrays of all blocks
};

/// Human-readable section name used in error messages and dbinfo output.
std::string_view section_name(SectionId id);

/// Fixed-size file header at offset 0.
struct FileHeaderV3 {
  char magic[4];               ///< "MUBI"
  std::uint32_t version;       ///< 3
  std::uint32_t section_count;
  std::uint32_t table_crc32;   ///< CRC32 of the section-table bytes
  std::uint64_t file_bytes;    ///< total file size (fast truncation check)
  std::uint8_t reserved[40];   ///< zero; pads the header to 64 bytes
};
static_assert(sizeof(FileHeaderV3) == 64);

/// One row of the section table, directly after the header.
struct SectionRecord {
  std::uint32_t id;        ///< SectionId
  std::uint32_t reserved;  ///< zero
  std::uint64_t offset;    ///< absolute file offset, kSectionAlign-aligned
  std::uint64_t length;    ///< payload bytes (excluding padding)
  std::uint64_t crc32;     ///< CRC32 of the payload (low 32 bits)
};
static_assert(sizeof(SectionRecord) == 32);

/// Per-block scalars in the kBlockMeta section. Fragment/entry counts are
/// also the cursor into the concatenated kFragments/kEntries sections.
struct BlockMetaRecord {
  std::uint64_t num_fragments;
  std::uint64_t num_entries;
  std::uint64_t max_fragment_len;
  std::uint64_t total_chars;
  std::int32_t offset_bits;
  /// CRC32 over this block's slice of kFragments + kCsrOffsets + kEntries
  /// (in that order). Lets a degraded loader localize a failed section
  /// checksum to the block(s) that actually rotted and quarantine only
  /// those. Files written before this field existed carry 0 here ("no
  /// per-block checksum"; still loadable, but not block-quarantinable).
  /// Occupies what used to be a zero `reserved` field, so the layout and
  /// version are unchanged and old readers ignore it.
  std::uint32_t block_crc32;
};
static_assert(sizeof(BlockMetaRecord) == 40);
static_assert(sizeof(FragmentRef) == 12,
              "FragmentRef is serialized raw; layout must stay packed");

/// Typed, validated view over a complete v3 file image (a read-only mmap or
/// a heap buffer — the parser does not care). Spans point INTO the image;
/// the image must outlive them.
struct ParsedIndexFile {
  DbIndexConfig config;  ///< matrix resolved via matrix_by_name
  std::uint64_t num_seqs = 0;
  std::uint64_t num_blocks = 0;
  std::span<const std::uint64_t> seq_offsets;   ///< num_seqs + 1
  std::span<const Residue> arena;
  std::span<const std::uint64_t> name_offsets;  ///< num_seqs + 1
  std::string_view name_blob;
  std::span<const SeqId> order;
  std::span<const SeqId> inverse;
  std::span<const BlockMetaRecord> block_meta;
  std::span<const FragmentRef> fragments;       ///< all blocks, concatenated
  std::span<const std::uint32_t> csr_offsets;   ///< all blocks, concatenated
  std::span<const std::uint32_t> entries;       ///< all blocks, concatenated
};

/// One block set aside by a degraded-mode load: its data failed validation
/// but the rest of the index is intact and searchable.
struct BlockQuarantine {
  std::uint32_t block = 0;
  std::string reason;

  friend bool operator==(const BlockQuarantine&,
                         const BlockQuarantine&) = default;
};

/// Controls how strictly parse_db_index_v3 treats damage.
struct IndexParseOptions {
  /// Verify section CRCs + deep structural invariants (reads every page).
  bool verify_checksums = true;

  /// Degraded mode: damage confined to ONE block's slice of the per-block
  /// sections (kFragments / kCsrOffsets / kEntries) quarantines that block
  /// instead of failing the load. Requires `quarantined` to be set. Damage
  /// anywhere else (header, table, config, arena, offsets, block meta) is
  /// always fatal — it cannot be attributed to a single block — as is a
  /// file whose every block is bad, or a pre-block-CRC file (block_crc32
  /// == 0) whose section checksum fails.
  bool tolerate_block_corruption = false;

  /// Out-parameter receiving the quarantined blocks (id + reason). Must be
  /// non-null when tolerate_block_corruption is set.
  std::vector<BlockQuarantine>* quarantined = nullptr;
};

/// Parses and validates a v3 file image. Checks, in order: header magic /
/// version / size, section-table CRC, per-section bounds + alignment +
/// CRC32 (when verifying), then cross-section structural invariants
/// (counts consistent, CSR offsets monotone, fragments and entries in
/// range). Throws mublastp::Error naming the offending section; never
/// returns a partially-valid view — except under
/// IndexParseOptions::tolerate_block_corruption, where block-local damage
/// is reported through `quarantined` and the affected blocks' spans must
/// not be used (loaders replace them with empty blocks).
ParsedIndexFile parse_db_index_v3(std::span<const std::byte> image,
                                  const IndexParseOptions& options);

/// Back-compat overload: strict parse with checksums on/off.
inline ParsedIndexFile parse_db_index_v3(std::span<const std::byte> image,
                                         bool verify_checksums = true) {
  IndexParseOptions options;
  options.verify_checksums = verify_checksums;
  return parse_db_index_v3(image, options);
}

}  // namespace mublastp
