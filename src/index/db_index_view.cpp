#include "index/db_index_view.hpp"

#include "index/mapped_db_index.hpp"

namespace mublastp {

static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
              "index views require 64-bit size_t (arena offsets are stored "
              "as u64 on disk and viewed as size_t in memory)");

DbIndexView::DbIndexView(const DbIndex& index)
    : arena_(index.db_.arena()),
      seq_offsets_(index.db_.arena_offsets()),
      order_(index.order_),
      inverse_(index.inverse_),
      neighbors_(&index.neighbors_),
      config_(index.config_),
      owned_names_(&index.db_) {
  blocks_.reserve(index.blocks_.size());
  for (const DbIndexBlock& b : index.blocks_) {
    blocks_.emplace_back(b.offsets_, b.entries_, b.fragments_,
                         b.max_fragment_len_, b.total_chars_, b.offset_bits_);
  }
}

DbIndexView::DbIndexView(const MappedDbIndex& mapped)
    : arena_(mapped.arena()),
      seq_offsets_(reinterpret_cast<const std::size_t*>(
                       mapped.seq_offsets().data()),
                   mapped.seq_offsets().size()),
      order_(mapped.order()),
      inverse_(mapped.inverse()),
      blocks_(mapped.blocks().begin(), mapped.blocks().end()),
      neighbors_(&mapped.neighbors()),
      config_(mapped.config()),
      name_offsets_(mapped.name_offsets()),
      name_blob_(mapped.name_blob().data()) {}

std::string_view DbIndexView::name(SeqId id) const {
  if (owned_names_ != nullptr) return owned_names_->name(id);
  return {name_blob_ + name_offsets_[id],
          name_offsets_[id + 1] - name_offsets_[id]};
}

}  // namespace mublastp
