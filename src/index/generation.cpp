#include "index/generation.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "common/checksum.hpp"
#include "common/durable.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "index/db_index_format.hpp"
#include "index/db_index_io.hpp"
#include "score/matrix.hpp"

namespace mublastp {
namespace {

constexpr char kMagic[12] = "MUGEN01";  // NUL-padded to 12 bytes
constexpr std::size_t kNumSections = 3;

namespace fs = std::filesystem;

template <typename T>
void append_pod(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

std::size_t align_up(std::size_t n) {
  return (n + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

[[noreturn]] void fail_section(GenSectionId id, const std::string& what) {
  throw Error("generation manifest section '" +
                  std::string(gen_section_name(id)) + "' " + what,
              ErrorKind::kCorrupt);
}

[[noreturn]] void fail_file(const std::string& what) {
  throw Error("generation manifest " + what, ErrorKind::kCorrupt);
}

std::string basename_of(const std::string& path) {
  return fs::path(path).filename().string();
}

std::string dirname_of(const std::string& path) {
  std::string dir = fs::path(path).parent_path().string();
  return dir.empty() ? std::string(".") : dir;
}

std::string join_dir(const std::string& dir, const std::string& name) {
  return (fs::path(dir) / name).string();
}

std::string suffix_path(const std::string& base, const char* tag,
                        std::uint32_t gen) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%s%06u", tag, gen);
  return base + buf;
}

/// CRC32 over a whole file's bytes (chunked; members can be large).
std::uint32_t file_crc32(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kIo,
                      "cannot open for checksum: " + path);
  std::uint32_t crc = 0;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    crc = crc32(buf, static_cast<std::size_t>(in.gcount()), crc);
  }
  MUBLASTP_CHECK_KIND(!in.bad(), ErrorKind::kIo,
                      "read failure while checksumming: " + path);
  return crc;
}

/// Total residues of a v3 index file without loading it: the arena section
/// stores exactly one byte per residue, so its recorded length IS the
/// residue count.
std::uint64_t residues_of_index_file(const std::string& path) {
  const DbIndexFileInfo info = describe_db_index_file(path);
  for (const IndexSectionInfo& s : info.sections) {
    if (s.id == static_cast<std::uint32_t>(SectionId::kArena)) {
      return s.length;
    }
  }
  throw Error("index section 'arena' is missing from the file: " + path,
              ErrorKind::kCorrupt);
}

/// Build config for delta/compact members, from the chain's manifest.
DbIndexConfig chain_build_config(const GenerationManifest& m,
                                 int build_threads) {
  DbIndexConfig cfg;
  cfg.block_bytes = m.block_bytes;
  cfg.matrix = &matrix_by_name(m.matrix_name);
  cfg.neighbor_threshold = m.neighbor_threshold;
  cfg.long_seq_limit = m.long_seq_limit;
  cfg.long_seq_overlap = m.long_seq_overlap;
  cfg.build_threads = build_threads;
  return cfg;
}

/// Unlinks one file through the "build.gc_unlink" injection site. A
/// missing file is fine (an earlier GC got it); any other failure throws.
bool gc_unlink(const std::string& path) {
  MUBLASTP_CHECK_KIND(!MUBLASTP_FI_FAIL("build.gc_unlink"), ErrorKind::kIo,
                      "injected unlink failure (build.gc_unlink): " + path);
  if (::unlink(path.c_str()) == 0) return true;
  MUBLASTP_CHECK_KIND(errno == ENOENT, ErrorKind::kIo,
                      "cannot unlink stale file '" + path +
                          "': " + std::strerror(errno));
  return false;
}

}  // namespace

std::string_view gen_section_name(GenSectionId id) {
  switch (id) {
    case GenSectionId::kConfig: return "config";
    case GenSectionId::kMemberMeta: return "member-meta";
    case GenSectionId::kPaths: return "paths";
  }
  return "unknown";
}

std::string generation_manifest_path(const std::string& base_path,
                                     std::uint32_t gen) {
  return suffix_path(base_path, ".gen", gen);
}

std::string delta_member_path(const std::string& base_path,
                              std::uint32_t gen) {
  return suffix_path(base_path, ".d", gen);
}

std::string compact_member_path(const std::string& base_path,
                                std::uint32_t gen) {
  return suffix_path(base_path, ".c", gen);
}

std::string serialize_generation_manifest(
    const GenerationManifest& manifest) {
  MUBLASTP_CHECK(manifest.generation >= 1,
                 "generation manifests start at generation 1");
  MUBLASTP_CHECK(!manifest.members.empty(),
                 "generation manifest needs at least one member");
  MUBLASTP_CHECK(!manifest.matrix_name.empty(),
                 "generation manifest needs the build matrix name");

  // Writer-side invariant checks: the loader enforces these, so a writer
  // bug should fail loudly here, not at the next load.
  std::uint64_t id_cursor = 0;
  std::uint64_t sum_residues = 0;
  for (const GenerationMember& m : manifest.members) {
    MUBLASTP_CHECK(!m.path.empty(), "member path must not be empty");
    MUBLASTP_CHECK(m.path.find('\0') == std::string::npos,
                   "member path must not contain NUL");
    MUBLASTP_CHECK(m.num_sequences > 0, "member must hold sequences");
    MUBLASTP_CHECK(m.id_offset == id_cursor,
                   "member id offsets must be contiguous");
    id_cursor += m.num_sequences;
    sum_residues += m.num_residues;
  }
  MUBLASTP_CHECK(id_cursor == manifest.total_sequences,
                 "member sequence counts must sum to total_sequences");
  MUBLASTP_CHECK(sum_residues == manifest.total_residues,
                 "member residue counts must sum to total_residues");

  // Section payloads.
  std::string config;
  GenConfigRecord cfg{};
  cfg.generation = manifest.generation;
  cfg.member_count = manifest.member_count();
  cfg.total_sequences = manifest.total_sequences;
  cfg.total_residues = manifest.total_residues;
  cfg.block_bytes = manifest.block_bytes;
  cfg.neighbor_threshold = manifest.neighbor_threshold;
  cfg.matrix_name_len =
      static_cast<std::uint32_t>(manifest.matrix_name.size());
  cfg.long_seq_limit = manifest.long_seq_limit;
  cfg.long_seq_overlap = manifest.long_seq_overlap;
  append_pod(config, cfg);
  config += manifest.matrix_name;

  std::string meta;
  std::string paths;
  for (const GenerationMember& m : manifest.members) {
    GenMemberRecord rec{};
    rec.num_sequences = m.num_sequences;
    rec.num_residues = m.num_residues;
    rec.id_offset = m.id_offset;
    rec.index_crc32 = m.index_crc32;
    rec.reserved = 0;
    append_pod(meta, rec);
    paths.append(m.path);
    paths.push_back('\0');
  }

  const std::string* payloads[kNumSections] = {&config, &meta, &paths};
  constexpr GenSectionId kIds[kNumSections] = {GenSectionId::kConfig,
                                               GenSectionId::kMemberMeta,
                                               GenSectionId::kPaths};

  const std::size_t table_bytes = kNumSections * sizeof(SectionRecord);
  std::uint64_t cursor = align_up(sizeof(GenManifestHeader) + table_bytes);
  SectionRecord table[kNumSections];
  for (std::size_t i = 0; i < kNumSections; ++i) {
    table[i].id = static_cast<std::uint32_t>(kIds[i]);
    table[i].reserved = 0;
    table[i].offset = cursor;
    table[i].length = payloads[i]->size();
    table[i].crc32 = crc32(payloads[i]->data(), payloads[i]->size());
    cursor = align_up(cursor + payloads[i]->size());
  }

  GenManifestHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(header.magic));
  header.version = kGenerationManifestVersion;
  header.section_count = kNumSections;
  header.table_crc32 = crc32(table, table_bytes);
  header.file_bytes = cursor;

  std::string image;
  image.reserve(cursor);
  append_pod(image, header);
  image.append(reinterpret_cast<const char*>(table), table_bytes);
  for (std::size_t i = 0; i < kNumSections; ++i) {
    image.resize(table[i].offset, '\0');
    image.append(*payloads[i]);
  }
  image.resize(cursor, '\0');
  return image;
}

GenerationManifest parse_generation_manifest(
    std::span<const std::byte> image) {
  if (image.size() < sizeof(GenManifestHeader)) {
    fail_file("is too short for a header (truncated file)");
  }
  GenManifestHeader header{};
  std::memcpy(&header, image.data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(header.magic)) != 0) {
    fail_file("has bad magic (not a MUGEN01 file)");
  }
  if (header.version != kGenerationManifestVersion) {
    fail_file("has unsupported version " + std::to_string(header.version));
  }
  if (header.file_bytes != image.size()) {
    fail_file("size mismatch: header says " +
              std::to_string(header.file_bytes) + " bytes, file has " +
              std::to_string(image.size()) + " (truncated file)");
  }
  if (header.section_count != kNumSections) {
    fail_file("has wrong section count " +
              std::to_string(header.section_count));
  }
  bool reserved_zero = header.reserved0 == 0 && header.reserved1 == 0;
  for (const std::uint8_t b : header.reserved) {
    reserved_zero = reserved_zero && b == 0;
  }
  if (!reserved_zero) {
    fail_file("has nonzero reserved header bytes");
  }

  const std::size_t table_bytes =
      header.section_count * sizeof(SectionRecord);
  if (sizeof(header) + table_bytes > image.size()) {
    fail_file("is too short for its section table (truncated file)");
  }
  std::vector<SectionRecord> table(header.section_count);
  std::memcpy(table.data(), image.data() + sizeof(header), table_bytes);
  if (crc32(table.data(), table_bytes) != header.table_crc32) {
    fail_file("section table checksum mismatch");
  }

  std::span<const std::byte> sections[kNumSections + 1];  // indexed by id
  bool seen[kNumSections + 1] = {};
  for (const SectionRecord& rec : table) {
    if (rec.id < 1 || rec.id > kNumSections) {
      fail_file("has unknown section id " + std::to_string(rec.id));
    }
    const auto id = static_cast<GenSectionId>(rec.id);
    if (seen[rec.id]) fail_section(id, "appears twice in the table");
    seen[rec.id] = true;
    if (rec.offset % kSectionAlign != 0) fail_section(id, "is misaligned");
    if (rec.offset > image.size() ||
        rec.length > image.size() - rec.offset) {
      fail_section(id, "extends past the end of the file (truncated file)");
    }
    const std::span<const std::byte> payload =
        image.subspan(rec.offset, rec.length);
    if (crc32(payload) != static_cast<std::uint32_t>(rec.crc32)) {
      fail_section(id, "checksum mismatch");
    }
    sections[rec.id] = payload;
  }

  // Every byte outside the header, the table and the section payloads is
  // alignment padding the serializer wrote as zero. Verify that too: the
  // checksums then cover the WHOLE image, so any flipped bit in a
  // published manifest is detected — padding is not a blind spot.
  {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> covered;
    covered.emplace_back(0, sizeof(header) + table_bytes);
    for (const SectionRecord& rec : table) {
      covered.emplace_back(rec.offset, rec.offset + rec.length);
    }
    std::sort(covered.begin(), covered.end());
    std::uint64_t cursor = 0;
    const auto check_zero = [&](std::uint64_t from, std::uint64_t to) {
      for (std::uint64_t at = from; at < to && at < image.size(); ++at) {
        if (image[at] != std::byte{0}) {
          fail_file("has nonzero alignment padding at offset " +
                    std::to_string(at));
        }
      }
    };
    for (const auto& [begin, end] : covered) {
      check_zero(cursor, begin);
      cursor = std::max(cursor, end);
    }
    check_zero(cursor, image.size());
  }

  // kConfig: fixed record + matrix name.
  const auto cfg_bytes =
      sections[static_cast<std::size_t>(GenSectionId::kConfig)];
  if (cfg_bytes.size() < sizeof(GenConfigRecord)) {
    fail_section(GenSectionId::kConfig, "has invalid size");
  }
  GenConfigRecord cfg{};
  std::memcpy(&cfg, cfg_bytes.data(), sizeof(cfg));
  if (cfg.generation == 0) {
    fail_section(GenSectionId::kConfig, "declares generation zero");
  }
  if (cfg.member_count == 0) {
    fail_section(GenSectionId::kConfig, "declares zero members");
  }
  if (cfg.matrix_name_len == 0 || cfg.matrix_name_len > (1u << 10) ||
      sizeof(GenConfigRecord) + cfg.matrix_name_len != cfg_bytes.size()) {
    fail_section(GenSectionId::kConfig, "has an implausible matrix name");
  }

  GenerationManifest out;
  out.generation = cfg.generation;
  out.total_sequences = cfg.total_sequences;
  out.total_residues = cfg.total_residues;
  out.block_bytes = cfg.block_bytes;
  out.neighbor_threshold = cfg.neighbor_threshold;
  out.matrix_name.assign(
      reinterpret_cast<const char*>(cfg_bytes.data()) +
          sizeof(GenConfigRecord),
      cfg.matrix_name_len);
  out.long_seq_limit = cfg.long_seq_limit;
  out.long_seq_overlap = cfg.long_seq_overlap;

  // kMemberMeta.
  const auto meta_bytes =
      sections[static_cast<std::size_t>(GenSectionId::kMemberMeta)];
  if (meta_bytes.size() !=
      static_cast<std::size_t>(cfg.member_count) * sizeof(GenMemberRecord)) {
    fail_section(GenSectionId::kMemberMeta,
                 "has invalid size (expected one record per member)");
  }
  std::vector<GenMemberRecord> meta(cfg.member_count);
  std::memcpy(meta.data(), meta_bytes.data(), meta_bytes.size());

  // kPaths: exactly member_count NUL-terminated names consuming the
  // section.
  const auto paths_bytes =
      sections[static_cast<std::size_t>(GenSectionId::kPaths)];
  std::vector<std::string> member_paths;
  member_paths.reserve(cfg.member_count);
  std::size_t pos = 0;
  for (std::uint32_t k = 0; k < cfg.member_count; ++k) {
    const auto* base = reinterpret_cast<const char*>(paths_bytes.data());
    const void* nul =
        std::memchr(base + pos, '\0', paths_bytes.size() - pos);
    if (nul == nullptr) {
      fail_section(GenSectionId::kPaths,
                   "is missing a path terminator (truncated payload)");
    }
    const std::size_t len = static_cast<const char*>(nul) - (base + pos);
    member_paths.emplace_back(base + pos, len);
    pos += len + 1;
  }
  if (pos != paths_bytes.size()) {
    fail_section(GenSectionId::kPaths, "has trailing bytes");
  }

  // Cross-section structural invariants.
  out.members.resize(cfg.member_count);
  std::uint64_t id_cursor = 0;
  std::uint64_t sum_residues = 0;
  for (std::uint32_t k = 0; k < cfg.member_count; ++k) {
    const GenMemberRecord& rec = meta[k];
    if (rec.id_offset != id_cursor) {
      fail_section(GenSectionId::kMemberMeta,
                   "has non-contiguous member id offsets");
    }
    if (rec.num_sequences == 0) {
      fail_section(GenSectionId::kMemberMeta, "declares an empty member");
    }
    if (rec.num_sequences > cfg.total_sequences - id_cursor) {
      fail_section(GenSectionId::kMemberMeta,
                   "member sequence counts exceed total_sequences");
    }
    if (member_paths[k].empty()) {
      fail_section(GenSectionId::kPaths, "has an empty member path");
    }
    GenerationMember& m = out.members[k];
    m.path = std::move(member_paths[k]);
    m.num_sequences = rec.num_sequences;
    m.num_residues = rec.num_residues;
    m.id_offset = rec.id_offset;
    m.index_crc32 = rec.index_crc32;
    id_cursor += rec.num_sequences;
    sum_residues += rec.num_residues;
  }
  if (id_cursor != cfg.total_sequences) {
    fail_section(GenSectionId::kMemberMeta,
                 "member sequence counts do not sum to total_sequences");
  }
  if (sum_residues != cfg.total_residues) {
    fail_section(GenSectionId::kMemberMeta,
                 "member residue counts do not sum to total_residues");
  }
  return out;
}

std::string save_generation_manifest(const std::string& base_path,
                                     const GenerationManifest& manifest) {
  const std::string image = serialize_generation_manifest(manifest);
  const std::string final_path =
      generation_manifest_path(base_path, manifest.generation);
  const std::string tmp = durable::temp_path_for(final_path);
  durable::write_file_durable(tmp, image, "build.manifest_write",
                              "build.fsync");
  // The commit point: after this rename + dir fsync, readers resolve the
  // new generation; before it, they resolve the previous one.
  durable::publish_rename(tmp, final_path, "build.publish_rename",
                          "build.fsync");
  return final_path;
}

GenerationManifest load_generation_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good() || MUBLASTP_FI_FAIL("io.read")) {
    throw Error("cannot open generation manifest: " + path, ErrorKind::kIo);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad() || MUBLASTP_FI_FAIL("io.read")) {
    throw Error("failed reading generation manifest: " + path,
                ErrorKind::kIo);
  }
  return parse_generation_manifest(
      {reinterpret_cast<const std::byte*>(bytes.data()), bytes.size()});
}

ResolvedGeneration resolve_generations(const std::string& base_path) {
  ResolvedGeneration res;
  const std::string dir = dirname_of(base_path);
  const std::string base_name = basename_of(base_path);
  const std::string gen_prefix = base_name + ".gen";

  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(base_name, 0) != 0) continue;  // not ours
    if (durable::is_temp_path(name)) {
      res.orphan_temps.push_back(join_dir(dir, name));
      continue;
    }
    if (name.rfind(gen_prefix, 0) != 0) continue;
    const std::string digits = name.substr(gen_prefix.size());
    if (digits.size() < 6 ||
        !std::all_of(digits.begin(), digits.end(),
                     [](char c) { return c >= '0' && c <= '9'; })) {
      continue;
    }
    res.all_generations.push_back(
        static_cast<std::uint32_t>(std::strtoul(digits.c_str(), nullptr,
                                                10)));
  }
  std::sort(res.all_generations.begin(), res.all_generations.end());
  res.all_generations.erase(std::unique(res.all_generations.begin(),
                                        res.all_generations.end()),
                            res.all_generations.end());
  std::sort(res.orphan_temps.begin(), res.orphan_temps.end());

  if (res.all_generations.empty()) {
    // Generation 0: the bare base file, if present.
    res.generation = 0;
    if (fs::exists(base_path, ec) && !ec) {
      res.member_paths.push_back(base_path);
    }
    return res;
  }

  // Highest-numbered manifest wins; published-after-fsync means damage
  // here is real bit rot, so fail closed rather than silently serving a
  // stale generation.
  res.generation = res.all_generations.back();
  res.manifest_path = generation_manifest_path(base_path, res.generation);
  res.manifest = load_generation_manifest(res.manifest_path);
  for (const GenerationMember& m : res.manifest->members) {
    res.member_paths.push_back(join_dir(dir, m.path));
  }
  return res;
}

std::size_t clean_orphan_temps(const std::string& base_path) {
  const ResolvedGeneration res = resolve_generations(base_path);
  std::size_t removed = 0;
  for (const std::string& orphan : res.orphan_temps) {
    if (gc_unlink(orphan)) ++removed;
  }
  return removed;
}

AppendResult append_generation(const std::string& base_path,
                               const SequenceStore& new_seqs,
                               int build_threads) {
  MUBLASTP_CHECK(!new_seqs.empty(), "nothing to append: no new sequences");
  AppendResult out;
  out.orphans_removed = clean_orphan_temps(base_path);
  const ResolvedGeneration res = resolve_generations(base_path);

  GenerationManifest next;
  if (res.generation == 0) {
    MUBLASTP_CHECK_KIND(!res.member_paths.empty(), ErrorKind::kIo,
                        "cannot append: base index not found: " + base_path);
    // First append: lift the base file into the chain as member 0, taking
    // the build config from its own config section.
    const IndexConfigSummary cfg = read_index_config_file(base_path);
    next.block_bytes = cfg.block_bytes;
    next.neighbor_threshold = cfg.neighbor_threshold;
    next.matrix_name = cfg.matrix_name;
    next.long_seq_limit = cfg.long_seq_limit;
    next.long_seq_overlap = cfg.long_seq_overlap;
    GenerationMember base{};
    base.path = basename_of(base_path);
    base.num_sequences = cfg.num_seqs;
    base.num_residues = residues_of_index_file(base_path);
    base.id_offset = 0;
    base.index_crc32 = file_crc32(base_path);
    next.members.push_back(std::move(base));
    next.total_sequences = cfg.num_seqs;
    next.total_residues = next.members.back().num_residues;
  } else {
    next = *res.manifest;
  }
  next.generation = res.generation + 1;

  // Build the delta with the chain's exact parameters, then durably write
  // it under its final name BEFORE the manifest referencing it publishes.
  const DbIndexConfig cfg = chain_build_config(next, build_threads);
  const DbIndex delta = DbIndex::build(new_seqs, cfg, &out.telemetry);
  out.delta_path = delta_member_path(base_path, next.generation);
  save_db_index_file_durable(out.delta_path, delta);

  GenerationMember m{};
  m.path = basename_of(out.delta_path);
  m.num_sequences = new_seqs.size();
  m.num_residues = new_seqs.total_residues();
  m.id_offset = next.total_sequences;
  m.index_crc32 = file_crc32(out.delta_path);
  next.members.push_back(std::move(m));
  next.total_sequences += new_seqs.size();
  next.total_residues += new_seqs.total_residues();

  out.manifest_path = save_generation_manifest(base_path, next);
  out.generation = next.generation;
  out.chain_length = next.member_count();
  return out;
}

CompactResult compact_generations(const std::string& base_path,
                                  int build_threads) {
  CompactResult out;
  out.orphans_removed = clean_orphan_temps(base_path);
  const ResolvedGeneration res = resolve_generations(base_path);
  MUBLASTP_CHECK(res.generation >= 1,
                 "nothing to compact: no generation manifests next to " +
                     base_path);
  const GenerationManifest prev = *res.manifest;

  // Reassemble the database in global original-id order (members are a
  // partition in append order, so this is just concatenation of each
  // member's original-order store).
  SequenceStore global;
  for (std::size_t k = 0; k < prev.members.size(); ++k) {
    const DbIndex member = load_db_index_file(res.member_paths[k]);
    MUBLASTP_CHECK_KIND(member.db().size() == prev.members[k].num_sequences,
                        ErrorKind::kCorrupt,
                        "member '" + res.member_paths[k] +
                            "' disagrees with the manifest sequence count");
    for (SeqId local = 0; local < member.db().size(); ++local) {
      const SeqId sorted = member.sorted_id(local);
      global.add(member.db().sequence(sorted), member.db().name(sorted));
    }
  }
  MUBLASTP_CHECK_KIND(global.size() == prev.total_sequences &&
                          global.total_residues() == prev.total_residues,
                      ErrorKind::kCorrupt,
                      "chain members disagree with the manifest totals");

  // One canonical member: the full DbIndex::build re-sorts the combined
  // database by length, restoring the single-index layout.
  const DbIndexConfig cfg = chain_build_config(prev, build_threads);
  const DbIndex canonical = DbIndex::build(global, cfg, &out.telemetry);
  out.generation = prev.generation + 1;
  out.compact_path = compact_member_path(base_path, out.generation);
  save_db_index_file_durable(out.compact_path, canonical);

  GenerationManifest next;
  next.generation = out.generation;
  next.total_sequences = prev.total_sequences;
  next.total_residues = prev.total_residues;
  next.block_bytes = prev.block_bytes;
  next.neighbor_threshold = prev.neighbor_threshold;
  next.matrix_name = prev.matrix_name;
  next.long_seq_limit = prev.long_seq_limit;
  next.long_seq_overlap = prev.long_seq_overlap;
  GenerationMember m{};
  m.path = basename_of(out.compact_path);
  m.num_sequences = prev.total_sequences;
  m.num_residues = prev.total_residues;
  m.id_offset = 0;
  m.index_crc32 = file_crc32(out.compact_path);
  next.members.push_back(std::move(m));
  save_generation_manifest(base_path, next);

  // GC only AFTER the new generation is durably published: stale members
  // (including the original base file once it joined a chain) and every
  // older manifest. A failure mid-GC leaves extra files, never an invalid
  // database — the next compact retries.
  for (const std::string& member : res.member_paths) {
    if (gc_unlink(member)) out.removed.push_back(member);
  }
  for (const std::uint32_t g : res.all_generations) {
    const std::string stale = generation_manifest_path(base_path, g);
    if (gc_unlink(stale)) out.removed.push_back(stale);
  }
  return out;
}

}  // namespace mublastp
