// Query-specialized flattened neighbor lookup (the PR 8 hit-detection
// tentpole).
//
// The two-level index (paper Section III) keeps the database index small by
// storing positions only for exact words and resolving neighbors through a
// second table at scan time: per query position the detector does
// word_key -> NeighborTable CSR -> one posting list per neighbor. Both the
// word_key recomputation and the neighbor-offsets indirection repeat for
// every database *block*, even though they depend only on the query.
//
// FlatNeighborhood collapses them once per query: a CSR table mapping each
// query offset directly to its packed, merged neighbor-word list. This is
// the order-preserving transpose of the issue's "word -> packed
// query-positions" table — iterating words-major would interleave query
// offsets per diagonal and break the two-hit automaton's ascending-qoff
// contract, so the specialization keys on qoff and packs the *words*. Hit
// detection then runs one indirection per (qoff, neighbor) instead of two,
// with the whole per-query table contiguous (a few KB, L1/L2-resident
// across every block of the batch).
//
// Built lazily with the same identity-check idiom as simd::QueryProfile so
// per-thread workspaces can reuse the buffer across queries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/alphabet.hpp"
#include "index/neighbor.hpp"

namespace mublastp {

/// Per-query qoff -> packed neighbor-word-keys table in CSR form.
class FlatNeighborhood {
 public:
  /// Rebuilds the table for `query` against `table`. Cost is one
  /// NeighborTable lookup + memcpy per query position (microseconds);
  /// amortized over every database block the query scans.
  void build(std::span<const Residue> query, const NeighborTable& table);

  /// True when the table already describes exactly this (query, table)
  /// pair — same pointer, length, and neighbor table identity.
  bool built_for(std::span<const Residue> query,
                 const NeighborTable& table) const {
    return built_query_ == query.data() && built_len_ == query.size() &&
           built_table_ == &table;
  }

  /// Merged neighbor word keys for query offset `qoff` (ascending, same
  /// order NeighborTable::neighbors produces — posting lists are visited
  /// in the identical sequence as the classic two-level scan).
  std::span<const std::uint32_t> words(std::uint32_t qoff) const {
    return {flat_.data() + offsets_[qoff],
            offsets_[qoff + 1] - offsets_[qoff]};
  }

  /// Number of query positions (qlen - W + 1, or 0 for short queries).
  std::uint32_t positions() const {
    return offsets_.empty() ? 0u
                            : static_cast<std::uint32_t>(offsets_.size() - 1);
  }

  /// Total packed (qoff, neighbor-word) pairs.
  std::size_t total_words() const {
    return offsets_.empty() ? 0u : offsets_.back();
  }

  /// Bytes retained (workspace footprint accounting).
  std::size_t footprint_bytes() const {
    return (offsets_.capacity() + flat_.capacity()) * sizeof(std::uint32_t);
  }

  /// Releases retained storage (memory-budget enforcement).
  void release() {
    offsets_ = {};
    flat_ = {};
    built_query_ = nullptr;
    built_len_ = 0;
    built_table_ = nullptr;
  }

 private:
  std::vector<std::uint32_t> offsets_;  ///< positions()+1 entries
  std::vector<std::uint32_t> flat_;     ///< packed neighbor word keys
  const Residue* built_query_ = nullptr;
  std::size_t built_len_ = 0;
  const NeighborTable* built_table_ = nullptr;
};

}  // namespace mublastp
