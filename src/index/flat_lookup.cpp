#include "index/flat_lookup.hpp"

#include <cstring>

namespace mublastp {

void FlatNeighborhood::build(std::span<const Residue> query,
                             const NeighborTable& table) {
  const std::size_t npos =
      query.size() >= static_cast<std::size_t>(kWordLength)
          ? query.size() - kWordLength + 1
          : 0;
  offsets_.clear();
  offsets_.reserve(npos + 1);
  flat_.clear();
  offsets_.push_back(0);
  for (std::size_t qoff = 0; qoff < npos; ++qoff) {
    const auto nbs = table.neighbors(word_key(query.data() + qoff));
    flat_.insert(flat_.end(), nbs.begin(), nbs.end());
    offsets_.push_back(static_cast<std::uint32_t>(flat_.size()));
  }
  built_query_ = query.data();
  built_len_ = query.size();
  built_table_ = &table;
}

}  // namespace mublastp
