// Zero-copy index loading: mmap a v3 index file and search it in place.
//
// The paper's premise is "build the index once, search many times" (Section
// V-A excludes build time for exactly that reason). For a serving process
// the analogous cost is *load* time: the v2 path deserializes the whole
// arena through istream copies on every start. A MappedDbIndex instead maps
// the file read-only and serves the sequence arena, block CSR offsets and
// packed entries directly from the mapping as spans — no allocation
// proportional to database size, pages faulted in on demand, and the OS
// page cache becomes a block cache shared by every process serving the same
// database (the load-path analogue of the paper's cache-conscious block
// design).
//
// Only the tiny derived state is materialized: per-block span descriptors
// and the neighbor table (a pure function of (matrix, threshold), exactly
// as in the copy loader).
//
// Integrity: by default the constructor verifies the section table and
// every section's CRC32 plus the structural invariants, so a truncated or
// bit-rotted file fails closed with an Error naming the bad section. That
// verification reads every page once; Options::verify_checksums = false
// skips it for trusted files and restores pure on-demand faulting.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "index/db_index_format.hpp"
#include "index/db_index_view.hpp"
#include "index/neighbor.hpp"

namespace mublastp {

/// Open options for MappedDbIndex (namespace-scope so it is complete when
/// used as a defaulted constructor argument).
struct MappedDbIndexOptions {
  /// Verify section checksums + structural invariants at open. Reads the
  /// whole file once; disable only for trusted local files where lazy
  /// faulting matters more than corruption detection.
  bool verify_checksums = true;

  /// Touch every page of the mapping under a SIGBUS guard before parsing.
  /// A file truncated (or hitting media errors) after the mmap raises
  /// SIGBUS on first touch, which would otherwise kill the process mid-
  /// verification; with prefault on, that becomes a typed Error(kIo) the
  /// caller can catch and retry or fall back to the copy loader (injection
  /// site "index.prefault"). Costs the same page reads verification does
  /// anyway; leave off for trusted files opened lazily.
  bool prefault = false;

  /// Degraded mode: block-local damage quarantines the affected blocks
  /// (served as empty DbBlockViews contributing no hits) instead of
  /// failing the open; see IndexParseOptions::tolerate_block_corruption
  /// for what still fails closed. Quarantined ids are reported via
  /// MappedDbIndex::quarantined().
  bool tolerate_block_corruption = false;
};

/// A read-only, memory-mapped database index (format v3 only).
class MappedDbIndex {
 public:
  using Options = MappedDbIndexOptions;

  /// Maps `path`. Throws mublastp::Error if the path is not a regular v3
  /// index file or fails verification. v2 files are rejected with a message
  /// pointing at the copy loader (load_db_index_file).
  explicit MappedDbIndex(const std::string& path, Options options = {});

  MappedDbIndex(MappedDbIndex&& other) noexcept = default;
  MappedDbIndex& operator=(MappedDbIndex&& other) noexcept = default;
  MappedDbIndex(const MappedDbIndex&) = delete;
  MappedDbIndex& operator=(const MappedDbIndex&) = delete;
  ~MappedDbIndex() = default;

  // --- data accessors (all spans point into the mapping) -----------------
  std::span<const Residue> arena() const { return parsed_.arena; }
  std::span<const std::uint64_t> seq_offsets() const {
    return parsed_.seq_offsets;
  }
  std::span<const std::uint64_t> name_offsets() const {
    return parsed_.name_offsets;
  }
  std::string_view name_blob() const { return parsed_.name_blob; }
  std::span<const SeqId> order() const { return parsed_.order; }
  std::span<const SeqId> inverse() const { return parsed_.inverse; }
  std::span<const DbBlockView> blocks() const { return blocks_; }
  const NeighborTable& neighbors() const { return neighbors_; }
  const DbIndexConfig& config() const { return parsed_.config; }
  std::size_t num_sequences() const { return parsed_.num_seqs; }
  std::size_t total_residues() const { return parsed_.arena.size(); }

  /// Blocks set aside by a degraded open (Options::tolerate_block_
  /// corruption); empty for a clean file or a strict open. The matching
  /// entries of blocks() are empty views that contribute no hits.
  const std::vector<BlockQuarantine>& quarantined() const {
    return quarantined_;
  }

  // --- serving metrics ---------------------------------------------------
  /// Path the index was mapped from.
  const std::string& path() const { return path_; }

  /// Size of the mapped file.
  std::size_t file_bytes() const { return map_.size; }

  /// Bytes of the mapping currently resident in physical memory (mincore
  /// sweep). Grows as searches fault pages in; a freshly opened unverified
  /// index reports near zero, a verified one near file_bytes().
  std::size_t resident_bytes() const;

 private:
  // RAII mmap holder. Declared first so spans die before the unmap.
  struct Mapping {
    const std::byte* data = nullptr;
    std::size_t size = 0;

    Mapping() = default;
    explicit Mapping(const std::string& path);
    ~Mapping();
    Mapping(Mapping&& other) noexcept;
    Mapping& operator=(Mapping&& other) noexcept;
    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;

    std::span<const std::byte> bytes() const { return {data, size}; }
  };

  /// Prefaults (optional) then parses; kept static so the member-init list
  /// can produce parsed_ after map_ but before the derived members.
  static ParsedIndexFile open_image(std::span<const std::byte> bytes,
                                    const Options& options,
                                    const std::string& path,
                                    std::vector<BlockQuarantine>* quarantined);

  Mapping map_;
  std::vector<BlockQuarantine> quarantined_;  // before parsed_: init order
  ParsedIndexFile parsed_;
  NeighborTable neighbors_;
  std::vector<DbBlockView> blocks_;
  /// Backing storage for the empty CSR of quarantined blocks' views
  /// (kNumWords + 1 zeros). Heap-allocated, so the spans survive moves.
  std::vector<std::uint32_t> empty_csr_;
  std::string path_;
};

}  // namespace mublastp
