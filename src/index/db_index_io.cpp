#include "index/db_index_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace mublastp {
namespace {

constexpr char kMagic[4] = {'M', 'U', 'B', 'I'};

// All scalars are written as fixed-width little-endian values. The library
// only targets little-endian hosts (x86/ARM servers); a byte-order check at
// load time would go here if that ever changes.

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  MUBLASTP_CHECK(in.good(), "truncated index file");
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::uint64_t>(in);
  MUBLASTP_CHECK(n < (std::uint64_t{1} << 40), "implausible vector size");
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  MUBLASTP_CHECK(in.good(), "truncated index file");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto n = read_pod<std::uint32_t>(in);
  MUBLASTP_CHECK(n < (1u << 20), "implausible string size");
  std::string s(n, '\0');
  in.read(s.data(), n);
  MUBLASTP_CHECK(in.good(), "truncated index file");
  return s;
}

}  // namespace

void save_db_index(std::ostream& out, const DbIndex& index) {
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(out, kDbIndexFormatVersion);

  // Config.
  write_pod<std::uint64_t>(out, index.config_.block_bytes);
  write_pod<std::int32_t>(out, index.config_.neighbor_threshold);
  write_string(out, std::string(index.config_.matrix->name()));
  write_pod<std::uint64_t>(out, index.config_.long_seq_limit);
  write_pod<std::uint64_t>(out, index.config_.long_seq_overlap);

  // Sorted sequence store.
  const SequenceStore& db = index.db_;
  write_pod<std::uint64_t>(out, db.size());
  for (SeqId i = 0; i < db.size(); ++i) {
    const auto seq = db.sequence(i);
    write_pod<std::uint64_t>(out, seq.size());
    out.write(reinterpret_cast<const char*>(seq.data()),
              static_cast<std::streamsize>(seq.size()));
    write_string(out, db.name(i));
  }

  write_vector(out, index.order_);

  // Blocks.
  write_pod<std::uint64_t>(out, index.blocks_.size());
  for (const DbIndexBlock& b : index.blocks_) {
    write_vector(out, b.fragments_);
    write_vector(out, b.offsets_);
    write_vector(out, b.entries_);
    write_pod<std::uint64_t>(out, b.max_fragment_len_);
    write_pod<std::uint64_t>(out, b.total_chars_);
    write_pod<std::int32_t>(out, b.offset_bits_);
  }
  MUBLASTP_CHECK(out.good(), "write failure while saving index");
}

void save_db_index_file(const std::string& path, const DbIndex& index) {
  std::ofstream out(path, std::ios::binary);
  MUBLASTP_CHECK(out.good(), "cannot open for writing: " + path);
  save_db_index(out, index);
}

DbIndex load_db_index(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  MUBLASTP_CHECK(in.good() && std::equal(magic, magic + 4, kMagic),
                 "not a muBLASTP index file (bad magic)");
  const auto version = read_pod<std::uint32_t>(in);
  MUBLASTP_CHECK(version == kDbIndexFormatVersion,
                 "unsupported index format version " +
                     std::to_string(version));

  DbIndexConfig config;
  config.block_bytes = read_pod<std::uint64_t>(in);
  config.neighbor_threshold = read_pod<std::int32_t>(in);
  config.matrix = &matrix_by_name(read_string(in));
  config.long_seq_limit = read_pod<std::uint64_t>(in);
  config.long_seq_overlap = read_pod<std::uint64_t>(in);

  SequenceStore db;
  const auto num_seqs = read_pod<std::uint64_t>(in);
  MUBLASTP_CHECK(num_seqs > 0 && num_seqs < (std::uint64_t{1} << 40),
                 "implausible sequence count");
  for (std::uint64_t i = 0; i < num_seqs; ++i) {
    const auto len = read_pod<std::uint64_t>(in);
    MUBLASTP_CHECK(len > 0 && len < (std::uint64_t{1} << 32),
                   "implausible sequence length");
    std::vector<Residue> seq(len);
    in.read(reinterpret_cast<char*>(seq.data()),
            static_cast<std::streamsize>(len));
    MUBLASTP_CHECK(in.good(), "truncated index file");
    db.add(seq, read_string(in));
  }

  std::vector<SeqId> order = read_vector<SeqId>(in);
  MUBLASTP_CHECK(order.size() == db.size(), "order/store size mismatch");

  NeighborTable neighbors(*config.matrix, config.neighbor_threshold);
  DbIndex index(std::move(db), std::move(order), config,
                std::move(neighbors));
  index.inverse_.resize(index.order_.size());
  for (SeqId s = 0; s < index.order_.size(); ++s) {
    index.inverse_[index.order_[s]] = s;
  }

  const auto num_blocks = read_pod<std::uint64_t>(in);
  MUBLASTP_CHECK(num_blocks > 0 && num_blocks < (std::uint64_t{1} << 32),
                 "implausible block count");
  index.blocks_.resize(num_blocks);
  for (DbIndexBlock& b : index.blocks_) {
    b.fragments_ = read_vector<FragmentRef>(in);
    b.offsets_ = read_vector<std::uint32_t>(in);
    b.entries_ = read_vector<std::uint32_t>(in);
    b.max_fragment_len_ = read_pod<std::uint64_t>(in);
    b.total_chars_ = read_pod<std::uint64_t>(in);
    b.offset_bits_ = read_pod<std::int32_t>(in);
    MUBLASTP_CHECK(
        b.offsets_.size() == static_cast<std::size_t>(kNumWords) + 1,
        "corrupt block: wrong offsets size");
    MUBLASTP_CHECK(b.offsets_.back() == b.entries_.size(),
                   "corrupt block: offsets/entries mismatch");
    MUBLASTP_CHECK(b.offset_bits_ >= 1 && b.offset_bits_ <= 31,
                   "corrupt block: bad offset bits");
    std::size_t max_len = 0;
    std::size_t chars = 0;
    for (const FragmentRef& f : b.fragments_) {
      MUBLASTP_CHECK(f.seq < index.db_.size() &&
                         f.start + f.len <= index.db_.length(f.seq),
                     "corrupt block: fragment out of range");
      max_len = std::max<std::size_t>(max_len, f.len);
      chars += f.len;
    }
    MUBLASTP_CHECK(b.max_fragment_len_ == max_len,
                   "corrupt block: fragment length summary mismatch");
    MUBLASTP_CHECK(b.total_chars_ == chars,
                   "corrupt block: character count mismatch");
    // Offsets must be monotone and every entry must decode to a valid
    // (fragment, in-range offset) pair.
    for (std::size_t w = 0; w + 1 < b.offsets_.size(); ++w) {
      MUBLASTP_CHECK(b.offsets_[w] <= b.offsets_[w + 1],
                     "corrupt block: offsets not monotone");
    }
    for (const std::uint32_t e : b.entries_) {
      const std::uint32_t frag = b.entry_fragment(e);
      MUBLASTP_CHECK(frag < b.fragments_.size(),
                     "corrupt block: entry fragment out of range");
      MUBLASTP_CHECK(b.entry_offset(e) + kWordLength <=
                         b.fragments_[frag].len,
                     "corrupt block: entry offset out of range");
    }
  }
  return index;
}

DbIndex load_db_index_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MUBLASTP_CHECK(in.good(), "cannot open index file: " + path);
  return load_db_index(in);
}

}  // namespace mublastp
