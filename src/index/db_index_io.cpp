#include "index/db_index_io.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>

#include "common/checksum.hpp"
#include "common/durable.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "index/db_index_format.hpp"
#include "score/matrix.hpp"

namespace mublastp {
namespace {

constexpr char kMagic[4] = {'M', 'U', 'B', 'I'};

// All scalars are written as fixed-width little-endian values. The library
// only targets little-endian hosts (x86/ARM servers); a byte-order check at
// load time would go here if that ever changes.

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kCorrupt, "truncated index file");
  return value;
}

template <typename T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::uint64_t>(in);
  MUBLASTP_CHECK_KIND(n < (std::uint64_t{1} << 40), ErrorKind::kCorrupt,
                      "implausible vector size");
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kCorrupt, "truncated index file");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto n = read_pod<std::uint32_t>(in);
  MUBLASTP_CHECK_KIND(n < (1u << 20), ErrorKind::kCorrupt,
                      "implausible string size");
  std::string s(n, '\0');
  in.read(s.data(), n);
  MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kCorrupt, "truncated index file");
  return s;
}

// ---------------------------------------------------------------------------
// v3: section assembly (writer side)
// ---------------------------------------------------------------------------

// A section payload being assembled in memory before offsets and checksums
// are known. Payloads are byte strings; the writer computes the final
// layout, then streams header + table + padded payloads in one pass.
struct PendingSection {
  SectionId id;
  std::string payload;
};

template <typename T>
void append_pod(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void append_span(std::string& out, std::span<const T> v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(v.data()), v.size_bytes());
}

std::size_t align_up(std::size_t n) {
  return (n + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

// ---------------------------------------------------------------------------
// v3: parse helpers (reader side)
// ---------------------------------------------------------------------------

[[noreturn]] void fail_section(SectionId id, const std::string& what) {
  throw Error("index section '" + std::string(section_name(id)) + "' " +
                  what,
              ErrorKind::kCorrupt);
}

// Reads scalars sequentially out of one section's payload with bounds
// checks attributed to that section.
struct SectionReader {
  SectionId id;
  std::span<const std::byte> bytes;
  std::size_t pos = 0;

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos + sizeof(T) > bytes.size()) {
      fail_section(id, "is too short (truncated payload)");
    }
    T value{};
    std::memcpy(&value, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }

  std::string_view read_string(std::size_t n) {
    if (pos + n > bytes.size()) {
      fail_section(id, "is too short (truncated payload)");
    }
    const auto* p = reinterpret_cast<const char*>(bytes.data() + pos);
    pos += n;
    return {p, n};
  }
};

// Casts a section payload to a typed span, checking divisibility. The
// payload offset is kSectionAlign-aligned by the table validation, so any
// element alignment up to 64 holds.
template <typename T>
std::span<const T> typed_section(SectionId id,
                                 std::span<const std::byte> bytes) {
  if (bytes.size() % sizeof(T) != 0) {
    fail_section(id, "has invalid size (not a whole number of elements)");
  }
  return {reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)};
}

}  // namespace

std::string_view section_name(SectionId id) {
  switch (id) {
    case SectionId::kConfig: return "config";
    case SectionId::kSeqOffsets: return "seq-offsets";
    case SectionId::kArena: return "arena";
    case SectionId::kNameOffsets: return "name-offsets";
    case SectionId::kNameBlob: return "name-blob";
    case SectionId::kOrder: return "order";
    case SectionId::kInverse: return "inverse";
    case SectionId::kBlockMeta: return "block-meta";
    case SectionId::kFragments: return "fragments";
    case SectionId::kCsrOffsets: return "csr-offsets";
    case SectionId::kEntries: return "entries";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// v3 writer
// ---------------------------------------------------------------------------

void save_db_index(std::ostream& out, const DbIndex& index) {
  const SequenceStore& db = index.db_;
  std::vector<PendingSection> sections;

  {
    PendingSection s{SectionId::kConfig, {}};
    append_pod<std::uint64_t>(s.payload, index.config_.block_bytes);
    append_pod<std::int32_t>(s.payload, index.config_.neighbor_threshold);
    const std::string matrix_name(index.config_.matrix->name());
    append_pod<std::uint32_t>(s.payload,
                              static_cast<std::uint32_t>(matrix_name.size()));
    s.payload += matrix_name;
    append_pod<std::uint64_t>(s.payload, index.config_.long_seq_limit);
    append_pod<std::uint64_t>(s.payload, index.config_.long_seq_overlap);
    append_pod<std::uint64_t>(s.payload, db.size());
    append_pod<std::uint64_t>(s.payload, index.blocks_.size());
    sections.push_back(std::move(s));
  }
  {
    PendingSection s{SectionId::kSeqOffsets, {}};
    static_assert(sizeof(std::size_t) == sizeof(std::uint64_t));
    append_span<std::size_t>(s.payload, db.arena_offsets());
    sections.push_back(std::move(s));
  }
  {
    PendingSection s{SectionId::kArena, {}};
    append_span<Residue>(s.payload, db.arena());
    sections.push_back(std::move(s));
  }
  {
    PendingSection offs{SectionId::kNameOffsets, {}};
    PendingSection blob{SectionId::kNameBlob, {}};
    std::uint64_t cursor = 0;
    append_pod<std::uint64_t>(offs.payload, cursor);
    for (SeqId i = 0; i < db.size(); ++i) {
      blob.payload += db.name(i);
      cursor += db.name(i).size();
      append_pod<std::uint64_t>(offs.payload, cursor);
    }
    sections.push_back(std::move(offs));
    sections.push_back(std::move(blob));
  }
  {
    PendingSection s{SectionId::kOrder, {}};
    append_span<SeqId>(s.payload, index.order_);
    sections.push_back(std::move(s));
  }
  {
    PendingSection s{SectionId::kInverse, {}};
    append_span<SeqId>(s.payload, index.inverse_);
    sections.push_back(std::move(s));
  }
  {
    PendingSection meta{SectionId::kBlockMeta, {}};
    PendingSection frags{SectionId::kFragments, {}};
    PendingSection csr{SectionId::kCsrOffsets, {}};
    PendingSection entries{SectionId::kEntries, {}};
    for (const DbIndexBlock& b : index.blocks_) {
      // Per-block CRC over the block's slice of the three per-block
      // sections, in section order; a degraded loader uses it to pin a
      // failed section checksum on the block(s) that actually rotted.
      std::uint32_t bcrc =
          crc32(b.fragments_.data(), b.fragments_.size() * sizeof(FragmentRef));
      bcrc = crc32(b.offsets_.data(),
                   b.offsets_.size() * sizeof(std::uint32_t), bcrc);
      bcrc = crc32(b.entries_.data(),
                   b.entries_.size() * sizeof(std::uint32_t), bcrc);
      const BlockMetaRecord m{b.fragments_.size(), b.entries_.size(),
                              b.max_fragment_len_, b.total_chars_,
                              b.offset_bits_, bcrc};
      append_pod(meta.payload, m);
      append_span<FragmentRef>(frags.payload, b.fragments_);
      append_span<std::uint32_t>(csr.payload, b.offsets_);
      append_span<std::uint32_t>(entries.payload, b.entries_);
    }
    sections.push_back(std::move(meta));
    sections.push_back(std::move(frags));
    sections.push_back(std::move(csr));
    sections.push_back(std::move(entries));
  }

  // Lay sections out after the header + table, each on a 64-byte boundary.
  std::vector<SectionRecord> table(sections.size());
  std::size_t cursor = align_up(sizeof(FileHeaderV3) +
                                sections.size() * sizeof(SectionRecord));
  for (std::size_t i = 0; i < sections.size(); ++i) {
    table[i].id = static_cast<std::uint32_t>(sections[i].id);
    table[i].reserved = 0;
    table[i].offset = cursor;
    table[i].length = sections[i].payload.size();
    table[i].crc32 = crc32(sections[i].payload.data(),
                           sections[i].payload.size());
    cursor = align_up(cursor + sections[i].payload.size());
  }

  FileHeaderV3 header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kDbIndexFormatV3;
  header.section_count = static_cast<std::uint32_t>(sections.size());
  header.table_crc32 =
      crc32(table.data(), table.size() * sizeof(SectionRecord));
  // The last section's padding is not written; the file ends at its payload.
  header.file_bytes = table.back().offset + table.back().length;

  write_pod(out, header);
  out.write(reinterpret_cast<const char*>(table.data()),
            static_cast<std::streamsize>(table.size() *
                                         sizeof(SectionRecord)));
  std::size_t written = sizeof(FileHeaderV3) +
                        table.size() * sizeof(SectionRecord);
  static constexpr char kZeros[kSectionAlign] = {};
  for (std::size_t i = 0; i < sections.size(); ++i) {
    out.write(kZeros, static_cast<std::streamsize>(table[i].offset -
                                                   written));
    out.write(sections[i].payload.data(),
              static_cast<std::streamsize>(sections[i].payload.size()));
    written = table[i].offset + sections[i].payload.size();
  }
  MUBLASTP_CHECK(out.good(), "write failure while saving index");
}

void save_db_index_file(const std::string& path, const DbIndex& index) {
  std::ofstream out(path, std::ios::binary);
  MUBLASTP_CHECK(out.good(), "cannot open for writing: " + path);
  save_db_index(out, index);
}

void save_db_index_file_durable(const std::string& path,
                                const DbIndex& index) {
  // Serialize in memory, then follow the publish protocol (temp → fsync →
  // rename → dir fsync) so a crash at any instant leaves either no trace
  // (plus an orphaned .tmp) or the complete file under its final name.
  std::ostringstream buf(std::ios::binary);
  save_db_index(buf, index);
  const std::string tmp = durable::temp_path_for(path);
  durable::write_file_durable(tmp, buf.str(), "build.block_write",
                              "build.fsync");
  durable::publish_rename(tmp, path, "build.publish_rename", "build.fsync");
}

// ---------------------------------------------------------------------------
// v2 writer (legacy, kept for compatibility testing and old deployments)
// ---------------------------------------------------------------------------

void save_db_index_v2(std::ostream& out, const DbIndex& index) {
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(out, kDbIndexFormatV2);

  // Config.
  write_pod<std::uint64_t>(out, index.config_.block_bytes);
  write_pod<std::int32_t>(out, index.config_.neighbor_threshold);
  write_string(out, std::string(index.config_.matrix->name()));
  write_pod<std::uint64_t>(out, index.config_.long_seq_limit);
  write_pod<std::uint64_t>(out, index.config_.long_seq_overlap);

  // Sorted sequence store.
  const SequenceStore& db = index.db_;
  write_pod<std::uint64_t>(out, db.size());
  for (SeqId i = 0; i < db.size(); ++i) {
    const auto seq = db.sequence(i);
    write_pod<std::uint64_t>(out, seq.size());
    out.write(reinterpret_cast<const char*>(seq.data()),
              static_cast<std::streamsize>(seq.size()));
    write_string(out, db.name(i));
  }

  write_vector(out, index.order_);

  // Blocks.
  write_pod<std::uint64_t>(out, index.blocks_.size());
  for (const DbIndexBlock& b : index.blocks_) {
    write_vector(out, b.fragments_);
    write_vector(out, b.offsets_);
    write_vector(out, b.entries_);
    write_pod<std::uint64_t>(out, b.max_fragment_len_);
    write_pod<std::uint64_t>(out, b.total_chars_);
    write_pod<std::int32_t>(out, b.offset_bits_);
  }
  MUBLASTP_CHECK(out.good(), "write failure while saving index");
}

// ---------------------------------------------------------------------------
// v3 parser (shared by the copy loader and MappedDbIndex)
// ---------------------------------------------------------------------------

ParsedIndexFile parse_db_index_v3(std::span<const std::byte> image,
                                  const IndexParseOptions& options) {
  const bool verify_checksums = options.verify_checksums;
  const bool tolerant = options.tolerate_block_corruption;
  MUBLASTP_CHECK(!tolerant || options.quarantined != nullptr,
                 "tolerate_block_corruption requires a quarantine list");
  MUBLASTP_CHECK_KIND(image.size() >= sizeof(FileHeaderV3),
                      ErrorKind::kCorrupt,
                      "truncated index file: missing header");
  FileHeaderV3 header;
  std::memcpy(&header, image.data(), sizeof(header));
  MUBLASTP_CHECK_KIND(std::equal(header.magic, header.magic + 4, kMagic),
                      ErrorKind::kCorrupt,
                      "not a muBLASTP index file (bad magic)");
  MUBLASTP_CHECK_KIND(header.version == kDbIndexFormatV3, ErrorKind::kCorrupt,
                      "unsupported index format version " +
                          std::to_string(header.version));
  MUBLASTP_CHECK_KIND(header.file_bytes == image.size(), ErrorKind::kCorrupt,
                      "truncated index file: header declares " +
                          std::to_string(header.file_bytes) +
                          " bytes, file has " + std::to_string(image.size()));
  MUBLASTP_CHECK_KIND(header.section_count >= 1 && header.section_count <= 64,
                      ErrorKind::kCorrupt,
                      "index header: implausible section count");
  const std::size_t table_bytes =
      header.section_count * sizeof(SectionRecord);
  MUBLASTP_CHECK_KIND(sizeof(FileHeaderV3) + table_bytes <= image.size(),
                      ErrorKind::kCorrupt,
                      "truncated index file: section table out of bounds");
  std::vector<SectionRecord> table(header.section_count);
  std::memcpy(table.data(), image.data() + sizeof(FileHeaderV3), table_bytes);
  MUBLASTP_CHECK_KIND(crc32(table.data(), table_bytes) == header.table_crc32,
                      ErrorKind::kCorrupt,
                      "index header: section table checksum mismatch");

  // Locate every required section, once each, in bounds and aligned. The
  // checksum is verified before any payload byte is interpreted. In
  // tolerant mode a CRC mismatch in a *per-block* section is deferred
  // (recorded in `crc_failed`) so it can be localized to a block below;
  // every other section stays fail-closed.
  SectionId crc_failed_id = SectionId::kConfig;  // valid iff crc_failed
  bool crc_failed = false;
  const auto section = [&](SectionId id) -> std::span<const std::byte> {
    const SectionRecord* found = nullptr;
    for (const SectionRecord& r : table) {
      if (r.id == static_cast<std::uint32_t>(id)) {
        if (found != nullptr) fail_section(id, "appears more than once");
        found = &r;
      }
    }
    if (found == nullptr) fail_section(id, "is missing from the file");
    if (found->offset % kSectionAlign != 0) {
      fail_section(id, "is misaligned");
    }
    if (found->offset > image.size() ||
        found->length > image.size() - found->offset) {
      fail_section(id, "is out of bounds (truncated file?)");
    }
    const auto payload = image.subspan(found->offset, found->length);
    if (verify_checksums &&
        (MUBLASTP_FI_FAIL("index.crc") ||
         crc32(payload) != static_cast<std::uint32_t>(found->crc32))) {
      const bool per_block = id == SectionId::kFragments ||
                             id == SectionId::kCsrOffsets ||
                             id == SectionId::kEntries;
      if (!(tolerant && per_block)) {
        fail_section(id, "checksum mismatch (corrupt file)");
      }
      if (!crc_failed) crc_failed_id = id;
      crc_failed = true;
    }
    return payload;
  };

  ParsedIndexFile p;

  {
    SectionReader r{SectionId::kConfig, section(SectionId::kConfig)};
    p.config.block_bytes = r.read<std::uint64_t>();
    p.config.neighbor_threshold = r.read<std::int32_t>();
    const auto name_len = r.read<std::uint32_t>();
    if (name_len > (1u << 10)) {
      fail_section(SectionId::kConfig, "has an implausible matrix name");
    }
    p.config.matrix = &matrix_by_name(std::string(r.read_string(name_len)));
    p.config.long_seq_limit = r.read<std::uint64_t>();
    p.config.long_seq_overlap = r.read<std::uint64_t>();
    p.num_seqs = r.read<std::uint64_t>();
    p.num_blocks = r.read<std::uint64_t>();
    if (p.num_seqs == 0 || p.num_seqs >= (std::uint64_t{1} << 40)) {
      fail_section(SectionId::kConfig, "has an implausible sequence count");
    }
    if (p.num_blocks == 0 || p.num_blocks >= (std::uint64_t{1} << 32)) {
      fail_section(SectionId::kConfig, "has an implausible block count");
    }
  }

  p.seq_offsets =
      typed_section<std::uint64_t>(SectionId::kSeqOffsets,
                                   section(SectionId::kSeqOffsets));
  p.arena = typed_section<Residue>(SectionId::kArena,
                                   section(SectionId::kArena));
  p.name_offsets =
      typed_section<std::uint64_t>(SectionId::kNameOffsets,
                                   section(SectionId::kNameOffsets));
  {
    const auto blob = section(SectionId::kNameBlob);
    p.name_blob = {reinterpret_cast<const char*>(blob.data()), blob.size()};
  }
  p.order = typed_section<SeqId>(SectionId::kOrder,
                                 section(SectionId::kOrder));
  p.inverse = typed_section<SeqId>(SectionId::kInverse,
                                   section(SectionId::kInverse));
  p.block_meta =
      typed_section<BlockMetaRecord>(SectionId::kBlockMeta,
                                     section(SectionId::kBlockMeta));
  p.fragments = typed_section<FragmentRef>(SectionId::kFragments,
                                           section(SectionId::kFragments));
  p.csr_offsets =
      typed_section<std::uint32_t>(SectionId::kCsrOffsets,
                                   section(SectionId::kCsrOffsets));
  p.entries = typed_section<std::uint32_t>(SectionId::kEntries,
                                           section(SectionId::kEntries));

  // Cross-section structural validation. Sizes first (cheap, always on)...
  if (p.seq_offsets.size() != p.num_seqs + 1) {
    fail_section(SectionId::kSeqOffsets, "has the wrong element count");
  }
  if (p.name_offsets.size() != p.num_seqs + 1) {
    fail_section(SectionId::kNameOffsets, "has the wrong element count");
  }
  if (p.order.size() != p.num_seqs) {
    fail_section(SectionId::kOrder, "has the wrong element count");
  }
  if (p.inverse.size() != p.num_seqs) {
    fail_section(SectionId::kInverse, "has the wrong element count");
  }
  if (p.block_meta.size() != p.num_blocks) {
    fail_section(SectionId::kBlockMeta, "has the wrong element count");
  }
  if (p.csr_offsets.size() !=
      p.num_blocks * (static_cast<std::size_t>(kNumWords) + 1)) {
    fail_section(SectionId::kCsrOffsets, "has the wrong element count");
  }
  if (p.seq_offsets.front() != 0 || p.seq_offsets.back() != p.arena.size()) {
    fail_section(SectionId::kSeqOffsets, "does not bracket the arena");
  }
  if (p.name_offsets.front() != 0 ||
      p.name_offsets.back() != p.name_blob.size()) {
    fail_section(SectionId::kNameOffsets, "does not bracket the name blob");
  }
  std::uint64_t total_frags = 0;
  std::uint64_t total_entries = 0;
  for (const BlockMetaRecord& m : p.block_meta) {
    total_frags += m.num_fragments;
    total_entries += m.num_entries;
    if (m.offset_bits < 1 || m.offset_bits > 31) {
      fail_section(SectionId::kBlockMeta, "has bad offset bits");
    }
  }
  if (p.fragments.size() != total_frags) {
    fail_section(SectionId::kFragments, "has the wrong element count");
  }
  if (p.entries.size() != total_entries) {
    fail_section(SectionId::kEntries, "has the wrong element count");
  }

  // A deferred per-block section CRC failure (tolerant mode only) is
  // localized here: each block's slice of the three per-block sections is
  // re-checksummed against BlockMetaRecord::block_crc32 (the block-meta
  // section already passed its own CRC, so the stored values are trusted),
  // and only mismatching blocks are quarantined. Anything that prevents
  // localization is fatal — better to refuse the file than to silently
  // serve rotten data.
  constexpr std::size_t kCsrLen = static_cast<std::size_t>(kNumWords) + 1;
  std::vector<char> block_bad(p.block_meta.size(), 0);
  if (crc_failed) {
    const std::string failed_name(section_name(crc_failed_id));
    std::size_t frag_cursor = 0;
    std::size_t entry_cursor = 0;
    std::size_t num_bad = 0;
    for (std::size_t b = 0; b < p.block_meta.size(); ++b) {
      const BlockMetaRecord& m = p.block_meta[b];
      if (m.block_crc32 == 0) {
        fail_section(crc_failed_id,
                     "checksum mismatch (file predates per-block checksums;"
                     " cannot localize the damage — rebuild the index)");
      }
      const auto frags = p.fragments.subspan(frag_cursor, m.num_fragments);
      const auto csr = p.csr_offsets.subspan(b * kCsrLen, kCsrLen);
      const auto entries = p.entries.subspan(entry_cursor, m.num_entries);
      std::uint32_t bcrc = crc32(frags.data(), frags.size_bytes());
      bcrc = crc32(csr.data(), csr.size_bytes(), bcrc);
      bcrc = crc32(entries.data(), entries.size_bytes(), bcrc);
      if (bcrc != m.block_crc32) {
        block_bad[b] = 1;
        ++num_bad;
        options.quarantined->push_back(
            {static_cast<std::uint32_t>(b),
             "section '" + failed_name + "' checksum mismatch localized"
             " to this block"});
      }
      frag_cursor += m.num_fragments;
      entry_cursor += m.num_entries;
    }
    if (num_bad == 0) {
      fail_section(crc_failed_id,
                   "checksum mismatch that no per-block checksum explains"
                   " (section metadata itself is suspect)");
    }
    if (num_bad == p.block_meta.size()) {
      fail_section(crc_failed_id,
                   "checksum mismatch in every block (whole file corrupt)");
    }
  }

  // ...then the deep per-element invariants, which read every payload page
  // (skipped together with the checksums when the caller opted out of
  // verification to keep the load strictly lazy).
  if (verify_checksums) {
    for (std::size_t i = 0; i + 1 < p.seq_offsets.size(); ++i) {
      if (p.seq_offsets[i] > p.seq_offsets[i + 1]) {
        fail_section(SectionId::kSeqOffsets, "is not monotone");
      }
    }
    for (std::size_t i = 0; i + 1 < p.name_offsets.size(); ++i) {
      if (p.name_offsets[i] > p.name_offsets[i + 1]) {
        fail_section(SectionId::kNameOffsets, "is not monotone");
      }
    }
    for (std::size_t i = 0; i < p.order.size(); ++i) {
      if (p.order[i] >= p.num_seqs) {
        fail_section(SectionId::kOrder, "maps outside the store");
      }
      if (p.inverse[i] >= p.num_seqs || p.order[p.inverse[i]] != i) {
        fail_section(SectionId::kInverse, "is not the inverse of 'order'");
      }
    }
    std::size_t frag_cursor = 0;
    std::size_t entry_cursor = 0;
    for (std::size_t b = 0; b < p.block_meta.size(); ++b) {
      const BlockMetaRecord& m = p.block_meta[b];
      const std::size_t frag_base = frag_cursor;
      const std::size_t entry_base = entry_cursor;
      frag_cursor += m.num_fragments;
      entry_cursor += m.num_entries;
      if (block_bad[b]) continue;  // already quarantined above
      try {
        const auto frags = p.fragments.subspan(frag_base, m.num_fragments);
        const auto csr = p.csr_offsets.subspan(b * kCsrLen, kCsrLen);
        const auto entries = p.entries.subspan(entry_base, m.num_entries);
        std::uint64_t max_len = 0;
        std::uint64_t chars = 0;
        for (const FragmentRef& f : frags) {
          const bool in_range =
              f.seq < p.num_seqs &&
              p.seq_offsets[f.seq] + f.start + f.len <=
                  p.seq_offsets[f.seq + 1];
          if (!in_range) {
            fail_section(SectionId::kFragments,
                         "references out-of-range data");
          }
          max_len = std::max<std::uint64_t>(max_len, f.len);
          chars += f.len;
        }
        if (m.max_fragment_len != max_len || m.total_chars != chars) {
          fail_section(SectionId::kBlockMeta,
                       "disagrees with the fragment data");
        }
        for (std::size_t w = 0; w + 1 < csr.size(); ++w) {
          if (csr[w] > csr[w + 1]) {
            fail_section(SectionId::kCsrOffsets, "is not monotone");
          }
        }
        if (csr.front() != 0 || csr.back() != entries.size()) {
          fail_section(SectionId::kCsrOffsets,
                       "does not bracket the block's entries");
        }
        const std::uint32_t offset_mask =
            (std::uint32_t{1} << m.offset_bits) - 1;
        for (const std::uint32_t e : entries) {
          const std::uint32_t frag = e >> m.offset_bits;
          if (frag >= frags.size() ||
              (e & offset_mask) + kWordLength > frags[frag].len) {
            fail_section(SectionId::kEntries, "decodes out of range");
          }
        }
      } catch (const Error& e) {
        // Structural damage confined to one block: the section checksum
        // may have passed (e.g. the section was rewritten consistently
        // wrong) but this block's data is unusable. Quarantine it in
        // tolerant mode; strict mode keeps the fail-closed contract.
        if (!tolerant) throw;
        block_bad[b] = 1;
        options.quarantined->push_back(
            {static_cast<std::uint32_t>(b), e.what()});
      }
    }
    if (tolerant) {
      const std::size_t num_bad = static_cast<std::size_t>(
          std::count(block_bad.begin(), block_bad.end(), 1));
      if (num_bad == p.block_meta.size()) {
        throw Error("every index block failed validation (whole file"
                    " corrupt)",
                    ErrorKind::kCorrupt);
      }
    }
  }
  return p;
}

// ---------------------------------------------------------------------------
// copy loader (v2 + v3)
// ---------------------------------------------------------------------------

DbIndex load_db_index(std::istream& in, const IndexLoadOptions& options) {
  MUBLASTP_CHECK_KIND(!MUBLASTP_FI_FAIL("io.read"), ErrorKind::kIo,
                      "injected read failure (io.read) while loading index");
  char magic[4];
  in.read(magic, sizeof(magic));
  MUBLASTP_CHECK_KIND(in.good() && std::equal(magic, magic + 4, kMagic),
                      ErrorKind::kCorrupt,
                      "not a muBLASTP index file (bad magic)");
  const auto version = read_pod<std::uint32_t>(in);
  MUBLASTP_CHECK_KIND(
      version == kDbIndexFormatV2 || version == kDbIndexFormatV3,
      ErrorKind::kCorrupt,
      "unsupported index format version " + std::to_string(version));

  if (version == kDbIndexFormatV3) {
    // Slurp the remaining stream and reuse the section parser, then copy
    // the parsed spans into an owned DbIndex. mmap loading (MappedDbIndex)
    // skips this copy entirely; this path exists for stream sources and
    // callers that want an owned index.
    std::string image(reinterpret_cast<const char*>(kMagic),
                      sizeof(kMagic));
    image.append(reinterpret_cast<const char*>(&version), sizeof(version));
    image.append(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    MUBLASTP_CHECK_KIND(!in.bad(), ErrorKind::kIo,
                        "read failure while loading index");
    IndexParseOptions parse_options;
    parse_options.tolerate_block_corruption =
        options.tolerate_block_corruption;
    parse_options.quarantined = options.quarantined;
    const ParsedIndexFile p = parse_db_index_v3(
        {reinterpret_cast<const std::byte*>(image.data()), image.size()},
        parse_options);
    std::vector<char> block_bad(p.num_blocks, 0);
    if (options.quarantined != nullptr) {
      for (const BlockQuarantine& q : *options.quarantined) {
        if (q.block < block_bad.size()) block_bad[q.block] = 1;
      }
    }

    SequenceStore db;
    for (std::uint64_t i = 0; i < p.num_seqs; ++i) {
      const auto seq =
          p.arena.subspan(p.seq_offsets[i], p.seq_offsets[i + 1] -
                                                p.seq_offsets[i]);
      db.add(seq, std::string(p.name_blob.substr(
                      p.name_offsets[i],
                      p.name_offsets[i + 1] - p.name_offsets[i])));
    }
    std::vector<SeqId> order(p.order.begin(), p.order.end());
    NeighborTable neighbors(*p.config.matrix, p.config.neighbor_threshold);
    DbIndex index(std::move(db), std::move(order), p.config,
                  std::move(neighbors));
    index.inverse_.assign(p.inverse.begin(), p.inverse.end());

    constexpr std::size_t kCsrLen = static_cast<std::size_t>(kNumWords) + 1;
    index.blocks_.resize(p.num_blocks);
    std::size_t frag_cursor = 0;
    std::size_t entry_cursor = 0;
    for (std::size_t b = 0; b < p.num_blocks; ++b) {
      const BlockMetaRecord& m = p.block_meta[b];
      DbIndexBlock& block = index.blocks_[b];
      if (block_bad[b]) {
        // Quarantined: an empty block (all-zero CSR, no fragments or
        // entries) contributes no hits, so the engine skips it naturally.
        block.fragments_.clear();
        block.offsets_.assign(kCsrLen, 0);
        block.entries_.clear();
        block.max_fragment_len_ = 0;
        block.total_chars_ = 0;
        block.offset_bits_ = 1;
      } else {
        const auto frags = p.fragments.subspan(frag_cursor, m.num_fragments);
        const auto csr = p.csr_offsets.subspan(b * kCsrLen, kCsrLen);
        const auto entries = p.entries.subspan(entry_cursor, m.num_entries);
        block.fragments_.assign(frags.begin(), frags.end());
        block.offsets_.assign(csr.begin(), csr.end());
        block.entries_.assign(entries.begin(), entries.end());
        block.max_fragment_len_ = m.max_fragment_len;
        block.total_chars_ = m.total_chars;
        block.offset_bits_ = m.offset_bits;
      }
      frag_cursor += m.num_fragments;
      entry_cursor += m.num_entries;
    }
    return index;
  }

  // --- v2 body (legacy streamed format) ---------------------------------
  DbIndexConfig config;
  config.block_bytes = read_pod<std::uint64_t>(in);
  config.neighbor_threshold = read_pod<std::int32_t>(in);
  config.matrix = &matrix_by_name(read_string(in));
  config.long_seq_limit = read_pod<std::uint64_t>(in);
  config.long_seq_overlap = read_pod<std::uint64_t>(in);

  SequenceStore db;
  const auto num_seqs = read_pod<std::uint64_t>(in);
  MUBLASTP_CHECK(num_seqs > 0 && num_seqs < (std::uint64_t{1} << 40),
                 "implausible sequence count");
  for (std::uint64_t i = 0; i < num_seqs; ++i) {
    const auto len = read_pod<std::uint64_t>(in);
    MUBLASTP_CHECK(len > 0 && len < (std::uint64_t{1} << 32),
                   "implausible sequence length");
    std::vector<Residue> seq(len);
    in.read(reinterpret_cast<char*>(seq.data()),
            static_cast<std::streamsize>(len));
    MUBLASTP_CHECK(in.good(), "truncated index file");
    db.add(seq, read_string(in));
  }

  std::vector<SeqId> order = read_vector<SeqId>(in);
  MUBLASTP_CHECK(order.size() == db.size(), "order/store size mismatch");

  NeighborTable neighbors(*config.matrix, config.neighbor_threshold);
  DbIndex index(std::move(db), std::move(order), config,
                std::move(neighbors));
  index.inverse_.resize(index.order_.size());
  for (SeqId s = 0; s < index.order_.size(); ++s) {
    index.inverse_[index.order_[s]] = s;
  }

  const auto num_blocks = read_pod<std::uint64_t>(in);
  MUBLASTP_CHECK(num_blocks > 0 && num_blocks < (std::uint64_t{1} << 32),
                 "implausible block count");
  index.blocks_.resize(num_blocks);
  for (DbIndexBlock& b : index.blocks_) {
    b.fragments_ = read_vector<FragmentRef>(in);
    b.offsets_ = read_vector<std::uint32_t>(in);
    b.entries_ = read_vector<std::uint32_t>(in);
    b.max_fragment_len_ = read_pod<std::uint64_t>(in);
    b.total_chars_ = read_pod<std::uint64_t>(in);
    b.offset_bits_ = read_pod<std::int32_t>(in);
    MUBLASTP_CHECK(
        b.offsets_.size() == static_cast<std::size_t>(kNumWords) + 1,
        "corrupt block: wrong offsets size");
    MUBLASTP_CHECK(b.offsets_.back() == b.entries_.size(),
                   "corrupt block: offsets/entries mismatch");
    MUBLASTP_CHECK(b.offset_bits_ >= 1 && b.offset_bits_ <= 31,
                   "corrupt block: bad offset bits");
    std::size_t max_len = 0;
    std::size_t chars = 0;
    for (const FragmentRef& f : b.fragments_) {
      MUBLASTP_CHECK(f.seq < index.db_.size() &&
                         f.start + f.len <= index.db_.length(f.seq),
                     "corrupt block: fragment out of range");
      max_len = std::max<std::size_t>(max_len, f.len);
      chars += f.len;
    }
    MUBLASTP_CHECK(b.max_fragment_len_ == max_len,
                   "corrupt block: fragment length summary mismatch");
    MUBLASTP_CHECK(b.total_chars_ == chars,
                   "corrupt block: character count mismatch");
    // Offsets must be monotone and every entry must decode to a valid
    // (fragment, in-range offset) pair.
    for (std::size_t w = 0; w + 1 < b.offsets_.size(); ++w) {
      MUBLASTP_CHECK(b.offsets_[w] <= b.offsets_[w + 1],
                     "corrupt block: offsets not monotone");
    }
    for (const std::uint32_t e : b.entries_) {
      const std::uint32_t frag = b.entry_fragment(e);
      MUBLASTP_CHECK(frag < b.fragments_.size(),
                     "corrupt block: entry fragment out of range");
      MUBLASTP_CHECK(b.entry_offset(e) + kWordLength <=
                         b.fragments_[frag].len,
                     "corrupt block: entry offset out of range");
    }
  }
  return index;
}

namespace {

// Path-level preconditions shared by the copy loader and describe. The
// stream API cannot distinguish "directory" from "garbage", so check the
// filesystem first and fail with a message that names the actual problem.
void check_index_path(const std::string& path) {
  MUBLASTP_CHECK_KIND(!MUBLASTP_FI_FAIL("index.open"), ErrorKind::kIo,
                      "injected open failure (index.open): " + path);
  std::error_code ec;
  const auto status = std::filesystem::status(path, ec);
  MUBLASTP_CHECK_KIND(!ec && std::filesystem::exists(status), ErrorKind::kIo,
                      "cannot open index file: " + path);
  MUBLASTP_CHECK_KIND(!std::filesystem::is_directory(status), ErrorKind::kIo,
                      "index path is a directory, not a file: " + path);
  MUBLASTP_CHECK_KIND(std::filesystem::is_regular_file(status),
                      ErrorKind::kIo,
                      "index path is not a regular file: " + path);
  const auto size = std::filesystem::file_size(path, ec);
  MUBLASTP_CHECK_KIND(!ec, ErrorKind::kIo, "cannot stat index file: " + path);
  MUBLASTP_CHECK_KIND(size > 0, ErrorKind::kCorrupt,
                      "empty index file: " + path);
}

}  // namespace

DbIndex load_db_index(std::istream& in) {
  return load_db_index(in, IndexLoadOptions{});
}

DbIndex load_db_index_file(const std::string& path,
                           const IndexLoadOptions& options) {
  check_index_path(path);
  std::ifstream in(path, std::ios::binary);
  MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kIo,
                      "cannot open index file: " + path);
  return load_db_index(in, options);
}

DbIndex load_db_index_file(const std::string& path) {
  return load_db_index_file(path, IndexLoadOptions{});
}

IndexConfigSummary read_index_config_file(const std::string& path) {
  const DbIndexFileInfo info = describe_db_index_file(path);
  MUBLASTP_CHECK_KIND(info.version == kDbIndexFormatV3, ErrorKind::kInvalid,
                      "index config summary needs a v3 file: " + path);
  const IndexSectionInfo* cfg = nullptr;
  for (const IndexSectionInfo& s : info.sections) {
    if (s.id == static_cast<std::uint32_t>(SectionId::kConfig)) cfg = &s;
  }
  MUBLASTP_CHECK_KIND(cfg != nullptr, ErrorKind::kCorrupt,
                      "index section 'config' is missing from the file");
  std::ifstream in(path, std::ios::binary);
  MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kIo,
                      "cannot open index file: " + path);
  in.seekg(static_cast<std::streamoff>(cfg->offset));
  std::string payload(cfg->length, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kCorrupt,
                      "index section 'config' is out of bounds"
                      " (truncated file?)");
  if (crc32(payload.data(), payload.size()) != cfg->crc32) {
    fail_section(SectionId::kConfig, "checksum mismatch (corrupt file)");
  }
  SectionReader r{SectionId::kConfig,
                  {reinterpret_cast<const std::byte*>(payload.data()),
                   payload.size()}};
  IndexConfigSummary out;
  out.block_bytes = r.read<std::uint64_t>();
  out.neighbor_threshold = r.read<std::int32_t>();
  const auto name_len = r.read<std::uint32_t>();
  if (name_len > (1u << 10)) {
    fail_section(SectionId::kConfig, "has an implausible matrix name");
  }
  out.matrix_name = std::string(r.read_string(name_len));
  out.long_seq_limit = r.read<std::uint64_t>();
  out.long_seq_overlap = r.read<std::uint64_t>();
  out.num_seqs = r.read<std::uint64_t>();
  out.num_blocks = r.read<std::uint64_t>();
  return out;
}

DbIndexFileInfo describe_db_index_file(const std::string& path) {
  check_index_path(path);
  std::ifstream in(path, std::ios::binary);
  MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kIo,
                      "cannot open index file: " + path);

  DbIndexFileInfo info;
  std::error_code ec;
  info.file_bytes = std::filesystem::file_size(path, ec);

  char magic[4];
  in.read(magic, sizeof(magic));
  MUBLASTP_CHECK_KIND(in.good() && std::equal(magic, magic + 4, kMagic),
                      ErrorKind::kCorrupt,
                      "not a muBLASTP index file (bad magic): " + path);
  info.version = read_pod<std::uint32_t>(in);
  MUBLASTP_CHECK_KIND(
      info.version == kDbIndexFormatV2 || info.version == kDbIndexFormatV3,
      ErrorKind::kCorrupt,
      "unsupported index format version " + std::to_string(info.version));
  if (info.version == kDbIndexFormatV2) return info;  // v2 has no table

  const auto section_count = read_pod<std::uint32_t>(in);
  const auto table_crc = read_pod<std::uint32_t>(in);
  const auto file_bytes = read_pod<std::uint64_t>(in);
  MUBLASTP_CHECK_KIND(file_bytes == info.file_bytes, ErrorKind::kCorrupt,
                      "truncated index file: header declares " +
                          std::to_string(file_bytes) + " bytes, file has " +
                          std::to_string(info.file_bytes));
  MUBLASTP_CHECK_KIND(section_count >= 1 && section_count <= 64,
                      ErrorKind::kCorrupt,
                      "index header: implausible section count");
  in.seekg(sizeof(FileHeaderV3));
  std::vector<SectionRecord> table(section_count);
  in.read(reinterpret_cast<char*>(table.data()),
          static_cast<std::streamsize>(section_count *
                                       sizeof(SectionRecord)));
  MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kCorrupt,
                      "truncated index file: section table missing");
  MUBLASTP_CHECK_KIND(
      crc32(table.data(), section_count * sizeof(SectionRecord)) ==
          table_crc,
      ErrorKind::kCorrupt, "index header: section table checksum mismatch");
  for (const SectionRecord& r : table) {
    info.sections.push_back(
        {std::string(section_name(static_cast<SectionId>(r.id))), r.id,
         r.offset, r.length, static_cast<std::uint32_t>(r.crc32)});
  }
  return info;
}

}  // namespace mublastp
