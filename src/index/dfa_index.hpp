// DFA-based query index (FSA-BLAST style).
//
// The paper's related work contrasts NCBI's lookup table (+ pv array +
// thick backbone) with the deterministic finite automaton of FSA-BLAST
// [Cameron, Williams, Cannane], which scans the subject stream with one
// state transition per residue instead of re-hashing a full word at every
// position. States are the (W-1)-mers of the alphabet; consuming residue c
// in state s yields the word (s, c), whose query-position list is emitted,
// and moves to state (s[1..], c) — a single multiply-add.
//
// The position lists are identical to QueryIndex's (neighbors
// materialized), so both detectors produce exactly the same hit stream;
// tests assert it, and bench/abl_dfa compares scan throughput.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/sequence.hpp"
#include "index/neighbor.hpp"

namespace mublastp {

/// DFA over the query: one transition per subject residue.
class DfaQueryIndex {
 public:
  /// Number of DFA states: one per (W-1)-mer.
  static constexpr std::uint32_t kNumStates =
      kNumWords / kAlphabetSize;  // 24^(W-1)

  /// Builds the automaton for `query` under `neighbors` (same position
  /// semantics as QueryIndex).
  DfaQueryIndex(std::span<const Residue> query, const NeighborTable& neighbors);

  /// Initial state before any residue is consumed. The first kWordLength-1
  /// residues of a subject must be fed with consume() before emissions are
  /// meaningful; scan() handles this.
  std::uint32_t start_state() const { return 0; }

  /// Consumes one residue: returns the new state. The emitted word for the
  /// transition is state * kAlphabetSize + c.
  static std::uint32_t next_state(std::uint32_t state, Residue c) {
    return (state * kAlphabetSize + c) % kNumStates;
  }

  /// Query positions for the word emitted by (state, c).
  std::span<const std::uint32_t> emit(std::uint32_t state, Residue c) const {
    const Cell& cell =
        cells_[static_cast<std::size_t>(state) * kAlphabetSize + c];
    return {positions_.data() + cell.offset, cell.count};
  }

  /// Scans a whole subject, invoking `on_hit(subject_offset, query_offset)`
  /// for every hit — the word at subject position soff is the one ending at
  /// residue soff + W - 1.
  template <typename OnHit>
  void scan(std::span<const Residue> subject, OnHit&& on_hit) const {
    if (subject.size() < static_cast<std::size_t>(kWordLength)) return;
    std::uint32_t state = start_state();
    // Prime the state with the first W-1 residues.
    for (int i = 0; i < kWordLength - 1; ++i) {
      state = next_state(state, subject[static_cast<std::size_t>(i)]);
    }
    for (std::size_t end = kWordLength - 1; end < subject.size(); ++end) {
      const Residue c = subject[end];
      for (const std::uint32_t qoff : emit(state, c)) {
        on_hit(static_cast<std::uint32_t>(end - (kWordLength - 1)), qoff);
      }
      state = next_state(state, c);
    }
  }

  /// Total stored (word, position) pairs (same metric as QueryIndex).
  std::size_t total_positions() const { return positions_.size(); }

 private:
  struct Cell {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
  };

  std::vector<Cell> cells_;             // kNumStates * kAlphabetSize
  std::vector<std::uint32_t> positions_;
};

}  // namespace mublastp
