#include "index/neighbor.hpp"

#include <algorithm>
#include <array>

namespace mublastp {
namespace {

// For the DFS bound: per residue, the maximum substitution score in its row.
std::array<Score, kAlphabetSize> row_maxima(const ScoreMatrix& m) {
  std::array<Score, kAlphabetSize> out{};
  for (int a = 0; a < kAlphabetSize; ++a) {
    Score best = m(static_cast<Residue>(a), Residue{0});
    for (int b = 1; b < kAlphabetSize; ++b) {
      best = std::max(best, m(static_cast<Residue>(a), static_cast<Residue>(b)));
    }
    out[static_cast<std::size_t>(a)] = best;
  }
  return out;
}

}  // namespace

Score NeighborTable::word_pair_score(const ScoreMatrix& matrix,
                                     std::uint32_t a, std::uint32_t b) {
  std::array<Residue, kWordLength> wa{};
  std::array<Residue, kWordLength> wb{};
  unpack_word(a, wa.data());
  unpack_word(b, wb.data());
  Score s = 0;
  for (int i = 0; i < kWordLength; ++i) s += matrix(wa[i], wb[i]);
  return s;
}

NeighborTable::NeighborTable(const ScoreMatrix& matrix, Score threshold)
    : threshold_(threshold) {
  const auto maxima = row_maxima(matrix);
  offsets_.assign(static_cast<std::size_t>(kNumWords) + 1, 0);

  std::array<Residue, kWordLength> w{};
  std::vector<std::uint32_t> scratch;
  scratch.reserve(1024);

  // Enumerate neighbors of one word with a bounded DFS over positions:
  // prune when current score + best-possible remainder < threshold.
  const auto enumerate = [&](std::uint32_t word, std::vector<std::uint32_t>& out) {
    unpack_word(word, w.data());
    // suffix_max[i] = max achievable score from positions i..W-1.
    std::array<Score, kWordLength + 1> suffix_max{};
    suffix_max[kWordLength] = 0;
    for (int i = kWordLength - 1; i >= 0; --i) {
      suffix_max[i] = suffix_max[i + 1] + maxima[w[i]];
    }
    // Recursion depth is kWordLength (tiny), so a recursive lambda is
    // clearest.
    const auto dfs = [&](auto&& self, int pos, std::uint32_t key,
                         Score score) -> void {
      if (pos == kWordLength) {
        if (score >= threshold_) out.push_back(key);
        return;
      }
      const auto row = matrix.row(w[pos]);
      for (int b = 0; b < kAlphabetSize; ++b) {
        const Score s = score + row[static_cast<std::size_t>(b)];
        if (s + suffix_max[pos + 1] < threshold_) continue;
        self(self, pos + 1,
             key * static_cast<std::uint32_t>(kAlphabetSize) +
                 static_cast<std::uint32_t>(b),
             s);
      }
    };
    dfs(dfs, 0, 0, 0);
  };

  // Two passes: count then fill, to keep flat_ contiguous without realloc
  // churn. Neighbor keys come out of the DFS already in ascending order
  // because the alphabet loop is ascending at every position.
  std::vector<std::uint32_t> counts(kNumWords, 0);
  for (std::uint32_t word = 0; word < static_cast<std::uint32_t>(kNumWords);
       ++word) {
    scratch.clear();
    enumerate(word, scratch);
    counts[word] = static_cast<std::uint32_t>(scratch.size());
  }
  for (int i = 0; i < kNumWords; ++i) {
    offsets_[static_cast<std::size_t>(i) + 1] =
        offsets_[static_cast<std::size_t>(i)] + counts[static_cast<std::size_t>(i)];
  }
  flat_.resize(offsets_.back());
  for (std::uint32_t word = 0; word < static_cast<std::uint32_t>(kNumWords);
       ++word) {
    scratch.clear();
    enumerate(word, scratch);
    std::copy(scratch.begin(), scratch.end(),
              flat_.begin() + offsets_[word]);
  }
}

}  // namespace mublastp
