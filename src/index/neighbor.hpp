// Neighboring-word lookup table (paper Section III, Figure 3(b)).
//
// BLASTP hit detection matches a word w against both w itself and all
// "neighboring" words w' whose aligned word-pair score sum_i M(w[i], w'[i])
// reaches the threshold T (default 11 with BLOSUM62). Database indexes that
// materialize neighbor *positions* blow up by the average neighborhood size;
// the paper instead stores positions only for exact words and keeps a
// second, tiny table mapping each word to its neighbor words. Hit detection
// does one extra indirection per query word in exchange for a dramatically
// smaller index.
//
// Note the NCBI subtlety preserved here: a word is its own neighbor only if
// its self-score reaches T, so low-complexity words (e.g. containing X) may
// match nothing, exactly as in NCBI-BLAST.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "score/matrix.hpp"

namespace mublastp {

/// Default neighbor threshold T for BLASTP with BLOSUM62.
inline constexpr Score kDefaultNeighborThreshold = 11;

/// Word -> neighbor-words table in CSR form.
class NeighborTable {
 public:
  /// Builds the table for all kNumWords words. Cost is a bounded
  /// depth-first enumeration per word (milliseconds, done once per index).
  NeighborTable(const ScoreMatrix& matrix, Score threshold);

  /// Neighbor word keys of `word` (sorted ascending; includes `word` itself
  /// iff its self-score >= threshold).
  std::span<const std::uint32_t> neighbors(std::uint32_t word) const {
    return {flat_.data() + offsets_[word],
            offsets_[word + 1] - offsets_[word]};
  }

  /// The threshold T this table was built with.
  Score threshold() const { return threshold_; }

  /// Total number of (word, neighbor) pairs — table footprint metric.
  std::size_t total_neighbors() const { return flat_.size(); }

  /// Score of aligning two words under the build matrix (exposed for tests).
  static Score word_pair_score(const ScoreMatrix& matrix, std::uint32_t a,
                               std::uint32_t b);

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> flat_;
  Score threshold_;
};

}  // namespace mublastp
