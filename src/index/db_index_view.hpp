// Non-owning view over a database index, the common currency of the
// engines.
//
// Two concrete index representations exist: the owned DbIndex (vectors
// built in memory or copy-loaded from a v2/v3 file) and the MappedDbIndex
// (spans served straight out of a read-only mmap of a v3 file). Search must
// drive both identically — same hits, same HSPs, same telemetry counters —
// so the engines are written against this view instead of either concrete
// type. The view is a handful of spans plus scalars: constructing one
// allocates only the per-block view array, and every hot-path accessor
// compiles to the same loads the old DbIndex& code paths produced.
//
// Lifetime: a DbIndexView borrows everything (arena, CSR arrays, neighbor
// table) from the index it was built over; that index must outlive the view
// and every engine holding it — the same contract engines already had with
// `const DbIndex&`.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "index/db_index.hpp"

namespace mublastp {

class MappedDbIndex;

/// One index block as spans: same accessor API as DbIndexBlock, backed by
/// either that block's vectors or a slice of a mapped file.
class DbBlockView {
 public:
  DbBlockView() = default;
  DbBlockView(std::span<const std::uint32_t> offsets,
              std::span<const std::uint32_t> entries,
              std::span<const FragmentRef> fragments,
              std::size_t max_fragment_len, std::size_t total_chars,
              int offset_bits)
      : offsets_(offsets),
        entries_(entries),
        fragments_(fragments),
        max_fragment_len_(max_fragment_len),
        total_chars_(total_chars),
        offset_bits_(offset_bits) {}

  /// Packed 32-bit entries for `word` (exact word only, no neighbors),
  /// ordered by (fragment, offset) ascending.
  std::span<const std::uint32_t> entries(std::uint32_t word) const {
    return {entries_.data() + offsets_[word],
            offsets_[word + 1] - offsets_[word]};
  }

  /// Decodes the block-local fragment id of an entry.
  std::uint32_t entry_fragment(std::uint32_t entry) const {
    return entry >> offset_bits_;
  }

  /// Decodes the in-fragment word offset of an entry.
  std::uint32_t entry_offset(std::uint32_t entry) const {
    return entry & ((std::uint32_t{1} << offset_bits_) - 1);
  }

  /// Fragment descriptors; local id indexes this.
  std::span<const FragmentRef> fragments() const { return fragments_; }

  /// Longest fragment in the block (bounds the diagonal range).
  std::size_t max_fragment_len() const { return max_fragment_len_; }

  /// Total residues covered by this block.
  std::size_t total_chars() const { return total_chars_; }

  /// Total stored positions.
  std::size_t num_positions() const { return entries_.size(); }

  /// Approximate footprint of the position data (32-bit entries).
  std::size_t position_bytes() const {
    return entries_.size() * sizeof(std::uint32_t);
  }

  /// Bits used for the offset field of packed entries.
  int offset_bits() const { return offset_bits_; }

 private:
  std::span<const std::uint32_t> offsets_;  // kNumWords + 1
  std::span<const std::uint32_t> entries_;
  std::span<const FragmentRef> fragments_;
  std::size_t max_fragment_len_ = 0;
  std::size_t total_chars_ = 0;
  int offset_bits_ = 0;
};

/// The engines' read-only window onto an index, whatever owns it.
class DbIndexView {
 public:
  /// View over an owned, in-memory index. Implicit on purpose: existing
  /// `Engine(index)` call sites keep compiling unchanged.
  DbIndexView(const DbIndex& index);  // NOLINT(google-explicit-constructor)

  /// View over a memory-mapped index file.
  DbIndexView(const MappedDbIndex& mapped);  // NOLINT

  /// Index blocks in ascending sequence-length order.
  std::span<const DbBlockView> blocks() const { return blocks_; }

  /// Shared word -> neighbor-words table.
  const NeighborTable& neighbors() const { return *neighbors_; }

  /// Construction parameters of the underlying index.
  const DbIndexConfig& config() const { return config_; }

  /// Number of sequences in the (length-sorted) store.
  std::size_t num_sequences() const { return seq_offsets_.size() - 1; }

  /// Residues of sorted-store sequence `id`.
  std::span<const Residue> sequence(SeqId id) const {
    return arena_.subspan(seq_offsets_[id],
                          seq_offsets_[id + 1] - seq_offsets_[id]);
  }

  /// Length in residues of sorted-store sequence `id`.
  std::size_t length(SeqId id) const {
    return seq_offsets_[id + 1] - seq_offsets_[id];
  }

  /// FASTA header (may be empty) of sorted-store sequence `id`.
  std::string_view name(SeqId id) const;

  /// Total residues across all sequences.
  std::size_t total_residues() const { return arena_.size(); }

  /// Maps a sorted-store id back to the original database id.
  SeqId original_id(SeqId sorted_id) const { return order_[sorted_id]; }

  /// Maps an original id to its position in the sorted store.
  SeqId sorted_id(SeqId original) const { return inverse_[original]; }

 private:
  std::span<const Residue> arena_;
  std::span<const std::size_t> seq_offsets_;  // num_sequences() + 1
  std::span<const SeqId> order_;
  std::span<const SeqId> inverse_;
  std::vector<DbBlockView> blocks_;
  const NeighborTable* neighbors_ = nullptr;
  DbIndexConfig config_;
  // Name storage differs by backing: the owned store keeps std::strings,
  // the mapped form a blob + offsets. Exactly one of these is active.
  const SequenceStore* owned_names_ = nullptr;
  std::span<const std::uint64_t> name_offsets_;
  const char* name_blob_ = nullptr;
};

}  // namespace mublastp
