#include "index/query_index.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mublastp {

QueryIndex::QueryIndex(std::span<const Residue> query,
                       const NeighborTable& neighbors)
    : query_length_(query.size()) {
  MUBLASTP_CHECK(query.size() >= static_cast<std::size_t>(kWordLength),
                 "query shorter than word length");
  cells_.assign(kNumWords, Cell{});
  pv_.assign((kNumWords + 63) / 64, 0);

  // Pass 1: count positions per word (via each query word's neighborhood).
  const std::size_t num_words = query.size() - kWordLength + 1;
  for (std::size_t p = 0; p < num_words; ++p) {
    const std::uint32_t w = word_key(query.data() + p);
    for (const std::uint32_t nb : neighbors.neighbors(w)) {
      ++cells_[nb].count;
    }
  }

  // Assign spill offsets for thick cells.
  std::uint32_t spill_total = 0;
  for (Cell& c : cells_) {
    if (c.count > kInlinePositions) {
      c.spill_offset = spill_total;
      spill_total += c.count;
    }
  }
  spill_.resize(spill_total);

  // Pass 2: fill. Reuse count as a cursor, then restore.
  std::vector<std::uint32_t> cursor(kNumWords, 0);
  for (std::size_t p = 0; p < num_words; ++p) {
    const std::uint32_t w = word_key(query.data() + p);
    for (const std::uint32_t nb : neighbors.neighbors(w)) {
      Cell& c = cells_[nb];
      const std::uint32_t i = cursor[nb]++;
      if (c.count <= kInlinePositions) {
        c.inline_pos[i] = static_cast<std::uint32_t>(p);
      } else {
        spill_[c.spill_offset + i] = static_cast<std::uint32_t>(p);
      }
    }
  }

  // Positions were inserted in ascending p already (outer loop order), so no
  // per-cell sort is needed. Set pv bits and the footprint metric.
  for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords); ++w) {
    if (cells_[w].count > 0) {
      pv_[w >> 6] |= std::uint64_t{1} << (w & 63);
      total_positions_ += cells_[w].count;
    }
  }
}

}  // namespace mublastp
