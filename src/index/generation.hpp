// MUGEN01: generation manifests for crash-consistent incremental index
// builds (ROADMAP item 4).
//
// A *generation* is an immutable snapshot of the logical database as a
// chain of self-contained v3 index files ("members"):
//
//   db.mbi            the base index (generation 0 — no manifest needed)
//   db.mbi.d000001    delta members appended by `mublastp_makedb --append`
//   db.mbi.c000003    a canonical member produced by `--compact`
//   db.mbi.gen000NNN  the MUGEN01 manifest publishing generation NNN
//
// Readers resolve the HIGHEST-numbered valid manifest next to the base
// path; with no manifest present the bare base file is generation 0. Each
// manifest lists every member with its global id offset (global original
// id = member id_offset + member-local original id — members are a
// partition of the database in append order), its residue/sequence counts
// (so E-values are priced over the combined total), and a whole-file CRC.
//
// Crash consistency is the durable-publish protocol (common/durable.hpp):
// members are fully written + fsynced under their final names BEFORE the
// manifest that references them is published, and the manifest itself goes
// temp → fsync → atomic rename → dir fsync. The manifest rename is the
// single commit point: a kill -9 at ANY instant leaves the previous
// generation resolvable (at worst plus orphaned `*.tmp` files, detected by
// resolve_generations and removed by the next build operation). Published
// files are never renamed over or rewritten — old generations stay valid
// until --compact garbage-collects them AFTER its own publish succeeded.
//
// docs/INCREMENTAL.md walks through the ordering argument and recovery
// rules; tests/test_incremental.cpp and scripts/kill_during_append.sh
// prove them (in-process injection + scripted SIGKILL at every site).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/sequence.hpp"
#include "index/db_index.hpp"

namespace mublastp {

/// Current MUGEN01 format version.
inline constexpr std::uint32_t kGenerationManifestVersion = 1;

/// Sections of a MUGEN01 file. Values are stable on-disk ids.
enum class GenSectionId : std::uint32_t {
  kConfig = 1,      ///< GenConfigRecord + matrix name (build parameters)
  kMemberMeta = 2,  ///< member_count x GenMemberRecord
  kPaths = 3,       ///< member_count NUL-terminated member file names
};

/// Human-readable section name used in error messages.
std::string_view gen_section_name(GenSectionId id);

/// Fixed-size file header at offset 0 (same shape as MUSHARD01).
struct GenManifestHeader {
  char magic[12];              ///< "MUGEN01", NUL-padded
  std::uint32_t version;       ///< kGenerationManifestVersion
  std::uint32_t section_count;
  std::uint32_t table_crc32;   ///< CRC32 of the section-table bytes
  std::uint32_t reserved0;     ///< zero
  std::uint32_t reserved1;     ///< zero; aligns file_bytes to 8
  std::uint64_t file_bytes;    ///< total file size (fast truncation check)
  std::uint8_t reserved[24];   ///< zero; pads the header to 64 bytes
};
static_assert(sizeof(GenManifestHeader) == 64);

/// Fixed prefix of the kConfig section; the matrix name follows it.
struct GenConfigRecord {
  std::uint32_t generation;        ///< generation number this file publishes
  std::uint32_t member_count;
  std::uint64_t total_sequences;   ///< combined over all members
  std::uint64_t total_residues;    ///< combined over all members
  std::uint64_t block_bytes;       ///< build config shared by every member
  std::int32_t neighbor_threshold;
  std::uint32_t matrix_name_len;   ///< chars following this record
  std::uint64_t long_seq_limit;
  std::uint64_t long_seq_overlap;
};
static_assert(sizeof(GenConfigRecord) == 56);

/// One row of the kMemberMeta section.
struct GenMemberRecord {
  std::uint64_t num_sequences;  ///< sequences in this member
  std::uint64_t num_residues;   ///< residues in this member
  std::uint64_t id_offset;      ///< global id = id_offset + local original id
  std::uint32_t index_crc32;    ///< CRC32 of the whole member index file
  std::uint32_t reserved;       ///< zero
};
static_assert(sizeof(GenMemberRecord) == 32);

/// In-memory form of one chain member.
struct GenerationMember {
  /// Member index file name, relative to the manifest's directory.
  std::string path;
  std::uint64_t num_sequences = 0;
  std::uint64_t num_residues = 0;
  std::uint64_t id_offset = 0;
  std::uint32_t index_crc32 = 0;
};

/// In-memory form of a manifest (what save consumes and load produces).
struct GenerationManifest {
  std::uint32_t generation = 0;
  std::uint64_t total_sequences = 0;
  std::uint64_t total_residues = 0;
  /// Build configuration shared by every member (appends read this from
  /// the manifest so deltas are built with identical parameters).
  std::uint64_t block_bytes = 0;
  std::int32_t neighbor_threshold = 0;
  std::string matrix_name;
  std::uint64_t long_seq_limit = 0;
  std::uint64_t long_seq_overlap = 0;
  std::vector<GenerationMember> members;

  std::uint32_t member_count() const {
    return static_cast<std::uint32_t>(members.size());
  }
};

/// `<base>.genNNNNNN` — where generation `gen`'s manifest lives.
std::string generation_manifest_path(const std::string& base_path,
                                     std::uint32_t gen);

/// `<base>.dNNNNNN` — the delta member file appended by generation `gen`.
std::string delta_member_path(const std::string& base_path,
                              std::uint32_t gen);

/// `<base>.cNNNNNN` — the canonical member written by a generation-`gen`
/// compaction.
std::string compact_member_path(const std::string& base_path,
                                std::uint32_t gen);

/// Serializes `manifest` to its on-disk image (validating invariants:
/// contiguous id offsets, counts summing to the totals, non-empty paths).
/// Throws Error(kInvalid) on inconsistent input.
std::string serialize_generation_manifest(const GenerationManifest& manifest);

/// Parses and validates a complete manifest image, failing closed with
/// Error(kCorrupt) naming the offending section. Never returns a
/// partially-valid manifest.
GenerationManifest parse_generation_manifest(std::span<const std::byte> image);

/// Writes `manifest` durably next to `base_path` (temp → fsync → atomic
/// rename of `<base>.gen<generation>` → directory fsync). Injection sites:
/// "build.manifest_write", "build.fsync", "build.publish_rename". Returns
/// the published manifest path.
std::string save_generation_manifest(const std::string& base_path,
                                     const GenerationManifest& manifest);

/// Reads and parses a manifest file. Throws Error(kIo) on read failure
/// (injection site "io.read"), Error(kCorrupt) on damage.
GenerationManifest load_generation_manifest(const std::string& path);

/// What resolve_generations found next to a base index path.
struct ResolvedGeneration {
  /// The newest published generation (0 = bare base file, no manifest).
  std::uint32_t generation = 0;
  /// The newest manifest, absent for generation 0.
  std::optional<GenerationManifest> manifest;
  /// Path of the newest manifest file ("" for generation 0).
  std::string manifest_path;
  /// Member index files of the newest generation, directory-joined and in
  /// chain (id_offset) order. For generation 0 this is {base_path} when
  /// the base file exists, else empty.
  std::vector<std::string> member_paths;
  /// Every published generation number found, ascending (stale ones are
  /// GC candidates for --compact; dbinfo reports them).
  std::vector<std::uint32_t> all_generations;
  /// Orphaned `<base>*.tmp` files left by a crashed publish, directory-
  /// joined. Harmless (never resolved) but reported and cleaned by the
  /// next build operation.
  std::vector<std::string> orphan_temps;
};

/// Scans the directory of `base_path` for generation manifests and orphan
/// temps and resolves the newest generation. A corrupt newest manifest is
/// fail-closed (Error(kCorrupt)): rename-after-fsync means a published
/// manifest can only be damaged by real bit rot, which must not silently
/// fall back to a stale generation.
ResolvedGeneration resolve_generations(const std::string& base_path);

/// Unlinks every orphaned temp next to `base_path`. Injection site
/// "build.gc_unlink" per removal. Returns the number removed.
std::size_t clean_orphan_temps(const std::string& base_path);

/// Result of append_generation.
struct AppendResult {
  std::uint32_t generation = 0;      ///< the newly published generation
  std::string delta_path;            ///< the new member file
  std::string manifest_path;         ///< the published manifest
  std::size_t orphans_removed = 0;   ///< temps cleaned before building
  BuildTelemetry telemetry;          ///< delta index build timings
  std::uint32_t chain_length = 0;    ///< members in the new generation
};

/// Appends `new_seqs` to the database at `base_path` as a new delta
/// generation: cleans orphans, reads the chain's build config (from the
/// newest manifest, or the base file's config section for generation 0),
/// builds a self-contained delta index over `new_seqs` with identical
/// parameters, durably writes it as `<base>.d<G+1>`, then publishes
/// manifest generation G+1 whose members are the previous chain plus the
/// delta. A crash at any instant leaves generation G resolvable.
/// `build_threads` as in DbIndexConfig (0 = all).
AppendResult append_generation(const std::string& base_path,
                               const SequenceStore& new_seqs,
                               int build_threads = 0);

/// Result of compact_generations.
struct CompactResult {
  std::uint32_t generation = 0;   ///< the newly published generation
  std::string compact_path;       ///< the single canonical member
  std::vector<std::string> removed;  ///< GC'd stale files (post-publish)
  std::size_t orphans_removed = 0;
  BuildTelemetry telemetry;
};

/// Compacts the chain at `base_path` into one canonical member: loads
/// every member of the newest generation, reassembles the database in
/// global original-id order, rebuilds one length-sorted index, durably
/// writes it as `<base>.c<G+1>`, publishes a single-member manifest for
/// generation G+1, and only then garbage-collects the stale members and
/// manifests (injection site "build.gc_unlink" per unlink — a failure
/// there leaves extra files but the new generation already published).
/// Throws Error(kInvalid) when there is nothing to compact (generation 0).
CompactResult compact_generations(const std::string& base_path,
                                  int build_threads = 0);

}  // namespace mublastp
