// Query index: the NCBI-BLAST style lookup table.
//
// Used by the query-indexed baseline engine ("NCBI" in the paper's plots).
// Faithful to the structure described in the BLAST developer guide and the
// paper's Related Work: for each of the 13824 words the table stores the
// query positions whose word *neighborhood* covers it (i.e. neighbor
// positions are materialized, unlike the database index), with
//
//  * a presence-vector (pv) bit array so the inner scan can reject words
//    with no positions by touching one bit instead of a table cell, and
//  * a "thick backbone": up to kInlinePositions query positions stored
//    inline in the cell, overflowing to a shared spill array.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/sequence.hpp"
#include "index/neighbor.hpp"

namespace mublastp {

/// Query position list for BLASTP hit detection over one query sequence.
class QueryIndex {
 public:
  /// Positions a cell can hold without spilling (NCBI uses 3).
  static constexpr int kInlinePositions = 3;

  /// Builds the index of `query` under the given neighbor table: position p
  /// is listed under word w' for every neighbor w' of the query word at p.
  QueryIndex(std::span<const Residue> query, const NeighborTable& neighbors);

  /// One-bit presence test (the pv array fast path).
  bool contains(std::uint32_t word) const {
    return (pv_[word >> 6] >> (word & 63)) & 1;
  }

  /// Query positions matching `word` (ascending). Empty if contains() is
  /// false.
  std::span<const std::uint32_t> positions(std::uint32_t word) const {
    const Cell& c = cells_[word];
    if (c.count <= kInlinePositions) {
      return {c.inline_pos.data(), static_cast<std::size_t>(c.count)};
    }
    return {spill_.data() + c.spill_offset, static_cast<std::size_t>(c.count)};
  }

  /// Length of the indexed query.
  std::size_t query_length() const { return query_length_; }

  /// Total stored (word, position) pairs — footprint metric; the paper's
  /// argument against materializing neighbors in the *database* index is
  /// that this number scales with neighborhood size.
  std::size_t total_positions() const { return total_positions_; }

 private:
  struct Cell {
    std::uint32_t count = 0;
    std::uint32_t spill_offset = 0;
    std::array<std::uint32_t, kInlinePositions> inline_pos{};
  };

  std::vector<Cell> cells_;
  std::vector<std::uint64_t> pv_;
  std::vector<std::uint32_t> spill_;
  std::size_t query_length_ = 0;
  std::size_t total_positions_ = 0;
};

}  // namespace mublastp
