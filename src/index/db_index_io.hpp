// Binary serialization of the database index.
//
// The whole point of a database index is "build once, search many times"
// (paper Section V-A explicitly excludes index build time because "the
// index only need to be built once for a given database"). This module
// persists a DbIndex to a versioned little-endian binary file:
//
//   magic "MUBI" | format version | DbIndexConfig | sorted SequenceStore
//   (arena + offsets + names) | original-id order | blocks (fragments,
//   CSR offsets, packed entries)
//
// The neighbor table is NOT serialized: it is a pure function of
// (matrix, threshold) and rebuilding it costs milliseconds, while storing
// it would add megabytes.
#pragma once

#include <iosfwd>
#include <string>

#include "index/db_index.hpp"

namespace mublastp {

/// Current file-format version.
inline constexpr std::uint32_t kDbIndexFormatVersion = 2;

/// Writes `index` to a binary stream. Throws mublastp::Error on I/O errors.
void save_db_index(std::ostream& out, const DbIndex& index);

/// Writes `index` to a file.
void save_db_index_file(const std::string& path, const DbIndex& index);

/// Reads an index back. Throws mublastp::Error on malformed or truncated
/// input, bad magic, or unsupported version.
DbIndex load_db_index(std::istream& in);

/// Reads an index from a file.
DbIndex load_db_index_file(const std::string& path);

}  // namespace mublastp
