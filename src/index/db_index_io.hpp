// Binary serialization of the database index.
//
// The whole point of a database index is "build once, search many times"
// (paper Section V-A explicitly excludes index build time because "the
// index only need to be built once for a given database"). This module
// persists a DbIndex to a versioned little-endian binary file and reads it
// back, in two formats:
//
//   v3 (current): checksummed section table over 64-byte-aligned raw
//   sections (see db_index_format.hpp). Written by save_db_index, readable
//   by both the copy loader here and the zero-copy MappedDbIndex.
//
//   v2 (legacy): streamed length-prefixed records. Still loadable (old
//   files keep working) and still writable via save_db_index_v2 so the
//   compatibility path stays testable.
//
// The neighbor table is NOT serialized in either format: it is a pure
// function of (matrix, threshold) and rebuilding it costs milliseconds,
// while storing it would add megabytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "index/db_index.hpp"

namespace mublastp {

struct BlockQuarantine;  // db_index_format.hpp

/// Controls degraded-mode loading (see IndexParseOptions for the parse-level
/// semantics). With tolerate_block_corruption set, a v3 file whose damage is
/// confined to individual blocks loads with those blocks replaced by EMPTY
/// blocks (zero fragments/entries, so they contribute no hits) and their ids
/// + reasons appended to `quarantined`. v2 files have no per-block checksums
/// and always load strictly.
struct IndexLoadOptions {
  bool tolerate_block_corruption = false;
  std::vector<BlockQuarantine>* quarantined = nullptr;
};

/// Current file-format version (the sectioned, mmap-able v3).
inline constexpr std::uint32_t kDbIndexFormatVersion = 3;

/// Writes `index` as format v3. Throws mublastp::Error on I/O errors.
void save_db_index(std::ostream& out, const DbIndex& index);

/// Writes `index` to a file (format v3).
void save_db_index_file(const std::string& path, const DbIndex& index);

/// Writes `index` to a file (format v3) with crash-safe publication:
/// serialize to `path + ".tmp"`, fsync it, atomically rename() onto `path`,
/// fsync the parent directory. A crash at any instant leaves `path` either
/// absent/old or complete — never torn. Injection sites:
/// "build.block_write" (data write), "build.fsync" (file/dir fsync),
/// "build.publish_rename" (the atomic rename).
void save_db_index_file_durable(const std::string& path,
                                const DbIndex& index);

/// Writes `index` in the legacy v2 streamed format. Kept so backward
/// compatibility of the v2 reader stays testable and old deployments can be
/// fed from new builds; new files should use save_db_index.
void save_db_index_v2(std::ostream& out, const DbIndex& index);

/// Reads an index back (v2 or v3, dispatched on the version field). Throws
/// mublastp::Error with a typed kind (kCorrupt for malformed or truncated
/// input, bad magic, checksum mismatches, unsupported versions) — never
/// returns a partial index except as allowed by `options` (quarantined
/// blocks come back empty).
DbIndex load_db_index(std::istream& in, const IndexLoadOptions& options);

/// Strict-load convenience overload.
DbIndex load_db_index(std::istream& in);

/// Reads an index from a file. Rejects non-regular files (directories,
/// sockets) and zero-byte files with a clear Error (kIo for path problems,
/// kCorrupt for an empty file) before touching the stream. Injection sites:
/// "index.open" (open fails), "io.read" (read fails mid-stream).
DbIndex load_db_index_file(const std::string& path,
                           const IndexLoadOptions& options);

/// Strict-load convenience overload.
DbIndex load_db_index_file(const std::string& path);

/// One section-table row as reported by describe_db_index_file.
struct IndexSectionInfo {
  std::string name;           ///< section_name() of the id
  std::uint32_t id = 0;       ///< raw SectionId value
  std::uint64_t offset = 0;   ///< absolute file offset
  std::uint64_t length = 0;   ///< payload bytes
  std::uint32_t crc32 = 0;    ///< stored payload checksum
};

/// Surface-level description of an index file (for dbinfo and probes).
struct DbIndexFileInfo {
  std::uint32_t version = 0;      ///< 2 or 3
  std::uint64_t file_bytes = 0;
  std::vector<IndexSectionInfo> sections;  ///< empty for v2 files
};

/// Reads only the header + section table of an index file: cheap (no
/// payload is touched, no checksum verified beyond the table's own). Used
/// by tools to print the layout and to pick the mmap vs copy load path.
DbIndexFileInfo describe_db_index_file(const std::string& path);

/// The build configuration an index file was created with, as stored in
/// its 'config' section. Incremental builds (--append) read this from the
/// chain head so every delta is built with identical parameters.
struct IndexConfigSummary {
  std::uint64_t block_bytes = 0;
  std::int32_t neighbor_threshold = 0;
  std::string matrix_name;
  std::uint64_t long_seq_limit = 0;
  std::uint64_t long_seq_overlap = 0;
  std::uint64_t num_seqs = 0;
  std::uint64_t num_blocks = 0;
};

/// Reads (and CRC-verifies) just the 'config' section of a v3 index file.
/// Throws Error(kCorrupt) on damage, kInvalid for v2 files.
IndexConfigSummary read_index_config_file(const std::string& path);

}  // namespace mublastp
