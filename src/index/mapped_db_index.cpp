#include "index/mapped_db_index.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>
#include <vector>

#include "common/error.hpp"

namespace mublastp {

MappedDbIndex::Mapping::Mapping(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  MUBLASTP_CHECK(fd >= 0, "cannot open index file: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw Error("cannot stat index file: " + path);
  }
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    throw Error("index path is a directory, not a file: " + path);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    throw Error("index path is not a regular file: " + path);
  }
  if (st.st_size == 0) {
    ::close(fd);
    throw Error("empty index file: " + path);
  }
  const std::size_t len = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  MUBLASTP_CHECK(addr != MAP_FAILED, "mmap failed for index file: " + path);
  data = static_cast<const std::byte*>(addr);
  size = len;
}

MappedDbIndex::Mapping::~Mapping() {
  if (data != nullptr) {
    ::munmap(const_cast<std::byte*>(data), size);
  }
}

MappedDbIndex::Mapping::Mapping(Mapping&& other) noexcept
    : data(std::exchange(other.data, nullptr)),
      size(std::exchange(other.size, 0)) {}

MappedDbIndex::Mapping& MappedDbIndex::Mapping::operator=(
    Mapping&& other) noexcept {
  if (this != &other) {
    if (data != nullptr) ::munmap(const_cast<std::byte*>(data), size);
    data = std::exchange(other.data, nullptr);
    size = std::exchange(other.size, 0);
  }
  return *this;
}

MappedDbIndex::MappedDbIndex(const std::string& path, Options options)
    : map_(path),
      parsed_(parse_db_index_v3(map_.bytes(), options.verify_checksums)),
      neighbors_(*parsed_.config.matrix, parsed_.config.neighbor_threshold),
      path_(path) {
  // Carve per-block span descriptors out of the concatenated sections.
  blocks_.reserve(parsed_.num_blocks);
  std::size_t frag_cursor = 0;
  std::size_t entry_cursor = 0;
  std::size_t csr_cursor = 0;
  constexpr std::size_t kCsrLen = static_cast<std::size_t>(kNumWords) + 1;
  for (const BlockMetaRecord& m : parsed_.block_meta) {
    blocks_.emplace_back(
        parsed_.csr_offsets.subspan(csr_cursor, kCsrLen),
        parsed_.entries.subspan(entry_cursor, m.num_entries),
        parsed_.fragments.subspan(frag_cursor, m.num_fragments),
        m.max_fragment_len, m.total_chars, m.offset_bits);
    frag_cursor += m.num_fragments;
    entry_cursor += m.num_entries;
    csr_cursor += kCsrLen;
  }
}

std::size_t MappedDbIndex::resident_bytes() const {
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0 || map_.data == nullptr) return 0;
  const std::size_t page_size = static_cast<std::size_t>(page);
  const std::size_t pages = (map_.size + page_size - 1) / page_size;
  std::vector<unsigned char> vec(pages);
  if (::mincore(const_cast<std::byte*>(map_.data), map_.size, vec.data()) !=
      0) {
    return 0;
  }
  std::size_t resident = 0;
  for (const unsigned char v : vec) {
    if (v & 1u) ++resident;
  }
  return resident * page_size;
}

}  // namespace mublastp
