#include "index/mapped_db_index.hpp"

#include <fcntl.h>
#include <setjmp.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <csignal>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/faultinject.hpp"

namespace mublastp {
namespace {

// SIGBUS guard for the prefault pass. mmap'd reads raise SIGBUS (not a
// recoverable error code) when the file shrank after the map or the media
// returns an I/O error; the guard turns that into a siglongjmp back to the
// prefault loop so the open can fail with a typed Error instead of killing
// the process. Process-global and not thread-safe — prefaulting happens at
// load time, before worker threads exist.
sigjmp_buf g_sigbus_jmp;
volatile sig_atomic_t g_sigbus_armed = 0;

void sigbus_handler(int sig) {
  if (g_sigbus_armed) siglongjmp(g_sigbus_jmp, 1);
  // SIGBUS from someone else's access: restore default disposition and
  // re-raise so the crash is not swallowed.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

// Touches one byte per page of [data, data+size) under the SIGBUS guard.
// Returns false if a fault fired. The guarded frame holds no C++ objects
// with destructors, so the siglongjmp skips nothing that needs unwinding.
bool prefault_pages(const std::byte* data, std::size_t size) {
  if (size == 0) return true;
  struct sigaction sa{};
  struct sigaction old{};
  sa.sa_handler = sigbus_handler;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGBUS, &sa, &old) != 0) return true;  // cannot guard
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t step = page > 0 ? static_cast<std::size_t>(page) : 4096;
  volatile bool ok = true;
  g_sigbus_armed = 1;
  if (sigsetjmp(g_sigbus_jmp, 1) == 0) {
    volatile std::byte sink{};
    for (std::size_t off = 0; off < size; off += step) sink = data[off];
    sink = data[size - 1];
    (void)sink;
  } else {
    ok = false;
  }
  g_sigbus_armed = 0;
  ::sigaction(SIGBUS, &old, nullptr);
  return ok;
}

}  // namespace

MappedDbIndex::Mapping::Mapping(const std::string& path) {
  MUBLASTP_CHECK_KIND(!MUBLASTP_FI_FAIL("index.open"), ErrorKind::kIo,
                      "injected open failure (index.open): " + path);
  const int fd = ::open(path.c_str(), O_RDONLY);
  MUBLASTP_CHECK_KIND(fd >= 0, ErrorKind::kIo,
                      "cannot open index file: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw Error("cannot stat index file: " + path, ErrorKind::kIo);
  }
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    throw Error("index path is a directory, not a file: " + path,
                ErrorKind::kIo);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    throw Error("index path is not a regular file: " + path, ErrorKind::kIo);
  }
  if (st.st_size == 0) {
    ::close(fd);
    throw Error("empty index file: " + path, ErrorKind::kCorrupt);
  }
  const std::size_t len = static_cast<std::size_t>(st.st_size);
  void* addr = MUBLASTP_FI_FAIL("index.mmap")
                   ? MAP_FAILED
                   : ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  MUBLASTP_CHECK_KIND(addr != MAP_FAILED, ErrorKind::kResource,
                      "mmap failed for index file: " + path);
  data = static_cast<const std::byte*>(addr);
  size = len;
}

MappedDbIndex::Mapping::~Mapping() {
  if (data != nullptr) {
    ::munmap(const_cast<std::byte*>(data), size);
  }
}

MappedDbIndex::Mapping::Mapping(Mapping&& other) noexcept
    : data(std::exchange(other.data, nullptr)),
      size(std::exchange(other.size, 0)) {}

MappedDbIndex::Mapping& MappedDbIndex::Mapping::operator=(
    Mapping&& other) noexcept {
  if (this != &other) {
    if (data != nullptr) ::munmap(const_cast<std::byte*>(data), size);
    data = std::exchange(other.data, nullptr);
    size = std::exchange(other.size, 0);
  }
  return *this;
}

ParsedIndexFile MappedDbIndex::open_image(
    std::span<const std::byte> bytes, const Options& options,
    const std::string& path, std::vector<BlockQuarantine>* quarantined) {
  if (options.prefault) {
    const bool injected = MUBLASTP_FI_FAIL("index.prefault");
    MUBLASTP_CHECK_KIND(
        !injected && prefault_pages(bytes.data(), bytes.size()),
        ErrorKind::kIo,
        "I/O error (SIGBUS) faulting in index file: " + path);
  }
  IndexParseOptions parse_options;
  parse_options.verify_checksums = options.verify_checksums;
  parse_options.tolerate_block_corruption = options.tolerate_block_corruption;
  parse_options.quarantined =
      options.tolerate_block_corruption ? quarantined : nullptr;
  return parse_db_index_v3(bytes, parse_options);
}

MappedDbIndex::MappedDbIndex(const std::string& path, Options options)
    : map_(path),
      parsed_(open_image(map_.bytes(), options, path, &quarantined_)),
      neighbors_(*parsed_.config.matrix, parsed_.config.neighbor_threshold),
      path_(path) {
  // Carve per-block span descriptors out of the concatenated sections.
  constexpr std::size_t kCsrLen = static_cast<std::size_t>(kNumWords) + 1;
  std::vector<char> block_bad(parsed_.num_blocks, 0);
  for (const BlockQuarantine& q : quarantined_) {
    if (q.block < block_bad.size()) block_bad[q.block] = 1;
  }
  if (!quarantined_.empty()) empty_csr_.assign(kCsrLen, 0);
  blocks_.reserve(parsed_.num_blocks);
  std::size_t frag_cursor = 0;
  std::size_t entry_cursor = 0;
  std::size_t csr_cursor = 0;
  for (std::size_t b = 0; b < parsed_.block_meta.size(); ++b) {
    const BlockMetaRecord& m = parsed_.block_meta[b];
    if (block_bad[b]) {
      // Quarantined: an all-zero CSR with no fragments or entries makes
      // the engine find nothing in this block, which is exactly the
      // degraded contract (hits from surviving blocks only).
      blocks_.emplace_back(std::span<const std::uint32_t>(empty_csr_),
                           std::span<const std::uint32_t>(),
                           std::span<const FragmentRef>(),
                           /*max_fragment_len=*/0, /*total_chars=*/0,
                           /*offset_bits=*/1);
    } else {
      blocks_.emplace_back(
          parsed_.csr_offsets.subspan(csr_cursor, kCsrLen),
          parsed_.entries.subspan(entry_cursor, m.num_entries),
          parsed_.fragments.subspan(frag_cursor, m.num_fragments),
          m.max_fragment_len, m.total_chars, m.offset_bits);
    }
    frag_cursor += m.num_fragments;
    entry_cursor += m.num_entries;
    csr_cursor += kCsrLen;
  }
}

std::size_t MappedDbIndex::resident_bytes() const {
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0 || map_.data == nullptr) return 0;
  const std::size_t page_size = static_cast<std::size_t>(page);
  const std::size_t pages = (map_.size + page_size - 1) / page_size;
  std::vector<unsigned char> vec(pages);
  if (::mincore(const_cast<std::byte*>(map_.data), map_.size, vec.data()) !=
      0) {
    return 0;
  }
  std::size_t resident = 0;
  for (const unsigned char v : vec) {
    if (v & 1u) ++resident;
  }
  return resident * page_size;
}

}  // namespace mublastp
