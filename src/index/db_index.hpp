// Blocked database index (paper Section III, Figure 3(a)).
//
// The index maps every overlapping word (W=3) of every subject sequence to
// its (subject, offset) positions. To bound the working set — the basis of
// all the locality optimizations — the database is sorted by sequence
// length and split into blocks of approximately equal character count; each
// block gets its own position table with *block-local* sequence ids, which
// both compresses entries into 32 bits and gives the radix sort fixed-width
// keys (similar sequence lengths per block => similar diagonal ranges).
//
// Neighboring words are NOT materialized in the position lists (that is the
// query index's strategy and would multiply the index size); instead hit
// detection consults the shared NeighborTable first, then reads the exact
// word position lists of each neighbor (the "two-level structure").
//
// Very long sequences (the paper cites ~40k-residue outliers) are not
// indexed whole: they are split into fragments with overlapped boundaries
// (Orion's scheme, Section IV-A); extensions that touch a fragment boundary
// are re-extended on the original sequence in an assembly step inside the
// engines, so results are identical to un-split search.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/sequence.hpp"
#include "index/neighbor.hpp"

namespace mublastp {

/// Index construction parameters.
struct DbIndexConfig {
  /// Bytes of position data per block (positions are 32-bit, so a 512KB
  /// block holds 128K positions; the paper sweeps 128KB..4MB in Fig. 8).
  std::size_t block_bytes = 512 * 1024;
  /// Substitution matrix the neighbor table is built from. Searches must
  /// use the same matrix.
  const ScoreMatrix* matrix = &blosum62();
  /// Neighbor threshold T.
  Score neighbor_threshold = kDefaultNeighborThreshold;
  /// Sequences longer than this are split into fragments (Section IV-A).
  std::size_t long_seq_limit = 8192;
  /// Overlap between consecutive fragments of a split sequence.
  std::size_t long_seq_overlap = 128;
  /// OpenMP threads for block construction (blocks are independent; the
  /// paper builds each node's index in parallel). 0 = all available.
  int build_threads = 0;
};

/// Per-build telemetry filled by DbIndex::build when the caller passes an
/// out-param: how long the parallel block construction took, with how much
/// parallelism, and where the time went per block. Feeds the "build"
/// stats-v1 object.
struct BuildTelemetry {
  double total_seconds = 0.0;          ///< wall time of the whole build
  double plan_seconds = 0.0;           ///< serial sort + block planning
  int threads = 0;                     ///< OpenMP threads the build used
  std::vector<double> block_seconds;   ///< per-block construction wall time
};

/// A fragment of a subject sequence as stored in a block: a window
/// [start, start+len) of sequence `seq` in the index's sorted store.
struct FragmentRef {
  SeqId seq = 0;         ///< id in DbIndex::db() (the sorted store)
  std::uint32_t start = 0;  ///< window start within the sequence
  std::uint32_t len = 0;    ///< window length
};

class DbIndex;
struct IndexLoadOptions;  // db_index_io.hpp

/// One index block: CSR word -> packed (local fragment id, offset) entries.
class DbIndexBlock {
 public:
  /// Packed 32-bit entries for `word` (exact word only, no neighbors),
  /// ordered by (fragment, offset) ascending.
  std::span<const std::uint32_t> entries(std::uint32_t word) const {
    return {entries_.data() + offsets_[word],
            offsets_[word + 1] - offsets_[word]};
  }

  /// Decodes the block-local fragment id of an entry.
  std::uint32_t entry_fragment(std::uint32_t entry) const {
    return entry >> offset_bits_;
  }

  /// Decodes the in-fragment word offset of an entry.
  std::uint32_t entry_offset(std::uint32_t entry) const {
    return entry & ((std::uint32_t{1} << offset_bits_) - 1);
  }

  /// Fragment descriptors; local id indexes this.
  std::span<const FragmentRef> fragments() const { return fragments_; }

  /// Longest fragment in the block (bounds the diagonal range).
  std::size_t max_fragment_len() const { return max_fragment_len_; }

  /// Total residues covered by this block.
  std::size_t total_chars() const { return total_chars_; }

  /// Total stored positions.
  std::size_t num_positions() const { return entries_.size(); }

  /// Approximate footprint of the position data (32-bit entries), the
  /// quantity the paper calls "index block size".
  std::size_t position_bytes() const {
    return entries_.size() * sizeof(std::uint32_t);
  }

  /// Bits used for the offset field of packed entries.
  int offset_bits() const { return offset_bits_; }

 private:
  friend class DbIndex;
  friend class DbIndexView;
  friend void save_db_index(std::ostream& out, const DbIndex& index);
  friend void save_db_index_v2(std::ostream& out, const DbIndex& index);
  friend DbIndex load_db_index(std::istream& in,
                               const IndexLoadOptions& options);
  std::vector<std::uint32_t> offsets_;  // kNumWords + 1
  std::vector<std::uint32_t> entries_;
  std::vector<FragmentRef> fragments_;
  std::size_t max_fragment_len_ = 0;
  std::size_t total_chars_ = 0;
  int offset_bits_ = 0;
};

/// The full database index: a length-sorted copy of the database plus its
/// blocks and the shared neighbor table.
class DbIndex {
 public:
  /// Builds the index. The input store is copied in ascending length order;
  /// original ids are retrievable via sorted_to_original(). With a non-null
  /// `telemetry`, per-block timings and the parallelism used are recorded
  /// (the result is identical either way).
  static DbIndex build(const SequenceStore& db, const DbIndexConfig& config,
                       BuildTelemetry* telemetry = nullptr);

  /// The length-sorted sequence store the blocks reference.
  const SequenceStore& db() const { return db_; }

  /// Index blocks in ascending sequence-length order.
  std::span<const DbIndexBlock> blocks() const { return blocks_; }

  /// Shared word -> neighbor-words table.
  const NeighborTable& neighbors() const { return neighbors_; }

  /// Maps a sorted-store id back to the id in the store build() received.
  SeqId original_id(SeqId sorted_id) const { return order_[sorted_id]; }

  /// Maps an original id to its position in the sorted store.
  SeqId sorted_id(SeqId original) const { return inverse_[original]; }

  /// Construction parameters used.
  const DbIndexConfig& config() const { return config_; }

  /// The block-size formula of Section V-B: with t threads sharing an LLC of
  /// `l3_bytes`, each thread keeps a last-hit array of ~2x the block's
  /// position bytes, so choose b = L3 / (2t + 1).
  static std::size_t optimal_block_bytes(std::size_t l3_bytes, int threads);

 private:
  friend class DbIndexView;
  friend void save_db_index(std::ostream& out, const DbIndex& index);
  friend void save_db_index_v2(std::ostream& out, const DbIndex& index);
  friend DbIndex load_db_index(std::istream& in,
                               const IndexLoadOptions& options);

  DbIndex(SequenceStore db, std::vector<SeqId> order, DbIndexConfig config,
          NeighborTable neighbors)
      : db_(std::move(db)),
        order_(std::move(order)),
        config_(config),
        neighbors_(std::move(neighbors)) {}

  SequenceStore db_;
  std::vector<SeqId> order_;
  std::vector<SeqId> inverse_;
  DbIndexConfig config_;
  NeighborTable neighbors_;
  std::vector<DbIndexBlock> blocks_;
};

}  // namespace mublastp
