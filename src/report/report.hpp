// Result reporting: the output formats BLAST users consume.
//
// Two formats are provided, mirroring NCBI-BLAST's most used -outfmt modes:
//  * tabular ("outfmt 6"): one line per alignment with the standard twelve
//    columns (qseqid sseqid pident length mismatch gapopen qstart qend
//    sstart send evalue bitscore) — 1-based inclusive coordinates;
//  * pairwise ("outfmt 0"): alignment blocks with query/match/subject
//    lines, identities/positives/gaps counts and score/E-value headers.
//
// Both formats consume the GappedAlignment transcripts produced by the
// traceback stage, so what is printed is exactly what was aligned.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "common/sequence.hpp"
#include "core/params.hpp"
#include "index/db_index_view.hpp"
#include "score/matrix.hpp"

namespace mublastp {

/// Summary statistics of one alignment transcript.
struct AlignmentSummary {
  std::size_t length = 0;      ///< alignment columns (matches + gaps)
  std::size_t identities = 0;  ///< exact residue matches
  std::size_t positives = 0;   ///< matrix score > 0 (includes identities)
  std::size_t mismatches = 0;  ///< aligned pairs that differ
  std::size_t gap_opens = 0;   ///< distinct gap runs
  std::size_t gaps = 0;        ///< total gap columns

  double percent_identity() const {
    return length == 0 ? 0.0
                       : 100.0 * static_cast<double>(identities) /
                             static_cast<double>(length);
  }
};

/// Computes the summary of an alignment against its sequences. The
/// alignment must carry a traceback transcript.
AlignmentSummary summarize_alignment(std::span<const Residue> query,
                                     std::span<const Residue> subject,
                                     const GappedAlignment& alignment,
                                     const ScoreMatrix& matrix);

/// Writes one query's results in tabular (outfmt-6 style) form.
void write_tabular(std::ostream& out, const std::string& query_name,
                   std::span<const Residue> query, const SequenceStore& db,
                   const QueryResult& result, const ScoreMatrix& matrix);

/// Same, but resolving subjects through an index view (mapped or owned);
/// `result` subjects are original database ids, remapped internally. Lets
/// mmap-backed searches report without materializing a SequenceStore.
void write_tabular(std::ostream& out, const std::string& query_name,
                   std::span<const Residue> query, const DbIndexView& db,
                   const QueryResult& result, const ScoreMatrix& matrix);

/// Writes one query's results as classic pairwise alignment blocks.
/// `line_width` residues per block line.
void write_pairwise(std::ostream& out, const std::string& query_name,
                    std::span<const Residue> query, const SequenceStore& db,
                    const QueryResult& result, const ScoreMatrix& matrix,
                    std::size_t line_width = 60);

/// Pairwise form of the index-view overload above.
void write_pairwise(std::ostream& out, const std::string& query_name,
                    std::span<const Residue> query, const DbIndexView& db,
                    const QueryResult& result, const ScoreMatrix& matrix,
                    std::size_t line_width = 60);

}  // namespace mublastp
