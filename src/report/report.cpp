#include "report/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "common/error.hpp"

namespace mublastp {

AlignmentSummary summarize_alignment(std::span<const Residue> query,
                                     std::span<const Residue> subject,
                                     const GappedAlignment& alignment,
                                     const ScoreMatrix& matrix) {
  MUBLASTP_CHECK(!alignment.ops.empty(),
                 "alignment has no traceback transcript");
  AlignmentSummary s;
  std::size_t qi = alignment.q_start;
  std::size_t si = alignment.s_start;
  char prev = 'M';
  for (const char op : alignment.ops) {
    ++s.length;
    switch (op) {
      case 'M': {
        const Residue a = query[qi++];
        const Residue b = subject[si++];
        if (a == b) {
          ++s.identities;
          ++s.positives;
        } else {
          ++s.mismatches;
          if (matrix(a, b) > 0) ++s.positives;
        }
        break;
      }
      case 'I':
        ++qi;
        ++s.gaps;
        if (prev != 'I') ++s.gap_opens;
        break;
      case 'D':
        ++si;
        ++s.gaps;
        if (prev != 'D') ++s.gap_opens;
        break;
      default:
        throw Error("invalid transcript op in alignment");
    }
    prev = op;
  }
  MUBLASTP_CHECK(qi == alignment.q_end && si == alignment.s_end,
                 "transcript does not match alignment coordinates");
  return s;
}

namespace {

// Subject access in *original* database id space, over either backing.
// GappedAlignment::subject carries original ids; the index view stores
// sequences length-sorted, so its adapter remaps per lookup.
struct StoreDb {
  const SequenceStore& db;
  std::span<const Residue> sequence(SeqId original) const {
    return db.sequence(original);
  }
  std::string_view name(SeqId original) const { return db.name(original); }
};

struct ViewDb {
  const DbIndexView& view;
  std::span<const Residue> sequence(SeqId original) const {
    return view.sequence(view.sorted_id(original));
  }
  std::string_view name(SeqId original) const {
    return view.name(view.sorted_id(original));
  }
};

template <typename Db>
void write_tabular_impl(std::ostream& out, const std::string& query_name,
                        std::span<const Residue> query, const Db& db,
                        const QueryResult& result, const ScoreMatrix& matrix) {
  for (const GappedAlignment& a : result.alignments) {
    const auto subject = db.sequence(a.subject);
    const AlignmentSummary s = summarize_alignment(query, subject, a, matrix);
    // Standard outfmt-6 columns; coordinates are 1-based inclusive.
    out << query_name << '\t' << db.name(a.subject) << '\t' << std::fixed
        << std::setprecision(3) << s.percent_identity() << '\t' << s.length
        << '\t' << s.mismatches << '\t' << s.gap_opens << '\t'
        << a.q_start + 1 << '\t' << a.q_end << '\t' << a.s_start + 1 << '\t'
        << a.s_end << '\t' << std::scientific << std::setprecision(2)
        << a.evalue << '\t' << std::fixed << std::setprecision(1)
        << a.bit_score << '\n';
    out.unsetf(std::ios::floatfield);
  }
}

// The middle line of a pairwise block: letter on identity, '+' on positive
// substitution, blank otherwise (NCBI's convention).
char match_char(Residue a, Residue b, const ScoreMatrix& matrix) {
  if (a == b) return decode_residue(a);
  return matrix(a, b) > 0 ? '+' : ' ';
}

template <typename Db>
void write_pairwise_impl(std::ostream& out, const std::string& query_name,
                         std::span<const Residue> query, const Db& db,
                         const QueryResult& result, const ScoreMatrix& matrix,
                         std::size_t line_width) {
  MUBLASTP_CHECK(line_width > 0, "line width must be positive");
  out << "Query= " << query_name << "\n  Length=" << query.size() << "\n";
  if (result.alignments.empty()) {
    out << "\n***** No hits found *****\n";
    return;
  }
  for (const GappedAlignment& a : result.alignments) {
    const auto subject = db.sequence(a.subject);
    const AlignmentSummary s = summarize_alignment(query, subject, a, matrix);
    out << "\n> " << db.name(a.subject) << "\nLength=" << subject.size()
        << "\n\n Score = " << std::fixed << std::setprecision(1)
        << a.bit_score << " bits (" << a.score << "), Expect = "
        << std::scientific << std::setprecision(2) << a.evalue << '\n';
    out.unsetf(std::ios::floatfield);
    out << " Identities = " << s.identities << '/' << s.length << " ("
        << static_cast<int>(s.percent_identity() + 0.5) << "%), Positives = "
        << s.positives << '/' << s.length << " ("
        << static_cast<int>(100.0 * static_cast<double>(s.positives) /
                                static_cast<double>(s.length) +
                            0.5)
        << "%), Gaps = " << s.gaps << '/' << s.length << '\n';

    // Render the three aligned strings once, then emit wrapped blocks.
    std::string qline, mline, sline;
    qline.reserve(a.ops.size());
    mline.reserve(a.ops.size());
    sline.reserve(a.ops.size());
    std::size_t qi = a.q_start;
    std::size_t si = a.s_start;
    for (const char op : a.ops) {
      if (op == 'M') {
        qline.push_back(decode_residue(query[qi]));
        sline.push_back(decode_residue(subject[si]));
        mline.push_back(match_char(query[qi], subject[si], matrix));
        ++qi;
        ++si;
      } else if (op == 'I') {
        qline.push_back(decode_residue(query[qi]));
        sline.push_back('-');
        mline.push_back(' ');
        ++qi;
      } else {
        qline.push_back('-');
        sline.push_back(decode_residue(subject[si]));
        mline.push_back(' ');
        ++si;
      }
    }

    std::size_t q_cursor = a.q_start;
    std::size_t s_cursor = a.s_start;
    for (std::size_t pos = 0; pos < qline.size(); pos += line_width) {
      const std::size_t n = std::min(line_width, qline.size() - pos);
      const std::string qseg = qline.substr(pos, n);
      const std::string mseg = mline.substr(pos, n);
      const std::string sseg = sline.substr(pos, n);
      const std::size_t q_res =
          static_cast<std::size_t>(std::count_if(
              qseg.begin(), qseg.end(), [](char c) { return c != '-'; }));
      const std::size_t s_res =
          static_cast<std::size_t>(std::count_if(
              sseg.begin(), sseg.end(), [](char c) { return c != '-'; }));
      out << "\nQuery  " << std::setw(5) << q_cursor + 1 << "  " << qseg
          << "  " << q_cursor + q_res << '\n';
      out << "       " << std::setw(5) << ' ' << "  " << mseg << '\n';
      out << "Sbjct  " << std::setw(5) << s_cursor + 1 << "  " << sseg
          << "  " << s_cursor + s_res << '\n';
      q_cursor += q_res;
      s_cursor += s_res;
    }
  }
  out << '\n';
}

}  // namespace

void write_tabular(std::ostream& out, const std::string& query_name,
                   std::span<const Residue> query, const SequenceStore& db,
                   const QueryResult& result, const ScoreMatrix& matrix) {
  write_tabular_impl(out, query_name, query, StoreDb{db}, result, matrix);
}

void write_tabular(std::ostream& out, const std::string& query_name,
                   std::span<const Residue> query, const DbIndexView& db,
                   const QueryResult& result, const ScoreMatrix& matrix) {
  write_tabular_impl(out, query_name, query, ViewDb{db}, result, matrix);
}

void write_pairwise(std::ostream& out, const std::string& query_name,
                    std::span<const Residue> query, const SequenceStore& db,
                    const QueryResult& result, const ScoreMatrix& matrix,
                    std::size_t line_width) {
  write_pairwise_impl(out, query_name, query, StoreDb{db}, result, matrix,
                      line_width);
}

void write_pairwise(std::ostream& out, const std::string& query_name,
                    std::span<const Residue> query, const DbIndexView& db,
                    const QueryResult& result, const ScoreMatrix& matrix,
                    std::size_t line_width) {
  write_pairwise_impl(out, query_name, query, ViewDb{db}, result, matrix,
                      line_width);
}

}  // namespace mublastp
