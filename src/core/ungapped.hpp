// Two-hit ungapped extension kernel (paper Section II-A, Figure 1(b)).
//
// This kernel is shared verbatim by all three engines; since the two-hit
// pairing logic (core/two_hit.hpp) is also shared, the engines produce
// bitwise-identical stage-2 output by construction — the property the paper
// verifies in Section V-E.
//
// Semantics (matching Figure 1(b)): the extension starts at the end of the
// second hit's word and sweeps left (including the word itself) and then
// right, accumulating substitution scores and remembering the running
// maximum; each sweep stops when the accumulated score drops more than
// `xdrop` below its maximum. The segment reported is the union of the two
// best prefixes.
//
// The kernel is templated on a MemoryModel policy (memsim) so the profiling
// benches can trace its exact access stream; with NullMemoryModel the
// `touch` calls compile to nothing.
#pragma once

#include <span>

#include "common/alphabet.hpp"
#include "memsim/memsim.hpp"
#include "score/matrix.hpp"

namespace mublastp {

/// Result of one ungapped extension, in the coordinates of the spans passed
/// in (half-open ranges).
struct UngappedSeg {
  Score score = 0;
  std::uint32_t q_start = 0;
  std::uint32_t q_end = 0;  ///< exclusive
  std::uint32_t s_start = 0;
  std::uint32_t s_end = 0;  ///< exclusive
};

/// Extends the hit whose word occupies query positions [qoff, qoff+W) and
/// subject positions [soff, soff+W).
template <typename Mem = memsim::NullMemoryModel>
UngappedSeg ungapped_extend(std::span<const Residue> query,
                            std::span<const Residue> subject,
                            std::uint32_t qoff, std::uint32_t soff,
                            const ScoreMatrix& matrix, Score xdrop,
                            Mem mem = {}) {
  // Left sweep: from the last residue of the word toward position 0,
  // scoring the word itself on the way.
  std::int64_t qi = static_cast<std::int64_t>(qoff) + kWordLength - 1;
  std::int64_t si = static_cast<std::int64_t>(soff) + kWordLength - 1;
  Score run = 0;
  Score best_left = 0;
  std::int64_t best_q_start = qi + 1;
  while (qi >= 0 && si >= 0) {
    if constexpr (Mem::kEnabled) {
      mem.touch(&query[static_cast<std::size_t>(qi)], 1);
      mem.touch(&subject[static_cast<std::size_t>(si)], 1);
    }
    run += matrix(query[static_cast<std::size_t>(qi)],
                  subject[static_cast<std::size_t>(si)]);
    if (run > best_left) {
      best_left = run;
      best_q_start = qi;
    } else if (best_left - run > xdrop) {
      break;
    }
    --qi;
    --si;
  }

  // Right sweep: from the first residue after the word.
  std::int64_t qj = static_cast<std::int64_t>(qoff) + kWordLength;
  std::int64_t sj = static_cast<std::int64_t>(soff) + kWordLength;
  run = 0;
  Score best_right = 0;
  std::int64_t best_q_end = qj;  // exclusive
  const auto qn = static_cast<std::int64_t>(query.size());
  const auto sn = static_cast<std::int64_t>(subject.size());
  while (qj < qn && sj < sn) {
    if constexpr (Mem::kEnabled) {
      mem.touch(&query[static_cast<std::size_t>(qj)], 1);
      mem.touch(&subject[static_cast<std::size_t>(sj)], 1);
    }
    run += matrix(query[static_cast<std::size_t>(qj)],
                  subject[static_cast<std::size_t>(sj)]);
    if (run > best_right) {
      best_right = run;
      best_q_end = qj + 1;
    } else if (best_right - run > xdrop) {
      break;
    }
    ++qj;
    ++sj;
  }

  UngappedSeg seg;
  seg.score = best_left + best_right;
  seg.q_start = static_cast<std::uint32_t>(best_q_start);
  seg.q_end = static_cast<std::uint32_t>(best_q_end);
  const std::int64_t diag = static_cast<std::int64_t>(soff) - qoff;
  seg.s_start = static_cast<std::uint32_t>(best_q_start + diag);
  seg.s_end = static_cast<std::uint32_t>(best_q_end + diag);
  return seg;
}

}  // namespace mublastp
