// Search parameters and result types shared by every engine.
//
// All three engines (query-indexed "NCBI", interleaved database-indexed
// "NCBI-db", and muBLASTP) consume the same SearchParams and produce the
// same result types, so the paper's Section V-E verification — identical
// outputs at every stage — is checkable by direct comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sequence.hpp"
#include "score/matrix.hpp"

namespace mublastp {

/// Heuristic and scoring parameters (defaults are the BLASTP defaults the
/// paper uses: W=3, T=11, two-hit window A=40, BLOSUM62, gap 11/1).
struct SearchParams {
  /// Substitution matrix. Must match the matrix the database index's
  /// neighbor table was built with (engines check this).
  const ScoreMatrix* matrix = &blosum62();
  /// Two-hit window A: second hit must lie within this many query positions
  /// of the previous hit on the same diagonal to trigger an extension.
  std::int32_t two_hit_window = 40;
  /// Minimum diagonal distance for a pair (NCBI semantics: hits closer than
  /// the word length overlap the previous hit and are ignored entirely —
  /// they neither pair nor advance the last-hit position).
  std::int32_t two_hit_min = kWordLength;
  /// X-drop for ungapped extension (raw score units).
  Score ungapped_xdrop = 16;
  /// Minimum ungapped score to become a high-scoring segment (and seed the
  /// gapped stage).
  Score ungapped_cutoff = 38;
  /// Affine gap penalties (open includes the first extension, NCBI style:
  /// a gap of length L costs gap_open + L * gap_extend).
  Score gap_open = 11;
  Score gap_extend = 1;
  /// X-drop for the gapped extension.
  Score gapped_xdrop = 38;
  /// Minimum gapped score for an alignment to be reported.
  Score gapped_cutoff = 50;
  /// Maximum E-value for an alignment to be reported (NCBI's -evalue;
  /// default 10). Applied in the final stage on top of gapped_cutoff.
  double evalue_cutoff = 10.0;
  /// Maximum alignments reported per query after ranking.
  std::size_t max_alignments = 500;

  /// Throws mublastp::Error if any field is out of its valid domain.
  /// Engines call this once at construction.
  void validate() const;
};

/// A high-scoring ungapped segment (stage-2 output). Coordinates are
/// half-open: [q_start, q_end) x [s_start, s_end) with q_end - q_start ==
/// s_end - s_start (no gaps).
struct UngappedAlignment {
  SeqId subject = 0;          ///< subject id (original database ids)
  std::uint32_t q_start = 0;
  std::uint32_t q_end = 0;
  std::uint32_t s_start = 0;
  std::uint32_t s_end = 0;
  Score score = 0;

  friend auto operator<=>(const UngappedAlignment&,
                          const UngappedAlignment&) = default;
};

/// A gapped alignment with optional traceback (stage-3/4 output).
struct GappedAlignment {
  SeqId subject = 0;
  std::uint32_t q_start = 0;
  std::uint32_t q_end = 0;
  std::uint32_t s_start = 0;
  std::uint32_t s_end = 0;
  Score score = 0;
  double bit_score = 0.0;
  double evalue = 0.0;
  /// The anchor pair the X-drop extension started from (derived from the
  /// seeding ungapped segment). Stage 4 re-runs the identical DP from this
  /// anchor to record the traceback, guaranteeing the same alignment.
  std::uint32_t anchor_q = 0;
  std::uint32_t anchor_s = 0;
  /// Edit transcript from traceback: 'M' (aligned pair), 'I' (gap in
  /// subject: query residue unmatched), 'D' (gap in query). Empty until the
  /// traceback stage runs.
  std::string ops;
};

/// Per-query pipeline counters, maintained by every engine on every search
/// (increments only — cheap enough to always be on). Field names match
/// stats::StageCounters so the telemetry subsystem (src/stats) can lift
/// deltas out of them; wall-clock timing lives entirely in that subsystem
/// and is collected only when a stats::PipelineStats run is active.
struct StageStats {
  std::uint64_t hits = 0;            ///< stage-1 word hits
  std::uint64_t hit_pairs = 0;       ///< two-hit pairs (post pre-filter)
  std::uint64_t extensions = 0;      ///< ungapped extensions executed
  std::uint64_t ungapped_alignments = 0;
  std::uint64_t gapped_extensions = 0;
  std::uint64_t sorted_records = 0;  ///< records that went through reorder
  /// Banded gapped-kernel tier tallies (one extension = two extension
  /// halves, each counted once). Zero on scalar runs; identical between
  /// SSE4.2 and AVX2 because the tier choice is value-driven. These are
  /// execution-strategy telemetry, not part of the deterministic
  /// stats::StageCounters set that forced-scalar/vector twins must match.
  std::uint64_t gapped_int8_runs = 0;
  std::uint64_t gapped_int16_reruns = 0;
  std::uint64_t gapped_scalar_fallbacks = 0;

  friend bool operator==(const StageStats&, const StageStats&) = default;

  StageStats& operator+=(const StageStats& o) {
    hits += o.hits;
    hit_pairs += o.hit_pairs;
    extensions += o.extensions;
    ungapped_alignments += o.ungapped_alignments;
    gapped_extensions += o.gapped_extensions;
    sorted_records += o.sorted_records;
    gapped_int8_runs += o.gapped_int8_runs;
    gapped_int16_reruns += o.gapped_int16_reruns;
    gapped_scalar_fallbacks += o.gapped_scalar_fallbacks;
    return *this;
  }
};

/// Everything an engine returns for one query.
struct QueryResult {
  /// Final alignments, ranked by (score desc, subject asc, q_start asc).
  std::vector<GappedAlignment> alignments;
  /// Stage-2 output in canonical order, for stage-level verification.
  std::vector<UngappedAlignment> ungapped;
  StageStats stats;
};

}  // namespace mublastp
