// Canonical two-hit pairing and coverage state (paper Algorithms 1 and 2).
//
// Every engine runs the same per-diagonal automaton over the hits of one
// (query, subject-fragment) pair, in ascending query-offset order:
//
//   on hit at q (see core/hit_logic.hpp for the full transition table):
//     overlapping if q - last_hit[diag] < W       -> ignored entirely
//     paired      if q - last_hit[diag] < A (and a last hit exists)
//     otherwise   last_hit[diag] <- q
//
//   after extending a pair:
//     success (score >= cutoff): ext_reached[diag] <- extension q_end
//     failure:                   ext_reached[diag] <- q (hit offset)
//
// Because the automaton is per-diagonal and hits on one diagonal arrive in
// ascending q in *both* scan orders (query-indexed engines scan the subject
// left-to-right, database-indexed engines scan the query top-to-bottom),
// every engine derives the identical pair set and extension set.
//
// Storage follows NCBI's compact diag-array trick: one 32-bit word per
// diagonal holding the stored offset plus a per-round base stamp, so a new
// (query, subject/block) round invalidates every entry by bumping the base
// (O(1)), and the array is only physically cleared when the stamp nears
// overflow. 4 bytes per diagonal is what makes the paper's block-size
// arithmetic work (last-hit array ~ 2x the block's position bytes).
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/memsim.hpp"

namespace mublastp {

/// Epoch-stamped per-diagonal state table. Keys are dense indices computed
/// by the caller (e.g. prefix-sum fragment base + shifted diagonal).
class DiagState {
 public:
  /// Sentinel meaning "no value recorded this round".
  static constexpr std::int32_t kNone = -0x40000000;

  /// Ensures capacity for `keys` distinct diagonal keys. The coverage
  /// array is allocated lazily (muBLASTP's pre-filter never touches it).
  void resize(std::size_t keys) {
    if (last_.size() < keys) last_.resize(keys, 0);
    if (!ext_.empty() && ext_.size() < keys) ext_.resize(keys, 0);
  }

  /// Starts a new round whose stored offsets lie in [0, stride). O(1):
  /// bumps the stamp base past everything the previous round wrote.
  void new_round(std::int32_t stride) {
    base_ += prev_stride_;
    prev_stride_ = stride + 1;
    if (base_ > kClearAt) {
      std::fill(last_.begin(), last_.end(), 0);
      std::fill(ext_.begin(), ext_.end(), 0);
      base_ = 1;
    }
  }

  std::size_t capacity() const { return last_.size(); }

  /// Bytes of backing storage (the paper sizes last-hit arrays against the
  /// LLC; benches report this).
  std::size_t footprint_bytes() const {
    return (last_.size() + ext_.size()) * sizeof(std::int32_t);
  }

  /// Last-hit query offset for `key`, or kNone.
  template <typename Mem = memsim::NullMemoryModel>
  std::int32_t last_hit(std::size_t key, Mem mem = {}) const {
    if constexpr (Mem::kEnabled) mem.touch(&last_[key], sizeof(std::int32_t));
    const std::int32_t v = last_[key] - base_;
    return v >= 0 ? v : kNone;
  }

  /// Extension-coverage watermark for `key`, or kNone.
  template <typename Mem = memsim::NullMemoryModel>
  std::int32_t ext_reached(std::size_t key, Mem mem = {}) const {
    if (ext_.empty()) return kNone;
    if constexpr (Mem::kEnabled) mem.touch(&ext_[key], sizeof(std::int32_t));
    const std::int32_t v = ext_[key] - base_;
    return v >= 0 ? v : kNone;
  }

  template <typename Mem = memsim::NullMemoryModel>
  void set_last_hit(std::size_t key, std::int32_t q, Mem mem = {}) {
    if constexpr (Mem::kEnabled) mem.touch(&last_[key], sizeof(std::int32_t));
    last_[key] = base_ + q;
  }

  template <typename Mem = memsim::NullMemoryModel>
  void set_ext_reached(std::size_t key, std::int32_t q, Mem mem = {}) {
    if (ext_.empty()) ext_.assign(last_.size(), 0);
    if constexpr (Mem::kEnabled) mem.touch(&ext_[key], sizeof(std::int32_t));
    ext_[key] = base_ + q;
  }

  /// Raw last-hit array for the SIMD prefilter kernels. Contract: the entry
  /// for `key` holds base() + q when a hit was recorded this round and a
  /// value < base() otherwise; within one round 1 <= base() <= 2^30 and
  /// stored offsets never overflow int32 arithmetic against base(). The
  /// kernels must preserve this representation exactly (they store either
  /// the unchanged previous word or base() + q, mirroring set_last_hit).
  std::int32_t* raw_last() { return last_.data(); }

  /// The current round's stamp base (see raw_last()).
  std::int32_t base() const { return base_; }

 private:
  static constexpr std::int32_t kClearAt = 0x40000000;

  std::vector<std::int32_t> last_;
  std::vector<std::int32_t> ext_;
  std::int32_t base_ = 1;
  std::int32_t prev_stride_ = 0;
};

}  // namespace mublastp
