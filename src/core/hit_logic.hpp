// Canonical per-hit logic shared by the interleaved engines.
//
// This is the automaton described in core/two_hit.hpp, fused with the
// extension kernel. The interleaved engines (query-indexed "NCBI" and
// database-indexed "NCBI-db") call process_hit directly for every word hit;
// muBLASTP executes the *same* state transitions but split across its
// pre-filter (pairing) and extension (coverage + extend) stages. The
// equivalence tests assert all paths produce identical stage-2 output.
//
// State transitions per hit at query offset q on diagonal key k
// (min = word length, A = two-hit window):
//   first hit on k            -> last_hit[k] <- q
//   q - last_hit[k] <  min    -> overlapping hit: ignored entirely
//   q - last_hit[k] >= min    -> last_hit[k] <- q; pair iff distance < A
//   if pair:
//     covered <- ext_reached[k] > q        -> no extension
//     else extend; on success (score >= cutoff) ext_reached[k] <- seg.q_end,
//          on failure ext_reached[k] <- q
#pragma once

#include <span>
#include <vector>

#include "core/params.hpp"
#include "core/two_hit.hpp"
#include "core/ungapped.hpp"
#include "memsim/memsim.hpp"
#include "simd/kernels.hpp"

namespace mublastp {

/// Optional SIMD context for process_hit: when non-null the extension runs
/// through the selected kernel against the pre-built query profile instead
/// of the scalar template. Results are bit-identical either way. Ignored on
/// traced (memsim) instantiations — their access streams must come from the
/// scalar kernel.
struct SimdExtendContext {
  simd::KernelPath kernel = simd::KernelPath::kScalar;
  const simd::QueryProfile* profile = nullptr;
};

/// Processes one word hit interleaved-style. `out` receives surviving
/// ungapped segments in subject-local coordinates.
template <typename Mem = memsim::NullMemoryModel>
inline void process_hit(DiagState& state, std::size_t key,
                        std::span<const Residue> query,
                        std::span<const Residue> subject, std::uint32_t qoff,
                        std::uint32_t soff, const ScoreMatrix& matrix,
                        const SearchParams& params, StageStats& stats,
                        std::vector<UngappedSeg>& out, Mem mem = {},
                        const SimdExtendContext* simd_ctx = nullptr) {
  ++stats.hits;
  const std::int32_t q = static_cast<std::int32_t>(qoff);
  const std::int32_t last = state.last_hit(key, mem);
  if (last != DiagState::kNone && q - last < params.two_hit_min) {
    return;  // overlaps the previous hit: ignored (NCBI semantics)
  }
  const bool paired =
      last != DiagState::kNone && (q - last) < params.two_hit_window;
  state.set_last_hit(key, q, mem);
  if (!paired) return;
  ++stats.hit_pairs;

  const std::int32_t reached = state.ext_reached(key, mem);
  if (reached != DiagState::kNone && reached > q) return;  // covered

  ++stats.extensions;
  UngappedSeg seg;
  bool extended = false;
  if constexpr (!Mem::kEnabled) {
    if (simd_ctx != nullptr &&
        simd_ctx->kernel != simd::KernelPath::kScalar) {
      seg = simd::ungapped_extend_one(simd_ctx->kernel, query, subject, qoff,
                                      soff, *simd_ctx->profile, matrix,
                                      params.ungapped_xdrop);
      extended = true;
    }
  }
  if (!extended) {
    seg = ungapped_extend(query, subject, qoff, soff, matrix,
                          params.ungapped_xdrop, mem);
  }
  if (seg.score >= params.ungapped_cutoff) {
    ++stats.ungapped_alignments;
    out.push_back(seg);
    state.set_ext_reached(key, static_cast<std::int32_t>(seg.q_end), mem);
  } else {
    state.set_ext_reached(key, q, mem);
  }
}

}  // namespace mublastp
