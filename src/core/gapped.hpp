// Gapped extension (stage 3) and traceback (stage 4).
//
// A high-scoring ungapped segment seeds a gapped alignment: from an anchor
// pair inside the segment, two affine-gap X-drop dynamic programs extend
// left and right (NCBI's semi-gapped extension scheme). The DP visits an
// adaptive band per row — cells whose score falls more than `xdrop` below
// the running best are pruned, so cost scales with alignment quality, not
// sequence length. Traceback is optional: stage 3 runs score-only, stage 4
// re-runs the winners with the direction matrix recorded (mirroring NCBI,
// where traceback "realigns the top-scoring alignments").
//
// Gap model: a gap of length L costs gap_open + L * gap_extend (NCBI
// convention; opening a gap costs gap_open + gap_extend).
#pragma once

#include <span>
#include <string>

#include "common/alphabet.hpp"
#include "core/params.hpp"
#include "score/matrix.hpp"
#include "simd/kernels.hpp"

namespace mublastp {

/// One direction of a gapped extension: how far it got and its score.
struct GappedHalf {
  Score score = 0;          ///< best alignment score of this half (>= 0)
  std::uint32_t q_len = 0;  ///< query residues consumed by the best path
  std::uint32_t s_len = 0;  ///< subject residues consumed
  std::string ops;          ///< 'M'/'I'/'D' transcript (empty if !traceback)
};

/// Extends forward from (0,0): the alignment is anchored at the corner and
/// may end anywhere; score is the best cell found (>= 0 — the empty
/// extension is always available).
GappedHalf xdrop_extend(std::span<const Residue> a, std::span<const Residue> b,
                        const ScoreMatrix& matrix, Score gap_open,
                        Score gap_extend, Score xdrop, bool traceback);

/// Kernel-dispatched variant: score-only extensions route through the
/// tiered banded SIMD kernel (simd::xdrop_extend_banded) when `kernel` is
/// a vector path, falling back to the scalar DP when the kernel declines.
/// Traceback runs always use the scalar DP — transcripts are untouched by
/// kernel choice. Results are bit-identical to the scalar overload; tier
/// decisions are tallied into `counters` when non-null.
GappedHalf xdrop_extend(std::span<const Residue> a, std::span<const Residue> b,
                        const ScoreMatrix& matrix, Score gap_open,
                        Score gap_extend, Score xdrop, bool traceback,
                        simd::KernelPath kernel,
                        simd::GappedKernelCounters* counters = nullptr);

/// Seeds a full gapped alignment from an ungapped segment: anchors at the
/// segment midpoint and extends both ways. Returns coordinates in the same
/// frame as `ungapped`. `ops` is filled only when `traceback` is true.
GappedAlignment gapped_align(std::span<const Residue> query,
                             std::span<const Residue> subject,
                             const UngappedAlignment& ungapped,
                             const ScoreMatrix& matrix,
                             const SearchParams& params, bool traceback);

/// Kernel-dispatched variant of gapped_align; see the xdrop_extend
/// overload for the dispatch rules.
GappedAlignment gapped_align(std::span<const Residue> query,
                             std::span<const Residue> subject,
                             const UngappedAlignment& ungapped,
                             const ScoreMatrix& matrix,
                             const SearchParams& params, bool traceback,
                             simd::KernelPath kernel,
                             simd::GappedKernelCounters* counters = nullptr);

/// Runs the two-way X-drop extension from an explicit anchor pair (qm, sm).
/// Stage 4 uses this with the anchor recorded by gapped_align so traceback
/// reproduces the stage-3 alignment exactly.
GappedAlignment gapped_align_at_anchor(std::span<const Residue> query,
                                       std::span<const Residue> subject,
                                       std::uint32_t qm, std::uint32_t sm,
                                       const ScoreMatrix& matrix,
                                       const SearchParams& params,
                                       bool traceback);

/// Kernel-dispatched variant of gapped_align_at_anchor; see the
/// xdrop_extend overload for the dispatch rules.
GappedAlignment gapped_align_at_anchor(std::span<const Residue> query,
                                       std::span<const Residue> subject,
                                       std::uint32_t qm, std::uint32_t sm,
                                       const ScoreMatrix& matrix,
                                       const SearchParams& params,
                                       bool traceback, simd::KernelPath kernel,
                                       simd::GappedKernelCounters* counters
                                       = nullptr);

/// Recomputes the raw score of a traceback transcript against the sequences
/// (verification helper used by tests and the output formatter).
Score score_of_transcript(std::span<const Residue> query,
                          std::span<const Residue> subject,
                          const GappedAlignment& aln,
                          const ScoreMatrix& matrix, Score gap_open,
                          Score gap_extend);

}  // namespace mublastp
