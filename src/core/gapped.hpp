// Gapped extension (stage 3) and traceback (stage 4).
//
// A high-scoring ungapped segment seeds a gapped alignment: from an anchor
// pair inside the segment, two affine-gap X-drop dynamic programs extend
// left and right (NCBI's semi-gapped extension scheme). The DP visits an
// adaptive band per row — cells whose score falls more than `xdrop` below
// the running best are pruned, so cost scales with alignment quality, not
// sequence length. Traceback is optional: stage 3 runs score-only, stage 4
// re-runs the winners with the direction matrix recorded (mirroring NCBI,
// where traceback "realigns the top-scoring alignments").
//
// Gap model: a gap of length L costs gap_open + L * gap_extend (NCBI
// convention; opening a gap costs gap_open + gap_extend).
#pragma once

#include <span>
#include <string>

#include "common/alphabet.hpp"
#include "core/params.hpp"
#include "score/matrix.hpp"

namespace mublastp {

/// One direction of a gapped extension: how far it got and its score.
struct GappedHalf {
  Score score = 0;          ///< best alignment score of this half (>= 0)
  std::uint32_t q_len = 0;  ///< query residues consumed by the best path
  std::uint32_t s_len = 0;  ///< subject residues consumed
  std::string ops;          ///< 'M'/'I'/'D' transcript (empty if !traceback)
};

/// Extends forward from (0,0): the alignment is anchored at the corner and
/// may end anywhere; score is the best cell found (>= 0 — the empty
/// extension is always available).
GappedHalf xdrop_extend(std::span<const Residue> a, std::span<const Residue> b,
                        const ScoreMatrix& matrix, Score gap_open,
                        Score gap_extend, Score xdrop, bool traceback);

/// Seeds a full gapped alignment from an ungapped segment: anchors at the
/// segment midpoint and extends both ways. Returns coordinates in the same
/// frame as `ungapped`. `ops` is filled only when `traceback` is true.
GappedAlignment gapped_align(std::span<const Residue> query,
                             std::span<const Residue> subject,
                             const UngappedAlignment& ungapped,
                             const ScoreMatrix& matrix,
                             const SearchParams& params, bool traceback);

/// Runs the two-way X-drop extension from an explicit anchor pair (qm, sm).
/// Stage 4 uses this with the anchor recorded by gapped_align so traceback
/// reproduces the stage-3 alignment exactly.
GappedAlignment gapped_align_at_anchor(std::span<const Residue> query,
                                       std::span<const Residue> subject,
                                       std::uint32_t qm, std::uint32_t sm,
                                       const ScoreMatrix& matrix,
                                       const SearchParams& params,
                                       bool traceback);

/// Recomputes the raw score of a traceback transcript against the sequences
/// (verification helper used by tests and the output formatter).
Score score_of_transcript(std::span<const Residue> query,
                          std::span<const Residue> subject,
                          const GappedAlignment& aln,
                          const ScoreMatrix& matrix, Score gap_open,
                          Score gap_extend);

}  // namespace mublastp
