#include "core/results.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/gapped.hpp"

namespace mublastp {
namespace {

// (subject, diagonal, q_start) ordering used for the canonical stage-2 list.
bool ungapped_less(const UngappedAlignment& a, const UngappedAlignment& b) {
  const std::int64_t da =
      static_cast<std::int64_t>(a.s_start) - static_cast<std::int64_t>(a.q_start);
  const std::int64_t db =
      static_cast<std::int64_t>(b.s_start) - static_cast<std::int64_t>(b.q_start);
  if (a.subject != b.subject) return a.subject < b.subject;
  if (da != db) return da < db;
  if (a.q_start != b.q_start) return a.q_start < b.q_start;
  return a.q_end < b.q_end;
}

bool contains(const GappedAlignment& outer, std::uint32_t q_start,
              std::uint32_t q_end, std::uint32_t s_start, std::uint32_t s_end) {
  return q_start >= outer.q_start && q_end <= outer.q_end &&
         s_start >= outer.s_start && s_end <= outer.s_end;
}

}  // namespace

void canonicalize_ungapped(std::vector<UngappedAlignment>& segs) {
  std::sort(segs.begin(), segs.end(), ungapped_less);
  segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
}

std::vector<GappedAlignment> gapped_stage(std::span<const Residue> query,
                                          const SubjectLookup& subjects,
                                          std::vector<UngappedAlignment> ungapped,
                                          const ScoreMatrix& matrix,
                                          const SearchParams& params,
                                          StageStats* stats,
                                          simd::KernelPath kernel) {
  // Deterministic processing order: best segments first, canonical
  // tie-breaks so every engine walks the same order.
  std::sort(ungapped.begin(), ungapped.end(),
            [](const UngappedAlignment& a, const UngappedAlignment& b) {
              if (a.score != b.score) return a.score > b.score;
              return ungapped_less(a, b);
            });

  std::vector<GappedAlignment> out;
  simd::GappedKernelCounters kc;
  for (const UngappedAlignment& seg : ungapped) {
    // Redundancy skip: a segment inside an already-found gapped alignment
    // (same subject) would re-derive the same alignment.
    bool covered = false;
    for (const GappedAlignment& g : out) {
      if (g.subject == seg.subject &&
          contains(g, seg.q_start, seg.q_end, seg.s_start, seg.s_end)) {
        covered = true;
        break;
      }
    }
    if (covered) continue;

    const std::span<const Residue> subject = subjects(seg.subject);
    GappedAlignment aln = gapped_align(query, subject, seg, matrix, params,
                                       /*traceback=*/false, kernel, &kc);
    if (stats != nullptr) ++stats->gapped_extensions;
    if (aln.score >= params.gapped_cutoff) {
      out.push_back(aln);
    }
  }
  if (stats != nullptr) {
    stats->gapped_int8_runs += kc.int8_runs;
    stats->gapped_int16_reruns += kc.int16_reruns;
    stats->gapped_scalar_fallbacks += kc.scalar_fallbacks;
  }
  return out;
}

std::vector<GappedAlignment> finalize_stage(std::span<const Residue> query,
                                            const SubjectLookup& subjects,
                                            std::vector<GappedAlignment> gapped,
                                            const ScoreMatrix& matrix,
                                            const SearchParams& params,
                                            const KarlinParams& karlin,
                                            std::size_t db_residues) {
  // Rank: score desc, then subject/coordinates for determinism.
  std::sort(gapped.begin(), gapped.end(),
            [](const GappedAlignment& a, const GappedAlignment& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.subject != b.subject) return a.subject < b.subject;
              if (a.q_start != b.q_start) return a.q_start < b.q_start;
              return a.s_start < b.s_start;
            });

  // Envelope culling: drop an alignment contained in a better one on the
  // same subject (including exact duplicates from block overlap).
  std::vector<GappedAlignment> kept;
  kept.reserve(std::min<std::size_t>(gapped.size(), params.max_alignments));
  for (const GappedAlignment& g : gapped) {
    bool redundant = false;
    for (const GappedAlignment& k : kept) {
      if (k.subject == g.subject &&
          contains(k, g.q_start, g.q_end, g.s_start, g.s_end)) {
        redundant = true;
        break;
      }
    }
    if (redundant) continue;
    kept.push_back(g);
    if (kept.size() >= params.max_alignments) break;
  }

  // E-value reporting threshold (NCBI -evalue), applied BEFORE the
  // traceback pass: E-values depend only on the score, the score-only and
  // traceback passes produce the same score (checked below), and E-values
  // are monotone in score — so trimming the ranked suffix here drops
  // exactly the alignments the old trim-after-traceback dropped, without
  // paying their traceback DP.
  for (GappedAlignment& g : kept) {
    g.evalue = evalue(g.score, query.size(), db_residues, karlin);
  }
  while (!kept.empty() && kept.back().evalue > params.evalue_cutoff) {
    kept.pop_back();
  }

  // Traceback pass (stage 4 proper): realign the survivors recording ops,
  // and attach statistics.
  for (GappedAlignment& g : kept) {
    const std::span<const Residue> subject = subjects(g.subject);
    // Re-run the identical X-drop DP from the recorded anchor, this time
    // recording the direction matrix. Same anchor + same DP = the same
    // alignment, now with its transcript.
    GappedAlignment with_tb = gapped_align_at_anchor(
        query, subject, g.anchor_q, g.anchor_s, matrix, params,
        /*traceback=*/true);
    with_tb.subject = g.subject;
    MUBLASTP_CHECK(with_tb.score == g.score,
                   "traceback pass diverged from score-only pass");
    g = with_tb;
    g.bit_score = bit_score(g.score, karlin);
    g.evalue = evalue(g.score, query.size(), db_residues, karlin);
  }
  return kept;
}

}  // namespace mublastp
