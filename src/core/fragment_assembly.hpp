// Assembly step for split long sequences (paper Section IV-A).
//
// Database-indexed engines operate on fragments of long sequences. An
// ungapped extension computed inside a fragment is exact unless it ran into
// a fragment boundary; in that case it is re-extended on the original
// sequence from the same hit anchor — the "assembly stage to extend the
// ungapped extension ... after finishing the extension inside each short
// sequence". Duplicates produced by overlapped fragment boundaries are
// removed later by canonicalize_ungapped().
#pragma once

#include <span>

#include "core/params.hpp"
#include "core/ungapped.hpp"
#include "index/db_index.hpp"
#include "score/matrix.hpp"

namespace mublastp {

/// Converts a fragment-local ungapped segment to whole-sequence coordinates,
/// re-extending across the boundary when the local extension was clipped.
/// `qoff`/`soff_local` anchor the hit that produced `seg`. `Db` is anything
/// with sequence(SeqId) -> span<const Residue> (SequenceStore, DbIndexView).
template <typename Db>
UngappedAlignment resolve_fragment_segment(
    std::span<const Residue> query, const Db& db,
    const FragmentRef& frag, const UngappedSeg& seg, std::uint32_t qoff,
    std::uint32_t soff_local, const ScoreMatrix& matrix,
    const SearchParams& params) {
  const std::span<const Residue> full = db.sequence(frag.seq);
  const bool clipped_left = seg.s_start == 0 && frag.start > 0;
  const bool clipped_right =
      seg.s_end == frag.len && frag.start + frag.len < full.size();

  UngappedAlignment out;
  out.subject = frag.seq;  // sorted-store id; engines remap before emitting
  if (clipped_left || clipped_right) {
    const UngappedSeg re = ungapped_extend(
        query, full, qoff, frag.start + soff_local, matrix,
        params.ungapped_xdrop);
    out.q_start = re.q_start;
    out.q_end = re.q_end;
    out.s_start = re.s_start;
    out.s_end = re.s_end;
    out.score = re.score;
  } else {
    out.q_start = seg.q_start;
    out.q_end = seg.q_end;
    out.s_start = frag.start + seg.s_start;
    out.s_end = frag.start + seg.s_end;
    out.score = seg.score;
  }
  return out;
}

}  // namespace mublastp
