// The 8-byte hit record shared by the reorder buffer and the SIMD hit-scan
// kernels. Lives in its own header so src/simd can name it without pulling
// in the full engine declaration.
#pragma once

#include <cstdint>

namespace mublastp {

/// A hit (or hit pair, after pre-filtering) as stored in the reorder
/// buffer: 8 bytes, sorted by `key` only — the stable sort preserves the
/// query-offset order hit detection produces (Figure 4).
struct HitRecord {
  /// Dense diagonal key: per-fragment base (prefix sum over fragment
  /// diagonal counts) + shifted diagonal. Ascending key order == ascending
  /// (fragment, diagonal) order, and the same value indexes the last-hit
  /// array during pre-filtering.
  std::uint32_t key = 0;
  std::uint32_t qoff = 0;  ///< query offset of the (second) hit's word
};

}  // namespace mublastp
