#include "core/params.hpp"

#include "common/error.hpp"

namespace mublastp {

void SearchParams::validate() const {
  MUBLASTP_CHECK(matrix != nullptr, "scoring matrix must be set");
  MUBLASTP_CHECK(two_hit_min >= 1, "two_hit_min must be at least 1");
  MUBLASTP_CHECK(two_hit_window > two_hit_min,
                 "two-hit window must exceed the minimum distance");
  MUBLASTP_CHECK(ungapped_xdrop >= 0, "ungapped x-drop must be non-negative");
  MUBLASTP_CHECK(ungapped_cutoff > 0, "ungapped cutoff must be positive");
  MUBLASTP_CHECK(gap_open >= 0, "gap open penalty must be non-negative");
  MUBLASTP_CHECK(gap_extend > 0, "gap extend penalty must be positive");
  MUBLASTP_CHECK(gapped_xdrop >= 0, "gapped x-drop must be non-negative");
  MUBLASTP_CHECK(gapped_cutoff > 0, "gapped cutoff must be positive");
  MUBLASTP_CHECK(evalue_cutoff > 0.0, "E-value cutoff must be positive");
  MUBLASTP_CHECK(max_alignments > 0, "max_alignments must be positive");
}

}  // namespace mublastp
