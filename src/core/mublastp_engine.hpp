// muBLASTP: database-indexed BLASTP with the irregularity-eliminating
// pipeline (paper Section IV).
//
// Per (index block, query) the engine runs:
//   1. hit detection      — scan the query against the block's two-level
//                           index; with pre-filtering enabled (Algorithm 2)
//                           the per-(fragment,diagonal) last-hit array is
//                           consulted *here*, so only two-hit pairs reach
//                           the sort (<5% of hits, Figure 6);
//   2. hit reordering     — stable LSD radix sort on the packed key
//                           (fragment id << diag bits | diagonal), restoring
//                           per-subject, per-diagonal order (Section IV-B);
//   3. ungapped extension — walk the sorted pairs; consecutive pairs touch
//                           the same subject, so its residues stay cached
//                           (the whole point);
//   4. gapped extension + traceback via the shared stage-3/4 code.
//
// Stage outputs are identical to the interleaved engines by construction;
// tests assert it. Batch mode implements Algorithm 3: the block loop is
// outermost and an OpenMP dynamic-for parallelizes over queries inside it,
// so all threads share the block in the LLC.
#pragma once

#include <functional>
#include <vector>

#include "core/hit_record.hpp"
#include "core/params.hpp"
#include "core/results.hpp"
#include "core/two_hit.hpp"
#include "index/flat_lookup.hpp"
#include "index/db_index_view.hpp"
#include "memsim/memsim.hpp"
#include "score/karlin.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "simd/score_profile.hpp"
#include "stats/stats.hpp"

namespace mublastp {

namespace trace {
class Tracer;
}

/// Pipeline variants, exposed for the paper's ablations.
struct MuBlastpOptions {
  /// Algorithm 2 (pre-filter before the sort) when true; Algorithm 1 (sort
  /// all hits, filter after) when false.
  bool prefilter = true;

  /// Which stable key-value sort reorders the hits (Section IV-B weighs
  /// these; LSD radix is the paper's choice).
  enum class SortAlgo { kRadixLsd, kRadixMsd, kMergeSort, kStdStable };
  SortAlgo sort_algo = SortAlgo::kRadixLsd;

  /// Which kernel the hot stages run on: the query-specialized hit
  /// detection path (flattened neighbor lookup + prefetched posting scan +
  /// vector two-hit prefilter), the banded gapped extension in stage 3,
  /// plus the batched ungapped kernel when vector_ungapped opts in.
  /// Results are bit-identical for every path; kScalar executes the
  /// pre-SIMD code unchanged. Traced (memsim) runs always use the scalar
  /// kernels so access streams stay exact.
  simd::KernelPath kernel = simd::default_kernel();

  /// Opt-in for the batched vector ungapped-extension kernel (the
  /// "+ungapped" suffix of --kernel=). Off by default: that kernel is
  /// bit-identical but measured slower than scalar (docs/ALGORITHMS.md),
  /// so production runs keep ungapped extension scalar and spend the
  /// vector path on the gapped DP.
  bool vector_ungapped = false;

  /// Per-query wall-clock budget for batch searches (seconds; 0 = none).
  /// A query whose accumulated stage-1/2 time exceeds it is cut off: it
  /// skips the remaining blocks and the gapped stage, keeping whatever
  /// ungapped alignments it already has. With a DegradedStats sink the trip
  /// is recorded and the run is marked partial; without one (strict mode)
  /// the batch fails with Error(kCanceled).
  double time_budget_seconds = 0.0;

  /// Search-space size (residues) used for E-value statistics instead of
  /// the index's own total when nonzero. Sharded execution sets this to the
  /// COMBINED database size so every shard's E-values (and the E-value
  /// cutoff) are computed over the same n as an unsharded run — the
  /// prerequisite for merged output being bit-identical. 0 (the default)
  /// keeps the single-index behaviour: n = view.total_residues().
  std::uint64_t effective_db_residues = 0;

  /// Whole-batch workspace budget (bytes; 0 = none), split evenly across
  /// worker threads. A workspace whose retained footprint exceeds its share
  /// after a round releases its buffers (capacities regrow on demand), so
  /// results are unchanged — only the high-water retention is bounded. Each
  /// release counts one mem_budget_trip in DegradedStats.
  std::uint64_t mem_budget_bytes = 0;

  /// Fired at each block's serial point during search_batch (the same
  /// barrier that merges telemetry and flushes the tracer).
  struct BatchProgress {
    std::uint32_t blocks_done = 0;
    std::uint32_t blocks_total = 0;
    std::uint64_t queries = 0;
    std::uint64_t quarantined_blocks = 0;  ///< so far, degraded mode only
  };
  /// Batch-progress callback (the --progress heartbeat). Called from serial
  /// code only; empty (the default) costs nothing on the hot path.
  std::function<void(const BatchProgress&)> progress;
};

/// The muBLASTP engine.
class MuBlastpEngine {
 public:
  /// The index behind `index` (owned DbIndex or MappedDbIndex — both
  /// convert implicitly) must outlive the engine.
  explicit MuBlastpEngine(DbIndexView index, SearchParams params = {},
                          MuBlastpOptions options = {});

  /// Searches one query through all four stages (single-threaded).
  QueryResult search(std::span<const Residue> query) const;

  /// Same search with pipeline telemetry (per-stage time, per-block
  /// counters) collected into `ps` as one single-threaded run.
  QueryResult search(std::span<const Residue> query,
                     stats::PipelineStats& ps) const;

  /// Same search with stage-1/2 accesses traced through `mem`.
  QueryResult search_traced(std::span<const Residue> query,
                            memsim::MemoryHierarchy& mem) const;

  /// Single-query search recording stage spans (attributed to `query_id`)
  /// into `tracer`. The single-threaded leg fork-process shard workers run;
  /// the caller flushes the tracer when the batch is done.
  QueryResult search(std::span<const Residue> query, std::uint32_t query_id,
                     trace::Tracer& tracer) const;

  /// Algorithm 3: block loop outermost, OpenMP dynamic-for over queries for
  /// stages 1-2, then a second dynamic-for over queries for stages 3-4.
  /// When `ps` is non-null, telemetry is collected into it: per-thread
  /// accumulators are merged at each block's end, so all counters are
  /// identical for any thread count.
  ///
  /// Error containment: a worker exception inside a block's parallel region
  /// never escapes the region. With `degraded` null (strict mode) it is
  /// rethrown after the region, failing the batch. With `degraded` set the
  /// failing block is quarantined — every query's partial contribution from
  /// that block is purged, the block id + reason land in
  /// degraded->quarantined, the run is marked partial, and the search
  /// continues over the remaining blocks. Budget trips
  /// (options().time_budget_seconds / mem_budget_bytes) are reported the
  /// same way.
  /// When `tracer` is non-null, every stage boundary is additionally
  /// recorded as a span (per-thread ring buffers, drained at the same
  /// serial point that merges `ps`).
  std::vector<QueryResult> search_batch(const SequenceStore& queries,
                                        int threads,
                                        stats::PipelineStats* ps = nullptr,
                                        stats::DegradedStats* degraded
                                        = nullptr,
                                        trace::Tracer* tracer
                                        = nullptr) const;

  const DbIndexView& view() const { return view_; }
  const SearchParams& params() const { return params_; }
  const MuBlastpOptions& options() const { return options_; }

 private:
  /// An extension deferred into the current SIMD batch: enough to rebuild
  /// the subject span and replay the coverage bookkeeping at flush time.
  struct PendingExt {
    std::uint32_t key = 0;
    std::uint32_t qoff = 0;
    std::uint32_t soff = 0;
    std::uint32_t frag = 0;  ///< fragment cursor value at enqueue
  };

  /// Per-thread scratch reused across (block, query) rounds. Vector
  /// capacities (and the DiagState backing array) are deliberately carried
  /// across blocks; records_hwm keeps the hit buffer reservation at its
  /// high-water mark so later blocks never regrow it incrementally.
  struct Workspace {
    DiagState state;
    std::vector<HitRecord> records;
    std::vector<HitRecord> rec_scratch;  ///< hit-scan compaction buffer
    std::vector<std::uint32_t> scan_entries;  ///< fused per-qoff posting scan
    std::vector<std::uint32_t> bases;  ///< per-fragment diagonal key bases
    std::size_t records_hwm = 0;       ///< max records.size() seen so far
    simd::QueryProfile profile;        ///< per-query score profile (SIMD)
    std::vector<PendingExt> pending;   ///< extensions awaiting a batch flush
    std::vector<simd::BatchHit> batch;
    std::vector<UngappedSeg> batch_out;
    std::uint64_t mem_budget = 0;  ///< retained-bytes cap (0 = none)
    std::uint64_t mem_trips = 0;   ///< times enforce_budget() released

    /// Bytes currently retained by this workspace (capacities, not sizes).
    std::uint64_t footprint_bytes() const;

    /// Releases every retained buffer if footprint_bytes() exceeds
    /// mem_budget. Returns true when it released (one budget trip).
    /// Capacities regrow on demand, so results are unaffected.
    bool enforce_budget();
  };

  /// `flat` is the query's pre-built flattened neighbor table, or nullptr
  /// for the classic two-level scan (scalar kernel / traced runs). With a
  /// non-null flat and a vector kernel, stage 1 runs the query-specialized
  /// hit-scan kernels; hits, pairs, and record order are bit-identical.
  template <typename Mem, typename Rec>
  void search_block(std::span<const Residue> query, const DbBlockView& block,
                    std::uint32_t block_id, StageStats& stats,
                    std::vector<UngappedAlignment>& out, Workspace& ws,
                    const FlatNeighborhood* flat, Mem mem, Rec rec) const;

  template <typename Mem, typename Rec>
  QueryResult search_impl(std::span<const Residue> query, Mem mem,
                          Rec rec) const;

  template <typename PS, bool Traced>
  std::vector<QueryResult> batch_impl(const SequenceStore& queries,
                                      int threads, PS* ps,
                                      stats::DegradedStats* degraded,
                                      trace::Tracer* tracer) const;

  void sort_records(std::vector<HitRecord>& records, int key_bits) const;

  /// The n of the K*m*n E-value search space: the combined-database
  /// override when set (sharded execution), the index total otherwise.
  std::size_t statistical_db_residues() const {
    return options_.effective_db_residues != 0
               ? static_cast<std::size_t>(options_.effective_db_residues)
               : view_.total_residues();
  }

  DbIndexView view_;
  SearchParams params_;
  MuBlastpOptions options_;
  KarlinParams karlin_;
};

}  // namespace mublastp
