// Shared stage-3/stage-4 processing.
//
// Every engine funnels its stage-2 output (ungapped alignments) through the
// functions here, so gapped extension, culling, ranking, E-values and
// traceback are engine-invariant — a structural guarantee of the paper's
// Section V-E property that optimizations never change outputs.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "score/karlin.hpp"
#include "score/matrix.hpp"
#include "simd/dispatch.hpp"

namespace mublastp {

/// Resolves a subject id (original database numbering) to its residues.
using SubjectLookup = std::function<std::span<const Residue>(SeqId)>;

/// Canonicalizes a stage-2 list: sorts by (subject, diagonal, q_start) and
/// removes exact duplicates (duplicates arise only from overlapped fragments
/// of split long sequences).
void canonicalize_ungapped(std::vector<UngappedAlignment>& segs);

/// Stage 3: seeds gapped extensions from ungapped segments in descending
/// score order, skipping segments already contained in an accepted gapped
/// alignment's envelope (NCBI's redundancy heuristic). Returns score-only
/// gapped alignments with score >= params.gapped_cutoff. Score-only
/// extensions run on the tiered banded SIMD kernel when `kernel` names a
/// vector path (bit-identical to scalar; tier tallies land in `stats`).
std::vector<GappedAlignment> gapped_stage(
    std::span<const Residue> query, const SubjectLookup& subjects,
    std::vector<UngappedAlignment> ungapped, const ScoreMatrix& matrix,
    const SearchParams& params, StageStats* stats = nullptr,
    simd::KernelPath kernel = simd::KernelPath::kScalar);

/// Stage 4: merges gapped alignments (possibly from several index blocks),
/// culls envelope-contained ones, keeps the top params.max_alignments by
/// score, recomputes each winner with traceback, and attaches bit scores
/// and E-values for a search space of query_len x db_residues.
std::vector<GappedAlignment> finalize_stage(
    std::span<const Residue> query, const SubjectLookup& subjects,
    std::vector<GappedAlignment> gapped, const ScoreMatrix& matrix,
    const SearchParams& params, const KarlinParams& karlin,
    std::size_t db_residues);

}  // namespace mublastp
