#include "core/gapped.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace mublastp {
namespace {

constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;

// Traceback byte layout: bits 0-1 = source of H (0 diag, 1 from E, 2 from
// F, 3 cell pruned); bit 2 = the E path opened its gap here; bit 3 = the F
// path opened its gap here.
constexpr std::uint8_t kHDiag = 0;
constexpr std::uint8_t kHFromE = 1;
constexpr std::uint8_t kHFromF = 2;
constexpr std::uint8_t kInvalid = 3;
constexpr std::uint8_t kEOpen = 4;
constexpr std::uint8_t kFOpen = 8;

}  // namespace

GappedHalf xdrop_extend(std::span<const Residue> a, std::span<const Residue> b,
                        const ScoreMatrix& matrix, Score gap_open,
                        Score gap_extend, Score xdrop, bool traceback) {
  MUBLASTP_CHECK(gap_open >= 0 && gap_extend > 0, "invalid gap penalties");
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  GappedHalf out;
  if (n == 0 && m == 0) return out;

  const Score open_cost = gap_open + gap_extend;  // cost of a length-1 gap

  Score best = 0;
  std::int64_t best_i = 0;
  std::int64_t best_j = 0;

  // Previous row's live band [lo, hi] with H and F values (E is carried
  // within a row only, so it needs no history).
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::vector<Score> h_prev;
  std::vector<Score> f_prev;

  // Row 0: pure horizontal gap runs.
  h_prev.push_back(0);
  f_prev.push_back(kNegInf);
  for (std::int64_t j = 1; j <= m; ++j) {
    const Score v = -(gap_open + static_cast<Score>(j) * gap_extend);
    if (best - v > xdrop) break;
    h_prev.push_back(v);
    f_prev.push_back(kNegInf);
    hi = j;
  }

  std::vector<std::vector<std::uint8_t>> tb;
  std::vector<std::int64_t> tb_lo;
  if (traceback) {
    std::vector<std::uint8_t> row0(h_prev.size(), kHFromE);
    row0[0] = kHDiag;
    if (row0.size() > 1) row0[1] |= kEOpen;
    tb.push_back(std::move(row0));
    tb_lo.push_back(0);
  }

  std::vector<Score> h_cur;
  std::vector<Score> f_cur;
  std::vector<std::uint8_t> tb_row;

  for (std::int64_t i = 1; i <= n; ++i) {
    const std::int64_t prev_lo = lo;
    const std::int64_t prev_hi = hi;
    const auto prev_h = [&](std::int64_t j) -> Score {
      return (j >= prev_lo && j <= prev_hi)
                 ? h_prev[static_cast<std::size_t>(j - prev_lo)]
                 : kNegInf;
    };
    const auto prev_f = [&](std::int64_t j) -> Score {
      return (j >= prev_lo && j <= prev_hi)
                 ? f_prev[static_cast<std::size_t>(j - prev_lo)]
                 : kNegInf;
    };

    h_cur.clear();
    f_cur.clear();
    tb_row.clear();
    std::int64_t cur_lo = -1;
    std::int64_t cur_hi = -2;

    Score e_run = kNegInf;  // E value at the previous column of this row
    Score h_left = kNegInf; // H value at the previous column of this row
    // Columns the previous row can feed diagonally/vertically end at
    // prev_hi + 1; beyond that only a horizontal run (E) can stay alive.
    for (std::int64_t j = prev_lo; j <= m; ++j) {
      // E: gap in a, consuming b[j-1].
      Score e_val = kNegInf;
      std::uint8_t flags = 0;
      if (j > prev_lo || j > 0) {
        const Score open_e = (h_left == kNegInf) ? kNegInf : h_left - open_cost;
        const Score ext_e = (e_run == kNegInf) ? kNegInf : e_run - gap_extend;
        if (open_e >= ext_e) {
          e_val = open_e;
          if (e_val != kNegInf) flags |= kEOpen;
        } else {
          e_val = ext_e;
        }
      }

      // F: gap in b, consuming a[i-1].
      Score f_val;
      {
        const Score h_up = prev_h(j);
        const Score f_up = prev_f(j);
        const Score open_f = (h_up == kNegInf) ? kNegInf : h_up - open_cost;
        const Score ext_f = (f_up == kNegInf) ? kNegInf : f_up - gap_extend;
        if (open_f >= ext_f) {
          f_val = open_f;
          if (f_val != kNegInf) flags |= kFOpen;
        } else {
          f_val = ext_f;
        }
      }

      // H: diagonal or close a gap.
      Score diag = kNegInf;
      if (j >= 1) {
        const Score h_diag = prev_h(j - 1);
        if (h_diag != kNegInf) {
          diag = h_diag + matrix(a[static_cast<std::size_t>(i - 1)],
                                 b[static_cast<std::size_t>(j - 1)]);
        }
      }
      Score h_val = diag;
      std::uint8_t src = kHDiag;
      if (e_val > h_val) {
        h_val = e_val;
        src = kHFromE;
      }
      if (f_val > h_val) {
        h_val = f_val;
        src = kHFromF;
      }

      const bool alive = (h_val > kNegInf / 2) && (best - h_val <= xdrop);
      if (!alive) {
        h_val = kNegInf;
        e_val = kNegInf;
        f_val = kNegInf;
        src = kInvalid;
        flags = 0;
      }

      if (alive && cur_lo == -1) cur_lo = j;
      if (cur_lo != -1) {
        h_cur.push_back(h_val);
        f_cur.push_back(f_val);
        if (traceback) tb_row.push_back(static_cast<std::uint8_t>(src | flags));
        if (alive) cur_hi = j;
      }

      h_left = h_val;
      e_run = e_val;

      if (alive && h_val > best) {
        best = h_val;
        best_i = i;
        best_j = j;
      }

      // Past the previous row's reach, only the horizontal E run matters;
      // once it dies the row is finished.
      if (j > prev_hi && !alive) break;
    }

    if (cur_lo == -1) {
      // Band died entirely: the extension is finished.
      if (traceback) {
        tb.push_back({});
        tb_lo.push_back(0);
      }
      break;
    }

    // Trim trailing pruned cells.
    const std::size_t live = static_cast<std::size_t>(cur_hi - cur_lo + 1);
    h_cur.resize(live);
    f_cur.resize(live);
    if (traceback) tb_row.resize(live);

    lo = cur_lo;
    hi = cur_hi;
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
    if (traceback) {
      tb.push_back(tb_row);
      tb_lo.push_back(lo);
    }
  }

  out.score = best;
  out.q_len = static_cast<std::uint32_t>(best_i);
  out.s_len = static_cast<std::uint32_t>(best_j);

  if (traceback && (best_i > 0 || best_j > 0)) {
    std::string ops;
    std::int64_t i = best_i;
    std::int64_t j = best_j;
    enum class St { H, E, F } st = St::H;
    while (i > 0 || j > 0) {
      const std::vector<std::uint8_t>& row = tb[static_cast<std::size_t>(i)];
      const std::int64_t row_lo = tb_lo[static_cast<std::size_t>(i)];
      MUBLASTP_CHECK(
          j >= row_lo && j - row_lo < static_cast<std::int64_t>(row.size()),
          "traceback walked outside the recorded band");
      const std::uint8_t cell = row[static_cast<std::size_t>(j - row_lo)];
      if (st == St::H) {
        const std::uint8_t src = cell & 3;
        MUBLASTP_CHECK(src != kInvalid, "traceback entered a pruned cell");
        if (src == kHDiag) {
          if (i == 0 && j == 0) break;
          ops.push_back('M');
          --i;
          --j;
        } else if (src == kHFromE) {
          st = St::E;
        } else {
          st = St::F;
        }
      } else if (st == St::E) {
        ops.push_back('D');  // gap in a: consumed b[j-1] only
        const bool opened = cell & kEOpen;
        --j;
        if (opened) st = St::H;
      } else {
        ops.push_back('I');  // gap in b: consumed a[i-1] only
        const bool opened = cell & kFOpen;
        --i;
        if (opened) st = St::H;
      }
    }
    std::reverse(ops.begin(), ops.end());
    out.ops = std::move(ops);
  }
  return out;
}

GappedHalf xdrop_extend(std::span<const Residue> a, std::span<const Residue> b,
                        const ScoreMatrix& matrix, Score gap_open,
                        Score gap_extend, Score xdrop, bool traceback,
                        simd::KernelPath kernel,
                        simd::GappedKernelCounters* counters) {
  // Traceback needs the direction matrix only the scalar DP records, so
  // stage 4 always runs scalar — kernel choice cannot touch transcripts.
  if (!traceback && kernel != simd::KernelPath::kScalar) {
    if (const auto ext = simd::xdrop_extend_banded(
            kernel, a, b, matrix, gap_open, gap_extend, xdrop, counters)) {
      GappedHalf out;
      out.score = ext->score;
      out.q_len = ext->a_len;
      out.s_len = ext->b_len;
      return out;
    }
  }
  return xdrop_extend(a, b, matrix, gap_open, gap_extend, xdrop, traceback);
}

GappedAlignment gapped_align(std::span<const Residue> query,
                             std::span<const Residue> subject,
                             const UngappedAlignment& ungapped,
                             const ScoreMatrix& matrix,
                             const SearchParams& params, bool traceback) {
  return gapped_align(query, subject, ungapped, matrix, params, traceback,
                      simd::KernelPath::kScalar, nullptr);
}

GappedAlignment gapped_align(std::span<const Residue> query,
                             std::span<const Residue> subject,
                             const UngappedAlignment& ungapped,
                             const ScoreMatrix& matrix,
                             const SearchParams& params, bool traceback,
                             simd::KernelPath kernel,
                             simd::GappedKernelCounters* counters) {
  MUBLASTP_CHECK(ungapped.q_end > ungapped.q_start,
                 "cannot seed from an empty ungapped segment");
  // Anchor at the midpoint of the ungapped segment. All engines share this
  // choice, so gapped outputs stay engine-invariant.
  const std::uint32_t mid = (ungapped.q_end - ungapped.q_start - 1) / 2;
  const std::uint32_t qm = ungapped.q_start + mid;
  const std::uint32_t sm = ungapped.s_start + mid;
  GappedAlignment aln = gapped_align_at_anchor(
      query, subject, qm, sm, matrix, params, traceback, kernel, counters);
  aln.subject = ungapped.subject;
  return aln;
}

GappedAlignment gapped_align_at_anchor(std::span<const Residue> query,
                                       std::span<const Residue> subject,
                                       std::uint32_t qm, std::uint32_t sm,
                                       const ScoreMatrix& matrix,
                                       const SearchParams& params,
                                       bool traceback) {
  return gapped_align_at_anchor(query, subject, qm, sm, matrix, params,
                                traceback, simd::KernelPath::kScalar, nullptr);
}

GappedAlignment gapped_align_at_anchor(std::span<const Residue> query,
                                       std::span<const Residue> subject,
                                       std::uint32_t qm, std::uint32_t sm,
                                       const ScoreMatrix& matrix,
                                       const SearchParams& params,
                                       bool traceback, simd::KernelPath kernel,
                                       simd::GappedKernelCounters* counters) {
  MUBLASTP_CHECK(qm < query.size() && sm < subject.size(),
                 "anchor outside the sequences");
  // Left half runs on reversed prefixes; lengths are protein-scale so the
  // copies are cheap relative to the DP.
  std::vector<Residue> qrev(query.begin(), query.begin() + qm);
  std::vector<Residue> srev(subject.begin(), subject.begin() + sm);
  std::reverse(qrev.begin(), qrev.end());
  std::reverse(srev.begin(), srev.end());

  const GappedHalf left =
      xdrop_extend(qrev, srev, matrix, params.gap_open, params.gap_extend,
                   params.gapped_xdrop, traceback, kernel, counters);
  const GappedHalf right = xdrop_extend(
      query.subspan(qm + 1), subject.subspan(sm + 1), matrix, params.gap_open,
      params.gap_extend, params.gapped_xdrop, traceback, kernel, counters);

  GappedAlignment aln;
  aln.score = left.score + matrix(query[qm], subject[sm]) + right.score;
  aln.q_start = qm - left.q_len;
  aln.q_end = qm + 1 + right.q_len;
  aln.s_start = sm - left.s_len;
  aln.s_end = sm + 1 + right.s_len;
  aln.anchor_q = qm;
  aln.anchor_s = sm;
  if (traceback) {
    std::string ops(left.ops.rbegin(), left.ops.rend());
    ops.push_back('M');  // the anchor pair
    ops.append(right.ops);
    aln.ops = std::move(ops);
  }
  return aln;
}

Score score_of_transcript(std::span<const Residue> query,
                          std::span<const Residue> subject,
                          const GappedAlignment& aln, const ScoreMatrix& matrix,
                          Score gap_open, Score gap_extend) {
  Score total = 0;
  std::size_t qi = aln.q_start;
  std::size_t si = aln.s_start;
  char prev = 'M';
  for (const char op : aln.ops) {
    switch (op) {
      case 'M':
        total += matrix(query[qi], subject[si]);
        ++qi;
        ++si;
        break;
      case 'I':  // gap in subject: query residue unmatched
        total -= (prev == 'I') ? gap_extend : gap_open + gap_extend;
        ++qi;
        break;
      case 'D':  // gap in query: subject residue unmatched
        total -= (prev == 'D') ? gap_extend : gap_open + gap_extend;
        ++si;
        break;
      default:
        throw Error("invalid transcript op");
    }
    prev = op;
  }
  MUBLASTP_CHECK(qi == aln.q_end && si == aln.s_end,
                 "transcript does not span the alignment coordinates");
  return total;
}

}  // namespace mublastp
