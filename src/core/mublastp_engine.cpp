#include "core/mublastp_engine.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/timer.hpp"
#include "core/fragment_assembly.hpp"
#include "core/ungapped.hpp"
#include "sort/radix.hpp"
#include "trace/trace.hpp"

namespace mublastp {
namespace {

// Validates before any member initializer dereferences params.matrix.
const SearchParams& checked_params(const SearchParams& p) {
  p.validate();
  return p;
}

}  // namespace

std::uint64_t MuBlastpEngine::Workspace::footprint_bytes() const {
  return static_cast<std::uint64_t>(state.footprint_bytes()) +
         records.capacity() * sizeof(HitRecord) +
         rec_scratch.capacity() * sizeof(HitRecord) +
         scan_entries.capacity() * sizeof(std::uint32_t) +
         bases.capacity() * sizeof(std::uint32_t) +
         profile.footprint_bytes() +
         pending.capacity() * sizeof(PendingExt) +
         batch.capacity() * sizeof(simd::BatchHit) +
         batch_out.capacity() * sizeof(UngappedSeg);
}

bool MuBlastpEngine::Workspace::enforce_budget() {
  if (mem_budget == 0 || footprint_bytes() <= mem_budget) return false;
  ++mem_trips;
  // Drop every retained buffer outright (moving from an empty temporary
  // releases capacity, unlike clear()). The next round reallocates exactly
  // what it needs; only cross-round retention is sacrificed.
  state = DiagState{};
  records = {};
  rec_scratch = {};
  scan_entries = {};
  bases = {};
  records_hwm = 0;
  profile = simd::QueryProfile{};
  pending = {};
  batch = {};
  batch_out = {};
  return true;
}

MuBlastpEngine::MuBlastpEngine(DbIndexView index, SearchParams params,
                               MuBlastpOptions options)
    : view_(std::move(index)),
      params_(checked_params(params)),
      options_(options),
      karlin_(gapped_params(*params.matrix, params.gap_open,
                            params.gap_extend)) {
  MUBLASTP_CHECK(params_.matrix == view_.config().matrix,
                 "search matrix must match the index's neighbor matrix");
}

void MuBlastpEngine::sort_records(std::vector<HitRecord>& records,
                                  int key_bits) const {
  const auto key = [](const HitRecord& r) { return r.key; };
  switch (options_.sort_algo) {
    case MuBlastpOptions::SortAlgo::kRadixLsd:
      sorting::radix_sort_lsd(records, key, key_bits);
      break;
    case MuBlastpOptions::SortAlgo::kRadixMsd:
      sorting::radix_sort_msd(records, key, key_bits);
      break;
    case MuBlastpOptions::SortAlgo::kMergeSort:
      sorting::merge_sort(records, key);
      break;
    case MuBlastpOptions::SortAlgo::kStdStable:
      std::stable_sort(records.begin(), records.end(),
                       [](const HitRecord& a, const HitRecord& b) {
                         return a.key < b.key;
                       });
      break;
  }
}

template <typename Mem, typename Rec>
void MuBlastpEngine::search_block(std::span<const Residue> query,
                                  const DbBlockView& block,
                                  std::uint32_t block_id, StageStats& stats,
                                  std::vector<UngappedAlignment>& out,
                                  Workspace& ws, const FlatNeighborhood* flat,
                                  Mem mem, Rec prec) const {
  const ScoreMatrix& matrix = *params_.matrix;
  const DbIndexView& db = view_;
  const NeighborTable& neighbors = view_.neighbors();

  // Dense per-block diagonal keys: fragment f owns [bases[f], bases[f+1]),
  // with bases[f+1] - bases[f] = len_f + qlen + 1 diagonals. The key is
  // simultaneously (a) the index into the last-hit array and (b) the radix
  // sort key — compact keys mean fewer radix passes and a last-hit array of
  // ~2x the block's position bytes, the footprint Section V-B budgets for.
  const std::uint32_t qlen = static_cast<std::uint32_t>(query.size());
  MUBLASTP_CHECK_KIND(!MUBLASTP_FI_FAIL("alloc.workspace"),
                      ErrorKind::kResource,
                      "injected workspace allocation failure"
                      " (alloc.workspace)");
  ws.bases.assign(block.fragments().size() + 1, 0);
  for (std::size_t f = 0; f < block.fragments().size(); ++f) {
    ws.bases[f + 1] = ws.bases[f] + block.fragments()[f].len + qlen + 1;
  }
  MUBLASTP_CHECK(ws.bases.back() < (std::uint32_t{1} << 31),
                 "block too large: diagonal key exceeds 31 bits");
  const int key_bits =
      std::max(1, static_cast<int>(std::bit_width(ws.bases.back() - 1)));

  ws.state.resize(ws.bases.back());
  ws.state.new_round(static_cast<std::int32_t>(qlen) + 1);
  ws.records.clear();
  if (ws.records.capacity() < ws.records_hwm) {
    ws.records.reserve(ws.records_hwm);
  }
  [[maybe_unused]] StageStats before;
  if constexpr (Rec::kEnabled) before = stats;
  stats::LapTimer<Rec::kEnabled> lap;
  prec.mark();

  // ---- Stage 1: hit detection (+ pre-filter with Algorithm 2). --------
  // Only index structures and the last-hit array are touched here — no
  // subject residues — which is why the pre-filter does not reintroduce the
  // cache-thrash it removes from the sort (Section IV-C).
  //
  // Two implementations, bit-identical by construction and by test:
  //   - the query-specialized path (flat != nullptr, vector kernel, never
  //     traced): the pre-built FlatNeighborhood replaces word_key + the
  //     neighbor-table indirection, the next posting list is prefetched
  //     while the current one scans, and each posting list runs through the
  //     chunked hit-scan kernels (decode + last-hit prefetch + vector
  //     two-hit prefilter);
  //   - the classic two-level scan below, which stays the authoritative
  //     reference (scalar kernel and memsim-traced runs always take it).
  bool use_flat = false;
  if constexpr (!Mem::kEnabled) {
    use_flat = flat != nullptr && options_.kernel != simd::KernelPath::kScalar;
  }
  if (use_flat) {
    simd::HitScanTallies tallies;
    const simd::HitScanFilter filter{ws.state.raw_last(), ws.state.base(),
                                     params_.two_hit_min,
                                     params_.two_hit_window};
    const std::uint32_t npos = flat->positions();
    for (std::uint32_t qoff = 0; qoff < npos; ++qoff) {
      const auto words = flat->words(qoff);
      // Fuse this position's posting lists into ONE scan. Distinct words
      // index disjoint (fragment, offset) sets, so at a fixed qoff the
      // fused keys stay pairwise distinct (the kernel's conflict-freedom
      // precondition), and concatenating in word order preserves the
      // classic visit order — and thus the record stream — exactly. The
      // payoff is depth: one kernel call over the position's whole
      // neighborhood (often hundreds of entries) instead of dozens of
      // sub-chunk-sized lists, so the chunked last-hit prefetch actually
      // runs ahead of the filter.
      ws.scan_entries.clear();
      for (std::size_t wi = 0; wi < words.size(); ++wi) {
        const auto entries = block.entries(words[wi]);
        if (wi + 1 < words.size()) {
          __builtin_prefetch(block.entries(words[wi + 1]).data());
        }
        ws.scan_entries.insert(ws.scan_entries.end(), entries.begin(),
                               entries.end());
      }
      if (ws.scan_entries.empty()) continue;
      stats.hits += ws.scan_entries.size();
      const simd::HitScan scan{ws.scan_entries.data(),
                               ws.scan_entries.size(),
                               ws.bases.data(),
                               block.offset_bits(),
                               qoff,
                               qlen - qoff};
      if (options_.prefilter) {
        if (ws.rec_scratch.size() < scan.count) {
          ws.rec_scratch.resize(scan.count);
        }
        const std::size_t cnt = simd::hit_scan_prefilter(
            options_.kernel, scan, filter, ws.rec_scratch.data(), &tallies);
        stats.hit_pairs += cnt;
        ws.records.insert(ws.records.end(), ws.rec_scratch.begin(),
                          ws.rec_scratch.begin() +
                              static_cast<std::ptrdiff_t>(cnt));
      } else {
        const std::size_t old = ws.records.size();
        ws.records.resize(old + scan.count);
        simd::hit_scan_collect(options_.kernel, scan,
                               ws.records.data() + old, &tallies);
      }
    }
    if constexpr (Rec::kEnabled) {
      prec.hit_kernel({0, 0.0, tallies.tiles, tallies.tail_entries});
    }
  } else {
    for (std::uint32_t qoff = 0; qoff + kWordLength <= query.size(); ++qoff) {
      if constexpr (Mem::kEnabled) {
        mem.touch(query.data() + qoff, kWordLength);
      }
      const std::uint32_t w = word_key(query.data() + qoff);
      const auto nbs = neighbors.neighbors(w);
      if constexpr (Mem::kEnabled) {
        mem.touch(nbs.data(), nbs.size_bytes());
      }
      for (const std::uint32_t nb : nbs) {
        const auto entries = block.entries(nb);
        if constexpr (Mem::kEnabled) {
          mem.touch(entries.data(), entries.size_bytes());
        }
        for (const std::uint32_t entry : entries) {
          ++stats.hits;
          const std::uint32_t local = block.entry_fragment(entry);
          const std::uint32_t soff = block.entry_offset(entry);
          const std::uint32_t key = ws.bases[local] +
                                    static_cast<std::uint32_t>(
                                        static_cast<std::int64_t>(soff) -
                                        qoff + qlen);

          if (options_.prefilter) {
            const std::int32_t q = static_cast<std::int32_t>(qoff);
            const std::int32_t last = ws.state.last_hit(key, mem);
            if (last != DiagState::kNone && q - last < params_.two_hit_min) {
              continue;  // overlapping hit: ignored
            }
            const bool paired = last != DiagState::kNone &&
                                q - last < params_.two_hit_window;
            ws.state.set_last_hit(key, q, mem);
            if (!paired) continue;
            ++stats.hit_pairs;
          }
          ws.records.push_back({key, qoff});
          if constexpr (Mem::kEnabled) {
            mem.touch(&ws.records.back(), sizeof(HitRecord));
          }
        }
      }
    }
  }

  // ---- Stage 2a: hit reordering. ---------------------------------------
  const double detect_sec = lap.lap();
  prec.mark();
  ws.records_hwm = std::max(ws.records_hwm, ws.records.size());
  stats.sorted_records += ws.records.size();
  if constexpr (Mem::kEnabled) {
    // The sort streams the buffer once per digit (read + write); model that
    // traffic so traced miss rates account for it.
    const int passes = (key_bits + sorting::kRadixBits - 1) / sorting::kRadixBits;
    for (int p = 0; p < passes; ++p) {
      for (const HitRecord& r : ws.records) {
        mem.touch(&r, sizeof(HitRecord));
      }
    }
  }
  sort_records(ws.records, key_bits);
  const double sort_sec = lap.lap();
  prec.mark();
  MUBLASTP_CHECK(!MUBLASTP_FI_FAIL("stage.ungapped"),
                 "injected ungapped-stage failure (stage.ungapped)");

  // ---- Stage 2b: (post-)filter + ungapped extension in sorted order. ---
  // Without the pre-filter this is Algorithm 1: pair detection runs here,
  // over the sorted stream, with plain scalars instead of arrays. Keys are
  // ascending, so the owning fragment is recovered with a monotone cursor.
  std::uint32_t frag_cursor = 0;
  std::uint32_t pair_key = ~std::uint32_t{0};
  std::int32_t pair_last = DiagState::kNone;
  std::uint32_t ext_key = ~std::uint32_t{0};
  std::int32_t ext_reached = DiagState::kNone;

  // With a SIMD kernel selected, eligible extensions are deferred into a
  // small batch and flushed together. Keys are ascending, so a dependency
  // (a later record needing the coverage state a pending extension will
  // write) can only arise on an equal key — the flush below handles it.
  // Traced runs never batch: the scalar kernel's access stream is the one
  // the memory model must see.
  bool use_simd = false;
  if constexpr (!Mem::kEnabled) {
    use_simd = options_.vector_ungapped &&
               options_.kernel != simd::KernelPath::kScalar;
    if (use_simd) ws.profile.build(query, matrix);
  }
  constexpr std::size_t kExtBatch = 16;
  const auto flush_batch = [&]() {
    ws.batch_out.resize(ws.batch.size());
    simd::ungapped_extend_batch(options_.kernel, query, ws.profile, matrix,
                                params_.ungapped_xdrop, ws.batch,
                                ws.batch_out.data());
    // Apply in record order: output order, counters, and the coverage state
    // end up exactly as the scalar loop leaves them.
    for (std::size_t i = 0; i < ws.pending.size(); ++i) {
      const PendingExt& p = ws.pending[i];
      const UngappedSeg& seg = ws.batch_out[i];
      ext_key = p.key;
      if (seg.score >= params_.ungapped_cutoff) {
        ++stats.ungapped_alignments;
        const FragmentRef& frag = block.fragments()[p.frag];
        out.push_back(resolve_fragment_segment(query, db, frag, seg, p.qoff,
                                               p.soff, matrix, params_));
        ext_reached = static_cast<std::int32_t>(seg.q_end);
      } else {
        ext_reached = static_cast<std::int32_t>(p.qoff);
      }
    }
    ws.pending.clear();
    ws.batch.clear();
  };

  for (const HitRecord& rec : ws.records) {
    if constexpr (Mem::kEnabled) {
      mem.touch(&rec, sizeof(HitRecord));
    }
    if (!options_.prefilter) {
      // Pair detection over the sorted stream (Algorithm 1 lines 7-14).
      const std::int32_t q = static_cast<std::int32_t>(rec.qoff);
      const bool same = rec.key == pair_key;
      const std::int32_t last = same ? pair_last : DiagState::kNone;
      if (last != DiagState::kNone && q - last < params_.two_hit_min) {
        continue;  // overlapping hit: ignored
      }
      pair_key = rec.key;
      pair_last = q;
      const bool paired =
          last != DiagState::kNone && q - last < params_.two_hit_window;
      if (!paired) continue;
      ++stats.hit_pairs;
    }

    // A record on a pending extension's diagonal must observe that
    // extension's coverage state before its own check runs.
    if (use_simd && !ws.pending.empty() &&
        rec.key == ws.pending.back().key) {
      flush_batch();
    }

    // Coverage check (Algorithm 1 lines 16-17).
    if (rec.key != ext_key) {
      ext_key = rec.key;
      ext_reached = DiagState::kNone;
    }
    if (ext_reached != DiagState::kNone &&
        ext_reached > static_cast<std::int32_t>(rec.qoff)) {
      continue;
    }

    while (rec.key >= ws.bases[frag_cursor + 1]) ++frag_cursor;
    const std::uint32_t diag_idx = rec.key - ws.bases[frag_cursor];
    const std::uint32_t soff = diag_idx + rec.qoff - qlen;

    ++stats.extensions;
    const FragmentRef& frag = block.fragments()[frag_cursor];
    const std::span<const Residue> subject =
        db.sequence(frag.seq).subspan(frag.start, frag.len);
    if (use_simd) {
      ws.pending.push_back({rec.key, rec.qoff, soff, frag_cursor});
      ws.batch.push_back({subject.data(),
                          static_cast<std::uint32_t>(subject.size()),
                          rec.qoff, soff});
      if (ws.pending.size() >= kExtBatch) flush_batch();
      continue;
    }
    const UngappedSeg seg = ungapped_extend(query, subject, rec.qoff, soff,
                                            matrix, params_.ungapped_xdrop,
                                            mem);
    if (seg.score >= params_.ungapped_cutoff) {
      ++stats.ungapped_alignments;
      out.push_back(resolve_fragment_segment(query, db, frag, seg, rec.qoff,
                                             soff, matrix, params_));
      ext_reached = static_cast<std::int32_t>(seg.q_end);
    } else {
      ext_reached = static_cast<std::int32_t>(rec.qoff);
    }
  }
  if (use_simd && !ws.pending.empty()) flush_batch();
  if constexpr (Rec::kEnabled) {
    prec.workspace(ws.footprint_bytes());
    prec.block_round(block_id, stats::counters_between(stats, before),
                     detect_sec, sort_sec, lap.lap());
  }
}

template <typename Mem, typename Rec>
QueryResult MuBlastpEngine::search_impl(std::span<const Residue> query,
                                        Mem mem, Rec prec) const {
  MUBLASTP_CHECK(query.size() >= static_cast<std::size_t>(kWordLength),
                 "query shorter than word length");
  QueryResult result;
  std::vector<UngappedAlignment> ungapped;
  Workspace ws;
  // Query-setup: flatten the neighbor lookup once, reused by every block.
  // Traced runs skip it (the modeled access stream is the classic scan's).
  FlatNeighborhood flat;
  const FlatNeighborhood* flatp = nullptr;
  if constexpr (!Mem::kEnabled) {
    if (options_.kernel != simd::KernelPath::kScalar) {
      stats::LapTimer<Rec::kEnabled> flat_lap;
      prec.mark();
      flat.build(query, view_.neighbors());
      flatp = &flat;
      if constexpr (Rec::kEnabled) {
        prec.hit_kernel({1, flat_lap.lap(), 0, 0});
      }
    }
  }
  std::uint32_t block_id = 0;
  for (const DbBlockView& block : view_.blocks()) {
    search_block(query, block, block_id++, result.stats, ungapped, ws, flatp,
                 mem, prec);
  }

  for (UngappedAlignment& u : ungapped) {
    u.subject = view_.original_id(u.subject);
  }
  canonicalize_ungapped(ungapped);
  result.ungapped = ungapped;

  const ScoreMatrix& matrix = *params_.matrix;
  const SubjectLookup lookup = [this](SeqId original) {
    return view_.sequence(view_.sorted_id(original));
  };
  [[maybe_unused]] StageStats before;
  if constexpr (Rec::kEnabled) before = result.stats;
  stats::LapTimer<Rec::kEnabled> lap;
  prec.mark();
  // Traced runs keep the scalar gapped DP (same reasoning as stage 2b:
  // the modeled access stream must be the reference one).
  const simd::KernelPath gapped_kernel =
      Mem::kEnabled ? simd::KernelPath::kScalar : options_.kernel;
  auto gapped = gapped_stage(query, lookup, std::move(ungapped), matrix,
                             params_, &result.stats, gapped_kernel);
  if constexpr (Rec::kEnabled) {
    prec.add(stats::counters_between(result.stats, before));
    prec.stage(stats::Stage::kGapped, lap.lap());
  }
  result.alignments =
      finalize_stage(query, lookup, std::move(gapped), matrix, params_,
                     karlin_, statistical_db_residues());
  if constexpr (Rec::kEnabled) prec.stage(stats::Stage::kFinalize, lap.lap());
  return result;
}

QueryResult MuBlastpEngine::search(std::span<const Residue> query) const {
  return search_impl(query, memsim::NullMemoryModel{},
                     stats::NullStats::Recorder{});
}

QueryResult MuBlastpEngine::search(std::span<const Residue> query,
                                   stats::PipelineStats& ps) const {
  ps.begin_run(1, view_.blocks().size(), 1);
  ps.set_kernel(simd::kernel_name(options_.kernel));
  Timer total;
  QueryResult result =
      search_impl(query, memsim::NullMemoryModel{}, ps.recorder(0));
  ps.set_gapped_kernel({result.stats.gapped_int8_runs,
                        result.stats.gapped_int16_reruns,
                        result.stats.gapped_scalar_fallbacks});
  ps.finish_run(total.seconds());
  return result;
}

QueryResult MuBlastpEngine::search_traced(std::span<const Residue> query,
                                          memsim::MemoryHierarchy& mem) const {
  return search_impl(query, memsim::TracingMemoryModel(mem),
                     stats::NullStats::Recorder{});
}

QueryResult MuBlastpEngine::search(std::span<const Residue> query,
                                   std::uint32_t query_id,
                                   trace::Tracer& tracer) const {
  return search_impl(
      query, memsim::NullMemoryModel{},
      trace::TracingRecorder(stats::NullStats::Recorder{}, &tracer,
                             query_id));
}

template <typename PS, bool Traced>
std::vector<QueryResult> MuBlastpEngine::batch_impl(
    const SequenceStore& queries, int threads, PS* ps,
    stats::DegradedStats* degraded, trace::Tracer* tracer) const {
  MUBLASTP_CHECK(threads > 0, "thread count must be positive");
  // Recorder and tail-timer guards fire when either collector is active;
  // span recording needs the stage boundaries evaluated even without stats.
  constexpr bool kObserve = PS::kEnabled || Traced;
  const auto recorder_for = [&](int tid, std::uint32_t query) {
    (void)tid;
    (void)query;
    if constexpr (Traced) {
      if constexpr (PS::kEnabled) {
        return trace::TracingRecorder(ps->recorder(tid), tracer, query);
      } else {
        return trace::TracingRecorder(stats::NullStats::Recorder{}, tracer,
                                      query);
      }
    } else if constexpr (PS::kEnabled) {
      return ps->recorder(tid);
    } else {
      return stats::NullStats::Recorder{};
    }
  };
  const std::size_t nq = queries.size();
  std::vector<QueryResult> results(nq);
  std::vector<std::vector<UngappedAlignment>> ungapped(nq);

  const int max_threads = std::max(threads, 1);
  std::vector<Workspace> workspaces(static_cast<std::size_t>(max_threads));
  if (options_.mem_budget_bytes != 0) {
    const std::uint64_t share =
        std::max<std::uint64_t>(1, options_.mem_budget_bytes /
                                       workspaces.size());
    for (Workspace& ws : workspaces) ws.mem_budget = share;
  }
  [[maybe_unused]] Timer run_timer;
  if constexpr (PS::kEnabled) {
    ps->begin_run(max_threads, view_.blocks().size(), nq);
    ps->set_kernel(simd::kernel_name(options_.kernel));
  }

  // Query-setup (the flattened-lookup specialization): one FlatNeighborhood
  // per query, built before the block loop so every (block, query) round
  // reuses it. Scalar-kernel batches skip the tables entirely — their
  // stage 1 runs the classic two-level scan unchanged.
  std::vector<FlatNeighborhood> flats;
  if (options_.kernel != simd::KernelPath::kScalar) {
    stats::LapTimer<kObserve> flat_lap;
    auto frec = recorder_for(0, trace::kNoId);
    frec.mark();
    flats.resize(nq);
    for (std::size_t i = 0; i < nq; ++i) {
      flats[i].build(queries.sequence(static_cast<SeqId>(i)),
                     view_.neighbors());
    }
    if constexpr (kObserve) {
      frec.hit_kernel(
          {static_cast<std::uint64_t>(nq), flat_lap.lap(), 0, 0});
    }
  }

  // Degraded-mode bookkeeping. `marks[i]` snapshots ungapped[i].size()
  // before each block so a failing block's partial contributions can be
  // purged (blocks run serially; appends are contiguous tails). `tripped`
  // marks queries cut off by the per-query time budget; each slot is only
  // written by the thread that owns query i for the current block.
  const double time_budget = options_.time_budget_seconds;
  std::vector<std::size_t> marks(nq, 0);
  std::vector<double> elapsed(nq, 0.0);
  std::vector<char> tripped(nq, 0);

  // Algorithm 3, first parallel region: stages 1-2, block loop outermost so
  // the block's index is shared in cache across threads. Each query is one
  // dynamic task; a query's accumulator is only ever touched by the thread
  // that owns it for the current block, and blocks are processed serially,
  // so no synchronization is needed. Telemetry follows the same discipline:
  // threads write private accumulators, merged at each block's end.
  //
  // Exceptions must not escape an OpenMP region (that terminates the
  // process), so the loop body catches everything; the first exception is
  // kept and the region drains. Afterwards: strict mode rethrows, degraded
  // mode quarantines the block and keeps going.
  std::uint32_t block_id = 0;
  for (const DbBlockView& block : view_.blocks()) {
    for (std::size_t i = 0; i < nq; ++i) marks[i] = ungapped[i].size();
    std::exception_ptr block_error = nullptr;
    std::atomic<bool> block_failed{false};
#pragma omp parallel for schedule(dynamic) num_threads(threads)
    for (std::size_t i = 0; i < nq; ++i) {
      if (tripped[i] || block_failed.load(std::memory_order_relaxed)) {
        continue;
      }
      const int tid = omp_get_thread_num();
      Workspace& ws = workspaces[static_cast<std::size_t>(tid)];
      Timer query_timer;
      try {
        const FlatNeighborhood* flat = flats.empty() ? nullptr : &flats[i];
        search_block(queries.sequence(static_cast<SeqId>(i)), block,
                     block_id, results[i].stats, ungapped[i], ws, flat,
                     memsim::NullMemoryModel{},
                     recorder_for(tid, static_cast<std::uint32_t>(i)));
      } catch (...) {
#pragma omp critical(mublastp_batch_error)
        {
          if (block_error == nullptr) block_error = std::current_exception();
        }
        block_failed.store(true, std::memory_order_relaxed);
      }
      ws.enforce_budget();
      if (time_budget > 0.0) {
        elapsed[i] += query_timer.seconds();
        if (elapsed[i] > time_budget) tripped[i] = 1;
      }
    }
    if (block_error != nullptr) {
      if (degraded == nullptr) std::rethrow_exception(block_error);
      // Quarantine: purge every query's contribution from this block so the
      // output is exactly "the surviving blocks' hits", then continue.
      for (std::size_t i = 0; i < nq; ++i) ungapped[i].resize(marks[i]);
      std::string reason = "worker failed";
      try {
        std::rethrow_exception(block_error);
      } catch (const std::exception& e) {
        reason = e.what();
      } catch (...) {
      }
      degraded->quarantined.push_back({block_id, std::move(reason)});
      degraded->partial = true;
    }
    if constexpr (PS::kEnabled) ps->merge_block(block_id);
    if constexpr (Traced) tracer->flush();
    if (options_.progress) {
      MuBlastpOptions::BatchProgress p;
      p.blocks_done = block_id + 1;
      p.blocks_total = static_cast<std::uint32_t>(view_.blocks().size());
      p.queries = nq;
      p.quarantined_blocks =
          degraded == nullptr ? 0 : degraded->quarantined.size();
      options_.progress(p);
    }
    ++block_id;
  }

  if (time_budget > 0.0) {
    std::uint64_t trips = 0;
    for (std::size_t i = 0; i < nq; ++i) trips += tripped[i] != 0;
    if (trips != 0) {
      MUBLASTP_CHECK_KIND(degraded != nullptr, ErrorKind::kCanceled,
                          "query exceeded the time budget of " +
                              std::to_string(time_budget) + "s");
      degraded->time_budget_trips += trips;
      degraded->partial = true;
    }
  }
  if (degraded != nullptr) {
    for (const Workspace& ws : workspaces) {
      degraded->mem_budget_trips += ws.mem_trips;
    }
  }

  // Algorithm 3, second parallel region: stages 3-4 per query (gapped
  // extension, merge, sort, traceback).
  const ScoreMatrix& matrix = *params_.matrix;
  const SubjectLookup lookup = [this](SeqId original) {
    return view_.sequence(view_.sorted_id(original));
  };
  std::exception_ptr tail_error = nullptr;
#pragma omp parallel for schedule(dynamic) num_threads(threads)
  for (std::size_t i = 0; i < nq; ++i) {
    try {
      auto& u = ungapped[i];
      for (UngappedAlignment& seg : u) {
        seg.subject = view_.original_id(seg.subject);
      }
      canonicalize_ungapped(u);
      results[i].ungapped = u;
      // A time-tripped query stops after stages 1-2: its ungapped hits are
      // reported, the gapped stage is skipped (that is the cut-off).
      if (tripped[i]) continue;
      const std::span<const Residue> query =
          queries.sequence(static_cast<SeqId>(i));
      [[maybe_unused]] StageStats before;
      if constexpr (PS::kEnabled) before = results[i].stats;
      stats::LapTimer<kObserve> lap;
      auto prec = recorder_for(omp_get_thread_num(),
                               static_cast<std::uint32_t>(i));
      prec.mark();
      auto gapped = gapped_stage(query, lookup, std::move(u), matrix,
                                 params_, &results[i].stats, options_.kernel);
      if constexpr (kObserve) {
        if constexpr (PS::kEnabled) {
          prec.add(stats::counters_between(results[i].stats, before));
        }
        prec.stage(stats::Stage::kGapped, lap.lap());
      }
      results[i].alignments =
          finalize_stage(query, lookup, std::move(gapped), matrix, params_,
                         karlin_, statistical_db_residues());
      if constexpr (kObserve) prec.stage(stats::Stage::kFinalize, lap.lap());
    } catch (...) {
#pragma omp critical(mublastp_batch_error)
      {
        if (tail_error == nullptr) tail_error = std::current_exception();
      }
    }
  }
  // Stage-3/4 failures have no block to quarantine; fail the batch cleanly
  // (the catch above only exists so the exception cannot escape the OpenMP
  // region, which would terminate the process).
  if (tail_error != nullptr) std::rethrow_exception(tail_error);
  if constexpr (Traced) tracer->flush();
  if constexpr (PS::kEnabled) {
    stats::GappedKernelStats gk;
    for (const QueryResult& r : results) {
      gk.int8_runs += r.stats.gapped_int8_runs;
      gk.int16_reruns += r.stats.gapped_int16_reruns;
      gk.scalar_fallbacks += r.stats.gapped_scalar_fallbacks;
    }
    ps->set_gapped_kernel(gk);
    ps->finish_run(run_timer.seconds());
  }
  return results;
}

std::vector<QueryResult> MuBlastpEngine::search_batch(
    const SequenceStore& queries, int threads, stats::PipelineStats* ps,
    stats::DegradedStats* degraded, trace::Tracer* tracer) const {
  stats::NullStats* off = nullptr;
  if (tracer != nullptr) {
    if (ps != nullptr) {
      return batch_impl<stats::PipelineStats, true>(queries, threads, ps,
                                                    degraded, tracer);
    }
    return batch_impl<stats::NullStats, true>(queries, threads, off, degraded,
                                              tracer);
  }
  if (ps != nullptr) {
    return batch_impl<stats::PipelineStats, false>(queries, threads, ps,
                                                   degraded, nullptr);
  }
  return batch_impl<stats::NullStats, false>(queries, threads, off, degraded,
                                             nullptr);
}

}  // namespace mublastp
