// Per-query score profile (the "query profile" of striped Smith-Waterman
// and of vectorized seed extension).
//
// A 24x24 ScoreMatrix lookup matrix(query[qi], subject[si]) needs the query
// residue loaded before the score can be gathered. The profile hoists that
// load out of every inner loop by materializing, once per query, the table
//
//   profile[(qi << kResidueShift) | s]  =  matrix(query[qi], s)
//
// i.e. one 32-slot row per query position (24 residues, padded to a
// power-of-two stride so the index is an OR, not a multiply). Inner loops
// then index the profile with (qi, subject residue) only: the query residue
// never needs to be read again, and for a vector of consecutive query
// positions the row offsets form a computable ramp — which is what lets the
// AVX2 ungapped kernel score 8 positions with a single gather.
//
// The entries are plain Score (int32) — exactly the values ScoreMatrix
// returns — so kernels using the profile are bit-identical to kernels using
// the matrix by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/alphabet.hpp"
#include "score/matrix.hpp"

namespace mublastp::simd {

/// log2 of the per-position row stride (32 >= kAlphabetSize).
inline constexpr int kResidueShift = 5;
inline constexpr std::uint32_t kProfileStride = 1u << kResidueShift;

/// Position-major per-query score table. Rebuilt lazily: build() is a no-op
/// when the profile already describes the same (query, matrix) pair, so
/// per-block engine loops can call it unconditionally.
class QueryProfile {
 public:
  /// (Re)builds the table for `query` under `matrix`. Cost: qlen * 24
  /// matrix reads, paid once per (query, matrix) change.
  void build(std::span<const Residue> query, const ScoreMatrix& matrix);

  bool built_for(std::span<const Residue> query,
                 const ScoreMatrix& matrix) const {
    return query_data_ == query.data() && query_len_ == query.size() &&
           matrix_ == &matrix;
  }

  /// Score of (query position qi, subject residue s); identical to
  /// matrix(query[qi], s) for s < kAlphabetSize.
  Score at(std::uint32_t qi, Residue s) const {
    return rows_[(static_cast<std::size_t>(qi) << kResidueShift) | s];
  }

  /// The flat table, size() == query length * kProfileStride. Padding slots
  /// (residue indices >= kAlphabetSize) are zero and never indexed: encoded
  /// residues are < kAlphabetSize by construction.
  const Score* data() const { return rows_.data(); }
  std::size_t query_length() const { return query_len_; }

  /// Bytes retained by the table (capacity, for workspace accounting).
  std::uint64_t footprint_bytes() const {
    return static_cast<std::uint64_t>(rows_.capacity()) * sizeof(Score);
  }

 private:
  std::vector<Score> rows_;
  const Residue* query_data_ = nullptr;
  std::size_t query_len_ = 0;
  const ScoreMatrix* matrix_ = nullptr;
};

}  // namespace mublastp::simd
