// Internals shared by the dispatcher and the per-ISA translation units.
//
// The ungapped kernel is expressed as two directional x-drop sweeps over a
// common coordinate system: sweep position t scores query position
// q0 + dir*t against subject position s0 + dir*t, for t in [0, len). The
// scalar recurrence per position is exactly the one in core/ungapped.hpp:
//
//   run += score;  if (run > best) {best = run; best_t = t;}
//   else if (best - run > xdrop) stop;
//
// The vector kernels evaluate the same recurrence a chunk of positions at a
// time: cumulative scores are a prefix sum, the running maximum a prefix
// max, and the stop condition a compare mask — the first set mask bit is
// the exact position the scalar loop would have stopped at, because a
// position that improves the running maximum has best - run == 0 and can
// never trigger the stop. Chunks always end with a scalar tail (lane
// divergence: fewer than one vector of positions left), which continues the
// identical recurrence from the carried (run, best, best_t).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/alphabet.hpp"
#include "core/ungapped.hpp"
#include "score/matrix.hpp"
#include "simd/kernels.hpp"
#include "simd/score_profile.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define MUBLASTP_SIMD_X86 1
#endif

namespace mublastp::simd::detail {

/// State of one directional sweep. best_t == -1 means "no position ever
/// improved" (the empty extension), matching the scalar kernel's
/// best_q_start/best_q_end initializers.
struct Sweep {
  Score run = 0;
  Score best = 0;
  std::int64_t best_t = -1;
};

/// The scalar recurrence over positions [t, len); used for whole sweeps on
/// the scalar path, for the scalar lead of the SIMD paths, and for
/// sub-vector tails. Returns true iff the x-drop condition stopped the
/// sweep before len.
inline bool sweep_scalar(const Score* prof, const Residue* sub,
                         std::int64_t q0, std::int64_t s0, std::int64_t dir,
                         std::int64_t len, Score xdrop, std::int64_t t,
                         Sweep& sw) {
  for (; t < len; ++t) {
    sw.run += prof[((q0 + dir * t) << kResidueShift) | sub[s0 + dir * t]];
    if (sw.run > sw.best) {
      sw.best = sw.run;
      sw.best_t = t;
    } else if (sw.best - sw.run > xdrop) {
      return true;
    }
  }
  return false;
}

/// Replays a chunk of cumulative scores vals[0..count) (vals[i] == the
/// scalar `run` at position t+i) through the scalar recurrence. Called on
/// the rare paths that need exact bookkeeping: a stop inside the chunk, or
/// a chunk that improved the running maximum.
/// Returns true iff the sweep stopped inside the chunk.
inline bool replay_chunk(const Score* vals, int count, std::int64_t t,
                         Score xdrop, Sweep& sw) {
  for (int i = 0; i < count; ++i) {
    const Score run = vals[i];
    if (run > sw.best) {
      sw.best = run;
      sw.best_t = t + i;
    } else if (sw.best - run > xdrop) {
      sw.run = run;
      return true;
    }
  }
  sw.run = vals[count - 1];
  return false;
}

/// Sweep geometry for a hit word at (qoff, soff): the left sweep starts at
/// the word's last residue (scoring the word itself), the right sweep at
/// the first residue past the word — exactly core/ungapped.hpp.
struct ExtentGeometry {
  std::int64_t lq0, ls0, llen;  ///< left sweep origin + length
  std::int64_t rq0, rs0, rlen;  ///< right sweep origin + length
};

inline ExtentGeometry extent_geometry(std::size_t qlen, std::size_t slen,
                                      std::uint32_t qoff,
                                      std::uint32_t soff) {
  ExtentGeometry g;
  g.lq0 = static_cast<std::int64_t>(qoff) + kWordLength - 1;
  g.ls0 = static_cast<std::int64_t>(soff) + kWordLength - 1;
  g.llen = std::min(g.lq0, g.ls0) + 1;
  g.rq0 = static_cast<std::int64_t>(qoff) + kWordLength;
  g.rs0 = static_cast<std::int64_t>(soff) + kWordLength;
  g.rlen = std::min(static_cast<std::int64_t>(qlen) - g.rq0,
                    static_cast<std::int64_t>(slen) - g.rs0);
  if (g.rlen < 0) g.rlen = 0;
  return g;
}

/// Builds the UngappedSeg the scalar kernel would return from the two
/// finished sweeps.
inline UngappedSeg assemble(std::uint32_t qoff, std::uint32_t soff,
                            const Sweep& left, const Sweep& right) {
  const std::int64_t qi0 = static_cast<std::int64_t>(qoff) + kWordLength - 1;
  const std::int64_t q_start =
      left.best_t >= 0 ? qi0 - left.best_t : qi0 + 1;
  const std::int64_t q_end = right.best_t >= 0
                                 ? qi0 + 1 + right.best_t + 1
                                 : qi0 + 1;
  UngappedSeg seg;
  seg.score = left.best + right.best;
  seg.q_start = static_cast<std::uint32_t>(q_start);
  seg.q_end = static_cast<std::uint32_t>(q_end);
  const std::int64_t diag =
      static_cast<std::int64_t>(soff) - static_cast<std::int64_t>(qoff);
  seg.s_start = static_cast<std::uint32_t>(q_start + diag);
  seg.s_end = static_cast<std::uint32_t>(q_end + diag);
  return seg;
}

/// Outcome of one tiered banded gapped extension attempt. tier 1 = the
/// int8 pass produced the (exact) result, tier 2 = the int16 re-run did,
/// tier 0 = both tiers saturated or were ineligible and the caller must
/// run the scalar kernel.
struct BandedOutcome {
  std::optional<GappedExtent> ext;
  std::uint8_t tier = 0;
};

#ifdef MUBLASTP_SIMD_X86

// ISA entry points. Each is compiled in its own translation unit with the
// matching -m flag and must only be called after the corresponding CPUID
// check (simd::kernel_supported).
UngappedSeg ungapped_extend_sse42(std::span<const Residue> subject,
                                  std::uint32_t qoff, std::uint32_t soff,
                                  const QueryProfile& profile, Score xdrop);
UngappedSeg ungapped_extend_avx2(std::span<const Residue> subject,
                                 std::uint32_t qoff, std::uint32_t soff,
                                 const QueryProfile& profile, Score xdrop);

// Striped Smith-Waterman (score only), int16 lanes with saturating
// arithmetic. Returns nullopt when the best score came within one matrix
// entry of int16 saturation — the caller must rerun the scalar kernel (the
// guard makes returned values exact).
std::optional<Score> sw_striped_sse42(std::span<const Residue> query,
                                      std::span<const Residue> subject,
                                      const ScoreMatrix& matrix,
                                      Score gap_open, Score gap_extend);
std::optional<Score> sw_striped_avx2(std::span<const Residue> query,
                                     std::span<const Residue> subject,
                                     const ScoreMatrix& matrix,
                                     Score gap_open, Score gap_extend);

// Banded gapped x-drop extension, tiered int8 -> int16 saturating lanes
// (see gapped_banded_impl.hpp for the shared implementation and its
// exactness argument).
BandedOutcome xdrop_banded_sse42(std::span<const Residue> a,
                                 std::span<const Residue> b,
                                 const ScoreMatrix& matrix, Score gap_open,
                                 Score gap_extend, Score xdrop);
BandedOutcome xdrop_banded_avx2(std::span<const Residue> a,
                                std::span<const Residue> b,
                                const ScoreMatrix& matrix, Score gap_open,
                                Score gap_extend, Score xdrop);

// Hit-scan kernels (chunked decode + prefetch + vector two-hit prefilter;
// see hit_prefilter_impl.hpp for the shared scalar spans and exactness
// argument). Tallies pointers may be null.
std::size_t hit_prefilter_sse42(const HitScan& scan, const HitScanFilter& f,
                                HitRecord* out, HitScanTallies* tallies);
std::size_t hit_prefilter_avx2(const HitScan& scan, const HitScanFilter& f,
                               HitRecord* out, HitScanTallies* tallies);
std::size_t hit_collect_sse42(const HitScan& scan, HitRecord* out,
                              HitScanTallies* tallies);
std::size_t hit_collect_avx2(const HitScan& scan, HitRecord* out,
                             HitScanTallies* tallies);

#endif  // MUBLASTP_SIMD_X86

}  // namespace mublastp::simd::detail
