// Public SIMD kernel API: dispatched ungapped extension (single hit and
// batched over the sorted hit buffer) and the striped Smith-Waterman score.
//
// Every entry point takes an explicit KernelPath so engines resolve the
// path once at construction; passing KernelPath::kScalar routes to the
// unchanged reference kernels, so forced-scalar runs execute exactly the
// pre-SIMD code. All paths are bit-identical — the repo's verify tool and
// equivalence tests assert it.
#pragma once

#include <optional>
#include <span>

#include "common/alphabet.hpp"
#include "core/ungapped.hpp"
#include "score/matrix.hpp"
#include "simd/dispatch.hpp"
#include "simd/score_profile.hpp"

namespace mublastp::simd {

/// One hit of a batch: the subject span it lives in plus the hit word's
/// offsets. Hits in a batch are independent (distinct diagonals), which is
/// what lets them extend back-to-back without interleaving state updates.
struct BatchHit {
  const Residue* subject = nullptr;
  std::uint32_t subject_len = 0;
  std::uint32_t qoff = 0;
  std::uint32_t soff = 0;
};

/// Extends one hit with the selected kernel. `profile` must be built for
/// the query and matrix the hit refers to; the scalar path ignores it and
/// runs the core template against `matrix` directly.
UngappedSeg ungapped_extend_one(KernelPath path,
                                std::span<const Residue> query,
                                std::span<const Residue> subject,
                                std::uint32_t qoff, std::uint32_t soff,
                                const QueryProfile& profile,
                                const ScoreMatrix& matrix, Score xdrop);

/// Extends `hits.size()` independent hits, writing out[i] for hits[i] in
/// order. Per-hit results are identical to ungapped_extend_one.
void ungapped_extend_batch(KernelPath path, std::span<const Residue> query,
                           const QueryProfile& profile,
                           const ScoreMatrix& matrix, Score xdrop,
                           std::span<const BatchHit> hits, UngappedSeg* out);

/// Result of one banded gapped x-drop extension half: the best score and
/// how many residues of each sequence the best path consumed — the
/// (score, q_len, s_len) triple of core/gapped.hpp's GappedHalf.
struct GappedExtent {
  Score score = 0;
  std::uint32_t a_len = 0;
  std::uint32_t b_len = 0;
};

/// Which tier of the banded gapped kernel produced each extension. The
/// tier choice is value-driven (saturation of the running best), so these
/// are identical across SSE4.2 and AVX2 — and all zero on scalar runs.
struct GappedKernelCounters {
  std::uint64_t int8_runs = 0;        ///< int8 first pass sufficed
  std::uint64_t int16_reruns = 0;     ///< int8 saturated; int16 re-ran it
  std::uint64_t scalar_fallbacks = 0; ///< both tiers declined; scalar ran

  friend bool operator==(const GappedKernelCounters&,
                         const GappedKernelCounters&) = default;
};

/// Banded gapped x-drop extension (score-only) via the tiered saturating
/// int8/int16 kernel: an int8 pass over the adaptive band first, an int16
/// re-run only when the running best saturated. Returns nullopt when the
/// caller must use the scalar xdrop_extend instead: path == kScalar, a
/// non-x86 build, or even the int16 tier saturating. A returned value is
/// bit-identical to the scalar kernel's (score, q_len, s_len). Counter
/// increments (when `counters` is non-null) record which tier answered.
std::optional<GappedExtent> xdrop_extend_banded(
    KernelPath path, std::span<const Residue> a, std::span<const Residue> b,
    const ScoreMatrix& matrix, Score gap_open, Score gap_extend, Score xdrop,
    GappedKernelCounters* counters = nullptr);

/// Smith-Waterman best local score via the Farrar striped int16 kernel.
/// Returns nullopt when the caller must use its scalar kernel instead:
/// path == kScalar, an empty input, or the exactness guard tripping (best
/// score within one matrix entry of int16 saturation). A returned value is
/// exact — identical to the scalar rolling-row kernel.
std::optional<Score> smith_waterman_score_striped(
    KernelPath path, std::span<const Residue> query,
    std::span<const Residue> subject, const ScoreMatrix& matrix,
    Score gap_open, Score gap_extend);

}  // namespace mublastp::simd
