// Public SIMD kernel API: dispatched ungapped extension (single hit and
// batched over the sorted hit buffer) and the striped Smith-Waterman score.
//
// Every entry point takes an explicit KernelPath so engines resolve the
// path once at construction; passing KernelPath::kScalar routes to the
// unchanged reference kernels, so forced-scalar runs execute exactly the
// pre-SIMD code. All paths are bit-identical — the repo's verify tool and
// equivalence tests assert it.
#pragma once

#include <optional>
#include <span>

#include "common/alphabet.hpp"
#include "core/ungapped.hpp"
#include "score/matrix.hpp"
#include "simd/dispatch.hpp"
#include "simd/score_profile.hpp"

namespace mublastp::simd {

/// One hit of a batch: the subject span it lives in plus the hit word's
/// offsets. Hits in a batch are independent (distinct diagonals), which is
/// what lets them extend back-to-back without interleaving state updates.
struct BatchHit {
  const Residue* subject = nullptr;
  std::uint32_t subject_len = 0;
  std::uint32_t qoff = 0;
  std::uint32_t soff = 0;
};

/// Extends one hit with the selected kernel. `profile` must be built for
/// the query and matrix the hit refers to; the scalar path ignores it and
/// runs the core template against `matrix` directly.
UngappedSeg ungapped_extend_one(KernelPath path,
                                std::span<const Residue> query,
                                std::span<const Residue> subject,
                                std::uint32_t qoff, std::uint32_t soff,
                                const QueryProfile& profile,
                                const ScoreMatrix& matrix, Score xdrop);

/// Extends `hits.size()` independent hits, writing out[i] for hits[i] in
/// order. Per-hit results are identical to ungapped_extend_one.
void ungapped_extend_batch(KernelPath path, std::span<const Residue> query,
                           const QueryProfile& profile,
                           const ScoreMatrix& matrix, Score xdrop,
                           std::span<const BatchHit> hits, UngappedSeg* out);

/// Smith-Waterman best local score via the Farrar striped int16 kernel.
/// Returns nullopt when the caller must use its scalar kernel instead:
/// path == kScalar, an empty input, or the exactness guard tripping (best
/// score within one matrix entry of int16 saturation). A returned value is
/// exact — identical to the scalar rolling-row kernel.
std::optional<Score> smith_waterman_score_striped(
    KernelPath path, std::span<const Residue> query,
    std::span<const Residue> subject, const ScoreMatrix& matrix,
    Score gap_open, Score gap_extend);

}  // namespace mublastp::simd
