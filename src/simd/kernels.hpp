// Public SIMD kernel API: dispatched ungapped extension (single hit and
// batched over the sorted hit buffer) and the striped Smith-Waterman score.
//
// Every entry point takes an explicit KernelPath so engines resolve the
// path once at construction; passing KernelPath::kScalar routes to the
// unchanged reference kernels, so forced-scalar runs execute exactly the
// pre-SIMD code. All paths are bit-identical — the repo's verify tool and
// equivalence tests assert it.
#pragma once

#include <optional>
#include <span>

#include "common/alphabet.hpp"
#include "core/hit_record.hpp"
#include "core/ungapped.hpp"
#include "score/matrix.hpp"
#include "simd/dispatch.hpp"
#include "simd/score_profile.hpp"

namespace mublastp::simd {

/// One hit of a batch: the subject span it lives in plus the hit word's
/// offsets. Hits in a batch are independent (distinct diagonals), which is
/// what lets them extend back-to-back without interleaving state updates.
struct BatchHit {
  const Residue* subject = nullptr;
  std::uint32_t subject_len = 0;
  std::uint32_t qoff = 0;
  std::uint32_t soff = 0;
};

/// Extends one hit with the selected kernel. `profile` must be built for
/// the query and matrix the hit refers to; the scalar path ignores it and
/// runs the core template against `matrix` directly.
UngappedSeg ungapped_extend_one(KernelPath path,
                                std::span<const Residue> query,
                                std::span<const Residue> subject,
                                std::uint32_t qoff, std::uint32_t soff,
                                const QueryProfile& profile,
                                const ScoreMatrix& matrix, Score xdrop);

/// Extends `hits.size()` independent hits, writing out[i] for hits[i] in
/// order. Per-hit results are identical to ungapped_extend_one.
void ungapped_extend_batch(KernelPath path, std::span<const Residue> query,
                           const QueryProfile& profile,
                           const ScoreMatrix& matrix, Score xdrop,
                           std::span<const BatchHit> hits, UngappedSeg* out);

/// Result of one banded gapped x-drop extension half: the best score and
/// how many residues of each sequence the best path consumed — the
/// (score, q_len, s_len) triple of core/gapped.hpp's GappedHalf.
struct GappedExtent {
  Score score = 0;
  std::uint32_t a_len = 0;
  std::uint32_t b_len = 0;
};

/// Which tier of the banded gapped kernel produced each extension. The
/// tier choice is value-driven (saturation of the running best), so these
/// are identical across SSE4.2 and AVX2 — and all zero on scalar runs.
struct GappedKernelCounters {
  std::uint64_t int8_runs = 0;        ///< int8 first pass sufficed
  std::uint64_t int16_reruns = 0;     ///< int8 saturated; int16 re-ran it
  std::uint64_t scalar_fallbacks = 0; ///< both tiers declined; scalar ran

  friend bool operator==(const GappedKernelCounters&,
                         const GappedKernelCounters&) = default;
};

/// Banded gapped x-drop extension (score-only) via the tiered saturating
/// int8/int16 kernel: an int8 pass over the adaptive band first, an int16
/// re-run only when the running best saturated. Returns nullopt when the
/// caller must use the scalar xdrop_extend instead: path == kScalar, a
/// non-x86 build, or even the int16 tier saturating. A returned value is
/// bit-identical to the scalar kernel's (score, q_len, s_len). Counter
/// increments (when `counters` is non-null) record which tier answered.
std::optional<GappedExtent> xdrop_extend_banded(
    KernelPath path, std::span<const Residue> a, std::span<const Residue> b,
    const ScoreMatrix& matrix, Score gap_open, Score gap_extend, Score xdrop,
    GappedKernelCounters* counters = nullptr);

/// One posting-list scan for the hit-detection kernels: the packed entries
/// of one neighbor word at one query offset, plus everything needed to
/// decode each entry to its dense diagonal key
///   key = bases[entry >> offset_bits] + (entry & mask) + key_add
/// with key_add = qlen - qoff (unsigned wraparound — identical to the
/// engines' int64 form since soff - qoff + qlen >= kWordLength > 0).
///
/// Precondition the vector kernels rely on: within one scan the decoded
/// keys are pairwise DISTINCT, so gather/scatter tiles over the last-hit
/// array are conflict-free. One posting list satisfies this with ascending
/// keys (entries are (fragment, offset) ascending and the per-fragment
/// bases leave headroom of qlen+1 keys); the engines' fused per-qoff scan
/// concatenates several lists, which stays distinct — different words
/// index disjoint (fragment, offset) sets — though no longer sorted.
struct HitScan {
  const std::uint32_t* entries = nullptr;  ///< packed posting entries
  std::size_t count = 0;
  const std::uint32_t* bases = nullptr;  ///< per-fragment diagonal key bases
  std::uint32_t offset_bits = 0;  ///< entry = fragment << offset_bits | soff
  std::uint32_t qoff = 0;         ///< query offset being scanned
  std::uint32_t key_add = 0;      ///< qlen - qoff
};

/// The two-hit automaton state for hit_scan_prefilter, in DiagState's raw
/// epoch-stamped representation (DiagState::raw_last / base): an entry is
/// valid this round iff last[key] >= base, and a recorded offset q is
/// stored as base + q. The kernels preserve that representation exactly.
struct HitScanFilter {
  std::int32_t* last = nullptr;  ///< DiagState::raw_last()
  std::int32_t base = 0;         ///< DiagState::base()
  std::int32_t min = 0;          ///< overlap bound W (SearchParams::two_hit_min)
  std::int32_t window = 0;       ///< pairing window A (two_hit_window)
};

/// Vector-tile vs scalar-tail split of the hit-scan kernels, surfaced in
/// the optional stats-v1 "hit_kernel" object. Lane widths differ between
/// paths (the AVX2 prefilter also runs 4-lane sub-tiles on short
/// remainders), so these are telemetry only — never compared across
/// kernels.
struct HitScanTallies {
  std::uint64_t tiles = 0;         ///< vector tiles processed (any width)
  std::uint64_t tail_entries = 0;  ///< entries handled by the scalar tail
};

/// Algorithm 2 hit detection over one posting list: decodes every entry's
/// diagonal key and runs the two-hit automaton (overlap-ignore, last-hit
/// update, pairing window) against `filter`, appending one HitRecord per
/// *paired* hit to `out` in entry order. Returns the number of records
/// written; `out` must have room for scan.count records (the kernels write
/// compaction slots unconditionally). Bit-identical to the engines' scalar
/// detection loop for every path, including the last-hit array contents.
std::size_t hit_scan_prefilter(KernelPath path, const HitScan& scan,
                               const HitScanFilter& filter, HitRecord* out,
                               HitScanTallies* tallies = nullptr);

/// Algorithm 1 hit detection over one posting list: decodes every entry's
/// diagonal key and appends all scan.count records to `out` in entry
/// order. Returns scan.count.
std::size_t hit_scan_collect(KernelPath path, const HitScan& scan,
                             HitRecord* out,
                             HitScanTallies* tallies = nullptr);

/// Smith-Waterman best local score via the Farrar striped int16 kernel.
/// Returns nullopt when the caller must use its scalar kernel instead:
/// path == kScalar, an empty input, or the exactness guard tripping (best
/// score within one matrix entry of int16 saturation). A returned value is
/// exact — identical to the scalar rolling-row kernel.
std::optional<Score> smith_waterman_score_striped(
    KernelPath path, std::span<const Residue> query,
    std::span<const Residue> subject, const ScoreMatrix& matrix,
    Score gap_open, Score gap_extend);

}  // namespace mublastp::simd
