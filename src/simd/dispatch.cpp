#include "simd/dispatch.hpp"

#include <atomic>

#include "common/error.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define MUBLASTP_SIMD_X86 1
#endif

namespace mublastp::simd {
namespace {

bool cpu_supports(KernelPath path) {
  switch (path) {
    case KernelPath::kScalar:
      return true;
    case KernelPath::kSse42:
#ifdef MUBLASTP_SIMD_X86
      return __builtin_cpu_supports("sse4.2") != 0;
#else
      return false;
#endif
    case KernelPath::kAvx2:
#ifdef MUBLASTP_SIMD_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

std::atomic<KernelPath>& default_slot() {
  static std::atomic<KernelPath> slot{detect_kernel()};
  return slot;
}

}  // namespace

bool kernel_supported(KernelPath path) { return cpu_supports(path); }

KernelPath detect_kernel() {
  if (cpu_supports(KernelPath::kAvx2)) return KernelPath::kAvx2;
  if (cpu_supports(KernelPath::kSse42)) return KernelPath::kSse42;
  return KernelPath::kScalar;
}

KernelPath default_kernel() { return default_slot().load(); }

void set_default_kernel(KernelPath path) {
  MUBLASTP_CHECK(kernel_supported(path),
                 "requested SIMD kernel is not supported on this CPU");
  default_slot().store(path);
}

const char* kernel_name(KernelPath path) {
  switch (path) {
    case KernelPath::kScalar:
      return "scalar";
    case KernelPath::kSse42:
      return "sse42";
    case KernelPath::kAvx2:
      return "avx2";
  }
  return "unknown";
}

KernelPath parse_kernel(const std::string& name) {
  if (name == "auto") return detect_kernel();
  if (name == "scalar") return KernelPath::kScalar;
  if (name == "sse42") return KernelPath::kSse42;
  if (name == "avx2") return KernelPath::kAvx2;
  throw Error("unknown kernel '" + name +
              "' (expected scalar, sse42, avx2 or auto)");
}

KernelSpec parse_kernel_spec(const std::string& spec) {
  KernelSpec out;
  std::string path = spec;
  const std::string::size_type plus = spec.find('+');
  if (plus != std::string::npos) {
    const std::string suffix = spec.substr(plus + 1);
    if (suffix != "ungapped") {
      throw Error("unknown kernel suffix '+" + suffix +
                  "' (only '+ungapped' is recognized)");
    }
    out.vector_ungapped = true;
    path = spec.substr(0, plus);
  }
  out.path = parse_kernel(path);
  return out;
}

}  // namespace mublastp::simd
