// Shared implementation of the banded tiered int8/int16 gapped x-drop
// kernel, instantiated by the per-ISA translation units (kernels_sse42.cpp
// and kernels_avx2.cpp) with their vector-ops traits.
//
// The kernel computes exactly the adaptive-band affine-gap x-drop DP of
// core/gapped.cpp (score-only), with two changes of representation that
// remove its irregularities without changing any observable value:
//
//   - Cells live in flat arrays of a small integer type (int8 first,
//     int16 on overflow) indexed by absolute column, instead of per-row
//     std::vectors with band-offset lambdas. "Outside the band" and
//     "pruned" collapse into one dead sentinel, the type's minimum value,
//     which saturating arithmetic makes absorbing: subtracting a positive
//     gap cost from dead stays dead, and adding a matrix entry to dead
//     cannot climb back above the x-drop survival threshold (the tier
//     eligibility rule below guarantees it). So band-bounds checks vanish
//     from the inner loop.
//
//   - Each row is split into a data-parallel phase and a serial phase.
//     Phase A evaluates the vertical (F) and diagonal recurrences for the
//     whole band with saturating vector adds/subs/max — these depend only
//     on the previous row. Phase B walks the band once, serially, adding
//     the horizontal (E) chain, the x-drop prune, band bookkeeping and the
//     best-cell update — the exact control flow of the scalar kernel, on
//     values the vectors produced.
//
// Exactness argument (why every returned value is bit-identical to the
// scalar kernel): saturating arithmetic only clamps at the type limits.
// A bottom-clamped value equals the dead sentinel, and the true value it
// replaced was even lower; both are below the x-drop survival threshold
// (best - xdrop >= -xdrop > dead + max_matrix_score, by eligibility), so
// both would be pruned to dead — the observable state is identical. A
// top-clamped value saturates the running best at the type maximum, which
// is precisely the overflow trigger: the whole pass is discarded and the
// next tier re-runs it. Every surviving cell is therefore exact.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/alphabet.hpp"
#include "score/matrix.hpp"
#include "simd/kernels.hpp"
#include "simd/score_profile.hpp"
#include "simd/simd_internal.hpp"

namespace mublastp::simd::detail {

/// A tier is eligible when its arithmetic provably reproduces the scalar
/// DP: every matrix entry is representable, gap costs fit a lane, and the
/// dead sentinel cannot be revived above the x-drop survival threshold
/// (dead + max_score < -xdrop, i.e. xdrop + max_score <= lane max).
template <class Cell>
inline bool banded_tier_eligible(const ScoreMatrix& matrix, Score gap_open,
                                 Score gap_extend, Score xdrop) {
  constexpr std::int64_t kMax = std::numeric_limits<Cell>::max();
  constexpr std::int64_t kMin = std::numeric_limits<Cell>::min();
  if (gap_open < 0 || gap_extend <= 0 || xdrop < 0) return false;
  const std::int64_t open_cost =
      static_cast<std::int64_t>(gap_open) + gap_extend;
  return static_cast<std::int64_t>(xdrop) + matrix.max_score() <= kMax &&
         open_cost <= kMax && gap_extend <= kMax &&
         matrix.max_score() <= kMax && matrix.min_score() >= kMin;
}

template <class Cell>
inline Cell sat_cell(std::int64_t v) {
  constexpr std::int64_t kMax = std::numeric_limits<Cell>::max();
  constexpr std::int64_t kMin = std::numeric_limits<Cell>::min();
  return static_cast<Cell>(v < kMin ? kMin : (v > kMax ? kMax : v));
}

/// Flat per-thread DP rows, grown monotonically; idx(j) = j + 1 so the
/// virtual column -1 has a slot, plus one vector of slack for the phase-A
/// overshoot (lanes past the band are computed and ignored).
template <class Cell>
struct BandedWorkspace {
  std::vector<Cell> h, f, t, mrow;
  void ensure(std::size_t m, std::size_t lanes) {
    const std::size_t need = m + 2 + lanes;
    if (h.size() < need) {
      h.resize(need);
      f.resize(need);
      t.resize(need);
      mrow.resize(need);
    }
  }
};

/// Lane-width copy of the score matrix, row stride kProfileStride so the
/// row base is a shift. Rebuilt only when the matrix changes (engines use
/// one matrix per search, so this is one 24x24 copy per thread in
/// practice). Eligibility has already checked every entry fits Cell.
template <class Cell>
struct BandedMatrixCache {
  const ScoreMatrix* built_for = nullptr;
  std::array<Cell, static_cast<std::size_t>(kAlphabetSize) * kProfileStride>
      rows{};

  const Cell* get(const ScoreMatrix& matrix) {
    if (built_for != &matrix) {
      for (int q = 0; q < kAlphabetSize; ++q) {
        for (int s = 0; s < kAlphabetSize; ++s) {
          rows[(static_cast<std::size_t>(q) << kResidueShift) |
               static_cast<std::size_t>(s)] = static_cast<Cell>(
              matrix(static_cast<Residue>(q), static_cast<Residue>(s)));
        }
      }
      built_for = &matrix;
    }
    return rows.data();
  }
};

/// One tier of the banded DP. `Ops` supplies the lane type and saturating
/// vector primitives (see the traits in the ISA translation units).
/// Returns the extent and sets `overflowed` when the running best hit the
/// lane maximum — the result must then be discarded and the next tier run.
template <class Ops>
GappedExtent banded_xdrop_tier(std::span<const Residue> a,
                               std::span<const Residue> b,
                               const ScoreMatrix& matrix, Score gap_open,
                               Score gap_extend, Score xdrop,
                               bool& overflowed) {
  using Cell = typename Ops::Cell;
  constexpr int kLanes = Ops::kLanes;
  constexpr std::int64_t kDead = std::numeric_limits<Cell>::min();
  constexpr std::int64_t kSat = std::numeric_limits<Cell>::max();

  const std::int64_t n = static_cast<std::int64_t>(a.size());
  const std::int64_t m = static_cast<std::int64_t>(b.size());
  const std::int64_t open_cost =
      static_cast<std::int64_t>(gap_open) + gap_extend;

  thread_local BandedWorkspace<Cell> ws;
  thread_local BandedMatrixCache<Cell> cache;
  ws.ensure(static_cast<std::size_t>(m), kLanes);
  Cell* H = ws.h.data();  // H[j + 1] = previous row's H at column j
  Cell* F = ws.f.data();
  Cell* T = ws.t.data();  // phase-A output: max(diagonal, F) per column
  Cell* MR = ws.mrow.data();  // MR[j] = matrix(a[i-1], b[j-1])
  const Cell* mat = cache.get(matrix);

  overflowed = false;

  // Row 0: pure horizontal gap runs, exactly the scalar loop. Values are
  // >= -xdrop, which eligibility guarantees fits a lane.
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  H[0] = static_cast<Cell>(kDead);  // virtual column -1
  H[1] = 0;
  F[1] = static_cast<Cell>(kDead);
  for (std::int64_t j = 1; j <= m; ++j) {
    const std::int64_t v = -(gap_open + j * gap_extend);
    if (-v > xdrop) break;
    H[j + 1] = static_cast<Cell>(v);
    F[j + 1] = static_cast<Cell>(kDead);
    hi = j;
  }
  // The next row reads one column past the band; make it dead explicitly
  // (later rows leave a dead cell there as part of their scan).
  if (hi + 1 <= m) {
    H[hi + 2] = static_cast<Cell>(kDead);
    F[hi + 2] = static_cast<Cell>(kDead);
  }

  std::int64_t best = 0;
  std::int64_t best_i = 0;
  std::int64_t best_j = 0;

  const auto voc = Ops::splat(static_cast<Cell>(open_cost));
  const auto vge = Ops::splat(static_cast<Cell>(gap_extend));

  for (std::int64_t i = 1; i <= n; ++i) {
    // Columns the previous row can feed diagonally/vertically end at
    // hi + 1; beyond that only the horizontal E run can stay alive.
    const std::int64_t ta_hi = std::min(hi + 1, m);

    // Gather this row's matrix entries for the band.
    const Cell* row =
        mat + (static_cast<std::size_t>(a[static_cast<std::size_t>(i - 1)])
               << kResidueShift);
    for (std::int64_t j = std::max<std::int64_t>(lo, 1); j <= ta_hi; ++j) {
      MR[j] = row[b[static_cast<std::size_t>(j - 1)]];
    }

    H[lo] = static_cast<Cell>(kDead);  // virtual column lo - 1

    // Phase A: F and diagonal candidates for the whole band. Column 0 has
    // no diagonal (and no subject residue), so it is peeled off.
    std::int64_t ja = lo;
    if (ja == 0) {
      const std::int64_t fn =
          std::max(sat_cell<Cell>(static_cast<std::int64_t>(H[1]) - open_cost),
                   sat_cell<Cell>(static_cast<std::int64_t>(F[1]) - gap_extend));
      F[1] = static_cast<Cell>(fn);
      T[1] = static_cast<Cell>(fn);
      ja = 1;
    }
    for (std::int64_t j = ja; j <= ta_hi; j += kLanes) {
      const auto hprev = Ops::loadu(H + j);      // H at column j-1
      const auto hcur = Ops::loadu(H + j + 1);   // H at column j
      const auto fcur = Ops::loadu(F + j + 1);
      const auto mr = Ops::loadu(MR + j);
      const auto diag = Ops::adds(hprev, mr);
      const auto fnew = Ops::max(Ops::subs(hcur, voc), Ops::subs(fcur, vge));
      Ops::storeu(F + j + 1, fnew);
      Ops::storeu(T + j + 1, Ops::max(diag, fnew));
    }

    // Phase B: the serial E chain, x-drop prune and band bookkeeping —
    // the scalar kernel's control flow verbatim. Saturating scalar math
    // matches the vector lanes bit-for-bit.
    std::int64_t cur_lo = -1;
    std::int64_t cur_hi = -2;
    std::int64_t h_left = kDead;
    std::int64_t e_run = kDead;
    for (std::int64_t j = lo; j <= m; ++j) {
      const std::int64_t e =
          std::max(sat_cell<Cell>(h_left - open_cost),
                   sat_cell<Cell>(e_run - gap_extend));
      std::int64_t h = kDead;
      std::int64_t fv = kDead;
      if (j <= ta_hi) {
        h = T[j + 1];
        fv = F[j + 1];
      }
      if (e > h) h = e;

      const bool alive = h >= best - xdrop;
      std::int64_t e_out = e;
      if (!alive) {
        h = kDead;
        e_out = kDead;
        fv = kDead;
      }
      H[j + 1] = static_cast<Cell>(h);
      F[j + 1] = static_cast<Cell>(fv);

      if (alive) {
        if (cur_lo == -1) cur_lo = j;
        cur_hi = j;
        if (h > best) {
          best = h;
          best_i = i;
          best_j = j;
        }
      }
      h_left = h;
      e_run = e_out;

      if (j > hi && !alive) break;
    }

    if (cur_lo == -1) break;  // band died entirely: extension finished
    lo = cur_lo;
    hi = cur_hi;
    if (best == kSat) {
      overflowed = true;
      return {};
    }
  }

  GappedExtent ext;
  ext.score = static_cast<Score>(best);
  ext.a_len = static_cast<std::uint32_t>(best_i);
  ext.b_len = static_cast<std::uint32_t>(best_j);
  return ext;
}

/// Tier driver shared by the ISA entry points: int8 first, int16 only when
/// the int8 pass saturated (or was ineligible), scalar fallback when even
/// int16 cannot represent the result.
template <class Ops8, class Ops16>
BandedOutcome banded_xdrop_tiered(std::span<const Residue> a,
                                  std::span<const Residue> b,
                                  const ScoreMatrix& matrix, Score gap_open,
                                  Score gap_extend, Score xdrop) {
  BandedOutcome out;
  bool overflowed = false;
  if (banded_tier_eligible<typename Ops8::Cell>(matrix, gap_open, gap_extend,
                                                xdrop)) {
    const GappedExtent ext = banded_xdrop_tier<Ops8>(
        a, b, matrix, gap_open, gap_extend, xdrop, overflowed);
    if (!overflowed) {
      out.ext = ext;
      out.tier = 1;
      return out;
    }
  }
  if (banded_tier_eligible<typename Ops16::Cell>(matrix, gap_open, gap_extend,
                                                 xdrop)) {
    const GappedExtent ext = banded_xdrop_tier<Ops16>(
        a, b, matrix, gap_open, gap_extend, xdrop, overflowed);
    if (!overflowed) {
      out.ext = ext;
      out.tier = 2;
      return out;
    }
  }
  return out;  // tier 0: caller runs the scalar kernel
}

}  // namespace mublastp::simd::detail
