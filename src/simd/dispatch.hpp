// Runtime kernel dispatch for the SIMD scoring kernels.
//
// The scoring kernels (ungapped x-drop extension, striped Smith-Waterman)
// come in scalar, SSE4.2 and AVX2 variants that are bit-identical by
// construction; which one runs is a pure execution-strategy choice. The
// path is picked once at startup from CPUID (detect_kernel), can be pinned
// with --kernel= (set_default_kernel), and is recorded in the stats-v1
// JSON so every benchmark result names the code path that produced it.
//
// The ISA-specific translation units are compiled with per-file -msse4.2 /
// -mavx2 flags (see src/simd/CMakeLists.txt) and are only ever entered
// after the corresponding CPUID feature check, so the remaining objects
// stay runnable on any x86-64 — and on non-x86 targets the subsystem
// degrades to scalar-only at compile time.
#pragma once

#include <string>

namespace mublastp::simd {

/// Which implementation of the scoring kernels executes. Values are ordered
/// by capability; dispatch picks the highest supported one.
enum class KernelPath : int {
  kScalar = 0,  ///< portable reference kernels
  kSse42,       ///< 128-bit SSE4.2 kernels
  kAvx2,        ///< 256-bit AVX2 kernels
};

/// True iff this machine can execute `path` (CPUID at first call; the
/// scalar path is always supported).
bool kernel_supported(KernelPath path);

/// The best path this machine supports (scalar on non-x86 builds).
KernelPath detect_kernel();

/// The process-wide default, used by engines constructed without an
/// explicit kernel. Starts as detect_kernel(); set_default_kernel pins it
/// (the --kernel= flag). Setting an unsupported path throws.
KernelPath default_kernel();
void set_default_kernel(KernelPath path);

/// Stable lowercase name ("scalar", "sse42", "avx2") — the value recorded
/// in stats JSON and accepted by parse_kernel.
const char* kernel_name(KernelPath path);

/// Parses a --kernel= value: "scalar", "sse42", "avx2" or "auto"
/// (detect_kernel()). Throws mublastp::Error on anything else.
KernelPath parse_kernel(const std::string& name);

/// A fully parsed --kernel= specification. `path` selects the kernel for
/// the alignment DP (banded gapped extension, striped Smith-Waterman);
/// `vector_ungapped` additionally opts the ungapped extension stage into
/// its batched vector kernel. That kernel is bit-identical but measured
/// slower than scalar (0.85x/0.75x, docs/ALGORITHMS.md), so ungapped
/// extension defaults to scalar on every path and the vector variant stays
/// reachable for benchmarking via the "+ungapped" suffix.
struct KernelSpec {
  KernelPath path = KernelPath::kScalar;
  bool vector_ungapped = false;
};

/// Parses "--kernel=<path>[+ungapped]", e.g. "avx2", "auto+ungapped".
/// The path component accepts exactly what parse_kernel accepts.
KernelSpec parse_kernel_spec(const std::string& spec);

}  // namespace mublastp::simd
