#include "simd/kernels.hpp"

#include "simd/hit_prefilter_impl.hpp"
#include "simd/simd_internal.hpp"

namespace mublastp::simd {
namespace {

// Profile rows are indexed (qi << 5) | residue with a 32-bit gather index
// on the AVX2 path; bound qi << 5 well inside int32 (queries this long do
// not exist, but the guard keeps the kernel total).
constexpr std::size_t kMaxSimdQueryLen = std::size_t{1} << 25;

bool simd_eligible(KernelPath path, const QueryProfile& profile) {
#ifdef MUBLASTP_SIMD_X86
  return path != KernelPath::kScalar &&
         profile.query_length() <= kMaxSimdQueryLen;
#else
  (void)path;
  (void)profile;
  return false;
#endif
}

}  // namespace

UngappedSeg ungapped_extend_one(KernelPath path,
                                std::span<const Residue> query,
                                std::span<const Residue> subject,
                                std::uint32_t qoff, std::uint32_t soff,
                                const QueryProfile& profile,
                                const ScoreMatrix& matrix, Score xdrop) {
  if (!simd_eligible(path, profile)) {
    return ungapped_extend(query, subject, qoff, soff, matrix, xdrop);
  }
#ifdef MUBLASTP_SIMD_X86
  if (path == KernelPath::kAvx2) {
    return detail::ungapped_extend_avx2(subject, qoff, soff, profile, xdrop);
  }
  return detail::ungapped_extend_sse42(subject, qoff, soff, profile, xdrop);
#else
  return ungapped_extend(query, subject, qoff, soff, matrix, xdrop);
#endif
}

namespace {

// Length-class split for the batched ungapped kernel (ROADMAP item 2's
// open revisit): a hit whose sweeps can cover at most a few vectors of
// positions pays the SIMD path's setup without amortizing it, and the
// x-drop early exit usually fires inside the scalar lead anyway. Route
// those to the scalar kernel and keep the vector path for hits with real
// extension headroom. Every per-hit kernel is exact, so the split cannot
// change results — only which exact kernel computes each out[i].
constexpr std::int64_t kShortExtensionHeadroom = 24;

bool short_extension(std::span<const Residue> query, const BatchHit& h) {
  const detail::ExtentGeometry g =
      detail::extent_geometry(query.size(), h.subject_len, h.qoff, h.soff);
  return g.llen < kShortExtensionHeadroom && g.rlen < kShortExtensionHeadroom;
}

}  // namespace

void ungapped_extend_batch(KernelPath path, std::span<const Residue> query,
                           const QueryProfile& profile,
                           const ScoreMatrix& matrix, Score xdrop,
                           std::span<const BatchHit> hits, UngappedSeg* out) {
  if (!simd_eligible(path, profile)) {
    for (std::size_t i = 0; i < hits.size(); ++i) {
      const BatchHit& h = hits[i];
      out[i] = ungapped_extend_one(
          path, query, std::span<const Residue>(h.subject, h.subject_len),
          h.qoff, h.soff, profile, matrix, xdrop);
    }
    return;
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    const BatchHit& h = hits[i];
    const KernelPath hit_path =
        short_extension(query, h) ? KernelPath::kScalar : path;
    out[i] = ungapped_extend_one(
        hit_path, query, std::span<const Residue>(h.subject, h.subject_len),
        h.qoff, h.soff, profile, matrix, xdrop);
  }
}

std::size_t hit_scan_prefilter(KernelPath path, const HitScan& scan,
                               const HitScanFilter& filter, HitRecord* out,
                               HitScanTallies* tallies) {
#ifdef MUBLASTP_SIMD_X86
  if (path == KernelPath::kAvx2) {
    return detail::hit_prefilter_avx2(scan, filter, out, tallies);
  }
  if (path == KernelPath::kSse42) {
    return detail::hit_prefilter_sse42(scan, filter, out, tallies);
  }
#endif
  if (tallies) tallies->tail_entries += scan.count;
  return detail::hit_prefilter_scalar_impl(scan, filter, out);
}

std::size_t hit_scan_collect(KernelPath path, const HitScan& scan,
                             HitRecord* out, HitScanTallies* tallies) {
#ifdef MUBLASTP_SIMD_X86
  if (path == KernelPath::kAvx2) {
    return detail::hit_collect_avx2(scan, out, tallies);
  }
  if (path == KernelPath::kSse42) {
    return detail::hit_collect_sse42(scan, out, tallies);
  }
#endif
  if (tallies) tallies->tail_entries += scan.count;
  return detail::hit_collect_scalar_impl(scan, out);
}

std::optional<GappedExtent> xdrop_extend_banded(
    KernelPath path, std::span<const Residue> a, std::span<const Residue> b,
    const ScoreMatrix& matrix, Score gap_open, Score gap_extend, Score xdrop,
    GappedKernelCounters* counters) {
#ifdef MUBLASTP_SIMD_X86
  if (path == KernelPath::kScalar) return std::nullopt;
  const detail::BandedOutcome out =
      path == KernelPath::kAvx2
          ? detail::xdrop_banded_avx2(a, b, matrix, gap_open, gap_extend,
                                      xdrop)
          : detail::xdrop_banded_sse42(a, b, matrix, gap_open, gap_extend,
                                       xdrop);
  if (counters) {
    if (out.tier == 1) {
      ++counters->int8_runs;
    } else if (out.tier == 2) {
      ++counters->int16_reruns;
    } else {
      ++counters->scalar_fallbacks;
    }
  }
  return out.ext;
#else
  (void)path;
  (void)a;
  (void)b;
  (void)matrix;
  (void)gap_open;
  (void)gap_extend;
  (void)xdrop;
  (void)counters;
  return std::nullopt;
#endif
}

std::optional<Score> smith_waterman_score_striped(
    KernelPath path, std::span<const Residue> query,
    std::span<const Residue> subject, const ScoreMatrix& matrix,
    Score gap_open, Score gap_extend) {
#ifdef MUBLASTP_SIMD_X86
  if (path == KernelPath::kScalar || query.empty() || subject.empty()) {
    return std::nullopt;
  }
  if (path == KernelPath::kAvx2) {
    return detail::sw_striped_avx2(query, subject, matrix, gap_open,
                                   gap_extend);
  }
  return detail::sw_striped_sse42(query, subject, matrix, gap_open,
                                  gap_extend);
#else
  (void)path;
  (void)query;
  (void)subject;
  (void)matrix;
  (void)gap_open;
  (void)gap_extend;
  return std::nullopt;
#endif
}

}  // namespace mublastp::simd
