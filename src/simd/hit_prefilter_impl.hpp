// Shared scalar pieces of the hit-scan kernels: branchless key decode and
// two-hit prefilter spans, used whole by the scalar dispatch path and as
// the sub-tile tail of the SSE4.2/AVX2 kernels.
//
// The prefilter span is the engines' per-entry automaton rewritten without
// control flow, operating on DiagState's raw representation (stored word =
// base + q when valid, < base otherwise):
//
//   prev    = last[key]
//   valid   = prev >= base                 (a hit was recorded this round)
//   delta   = q_raw - prev                 (== q - last when valid)
//   overlap = valid && delta < min         -> ignored, last unchanged
//   last[key] = overlap ? prev : q_raw     (value-identical to set_last_hit)
//   paired  = valid && !overlap && delta < window
//
// The valid mask is load-bearing: a stale word from an earlier round can
// make delta small by accident, so delta alone decides nothing. deltas stay
// inside int32 (1 <= base <= 2^30 during a round, offsets < 2^25), so none
// of the arithmetic wraps. Pair emission is a compaction store: the record
// is written unconditionally and the cursor advances only when paired,
// which is why callers must size `out` for every entry of the scan.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/hit_record.hpp"
#include "simd/kernels.hpp"

namespace mublastp::simd::detail {

/// Entries per internal chunk of the vector kernels: sized so the decoded
/// key buffer (4 * kHitChunk bytes) stays L1-resident and the last-hit
/// prefetches issued during decode land a bounded distance ahead of the
/// filter pass that consumes them.
inline constexpr std::size_t kHitChunk = 128;

/// Decodes entries[0..n) to diagonal keys (see HitScan for the formula).
inline void decode_keys_scalar(const std::uint32_t* entries, std::size_t n,
                               const std::uint32_t* bases,
                               std::uint32_t offset_bits, std::uint32_t add,
                               std::uint32_t* keys) {
  const std::uint32_t mask = (1u << offset_bits) - 1u;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t e = entries[i];
    keys[i] = bases[e >> offset_bits] + (e & mask) + add;
  }
}

/// Runs the branchless prefilter over pre-decoded keys[0..n), appending
/// paired records to `out` (capacity >= n required). Returns records
/// written. q_raw must equal filter.base + qoff.
inline std::size_t prefilter_span_scalar(const std::uint32_t* keys,
                                         std::size_t n, std::int32_t* last,
                                         std::int32_t base, std::int32_t q_raw,
                                         std::int32_t min, std::int32_t window,
                                         std::uint32_t qoff, HitRecord* out) {
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t key = keys[i];
    const std::int32_t prev = last[key];
    const bool valid = prev >= base;
    const std::int32_t delta = q_raw - prev;
    const bool overlap = valid & (delta < min);
    last[key] = overlap ? prev : q_raw;
    const bool paired = valid & !overlap & (delta < window);
    out[cnt] = HitRecord{key, qoff};
    cnt += paired;
  }
  return cnt;
}

/// Whole-scan scalar prefilter: fused decode + filter, no key buffer.
inline std::size_t hit_prefilter_scalar_impl(const HitScan& scan,
                                             const HitScanFilter& f,
                                             HitRecord* out) {
  const std::uint32_t mask = (1u << scan.offset_bits) - 1u;
  const std::int32_t q_raw =
      f.base + static_cast<std::int32_t>(scan.qoff);
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < scan.count; ++i) {
    const std::uint32_t e = scan.entries[i];
    const std::uint32_t key =
        scan.bases[e >> scan.offset_bits] + (e & mask) + scan.key_add;
    const std::int32_t prev = f.last[key];
    const bool valid = prev >= f.base;
    const std::int32_t delta = q_raw - prev;
    const bool overlap = valid & (delta < f.min);
    f.last[key] = overlap ? prev : q_raw;
    const bool paired = valid & !overlap & (delta < f.window);
    out[cnt] = HitRecord{key, scan.qoff};
    cnt += paired;
  }
  return cnt;
}

/// Whole-scan scalar collect: decode every entry, emit every record.
inline std::size_t hit_collect_scalar_impl(const HitScan& scan,
                                           HitRecord* out) {
  const std::uint32_t mask = (1u << scan.offset_bits) - 1u;
  for (std::size_t i = 0; i < scan.count; ++i) {
    const std::uint32_t e = scan.entries[i];
    out[i] = HitRecord{
        scan.bases[e >> scan.offset_bits] + (e & mask) + scan.key_add,
        scan.qoff};
  }
  return scan.count;
}

}  // namespace mublastp::simd::detail
