// AVX2 kernels. Compiled with -mavx2 (per-file, see CMakeLists.txt);
// entered only after __builtin_cpu_supports("avx2").
//
// Ungapped x-drop sweep, 8 positions per iteration:
//   - one contiguous 8-byte subject load covers lanes 0..7 (bounded by the
//     sweep length, which is the min remaining run of both sequences, so no
//     over-read — safe even against the last byte of an mmap'd index);
//   - query residues are never loaded: the score-profile row offsets for 8
//     consecutive positions are a computable ramp, so a single 32-bit
//     gather pulls all 8 substitution scores;
//   - cumulative score = prefix sum, running max = prefix max, x-drop test
//     = one compare + movemask. A set mask bit replays the spilled
//     cumulative scores through the scalar recurrence (replay_chunk), which
//     keeps stop position and best-position bookkeeping bit-identical to
//     the scalar kernel;
//   - each sweep opens with a short scalar lead (sweep_scalar over the
//     first 2 chunks' worth of positions): the x-drop condition terminates
//     the median sweep within a few residues, and vector chunks only pay
//     off once a sweep has proven it will run long.
#include "simd/simd_internal.hpp"

#ifdef MUBLASTP_SIMD_X86

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "simd/gapped_banded_impl.hpp"
#include "simd/hit_prefilter_impl.hpp"

namespace mublastp::simd::detail {
namespace {

constexpr int kLanes = 8;

/// lane i <- (i >= K) ? v[i - K] : fill[i]; a true 256-bit lane shift
/// (permutevar crosses the 128-bit boundary, unlike _mm256_slli_si256).
template <int K>
inline __m256i shiftl_epi32(__m256i v, __m256i fill) {
  const __m256i idx = _mm256_setr_epi32(
      (0 - K) & 7, (1 - K) & 7, (2 - K) & 7, (3 - K) & 7, (4 - K) & 7,
      (5 - K) & 7, (6 - K) & 7, (7 - K) & 7);
  const __m256i p = _mm256_permutevar8x32_epi32(v, idx);
  return _mm256_blend_epi32(p, fill, (1 << K) - 1);
}

inline __m256i prefix_sum_epi32(__m256i v) {
  const __m256i zero = _mm256_setzero_si256();
  v = _mm256_add_epi32(v, shiftl_epi32<1>(v, zero));
  v = _mm256_add_epi32(v, shiftl_epi32<2>(v, zero));
  v = _mm256_add_epi32(v, shiftl_epi32<4>(v, zero));
  return v;
}

inline __m256i prefix_max_epi32(__m256i v) {
  const __m256i ninf = _mm256_set1_epi32(std::numeric_limits<Score>::min());
  v = _mm256_max_epi32(v, shiftl_epi32<1>(v, ninf));
  v = _mm256_max_epi32(v, shiftl_epi32<2>(v, ninf));
  v = _mm256_max_epi32(v, shiftl_epi32<4>(v, ninf));
  return v;
}

void sweep_avx2(const Score* prof, const Residue* sub, std::int64_t q0,
                std::int64_t s0, std::int64_t dir, std::int64_t len,
                Score xdrop, Sweep& sw) {
  // x-drop kills the median sweep within a handful of residues (the p50
  // ungapped segment is ~4 residues on BLOSUM62 word hits), where a vector
  // chunk's gather + prefix networks can never amortize — worse, a stop
  // inside the chunk also pays the scalar replay. Run the exact scalar
  // recurrence over a short lead and enter vector chunks only for the
  // minority of sweeps that survive it.
  constexpr std::int64_t kLead = 2 * kLanes;
  const std::int64_t lead = std::min(len, kLead);
  if (sweep_scalar(prof, sub, q0, s0, dir, lead, xdrop, 0, sw)) return;
  const __m256i rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
  const std::int32_t d32 =
      static_cast<std::int32_t>(dir) << kResidueShift;  // per-lane row step
  const __m256i qstep = _mm256_setr_epi32(0, d32, 2 * d32, 3 * d32, 4 * d32,
                                          5 * d32, 6 * d32, 7 * d32);
  const __m256i vxdrop = _mm256_set1_epi32(xdrop);
  const __m256i lane7 = _mm256_set1_epi32(7);
  // The running score and maximum are carried as splat vectors: the
  // loop-carried chain is then one permutevar + one add (the scalar
  // extract/broadcast round trip would put ~8 cycles on the chain per
  // chunk, slower than the scalar recurrence's one add per position).
  __m256i vrun = _mm256_set1_epi32(sw.run);
  __m256i vbest = _mm256_set1_epi32(sw.best);
  std::int64_t t = lead;
  for (; t + kLanes <= len; t += kLanes) {
    const std::int64_t base_s = dir > 0 ? s0 + t : s0 - t - (kLanes - 1);
    __m256i sres = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(sub + base_s)));
    if (dir < 0) sres = _mm256_permutevar8x32_epi32(sres, rev);
    const std::int32_t qbase =
        static_cast<std::int32_t>((q0 + dir * t) << kResidueShift);
    const __m256i idx = _mm256_or_si256(
        _mm256_add_epi32(_mm256_set1_epi32(qbase), qstep), sres);
    const __m256i raw = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(prof), idx, sizeof(Score));
    const __m256i vals = _mm256_add_epi32(prefix_sum_epi32(raw), vrun);
    const __m256i pm = prefix_max_epi32(vals);
    const __m256i bestv = _mm256_max_epi32(pm, vbest);
    const __m256i stop =
        _mm256_cmpgt_epi32(_mm256_sub_epi32(bestv, vals), vxdrop);
    if (_mm256_movemask_ps(_mm256_castsi256_ps(stop)) != 0) {
      alignas(32) Score spill[kLanes];
      _mm256_store_si256(reinterpret_cast<__m256i*>(spill), vals);
      replay_chunk(spill, kLanes, t, xdrop, sw);
      return;
    }
    const __m256i vmax = _mm256_permutevar8x32_epi32(pm, lane7);
    if (_mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpgt_epi32(vmax, vbest))) != 0) {
      // First lane reaching the chunk maximum == the position the scalar
      // loop last improved at (later equal lanes compare run > best false).
      const int eq = _mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(vals, vmax)));
      sw.best = _mm256_cvtsi256_si32(vmax);
      sw.best_t = t + __builtin_ctz(static_cast<unsigned>(eq));
      vbest = vmax;
    }
    vrun = _mm256_permutevar8x32_epi32(vals, lane7);
  }
  sw.run = _mm256_cvtsi256_si32(vrun);
  sweep_scalar(prof, sub, q0, s0, dir, len, xdrop, t, sw);
}

}  // namespace

UngappedSeg ungapped_extend_avx2(std::span<const Residue> subject,
                                 std::uint32_t qoff, std::uint32_t soff,
                                 const QueryProfile& profile, Score xdrop) {
  const ExtentGeometry g = extent_geometry(profile.query_length(),
                                           subject.size(), qoff, soff);
  Sweep left;
  Sweep right;
  sweep_avx2(profile.data(), subject.data(), g.lq0, g.ls0, -1, g.llen, xdrop,
             left);
  sweep_avx2(profile.data(), subject.data(), g.rq0, g.rs0, +1, g.rlen, xdrop,
             right);
  return assemble(qoff, soff, left, right);
}

// ---------------------------------------------------------------------------
// Striped Smith-Waterman (Farrar), 16 signed int16 lanes.
// ---------------------------------------------------------------------------
namespace {

constexpr int kSwLanes = 16;
constexpr std::int16_t kSwNegInf = -30000;  // headroom under int16 min

/// 256-bit shift left by one int16 lane, zero fill (crosses the 128-bit
/// boundary, unlike _mm256_slli_si256).
inline __m256i shiftl_one_epi16(__m256i v) {
  const __m256i lo = _mm256_permute2x128_si256(v, v, 0x08);  // [0, v.lo]
  return _mm256_alignr_epi8(v, lo, 14);
}

inline std::int16_t hmax_epi16_256(__m256i v) {
  __m128i x = _mm_max_epi16(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  x = _mm_max_epi16(x, _mm_srli_si128(x, 8));
  x = _mm_max_epi16(x, _mm_srli_si128(x, 4));
  x = _mm_max_epi16(x, _mm_srli_si128(x, 2));
  return static_cast<std::int16_t>(_mm_extract_epi16(x, 0));
}

}  // namespace

std::optional<Score> sw_striped_avx2(std::span<const Residue> query,
                                     std::span<const Residue> subject,
                                     const ScoreMatrix& matrix,
                                     Score gap_open, Score gap_extend) {
  const std::size_t n = query.size();
  const std::size_t m = subject.size();
  const Score open_cost = gap_open + gap_extend;
  if (open_cost >= -kSwNegInf) return std::nullopt;  // pathological params

  const std::size_t segs = (n + kSwLanes - 1) / kSwLanes;
  // Striped profile: lane l of vector j holds matrix(a, query[l*segs + j]).
  // Padding positions (l*segs + j >= n) score 0; their H values only ever
  // feed other padding positions, never a real cell (they occupy the tail
  // lanes, and lane l's carry enters lane l+1 at position (l+1)*segs, which
  // is itself past the query end whenever lane l held padding).
  std::vector<std::int16_t> prof(kAlphabetSize * segs * kSwLanes, 0);
  for (int a = 0; a < kAlphabetSize; ++a) {
    std::int16_t* row = prof.data() + static_cast<std::size_t>(a) * segs *
                                          kSwLanes;
    for (std::size_t l = 0; l < static_cast<std::size_t>(kSwLanes); ++l) {
      for (std::size_t j = 0; j < segs; ++j) {
        const std::size_t i = l * segs + j;
        if (i < n) {
          row[j * kSwLanes + l] = static_cast<std::int16_t>(
              matrix(static_cast<Residue>(a), query[i]));
        }
      }
    }
  }

  std::vector<std::int16_t> h_store(segs * kSwLanes, 0);
  std::vector<std::int16_t> h_load(segs * kSwLanes, 0);
  std::vector<std::int16_t> e(segs * kSwLanes, kSwNegInf);
  const __m256i v_zero = _mm256_setzero_si256();
  const __m256i v_open = _mm256_set1_epi16(static_cast<std::int16_t>(open_cost));
  const __m256i v_ext = _mm256_set1_epi16(static_cast<std::int16_t>(gap_extend));
  __m256i v_max = v_zero;

  for (std::size_t j = 0; j < m; ++j) {
    const std::int16_t* row =
        prof.data() + static_cast<std::size_t>(subject[j]) * segs * kSwLanes;
    __m256i v_f = _mm256_set1_epi16(kSwNegInf);
    // Diagonal carry: previous column's last vector shifted one lane up;
    // lane 0 becomes the H[-1] = 0 boundary of local alignment.
    __m256i v_h = shiftl_one_epi16(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(h_store.data() +
                                         (segs - 1) * kSwLanes)));
    std::swap(h_store, h_load);
    for (std::size_t k = 0; k < segs; ++k) {
      v_h = _mm256_adds_epi16(v_h, _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(row + k * kSwLanes)));
      __m256i v_e = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(e.data() + k * kSwLanes));
      v_h = _mm256_max_epi16(v_h, v_e);
      v_h = _mm256_max_epi16(v_h, v_f);
      v_h = _mm256_max_epi16(v_h, v_zero);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(h_store.data() + k * kSwLanes), v_h);
      v_max = _mm256_max_epi16(v_max, v_h);
      const __m256i v_hoc = _mm256_subs_epi16(v_h, v_open);
      v_e = _mm256_subs_epi16(v_e, v_ext);
      v_e = _mm256_max_epi16(v_e, v_hoc);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(e.data() + k * kSwLanes), v_e);
      v_f = _mm256_subs_epi16(v_f, v_ext);
      v_f = _mm256_max_epi16(v_f, v_hoc);
      v_h = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(h_load.data() + k * kSwLanes));
    }
    // Lazy-F correction: keep pushing F down the column until it can no
    // longer raise any H. E is refreshed from the raised H so the next
    // column sees the true recurrence value.
    bool f_active = true;
    for (int rep = 0; rep < kSwLanes && f_active; ++rep) {
      v_f = shiftl_one_epi16(v_f);
      v_f = _mm256_insert_epi16(v_f, kSwNegInf, 0);
      for (std::size_t k = 0; k < segs; ++k) {
        __m256i v_h2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(h_store.data() + k * kSwLanes));
        v_h2 = _mm256_max_epi16(v_h2, v_f);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(h_store.data() + k * kSwLanes), v_h2);
        v_max = _mm256_max_epi16(v_max, v_h2);
        const __m256i v_hoc = _mm256_subs_epi16(v_h2, v_open);
        __m256i v_e = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(e.data() + k * kSwLanes));
        v_e = _mm256_max_epi16(v_e, v_hoc);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(e.data() + k * kSwLanes), v_e);
        v_f = _mm256_subs_epi16(v_f, v_ext);
        if (_mm256_movemask_epi8(_mm256_cmpgt_epi16(v_f, v_hoc)) == 0) {
          f_active = false;
          break;
        }
      }
    }
  }

  const std::int16_t best = hmax_epi16_256(v_max);
  if (best >= std::numeric_limits<std::int16_t>::max() - matrix.max_score()) {
    return std::nullopt;  // would have saturated: caller reruns scalar
  }
  return static_cast<Score>(best);
}

// ---- Banded gapped x-drop extension ---------------------------------------

namespace {

struct Avx2I8Ops {
  using Cell = std::int8_t;
  static constexpr int kLanes = 32;
  static __m256i loadu(const Cell* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(Cell* p, __m256i v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static __m256i splat(Cell v) {
    return _mm256_set1_epi8(static_cast<char>(v));
  }
  static __m256i adds(__m256i a, __m256i b) { return _mm256_adds_epi8(a, b); }
  static __m256i subs(__m256i a, __m256i b) { return _mm256_subs_epi8(a, b); }
  static __m256i max(__m256i a, __m256i b) { return _mm256_max_epi8(a, b); }
};

struct Avx2I16Ops {
  using Cell = std::int16_t;
  static constexpr int kLanes = 16;
  static __m256i loadu(const Cell* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(Cell* p, __m256i v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static __m256i splat(Cell v) { return _mm256_set1_epi16(v); }
  static __m256i adds(__m256i a, __m256i b) { return _mm256_adds_epi16(a, b); }
  static __m256i subs(__m256i a, __m256i b) { return _mm256_subs_epi16(a, b); }
  static __m256i max(__m256i a, __m256i b) { return _mm256_max_epi16(a, b); }
};

}  // namespace

BandedOutcome xdrop_banded_avx2(std::span<const Residue> a,
                                std::span<const Residue> b,
                                const ScoreMatrix& matrix, Score gap_open,
                                Score gap_extend, Score xdrop) {
  return banded_xdrop_tiered<Avx2I8Ops, Avx2I16Ops>(a, b, matrix, gap_open,
                                                    gap_extend, xdrop);
}

// --- Hit-scan kernels (PR 8) ------------------------------------------
//
// Chunked: each kHitChunk-entry chunk is decoded to diagonal keys first
// (vector shift/and + one bases gather per 8 entries), issuing a software
// prefetch for every last-hit line the chunk will touch, then the two-hit
// prefilter runs 8 keys per tile against lines that are already in
// flight. Keys within one posting scan are strictly ascending and
// distinct (HitScan precondition), so the gather/scatter tiles are
// conflict-free and the scatter is 8 independent scalar stores.

std::size_t hit_prefilter_avx2(const HitScan& scan, const HitScanFilter& f,
                               HitRecord* out, HitScanTallies* tallies) {
  const std::int32_t q_raw = f.base + static_cast<std::int32_t>(scan.qoff);
  const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(scan.offset_bits));
  const __m256i vmask =
      _mm256_set1_epi32(static_cast<int>((1u << scan.offset_bits) - 1u));
  const __m256i vadd = _mm256_set1_epi32(static_cast<int>(scan.key_add));
  const __m256i vbase = _mm256_set1_epi32(f.base);
  const __m256i vqraw = _mm256_set1_epi32(q_raw);
  const __m256i vmin = _mm256_set1_epi32(f.min);
  const __m256i vwin = _mm256_set1_epi32(f.window);
  alignas(32) std::uint32_t keys[kHitChunk];
  alignas(32) std::int32_t lane_keys[kLanes];
  alignas(32) std::int32_t lane_new[kLanes];
  std::size_t cnt = 0;
  std::uint64_t tiles = 0;
  std::uint64_t tail = 0;
  for (std::size_t cbeg = 0; cbeg < scan.count; cbeg += kHitChunk) {
    const std::size_t cn = std::min(kHitChunk, scan.count - cbeg);
    const std::uint32_t* ent = scan.entries + cbeg;
    // Phase A: decode the chunk's keys, prefetching their last-hit lines.
    std::size_t i = 0;
    for (; i + kLanes <= cn; i += kLanes) {
      const __m256i e = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ent + i));
      const __m256i frag = _mm256_srl_epi32(e, vshift);
      const __m256i soff = _mm256_and_si256(e, vmask);
      const __m256i kb = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(scan.bases), frag, 4);
      const __m256i key = _mm256_add_epi32(kb, _mm256_add_epi32(soff, vadd));
      _mm256_store_si256(reinterpret_cast<__m256i*>(keys + i), key);
    }
    if (i < cn) decode_keys_scalar(ent + i, cn - i, scan.bases,
                                   scan.offset_bits, scan.key_add, keys + i);
    for (std::size_t p = 0; p < cn; ++p) {
      __builtin_prefetch(f.last + keys[p], 1);
    }
    // Phase B: vector two-hit prefilter over the decoded keys.
    i = 0;
    for (; i + kLanes <= cn; i += kLanes) {
      const __m256i vkey =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(keys + i));
      // Eight independent scalar loads beat vpgatherdd here: the lines are
      // already in flight from phase A's prefetches, and the gathered
      // addresses are reused immediately below for the scatter anyway.
      const __m256i prev = _mm256_setr_epi32(
          f.last[keys[i]], f.last[keys[i + 1]], f.last[keys[i + 2]],
          f.last[keys[i + 3]], f.last[keys[i + 4]], f.last[keys[i + 5]],
          f.last[keys[i + 6]], f.last[keys[i + 7]]);
      const __m256i invalid = _mm256_cmpgt_epi32(vbase, prev);
      const __m256i delta = _mm256_sub_epi32(vqraw, prev);
      const __m256i lt_min = _mm256_cmpgt_epi32(vmin, delta);
      const __m256i lt_win = _mm256_cmpgt_epi32(vwin, delta);
      const __m256i overlap = _mm256_andnot_si256(invalid, lt_min);
      const __m256i paired = _mm256_andnot_si256(
          _mm256_or_si256(invalid, overlap), lt_win);
      const __m256i newlast = _mm256_blendv_epi8(vqraw, prev, overlap);
      _mm256_store_si256(reinterpret_cast<__m256i*>(lane_keys), vkey);
      _mm256_store_si256(reinterpret_cast<__m256i*>(lane_new), newlast);
      for (int j = 0; j < kLanes; ++j) f.last[lane_keys[j]] = lane_new[j];
      unsigned m = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(paired)));
      while (m) {
        const int j = __builtin_ctz(m);
        out[cnt++] = HitRecord{keys[i + static_cast<std::size_t>(j)],
                               scan.qoff};
        m &= m - 1;
      }
      ++tiles;
    }
    // 4-lane sub-tile: posting lists are often shorter than one 8-lane
    // tile (a few entries per word is the common case), so the 4..7-entry
    // remainder still runs vectorized instead of falling to the tail.
    for (; i + 4 <= cn; i += 4) {
      const __m128i vkey =
          _mm_load_si128(reinterpret_cast<const __m128i*>(keys + i));
      const __m128i prev =
          _mm_set_epi32(f.last[keys[i + 3]], f.last[keys[i + 2]],
                        f.last[keys[i + 1]], f.last[keys[i]]);
      const __m128i vbase4 = _mm256_castsi256_si128(vbase);
      const __m128i vqraw4 = _mm256_castsi256_si128(vqraw);
      const __m128i invalid = _mm_cmpgt_epi32(vbase4, prev);
      const __m128i delta = _mm_sub_epi32(vqraw4, prev);
      const __m128i lt_min =
          _mm_cmpgt_epi32(_mm256_castsi256_si128(vmin), delta);
      const __m128i lt_win =
          _mm_cmpgt_epi32(_mm256_castsi256_si128(vwin), delta);
      const __m128i overlap = _mm_andnot_si128(invalid, lt_min);
      const __m128i paired =
          _mm_andnot_si128(_mm_or_si128(invalid, overlap), lt_win);
      const __m128i newlast = _mm_blendv_epi8(vqraw4, prev, overlap);
      _mm_store_si128(reinterpret_cast<__m128i*>(lane_new), newlast);
      for (int j = 0; j < 4; ++j) f.last[keys[i + j]] = lane_new[j];
      unsigned m = static_cast<unsigned>(
          _mm_movemask_ps(_mm_castsi128_ps(paired)));
      while (m) {
        const int j = __builtin_ctz(m);
        out[cnt++] = HitRecord{keys[i + static_cast<std::size_t>(j)],
                               scan.qoff};
        m &= m - 1;
      }
      ++tiles;
    }
    cnt += prefilter_span_scalar(keys + i, cn - i, f.last, f.base, q_raw,
                                 f.min, f.window, scan.qoff, out + cnt);
    tail += cn - i;
  }
  if (tallies) {
    tallies->tiles += tiles;
    tallies->tail_entries += tail;
  }
  return cnt;
}

std::size_t hit_collect_avx2(const HitScan& scan, HitRecord* out,
                             HitScanTallies* tallies) {
  const __m128i vshift = _mm_cvtsi32_si128(static_cast<int>(scan.offset_bits));
  const __m256i vmask =
      _mm256_set1_epi32(static_cast<int>((1u << scan.offset_bits) - 1u));
  const __m256i vadd = _mm256_set1_epi32(static_cast<int>(scan.key_add));
  const __m256i vqoff = _mm256_set1_epi32(static_cast<int>(scan.qoff));
  std::size_t i = 0;
  std::uint64_t tiles = 0;
  for (; i + kLanes <= scan.count; i += kLanes) {
    const __m256i e = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(scan.entries + i));
    const __m256i frag = _mm256_srl_epi32(e, vshift);
    const __m256i soff = _mm256_and_si256(e, vmask);
    const __m256i kb = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(scan.bases), frag, 4);
    const __m256i key = _mm256_add_epi32(kb, _mm256_add_epi32(soff, vadd));
    // Interleave (key, qoff) pairs: unpack within 128-bit halves, then fix
    // the half order so records land in entry order.
    const __m256i lo = _mm256_unpacklo_epi32(key, vqoff);
    const __m256i hi = _mm256_unpackhi_epi32(key, vqoff);
    const __m256i r0 = _mm256_permute2x128_si256(lo, hi, 0x20);
    const __m256i r1 = _mm256_permute2x128_si256(lo, hi, 0x31);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), r1);
    ++tiles;
  }
  const std::uint32_t mask = (1u << scan.offset_bits) - 1u;
  for (; i < scan.count; ++i) {
    const std::uint32_t e = scan.entries[i];
    out[i] = HitRecord{
        scan.bases[e >> scan.offset_bits] + (e & mask) + scan.key_add,
        scan.qoff};
    if (tallies) ++tallies->tail_entries;
  }
  if (tallies) tallies->tiles += tiles;
  return scan.count;
}

}  // namespace mublastp::simd::detail

#endif  // MUBLASTP_SIMD_X86
