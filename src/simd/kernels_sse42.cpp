// SSE4.2 kernels. Compiled with -msse4.2 (per-file, see CMakeLists.txt);
// entered only after __builtin_cpu_supports("sse4.2").
//
// Same structure as the AVX2 kernels at half the width: the ungapped sweep
// processes 4 positions per iteration (profile scores are gathered with
// scalar loads — SSE has no gather — but the prefix-sum / prefix-max /
// stop-mask evaluation is vectorized), and the striped Smith-Waterman runs
// 8 int16 lanes. See kernels_avx2.cpp for the exactness argument; the
// recurrences are identical.
#include "simd/simd_internal.hpp"

#ifdef MUBLASTP_SIMD_X86

#include <nmmintrin.h>
#include <smmintrin.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "simd/gapped_banded_impl.hpp"
#include "simd/hit_prefilter_impl.hpp"

namespace mublastp::simd::detail {
namespace {

constexpr int kLanes = 4;

inline __m128i prefix_sum_epi32(__m128i v) {
  v = _mm_add_epi32(v, _mm_slli_si128(v, 4));
  v = _mm_add_epi32(v, _mm_slli_si128(v, 8));
  return v;
}

/// _mm_slli_si128 zero-fills the vacated lanes; prefix max needs them at
/// INT32_MIN, so blend the identity back in (blend_ps is a pure bitwise
/// lane select, no float arithmetic happens).
inline __m128i prefix_max_epi32(__m128i v) {
  const __m128i ninf = _mm_set1_epi32(std::numeric_limits<Score>::min());
  __m128i s = _mm_castps_si128(
      _mm_blend_ps(_mm_castsi128_ps(_mm_slli_si128(v, 4)),
                   _mm_castsi128_ps(ninf), 0x1));
  v = _mm_max_epi32(v, s);
  s = _mm_castps_si128(
      _mm_blend_ps(_mm_castsi128_ps(_mm_slli_si128(v, 8)),
                   _mm_castsi128_ps(ninf), 0x3));
  return _mm_max_epi32(v, s);
}

void sweep_sse42(const Score* prof, const Residue* sub, std::int64_t q0,
                 std::int64_t s0, std::int64_t dir, std::int64_t len,
                 Score xdrop, Sweep& sw) {
  // Scalar lead before vector chunks, for the same reason as the AVX2
  // sweep: the median sweep x-drop-stops within a few residues, where the
  // chunk setup + replay can never amortize.
  constexpr std::int64_t kLead = 4 * kLanes;
  const std::int64_t lead = std::min(len, kLead);
  if (sweep_scalar(prof, sub, q0, s0, dir, lead, xdrop, 0, sw)) return;
  const __m128i vxdrop = _mm_set1_epi32(xdrop);
  // Splat-vector carries keep the loop-carried chain to one shuffle + one
  // add per chunk (see the AVX2 sweep for the rationale).
  __m128i vrun = _mm_set1_epi32(sw.run);
  __m128i vbest = _mm_set1_epi32(sw.best);
  std::int64_t t = lead;
  for (; t + kLanes <= len; t += kLanes) {
    const std::int64_t q = q0 + dir * t;
    const std::int64_t s = s0 + dir * t;
    const __m128i raw = _mm_setr_epi32(
        prof[(q << kResidueShift) | sub[s]],
        prof[((q + dir) << kResidueShift) | sub[s + dir]],
        prof[((q + 2 * dir) << kResidueShift) | sub[s + 2 * dir]],
        prof[((q + 3 * dir) << kResidueShift) | sub[s + 3 * dir]]);
    const __m128i vals = _mm_add_epi32(prefix_sum_epi32(raw), vrun);
    const __m128i pm = prefix_max_epi32(vals);
    const __m128i bestv = _mm_max_epi32(pm, vbest);
    const __m128i stop = _mm_cmpgt_epi32(_mm_sub_epi32(bestv, vals), vxdrop);
    if (_mm_movemask_ps(_mm_castsi128_ps(stop)) != 0) {
      alignas(16) Score spill[kLanes];
      _mm_store_si128(reinterpret_cast<__m128i*>(spill), vals);
      replay_chunk(spill, kLanes, t, xdrop, sw);
      return;
    }
    const __m128i vmax = _mm_shuffle_epi32(pm, 0xFF);
    if (_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(vmax, vbest))) !=
        0) {
      // First lane reaching the chunk maximum == the position the scalar
      // loop last improved at (later equal lanes compare run > best false).
      const int eq =
          _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(vals, vmax)));
      sw.best = _mm_cvtsi128_si32(vmax);
      sw.best_t = t + __builtin_ctz(static_cast<unsigned>(eq));
      vbest = vmax;
    }
    vrun = _mm_shuffle_epi32(vals, 0xFF);
  }
  sw.run = _mm_cvtsi128_si32(vrun);
  sweep_scalar(prof, sub, q0, s0, dir, len, xdrop, t, sw);
}

}  // namespace

UngappedSeg ungapped_extend_sse42(std::span<const Residue> subject,
                                  std::uint32_t qoff, std::uint32_t soff,
                                  const QueryProfile& profile, Score xdrop) {
  const ExtentGeometry g = extent_geometry(profile.query_length(),
                                           subject.size(), qoff, soff);
  Sweep left;
  Sweep right;
  sweep_sse42(profile.data(), subject.data(), g.lq0, g.ls0, -1, g.llen, xdrop,
              left);
  sweep_sse42(profile.data(), subject.data(), g.rq0, g.rs0, +1, g.rlen, xdrop,
              right);
  return assemble(qoff, soff, left, right);
}

// ---------------------------------------------------------------------------
// Striped Smith-Waterman (Farrar), 8 signed int16 lanes.
// ---------------------------------------------------------------------------
namespace {

constexpr int kSwLanes = 8;
constexpr std::int16_t kSwNegInf = -30000;

inline std::int16_t hmax_epi16_128(__m128i v) {
  v = _mm_max_epi16(v, _mm_srli_si128(v, 8));
  v = _mm_max_epi16(v, _mm_srli_si128(v, 4));
  v = _mm_max_epi16(v, _mm_srli_si128(v, 2));
  return static_cast<std::int16_t>(_mm_extract_epi16(v, 0));
}

}  // namespace

std::optional<Score> sw_striped_sse42(std::span<const Residue> query,
                                      std::span<const Residue> subject,
                                      const ScoreMatrix& matrix,
                                      Score gap_open, Score gap_extend) {
  const std::size_t n = query.size();
  const std::size_t m = subject.size();
  const Score open_cost = gap_open + gap_extend;
  if (open_cost >= -kSwNegInf) return std::nullopt;  // pathological params

  const std::size_t segs = (n + kSwLanes - 1) / kSwLanes;
  std::vector<std::int16_t> prof(kAlphabetSize * segs * kSwLanes, 0);
  for (int a = 0; a < kAlphabetSize; ++a) {
    std::int16_t* row = prof.data() + static_cast<std::size_t>(a) * segs *
                                          kSwLanes;
    for (std::size_t l = 0; l < static_cast<std::size_t>(kSwLanes); ++l) {
      for (std::size_t j = 0; j < segs; ++j) {
        const std::size_t i = l * segs + j;
        if (i < n) {
          row[j * kSwLanes + l] = static_cast<std::int16_t>(
              matrix(static_cast<Residue>(a), query[i]));
        }
      }
    }
  }

  std::vector<std::int16_t> h_store(segs * kSwLanes, 0);
  std::vector<std::int16_t> h_load(segs * kSwLanes, 0);
  std::vector<std::int16_t> e(segs * kSwLanes, kSwNegInf);
  const __m128i v_zero = _mm_setzero_si128();
  const __m128i v_open = _mm_set1_epi16(static_cast<std::int16_t>(open_cost));
  const __m128i v_ext = _mm_set1_epi16(static_cast<std::int16_t>(gap_extend));
  __m128i v_max = v_zero;

  for (std::size_t j = 0; j < m; ++j) {
    const std::int16_t* row =
        prof.data() + static_cast<std::size_t>(subject[j]) * segs * kSwLanes;
    __m128i v_f = _mm_set1_epi16(kSwNegInf);
    __m128i v_h = _mm_slli_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            h_store.data() + (segs - 1) * kSwLanes)),
        2);
    std::swap(h_store, h_load);
    for (std::size_t k = 0; k < segs; ++k) {
      v_h = _mm_adds_epi16(v_h, _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(row + k * kSwLanes)));
      __m128i v_e = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(e.data() + k * kSwLanes));
      v_h = _mm_max_epi16(v_h, v_e);
      v_h = _mm_max_epi16(v_h, v_f);
      v_h = _mm_max_epi16(v_h, v_zero);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(h_store.data() + k * kSwLanes), v_h);
      v_max = _mm_max_epi16(v_max, v_h);
      const __m128i v_hoc = _mm_subs_epi16(v_h, v_open);
      v_e = _mm_subs_epi16(v_e, v_ext);
      v_e = _mm_max_epi16(v_e, v_hoc);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(e.data() + k * kSwLanes), v_e);
      v_f = _mm_subs_epi16(v_f, v_ext);
      v_f = _mm_max_epi16(v_f, v_hoc);
      v_h = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(h_load.data() + k * kSwLanes));
    }
    bool f_active = true;
    for (int rep = 0; rep < kSwLanes && f_active; ++rep) {
      v_f = _mm_slli_si128(v_f, 2);
      v_f = _mm_insert_epi16(v_f, kSwNegInf, 0);
      for (std::size_t k = 0; k < segs; ++k) {
        __m128i v_h2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(h_store.data() + k * kSwLanes));
        v_h2 = _mm_max_epi16(v_h2, v_f);
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(h_store.data() + k * kSwLanes), v_h2);
        v_max = _mm_max_epi16(v_max, v_h2);
        const __m128i v_hoc = _mm_subs_epi16(v_h2, v_open);
        __m128i v_e = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(e.data() + k * kSwLanes));
        v_e = _mm_max_epi16(v_e, v_hoc);
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(e.data() + k * kSwLanes), v_e);
        v_f = _mm_subs_epi16(v_f, v_ext);
        if (_mm_movemask_epi8(_mm_cmpgt_epi16(v_f, v_hoc)) == 0) {
          f_active = false;
          break;
        }
      }
    }
  }

  const std::int16_t best = hmax_epi16_128(v_max);
  if (best >= std::numeric_limits<std::int16_t>::max() - matrix.max_score()) {
    return std::nullopt;
  }
  return static_cast<Score>(best);
}

// ---- Banded gapped x-drop extension ---------------------------------------

namespace {

struct Sse42I8Ops {
  using Cell = std::int8_t;
  static constexpr int kLanes = 16;
  static __m128i loadu(const Cell* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu(Cell* p, __m128i v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static __m128i splat(Cell v) { return _mm_set1_epi8(static_cast<char>(v)); }
  static __m128i adds(__m128i a, __m128i b) { return _mm_adds_epi8(a, b); }
  static __m128i subs(__m128i a, __m128i b) { return _mm_subs_epi8(a, b); }
  static __m128i max(__m128i a, __m128i b) { return _mm_max_epi8(a, b); }
};

struct Sse42I16Ops {
  using Cell = std::int16_t;
  static constexpr int kLanes = 8;
  static __m128i loadu(const Cell* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu(Cell* p, __m128i v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static __m128i splat(Cell v) { return _mm_set1_epi16(v); }
  static __m128i adds(__m128i a, __m128i b) { return _mm_adds_epi16(a, b); }
  static __m128i subs(__m128i a, __m128i b) { return _mm_subs_epi16(a, b); }
  static __m128i max(__m128i a, __m128i b) { return _mm_max_epi16(a, b); }
};

}  // namespace

BandedOutcome xdrop_banded_sse42(std::span<const Residue> a,
                                 std::span<const Residue> b,
                                 const ScoreMatrix& matrix, Score gap_open,
                                 Score gap_extend, Score xdrop) {
  return banded_xdrop_tiered<Sse42I8Ops, Sse42I16Ops>(a, b, matrix, gap_open,
                                                      gap_extend, xdrop);
}

// --- Hit-scan kernels (PR 8) ------------------------------------------
//
// Same chunked decode -> prefetch -> filter structure as the AVX2 kernels
// at half the tile width. SSE has no gather: the chunk's keys are decoded
// with the shared scalar span, and each filter tile pulls its 4 previous
// last-hit words with independent scalar loads (the memory-level
// parallelism is what the prefetched chunk exists to feed).

std::size_t hit_prefilter_sse42(const HitScan& scan, const HitScanFilter& f,
                                HitRecord* out, HitScanTallies* tallies) {
  const std::int32_t q_raw = f.base + static_cast<std::int32_t>(scan.qoff);
  const __m128i vbase = _mm_set1_epi32(f.base);
  const __m128i vqraw = _mm_set1_epi32(q_raw);
  const __m128i vmin = _mm_set1_epi32(f.min);
  const __m128i vwin = _mm_set1_epi32(f.window);
  alignas(16) std::uint32_t keys[kHitChunk];
  alignas(16) std::int32_t lane_new[kLanes];
  std::size_t cnt = 0;
  std::uint64_t tiles = 0;
  std::uint64_t tail = 0;
  for (std::size_t cbeg = 0; cbeg < scan.count; cbeg += kHitChunk) {
    const std::size_t cn = std::min(kHitChunk, scan.count - cbeg);
    decode_keys_scalar(scan.entries + cbeg, cn, scan.bases, scan.offset_bits,
                       scan.key_add, keys);
    for (std::size_t p = 0; p < cn; ++p) {
      __builtin_prefetch(f.last + keys[p], 1);
    }
    std::size_t i = 0;
    for (; i + kLanes <= cn; i += kLanes) {
      const __m128i vkey =
          _mm_load_si128(reinterpret_cast<const __m128i*>(keys + i));
      const __m128i prev =
          _mm_set_epi32(f.last[keys[i + 3]], f.last[keys[i + 2]],
                        f.last[keys[i + 1]], f.last[keys[i]]);
      const __m128i invalid = _mm_cmpgt_epi32(vbase, prev);
      const __m128i delta = _mm_sub_epi32(vqraw, prev);
      const __m128i lt_min = _mm_cmpgt_epi32(vmin, delta);
      const __m128i lt_win = _mm_cmpgt_epi32(vwin, delta);
      const __m128i overlap = _mm_andnot_si128(invalid, lt_min);
      const __m128i paired =
          _mm_andnot_si128(_mm_or_si128(invalid, overlap), lt_win);
      const __m128i newlast = _mm_blendv_epi8(vqraw, prev, overlap);
      _mm_store_si128(reinterpret_cast<__m128i*>(lane_new), newlast);
      f.last[keys[i]] = lane_new[0];
      f.last[keys[i + 1]] = lane_new[1];
      f.last[keys[i + 2]] = lane_new[2];
      f.last[keys[i + 3]] = lane_new[3];
      unsigned m = static_cast<unsigned>(
          _mm_movemask_ps(_mm_castsi128_ps(paired)));
      while (m) {
        const int j = __builtin_ctz(m);
        out[cnt++] = HitRecord{keys[i + static_cast<std::size_t>(j)],
                               scan.qoff};
        m &= m - 1;
      }
      ++tiles;
    }
    cnt += prefilter_span_scalar(keys + i, cn - i, f.last, f.base, q_raw,
                                 f.min, f.window, scan.qoff, out + cnt);
    tail += cn - i;
  }
  if (tallies) {
    tallies->tiles += tiles;
    tallies->tail_entries += tail;
  }
  return cnt;
}

std::size_t hit_collect_sse42(const HitScan& scan, HitRecord* out,
                              HitScanTallies* tallies) {
  const __m128i vqoff = _mm_set1_epi32(static_cast<int>(scan.qoff));
  alignas(16) std::uint32_t keys[kHitChunk];
  std::size_t written = 0;
  std::uint64_t tiles = 0;
  std::uint64_t tail = 0;
  for (std::size_t cbeg = 0; cbeg < scan.count; cbeg += kHitChunk) {
    const std::size_t cn = std::min(kHitChunk, scan.count - cbeg);
    decode_keys_scalar(scan.entries + cbeg, cn, scan.bases, scan.offset_bits,
                       scan.key_add, keys);
    std::size_t i = 0;
    for (; i + kLanes <= cn; i += kLanes) {
      const __m128i vkey =
          _mm_load_si128(reinterpret_cast<const __m128i*>(keys + i));
      const __m128i lo = _mm_unpacklo_epi32(vkey, vqoff);
      const __m128i hi = _mm_unpackhi_epi32(vkey, vqoff);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + written), lo);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + written + 2), hi);
      written += kLanes;
      ++tiles;
    }
    for (; i < cn; ++i) {
      out[written++] = HitRecord{keys[i], scan.qoff};
      ++tail;
    }
  }
  if (tallies) {
    tallies->tiles += tiles;
    tallies->tail_entries += tail;
  }
  return scan.count;
}

}  // namespace mublastp::simd::detail

#endif  // MUBLASTP_SIMD_X86
