#include "simd/score_profile.hpp"

namespace mublastp::simd {

void QueryProfile::build(std::span<const Residue> query,
                         const ScoreMatrix& matrix) {
  if (built_for(query, matrix)) return;
  query_data_ = query.data();
  query_len_ = query.size();
  matrix_ = &matrix;
  rows_.assign(query_len_ << kResidueShift, 0);
  for (std::size_t qi = 0; qi < query_len_; ++qi) {
    const auto row = matrix.row(query[qi]);
    Score* dst = rows_.data() + (qi << kResidueShift);
    for (int s = 0; s < kAlphabetSize; ++s) dst[s] = row[s];
  }
}

}  // namespace mublastp::simd
