// FASTA input/output.
//
// Minimal, strict FASTA support: '>' header lines followed by sequence lines;
// blank lines are allowed between records; sequence characters outside the
// protein alphabet are encoded as X (see common/alphabet.hpp). Reading
// streams the file once; there is no record-size limit beyond memory.
#pragma once

#include <iosfwd>
#include <string>

#include "common/sequence.hpp"

namespace mublastp {

/// Parses FASTA text from a stream into `store` (appending). Returns the
/// number of records read. Throws mublastp::Error on malformed input
/// (sequence data before the first header, or an empty record).
std::size_t read_fasta(std::istream& in, SequenceStore& store);

/// Parses a FASTA file by path.
std::size_t read_fasta_file(const std::string& path, SequenceStore& store);

/// Writes `store` as FASTA with `width`-column line wrapping.
void write_fasta(std::ostream& out, const SequenceStore& store,
                 std::size_t width = 70);

/// Writes `store` to the given path.
void write_fasta_file(const std::string& path, const SequenceStore& store,
                      std::size_t width = 70);

}  // namespace mublastp
