// FASTA input/output.
//
// Minimal, strict FASTA support: '>' header lines followed by sequence lines;
// blank lines are allowed between records; CR-LF line endings are accepted;
// sequence characters outside the protein alphabet are encoded as X (see
// common/alphabet.hpp). Reading streams the file once. Malformed input never
// truncates silently: every rejection is a typed mublastp::Error naming the
// record and line.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "common/sequence.hpp"

namespace mublastp {

/// Hard cap on a single record's sequence length. A record this large is a
/// corrupt or mis-concatenated input, not a protein; the cap bounds the
/// allocation a hostile file can force.
inline constexpr std::size_t kMaxFastaRecordBytes = std::size_t{1} << 30;

/// Parses FASTA text from a stream into `store` (appending). Returns the
/// number of records read. Throws mublastp::Error with a typed kind on bad
/// input: kCorrupt for malformed content (sequence data before the first
/// header, a header with no sequence, NUL bytes, a record over
/// kMaxFastaRecordBytes), kIo when the stream itself fails mid-read.
std::size_t read_fasta(std::istream& in, SequenceStore& store);

/// Parses a FASTA file by path.
std::size_t read_fasta_file(const std::string& path, SequenceStore& store);

/// Writes `store` as FASTA with `width`-column line wrapping.
void write_fasta(std::ostream& out, const SequenceStore& store,
                 std::size_t width = 70);

/// Writes `store` to the given path.
void write_fasta_file(const std::string& path, const SequenceStore& store,
                      std::size_t width = 70);

}  // namespace mublastp
