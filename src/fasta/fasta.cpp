#include "fasta/fasta.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "common/faultinject.hpp"

namespace mublastp {
namespace {

// Strips trailing CR (Windows line endings) and surrounding whitespace.
std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.back() == '\r' || s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  return s;
}

std::string at(std::size_t record, std::size_t line) {
  return " (record " + std::to_string(record) + ", line " +
         std::to_string(line) + ")";
}

}  // namespace

std::size_t read_fasta(std::istream& in, SequenceStore& store) {
  MUBLASTP_CHECK_KIND(!MUBLASTP_FI_FAIL("io.read"), ErrorKind::kIo,
                      "injected read failure on FASTA input (io.read)");
  std::string line;
  std::string name;
  std::string seq;
  bool in_record = false;
  std::size_t count = 0;
  std::size_t lineno = 0;        // 1-based line of the last getline
  std::size_t header_line = 0;   // line the open record's header is on

  const auto flush = [&] {
    if (!in_record) return;
    MUBLASTP_CHECK_KIND(!seq.empty(), ErrorKind::kCorrupt,
                        "FASTA record '" + name + "' has no sequence" +
                            at(count + 1, header_line));
    store.add_ascii(seq, name);
    ++count;
    seq.clear();
  };

  while (std::getline(in, line)) {
    ++lineno;
    // A NUL anywhere means the input is not text (truncated write, binary
    // file fed by mistake); fail loudly instead of silently dropping data.
    MUBLASTP_CHECK_KIND(
        std::memchr(line.data(), '\0', line.size()) == nullptr,
        ErrorKind::kCorrupt,
        "FASTA input contains a NUL byte" + at(count + 1, lineno) +
            "; not a text file?");
    const std::string_view t = trimmed(line);
    if (t.empty()) continue;
    if (t.front() == '>') {
      flush();
      name = std::string(t.substr(1));
      in_record = true;
      header_line = lineno;
    } else {
      MUBLASTP_CHECK_KIND(in_record, ErrorKind::kCorrupt,
                          "sequence data before first FASTA header" +
                              at(1, lineno));
      MUBLASTP_CHECK_KIND(
          seq.size() + t.size() <= kMaxFastaRecordBytes, ErrorKind::kCorrupt,
          "FASTA record '" + name + "' exceeds " +
              std::to_string(kMaxFastaRecordBytes >> 30) +
              " GiB" + at(count + 1, lineno) +
              "; refusing unbounded allocation");
      seq.append(t);
    }
  }
  // getline stops on EOF (fine) or a hard stream error (not fine): badbit
  // means residues may have been lost mid-file, so it must not look like a
  // short-but-valid input.
  MUBLASTP_CHECK_KIND(!in.bad(), ErrorKind::kIo,
                      "I/O error reading FASTA input near line " +
                          std::to_string(lineno + 1));
  flush();
  return count;
}

std::size_t read_fasta_file(const std::string& path, SequenceStore& store) {
  std::ifstream in(path);
  MUBLASTP_CHECK_KIND(in.good(), ErrorKind::kIo,
                      "cannot open FASTA file: " + path);
  return read_fasta(in, store);
}

void write_fasta(std::ostream& out, const SequenceStore& store,
                 std::size_t width) {
  MUBLASTP_CHECK(width > 0, "line width must be positive");
  for (SeqId id = 0; id < store.size(); ++id) {
    out << '>' << store.name(id) << '\n';
    const auto seq = store.sequence(id);
    for (std::size_t i = 0; i < seq.size(); i += width) {
      const std::size_t n = std::min(width, seq.size() - i);
      for (std::size_t j = 0; j < n; ++j) {
        out << decode_residue(seq[i + j]);
      }
      out << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const SequenceStore& store,
                      std::size_t width) {
  std::ofstream out(path);
  MUBLASTP_CHECK(out.good(), "cannot open file for writing: " + path);
  write_fasta(out, store, width);
}

}  // namespace mublastp
