#include "fasta/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace mublastp {
namespace {

// Strips trailing CR (Windows line endings) and surrounding whitespace.
std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.back() == '\r' || s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  return s;
}

}  // namespace

std::size_t read_fasta(std::istream& in, SequenceStore& store) {
  std::string line;
  std::string name;
  std::string seq;
  bool in_record = false;
  std::size_t count = 0;

  const auto flush = [&] {
    if (!in_record) return;
    MUBLASTP_CHECK(!seq.empty(), "FASTA record '" + name + "' has no sequence");
    store.add_ascii(seq, name);
    ++count;
    seq.clear();
  };

  while (std::getline(in, line)) {
    const std::string_view t = trimmed(line);
    if (t.empty()) continue;
    if (t.front() == '>') {
      flush();
      name = std::string(t.substr(1));
      in_record = true;
    } else {
      MUBLASTP_CHECK(in_record, "sequence data before first FASTA header");
      seq.append(t);
    }
  }
  flush();
  return count;
}

std::size_t read_fasta_file(const std::string& path, SequenceStore& store) {
  std::ifstream in(path);
  MUBLASTP_CHECK(in.good(), "cannot open FASTA file: " + path);
  return read_fasta(in, store);
}

void write_fasta(std::ostream& out, const SequenceStore& store,
                 std::size_t width) {
  MUBLASTP_CHECK(width > 0, "line width must be positive");
  for (SeqId id = 0; id < store.size(); ++id) {
    out << '>' << store.name(id) << '\n';
    const auto seq = store.sequence(id);
    for (std::size_t i = 0; i < seq.size(); i += width) {
      const std::size_t n = std::min(width, seq.size() - i);
      for (std::size_t j = 0; j < n; ++j) {
        out << decode_residue(seq[i + j]);
      }
      out << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const SequenceStore& store,
                      std::size_t width) {
  std::ofstream out(path);
  MUBLASTP_CHECK(out.good(), "cannot open file for writing: " + path);
  write_fasta(out, store, width);
}

}  // namespace mublastp
