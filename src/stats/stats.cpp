#include "stats/stats.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/json_writer.hpp"

namespace mublastp::stats {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kHitDetect:
      return "hit_detect";
    case Stage::kSort:
      return "sort";
    case Stage::kUngapped:
      return "ungapped";
    case Stage::kGapped:
      return "gapped";
    case Stage::kFinalize:
      return "finalize";
  }
  return "unknown";
}

void PipelineSnapshot::merge(const PipelineSnapshot& o) {
  if (engine.empty()) engine = o.engine;
  if (kernel.empty()) kernel = o.kernel;
  if (!index_load.recorded()) index_load = o.index_load;
  // Degraded state accumulates: the run is partial if any piece was, and a
  // block quarantined in one piece is quarantined for the whole run
  // (deduplicated by id — every batch reports the same load-time list).
  degraded.partial = degraded.partial || o.degraded.partial;
  degraded.load_retries += o.degraded.load_retries;
  degraded.time_budget_trips += o.degraded.time_budget_trips;
  degraded.mem_budget_trips += o.degraded.mem_budget_trips;
  for (const QuarantinedBlock& q : o.degraded.quarantined) {
    bool seen = false;
    for (const QuarantinedBlock& mine : degraded.quarantined) {
      if (mine.block == q.block) {
        seen = true;
        break;
      }
    }
    if (!seen) degraded.quarantined.push_back(q);
  }
  for (const QuarantinedShard& q : o.degraded.quarantined_shards) {
    bool seen = false;
    for (const QuarantinedShard& mine : degraded.quarantined_shards) {
      if (mine.shard == q.shard) {
        seen = true;
        break;
      }
    }
    if (!seen) degraded.quarantined_shards.push_back(q);
  }
  gapped_kernel += o.gapped_kernel;
  hit_kernel += o.hit_kernel;
  perf_counters += o.perf_counters;
  // Shard breakdowns accumulate per shard id (batched sharded runs fold one
  // snapshot per batch); the measured imbalance is recomputed over the
  // summed worker seconds.
  if (!build.recorded()) build = o.build;
  if (!shards.recorded()) {
    shards = o.shards;
  } else if (o.shards.recorded()) {
    shards.count = std::max(shards.count, o.shards.count);
    for (const ShardStats& theirs : o.shards.per_shard) {
      ShardStats* mine = nullptr;
      for (ShardStats& m : shards.per_shard) {
        if (m.shard == theirs.shard) {
          mine = &m;
          break;
        }
      }
      if (mine == nullptr) {
        shards.per_shard.push_back(theirs);
      } else {
        mine->seconds += theirs.seconds;
        mine->hits += theirs.hits;
        mine->alignments += theirs.alignments;
      }
    }
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (const ShardStats& sh : shards.per_shard) {
      lo = first ? sh.seconds : std::min(lo, sh.seconds);
      hi = first ? sh.seconds : std::max(hi, sh.seconds);
      first = false;
    }
    shards.imbalance_measured = hi == 0.0 ? 0.0 : (hi - lo) / hi;
  }
  workspace_peak_bytes = std::max(workspace_peak_bytes,
                                  o.workspace_peak_bytes);
  threads = std::max(threads, o.threads);
  queries += o.queries;
  totals += o.totals;
  for (int s = 0; s < kNumStages; ++s) stage_seconds[s] += o.stage_seconds[s];
  total_seconds += o.total_seconds;
  for (const BlockStats& b : o.per_block) {
    if (per_block.size() <= b.block) per_block.resize(b.block + 1);
    BlockStats& mine = per_block[b.block];
    mine.block = b.block;
    mine.rounds += b.rounds;
    mine.counters += b.counters;
    for (int s = 0; s < kNumStages; ++s) mine.seconds[s] += b.seconds[s];
  }
}

void PipelineStats::begin_run(int threads, std::size_t blocks,
                              std::uint64_t queries) {
  MUBLASTP_CHECK(threads > 0, "stats run needs at least one thread");
  threads_ = threads;
  queries_ = queries;
  total_seconds_ = 0.0;
  accums_.assign(static_cast<std::size_t>(threads), {});
  for (detail::ThreadAccum& a : accums_) {
    a.blocks.resize(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      a.blocks[b].block = static_cast<std::uint32_t>(b);
    }
  }
  blocks_.assign(blocks, {});
  for (std::size_t b = 0; b < blocks; ++b) {
    blocks_[b].block = static_cast<std::uint32_t>(b);
  }
  extra_counters_ = {};
  hit_kernel_ = {};
  extra_seconds_ = {};
  ws_peak_ = 0;
}

void PipelineStats::merge_block(std::uint32_t block) {
  BlockStats& agg = blocks_[block];
  for (detail::ThreadAccum& a : accums_) {
    BlockStats& mine = a.blocks[block];
    agg.rounds += mine.rounds;
    agg.counters += mine.counters;
    for (int s = 0; s < kNumStages; ++s) agg.seconds[s] += mine.seconds[s];
    mine = BlockStats{};
    mine.block = block;
  }
}

void PipelineStats::finish_run(double total_seconds) {
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) merge_block(b);
  for (detail::ThreadAccum& a : accums_) {
    extra_counters_ += a.extra;
    for (int s = 0; s < kNumStages; ++s) extra_seconds_[s] += a.extra_seconds[s];
    ws_peak_ = std::max(ws_peak_, a.ws_peak);
    hit_kernel_ += a.hit_kernel;
    a.extra = {};
    a.extra_seconds = {};
    a.ws_peak = 0;
    a.hit_kernel = {};
  }
  total_seconds_ = total_seconds;
}

PipelineSnapshot PipelineStats::snapshot() const {
  PipelineSnapshot s;
  s.engine = engine_;
  s.kernel = kernel_;
  s.threads = threads_;
  s.queries = queries_;
  s.total_seconds = total_seconds_;
  s.workspace_peak_bytes = ws_peak_;
  s.index_load = index_load_;
  s.degraded = degraded_;
  s.gapped_kernel = gapped_kernel_;
  s.hit_kernel = hit_kernel_;
  s.perf_counters = perf_counters_;
  s.per_block = blocks_;
  s.totals = extra_counters_;
  s.stage_seconds = extra_seconds_;
  for (const BlockStats& b : blocks_) {
    s.totals += b.counters;
    for (int st = 0; st < kNumStages; ++st) {
      s.stage_seconds[st] += b.seconds[st];
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// JSON schema "mublastp-stats-v1" (documented in docs/ALGORITHMS.md).
// ---------------------------------------------------------------------------
namespace {

void append_f(std::string& out, const char* fmt, ...) {
  char buf[128];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

// Round-trip precision, locale-independent (byte-identical to the C-locale
// "%.17g" this schema was originally emitted with).
void append_double(std::string& out, double v) {
  jsonw::append_double(out, v);
}

// Quarantine reasons are produced from our own error messages, but they
// flow into a JSON string and our minimal reader supports no escapes, so
// scrub anything that would break the framing.
std::string json_safe(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\'';
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

void append_counters(std::string& out, const StageCounters& c,
                     const char* indent) {
  append_f(out, "{\n%s  \"hits\": %" PRIu64 ",\n", indent, c.hits);
  append_f(out, "%s  \"hit_pairs\": %" PRIu64 ",\n", indent, c.hit_pairs);
  append_f(out, "%s  \"sorted_records\": %" PRIu64 ",\n", indent,
           c.sorted_records);
  append_f(out, "%s  \"extensions\": %" PRIu64 ",\n", indent, c.extensions);
  append_f(out, "%s  \"ungapped_alignments\": %" PRIu64 ",\n", indent,
           c.ungapped_alignments);
  append_f(out, "%s  \"gapped_extensions\": %" PRIu64 "\n%s}", indent,
           c.gapped_extensions, indent);
}

void append_seconds(std::string& out, const StageSeconds& sec,
                    const char* indent) {
  out += "{";
  for (int s = 0; s < kNumStages; ++s) {
    append_f(out, "%s\"%s\": ", s == 0 ? "" : ", ",
             stage_name(static_cast<Stage>(s)));
    append_double(out, sec[s]);
  }
  (void)indent;
  out += "}";
}

void append_u64_stages(std::string& out,
                       const std::array<std::uint64_t, kNumStages>& v) {
  out += "{";
  for (int s = 0; s < kNumStages; ++s) {
    append_f(out, "%s\"%s\": %" PRIu64, s == 0 ? "" : ", ",
             stage_name(static_cast<Stage>(s)), v[s]);
  }
  out += "}";
}

}  // namespace

std::string to_json(const PipelineSnapshot& s) {
  std::string out;
  out.reserve(1024 + 256 * s.per_block.size());
  out += "{\n  \"schema\": \"mublastp-stats-v1\",\n";
  append_f(out, "  \"engine\": \"%s\",\n", s.engine.c_str());
  if (!s.kernel.empty()) {
    append_f(out, "  \"kernel\": \"%s\",\n", s.kernel.c_str());
  }
  append_f(out, "  \"threads\": %d,\n", s.threads);
  append_f(out, "  \"queries\": %" PRIu64 ",\n", s.queries);
  append_f(out, "  \"blocks\": %zu,\n", s.per_block.size());
  out += "  \"counters\": ";
  append_counters(out, s.totals, "  ");
  out += ",\n  \"survival_ratio\": ";
  append_double(out, s.survival_ratio());
  out += ",\n  \"stage_seconds\": ";
  append_seconds(out, s.stage_seconds, "  ");
  out += ",\n  \"total_seconds\": ";
  append_double(out, s.total_seconds);
  if (s.workspace_peak_bytes != 0) {
    append_f(out, ",\n  \"workspace_peak_bytes\": %" PRIu64,
             s.workspace_peak_bytes);
  }
  if (s.index_load.recorded()) {
    append_f(out, ",\n  \"index\": {\"mode\": \"%s\", \"load_seconds\": ",
             s.index_load.mode.c_str());
    append_double(out, s.index_load.load_seconds);
    append_f(out, ", \"file_bytes\": %" PRIu64
                  ", \"resident_bytes\": %" PRIu64 "}",
             s.index_load.file_bytes, s.index_load.resident_bytes);
  }
  if (s.gapped_kernel.any()) {
    append_f(out,
             ",\n  \"gapped_kernel\": {\"int8_runs\": %" PRIu64
             ", \"int16_reruns\": %" PRIu64
             ", \"scalar_fallbacks\": %" PRIu64 "}",
             s.gapped_kernel.int8_runs, s.gapped_kernel.int16_reruns,
             s.gapped_kernel.scalar_fallbacks);
  }
  if (s.hit_kernel.any()) {
    append_f(out, ",\n  \"hit_kernel\": {\"flatten_builds\": %" PRIu64
                  ", \"flatten_seconds\": ",
             s.hit_kernel.flatten_builds);
    append_double(out, s.hit_kernel.flatten_seconds);
    append_f(out, ", \"tiles\": %" PRIu64 ", \"tail_entries\": %" PRIu64 "}",
             s.hit_kernel.tiles, s.hit_kernel.tail_entries);
  }
  if (s.perf_counters.recorded()) {
    append_f(out, ",\n  \"perf_counters\": {\"sampled_spans\": %" PRIu64
                  ", \"cycles\": ",
             s.perf_counters.sampled_spans);
    append_u64_stages(out, s.perf_counters.cycles);
    out += ", \"instructions\": ";
    append_u64_stages(out, s.perf_counters.instructions);
    out += ", \"llc_misses\": ";
    append_u64_stages(out, s.perf_counters.llc_misses);
    out += ", \"branch_misses\": ";
    append_u64_stages(out, s.perf_counters.branch_misses);
    out += "}";
  }
  if (s.shards.recorded()) {
    append_f(out, ",\n  \"shards\": {\"count\": %u, \"mode\": \"%s\","
                  " \"strategy\": \"%s\", \"imbalance_predicted\": ",
             s.shards.count, s.shards.mode.c_str(),
             s.shards.strategy.c_str());
    append_double(out, s.shards.imbalance_predicted);
    out += ", \"imbalance_measured\": ";
    append_double(out, s.shards.imbalance_measured);
    out += ", \"per_shard\": [";
    for (std::size_t i = 0; i < s.shards.per_shard.size(); ++i) {
      const ShardStats& sh = s.shards.per_shard[i];
      if (i != 0) out += ", ";
      append_f(out, "{\"shard\": %u, \"seconds\": ", sh.shard);
      append_double(out, sh.seconds);
      append_f(out, ", \"hits\": %" PRIu64 ", \"alignments\": %" PRIu64 "}",
               sh.hits, sh.alignments);
    }
    out += "]}";
  }
  if (s.build.recorded()) {
    append_f(out,
             ",\n  \"build\": {\"generation\": %u, \"chain_length\": %u,"
             " \"sequences\": %" PRIu64 ", \"residues\": %" PRIu64
             ", \"threads\": %d, \"plan_seconds\": ",
             s.build.generation, s.build.chain_length, s.build.sequences,
             s.build.residues, s.build.threads);
    append_double(out, s.build.plan_seconds);
    out += ", \"total_seconds\": ";
    append_double(out, s.build.total_seconds);
    out += ", \"block_seconds\": [";
    for (std::size_t i = 0; i < s.build.block_seconds.size(); ++i) {
      if (i != 0) out += ", ";
      append_double(out, s.build.block_seconds[i]);
    }
    out += "]}";
  }
  if (s.degraded.any()) {
    append_f(out,
             ",\n  \"degraded\": {\"partial\": %s, \"load_retries\": %" PRIu64
             ", \"time_budget_trips\": %" PRIu64
             ", \"mem_budget_trips\": %" PRIu64 ", \"quarantined\": [",
             s.degraded.partial ? "true" : "false", s.degraded.load_retries,
             s.degraded.time_budget_trips, s.degraded.mem_budget_trips);
    for (std::size_t i = 0; i < s.degraded.quarantined.size(); ++i) {
      const QuarantinedBlock& q = s.degraded.quarantined[i];
      if (i != 0) out += ", ";
      append_f(out, "{\"block\": %u, \"reason\": \"", q.block);
      out += json_safe(q.reason);
      out += "\"}";
    }
    out += "]";
    // Emitted only when present so pre-sharding degraded snapshots stay
    // byte-identical.
    if (!s.degraded.quarantined_shards.empty()) {
      out += ", \"quarantined_shards\": [";
      for (std::size_t i = 0; i < s.degraded.quarantined_shards.size(); ++i) {
        const QuarantinedShard& q = s.degraded.quarantined_shards[i];
        if (i != 0) out += ", ";
        append_f(out, "{\"shard\": %u, \"reason\": \"", q.shard);
        out += json_safe(q.reason);
        out += "\"}";
      }
      out += "]";
    }
    out += "}";
  }
  out += ",\n  \"per_block\": [";
  for (std::size_t i = 0; i < s.per_block.size(); ++i) {
    const BlockStats& b = s.per_block[i];
    out += i == 0 ? "\n" : ",\n";
    append_f(out, "    {\"block\": %u, \"rounds\": %" PRIu64
                  ", \"counters\": ",
             b.block, b.rounds);
    append_counters(out, b.counters, "    ");
    out += ", \"seconds\": ";
    append_seconds(out, b.seconds, "    ");
    out += "}";
  }
  out += s.per_block.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the schema above (objects, arrays,
// strings without escapes, integer and floating-point numbers). Exists so
// tests can assert the emitted JSON round-trips without an external dep.
// ---------------------------------------------------------------------------
namespace {

struct Parser {
  const char* p;
  const char* end;

  [[noreturn]] void fail(const char* what) const {
    throw Error(std::string("stats JSON: ") + what);
  }
  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  char peek() {
    skip_ws();
    if (p >= end) fail("unexpected end of input");
    return *p;
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected token");
    ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  std::string string() {
    expect('"');
    std::string s;
    while (p < end && *p != '"') {
      if (*p == '\\') fail("escapes not supported");
      s += *p++;
    }
    if (p >= end) fail("unterminated string");
    ++p;
    return s;
  }
  // Numbers are returned as their source token; callers convert.
  std::string number() {
    skip_ws();
    const char* start = p;
    while (p < end && *p != '\0' &&
           (std::strchr("+-.eE", *p) != nullptr || (*p >= '0' && *p <= '9'))) {
      ++p;
    }
    if (p == start) fail("expected a number");
    return std::string(start, p);
  }
  double number_double() { return jsonw::parse_double(number()); }
  std::uint64_t number_u64() {
    return std::strtoull(number().c_str(), nullptr, 10);
  }
  bool boolean() {
    skip_ws();
    if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
      p += 4;
      return true;
    }
    if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
      p += 5;
      return false;
    }
    fail("expected a boolean");
  }
  void skip_value();
  /// Walks an object, invoking fn(key) positioned at each value. fn must
  /// consume the value (or call skip_value()).
  template <typename Fn>
  void object(Fn&& fn) {
    expect('{');
    if (consume('}')) return;
    do {
      const std::string key = string();
      expect(':');
      fn(key);
    } while (consume(','));
    expect('}');
  }
  template <typename Fn>
  void array(Fn&& fn) {
    expect('[');
    if (consume(']')) return;
    do {
      fn();
    } while (consume(','));
    expect(']');
  }
};

void Parser::skip_value() {
  switch (peek()) {
    case '{':
      object([&](const std::string&) { skip_value(); });
      break;
    case '[':
      array([&] { skip_value(); });
      break;
    case '"':
      string();
      break;
    case 't':
    case 'f':
      boolean();
      break;
    default:
      number();
      break;
  }
}

StageCounters parse_counters(Parser& ps) {
  StageCounters c;
  ps.object([&](const std::string& key) {
    if (key == "hits") c.hits = ps.number_u64();
    else if (key == "hit_pairs") c.hit_pairs = ps.number_u64();
    else if (key == "sorted_records") c.sorted_records = ps.number_u64();
    else if (key == "extensions") c.extensions = ps.number_u64();
    else if (key == "ungapped_alignments") c.ungapped_alignments = ps.number_u64();
    else if (key == "gapped_extensions") c.gapped_extensions = ps.number_u64();
    else ps.skip_value();
  });
  return c;
}

StageSeconds parse_seconds(Parser& ps) {
  StageSeconds sec{};
  ps.object([&](const std::string& key) {
    for (int s = 0; s < kNumStages; ++s) {
      if (key == stage_name(static_cast<Stage>(s))) {
        sec[s] = ps.number_double();
        return;
      }
    }
    ps.skip_value();
  });
  return sec;
}

std::array<std::uint64_t, kNumStages> parse_u64_stages(Parser& ps) {
  std::array<std::uint64_t, kNumStages> v{};
  ps.object([&](const std::string& key) {
    for (int s = 0; s < kNumStages; ++s) {
      if (key == stage_name(static_cast<Stage>(s))) {
        v[s] = ps.number_u64();
        return;
      }
    }
    ps.skip_value();
  });
  return v;
}

}  // namespace

PipelineSnapshot from_json(const std::string& json) {
  Parser ps{json.data(), json.data() + json.size()};
  PipelineSnapshot s;
  bool schema_ok = false;
  ps.object([&](const std::string& key) {
    if (key == "schema") {
      schema_ok = ps.string() == "mublastp-stats-v1";
    } else if (key == "engine") {
      s.engine = ps.string();
    } else if (key == "kernel") {
      s.kernel = ps.string();
    } else if (key == "workspace_peak_bytes") {
      s.workspace_peak_bytes = ps.number_u64();
    } else if (key == "threads") {
      s.threads = static_cast<int>(ps.number_u64());
    } else if (key == "queries") {
      s.queries = ps.number_u64();
    } else if (key == "counters") {
      s.totals = parse_counters(ps);
    } else if (key == "stage_seconds") {
      s.stage_seconds = parse_seconds(ps);
    } else if (key == "total_seconds") {
      s.total_seconds = ps.number_double();
    } else if (key == "index") {
      ps.object([&](const std::string& ikey) {
        if (ikey == "mode") s.index_load.mode = ps.string();
        else if (ikey == "load_seconds") s.index_load.load_seconds = ps.number_double();
        else if (ikey == "file_bytes") s.index_load.file_bytes = ps.number_u64();
        else if (ikey == "resident_bytes") s.index_load.resident_bytes = ps.number_u64();
        else ps.skip_value();
      });
    } else if (key == "gapped_kernel") {
      ps.object([&](const std::string& gkey) {
        if (gkey == "int8_runs") {
          s.gapped_kernel.int8_runs = ps.number_u64();
        } else if (gkey == "int16_reruns") {
          s.gapped_kernel.int16_reruns = ps.number_u64();
        } else if (gkey == "scalar_fallbacks") {
          s.gapped_kernel.scalar_fallbacks = ps.number_u64();
        } else {
          ps.skip_value();
        }
      });
    } else if (key == "hit_kernel") {
      ps.object([&](const std::string& hkey) {
        if (hkey == "flatten_builds") {
          s.hit_kernel.flatten_builds = ps.number_u64();
        } else if (hkey == "flatten_seconds") {
          s.hit_kernel.flatten_seconds = ps.number_double();
        } else if (hkey == "tiles") {
          s.hit_kernel.tiles = ps.number_u64();
        } else if (hkey == "tail_entries") {
          s.hit_kernel.tail_entries = ps.number_u64();
        } else {
          ps.skip_value();
        }
      });
    } else if (key == "perf_counters") {
      ps.object([&](const std::string& pkey) {
        if (pkey == "sampled_spans") {
          s.perf_counters.sampled_spans = ps.number_u64();
        } else if (pkey == "cycles") {
          s.perf_counters.cycles = parse_u64_stages(ps);
        } else if (pkey == "instructions") {
          s.perf_counters.instructions = parse_u64_stages(ps);
        } else if (pkey == "llc_misses") {
          s.perf_counters.llc_misses = parse_u64_stages(ps);
        } else if (pkey == "branch_misses") {
          s.perf_counters.branch_misses = parse_u64_stages(ps);
        } else {
          ps.skip_value();
        }
      });
    } else if (key == "build") {
      ps.object([&](const std::string& bkey) {
        if (bkey == "generation") {
          s.build.generation = static_cast<std::uint32_t>(ps.number_u64());
        } else if (bkey == "chain_length") {
          s.build.chain_length = static_cast<std::uint32_t>(ps.number_u64());
        } else if (bkey == "sequences") {
          s.build.sequences = ps.number_u64();
        } else if (bkey == "residues") {
          s.build.residues = ps.number_u64();
        } else if (bkey == "threads") {
          s.build.threads = static_cast<int>(ps.number_u64());
        } else if (bkey == "plan_seconds") {
          s.build.plan_seconds = ps.number_double();
        } else if (bkey == "total_seconds") {
          s.build.total_seconds = ps.number_double();
        } else if (bkey == "block_seconds") {
          ps.array([&] { s.build.block_seconds.push_back(ps.number_double()); });
        } else {
          ps.skip_value();
        }
      });
    } else if (key == "degraded") {
      ps.object([&](const std::string& dkey) {
        if (dkey == "partial") {
          s.degraded.partial = ps.boolean();
        } else if (dkey == "load_retries") {
          s.degraded.load_retries = ps.number_u64();
        } else if (dkey == "time_budget_trips") {
          s.degraded.time_budget_trips = ps.number_u64();
        } else if (dkey == "mem_budget_trips") {
          s.degraded.mem_budget_trips = ps.number_u64();
        } else if (dkey == "quarantined") {
          ps.array([&] {
            QuarantinedBlock q;
            ps.object([&](const std::string& qkey) {
              if (qkey == "block") {
                q.block = static_cast<std::uint32_t>(ps.number_u64());
              } else if (qkey == "reason") {
                q.reason = ps.string();
              } else {
                ps.skip_value();
              }
            });
            s.degraded.quarantined.push_back(std::move(q));
          });
        } else if (dkey == "quarantined_shards") {
          ps.array([&] {
            QuarantinedShard q;
            ps.object([&](const std::string& qkey) {
              if (qkey == "shard") {
                q.shard = static_cast<std::uint32_t>(ps.number_u64());
              } else if (qkey == "reason") {
                q.reason = ps.string();
              } else {
                ps.skip_value();
              }
            });
            s.degraded.quarantined_shards.push_back(std::move(q));
          });
        } else {
          ps.skip_value();
        }
      });
    } else if (key == "shards") {
      ps.object([&](const std::string& skey) {
        if (skey == "count") {
          s.shards.count = static_cast<std::uint32_t>(ps.number_u64());
        } else if (skey == "mode") {
          s.shards.mode = ps.string();
        } else if (skey == "strategy") {
          s.shards.strategy = ps.string();
        } else if (skey == "imbalance_predicted") {
          s.shards.imbalance_predicted = ps.number_double();
        } else if (skey == "imbalance_measured") {
          s.shards.imbalance_measured = ps.number_double();
        } else if (skey == "per_shard") {
          ps.array([&] {
            ShardStats sh;
            ps.object([&](const std::string& shkey) {
              if (shkey == "shard") {
                sh.shard = static_cast<std::uint32_t>(ps.number_u64());
              } else if (shkey == "seconds") {
                sh.seconds = ps.number_double();
              } else if (shkey == "hits") {
                sh.hits = ps.number_u64();
              } else if (shkey == "alignments") {
                sh.alignments = ps.number_u64();
              } else {
                ps.skip_value();
              }
            });
            s.shards.per_shard.push_back(sh);
          });
        } else {
          ps.skip_value();
        }
      });
    } else if (key == "per_block") {
      ps.array([&] {
        BlockStats b;
        ps.object([&](const std::string& bkey) {
          if (bkey == "block") b.block = static_cast<std::uint32_t>(ps.number_u64());
          else if (bkey == "rounds") b.rounds = ps.number_u64();
          else if (bkey == "counters") b.counters = parse_counters(ps);
          else if (bkey == "seconds") b.seconds = parse_seconds(ps);
          else ps.skip_value();
        });
        s.per_block.push_back(std::move(b));
      });
    } else {
      // "blocks" and "survival_ratio" are derived; tolerate unknown keys so
      // minor-version additions stay readable.
      ps.skip_value();
    }
  });
  ps.skip_ws();
  MUBLASTP_CHECK(ps.p == ps.end, "trailing garbage after stats JSON");
  MUBLASTP_CHECK(schema_ok, "missing or unsupported stats JSON schema");
  return s;
}

void print_table(std::FILE* out, const PipelineSnapshot& s) {
  std::fprintf(out, "pipeline stats: engine=%s threads=%d queries=%" PRIu64
                    " blocks=%zu\n",
               s.engine.c_str(), s.threads, s.queries, s.per_block.size());
  if (!s.kernel.empty()) {
    std::fprintf(out, "  %-22s %15s\n", "kernel", s.kernel.c_str());
  }
  if (s.workspace_peak_bytes != 0) {
    std::fprintf(out, "  %-22s %14" PRIu64 "B\n", "workspace_peak",
                 s.workspace_peak_bytes);
  }
  const StageCounters& c = s.totals;
  std::fprintf(out, "  %-22s %15" PRIu64 "\n", "hits", c.hits);
  std::fprintf(out, "  %-22s %15" PRIu64 "\n", "hit_pairs", c.hit_pairs);
  std::fprintf(out, "  %-22s %15" PRIu64 "\n", "sorted_records",
               c.sorted_records);
  std::fprintf(out, "  %-22s %15" PRIu64 "\n", "extensions", c.extensions);
  std::fprintf(out, "  %-22s %15" PRIu64 "\n", "ungapped_alignments",
               c.ungapped_alignments);
  std::fprintf(out, "  %-22s %15" PRIu64 "\n", "gapped_extensions",
               c.gapped_extensions);
  std::fprintf(out, "  %-22s %15.4f%%\n", "survival_ratio",
               100.0 * s.survival_ratio());
  if (s.gapped_kernel.any()) {
    std::fprintf(out, "  %-22s %15" PRIu64 "\n", "gapped_int8_runs",
                 s.gapped_kernel.int8_runs);
    std::fprintf(out, "  %-22s %15" PRIu64 "\n", "gapped_int16_reruns",
                 s.gapped_kernel.int16_reruns);
    std::fprintf(out, "  %-22s %15" PRIu64 "\n", "gapped_scalar_fallbacks",
                 s.gapped_kernel.scalar_fallbacks);
  }
  if (s.hit_kernel.any()) {
    std::fprintf(out, "  %-22s %15" PRIu64 "\n", "hit_flatten_builds",
                 s.hit_kernel.flatten_builds);
    std::fprintf(out, "  %-22s %14.4fs\n", "hit_flatten_time",
                 s.hit_kernel.flatten_seconds);
    std::fprintf(out, "  %-22s %15" PRIu64 "\n", "hit_tiles",
                 s.hit_kernel.tiles);
    std::fprintf(out, "  %-22s %15" PRIu64 "\n", "hit_tail_entries",
                 s.hit_kernel.tail_entries);
  }
  for (int st = 0; st < kNumStages; ++st) {
    std::fprintf(out, "  %-22s %14.4fs\n",
                 stage_name(static_cast<Stage>(st)), s.stage_seconds[st]);
  }
  std::fprintf(out, "  %-22s %14.4fs\n", "total", s.total_seconds);
  if (s.perf_counters.recorded()) {
    std::fprintf(out, "  perf counters (%" PRIu64 " sampled spans):\n",
                 s.perf_counters.sampled_spans);
    for (int st = 0; st < kNumStages; ++st) {
      std::fprintf(out,
                   "    %-12s cycles=%-14" PRIu64 " instr=%-14" PRIu64
                   " llc_miss=%-12" PRIu64 " br_miss=%" PRIu64 "\n",
                   stage_name(static_cast<Stage>(st)),
                   s.perf_counters.cycles[st], s.perf_counters.instructions[st],
                   s.perf_counters.llc_misses[st],
                   s.perf_counters.branch_misses[st]);
    }
  }
  if (s.index_load.recorded()) {
    std::fprintf(out, "  index load: mode=%s load=%.4fs file=%" PRIu64
                      "B resident=%" PRIu64 "B\n",
                 s.index_load.mode.c_str(), s.index_load.load_seconds,
                 s.index_load.file_bytes, s.index_load.resident_bytes);
  }
  if (s.shards.recorded()) {
    std::fprintf(out,
                 "  shards: count=%u mode=%s strategy=%s"
                 " imbalance predicted=%.4f measured=%.4f\n",
                 s.shards.count, s.shards.mode.c_str(),
                 s.shards.strategy.c_str(), s.shards.imbalance_predicted,
                 s.shards.imbalance_measured);
    for (const ShardStats& sh : s.shards.per_shard) {
      std::fprintf(out,
                   "    shard %-3u %10.4fs %12" PRIu64 " hits %8" PRIu64
                   " alignments\n",
                   sh.shard, sh.seconds, sh.hits, sh.alignments);
    }
  }
  if (s.build.recorded()) {
    std::fprintf(out,
                 "  build: generation=%u chain_length=%u sequences=%" PRIu64
                 " residues=%" PRIu64 " threads=%d\n",
                 s.build.generation, s.build.chain_length, s.build.sequences,
                 s.build.residues, s.build.threads);
    std::fprintf(out, "    plan=%.4fs total=%.4fs blocks=%zu\n",
                 s.build.plan_seconds, s.build.total_seconds,
                 s.build.block_seconds.size());
  }
  if (s.degraded.any()) {
    std::fprintf(out,
                 "  DEGRADED: partial=%s load_retries=%" PRIu64
                 " time_budget_trips=%" PRIu64 " mem_budget_trips=%" PRIu64
                 "\n",
                 s.degraded.partial ? "yes" : "no", s.degraded.load_retries,
                 s.degraded.time_budget_trips, s.degraded.mem_budget_trips);
    for (const QuarantinedBlock& q : s.degraded.quarantined) {
      std::fprintf(out, "    quarantined block %u: %s\n", q.block,
                   q.reason.c_str());
    }
    for (const QuarantinedShard& q : s.degraded.quarantined_shards) {
      std::fprintf(out, "    quarantined shard %u: %s\n", q.shard,
                   q.reason.c_str());
    }
  }
}

}  // namespace mublastp::stats
