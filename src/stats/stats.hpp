// Pipeline telemetry: the paper's stage-level accounting (per-stage time
// breakdowns of Figure 2, the <5% pre-filter survival ratio of Figure 6,
// hit/pair/extension/HSP counts) as a runtime-observable subsystem.
//
// Mirrors the memsim MemoryModel pattern: engine kernels are templated on a
// stats policy. The default NullStats compiles to nothing — every hook is a
// no-op the optimizer removes, so uninstrumented searches pay zero cost.
// PipelineStats is the runtime collector: per-stage wall time, pipeline
// counters and per-block aggregates, collected into per-thread accumulators
// that are merged at block end (the serial point of the Algorithm 3 block
// loop). Because counter addition is associative and commutative and every
// (block, query) round produces the same delta on any thread, the merged
// counters are bit-identical regardless of thread count or schedule — which
// is what makes pipeline behaviour assertable in tests.
//
// Granularity note: the recorder hooks fire once per (block, query) round
// and once per stage-3/4 query, never per hit. Per-hit counting stays in
// the per-query StageStats (core/params.hpp) the engines already maintain;
// the recorder receives the round's delta of those counters.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace mublastp::stats {

/// Pipeline stages, in execution order. For the interleaved engines
/// (query-indexed "NCBI" and database-indexed "NCBI-db") detection and
/// ungapped extension are fused, so their whole stage-1/2 scan is booked
/// under kHitDetect and kSort/kUngapped stay zero — the asymmetry the
/// paper's decoupling removes.
enum class Stage : int {
  kHitDetect = 0,  ///< hit detection (+ pre-filter)
  kSort,           ///< hit reordering (radix sort)
  kUngapped,       ///< ungapped extension sweep
  kGapped,         ///< gapped extension (score-only)
  kFinalize,       ///< merge, cull, traceback, E-values
};
inline constexpr int kNumStages = 5;

/// Stable JSON field name of a stage ("hit_detect", "sort", ...).
const char* stage_name(Stage s);

/// Whole-pipeline counters. Deterministic for a fixed input: independent of
/// thread count, schedule and wall time.
struct StageCounters {
  std::uint64_t hits = 0;                ///< stage-1 word hits
  std::uint64_t hit_pairs = 0;           ///< two-hit pairs (pre-filter out)
  std::uint64_t sorted_records = 0;      ///< records through the reorder
  std::uint64_t extensions = 0;          ///< ungapped extensions executed
  std::uint64_t ungapped_alignments = 0; ///< HSPs (score >= ungapped cutoff)
  std::uint64_t gapped_extensions = 0;   ///< gapped extensions executed

  StageCounters& operator+=(const StageCounters& o) {
    hits += o.hits;
    hit_pairs += o.hit_pairs;
    sorted_records += o.sorted_records;
    extensions += o.extensions;
    ungapped_alignments += o.ungapped_alignments;
    gapped_extensions += o.gapped_extensions;
    return *this;
  }
  friend bool operator==(const StageCounters&, const StageCounters&) = default;

  /// Pre-filter survival ratio (Figure 6): fraction of stage-1 hits that
  /// become two-hit pairs. 0 when there were no hits at all (empty or
  /// all-ambiguity inputs must not divide by zero).
  double survival_ratio() const {
    return hits == 0 ? 0.0
                     : static_cast<double>(hit_pairs) /
                           static_cast<double>(hits);
  }
};

/// Copies the counter fields out of any struct exposing them under the same
/// names (core's per-query StageStats; core depends on this library, so the
/// coupling is by field name only).
template <typename S>
StageCounters counters_of(const S& s) {
  return {s.hits,       s.hit_pairs,           s.sorted_records,
          s.extensions, s.ungapped_alignments, s.gapped_extensions};
}

/// Delta between two snapshots of the same accumulating struct.
template <typename S>
StageCounters counters_between(const S& after, const S& before) {
  return {after.hits - before.hits,
          after.hit_pairs - before.hit_pairs,
          after.sorted_records - before.sorted_records,
          after.extensions - before.extensions,
          after.ungapped_alignments - before.ungapped_alignments,
          after.gapped_extensions - before.gapped_extensions};
}

/// Seconds per Stage, indexed by static_cast<int>(Stage).
using StageSeconds = std::array<double, kNumStages>;

/// Aggregate over every (query, block) round of one index block.
struct BlockStats {
  std::uint32_t block = 0;
  std::uint64_t rounds = 0;  ///< (block, query) rounds aggregated
  StageCounters counters;
  StageSeconds seconds{};
};

/// How the database index behind a run was obtained. Populated only by
/// tools that load an index from disk; an empty `mode` means "not
/// recorded" and the whole object is omitted from the JSON, so snapshots
/// from in-memory runs are byte-identical to pre-v3 output.
struct IndexLoadStats {
  std::string mode;                 ///< "" (unset), "copy" or "mmap"
  double load_seconds = 0.0;        ///< open + parse (+ checksum) wall time
  std::uint64_t file_bytes = 0;     ///< index file size
  std::uint64_t resident_bytes = 0; ///< mincore() residency (mmap only)

  bool recorded() const { return !mode.empty(); }
  friend bool operator==(const IndexLoadStats&,
                         const IndexLoadStats&) = default;
};

/// One index block excluded from a degraded-mode run (mirror of the index
/// layer's BlockQuarantine; duplicated here so the stats library keeps its
/// no-dependency footprint — tools convert between the two).
struct QuarantinedBlock {
  std::uint32_t block = 0;
  std::string reason;

  friend bool operator==(const QuarantinedBlock&,
                         const QuarantinedBlock&) = default;
};

/// One shard excluded from a sharded run: its worker crashed, was
/// fault-injected, or its index failed to load. The surviving shards'
/// merged results are complete for every subject they hold; this records
/// which slice of the database is missing and why.
struct QuarantinedShard {
  std::uint32_t shard = 0;
  std::string reason;

  friend bool operator==(const QuarantinedShard&,
                         const QuarantinedShard&) = default;
};

/// Tier tallies of the banded gapped-extension kernel: which numeric width
/// each extension half ran at. Execution-strategy telemetry, not part of
/// the deterministic StageCounters set — all-zero on scalar runs (and
/// omitted from the JSON then), identical between SSE4.2 and AVX2 because
/// the int8 -> int16 -> scalar escalation is value-driven.
struct GappedKernelStats {
  std::uint64_t int8_runs = 0;         ///< halves settled by the int8 pass
  std::uint64_t int16_reruns = 0;      ///< halves re-run at int16 (overflow)
  std::uint64_t scalar_fallbacks = 0;  ///< halves that fell back to scalar

  bool any() const {
    return int8_runs != 0 || int16_reruns != 0 || scalar_fallbacks != 0;
  }
  GappedKernelStats& operator+=(const GappedKernelStats& o) {
    int8_runs += o.int8_runs;
    int16_reruns += o.int16_reruns;
    scalar_fallbacks += o.scalar_fallbacks;
    return *this;
  }
  friend bool operator==(const GappedKernelStats&,
                         const GappedKernelStats&) = default;
};

/// Telemetry of the query-specialized hit-detection path: flattened-lookup
/// build work plus the vector-tile vs scalar-tail split of the hit-scan
/// kernels. Execution-strategy telemetry like GappedKernelStats, NOT a
/// deterministic counter set — tile counts differ between the 4-lane
/// SSE4.2 and 8-lane AVX2 kernels (the hits they produce do not). All-zero
/// on scalar/traced runs and omitted from the JSON then.
struct HitKernelStats {
  std::uint64_t flatten_builds = 0;   ///< FlatNeighborhood (re)builds
  double flatten_seconds = 0.0;       ///< wall time spent building them
  std::uint64_t tiles = 0;            ///< full vector prefilter/collect tiles
  std::uint64_t tail_entries = 0;     ///< posting entries done by scalar tails

  bool any() const {
    return flatten_builds != 0 || flatten_seconds != 0.0 || tiles != 0 ||
           tail_entries != 0;
  }
  HitKernelStats& operator+=(const HitKernelStats& o) {
    flatten_builds += o.flatten_builds;
    flatten_seconds += o.flatten_seconds;
    tiles += o.tiles;
    tail_entries += o.tail_entries;
    return *this;
  }
  friend bool operator==(const HitKernelStats&,
                         const HitKernelStats&) = default;
};

/// Per-stage hardware-counter totals sampled by the tracer's perf_event
/// groups (src/trace/perfctr). Optional like GappedKernelStats: populated
/// only when a run was traced with counters enabled AND perf_event_open
/// succeeded; omitted from the JSON otherwise, so untraced (and
/// counter-unavailable) runs stay byte-identical to prior output. These are
/// measurements, not deterministic counters — values vary run to run.
struct PerfCounterStats {
  std::uint64_t sampled_spans = 0;  ///< spans that carried counter deltas
  std::array<std::uint64_t, kNumStages> cycles{};
  std::array<std::uint64_t, kNumStages> instructions{};
  std::array<std::uint64_t, kNumStages> llc_misses{};
  std::array<std::uint64_t, kNumStages> branch_misses{};

  bool recorded() const { return sampled_spans != 0; }
  PerfCounterStats& operator+=(const PerfCounterStats& o) {
    sampled_spans += o.sampled_spans;
    for (int i = 0; i < kNumStages; ++i) {
      cycles[i] += o.cycles[i];
      instructions[i] += o.instructions[i];
      llc_misses[i] += o.llc_misses[i];
      branch_misses[i] += o.branch_misses[i];
    }
    return *this;
  }
  friend bool operator==(const PerfCounterStats&,
                         const PerfCounterStats&) = default;
};

/// Everything a degraded-mode run wants the caller (and the JSON consumer)
/// to know about how it deviated from a clean run. Default-constructed ==
/// "nothing degraded", and the whole object is omitted from the JSON then,
/// so clean runs are byte-identical to pre-degraded output.
struct DegradedStats {
  std::vector<QuarantinedBlock> quarantined;  ///< blocks excluded + why
  std::vector<QuarantinedShard> quarantined_shards;  ///< shards excluded + why
  std::uint64_t load_retries = 0;       ///< index load retry attempts
  std::uint64_t time_budget_trips = 0;  ///< queries cut off by --time-budget
  std::uint64_t mem_budget_trips = 0;   ///< workspace shrinks by --mem-budget
  bool partial = false;                 ///< results incomplete (exit code 3)

  bool any() const {
    return partial || load_retries != 0 || time_budget_trips != 0 ||
           mem_budget_trips != 0 || !quarantined.empty() ||
           !quarantined_shards.empty();
  }
  friend bool operator==(const DegradedStats&,
                         const DegradedStats&) = default;
};

/// Telemetry of one index build (mublastp_makedb; the stats-v1 "build"
/// object). Covers full builds, --append delta builds and --compact
/// rebuilds alike: the counts describe what THIS build indexed (for an
/// append, the delta only), generation/chain_length describe the published
/// result. Default-constructed == "not a build run"; omitted from the JSON
/// then, so search snapshots are byte-identical to before.
struct BuildStats {
  std::uint32_t generation = 0;    ///< generation published (0 = plain build)
  std::uint32_t chain_length = 1;  ///< members in the published generation
  std::uint64_t sequences = 0;     ///< sequences this build indexed
  std::uint64_t residues = 0;      ///< residues this build indexed
  int threads = 0;                 ///< per-block build parallelism used
  double plan_seconds = 0.0;       ///< serial sort + block-range planning
  double total_seconds = 0.0;      ///< whole DbIndex::build wall time
  std::vector<double> block_seconds;  ///< per-block construction wall time

  bool recorded() const { return threads != 0; }
  friend bool operator==(const BuildStats&, const BuildStats&) = default;
};

/// One shard's contribution to a sharded run: wall time of its worker and
/// what it found. A quarantined shard keeps its entry with zeros.
struct ShardStats {
  std::uint32_t shard = 0;
  double seconds = 0.0;          ///< worker wall time across the batch
  std::uint64_t hits = 0;        ///< stage-1 word hits in this shard
  std::uint64_t alignments = 0;  ///< final alignments contributed (pre-merge)

  friend bool operator==(const ShardStats&, const ShardStats&) = default;
};

/// Per-shard breakdown of a sharded run (the stats-v1 "shards" object).
/// Default-constructed (count == 0) == "not a sharded run"; omitted from
/// the JSON then, so single-index snapshots are byte-identical to before.
struct ShardsStats {
  std::uint32_t count = 0;       ///< shard_count of the manifest
  std::string mode;              ///< "thread" or "process"
  std::string strategy;          ///< partition strategy_name()
  /// (max - min) / max of per-shard residue counts — the static balance the
  /// partitioner promised.
  double imbalance_predicted = 0.0;
  /// Same ratio over the measured per-shard worker seconds — what the run
  /// actually saw. Cross-checked against the discrete-event simulator in
  /// bench/shard_balance.
  double imbalance_measured = 0.0;
  std::vector<ShardStats> per_shard;

  bool recorded() const { return count != 0; }
  friend bool operator==(const ShardsStats&, const ShardsStats&) = default;
};

/// Immutable result of one collection run — exactly what the JSON schema
/// (docs/ALGORITHMS.md "Telemetry") serializes.
struct PipelineSnapshot {
  std::string engine;          ///< "mublastp", "ncbi-db", "ncbi"
  std::string kernel;          ///< "" (unset), "scalar", "sse42", "avx2"
  int threads = 0;
  std::uint64_t queries = 0;
  StageCounters totals;
  StageSeconds stage_seconds{};
  double total_seconds = 0.0;  ///< wall time of the whole run
  /// Peak per-thread workspace footprint (bytes). Informational, not a
  /// deterministic counter: with dynamic scheduling the peak depends on
  /// which queries land on which thread. 0 means "not recorded"; omitted
  /// from the JSON then, like index_load.
  std::uint64_t workspace_peak_bytes = 0;
  std::vector<BlockStats> per_block;
  IndexLoadStats index_load;   ///< optional; see IndexLoadStats
  DegradedStats degraded;      ///< optional; omitted from JSON when !any()
  GappedKernelStats gapped_kernel;  ///< optional; omitted when !any()
  HitKernelStats hit_kernel;   ///< optional; omitted when !any()
  PerfCounterStats perf_counters;  ///< optional; omitted when !recorded()
  ShardsStats shards;          ///< optional; omitted when !recorded()
  BuildStats build;            ///< optional; omitted when !recorded()

  double survival_ratio() const { return totals.survival_ratio(); }

  /// Folds another run into this one (benches aggregating per-query runs).
  void merge(const PipelineSnapshot& o);
};

/// Serializes a snapshot to the stable "mublastp-stats-v1" JSON schema.
/// Doubles are printed with round-trip precision, so
/// to_json(from_json(s)) == s for any s this function produced.
std::string to_json(const PipelineSnapshot& s);

/// Parses a snapshot back. Accepts exactly the schema to_json emits (field
/// order-insensitive); throws mublastp::Error on malformed input.
PipelineSnapshot from_json(const std::string& json);

/// Human-readable table (the --stats output of the tools).
void print_table(std::FILE* out, const PipelineSnapshot& s);

/// Compile-time-off policy: every hook is an empty inline the optimizer
/// deletes, so instrumented kernels cost nothing when built with it.
struct NullStats {
  static constexpr bool kEnabled = false;
  struct Recorder {
    static constexpr bool kEnabled = false;
    void block_round(std::uint32_t, const StageCounters&, double, double,
                     double) const {}
    void stage(Stage, double) const {}
    void add(const StageCounters&) const {}
    void workspace(std::uint64_t) const {}
    void hit_kernel(const HitKernelStats&) const {}
    /// Stage-boundary timestamp hook; only the tracing recorder wrapper
    /// (trace::TracingRecorder) gives it a body.
    void mark() const {}
  };
  void begin_run(int, std::size_t, std::uint64_t) const {}
  Recorder recorder(int) const { return {}; }
  void merge_block(std::uint32_t) const {}
  void finish_run(double) const {}
};

/// Stopwatch that vanishes (no clock reads) when the policy is disabled.
template <bool Enabled>
class LapTimer;

template <>
class LapTimer<false> {
 public:
  double lap() { return 0.0; }
};

template <>
class LapTimer<true> {
 public:
  /// Seconds since construction or the previous lap; restarts the clock.
  double lap() {
    const double s = timer_.seconds();
    timer_.reset();
    return s;
  }

 private:
  Timer timer_;
};

namespace detail {

/// One thread's private accumulator: per-block rounds plus the stage-3/4
/// spill that has no block attribution. Written by exactly one thread
/// between merges, so no synchronization is needed.
struct ThreadAccum {
  std::vector<BlockStats> blocks;  ///< indexed by block id
  StageCounters extra;
  StageSeconds extra_seconds{};
  std::uint64_t ws_peak = 0;       ///< workspace-bytes high-water mark
  HitKernelStats hit_kernel;       ///< hit-scan kernel telemetry
};

}  // namespace detail

/// Runtime collector. Lifecycle: begin_run sizes one accumulator per
/// thread; during parallel regions each thread writes only its own
/// accumulator through its Recorder (no locks, no atomics); merge_block /
/// finish_run fold accumulators in serial code.
class PipelineStats {
 public:
  static constexpr bool kEnabled = true;

  explicit PipelineStats(std::string engine = "mublastp")
      : engine_(std::move(engine)) {}

  /// Prepares a run: clears all prior state and sizes `threads`
  /// accumulators over `blocks` index blocks for `queries` queries.
  void begin_run(int threads, std::size_t blocks, std::uint64_t queries);

  /// Write handle bound to one thread's accumulator. Cheap to copy; must
  /// only be used by the thread it was requested for.
  class Recorder {
   public:
    static constexpr bool kEnabled = true;

    /// Books one (block, query) round of stages 1-2.
    void block_round(std::uint32_t block, const StageCounters& c,
                     double detect_sec, double sort_sec, double extend_sec) {
      BlockStats& b = accum_->blocks[block];
      ++b.rounds;
      b.counters += c;
      b.seconds[static_cast<int>(Stage::kHitDetect)] += detect_sec;
      b.seconds[static_cast<int>(Stage::kSort)] += sort_sec;
      b.seconds[static_cast<int>(Stage::kUngapped)] += extend_sec;
    }
    /// Books stage-3/4 wall time (not attributable to one block).
    void stage(Stage s, double sec) {
      accum_->extra_seconds[static_cast<int>(s)] += sec;
    }
    /// Books stage-3/4 counter deltas.
    void add(const StageCounters& c) { accum_->extra += c; }
    /// Books this thread's current workspace footprint (high-water mark).
    void workspace(std::uint64_t bytes) {
      if (bytes > accum_->ws_peak) accum_->ws_peak = bytes;
    }
    /// Books hit-scan kernel telemetry (flatten builds, tile/tail split).
    void hit_kernel(const HitKernelStats& d) { accum_->hit_kernel += d; }
    /// Stage-boundary timestamp hook; a no-op here — only the tracing
    /// recorder wrapper (trace::TracingRecorder) gives it a body.
    void mark() const {}

   private:
    friend class PipelineStats;
    explicit Recorder(detail::ThreadAccum* a) : accum_(a) {}
    detail::ThreadAccum* accum_;
  };

  Recorder recorder(int thread) { return Recorder(&accums_[thread]); }

  /// The Algorithm 3 barrier merge: folds every thread's accumulator for
  /// `block` into the run aggregate and clears it. Called from the serial
  /// section after each block's parallel region.
  void merge_block(std::uint32_t block);

  /// Folds everything still unmerged (engines without a serial block loop
  /// never call merge_block) and stamps the run wall time.
  void finish_run(double total_seconds);

  /// Aggregated view of the run; call after finish_run.
  PipelineSnapshot snapshot() const;

  /// Stamps how the index behind this run was obtained; carried into every
  /// subsequent snapshot(). Independent of begin_run/finish_run (set it
  /// once after loading, before or after the searches).
  void set_index_load(IndexLoadStats s) { index_load_ = std::move(s); }

  /// Stamps the kernel path the run executed with ("scalar", "sse42",
  /// "avx2"). Engines set it right after begin_run; carried into every
  /// subsequent snapshot(). Empty means "not recorded" (omitted from JSON).
  void set_kernel(std::string kernel) { kernel_ = std::move(kernel); }

  /// Stamps how a degraded-mode run deviated (quarantined blocks, budget
  /// trips, partial flag); carried into every subsequent snapshot().
  void set_degraded(DegradedStats d) { degraded_ = std::move(d); }

  /// Stamps the banded gapped-kernel tier tallies of the run (engines set
  /// it from the summed per-query StageStats right before finish_run);
  /// carried into every subsequent snapshot(). All-zero means "scalar
  /// gapped DP" and is omitted from the JSON.
  void set_gapped_kernel(GappedKernelStats g) { gapped_kernel_ = g; }

  /// Stamps the per-stage hardware-counter totals sampled by the tracer
  /// (tools fold trace::Tracer::perf_totals() in after the run); carried
  /// into every subsequent snapshot(). Zero sampled_spans means "no
  /// counters" and is omitted from the JSON.
  void set_perf_counters(PerfCounterStats p) { perf_counters_ = p; }

  const std::string& engine() const { return engine_; }

 private:
  std::string engine_;
  std::string kernel_;
  IndexLoadStats index_load_;
  DegradedStats degraded_;
  GappedKernelStats gapped_kernel_;
  PerfCounterStats perf_counters_;
  int threads_ = 0;
  std::uint64_t queries_ = 0;
  double total_seconds_ = 0.0;
  std::uint64_t ws_peak_ = 0;
  HitKernelStats hit_kernel_;  ///< folded from accumulators at finish_run
  std::vector<detail::ThreadAccum> accums_;
  std::vector<BlockStats> blocks_;  ///< merged per-block aggregates
  StageCounters extra_counters_;    ///< merged stage-3/4 counters
  StageSeconds extra_seconds_{};    ///< merged stage-3/4 seconds
};

}  // namespace mublastp::stats
