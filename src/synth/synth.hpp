// Synthetic protein databases and query sets.
//
// The paper evaluates on two public NCBI databases: uniprot_sprot (~300k
// sequences, 250MB, median length 292, mean 355) and env_nr (~6M sequences,
// 1.7GB, median 177, mean 197). Those files are not available offline, so
// this module generates statistical stand-ins:
//
//  * lengths  ~ lognormal fitted to the published median/mean (a lognormal's
//    median fixes mu and the mean/median ratio fixes sigma), truncated to the
//    paper's observed range (Fig. 7: bulk of sequences in 60..1000);
//  * residues ~ Robinson-Robinson background frequencies;
//  * a configurable fraction of sequences belong to planted homologous
//    families (mutated copies of a family parent) so that hit detection and
//    extension fire at realistic rates rather than at the random-background
//    floor.
//
// Queries are sampled from the generated database exactly as in the paper
// (Section V-A): fixed-length sets of 128/256/512 plus a "mixed" set that
// follows the database's own length distribution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sequence.hpp"

namespace mublastp::synth {

/// Parameters of a synthetic database.
struct DatabaseSpec {
  std::string name;                  ///< label used in bench output
  std::size_t target_residues = 1 << 22;  ///< approximate total characters
  double median_length = 292;        ///< lognormal median (= exp(mu))
  double mean_length = 355;          ///< lognormal mean (fixes sigma)
  std::size_t min_length = 40;       ///< truncation (shorter draws redrawn)
  std::size_t max_length = 5000;     ///< truncation (longer draws redrawn)
  double family_fraction = 0.35;     ///< fraction of residues in families
  double family_size_mean = 8.0;     ///< geometric mean family cardinality
  double mutation_rate = 0.25;       ///< per-residue substitution probability
  double indel_rate = 0.02;          ///< per-position insertion/deletion prob
};

/// Spec matching uniprot_sprot's published shape at a reduced scale.
DatabaseSpec sprot_like(std::size_t target_residues = 1 << 22);

/// Spec matching env_nr's published shape at a reduced scale.
DatabaseSpec envnr_like(std::size_t target_residues = 1 << 23);

/// Generates a database. Deterministic for a given (spec, seed).
SequenceStore generate_database(const DatabaseSpec& spec, std::uint64_t seed);

/// Samples `count` queries of exactly `length` residues: picks a random
/// database sequence of length >= `length` and takes a random window, which
/// mirrors the paper's "randomly pick queries from target databases".
/// Requires at least one database sequence of sufficient length.
SequenceStore sample_queries(const SequenceStore& db, std::size_t count,
                             std::size_t length, Rng& rng);

/// Samples `count` whole sequences from the database ("mixed" query set —
/// follows the database length distribution by construction).
SequenceStore sample_queries_mixed(const SequenceStore& db, std::size_t count,
                                   Rng& rng);

/// Histogram of sequence lengths with the given bin edges; result has
/// edges.size()+1 buckets (last bucket = overflow).
std::vector<std::size_t> length_histogram(const SequenceStore& db,
                                          const std::vector<std::size_t>& edges);

}  // namespace mublastp::synth
