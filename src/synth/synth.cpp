#include "synth/synth.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "score/karlin.hpp"
#include "score/matrix.hpp"

namespace mublastp::synth {
namespace {

// Cumulative distribution over the 20 standard residues for inverse-CDF
// sampling of background composition.
struct BackgroundSampler {
  std::array<double, 20> cdf{};
  BackgroundSampler() {
    const auto& f = robinson_frequencies();
    double acc = 0.0;
    for (int i = 0; i < 20; ++i) {
      acc += f[i];
      cdf[i] = acc;
    }
    // Normalize so the last entry is exactly 1 (the frequencies sum to
    // ~0.99999 due to rounding in the published table).
    for (int i = 0; i < 20; ++i) cdf[i] /= acc;
  }

  Residue draw(Rng& rng) const {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<Residue>(std::distance(cdf.begin(), it));
  }
};

const BackgroundSampler& background() {
  static const BackgroundSampler s;
  return s;
}

// Per-residue substitution sampler conditioned on the original residue:
// substitutes toward residues with high BLOSUM62 scores, which makes planted
// family members look like real homologs (neighbors fire) rather than random
// noise.
struct MutationSampler {
  std::array<std::array<double, 20>, 20> cdf{};
  MutationSampler() {
    const ScoreMatrix& m = blosum62();
    for (int a = 0; a < 20; ++a) {
      double acc = 0.0;
      for (int b = 0; b < 20; ++b) {
        // exp(lambda * s(a,b)) ∝ target frequency of aligning a with b.
        const double w =
            robinson_frequencies()[b] *
            std::exp(0.3176 * m(static_cast<Residue>(a), static_cast<Residue>(b)));
        acc += w;
        cdf[a][b] = acc;
      }
      for (int b = 0; b < 20; ++b) cdf[a][b] /= acc;
    }
  }

  Residue draw(Residue from, Rng& rng) const {
    const auto& row = cdf[from];
    const double u = rng.next_double();
    const auto it = std::lower_bound(row.begin(), row.end(), u);
    return static_cast<Residue>(std::distance(row.begin(), it));
  }
};

const MutationSampler& mutation_sampler() {
  static const MutationSampler s;
  return s;
}

// Draws a sequence length from the truncated lognormal of the spec.
std::size_t draw_length(const DatabaseSpec& spec, double mu, double sigma,
                        Rng& rng) {
  for (;;) {
    const double len = std::exp(mu + sigma * rng.next_normal());
    const auto n = static_cast<std::size_t>(std::llround(len));
    if (n >= spec.min_length && n <= spec.max_length) return n;
  }
}

std::vector<Residue> random_sequence(std::size_t len, Rng& rng) {
  std::vector<Residue> seq(len);
  for (auto& r : seq) r = background().draw(rng);
  return seq;
}

// Derives a family member from a parent: point substitutions at
// mutation_rate (BLOSUM-conditioned), plus occasional single-residue
// insertions/deletions at indel_rate.
std::vector<Residue> mutate(const std::vector<Residue>& parent,
                            const DatabaseSpec& spec, Rng& rng) {
  std::vector<Residue> out;
  out.reserve(parent.size() + 8);
  for (const Residue r : parent) {
    const double u = rng.next_double();
    if (u < spec.indel_rate * 0.5) {
      continue;  // deletion
    }
    if (u < spec.indel_rate) {
      out.push_back(background().draw(rng));  // insertion before r
    }
    if (rng.next_double() < spec.mutation_rate && r < 20) {
      out.push_back(mutation_sampler().draw(r, rng));
    } else {
      out.push_back(r);
    }
  }
  if (out.size() < 2 * static_cast<std::size_t>(kWordLength)) {
    out = parent;  // degenerate after indels; keep the parent copy
  }
  return out;
}

}  // namespace

DatabaseSpec sprot_like(std::size_t target_residues) {
  DatabaseSpec spec;
  spec.name = "sprot_like";
  spec.target_residues = target_residues;
  spec.median_length = 292;
  spec.mean_length = 355;
  return spec;
}

DatabaseSpec envnr_like(std::size_t target_residues) {
  DatabaseSpec spec;
  spec.name = "envnr_like";
  spec.target_residues = target_residues;
  spec.median_length = 177;
  spec.mean_length = 197;
  return spec;
}

SequenceStore generate_database(const DatabaseSpec& spec, std::uint64_t seed) {
  MUBLASTP_CHECK(spec.mean_length >= spec.median_length,
                 "lognormal needs mean >= median");
  MUBLASTP_CHECK(spec.min_length >= static_cast<std::size_t>(kWordLength),
                 "min_length must allow at least one word");
  Rng rng(seed);
  const double mu = std::log(spec.median_length);
  const double sigma =
      std::sqrt(2.0 * std::log(spec.mean_length / spec.median_length));

  SequenceStore db;
  std::size_t produced = 0;
  std::size_t family_id = 0;
  std::size_t singleton_id = 0;
  while (produced < spec.target_residues) {
    if (rng.next_double() < spec.family_fraction) {
      // Plant a family: a parent plus geometric-many mutated children.
      const std::size_t len = draw_length(spec, mu, sigma, rng);
      const std::vector<Residue> parent = random_sequence(len, rng);
      std::size_t members = 2;
      while (rng.next_double() < 1.0 - 1.0 / spec.family_size_mean &&
             members < 64) {
        ++members;
      }
      const std::string base = "fam" + std::to_string(family_id++);
      db.add(parent, base + "_p");
      produced += parent.size();
      for (std::size_t k = 1;
           k < members && produced < spec.target_residues; ++k) {
        const std::vector<Residue> child = mutate(parent, spec, rng);
        db.add(child, base + "_c" + std::to_string(k));
        produced += child.size();
      }
    } else {
      const std::size_t len = draw_length(spec, mu, sigma, rng);
      const std::vector<Residue> seq = random_sequence(len, rng);
      db.add(seq, "syn" + std::to_string(singleton_id++));
      produced += seq.size();
    }
  }
  return db;
}

SequenceStore sample_queries(const SequenceStore& db, std::size_t count,
                             std::size_t length, Rng& rng) {
  MUBLASTP_CHECK(!db.empty(), "database is empty");
  std::vector<SeqId> eligible;
  for (SeqId id = 0; id < db.size(); ++id) {
    if (db.length(id) >= length) eligible.push_back(id);
  }
  MUBLASTP_CHECK(!eligible.empty(),
                 "no database sequence long enough for query length " +
                     std::to_string(length));
  SequenceStore out;
  for (std::size_t i = 0; i < count; ++i) {
    const SeqId id = eligible[rng.next_below(eligible.size())];
    const auto seq = db.sequence(id);
    const std::size_t start = rng.next_below(seq.size() - length + 1);
    out.add(seq.subspan(start, length),
            "q" + std::to_string(i) + "_from_" + db.name(id));
  }
  return out;
}

SequenceStore sample_queries_mixed(const SequenceStore& db, std::size_t count,
                                   Rng& rng) {
  MUBLASTP_CHECK(!db.empty(), "database is empty");
  SequenceStore out;
  for (std::size_t i = 0; i < count; ++i) {
    const SeqId id = static_cast<SeqId>(rng.next_below(db.size()));
    out.add(db.sequence(id), "q" + std::to_string(i) + "_mixed_" + db.name(id));
  }
  return out;
}

std::vector<std::size_t> length_histogram(
    const SequenceStore& db, const std::vector<std::size_t>& edges) {
  std::vector<std::size_t> counts(edges.size() + 1, 0);
  for (SeqId id = 0; id < db.size(); ++id) {
    const std::size_t len = db.length(id);
    const auto it = std::upper_bound(edges.begin(), edges.end(), len);
    counts[static_cast<std::size_t>(std::distance(edges.begin(), it))]++;
  }
  return counts;
}

}  // namespace mublastp::synth
