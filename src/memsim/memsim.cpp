#include "memsim/memsim.hpp"

#include <bit>

#include "common/error.hpp"

namespace mublastp::memsim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  MUBLASTP_CHECK(cfg.line_bytes > 0 && std::has_single_bit(cfg.line_bytes),
                 "line size must be a power of two");
  MUBLASTP_CHECK(cfg.ways > 0, "associativity must be positive");
  MUBLASTP_CHECK(cfg.size_bytes % (cfg.line_bytes * cfg.ways) == 0,
                 "cache size must be a multiple of way size");
  num_sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.ways);
  MUBLASTP_CHECK(num_sets_ > 0, "cache must have at least one set");
  line_shift_ = std::countr_zero(cfg.line_bytes);
  tags_.assign(num_sets_ * cfg.ways, 0);
  stamp_.assign(num_sets_ * cfg.ways, 0);
  valid_.assign(num_sets_ * cfg.ways, 0);
}

bool Cache::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  const std::size_t base = set * cfg_.ways;
  ++clock_;

  std::size_t victim = base;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t w = 0; w < cfg_.ways; ++w) {
    const std::size_t i = base + w;
    if (valid_[i] && tags_[i] == line) {
      stamp_[i] = clock_;
      ++hits_;
      return true;
    }
    const std::uint64_t age = valid_[i] ? stamp_[i] : 0;
    if (!valid_[i]) {
      victim = i;
      oldest = 0;
    } else if (age < oldest) {
      victim = i;
      oldest = age;
    }
  }
  ++misses_;
  tags_[victim] = line;
  stamp_[victim] = clock_;
  valid_[victim] = 1;
  return false;
}

void Cache::fill(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line % num_sets_);
  const std::size_t base = set * cfg_.ways;
  ++clock_;
  std::size_t victim = base;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t w = 0; w < cfg_.ways; ++w) {
    const std::size_t i = base + w;
    if (valid_[i] && tags_[i] == line) {
      return;  // already present; leave recency alone
    }
    if (!valid_[i]) {
      victim = i;
      oldest = 0;
    } else if (stamp_[i] < oldest) {
      victim = i;
      oldest = stamp_[i];
    }
  }
  tags_[victim] = line;
  stamp_[victim] = clock_;
  valid_[victim] = 1;
}

void Cache::flush() {
  std::fill(valid_.begin(), valid_.end(), std::uint8_t{0});
}

double MemStats::stalled_cycle_fraction(const LatencyConfig& lat) const {
  if (references == 0) return 0.0;
  // Every reference pays L1 latency (hidden by the pipeline in the base
  // term); misses add the *extra* latency of the next level. TLB misses add
  // page-walk cycles. This is the standard additive stall proxy.
  const double base =
      static_cast<double>(references) * (lat.work_per_ref + lat.l1);
  const double stall =
      static_cast<double>(l1_misses) * (lat.l2 - lat.l1) +
      static_cast<double>(l2_misses) * (lat.l3 - lat.l2) +
      static_cast<double>(llc_misses) * (lat.mem - lat.l3) +
      static_cast<double>(stlb_misses) * lat.tlb_walk;
  return stall / (base + stall);
}

MemoryHierarchy::MemoryHierarchy()
    : MemoryHierarchy(
          CacheConfig{32 * 1024, 64, 8},        // L1D
          CacheConfig{256 * 1024, 64, 8},       // L2
          CacheConfig{30 * 1024 * 1024, 64, 20},// shared L3 (Haswell 12c)
          CacheConfig{64 * 4096, 4096, 4},      // L1 DTLB: 64 entries, 4-way
          CacheConfig{1024 * 4096, 4096, 8}) {} // STLB: 1024 entries, 8-way

MemoryHierarchy::MemoryHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                                 const CacheConfig& l3,
                                 const CacheConfig& dtlb,
                                 const CacheConfig& stlb)
    : l1_(l1), l2_(l2), l3_(l3), dtlb_(dtlb), stlb_(stlb) {}

void MemoryHierarchy::access(std::uint64_t addr, std::size_t size) {
  if (size == 0) return;
  const std::size_t line = l1_.config().line_bytes;
  const std::uint64_t first = addr & ~(static_cast<std::uint64_t>(line) - 1);
  const std::uint64_t last =
      (addr + size - 1) & ~(static_cast<std::uint64_t>(line) - 1);
  for (std::uint64_t a = first; a <= last; a += line) {
    ++references_;
    if (!dtlb_.access(a)) {
      stlb_.access(a);
    }
    if (!l1_.access(a)) {
      if (!l2_.access(a)) {
        l3_.access(a);
      }
    }
    if (prefetch_) {
      run_prefetcher(a);
    }
  }
}

void MemoryHierarchy::run_prefetcher(std::uint64_t line_addr) {
  // Ascending next-line stream detector (the L2 streamer on Intel cores):
  // when a demand access matches a tracked stream's expected next line, the
  // following kPrefetchDegree lines are pulled into L2 and LLC as
  // non-demand fills. Otherwise a new stream is trained at this address.
  const std::uint64_t line = l1_.config().line_bytes;
  ++stream_clock_;
  int lru = 0;
  std::uint64_t lru_use = ~std::uint64_t{0};
  for (int i = 0; i < kStreams; ++i) {
    Stream& s = streams_[i];
    if (s.valid && s.next_line == line_addr) {
      for (int d = 1; d <= kPrefetchDegree; ++d) {
        const std::uint64_t target = line_addr + static_cast<std::uint64_t>(d) * line;
        l2_.fill(target);
        l3_.fill(target);
      }
      s.next_line = line_addr + line;
      s.last_use = stream_clock_;
      return;
    }
    if (!s.valid) {
      lru = i;
      lru_use = 0;
    } else if (s.last_use < lru_use) {
      lru = i;
      lru_use = s.last_use;
    }
  }
  streams_[lru] = {line_addr + line, stream_clock_, true};
}

MemStats MemoryHierarchy::stats() const {
  MemStats s;
  s.references = references_;
  s.l1_misses = l1_.misses();
  s.l2_misses = l2_.misses();
  s.llc_misses = l3_.misses();
  s.llc_accesses = l3_.accesses();
  s.dtlb_misses = dtlb_.misses();
  s.stlb_misses = stlb_.misses();
  return s;
}

void MemoryHierarchy::reset_counters() {
  l1_.reset_counters();
  l2_.reset_counters();
  l3_.reset_counters();
  dtlb_.reset_counters();
  stlb_.reset_counters();
  references_ = 0;
}

void MemoryHierarchy::flush() {
  l1_.flush();
  l2_.flush();
  l3_.flush();
  dtlb_.flush();
  stlb_.flush();
  reset_counters();
}

}  // namespace mublastp::memsim
