// Trace-driven memory-hierarchy simulator.
//
// The paper's Figures 2 and 8 report hardware-counter metrics (LLC miss
// rate, TLB miss rate, stalled-cycle percentage) that explain *why* the
// database index destroys locality. This machine has no accessible PMU, so
// we reproduce the metrics with an exact simulator instead of sampling: the
// search kernels are templated on a MemoryModel policy; the default
// NullMemoryModel compiles to nothing (zero cost in timing runs), while the
// TracingMemoryModel feeds every logical data access through a configurable
// L1/L2/L3 + two-level-TLB model with true-LRU set-associative caches.
//
// The default geometry matches the paper's single-node testbed, an Intel
// Xeon E5-2680v3 (Haswell): 32KB/8-way L1D, 256KB/8-way L2, 30MB/20-way
// shared L3, 64-entry 4-way L1 DTLB and 1024-entry 8-way STLB with 4KB
// pages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mublastp::memsim {

/// Geometry of one cache level (or a TLB, where a "line" is a page).
struct CacheConfig {
  std::size_t size_bytes = 0;  ///< total capacity
  std::size_t line_bytes = 64; ///< line (or page) size; must be a power of two
  std::size_t ways = 8;        ///< associativity
};

/// A set-associative cache with true-LRU replacement, simulated on line
/// addresses only (no data storage).
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Simulates one access to the line containing `addr`; returns true on
  /// hit. Misses install the line (allocate-on-miss).
  bool access(std::uint64_t addr);

  /// Installs the line containing `addr` without touching the hit/miss
  /// counters — used for prefetch fills, which are not demand accesses.
  void fill(std::uint64_t addr);

  /// Removes all lines (used between measurement sections).
  void flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double miss_rate() const {
    return accesses() ? static_cast<double>(misses_) / accesses() : 0.0;
  }
  void reset_counters() { hits_ = misses_ = 0; }

  const CacheConfig& config() const { return cfg_; }

 private:
  CacheConfig cfg_;
  std::size_t num_sets_;
  int line_shift_;
  // tags_[set*ways + way]; lru_[same]: lower stamp = older.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint8_t> valid_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Latency model used for the stalled-cycle proxy (cycles).
struct LatencyConfig {
  double l1 = 4;
  double l2 = 12;
  double l3 = 36;
  double mem = 220;
  double tlb_walk = 35;   ///< page-walk penalty on STLB miss
  double work_per_ref = 1.5;  ///< non-memory work per reference (IPC proxy)
};

/// Aggregated metrics of a simulated region.
struct MemStats {
  std::uint64_t references = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t llc_accesses = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t stlb_misses = 0;

  /// LLC miss rate as perf reports it: misses / LLC accesses.
  double llc_miss_rate() const {
    return llc_accesses ? static_cast<double>(llc_misses) / llc_accesses : 0.0;
  }
  /// First-level TLB miss rate over all references.
  double tlb_miss_rate() const {
    return references ? static_cast<double>(dtlb_misses) / references : 0.0;
  }
  /// Fraction of cycles stalled on memory under `lat`.
  double stalled_cycle_fraction(const LatencyConfig& lat = {}) const;
};

/// A three-level cache plus two-level TLB hierarchy.
class MemoryHierarchy {
 public:
  /// Constructs the paper's Haswell-node geometry.
  MemoryHierarchy();

  /// Custom geometry. `l3_bytes` may be shrunk to model per-thread LLC share.
  MemoryHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                  const CacheConfig& l3, const CacheConfig& dtlb,
                  const CacheConfig& stlb);

  /// Simulates a `size`-byte access at `addr`, touching every line spanned.
  void access(std::uint64_t addr, std::size_t size);

  /// Current counters.
  MemStats stats() const;

  /// Clears counters but keeps cache contents (steady-state measurement).
  void reset_counters();

  /// Empties all caches and clears counters.
  void flush();

  /// Enables/disables the stream prefetcher (on by default). Modern Xeons
  /// detect ascending line streams and pull the next lines into L2/LLC;
  /// without this, sequential scans (the query-indexed engine's subject
  /// stream) would show inflated LLC miss rates the real hardware hides.
  void set_prefetch(bool enabled) { prefetch_ = enabled; }

 private:
  void run_prefetcher(std::uint64_t line_addr);

  Cache l1_;
  Cache l2_;
  Cache l3_;
  Cache dtlb_;
  Cache stlb_;
  std::uint64_t references_ = 0;

  /// Stream-detection table: a stream is an expected next line address.
  struct Stream {
    std::uint64_t next_line = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };
  static constexpr int kStreams = 16;
  static constexpr int kPrefetchDegree = 4;
  Stream streams_[kStreams];
  std::uint64_t stream_clock_ = 0;
  bool prefetch_ = true;
};

/// Policy for uninstrumented runs: all hooks are no-ops the optimizer
/// removes entirely.
struct NullMemoryModel {
  static constexpr bool kEnabled = false;
  void touch(const void*, std::size_t) const {}
  void touch_addr(std::uint64_t, std::size_t) const {}
};

/// Policy that forwards every touch to a MemoryHierarchy. Real pointers are
/// used as addresses, which preserves the actual layout relationships
/// between index, sequence arena and working buffers.
class TracingMemoryModel {
 public:
  static constexpr bool kEnabled = true;
  explicit TracingMemoryModel(MemoryHierarchy& h) : h_(&h) {}
  void touch(const void* p, std::size_t n) const {
    h_->access(reinterpret_cast<std::uint64_t>(p), n);
  }
  void touch_addr(std::uint64_t a, std::size_t n) const { h_->access(a, n); }

 private:
  MemoryHierarchy* h_;
};

}  // namespace mublastp::memsim
