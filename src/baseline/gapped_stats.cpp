#include "baseline/gapped_stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baseline/smith_waterman.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace mublastp {
namespace {

constexpr double kEulerGamma = 0.57721566490153286;

// Inverse-CDF sampler over the 20 standard residues.
Residue draw_residue(const std::array<double, kAlphabetSize>& freqs,
                     double total, Rng& rng) {
  double u = rng.next_double() * total;
  for (int i = 0; i < 20; ++i) {
    u -= freqs[i];
    if (u <= 0.0) return static_cast<Residue>(i);
  }
  return Residue{19};
}

}  // namespace

KarlinParams estimate_gapped_params(const ScoreMatrix& matrix, Score gap_open,
                                    Score gap_extend,
                                    const GappedSimOptions& options) {
  MUBLASTP_CHECK(options.num_pairs >= 16, "need at least 16 sample pairs");
  MUBLASTP_CHECK(options.seq_len >= 32, "sequences too short for a fit");

  const auto& freqs = robinson_frequencies();
  double total_freq = 0.0;
  for (int i = 0; i < 20; ++i) total_freq += freqs[i];

  Rng rng(options.seed);
  std::vector<Residue> a(options.seq_len);
  std::vector<Residue> b(options.seq_len);
  std::vector<double> scores;
  scores.reserve(options.num_pairs);
  for (std::size_t s = 0; s < options.num_pairs; ++s) {
    for (auto& r : a) r = draw_residue(freqs, total_freq, rng);
    for (auto& r : b) r = draw_residue(freqs, total_freq, rng);
    scores.push_back(static_cast<double>(
        smith_waterman_score(a, b, matrix, gap_open, gap_extend)));
  }

  double mean = 0.0;
  for (const double x : scores) mean += x;
  mean /= static_cast<double>(scores.size());
  double var = 0.0;
  for (const double x : scores) var += (x - mean) * (x - mean);
  var /= static_cast<double>(scores.size() - 1);
  MUBLASTP_CHECK(var > 0.0, "degenerate score distribution");

  // Method-of-moments Gumbel fit.
  const double lambda = M_PI / std::sqrt(6.0 * var);
  const double mu = mean - kEulerGamma / lambda;
  const double mn = static_cast<double>(options.seq_len) *
                    static_cast<double>(options.seq_len);
  const double K = std::exp(lambda * mu) / mn;

  KarlinParams out;
  out.lambda = lambda;
  out.K = K;
  out.H = compute_karlin(matrix).H;  // gapped correction is second-order
  return out;
}

}  // namespace mublastp
