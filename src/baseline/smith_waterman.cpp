#include "baseline/smith_waterman.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "simd/kernels.hpp"

namespace mublastp {
namespace {

constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;

// Traceback codes per cell for H / E / F lattices.
enum : std::uint8_t {
  kStop = 0,
  kDiag = 1,
  kFromE = 2,
  kFromF = 3,
};

}  // namespace

SwAlignment smith_waterman(std::span<const Residue> query,
                           std::span<const Residue> subject,
                           const ScoreMatrix& matrix, Score gap_open,
                           Score gap_extend) {
  const std::size_t n = query.size();
  const std::size_t m = subject.size();
  const Score open_cost = gap_open + gap_extend;

  // Full matrices (test-scale inputs): H source, E-opened, F-opened bits.
  std::vector<Score> h((n + 1) * (m + 1), 0);
  std::vector<Score> e((n + 1) * (m + 1), kNegInf);
  std::vector<Score> f((n + 1) * (m + 1), kNegInf);
  std::vector<std::uint8_t> hsrc((n + 1) * (m + 1), kStop);
  std::vector<std::uint8_t> eopen((n + 1) * (m + 1), 0);
  std::vector<std::uint8_t> fopen((n + 1) * (m + 1), 0);
  const auto at = [m](std::size_t i, std::size_t j) {
    return i * (m + 1) + j;
  };

  Score best = 0;
  std::size_t bi = 0;
  std::size_t bj = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t c = at(i, j);
      // E: gap in query (consume subject[j-1]).
      const Score e_open = h[at(i, j - 1)] - open_cost;
      const Score e_ext = e[at(i, j - 1)] - gap_extend;
      if (e_open >= e_ext) {
        e[c] = e_open;
        eopen[c] = 1;
      } else {
        e[c] = e_ext;
      }
      // F: gap in subject (consume query[i-1]).
      const Score f_open = h[at(i - 1, j)] - open_cost;
      const Score f_ext = f[at(i - 1, j)] - gap_extend;
      if (f_open >= f_ext) {
        f[c] = f_open;
        fopen[c] = 1;
      } else {
        f[c] = f_ext;
      }
      // H: local alignment can restart at 0.
      const Score diag = h[at(i - 1, j - 1)] + matrix(query[i - 1], subject[j - 1]);
      Score v = 0;
      std::uint8_t src = kStop;
      if (diag > v) {
        v = diag;
        src = kDiag;
      }
      if (e[c] > v) {
        v = e[c];
        src = kFromE;
      }
      if (f[c] > v) {
        v = f[c];
        src = kFromF;
      }
      h[c] = v;
      hsrc[c] = src;
      if (v > best) {
        best = v;
        bi = i;
        bj = j;
      }
    }
  }

  SwAlignment out;
  out.score = best;
  if (best == 0) return out;

  // Traceback from (bi, bj) until an H cell restarts (kStop).
  std::string ops;
  std::size_t i = bi;
  std::size_t j = bj;
  enum class St { H, E, F } st = St::H;
  for (;;) {
    const std::size_t c = at(i, j);
    if (st == St::H) {
      const std::uint8_t src = hsrc[c];
      if (src == kStop) break;
      if (src == kDiag) {
        ops.push_back('M');
        --i;
        --j;
      } else if (src == kFromE) {
        st = St::E;
      } else {
        st = St::F;
      }
    } else if (st == St::E) {
      ops.push_back('D');
      const bool opened = eopen[c];
      --j;
      if (opened) st = St::H;
    } else {
      ops.push_back('I');
      const bool opened = fopen[c];
      --i;
      if (opened) st = St::H;
    }
  }
  std::reverse(ops.begin(), ops.end());
  out.ops = std::move(ops);
  out.q_start = static_cast<std::uint32_t>(i);
  out.q_end = static_cast<std::uint32_t>(bi);
  out.s_start = static_cast<std::uint32_t>(j);
  out.s_end = static_cast<std::uint32_t>(bj);
  return out;
}

Score smith_waterman_score(std::span<const Residue> query,
                           std::span<const Residue> subject,
                           const ScoreMatrix& matrix, Score gap_open,
                           Score gap_extend) {
  const std::size_t n = query.size();
  const std::size_t m = subject.size();
  const Score open_cost = gap_open + gap_extend;
  // Rolling rows: H and F from the previous row; E carried along the row.
  std::vector<Score> h_prev(m + 1, 0);
  std::vector<Score> f_prev(m + 1, kNegInf);
  std::vector<Score> h_cur(m + 1, 0);
  std::vector<Score> f_cur(m + 1, kNegInf);
  Score best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    Score e_run = kNegInf;
    h_cur[0] = 0;
    f_cur[0] = kNegInf;
    const auto row = matrix.row(query[i - 1]);
    for (std::size_t j = 1; j <= m; ++j) {
      e_run = std::max<Score>(h_cur[j - 1] - open_cost, e_run - gap_extend);
      f_cur[j] =
          std::max<Score>(h_prev[j] - open_cost, f_prev[j] - gap_extend);
      Score v = h_prev[j - 1] + row[subject[j - 1]];
      v = std::max<Score>(v, e_run);
      v = std::max<Score>(v, f_cur[j]);
      v = std::max<Score>(v, 0);
      h_cur[j] = v;
      best = std::max(best, v);
    }
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }
  return best;
}

Score smith_waterman_score(std::span<const Residue> query,
                           std::span<const Residue> subject,
                           const ScoreMatrix& matrix, Score gap_open,
                           Score gap_extend, simd::KernelPath kernel) {
  if (const std::optional<Score> striped = simd::smith_waterman_score_striped(
          kernel, query, subject, matrix, gap_open, gap_extend)) {
    return *striped;
  }
  return smith_waterman_score(query, subject, matrix, gap_open, gap_extend);
}

Score best_ungapped_score(std::span<const Residue> query,
                          std::span<const Residue> subject,
                          const ScoreMatrix& matrix) {
  Score best = 0;
  const std::int64_t n = static_cast<std::int64_t>(query.size());
  const std::int64_t m = static_cast<std::int64_t>(subject.size());
  for (std::int64_t d = -(n - 1); d < m; ++d) {
    // Diagonal d: subject position = query position + d.
    Score run = 0;
    const std::int64_t qlo = std::max<std::int64_t>(0, -d);
    const std::int64_t qhi = std::min<std::int64_t>(n, m - d);
    for (std::int64_t q = qlo; q < qhi; ++q) {
      run += matrix(query[static_cast<std::size_t>(q)],
                    subject[static_cast<std::size_t>(q + d)]);
      if (run < 0) run = 0;
      best = std::max(best, run);
    }
  }
  return best;
}

}  // namespace mublastp
