// Simulation-based estimation of gapped Karlin-Altschul parameters.
//
// Gapped local-alignment statistics have no closed form; NCBI ships tables
// of (lambda, K) per (matrix, gap penalties) triple that were fitted by
// simulation. This module reproduces that fitting procedure so the library
// can derive parameters for arbitrary scoring systems instead of relying
// on the lookup table in karlin.cpp:
//
//   1. draw pairs of random sequences from the background composition;
//   2. compute each pair's optimal gapped local score (Smith-Waterman);
//   3. fit the scores to the extreme-value (Gumbel) distribution
//      P(S >= x) ~ 1 - exp(-K m n e^{-lambda x}) by the method of moments:
//      lambda = pi / sqrt(6 Var[S]),  K = exp(lambda mu) / (m n)
//      with mu = E[S] - gamma / lambda (gamma = Euler-Mascheroni).
//
// This is a statistics substrate, not a hot path: accuracy grows with
// sample count; the tests pin BLOSUM62 11/1 against NCBI's published
// values at simulation-appropriate tolerances.
#pragma once

#include <cstdint>

#include "score/karlin.hpp"

namespace mublastp {

/// Simulation controls.
struct GappedSimOptions {
  std::size_t num_pairs = 200;  ///< sample size (Gumbel fit accuracy ~1/sqrt)
  std::size_t seq_len = 320;    ///< length of each random sequence
  std::uint64_t seed = 1;       ///< RNG seed (deterministic result)
};

/// Estimates gapped (lambda, K, H) for `matrix` with the given penalties by
/// Gumbel-fitting simulated optimal local scores. H is inherited from the
/// ungapped computation (its gapped correction is second-order).
KarlinParams estimate_gapped_params(const ScoreMatrix& matrix, Score gap_open,
                                    Score gap_extend,
                                    const GappedSimOptions& options = {});

}  // namespace mublastp
