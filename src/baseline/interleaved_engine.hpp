// Database-indexed BLASTP with the *original* interleaved heuristics — the
// "NCBI-db" baseline of the paper (Section III + Section II-B).
//
// Hit detection scans the query top-to-bottom against the block's position
// lists and triggers ungapped extension immediately on every two-hit pair.
// Because a word's position list spans many subject fragments, consecutive
// extensions jump between unrelated subjects and last-hit regions: this is
// the irregular engine whose LLC/TLB behaviour Figure 2 profiles and whose
// block-size sensitivity Figure 8 shows. It exists to be measured against —
// and to validate that muBLASTP's reordering does not change results.
#pragma once

#include "core/params.hpp"
#include "core/results.hpp"
#include "core/two_hit.hpp"
#include "index/db_index_view.hpp"
#include "index/flat_lookup.hpp"
#include "memsim/memsim.hpp"
#include "score/karlin.hpp"
#include "simd/dispatch.hpp"
#include "stats/stats.hpp"

namespace mublastp {

namespace trace {
class Tracer;
}

/// Interleaved database-indexed engine ("NCBI-db").
class InterleavedDbEngine {
 public:
  /// The index behind `index` (owned DbIndex or MappedDbIndex — both
  /// convert implicitly) must outlive the engine. `kernel` selects the
  /// alignment-DP kernel (banded gapped extension; plus the batched
  /// ungapped kernel when `vector_ungapped` opts in — see
  /// simd::KernelSpec). Results are bit-identical for every path, and
  /// traced runs always use the scalar kernel.
  explicit InterleavedDbEngine(DbIndexView index, SearchParams params = {},
                               simd::KernelPath kernel
                               = simd::default_kernel(),
                               bool vector_ungapped = false);

  /// Searches one query (all blocks, all four stages).
  QueryResult search(std::span<const Residue> query) const;

  /// Same search with pipeline telemetry collected into `ps`. Detection and
  /// ungapped extension are fused here, so the whole stage-1/2 scan is
  /// booked under the hit_detect stage.
  QueryResult search(std::span<const Residue> query,
                     stats::PipelineStats& ps) const;

  /// Same search with stage-1/2 accesses traced through `mem`.
  QueryResult search_traced(std::span<const Residue> query,
                            memsim::MemoryHierarchy& mem) const;

  /// OpenMP batch over queries. When `ps` is non-null, telemetry is
  /// collected into per-thread accumulators and merged once at run end
  /// (there is no serial block loop here); counters are deterministic for
  /// any thread count all the same.
  /// When `tracer` is non-null, stage spans are additionally recorded
  /// into it (flushed once at the end of the batch).
  std::vector<QueryResult> search_batch(const SequenceStore& queries,
                                        int threads,
                                        stats::PipelineStats* ps = nullptr,
                                        trace::Tracer* tracer
                                        = nullptr) const;

  const DbIndexView& view() const { return view_; }
  const SearchParams& params() const { return params_; }
  simd::KernelPath kernel() const { return kernel_; }

 private:
  /// `flat` is the query's pre-built flattened neighbor table (vector
  /// kernels, never traced), or nullptr for the classic two-level scan.
  /// The per-entry fused hit/extend automaton is identical either way —
  /// the flat path only removes the lookup indirections and prefetches the
  /// next posting list — so results match bit for bit.
  template <typename Mem, typename Rec>
  void search_block(std::span<const Residue> query, const DbBlockView& block,
                    std::uint32_t block_id, StageStats& stats,
                    std::vector<UngappedAlignment>& out, DiagState& state,
                    const FlatNeighborhood* flat, Mem mem, Rec rec,
                    const struct SimdExtendContext* simd_ctx) const;

  template <typename Mem, typename Rec>
  QueryResult search_impl(std::span<const Residue> query, Mem mem,
                          Rec rec) const;

  template <typename PS, bool Traced>
  std::vector<QueryResult> batch_impl(const SequenceStore& queries,
                                      int threads, PS* ps,
                                      trace::Tracer* tracer) const;

  DbIndexView view_;
  SearchParams params_;
  simd::KernelPath kernel_;
  bool vector_ungapped_;
  KarlinParams karlin_;
};

}  // namespace mublastp
