// Query-indexed BLASTP engine — the "NCBI" baseline of the paper.
//
// Classic BLASTP flow: per query, build the NCBI-style lookup table
// (QueryIndex, with neighbor positions materialized, pv array and thick
// backbone), then stream every subject sequence left-to-right; each subject
// word probes the table and every hit is processed *interleaved* — pairing,
// ungapped extension and (later) gapped extension run immediately, exactly
// the execution the paper describes in Section II-B. Because subjects are
// processed one at a time, the working set is one subject plus one last-hit
// array, which is why this baseline is cache-friendly despite random
// accesses (the paper's Figure 2 premise).
#pragma once

#include <memory>

#include "core/params.hpp"
#include "core/results.hpp"
#include "index/neighbor.hpp"
#include "memsim/memsim.hpp"
#include "score/karlin.hpp"
#include "simd/dispatch.hpp"
#include "stats/stats.hpp"

namespace mublastp {

namespace trace {
class Tracer;
}

/// Query-indexed (NCBI-BLAST style) search engine.
class QueryIndexedEngine {
 public:
  /// How hit detection probes the query index.
  enum class Detector {
    kLookupTable,  ///< NCBI-style lookup table with pv array (default)
    kDfa,          ///< FSA-BLAST style DFA (one transition per residue)
  };

  /// `db` must outlive the engine. `neighbor_threshold` is the word pair
  /// threshold T. `kernel` selects the alignment-DP kernel (banded gapped
  /// extension; plus the batched ungapped kernel when `vector_ungapped`
  /// opts in — see simd::KernelSpec). Results are bit-identical for every
  /// path, and traced runs always use scalar.
  QueryIndexedEngine(const SequenceStore& db, SearchParams params = {},
                     Score neighbor_threshold = kDefaultNeighborThreshold,
                     Detector detector = Detector::kLookupTable,
                     simd::KernelPath kernel = simd::default_kernel(),
                     bool vector_ungapped = false);

  /// Searches one query through all four stages.
  QueryResult search(std::span<const Residue> query) const;

  /// Same search with pipeline telemetry collected into `ps`. The engine
  /// has no index blocks; the whole database is booked as block 0, and the
  /// fused detect+extend scan as the hit_detect stage.
  QueryResult search(std::span<const Residue> query,
                     stats::PipelineStats& ps) const;

  /// Same search with every stage-1/2 data access traced through `mem`.
  QueryResult search_traced(std::span<const Residue> query,
                            memsim::MemoryHierarchy& mem) const;

  /// Searches a batch with OpenMP over queries ("-num_threads" behaviour).
  /// When `ps` is non-null, telemetry is collected and merged at run end.
  /// When `tracer` is non-null, stage spans are additionally recorded into
  /// it (flushed once at the end of the batch).
  std::vector<QueryResult> search_batch(const SequenceStore& queries,
                                        int threads,
                                        stats::PipelineStats* ps = nullptr,
                                        trace::Tracer* tracer
                                        = nullptr) const;

  const SequenceStore& db() const { return *db_; }
  const SearchParams& params() const { return params_; }
  const NeighborTable& neighbors() const { return neighbors_; }
  simd::KernelPath kernel() const { return kernel_; }

 private:
  template <typename Mem, typename Rec>
  QueryResult search_impl(std::span<const Residue> query, Mem mem,
                          Rec rec) const;

  template <typename PS, bool Traced>
  std::vector<QueryResult> batch_impl(const SequenceStore& queries,
                                      int threads, PS* ps,
                                      trace::Tracer* tracer) const;

  const SequenceStore* db_;
  SearchParams params_;
  NeighborTable neighbors_;
  KarlinParams karlin_;
  Detector detector_;
  simd::KernelPath kernel_;
  bool vector_ungapped_;
  std::size_t max_subject_len_ = 0;
};

}  // namespace mublastp
