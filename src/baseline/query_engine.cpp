#include "baseline/query_engine.hpp"

#include <omp.h>

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/timer.hpp"
#include "core/hit_logic.hpp"
#include "index/dfa_index.hpp"
#include "index/query_index.hpp"
#include "trace/trace.hpp"

namespace mublastp {
namespace {

// Validates before any member initializer dereferences params.matrix.
const SearchParams& checked_params(const SearchParams& p) {
  p.validate();
  return p;
}

}  // namespace

QueryIndexedEngine::QueryIndexedEngine(const SequenceStore& db,
                                       SearchParams params,
                                       Score neighbor_threshold,
                                       Detector detector,
                                       simd::KernelPath kernel,
                                       bool vector_ungapped)
    : db_(&db),
      params_(checked_params(params)),
      neighbors_(*params.matrix, neighbor_threshold),
      karlin_(gapped_params(*params.matrix, params.gap_open,
                            params.gap_extend)),
      detector_(detector),
      kernel_(kernel),
      vector_ungapped_(vector_ungapped) {
  MUBLASTP_CHECK(!db.empty(), "database is empty");
  for (SeqId id = 0; id < db.size(); ++id) {
    max_subject_len_ = std::max(max_subject_len_, db.length(id));
  }
}

template <typename Mem, typename Rec>
QueryResult QueryIndexedEngine::search_impl(std::span<const Residue> query,
                                            Mem mem, Rec rec) const {
  MUBLASTP_CHECK(query.size() >= static_cast<std::size_t>(kWordLength),
                 "query shorter than word length");
  // No degraded mode in the baselines: injected faults fail the search
  // with a typed error (the clean-failure recovery path).
  MUBLASTP_CHECK_KIND(!MUBLASTP_FI_FAIL("alloc.workspace"),
                      ErrorKind::kResource,
                      "injected workspace allocation failure"
                      " (alloc.workspace)");
  MUBLASTP_CHECK(!MUBLASTP_FI_FAIL("stage.ungapped"),
                 "injected ungapped-stage failure (stage.ungapped)");
  [[maybe_unused]] StageStats scan_before;
  stats::LapTimer<Rec::kEnabled> lap;
  rec.mark();
  QueryResult result;
  // Build only the detector in use; both materialize the same positions.
  const bool use_dfa = detector_ == Detector::kDfa;
  std::unique_ptr<QueryIndex> qidx;
  std::unique_ptr<DfaQueryIndex> dfa;
  if (use_dfa) {
    dfa = std::make_unique<DfaQueryIndex>(query, neighbors_);
  } else {
    qidx = std::make_unique<QueryIndex>(query, neighbors_);
  }
  const ScoreMatrix& matrix = *params_.matrix;

  // One last-hit table per query; subjects reuse it via O(1) epoch reset
  // (NCBI keeps exactly one diag array per query for the same reason).
  DiagState state;
  const std::size_t diag_range = query.size() + max_subject_len_;
  state.resize(diag_range);

  // One profile per query, shared across all subjects. The vector ungapped
  // kernel is opt-in (slower than scalar; see dispatch.hpp). Traced runs
  // must replay the scalar kernel's access stream, so they stay scalar.
  simd::QueryProfile profile;
  SimdExtendContext ctx{kernel_, &profile};
  const SimdExtendContext* simd_ctx = nullptr;
  if constexpr (!Mem::kEnabled) {
    if (vector_ungapped_ && kernel_ != simd::KernelPath::kScalar) {
      profile.build(query, matrix);
      simd_ctx = &ctx;
    }
  }

  std::vector<UngappedSeg> segs;
  std::vector<UngappedAlignment> ungapped;

  const auto stride = static_cast<std::int32_t>(query.size()) + 1;
  for (SeqId sid = 0; sid < db_->size(); ++sid) {
    const std::span<const Residue> subject = db_->sequence(sid);
    if (subject.size() < static_cast<std::size_t>(kWordLength)) continue;
    state.new_round(stride);
    segs.clear();

    // Stream the subject, processing each (soff, qoff) hit through the
    // canonical two-hit automaton. Both detectors yield the same stream:
    // the table probes one word per position, the DFA emits per transition.
    const auto on_hit = [&](std::uint32_t soff, std::uint32_t qoff) {
      // Diagonal key: soff - qoff shifted to be non-negative.
      const std::size_t key =
          static_cast<std::size_t>(static_cast<std::int64_t>(soff) - qoff +
                                   static_cast<std::int64_t>(query.size()));
      process_hit(state, key, query, subject, qoff, soff, matrix, params_,
                  result.stats, segs, mem, simd_ctx);
    };
    if (use_dfa) {
      dfa->scan(subject, on_hit);
    } else {
      for (std::uint32_t soff = 0;
           soff + kWordLength <= subject.size(); ++soff) {
        if constexpr (Mem::kEnabled) {
          mem.touch(subject.data() + soff, kWordLength);
        }
        const std::uint32_t w = word_key(subject.data() + soff);
        if (!qidx->contains(w)) continue;  // pv-array fast reject
        const auto positions = qidx->positions(w);
        if constexpr (Mem::kEnabled) {
          mem.touch(positions.data(), positions.size_bytes());
        }
        for (const std::uint32_t qoff : positions) {
          on_hit(soff, qoff);
        }
      }
    }

    for (const UngappedSeg& seg : segs) {
      ungapped.push_back({sid, seg.q_start, seg.q_end, seg.s_start, seg.s_end,
                          seg.score});
    }
  }

  if constexpr (Rec::kEnabled) {
    // The subject stream (detection + pairing + ungapped extension fused)
    // is one scan over the whole database: booked as block 0, hit_detect.
    rec.block_round(0, stats::counters_between(result.stats, scan_before),
                    lap.lap(), 0.0, 0.0);
  }

  canonicalize_ungapped(ungapped);
  result.ungapped = ungapped;

  const SubjectLookup lookup = [this](SeqId id) { return db_->sequence(id); };
  [[maybe_unused]] StageStats before;
  if constexpr (Rec::kEnabled) before = result.stats;
  rec.mark();
  // Traced runs keep the scalar gapped DP (exact access streams).
  const simd::KernelPath gapped_kernel =
      Mem::kEnabled ? simd::KernelPath::kScalar : kernel_;
  auto gapped = gapped_stage(query, lookup, std::move(ungapped), matrix,
                             params_, &result.stats, gapped_kernel);
  if constexpr (Rec::kEnabled) {
    rec.add(stats::counters_between(result.stats, before));
    rec.stage(stats::Stage::kGapped, lap.lap());
  }
  result.alignments =
      finalize_stage(query, lookup, std::move(gapped), matrix, params_,
                     karlin_, db_->total_residues());
  if constexpr (Rec::kEnabled) rec.stage(stats::Stage::kFinalize, lap.lap());
  return result;
}

QueryResult QueryIndexedEngine::search(std::span<const Residue> query) const {
  return search_impl(query, memsim::NullMemoryModel{},
                     stats::NullStats::Recorder{});
}

QueryResult QueryIndexedEngine::search(std::span<const Residue> query,
                                       stats::PipelineStats& ps) const {
  ps.begin_run(1, 1, 1);
  ps.set_kernel(simd::kernel_name(kernel_));
  Timer total;
  QueryResult result =
      search_impl(query, memsim::NullMemoryModel{}, ps.recorder(0));
  ps.set_gapped_kernel({result.stats.gapped_int8_runs,
                        result.stats.gapped_int16_reruns,
                        result.stats.gapped_scalar_fallbacks});
  ps.finish_run(total.seconds());
  return result;
}

QueryResult QueryIndexedEngine::search_traced(
    std::span<const Residue> query, memsim::MemoryHierarchy& mem) const {
  return search_impl(query, memsim::TracingMemoryModel(mem),
                     stats::NullStats::Recorder{});
}

template <typename PS, bool Traced>
std::vector<QueryResult> QueryIndexedEngine::batch_impl(
    const SequenceStore& queries, int threads, PS* ps,
    trace::Tracer* tracer) const {
  MUBLASTP_CHECK(threads > 0, "thread count must be positive");
  std::vector<QueryResult> results(queries.size());
  [[maybe_unused]] Timer run_timer;
  if constexpr (PS::kEnabled) {
    ps->begin_run(std::max(threads, 1), 1, queries.size());
    ps->set_kernel(simd::kernel_name(kernel_));
  }
  const auto recorder_for = [&](int tid, std::uint32_t query) {
    (void)tid;
    (void)query;
    if constexpr (Traced) {
      if constexpr (PS::kEnabled) {
        return trace::TracingRecorder(ps->recorder(tid), tracer, query);
      } else {
        return trace::TracingRecorder(stats::NullStats::Recorder{}, tracer,
                                      query);
      }
    } else if constexpr (PS::kEnabled) {
      return ps->recorder(tid);
    } else {
      return stats::NullStats::Recorder{};
    }
  };
#pragma omp parallel for schedule(dynamic) num_threads(threads)
  for (std::size_t i = 0; i < queries.size(); ++i) {
    results[i] = search_impl(
        queries.sequence(static_cast<SeqId>(i)), memsim::NullMemoryModel{},
        recorder_for(omp_get_thread_num(), static_cast<std::uint32_t>(i)));
  }
  if constexpr (Traced) tracer->flush();
  if constexpr (PS::kEnabled) {
    stats::GappedKernelStats gk;
    for (const QueryResult& r : results) {
      gk.int8_runs += r.stats.gapped_int8_runs;
      gk.int16_reruns += r.stats.gapped_int16_reruns;
      gk.scalar_fallbacks += r.stats.gapped_scalar_fallbacks;
    }
    ps->set_gapped_kernel(gk);
    ps->finish_run(run_timer.seconds());
  }
  return results;
}

std::vector<QueryResult> QueryIndexedEngine::search_batch(
    const SequenceStore& queries, int threads, stats::PipelineStats* ps,
    trace::Tracer* tracer) const {
  stats::NullStats* off = nullptr;
  if (tracer != nullptr) {
    if (ps != nullptr) {
      return batch_impl<stats::PipelineStats, true>(queries, threads, ps,
                                                    tracer);
    }
    return batch_impl<stats::NullStats, true>(queries, threads, off, tracer);
  }
  if (ps != nullptr) {
    return batch_impl<stats::PipelineStats, false>(queries, threads, ps,
                                                   nullptr);
  }
  return batch_impl<stats::NullStats, false>(queries, threads, off, nullptr);
}

}  // namespace mublastp
