#include "baseline/interleaved_engine.hpp"

#include <omp.h>

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/timer.hpp"
#include "core/fragment_assembly.hpp"
#include "core/hit_logic.hpp"
#include "trace/trace.hpp"

namespace mublastp {
namespace {

// Validates before any member initializer dereferences params.matrix.
const SearchParams& checked_params(const SearchParams& p) {
  p.validate();
  return p;
}

}  // namespace

InterleavedDbEngine::InterleavedDbEngine(DbIndexView index,
                                         SearchParams params,
                                         simd::KernelPath kernel,
                                         bool vector_ungapped)
    : view_(std::move(index)),
      params_(checked_params(params)),
      kernel_(kernel),
      vector_ungapped_(vector_ungapped),
      karlin_(gapped_params(*params.matrix, params.gap_open,
                            params.gap_extend)) {
  MUBLASTP_CHECK(params_.matrix == view_.config().matrix,
                 "search matrix must match the index's neighbor matrix");
}

template <typename Mem, typename Rec>
void InterleavedDbEngine::search_block(std::span<const Residue> query,
                                       const DbBlockView& block,
                                       std::uint32_t block_id,
                                       StageStats& stats,
                                       std::vector<UngappedAlignment>& out,
                                       DiagState& state,
                                       const FlatNeighborhood* flat, Mem mem,
                                       Rec rec,
                                       const SimdExtendContext* simd_ctx)
    const {
  const ScoreMatrix& matrix = *params_.matrix;
  const DbIndexView& db = view_;
  const NeighborTable& neighbors = view_.neighbors();
  [[maybe_unused]] StageStats before;
  if constexpr (Rec::kEnabled) before = stats;
  stats::LapTimer<Rec::kEnabled> lap;
  rec.mark();

  // One diagonal-state slot per (fragment, diagonal) — the "multiple last
  // hit arrays, one for each subject sequence" of Section II-B. Fragment f
  // owns the dense key range [bases[f], bases[f+1]).
  const std::uint32_t qlen = static_cast<std::uint32_t>(query.size());
  std::vector<std::uint32_t> bases(block.fragments().size() + 1, 0);
  for (std::size_t f = 0; f < block.fragments().size(); ++f) {
    bases[f + 1] = bases[f] + block.fragments()[f].len + qlen + 1;
  }
  state.resize(bases.back());
  state.new_round(static_cast<std::int32_t>(qlen) + 1);

  std::vector<UngappedSeg> segs;

  // One posting list's worth of the fused scan. Interleaved: the extension
  // runs right inside process_hit, touching this fragment's residues while
  // the scan is somewhere else entirely.
  const auto scan_list = [&](std::uint32_t qoff,
                             std::span<const std::uint32_t> entries) {
    for (const std::uint32_t entry : entries) {
      const std::uint32_t local = block.entry_fragment(entry);
      const std::uint32_t soff = block.entry_offset(entry);
      const FragmentRef& frag = block.fragments()[local];
      const std::span<const Residue> subject =
          db.sequence(frag.seq).subspan(frag.start, frag.len);
      const std::size_t key =
          bases[local] +
          static_cast<std::size_t>(static_cast<std::int64_t>(soff) - qoff +
                                   qlen);
      segs.clear();
      process_hit(state, key, query, subject, qoff, soff, matrix, params_,
                  stats, segs, mem, simd_ctx);
      for (const UngappedSeg& seg : segs) {
        out.push_back(resolve_fragment_segment(query, db, frag, seg, qoff,
                                               soff, matrix, params_));
      }
    }
  };

  if (flat != nullptr) {
    // Query-specialized scan: the flattened table replaces word_key + the
    // neighbor indirection, and the next posting list is prefetched while
    // the current one (and its interleaved extensions) runs.
    const std::uint32_t npos = flat->positions();
    for (std::uint32_t qoff = 0; qoff < npos; ++qoff) {
      const auto words = flat->words(qoff);
      for (std::size_t wi = 0; wi < words.size(); ++wi) {
        if (wi + 1 < words.size()) {
          __builtin_prefetch(block.entries(words[wi + 1]).data());
        }
        scan_list(qoff, block.entries(words[wi]));
      }
    }
  } else {
    for (std::uint32_t qoff = 0; qoff + kWordLength <= query.size(); ++qoff) {
      if constexpr (Mem::kEnabled) {
        mem.touch(query.data() + qoff, kWordLength);
      }
      const std::uint32_t w = word_key(query.data() + qoff);
      const auto nbs = neighbors.neighbors(w);
      if constexpr (Mem::kEnabled) {
        mem.touch(nbs.data(), nbs.size_bytes());
      }
      for (const std::uint32_t nb : nbs) {
        const auto entries = block.entries(nb);
        if constexpr (Mem::kEnabled) {
          mem.touch(entries.data(), entries.size_bytes());
        }
        scan_list(qoff, entries);
      }
    }
  }
  if constexpr (Rec::kEnabled) {
    // Interleaved scan: detection, pairing and ungapped extension are one
    // fused loop, so all of it is booked under hit_detect.
    rec.block_round(block_id, stats::counters_between(stats, before),
                    lap.lap(), 0.0, 0.0);
  }
}

template <typename Mem, typename Rec>
QueryResult InterleavedDbEngine::search_impl(std::span<const Residue> query,
                                             Mem mem, Rec rec) const {
  MUBLASTP_CHECK(query.size() >= static_cast<std::size_t>(kWordLength),
                 "query shorter than word length");
  // The baseline engines have no degraded mode: an injected fault here
  // fails the search with a typed error, exercising the clean-failure path.
  MUBLASTP_CHECK_KIND(!MUBLASTP_FI_FAIL("alloc.workspace"),
                      ErrorKind::kResource,
                      "injected workspace allocation failure"
                      " (alloc.workspace)");
  MUBLASTP_CHECK(!MUBLASTP_FI_FAIL("stage.ungapped"),
                 "injected ungapped-stage failure (stage.ungapped)");
  QueryResult result;
  std::vector<UngappedAlignment> ungapped;
  DiagState state;
  // One profile per query, shared by every block's extensions. The vector
  // ungapped kernel is opt-in (slower than scalar; see dispatch.hpp).
  // Traced runs must replay the scalar access stream, so they never batch.
  simd::QueryProfile profile;
  SimdExtendContext ctx{kernel_, &profile};
  const SimdExtendContext* simd_ctx = nullptr;
  // Query-setup: flatten the neighbor lookup once per query with a vector
  // kernel selected; traced runs keep the classic scan's access stream.
  FlatNeighborhood flat;
  const FlatNeighborhood* flatp = nullptr;
  if constexpr (!Mem::kEnabled) {
    if (vector_ungapped_ && kernel_ != simd::KernelPath::kScalar) {
      profile.build(query, *params_.matrix);
      simd_ctx = &ctx;
    }
    if (kernel_ != simd::KernelPath::kScalar) {
      stats::LapTimer<Rec::kEnabled> flat_lap;
      rec.mark();
      flat.build(query, view_.neighbors());
      flatp = &flat;
      if constexpr (Rec::kEnabled) {
        rec.hit_kernel({1, flat_lap.lap(), 0, 0});
      }
    }
  }
  std::uint32_t block_id = 0;
  for (const DbBlockView& block : view_.blocks()) {
    search_block(query, block, block_id++, result.stats, ungapped, state,
                 flatp, mem, rec, simd_ctx);
  }

  // Remap sorted-store ids to the caller's original database ids.
  for (UngappedAlignment& u : ungapped) {
    u.subject = view_.original_id(u.subject);
  }
  canonicalize_ungapped(ungapped);
  result.ungapped = ungapped;

  const ScoreMatrix& matrix = *params_.matrix;
  const SubjectLookup lookup = [this](SeqId original) {
    return view_.sequence(view_.sorted_id(original));
  };
  [[maybe_unused]] StageStats before;
  if constexpr (Rec::kEnabled) before = result.stats;
  stats::LapTimer<Rec::kEnabled> lap;
  rec.mark();
  // Traced runs keep the scalar gapped DP (exact access streams).
  const simd::KernelPath gapped_kernel =
      Mem::kEnabled ? simd::KernelPath::kScalar : kernel_;
  auto gapped = gapped_stage(query, lookup, std::move(ungapped), matrix,
                             params_, &result.stats, gapped_kernel);
  if constexpr (Rec::kEnabled) {
    rec.add(stats::counters_between(result.stats, before));
    rec.stage(stats::Stage::kGapped, lap.lap());
  }
  result.alignments =
      finalize_stage(query, lookup, std::move(gapped), matrix, params_,
                     karlin_, view_.total_residues());
  if constexpr (Rec::kEnabled) rec.stage(stats::Stage::kFinalize, lap.lap());
  return result;
}

QueryResult InterleavedDbEngine::search(std::span<const Residue> query) const {
  return search_impl(query, memsim::NullMemoryModel{},
                     stats::NullStats::Recorder{});
}

QueryResult InterleavedDbEngine::search(std::span<const Residue> query,
                                        stats::PipelineStats& ps) const {
  ps.begin_run(1, view_.blocks().size(), 1);
  ps.set_kernel(simd::kernel_name(kernel_));
  Timer total;
  QueryResult result =
      search_impl(query, memsim::NullMemoryModel{}, ps.recorder(0));
  ps.set_gapped_kernel({result.stats.gapped_int8_runs,
                        result.stats.gapped_int16_reruns,
                        result.stats.gapped_scalar_fallbacks});
  ps.finish_run(total.seconds());
  return result;
}

QueryResult InterleavedDbEngine::search_traced(
    std::span<const Residue> query, memsim::MemoryHierarchy& mem) const {
  return search_impl(query, memsim::TracingMemoryModel(mem),
                     stats::NullStats::Recorder{});
}

template <typename PS, bool Traced>
std::vector<QueryResult> InterleavedDbEngine::batch_impl(
    const SequenceStore& queries, int threads, PS* ps,
    trace::Tracer* tracer) const {
  MUBLASTP_CHECK(threads > 0, "thread count must be positive");
  std::vector<QueryResult> results(queries.size());
  [[maybe_unused]] Timer run_timer;
  if constexpr (PS::kEnabled) {
    ps->begin_run(std::max(threads, 1), view_.blocks().size(),
                  queries.size());
    ps->set_kernel(simd::kernel_name(kernel_));
  }
  const auto recorder_for = [&](int tid, std::uint32_t query) {
    (void)tid;
    (void)query;
    if constexpr (Traced) {
      if constexpr (PS::kEnabled) {
        return trace::TracingRecorder(ps->recorder(tid), tracer, query);
      } else {
        return trace::TracingRecorder(stats::NullStats::Recorder{}, tracer,
                                      query);
      }
    } else if constexpr (PS::kEnabled) {
      return ps->recorder(tid);
    } else {
      return stats::NullStats::Recorder{};
    }
  };
#pragma omp parallel for schedule(dynamic) num_threads(threads)
  for (std::size_t i = 0; i < queries.size(); ++i) {
    results[i] =
        search_impl(queries.sequence(static_cast<SeqId>(i)),
                    memsim::NullMemoryModel{},
                    recorder_for(omp_get_thread_num(),
                                 static_cast<std::uint32_t>(i)));
  }
  if constexpr (Traced) tracer->flush();
  if constexpr (PS::kEnabled) {
    stats::GappedKernelStats gk;
    for (const QueryResult& r : results) {
      gk.int8_runs += r.stats.gapped_int8_runs;
      gk.int16_reruns += r.stats.gapped_int16_reruns;
      gk.scalar_fallbacks += r.stats.gapped_scalar_fallbacks;
    }
    ps->set_gapped_kernel(gk);
    ps->finish_run(run_timer.seconds());
  }
  return results;
}

std::vector<QueryResult> InterleavedDbEngine::search_batch(
    const SequenceStore& queries, int threads, stats::PipelineStats* ps,
    trace::Tracer* tracer) const {
  stats::NullStats* off = nullptr;
  if (tracer != nullptr) {
    if (ps != nullptr) {
      return batch_impl<stats::PipelineStats, true>(queries, threads, ps,
                                                    tracer);
    }
    return batch_impl<stats::NullStats, true>(queries, threads, off, tracer);
  }
  if (ps != nullptr) {
    return batch_impl<stats::PipelineStats, false>(queries, threads, ps,
                                                   nullptr);
  }
  return batch_impl<stats::NullStats, false>(queries, threads, off, nullptr);
}

}  // namespace mublastp
