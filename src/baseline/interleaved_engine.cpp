#include "baseline/interleaved_engine.hpp"

#include <omp.h>

#include "common/error.hpp"
#include "core/fragment_assembly.hpp"
#include "core/hit_logic.hpp"

namespace mublastp {
namespace {

// Validates before any member initializer dereferences params.matrix.
const SearchParams& checked_params(const SearchParams& p) {
  p.validate();
  return p;
}

}  // namespace

InterleavedDbEngine::InterleavedDbEngine(const DbIndex& index,
                                         SearchParams params)
    : index_(&index),
      params_(checked_params(params)),
      karlin_(gapped_params(*params.matrix, params.gap_open,
                            params.gap_extend)) {
  MUBLASTP_CHECK(params_.matrix == index.config().matrix,
                 "search matrix must match the index's neighbor matrix");
}

template <typename Mem>
void InterleavedDbEngine::search_block(std::span<const Residue> query,
                                       const DbIndexBlock& block,
                                       StageStats& stats,
                                       std::vector<UngappedAlignment>& out,
                                       DiagState& state, Mem mem) const {
  const ScoreMatrix& matrix = *params_.matrix;
  const SequenceStore& db = index_->db();
  const NeighborTable& neighbors = index_->neighbors();

  // One diagonal-state slot per (fragment, diagonal) — the "multiple last
  // hit arrays, one for each subject sequence" of Section II-B. Fragment f
  // owns the dense key range [bases[f], bases[f+1]).
  const std::uint32_t qlen = static_cast<std::uint32_t>(query.size());
  std::vector<std::uint32_t> bases(block.fragments().size() + 1, 0);
  for (std::size_t f = 0; f < block.fragments().size(); ++f) {
    bases[f + 1] = bases[f] + block.fragments()[f].len + qlen + 1;
  }
  state.resize(bases.back());
  state.new_round(static_cast<std::int32_t>(qlen) + 1);

  std::vector<UngappedSeg> segs;

  for (std::uint32_t qoff = 0; qoff + kWordLength <= query.size(); ++qoff) {
    if constexpr (Mem::kEnabled) {
      mem.touch(query.data() + qoff, kWordLength);
    }
    const std::uint32_t w = word_key(query.data() + qoff);
    const auto nbs = neighbors.neighbors(w);
    if constexpr (Mem::kEnabled) {
      mem.touch(nbs.data(), nbs.size_bytes());
    }
    for (const std::uint32_t nb : nbs) {
      const auto entries = block.entries(nb);
      if constexpr (Mem::kEnabled) {
        mem.touch(entries.data(), entries.size_bytes());
      }
      for (const std::uint32_t entry : entries) {
        const std::uint32_t local = block.entry_fragment(entry);
        const std::uint32_t soff = block.entry_offset(entry);
        const FragmentRef& frag = block.fragments()[local];
        const std::span<const Residue> subject =
            db.sequence(frag.seq).subspan(frag.start, frag.len);
        const std::size_t key =
            bases[local] +
            static_cast<std::size_t>(static_cast<std::int64_t>(soff) - qoff +
                                     qlen);
        segs.clear();
        // Interleaved: the extension runs right here, touching this
        // fragment's residues while the scan is somewhere else entirely.
        process_hit(state, key, query, subject, qoff, soff, matrix, params_,
                    stats, segs, mem);
        for (const UngappedSeg& seg : segs) {
          out.push_back(resolve_fragment_segment(query, db, frag, seg, qoff,
                                                 soff, matrix, params_));
        }
      }
    }
  }
}

template <typename Mem>
QueryResult InterleavedDbEngine::search_impl(std::span<const Residue> query,
                                             Mem mem) const {
  MUBLASTP_CHECK(query.size() >= static_cast<std::size_t>(kWordLength),
                 "query shorter than word length");
  QueryResult result;
  std::vector<UngappedAlignment> ungapped;
  DiagState state;
  for (const DbIndexBlock& block : index_->blocks()) {
    search_block(query, block, result.stats, ungapped, state, mem);
  }

  // Remap sorted-store ids to the caller's original database ids.
  for (UngappedAlignment& u : ungapped) {
    u.subject = index_->original_id(u.subject);
  }
  canonicalize_ungapped(ungapped);
  result.ungapped = ungapped;

  const ScoreMatrix& matrix = *params_.matrix;
  const SubjectLookup lookup = [this](SeqId original) {
    return index_->db().sequence(index_->sorted_id(original));
  };
  auto gapped = gapped_stage(query, lookup, std::move(ungapped), matrix,
                             params_, &result.stats);
  result.alignments =
      finalize_stage(query, lookup, std::move(gapped), matrix, params_,
                     karlin_, index_->db().total_residues());
  return result;
}

QueryResult InterleavedDbEngine::search(std::span<const Residue> query) const {
  return search_impl(query, memsim::NullMemoryModel{});
}

QueryResult InterleavedDbEngine::search_traced(
    std::span<const Residue> query, memsim::MemoryHierarchy& mem) const {
  return search_impl(query, memsim::TracingMemoryModel(mem));
}

std::vector<QueryResult> InterleavedDbEngine::search_batch(
    const SequenceStore& queries, int threads) const {
  MUBLASTP_CHECK(threads > 0, "thread count must be positive");
  std::vector<QueryResult> results(queries.size());
#pragma omp parallel for schedule(dynamic) num_threads(threads)
  for (std::size_t i = 0; i < queries.size(); ++i) {
    results[i] = search(queries.sequence(static_cast<SeqId>(i)));
  }
  return results;
}

}  // namespace mublastp
