// Smith-Waterman reference implementation.
//
// The optimal local-alignment algorithm BLAST approximates (paper Section
// II-A). Used as the ground truth in sensitivity tests: every heuristic
// alignment's score must be <= the Smith-Waterman optimum, and planted
// strong homologies must be found by the heuristics with scores close to
// it. Quadratic time/space — test-scale inputs only.
#pragma once

#include <span>
#include <string>

#include "common/alphabet.hpp"
#include "score/matrix.hpp"
#include "simd/dispatch.hpp"

namespace mublastp {

/// Optimal local alignment result.
struct SwAlignment {
  Score score = 0;  ///< 0 means no positive-scoring local alignment exists
  std::uint32_t q_start = 0;
  std::uint32_t q_end = 0;  ///< exclusive
  std::uint32_t s_start = 0;
  std::uint32_t s_end = 0;  ///< exclusive
  std::string ops;          ///< 'M'/'I'/'D' transcript ('I' = gap in subject)
};

/// Affine-gap Smith-Waterman (gap of length L costs open + L * extend, the
/// same convention as the gapped extension kernel). Full DP with traceback.
SwAlignment smith_waterman(std::span<const Residue> query,
                           std::span<const Residue> subject,
                           const ScoreMatrix& matrix, Score gap_open,
                           Score gap_extend);

/// Score-only affine-gap Smith-Waterman with rolling rows: O(min memory),
/// no traceback. Used where only the optimum matters (statistics
/// simulation, large property sweeps).
Score smith_waterman_score(std::span<const Residue> query,
                           std::span<const Residue> subject,
                           const ScoreMatrix& matrix, Score gap_open,
                           Score gap_extend);

/// Same score through the selected kernel: SSE4.2/AVX2 run the Farrar
/// striped int16 kernel, falling back to the scalar rolling-row code when
/// the kernel declines (kScalar, empty input, or the int16 saturation
/// guard). The returned score is identical for every path.
Score smith_waterman_score(std::span<const Residue> query,
                           std::span<const Residue> subject,
                           const ScoreMatrix& matrix, Score gap_open,
                           Score gap_extend, simd::KernelPath kernel);

/// Score-only ungapped Smith-Waterman (best diagonal run), used to validate
/// the ungapped extension kernel's scores.
Score best_ungapped_score(std::span<const Residue> query,
                          std::span<const Residue> subject,
                          const ScoreMatrix& matrix);

}  // namespace mublastp
