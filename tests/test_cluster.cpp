#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mublastp::cluster {
namespace {

std::vector<std::size_t> synthetic_lengths(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::size_t> lens(n);
  for (auto& l : lens) {
    l = 60 + rng.next_below(800);  // skewed-ish lengths
  }
  return lens;
}

TEST(Partitioning, RoundRobinBalancesChars) {
  const auto lens = synthetic_lengths(10000, 1);
  const auto parts = partition_chars_round_robin_sorted(lens, 16);
  const double total = std::accumulate(parts.begin(), parts.end(), 0.0);
  const double mean = total / 16.0;
  for (const double p : parts) {
    EXPECT_NEAR(p, mean, mean * 0.01);  // within 1%
  }
}

TEST(Partitioning, PreservesTotalChars) {
  const auto lens = synthetic_lengths(5000, 2);
  const double want = static_cast<double>(
      std::accumulate(lens.begin(), lens.end(), std::size_t{0}));
  for (int parts : {1, 3, 16, 128}) {
    const auto rr = partition_chars_round_robin_sorted(lens, parts);
    const auto ct = partition_chars_contiguous(lens, parts);
    EXPECT_NEAR(std::accumulate(rr.begin(), rr.end(), 0.0), want, 0.5);
    EXPECT_NEAR(std::accumulate(ct.begin(), ct.end(), 0.0), want, 0.5);
  }
}

TEST(Partitioning, ContiguousIsLessBalancedThanRoundRobin) {
  // A database with a length trend (as sorted/clustered inputs have).
  std::vector<std::size_t> lens(8000);
  Rng rng(3);
  for (std::size_t i = 0; i < lens.size(); ++i) {
    lens[i] = 60 + i / 10 + rng.next_below(50);
  }
  const auto rr = partition_chars_round_robin_sorted(lens, 64);
  const auto ct = partition_chars_contiguous(lens, 64);
  const auto spread = [](const std::vector<double>& v) {
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return (*hi - *lo) / *hi;
  };
  EXPECT_LT(spread(rr), spread(ct));
}

TEST(Partitioning, RejectsZeroParts) {
  EXPECT_THROW(partition_chars_round_robin_sorted({10}, 0), Error);
  EXPECT_THROW(partition_chars_contiguous({10}, 0), Error);
}

TEST(CostMatrix, DeterministicAndPositive) {
  const std::vector<std::size_t> qlens{128, 256, 512};
  const std::vector<double> parts{1e6, 2e6};
  const auto a = cost_matrix(qlens, parts, {}, 7);
  const auto b = cost_matrix(qlens, parts, {}, 7);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(a[0].size(), 2u);
  for (std::size_t q = 0; q < a.size(); ++q) {
    for (std::size_t p = 0; p < a[q].size(); ++p) {
      EXPECT_GT(a[q][p], 0.0);
      EXPECT_EQ(a[q][p], b[q][p]);
    }
  }
}

TEST(CostMatrix, ScalesWithQueryAndPartition) {
  CostModelParams params;
  params.irregularity_sigma = 0.0;  // deterministic density
  const auto m =
      cost_matrix({100, 200}, {1e6, 2e6}, params, 1);
  EXPECT_GT(m[1][0], m[0][0]);  // longer query costs more
  EXPECT_GT(m[0][1], m[0][0]);  // bigger partition costs more
}

TEST(CostMatrix, IrregularitySpreadsQueryCosts) {
  CostModelParams flat;
  flat.irregularity_sigma = 0.0;
  CostModelParams bumpy;
  bumpy.irregularity_sigma = 0.8;
  const std::vector<std::size_t> qlens(200, 128);
  const std::vector<double> parts{1e6};
  const auto f = cost_matrix(qlens, parts, flat, 5);
  const auto b = cost_matrix(qlens, parts, bumpy, 5);
  const auto cv = [](const std::vector<std::vector<double>>& m) {
    double sum = 0, sum2 = 0;
    for (const auto& row : m) {
      sum += row[0];
      sum2 += row[0] * row[0];
    }
    const double mean = sum / m.size();
    return std::sqrt(sum2 / m.size() - mean * mean) / mean;
  };
  EXPECT_LT(cv(f), 1e-6);
  EXPECT_GT(cv(b), 0.3);
}

class SimFixture : public ::testing::Test {
 protected:
  SimFixture() {
    // Scale per-cell cost up so per-(query, partition) work stays well
    // above fixed overheads even at 128-way partitioning — the regime the
    // paper's env_nr runs are in (the fig10 bench uses env_nr-scale
    // sequence counts instead).
    cost_params_.sec_per_cell = 2.0e-8;
  }

  // One cluster scenario reused by the simulator tests.
  std::vector<std::size_t> lens_ = synthetic_lengths(20000, 11);
  std::vector<std::size_t> qlens_ = std::vector<std::size_t>(128, 256);
  CostModelParams cost_params_;
};

TEST_F(SimFixture, MuBlastpScalesNearLinearly) {
  double t1 = 0.0;
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto parts = partition_chars_round_robin_sorted(lens_, nodes);
    const auto costs = cost_matrix(qlens_, parts, cost_params_, 3);
    MuBlastpClusterConfig cfg;
    cfg.nodes = nodes;
    const double t = simulate_mublastp(costs, cfg);
    if (nodes == 1) {
      t1 = t;
      continue;
    }
    const double eff = scaling_efficiency(t1, t, nodes);
    EXPECT_GT(eff, 0.80) << nodes << " nodes";
    EXPECT_LE(eff, 1.05) << nodes << " nodes";
  }
}

TEST_F(SimFixture, MpiBlastEfficiencyDegrades) {
  double t1 = 0.0;
  double eff128 = 1.0;
  for (const int nodes : {1, 128}) {
    const auto frags = partition_chars_contiguous(lens_, nodes * 16);
    const auto costs = cost_matrix(qlens_, frags, cost_params_, 3);
    MpiBlastClusterConfig cfg;
    cfg.nodes = nodes;
    const double t = simulate_mpiblast(costs, cfg);
    if (nodes == 1) {
      t1 = t;
    } else {
      eff128 = scaling_efficiency(t1, t, nodes);
    }
  }
  EXPECT_LT(eff128, 0.70);
  EXPECT_GT(eff128, 0.05);
}

TEST_F(SimFixture, MuBlastpBeatsMpiBlastEverywhere) {
  for (const int nodes : {1, 8, 64, 128}) {
    const auto mu_parts = partition_chars_round_robin_sorted(lens_, nodes);
    const auto mu_costs = cost_matrix(qlens_, mu_parts, cost_params_, 3);
    MuBlastpClusterConfig mu_cfg;
    mu_cfg.nodes = nodes;
    const double mu_t = simulate_mublastp(mu_costs, mu_cfg);

    const auto mpi_frags = partition_chars_contiguous(lens_, nodes * 16);
    const auto mpi_costs = cost_matrix(qlens_, mpi_frags, cost_params_, 3);
    MpiBlastClusterConfig mpi_cfg;
    mpi_cfg.nodes = nodes;
    const double mpi_t = simulate_mpiblast(mpi_costs, mpi_cfg);

    EXPECT_LT(mu_t, mpi_t) << nodes << " nodes";
  }
}

TEST_F(SimFixture, MoreNodesNeverSlower) {
  double prev = 1e30;
  for (const int nodes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto parts = partition_chars_round_robin_sorted(lens_, nodes);
    const auto costs = cost_matrix(qlens_, parts, cost_params_, 3);
    MuBlastpClusterConfig cfg;
    cfg.nodes = nodes;
    const double t = simulate_mublastp(costs, cfg);
    EXPECT_LT(t, prev * 1.02) << nodes;
    prev = t;
  }
}

TEST_F(SimFixture, SimulatorsValidateShapes) {
  const auto parts = partition_chars_round_robin_sorted(lens_, 4);
  const auto costs = cost_matrix(qlens_, parts, cost_params_, 3);
  MuBlastpClusterConfig bad;
  bad.nodes = 8;  // mismatch: 4 partitions
  EXPECT_THROW(simulate_mublastp(costs, bad), Error);
  MpiBlastClusterConfig mbad;
  mbad.nodes = 1;
  mbad.procs_per_node = 3;  // needs 3 fragments, we have 4
  EXPECT_THROW(simulate_mpiblast(costs, mbad), Error);
}


TEST_F(SimFixture, ReportsAccountForAllWork) {
  const auto parts = partition_chars_round_robin_sorted(lens_, 8);
  const auto costs = cost_matrix(qlens_, parts, cost_params_, 3);
  MuBlastpClusterConfig cfg;
  cfg.nodes = 8;
  const SimReport rep = simulate_mublastp_report(costs, cfg);
  EXPECT_DOUBLE_EQ(rep.total_sec, simulate_mublastp(costs, cfg));
  ASSERT_EQ(rep.busy_sec.size(), 8u);
  // Per-node busy time equals that node's column of work / effective cores.
  const double effective = 16.0 * cfg.thread_efficiency;
  for (int p = 0; p < 8; ++p) {
    double work = 0.0;
    for (const auto& row : costs) work += row[static_cast<std::size_t>(p)];
    EXPECT_NEAR(rep.busy_sec[static_cast<std::size_t>(p)], work / effective,
                1e-9);
  }
  EXPECT_GT(rep.utilization(), 0.9);
  EXPECT_LE(rep.utilization(), 1.0);
}

TEST_F(SimFixture, MpiUtilizationDegradesWithScale) {
  const auto small_frags = partition_chars_contiguous(lens_, 16);
  const auto small_costs = cost_matrix(qlens_, small_frags, cost_params_, 3);
  MpiBlastClusterConfig small_cfg;
  small_cfg.nodes = 1;
  const SimReport small = simulate_mpiblast_report(small_costs, small_cfg);

  const auto big_frags = partition_chars_contiguous(lens_, 128 * 16);
  const auto big_costs = cost_matrix(qlens_, big_frags, cost_params_, 3);
  MpiBlastClusterConfig big_cfg;
  big_cfg.nodes = 128;
  const SimReport big = simulate_mpiblast_report(big_costs, big_cfg);

  EXPECT_LT(big.utilization(), small.utilization());
  EXPECT_GT(big.merge_sec, small.merge_sec);
  EXPECT_DOUBLE_EQ(big.total_sec, simulate_mpiblast(big_costs, big_cfg));
}

TEST(ScalingEfficiency, BasicAlgebra) {
  EXPECT_DOUBLE_EQ(scaling_efficiency(100.0, 12.5, 8), 1.0);
  EXPECT_DOUBLE_EQ(scaling_efficiency(100.0, 25.0, 8), 0.5);
  EXPECT_THROW(scaling_efficiency(0.0, 1.0, 8), Error);
}

}  // namespace
}  // namespace mublastp::cluster
