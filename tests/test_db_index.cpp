#include "index/db_index.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

SequenceStore small_db(std::uint64_t seed, std::size_t seqs = 50,
                       std::size_t min_len = 20, std::size_t max_len = 400) {
  Rng rng(seed);
  SequenceStore db;
  for (std::size_t i = 0; i < seqs; ++i) {
    const std::size_t len =
        min_len + rng.next_below(max_len - min_len + 1);
    std::vector<Residue> s(len);
    for (auto& r : s) r = static_cast<Residue>(rng.next_below(20));
    db.add(s, "s" + std::to_string(i));
  }
  return db;
}

TEST(DbIndex, RejectsEmptyDatabase) {
  SequenceStore empty;
  EXPECT_THROW(DbIndex::build(empty, {}), Error);
}

TEST(DbIndex, RejectsBadConfig) {
  SequenceStore db = small_db(1);
  DbIndexConfig bad;
  bad.block_bytes = 16;
  EXPECT_THROW(DbIndex::build(db, bad), Error);
  bad = {};
  bad.long_seq_overlap = bad.long_seq_limit;
  EXPECT_THROW(DbIndex::build(db, bad), Error);
  bad = {};
  bad.long_seq_overlap = 1;
  EXPECT_THROW(DbIndex::build(db, bad), Error);
}

TEST(DbIndex, SortedStoreIsAscendingByLength) {
  const SequenceStore db = small_db(2);
  const DbIndex idx = DbIndex::build(db, {});
  for (SeqId i = 0; i + 1 < idx.db().size(); ++i) {
    EXPECT_LE(idx.db().length(i), idx.db().length(i + 1));
  }
}

TEST(DbIndex, IdMappingsAreInverse) {
  const SequenceStore db = small_db(3);
  const DbIndex idx = DbIndex::build(db, {});
  for (SeqId s = 0; s < db.size(); ++s) {
    EXPECT_EQ(idx.sorted_id(idx.original_id(s)), s);
    EXPECT_EQ(idx.original_id(idx.sorted_id(s)), s);
    // The sorted sequence content matches the original.
    const auto a = idx.db().sequence(idx.sorted_id(s));
    const auto b = db.sequence(s);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(DbIndex, EveryWordPositionIndexedExactlyOnce) {
  const SequenceStore db = small_db(4, 30, 10, 200);
  DbIndexConfig cfg;
  cfg.block_bytes = 8192;  // force several blocks
  const DbIndex idx = DbIndex::build(db, cfg);

  // Collect (sorted seq, global offset, word) triples from the index.
  std::multiset<std::tuple<SeqId, std::uint32_t, std::uint32_t>> indexed;
  for (const DbIndexBlock& block : idx.blocks()) {
    for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords);
         ++w) {
      for (const std::uint32_t e : block.entries(w)) {
        const FragmentRef& f = block.fragments()[block.entry_fragment(e)];
        indexed.insert({f.seq, f.start + block.entry_offset(e), w});
      }
    }
  }

  std::multiset<std::tuple<SeqId, std::uint32_t, std::uint32_t>> expected;
  for (SeqId s = 0; s < idx.db().size(); ++s) {
    const auto seq = idx.db().sequence(s);
    for (std::size_t p = 0; p + kWordLength <= seq.size(); ++p) {
      expected.insert({s, static_cast<std::uint32_t>(p),
                       word_key(seq.data() + p)});
    }
  }
  EXPECT_EQ(indexed, expected);
}

TEST(DbIndex, BlocksRespectCharacterBudget) {
  const SequenceStore db = small_db(5, 60, 10, 150);
  DbIndexConfig cfg;
  cfg.block_bytes = 4096;  // 1024 chars per block
  const DbIndex idx = DbIndex::build(db, cfg);
  EXPECT_GT(idx.blocks().size(), 1u);
  const std::size_t budget = cfg.block_bytes / 4;
  for (std::size_t b = 0; b + 1 < idx.blocks().size(); ++b) {
    // Non-final blocks can exceed the budget only by their last fragment
    // (a fragment is never split across blocks).
    EXPECT_LE(idx.blocks()[b].total_chars(),
              budget + idx.blocks()[b].max_fragment_len());
    EXPECT_FALSE(idx.blocks()[b].fragments().empty());
  }
}

TEST(DbIndex, BlockStatsAreConsistent) {
  const SequenceStore db = small_db(6);
  const DbIndex idx = DbIndex::build(db, {});
  for (const DbIndexBlock& block : idx.blocks()) {
    std::size_t chars = 0;
    std::size_t positions = 0;
    std::size_t max_len = 0;
    for (const FragmentRef& f : block.fragments()) {
      chars += f.len;
      max_len = std::max<std::size_t>(max_len, f.len);
      if (f.len >= static_cast<std::size_t>(kWordLength)) {
        positions += f.len - kWordLength + 1;
      }
    }
    EXPECT_EQ(block.total_chars(), chars);
    EXPECT_EQ(block.num_positions(), positions);
    EXPECT_EQ(block.max_fragment_len(), max_len);
    EXPECT_EQ(block.position_bytes(), positions * 4);
  }
}

TEST(DbIndex, EntriesAreOrderedByFragmentThenOffset) {
  const SequenceStore db = small_db(7);
  const DbIndex idx = DbIndex::build(db, {});
  for (const DbIndexBlock& block : idx.blocks()) {
    for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords);
         w += 101) {
      const auto entries = block.entries(w);
      EXPECT_TRUE(std::is_sorted(entries.begin(), entries.end()));
    }
  }
}

TEST(DbIndex, LongSequencesAreSplitWithOverlap) {
  SequenceStore db;
  Rng rng(8);
  std::vector<Residue> longseq(20000);
  for (auto& r : longseq) r = static_cast<Residue>(rng.next_below(20));
  db.add(longseq, "long");
  db.add_ascii("ARNDCQEGHILKMFPSTWYV", "short");

  DbIndexConfig cfg;
  cfg.long_seq_limit = 4096;
  cfg.long_seq_overlap = 128;
  const DbIndex idx = DbIndex::build(db, cfg);

  // Collect fragments of the long sequence.
  std::vector<FragmentRef> frags;
  for (const DbIndexBlock& block : idx.blocks()) {
    for (const FragmentRef& f : block.fragments()) {
      if (idx.db().length(f.seq) == 20000) frags.push_back(f);
    }
  }
  ASSERT_GT(frags.size(), 1u);
  std::sort(frags.begin(), frags.end(),
            [](const FragmentRef& a, const FragmentRef& b) {
              return a.start < b.start;
            });
  EXPECT_EQ(frags.front().start, 0u);
  EXPECT_EQ(frags.back().start + frags.back().len, 20000u);
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
    EXPECT_LE(frags[i].len, cfg.long_seq_limit);
    // Consecutive fragments overlap by exactly long_seq_overlap.
    EXPECT_EQ(frags[i].start + frags[i].len,
              frags[i + 1].start + cfg.long_seq_overlap);
  }
}

TEST(DbIndex, OptimalBlockFormula) {
  // b = L3 / (2t + 1): paper Section V-B.
  EXPECT_EQ(DbIndex::optimal_block_bytes(30u << 20, 12), (30u << 20) / 25);
  EXPECT_EQ(DbIndex::optimal_block_bytes(20u << 20, 1), (20u << 20) / 3);
  EXPECT_THROW(DbIndex::optimal_block_bytes(1 << 20, 0), Error);
}

TEST(DbIndex, PackedEntriesRoundTrip) {
  const SequenceStore db = small_db(9);
  const DbIndex idx = DbIndex::build(db, {});
  for (const DbIndexBlock& block : idx.blocks()) {
    for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords);
         w += 211) {
      for (const std::uint32_t e : block.entries(w)) {
        const std::uint32_t frag = block.entry_fragment(e);
        const std::uint32_t off = block.entry_offset(e);
        ASSERT_LT(frag, block.fragments().size());
        const FragmentRef& f = block.fragments()[frag];
        ASSERT_LT(off + kWordLength, f.len + 1);
        // The word at the decoded position is the word it is filed under.
        const auto seq = idx.db().sequence(f.seq);
        EXPECT_EQ(word_key(seq.data() + f.start + off), w);
      }
    }
  }
}

TEST(DbIndex, SyntheticDatabaseRoundTrip) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(100000), 11);
  DbIndexConfig cfg;
  cfg.block_bytes = 64 * 1024;
  const DbIndex idx = DbIndex::build(db, cfg);
  std::size_t total_positions = 0;
  std::size_t total_chars = 0;
  for (const DbIndexBlock& b : idx.blocks()) {
    total_positions += b.num_positions();
    total_chars += b.total_chars();
  }
  EXPECT_EQ(total_chars, db.total_residues());
  // positions = chars - (W-1) per fragment.
  EXPECT_LT(total_positions, total_chars);
  EXPECT_GT(total_positions, total_chars - 3 * db.size() - 100);
}

}  // namespace
}  // namespace mublastp
