#include "index/neighbor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace mublastp {
namespace {

const NeighborTable& table11() {
  static const NeighborTable t(blosum62(), 11);
  return t;
}

TEST(NeighborTable, WordPairScoreMatchesManualSum) {
  const std::uint32_t abc = word_from_string("ARN");
  const std::uint32_t xyz = word_from_string("RNA");
  const ScoreMatrix& m = blosum62();
  const Score want = m(encode_residue('A'), encode_residue('R')) +
                     m(encode_residue('R'), encode_residue('N')) +
                     m(encode_residue('N'), encode_residue('A'));
  EXPECT_EQ(NeighborTable::word_pair_score(m, abc, xyz), want);
}

TEST(NeighborTable, SelfScoreGovernsSelfMembership) {
  // AAA self-score = 3*4 = 12 >= 11: AAA is its own neighbor.
  const auto nb = table11().neighbors(word_from_string("AAA"));
  EXPECT_TRUE(std::binary_search(nb.begin(), nb.end(),
                                 word_from_string("AAA")));
  // XXX self-score = 3*(-1) = -3 < 11: no neighbors at all is expected for
  // a word of ambiguity codes.
  EXPECT_TRUE(table11().neighbors(word_from_string("XXX")).empty());
}

TEST(NeighborTable, EveryListedNeighborMeetsThreshold) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto w =
        static_cast<std::uint32_t>(rng.next_below(kNumWords));
    for (const std::uint32_t nb : table11().neighbors(w)) {
      EXPECT_GE(NeighborTable::word_pair_score(blosum62(), w, nb), 11);
    }
  }
}

TEST(NeighborTable, NoQualifyingWordIsMissing) {
  // Brute-force cross-check on a random sample of word pairs.
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const auto w = static_cast<std::uint32_t>(rng.next_below(kNumWords));
    const auto nbs = table11().neighbors(w);
    std::set<std::uint32_t> have(nbs.begin(), nbs.end());
    for (int j = 0; j < 500; ++j) {
      const auto cand =
          static_cast<std::uint32_t>(rng.next_below(kNumWords));
      const bool qualifies =
          NeighborTable::word_pair_score(blosum62(), w, cand) >= 11;
      EXPECT_EQ(have.contains(cand), qualifies)
          << word_to_string(w) << " vs " << word_to_string(cand);
    }
  }
}

TEST(NeighborTable, RelationIsSymmetric) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const auto w = static_cast<std::uint32_t>(rng.next_below(kNumWords));
    for (const std::uint32_t nb : table11().neighbors(w)) {
      const auto back = table11().neighbors(nb);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), w))
          << word_to_string(w) << " <-> " << word_to_string(nb);
    }
  }
}

TEST(NeighborTable, NeighborListsAreSortedAndUnique) {
  for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords);
       w += 61) {
    const auto nbs = table11().neighbors(w);
    EXPECT_TRUE(std::is_sorted(nbs.begin(), nbs.end()));
    EXPECT_EQ(std::adjacent_find(nbs.begin(), nbs.end()), nbs.end());
  }
}

TEST(NeighborTable, HigherThresholdShrinksNeighborhoods) {
  const NeighborTable t13(blosum62(), 13);
  EXPECT_LT(t13.total_neighbors(), table11().total_neighbors());
  // And every T=13 neighbor is also a T=11 neighbor.
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    const auto w = static_cast<std::uint32_t>(rng.next_below(kNumWords));
    const auto strict = t13.neighbors(w);
    const auto loose = table11().neighbors(w);
    EXPECT_TRUE(std::includes(loose.begin(), loose.end(), strict.begin(),
                              strict.end()));
  }
}

TEST(NeighborTable, ThresholdAccessor) {
  EXPECT_EQ(table11().threshold(), 11);
  EXPECT_EQ(kDefaultNeighborThreshold, 11);
}

TEST(NeighborTable, TotalSizeIsPlausible) {
  // With T=11 and BLOSUM62 the average neighborhood is tens of words;
  // guard against both under-enumeration and exploding tables.
  const double avg =
      static_cast<double>(table11().total_neighbors()) / kNumWords;
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 200.0);
}

TEST(NeighborTable, HighScoringWordHasItselfAndVariants) {
  // WWW self-score 33: plenty of neighbors including itself.
  const auto nbs = table11().neighbors(word_from_string("WWW"));
  EXPECT_FALSE(nbs.empty());
  EXPECT_TRUE(std::binary_search(nbs.begin(), nbs.end(),
                                 word_from_string("WWW")));
  // WWF: W/W + W/W + W/F = 11+11+1 = 23 >= 11.
  EXPECT_TRUE(std::binary_search(nbs.begin(), nbs.end(),
                                 word_from_string("WWF")));
}

}  // namespace
}  // namespace mublastp
