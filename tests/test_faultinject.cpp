// Fault-injection battery: the arming/counting semantics of the framework
// itself, then a recovery test per registered site — every site either
// fails with the documented typed Error (clean-failure path) or degrades
// with the documented quarantine/retry recovery, and degraded runs are
// reflected in the stats-v1 "degraded" object.
#include "common/faultinject.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index_io.hpp"
#include "index/mapped_db_index.hpp"
#include "stats/stats.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

// Every test starts and ends disarmed so the battery can run in any order.
class FaultInject : public ::testing::Test {
 protected:
  void SetUp() override { fi::reset(); }
  void TearDown() override { fi::reset(); }

  // Runs `fn` expecting a mublastp::Error of kind `kind`; returns what().
  template <typename Fn>
  static std::string expect_kind(Fn&& fn, ErrorKind kind,
                                 const std::string& context) {
    try {
      fn();
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), kind)
          << context << ": kind was " << error_kind_name(e.kind())
          << " for \"" << e.what() << "\"";
      return e.what();
    } catch (const std::exception& e) {
      ADD_FAILURE() << context << ": non-mublastp exception: " << e.what();
      return {};
    }
    ADD_FAILURE() << context << ": armed fault did not surface";
    return {};
  }
};

// --- framework semantics ---------------------------------------------------

TEST_F(FaultInject, RegistryIsSortedAndSelfConsistent) {
  const auto sites = fi::registered_sites();
  ASSERT_GE(sites.size(), 10u);
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end(),
                             [](const char* a, const char* b) {
                               return std::string_view(a) < b;
                             }));
  for (const char* s : sites) {
    EXPECT_TRUE(fi::is_registered(s)) << s;
  }
  for (const char* s : {"index.crc", "index.mmap", "index.open",
                        "index.prefault", "io.read", "alloc.workspace",
                        "stage.ungapped", "checkpoint.write",
                        "checkpoint.dirsync", "shard.manifest",
                        "shard.worker", "build.block_write", "build.fsync",
                        "build.manifest_write", "build.publish_rename",
                        "build.gc_unlink"}) {
    EXPECT_TRUE(fi::is_registered(s)) << s;
  }
  EXPECT_FALSE(fi::is_registered("no.such.site"));
}

TEST_F(FaultInject, ArmRejectsUnknownSitesAndZeroNth) {
  expect_kind([] { fi::arm("no.such.site", 1); }, ErrorKind::kInvalid,
              "unknown site");
  expect_kind([] { fi::arm("io.read", 0); }, ErrorKind::kInvalid, "nth=0");
  EXPECT_FALSE(fi::any_armed());
}

TEST_F(FaultInject, SpecParsing) {
  fi::arm_from_spec("index.crc:2,io.read:1:5");
  EXPECT_TRUE(fi::any_armed());
  fi::reset();
  expect_kind([] { fi::arm_from_spec("io.read"); }, ErrorKind::kInvalid,
              "missing nth");
  expect_kind([] { fi::arm_from_spec("io.read:x"); }, ErrorKind::kInvalid,
              "non-numeric nth");
  expect_kind([] { fi::arm_from_spec("bogus.site:1"); }, ErrorKind::kInvalid,
              "unknown site in spec");
  EXPECT_FALSE(fi::any_armed());
}

TEST_F(FaultInject, FiresExactlyOnNthAndIsSingleShot) {
  fi::arm("io.read", 3);
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(fi::should_fail("io.read"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false}));
  EXPECT_EQ(fi::call_count("io.read"), 5u);
}

TEST_F(FaultInject, ConsecutiveArmsDriveRetryPaths) {
  fi::arm_from_spec("io.read:1,io.read:2");
  EXPECT_TRUE(fi::should_fail("io.read"));
  EXPECT_TRUE(fi::should_fail("io.read"));
  EXPECT_FALSE(fi::should_fail("io.read"));
}

TEST_F(FaultInject, FiringSetsRequestedErrno) {
  fi::arm("index.mmap", 1, ENOMEM);
  errno = 0;
  EXPECT_TRUE(fi::should_fail("index.mmap"));
  EXPECT_EQ(errno, ENOMEM);
}

TEST_F(FaultInject, ShardSitesCountAndFireIndependently) {
  // The sharded-execution sites obey the same arm/count semantics as the
  // rest of the registry; their recovery paths (quarantine vs strict
  // fail-closed, both worker modes) are proven end-to-end in
  // tests/test_shards.cpp.
  fi::arm_from_spec("shard.manifest:1,shard.worker:2");
  EXPECT_TRUE(fi::should_fail("shard.manifest"));
  EXPECT_FALSE(fi::should_fail("shard.worker"));
  EXPECT_TRUE(fi::should_fail("shard.worker"));
  EXPECT_FALSE(fi::should_fail("shard.worker"));  // single-shot
  EXPECT_EQ(fi::call_count("shard.manifest"), 1u);
  EXPECT_EQ(fi::call_count("shard.worker"), 3u);
}

TEST_F(FaultInject, BuildSitesCountAndFireIndependently) {
  // The incremental-build sites share the registry semantics; their
  // recovery paths (kill-anywhere publish, orphan cleanup, GC) are proven
  // end-to-end in tests/test_incremental.cpp and
  // scripts/kill_during_append.sh.
  fi::arm_from_spec("build.fsync:1,build.publish_rename:2");
  EXPECT_TRUE(fi::should_fail("build.fsync"));
  EXPECT_FALSE(fi::should_fail("build.publish_rename"));  // data rename
  EXPECT_TRUE(fi::should_fail("build.publish_rename"));   // manifest rename
  EXPECT_EQ(fi::call_count("build.fsync"), 1u);
  EXPECT_EQ(fi::call_count("build.publish_rename"), 2u);
}

TEST_F(FaultInject, DisarmedSitesAreNoops) {
  EXPECT_FALSE(fi::any_armed());
  EXPECT_FALSE(fi::should_fail("io.read"));
  EXPECT_FALSE(MUBLASTP_FI_FAIL("io.read"));
}

// --- per-site recovery matrix ----------------------------------------------
//
// One fixture owning a small multi-block index on disk plus a query batch,
// so each site can be driven through the real load/search pipeline.

class FaultInjectPipeline : public FaultInject {
 protected:
  static void SetUpTestSuite() {
    const SequenceStore db =
        synth::generate_database(synth::sprot_like(30000), 77);
    DbIndexConfig cfg;
    cfg.block_bytes = 8 * 1024;
    index_ = new DbIndex(DbIndex::build(db, cfg));
    // Unique per process: ctest runs discovered tests as parallel
    // processes, and a shared index file would be rewritten under a
    // sibling's live mapping (SIGBUS on prefault).
    path_ = new std::string(::testing::TempDir() + "/mublastp_fi_index_" +
                            std::to_string(::getpid()) + ".mbi");
    save_db_index_file(*path_, *index_);

    queries_ = new SequenceStore();
    const SequenceStore qsrc =
        synth::generate_database(synth::sprot_like(1500), 4242);
    for (SeqId q = 0; q < 3 && q < qsrc.size(); ++q) {
      queries_->add(qsrc.sequence(q), qsrc.name(q));
    }
  }

  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete index_;
    delete path_;
    delete queries_;
    index_ = nullptr;
    path_ = nullptr;
    queries_ = nullptr;
  }

  static const DbIndex& index() { return *index_; }
  static const std::string& path() { return *path_; }
  static const SequenceStore& queries() { return *queries_; }

  static std::size_t num_blocks() { return index_->blocks().size(); }

  static DbIndex* index_;
  static std::string* path_;
  static SequenceStore* queries_;
};

DbIndex* FaultInjectPipeline::index_ = nullptr;
std::string* FaultInjectPipeline::path_ = nullptr;
SequenceStore* FaultInjectPipeline::queries_ = nullptr;

// Site "alloc.workspace": strict mode fails the batch with kResource.
TEST_F(FaultInjectPipeline, AllocWorkspaceStrictFailsResource) {
  const MuBlastpEngine engine{DbIndexView(index())};
  fi::arm("alloc.workspace", 1);
  expect_kind([&] { (void)engine.search_batch(queries(), 1); },
              ErrorKind::kResource, "alloc.workspace strict");
}

// Site "alloc.workspace": degraded mode quarantines the failing block and
// finishes the search over the survivors.
TEST_F(FaultInjectPipeline, AllocWorkspaceDegradedQuarantines) {
  ASSERT_GE(num_blocks(), 2u);
  const MuBlastpEngine engine{DbIndexView(index())};
  fi::arm("alloc.workspace", 1);
  stats::DegradedStats degraded;
  const auto results = engine.search_batch(queries(), 1, nullptr, &degraded);
  EXPECT_EQ(results.size(), queries().size());
  ASSERT_EQ(degraded.quarantined.size(), 1u);
  EXPECT_EQ(degraded.quarantined[0].block, 0u);  // first round is block 0
  EXPECT_NE(degraded.quarantined[0].reason.find("alloc.workspace"),
            std::string::npos)
      << degraded.quarantined[0].reason;
  EXPECT_TRUE(degraded.partial);
}

// Site "stage.ungapped", Nth-call arming: entry 1 fires in block 0 (and
// aborts its remaining rounds), so entry 2 fires in block 1 — two blocks
// quarantined, the rest searched.
TEST_F(FaultInjectPipeline, StageUngappedNthCallQuarantinesLaterBlock) {
  ASSERT_GE(num_blocks(), 3u);
  const MuBlastpEngine engine{DbIndexView(index())};
  fi::arm_from_spec("stage.ungapped:1,stage.ungapped:2");
  stats::DegradedStats degraded;
  const auto results = engine.search_batch(queries(), 1, nullptr, &degraded);
  EXPECT_EQ(results.size(), queries().size());
  ASSERT_EQ(degraded.quarantined.size(), 2u);
  EXPECT_EQ(degraded.quarantined[0].block, 0u);
  EXPECT_EQ(degraded.quarantined[1].block, 1u);
  EXPECT_TRUE(degraded.partial);
}

TEST_F(FaultInjectPipeline, StageUngappedStrictFailsTyped) {
  const MuBlastpEngine engine{DbIndexView(index())};
  fi::arm("stage.ungapped", 2);
  try {
    (void)engine.search_batch(queries(), 1);
    ADD_FAILURE() << "armed stage.ungapped did not surface";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("stage.ungapped"),
              std::string::npos);
  }
}

// Site "index.crc": an injected checksum mismatch is kCorrupt in strict
// mode; in tolerant mode the localization walk finds no rotten block (the
// bytes are actually fine), which must fail closed too — for EVERY section.
TEST_F(FaultInjectPipeline, IndexCrcFailsClosedAtEverySection) {
  const DbIndexFileInfo info = describe_db_index_file(path());
  ASSERT_FALSE(info.sections.empty());
  bool saw_unlocalized = false;
  for (std::size_t nth = 1; nth <= info.sections.size(); ++nth) {
    fi::reset();
    fi::arm("index.crc", nth);
    expect_kind([&] { (void)load_db_index_file(path()); },
                ErrorKind::kCorrupt,
                "index.crc strict nth=" + std::to_string(nth));

    fi::reset();
    fi::arm("index.crc", nth);
    std::vector<BlockQuarantine> quarantined;
    IndexLoadOptions opts;
    opts.tolerate_block_corruption = true;
    opts.quarantined = &quarantined;
    const std::string what = expect_kind(
        [&] { (void)load_db_index_file(path(), opts); }, ErrorKind::kCorrupt,
        "index.crc tolerant nth=" + std::to_string(nth));
    EXPECT_TRUE(quarantined.empty());
    if (what.find("no per-block checksum") != std::string::npos) {
      saw_unlocalized = true;
    }
  }
  EXPECT_TRUE(saw_unlocalized)
      << "no section exercised the cannot-localize tolerant path";
}

// Site "index.open": both loaders fail with kIo; Nth-call arming fails the
// Nth open only.
TEST_F(FaultInjectPipeline, IndexOpenFailsIo) {
  fi::arm("index.open", 1);
  expect_kind([&] { (void)load_db_index_file(path()); }, ErrorKind::kIo,
              "index.open copy");
  fi::reset();
  fi::arm("index.open", 1);
  expect_kind([&] { MappedDbIndex m(path()); }, ErrorKind::kIo,
              "index.open mmap");
  fi::reset();
  fi::arm("index.open", 2);
  EXPECT_NO_THROW((void)load_db_index_file(path()));  // 1st open fine
  expect_kind([&] { (void)load_db_index_file(path()); }, ErrorKind::kIo,
              "index.open second open");
}

// Site "index.mmap": the map call fails with kResource; an immediate retry
// succeeds (single-shot), which is the tool's retry recovery.
TEST_F(FaultInjectPipeline, IndexMmapFailsResourceThenRetrySucceeds) {
  fi::arm("index.mmap", 1);
  expect_kind([&] { MappedDbIndex m(path()); }, ErrorKind::kResource,
              "index.mmap");
  EXPECT_NO_THROW(MappedDbIndex retry(path()));
}

// Site "index.prefault": a SIGBUS-shaped fault during prefault is kIo; the
// retry succeeds.
TEST_F(FaultInjectPipeline, IndexPrefaultFailsIoThenRetrySucceeds) {
  MappedDbIndexOptions opts;
  opts.prefault = true;
  fi::arm("index.prefault", 1);
  expect_kind([&] { MappedDbIndex m(path(), opts); }, ErrorKind::kIo,
              "index.prefault");
  EXPECT_NO_THROW(MappedDbIndex retry(path(), opts));
}

// Site "io.read": a mid-stream read failure on the index is kIo.
TEST_F(FaultInjectPipeline, IoReadOnIndexStreamFailsIo) {
  std::ifstream in(path(), std::ios::binary);
  ASSERT_TRUE(in.good());
  fi::arm("io.read", 1);
  expect_kind([&] { (void)load_db_index(in); }, ErrorKind::kIo,
              "io.read index stream");
}

// Degraded runs surface in the stats-v1 snapshot: the "degraded" object
// round-trips through to_json/from_json with the quarantine intact.
TEST_F(FaultInjectPipeline, DegradedStatsReflectedInJson) {
  const MuBlastpEngine engine{DbIndexView(index())};
  fi::arm("stage.ungapped", 1);
  stats::PipelineStats ps;
  stats::DegradedStats degraded;
  (void)engine.search_batch(queries(), 1, &ps, &degraded);
  ASSERT_FALSE(degraded.quarantined.empty());
  ps.set_degraded(degraded);

  const stats::PipelineSnapshot snap = ps.snapshot();
  EXPECT_EQ(snap.degraded, degraded);
  const std::string json = stats::to_json(snap);
  EXPECT_NE(json.find("\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\""), std::string::npos);
  EXPECT_NE(json.find("\"partial\": true"), std::string::npos);

  // Reason strings are scrubbed for JSON safety (quotes become '), so the
  // round-trip contract is on the JSON side: parse-back preserves the
  // structure, and a second round-trip is byte-stable.
  const stats::PipelineSnapshot back = stats::from_json(json);
  ASSERT_EQ(back.degraded.quarantined.size(), snap.degraded.quarantined.size());
  EXPECT_EQ(back.degraded.quarantined[0].block,
            snap.degraded.quarantined[0].block);
  EXPECT_FALSE(back.degraded.quarantined[0].reason.empty());
  EXPECT_EQ(back.degraded.partial, snap.degraded.partial);
  EXPECT_EQ(back.degraded.time_budget_trips, snap.degraded.time_budget_trips);
  EXPECT_EQ(back.degraded.mem_budget_trips, snap.degraded.mem_budget_trips);
  EXPECT_EQ(back.degraded.load_retries, snap.degraded.load_retries);
  EXPECT_EQ(stats::to_json(back), json);
}

// A clean run's snapshot has no "degraded" object at all — degraded-mode
// plumbing must not perturb clean output.
TEST_F(FaultInjectPipeline, CleanRunOmitsDegradedFromJson) {
  const MuBlastpEngine engine{DbIndexView(index())};
  stats::PipelineStats ps;
  stats::DegradedStats degraded;
  (void)engine.search_batch(queries(), 1, &ps, &degraded);
  EXPECT_FALSE(degraded.any());
  const std::string json = stats::to_json(ps.snapshot());
  EXPECT_EQ(json.find("\"degraded\""), std::string::npos);
}

// Budgets: an absurdly small time budget trips queries (degraded) or fails
// kCanceled (strict); a tiny memory budget trips but never changes results.
TEST_F(FaultInjectPipeline, TimeBudgetTripsDegradedOrCancelsStrict) {
  MuBlastpOptions opts;
  opts.time_budget_seconds = 1e-12;  // everything exceeds this
  const MuBlastpEngine engine(DbIndexView(index()), SearchParams{}, opts);
  stats::DegradedStats degraded;
  const auto results = engine.search_batch(queries(), 1, nullptr, &degraded);
  EXPECT_EQ(results.size(), queries().size());
  EXPECT_GT(degraded.time_budget_trips, 0u);
  EXPECT_TRUE(degraded.partial);

  expect_kind([&] { (void)engine.search_batch(queries(), 1); },
              ErrorKind::kCanceled, "time budget strict");
}

TEST_F(FaultInjectPipeline, MemBudgetTripsWithoutChangingResults) {
  const MuBlastpEngine plain{DbIndexView(index())};
  const auto expected = plain.search_batch(queries(), 1);

  MuBlastpOptions opts;
  opts.mem_budget_bytes = 1;  // every round trips
  const MuBlastpEngine tight(DbIndexView(index()), SearchParams{}, opts);
  stats::DegradedStats degraded;
  const auto results = tight.search_batch(queries(), 1, nullptr, &degraded);
  EXPECT_GT(degraded.mem_budget_trips, 0u);
  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t q = 0; q < results.size(); ++q) {
    EXPECT_EQ(results[q].ungapped, expected[q].ungapped) << "query " << q;
    EXPECT_EQ(results[q].alignments.size(), expected[q].alignments.size());
  }
}

}  // namespace
}  // namespace mublastp
