#include "core/gapped.hpp"

#include <gtest/gtest.h>

#include "baseline/smith_waterman.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace mublastp {
namespace {

std::vector<Residue> rand_seq(std::size_t len, Rng& rng) {
  std::vector<Residue> s(len);
  for (auto& r : s) r = static_cast<Residue>(rng.next_below(20));
  return s;
}

SearchParams params_with_xdrop(Score xdrop) {
  SearchParams p;
  p.gapped_xdrop = xdrop;
  return p;
}

TEST(XdropExtend, EmptyInputsScoreZero) {
  const std::vector<Residue> empty;
  const auto h = xdrop_extend(empty, empty, blosum62(), 11, 1, 38, true);
  EXPECT_EQ(h.score, 0);
  EXPECT_EQ(h.q_len, 0u);
  EXPECT_EQ(h.s_len, 0u);
  EXPECT_TRUE(h.ops.empty());
}

TEST(XdropExtend, PerfectMatchConsumesEverything) {
  const auto a = encode_sequence("MKVLAWHETRR");
  const auto h = xdrop_extend(a, a, blosum62(), 11, 1, 38, true);
  EXPECT_EQ(h.q_len, a.size());
  EXPECT_EQ(h.s_len, a.size());
  EXPECT_EQ(h.ops, std::string(a.size(), 'M'));
  Score self = 0;
  for (const Residue r : a) self += blosum62()(r, r);
  EXPECT_EQ(h.score, self);
}

TEST(XdropExtend, StopsAtJunkTail) {
  const auto a = encode_sequence("WWWWWWPPPPPPPPPPPPPPPP");
  const auto b = encode_sequence("WWWWWWGGGGGGGGGGGGGGGG");
  const auto h = xdrop_extend(a, b, blosum62(), 11, 1, 10, false);
  EXPECT_EQ(h.q_len, 6u);  // stops after the W-block
  EXPECT_EQ(h.score, 66);  // 6 * 11
}

TEST(XdropExtend, BridgesGapWhenProfitable) {
  // Subject has 3 extra residues in the middle; with a big xdrop the
  // extension should open a gap and capture the second block.
  const auto a = encode_sequence("WWWHHHKKKWWWHHHKKK");
  const auto b = encode_sequence("WWWHHHKKKAAAWWWHHHKKK");
  const auto h = xdrop_extend(a, b, blosum62(), 11, 1, 60, true);
  EXPECT_EQ(h.q_len, a.size());
  EXPECT_EQ(h.s_len, b.size());
  EXPECT_EQ(std::count(h.ops.begin(), h.ops.end(), 'D'), 3);
}

TEST(XdropExtend, TracebackConsumptionMatchesLengths) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = rand_seq(10 + rng.next_below(60), rng);
    const auto b = rand_seq(10 + rng.next_below(60), rng);
    const auto h = xdrop_extend(a, b, blosum62(), 11, 1, 38, true);
    std::size_t qc = 0, sc = 0;
    for (char op : h.ops) {
      if (op == 'M') {
        ++qc;
        ++sc;
      } else if (op == 'I') {
        ++qc;
      } else {
        ++sc;
      }
    }
    EXPECT_EQ(qc, h.q_len);
    EXPECT_EQ(sc, h.s_len);
  }
}

TEST(XdropExtend, TracebackAndScoreOnlyAgree) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = rand_seq(20 + rng.next_below(100), rng);
    const auto b = rand_seq(20 + rng.next_below(100), rng);
    const auto plain = xdrop_extend(a, b, blosum62(), 11, 1, 38, false);
    const auto tb = xdrop_extend(a, b, blosum62(), 11, 1, 38, true);
    EXPECT_EQ(plain.score, tb.score);
    EXPECT_EQ(plain.q_len, tb.q_len);
    EXPECT_EQ(plain.s_len, tb.s_len);
  }
}

TEST(GappedAlign, SeedsFromUngappedAndCoversIt) {
  Rng rng(7);
  auto q = rand_seq(120, rng);
  auto s = rand_seq(140, rng);
  // Plant a strong diagonal match q[40..70) == s[50..80).
  for (int i = 0; i < 30; ++i) s[50 + i] = q[40 + i];
  UngappedAlignment seed{0, 40, 70, 50, 80, 0};
  const auto aln =
      gapped_align(q, s, seed, blosum62(), params_with_xdrop(38), true);
  EXPECT_LE(aln.q_start, 40u);
  EXPECT_GE(aln.q_end, 70u);
  EXPECT_EQ(score_of_transcript(q, s, aln, blosum62(), 11, 1), aln.score);
}

TEST(GappedAlign, ScoreNeverExceedsSmithWaterman) {
  Rng rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    auto q = rand_seq(80, rng);
    auto s = rand_seq(90, rng);
    for (int i = 0; i < 15; ++i) s[20 + i] = q[30 + i];
    UngappedAlignment seed{0, 30, 45, 20, 35, 0};
    const auto aln =
        gapped_align(q, s, seed, blosum62(), params_with_xdrop(38), false);
    const auto sw = smith_waterman(q, s, blosum62(), 11, 1);
    EXPECT_LE(aln.score, sw.score);
  }
}

TEST(GappedAlign, HugeXdropOnPlantedHomologyReachesSwScore) {
  // With a generous x-drop and a strong central anchor, the x-drop DP
  // should find the full optimal local alignment.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    auto q = rand_seq(100, rng);
    auto s = q;
    // A few point mutations.
    for (int k = 0; k < 6; ++k) {
      s[rng.next_below(s.size())] = static_cast<Residue>(rng.next_below(20));
    }
    UngappedAlignment seed{0, 45, 55, 45, 55, 0};
    const auto aln =
        gapped_align(q, s, seed, blosum62(), params_with_xdrop(500), false);
    const auto sw = smith_waterman(q, s, blosum62(), 11, 1);
    EXPECT_EQ(aln.score, sw.score);
  }
}

TEST(GappedAlign, AnchorIsRecordedAndReproducible) {
  Rng rng(13);
  auto q = rand_seq(90, rng);
  auto s = rand_seq(90, rng);
  for (int i = 0; i < 20; ++i) s[30 + i] = q[30 + i];
  UngappedAlignment seed{0, 30, 50, 30, 50, 0};
  const SearchParams p = params_with_xdrop(38);
  const auto aln = gapped_align(q, s, seed, blosum62(), p, false);
  EXPECT_EQ(aln.anchor_q, 39u);  // midpoint of [30, 50)
  EXPECT_EQ(aln.anchor_s, 39u);
  const auto again = gapped_align_at_anchor(q, s, aln.anchor_q, aln.anchor_s,
                                            blosum62(), p, true);
  EXPECT_EQ(again.score, aln.score);
  EXPECT_EQ(again.q_start, aln.q_start);
  EXPECT_EQ(again.q_end, aln.q_end);
  EXPECT_EQ(score_of_transcript(q, s, again, blosum62(), 11, 1), again.score);
}

TEST(GappedAlign, TranscriptOpsStartAndEndAtAnchorPath) {
  Rng rng(17);
  auto q = rand_seq(60, rng);
  auto s = q;
  UngappedAlignment seed{0, 20, 40, 20, 40, 0};
  const auto aln =
      gapped_align(q, s, seed, blosum62(), params_with_xdrop(38), true);
  EXPECT_EQ(aln.ops.size(), aln.q_end - aln.q_start);  // identical: all M
  EXPECT_EQ(aln.ops.find_first_not_of('M'), std::string::npos);
}

TEST(ScoreOfTranscript, RejectsCorruptTranscripts) {
  const auto q = encode_sequence("AAAA");
  const auto s = encode_sequence("AAAA");
  GappedAlignment g;
  g.q_start = 0;
  g.q_end = 4;
  g.s_start = 0;
  g.s_end = 4;
  g.ops = "MMM";  // too short for the coordinates
  EXPECT_THROW(score_of_transcript(q, s, g, blosum62(), 11, 1), Error);
  g.ops = "MMQM";
  EXPECT_THROW(score_of_transcript(q, s, g, blosum62(), 11, 1), Error);
}

}  // namespace
}  // namespace mublastp
