// Tracing subsystem (src/trace): span well-formedness, thread-count
// invariance of the recorded span multiset, fork-style timestamp
// re-basing, the trace <-> stats cross-check, and perfctr graceful
// degradation under fault injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/orchestrator.hpp"
#include "common/faultinject.hpp"
#include "core/mublastp_engine.hpp"
#include "common/rng.hpp"
#include "stats/stats.hpp"
#include "synth/synth.hpp"
#include "trace/trace.hpp"

namespace mublastp {
namespace {

class TraceBattery : public ::testing::Test {
 protected:
  void SetUp() override {
    fi::reset();
    db_ = synth::generate_database(synth::sprot_like(120000), 901);
    Rng rng(902);
    queries_ = synth::sample_queries(db_, 6, 128, rng);
    DbIndexConfig cfg;
    cfg.block_bytes = 32 * 1024;  // several blocks
    index_ = std::make_unique<DbIndex>(DbIndex::build(db_, cfg));
  }
  void TearDown() override { fi::reset(); }

  std::vector<trace::Span> traced_batch(int threads,
                                        stats::PipelineStats* ps = nullptr) {
    const MuBlastpEngine mu(*index_);
    trace::Tracer tracer;
    results_ = mu.search_batch(queries_, threads, ps, nullptr, &tracer);
    tracer.flush();
    return tracer.spans();
  }

  SequenceStore db_;
  SequenceStore queries_;
  std::unique_ptr<DbIndex> index_;
  std::vector<QueryResult> results_;
};

// ---------------------------------------------------------------------------
// Ring mechanics
// ---------------------------------------------------------------------------

TEST(SpanRing, PushDrainAndOverflowDropCounter) {
  trace::detail::SpanRing ring(4);  // rounds up to a power of two
  trace::Span s;
  int pushed = 0;
  for (int i = 0; i < 10; ++i) {
    s.begin_ns = static_cast<std::uint64_t>(i);
    pushed += ring.push(s) ? 1 : 0;
  }
  EXPECT_EQ(pushed, 4);
  EXPECT_EQ(ring.dropped(), 6u);
  std::vector<trace::Span> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].begin_ns, static_cast<std::uint64_t>(i));
  }
  // Drained slots are reusable; the drop counter is cumulative.
  EXPECT_TRUE(ring.push(s));
  EXPECT_EQ(ring.dropped(), 6u);
}

TEST(SpanRing, TracerCountsDropsAcrossLanesAndChildren) {
  trace::TracerOptions opts;
  opts.ring_capacity = 2;
  trace::Tracer tracer(opts);
  for (int i = 0; i < 8; ++i) {
    tracer.record(trace::SpanKind::kMerge, 0, 1);
  }
  tracer.flush();
  EXPECT_EQ(tracer.spans().size() + tracer.dropped(), 8u);
  EXPECT_GT(tracer.dropped(), 0u);
  const std::uint64_t before = tracer.dropped();
  tracer.add_dropped(5);
  EXPECT_EQ(tracer.dropped(), before + 5);
}

// ---------------------------------------------------------------------------
// Span well-formedness on a real batch
// ---------------------------------------------------------------------------

TEST_F(TraceBattery, SpansAreWellFormed) {
  const std::vector<trace::Span> spans = traced_batch(4);
  ASSERT_FALSE(spans.empty());
  const std::uint32_t nblocks =
      static_cast<std::uint32_t>(DbIndexView(*index_).blocks().size());
  for (const trace::Span& s : spans) {
    EXPECT_LE(s.begin_ns, s.end_ns);
    EXPECT_NE(s.lane, trace::kNoId);
    if (s.block != trace::kNoId) {
      EXPECT_LT(s.block, nblocks);
    }
    if (s.query != trace::kNoId &&
        s.kind != trace::SpanKind::kShardWorker) {
      EXPECT_LT(s.query, queries_.size());
    }
  }
  // The decoupled pipeline's boundary sharing: within one (block, query)
  // round, hit_detect.end == sort.begin and sort.end == ungapped.begin —
  // the three spans come from the same three stamps.
  std::map<std::tuple<std::uint32_t, std::uint32_t>,
           std::map<trace::SpanKind, const trace::Span*>> rounds;
  for (const trace::Span& s : spans) {
    if (s.block == trace::kNoId || s.query == trace::kNoId) continue;
    rounds[{s.block, s.query}][s.kind] = &s;
  }
  int adjacent = 0;
  for (const auto& [key, kinds] : rounds) {
    const auto detect = kinds.find(trace::SpanKind::kHitDetect);
    const auto sort = kinds.find(trace::SpanKind::kSort);
    const auto ungapped = kinds.find(trace::SpanKind::kUngapped);
    if (detect == kinds.end() || sort == kinds.end() ||
        ungapped == kinds.end()) {
      continue;
    }
    EXPECT_EQ(detect->second->end_ns, sort->second->begin_ns);
    EXPECT_EQ(sort->second->end_ns, ungapped->second->begin_ns);
    ++adjacent;
  }
  EXPECT_GT(adjacent, 0);
  // gapped.end == finalize.begin per query (the stage() chaining).
  std::map<std::uint32_t, const trace::Span*> gapped, finalize;
  for (const trace::Span& s : spans) {
    if (s.kind == trace::SpanKind::kGapped) gapped[s.query] = &s;
    if (s.kind == trace::SpanKind::kFinalize) finalize[s.query] = &s;
  }
  ASSERT_EQ(gapped.size(), queries_.size());
  ASSERT_EQ(finalize.size(), queries_.size());
  for (const auto& [q, g] : gapped) {
    ASSERT_TRUE(finalize.count(q));
    EXPECT_EQ(g->end_ns, finalize[q]->begin_ns);
  }
}

// ---------------------------------------------------------------------------
// Thread-count invariance
// ---------------------------------------------------------------------------

using SpanKey = std::tuple<trace::SpanKind, std::uint32_t, std::uint32_t>;

std::map<SpanKey, int> span_multiset(const std::vector<trace::Span>& spans) {
  std::map<SpanKey, int> m;
  for (const trace::Span& s : spans) {
    ++m[{s.kind, s.block, s.query}];
  }
  return m;
}

TEST_F(TraceBattery, SpanMultisetInvariantAcrossThreadCounts) {
  const auto m1 = span_multiset(traced_batch(1));
  const std::vector<QueryResult> r1 = results_;
  const auto m2 = span_multiset(traced_batch(2));
  const auto m8 = span_multiset(traced_batch(8));
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1, m8);
  // And tracing never perturbs results.
  const MuBlastpEngine mu(*index_);
  const std::vector<QueryResult> untraced = mu.search_batch(queries_, 4);
  ASSERT_EQ(untraced.size(), results_.size());
  for (std::size_t i = 0; i < untraced.size(); ++i) {
    EXPECT_EQ(untraced[i].alignments.size(), results_[i].alignments.size());
    EXPECT_EQ(untraced[i].stats.hits, results_[i].stats.hits);
  }
}

// ---------------------------------------------------------------------------
// Fork-style re-basing
// ---------------------------------------------------------------------------

TEST(TracerAbsorb, RebasesChildTimestampsOntoParentEpoch) {
  trace::Tracer parent;
  // A "child" whose epoch is 1ms later than the parent's, as if fork()ed
  // after the parent started.
  const std::uint64_t child_epoch = parent.epoch_raw_ns() + 1'000'000;
  std::vector<trace::Span> child_spans(3);
  for (std::uint64_t i = 0; i < child_spans.size(); ++i) {
    child_spans[i].begin_ns = i * 100;
    child_spans[i].end_ns = i * 100 + 50;
    child_spans[i].kind = trace::SpanKind::kGapped;
    child_spans[i].lane = 0;
  }
  const std::int64_t offset =
      static_cast<std::int64_t>(child_epoch) -
      static_cast<std::int64_t>(parent.epoch_raw_ns());
  parent.absorb(child_spans.data(), child_spans.size(), offset, 7);
  parent.flush();
  const std::vector<trace::Span>& spans = parent.spans();
  ASSERT_EQ(spans.size(), 3u);
  for (std::uint64_t i = 0; i < spans.size(); ++i) {
    // Re-based child time = child time + (child epoch - parent epoch):
    // strictly after the parent's epoch, still 50ns long, order preserved.
    EXPECT_EQ(spans[i].begin_ns, 1'000'000 + i * 100);
    EXPECT_EQ(spans[i].end_ns - spans[i].begin_ns, 50u);
    EXPECT_EQ(spans[i].shard, 7u);
  }
}

TEST(TracerAbsorb, ShardedTimelinesAreMonotoneInBothWorkerModes) {
  SequenceStore db = synth::generate_database(synth::sprot_like(60000), 903);
  Rng rng(904);
  SequenceStore queries = synth::sample_queries(db, 3, 96, rng);
  cluster::ShardSetOptions opts;
  const cluster::ShardSet set = cluster::ShardSet::build_in_memory(
      db, 3, cluster::PartitionStrategy::kRoundRobinSorted, DbIndexConfig{},
      opts);

  for (const auto mode : {cluster::ShardWorkerMode::kThread,
                          cluster::ShardWorkerMode::kProcess}) {
    trace::Tracer tracer;
    const cluster::ShardedSearchResult res =
        cluster::search_sharded(set, queries, 4, mode, &tracer);
    EXPECT_TRUE(res.degraded.quarantined_shards.empty());
    tracer.flush();
    const std::uint64_t wall_end = tracer.now_ns();
    bool saw_worker = false;
    bool saw_merge = false;
    for (const trace::Span& s : tracer.spans()) {
      EXPECT_LE(s.begin_ns, s.end_ns);
      // Every re-based child timestamp lands inside the parent's run
      // window — the whole point of shipping the child epoch back.
      EXPECT_LE(s.end_ns, wall_end);
      if (s.kind == trace::SpanKind::kShardWorker) {
        saw_worker = true;
        EXPECT_NE(s.shard, trace::kNoId);
      }
      if (s.kind == trace::SpanKind::kMerge) saw_merge = true;
      if (s.kind == trace::SpanKind::kGapped) {
        EXPECT_NE(s.shard, trace::kNoId);
      }
    }
    EXPECT_TRUE(saw_worker);
    EXPECT_TRUE(saw_merge);
  }
}

// ---------------------------------------------------------------------------
// Trace <-> stats cross-check
// ---------------------------------------------------------------------------

TEST_F(TraceBattery, StageSpanSumsAgreeWithStatsSeconds) {
  stats::PipelineStats ps;
  const std::vector<trace::Span> spans = traced_batch(4, &ps);
  const stats::PipelineSnapshot snap = ps.snapshot();
  double span_sec[stats::kNumStages] = {};
  for (const trace::Span& s : spans) {
    const int k = static_cast<int>(s.kind);
    if (k < stats::kNumStages) {
      span_sec[k] += static_cast<double>(s.end_ns - s.begin_ns) * 1e-9;
    }
  }
  for (int st = 0; st < stats::kNumStages; ++st) {
    const double stats_sec = snap.stage_seconds[st];
    // Only stages with enough absolute time to measure meaningfully; the
    // spans close over the same LapTimer boundaries, so agreement should
    // be far inside 5%.
    if (stats_sec < 100e-6) continue;
    EXPECT_NEAR(span_sec[st], stats_sec, stats_sec * 0.05)
        << "stage " << stats::stage_name(static_cast<stats::Stage>(st));
  }
  // The whole pipeline is covered: every per-stage second the snapshot
  // booked has a span accounting for it.
  double total_spans = 0;
  double total_stats = 0;
  for (int st = 0; st < stats::kNumStages; ++st) {
    total_spans += span_sec[st];
    total_stats += snap.stage_seconds[st];
  }
  EXPECT_NEAR(total_spans, total_stats, total_stats * 0.05 + 50e-6);
}

// ---------------------------------------------------------------------------
// perfctr graceful degradation
// ---------------------------------------------------------------------------

TEST_F(TraceBattery, PerfctrOpenFailureDegradesToPlainTimestamps) {
  // Kill every perf_event_open attempt this run could make (one per lane).
  std::string spec;
  for (int i = 1; i <= 32; ++i) {
    spec += (i == 1 ? "" : ",") + std::string("trace.perfctr_open:") +
            std::to_string(i);
  }
  fi::arm_from_spec(spec);

  const MuBlastpEngine mu(*index_);
  trace::TracerOptions opts;
  opts.counters = true;
  trace::Tracer tracer(opts);
  const std::vector<QueryResult> traced =
      mu.search_batch(queries_, 4, nullptr, nullptr, &tracer);
  tracer.flush();
  EXPECT_GT(fi::call_count("trace.perfctr_open"), 0u);
  EXPECT_FALSE(tracer.counters_available());
  EXPECT_FALSE(tracer.perf_totals().recorded());
  EXPECT_FALSE(tracer.spans().empty());
  for (const trace::Span& s : tracer.spans()) {
    EXPECT_EQ(s.has_counters, 0);
  }
  // Results are untouched by the degradation.
  fi::reset();
  const std::vector<QueryResult> clean = mu.search_batch(queries_, 4);
  ASSERT_EQ(clean.size(), traced.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].alignments.size(), traced[i].alignments.size());
  }
}

// ---------------------------------------------------------------------------
// Emission + stats-v1 perf_counters round trip
// ---------------------------------------------------------------------------

TEST_F(TraceBattery, ChromeJsonEmissionIsSaneAndDeterministic) {
  const std::vector<trace::Span> spans = traced_batch(2);
  trace::Tracer tracer;
  tracer.absorb(spans.data(), spans.size(), 0, trace::kNoId);
  trace::TraceMeta meta;
  meta.engine = "mublastp";
  meta.kernel = "scalar";
  meta.threads = 2;
  const std::string json = trace::to_chrome_json(tracer, meta);
  EXPECT_NE(json.find("\"schema\": \"mublastp-trace-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_detect\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Same spans, same bytes: emission is deterministically ordered.
  trace::Tracer again;
  again.absorb(spans.data(), spans.size(), 0, trace::kNoId);
  EXPECT_EQ(json, trace::to_chrome_json(again, meta));
}

TEST(PerfCounterStatsJson, RoundTripsAndIsOmittedWhenUnused) {
  stats::PipelineStats ps;
  ps.begin_run(1, 1, 1);
  ps.finish_run(0.5);
  const std::string without = stats::to_json(ps.snapshot());
  EXPECT_EQ(without.find("perf_counters"), std::string::npos);
  EXPECT_EQ(stats::to_json(stats::from_json(without)), without);

  stats::PerfCounterStats pc;
  pc.sampled_spans = 12;
  for (int i = 0; i < stats::kNumStages; ++i) {
    pc.cycles[i] = 1000 + i;
    pc.instructions[i] = 2000 + i;
    pc.llc_misses[i] = 30 + i;
    pc.branch_misses[i] = 40 + i;
  }
  ps.set_perf_counters(pc);
  const std::string with = stats::to_json(ps.snapshot());
  EXPECT_NE(with.find("\"perf_counters\""), std::string::npos);
  const stats::PipelineSnapshot back = stats::from_json(with);
  EXPECT_EQ(back.perf_counters, pc);
  EXPECT_EQ(stats::to_json(back), with);
}

}  // namespace
}  // namespace mublastp
