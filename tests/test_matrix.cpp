#include "score/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mublastp {
namespace {

Residue enc(char c) { return encode_residue(c); }

TEST(Blosum62, KnownValues) {
  const ScoreMatrix& m = blosum62();
  // Spot checks against the canonical published matrix.
  EXPECT_EQ(m(enc('A'), enc('A')), 4);
  EXPECT_EQ(m(enc('W'), enc('W')), 11);
  EXPECT_EQ(m(enc('C'), enc('C')), 9);
  EXPECT_EQ(m(enc('A'), enc('R')), -1);
  EXPECT_EQ(m(enc('W'), enc('G')), -2);
  EXPECT_EQ(m(enc('I'), enc('L')), 2);
  EXPECT_EQ(m(enc('E'), enc('Q')), 2);
  EXPECT_EQ(m(enc('D'), enc('B')), 4);
  EXPECT_EQ(m(enc('X'), enc('X')), -1);
  EXPECT_EQ(m(enc('*'), enc('*')), 1);
  EXPECT_EQ(m(enc('A'), enc('*')), -4);
}

TEST(Blosum62, MaxAndMin) {
  EXPECT_EQ(blosum62().max_score(), 11);  // W/W
  EXPECT_EQ(blosum62().min_score(), -4);
}

TEST(Blosum62, Name) { EXPECT_EQ(blosum62().name(), "BLOSUM62"); }

TEST(MatrixByName, ResolvesAll) {
  EXPECT_EQ(&matrix_by_name("BLOSUM62"), &blosum62());
  EXPECT_EQ(&matrix_by_name("BLOSUM50"), &blosum50());
  EXPECT_EQ(&matrix_by_name("BLOSUM80"), &blosum80());
  EXPECT_EQ(&matrix_by_name("PAM250"), &pam250());
}

TEST(MatrixByName, ThrowsForUnknown) {
  EXPECT_THROW(matrix_by_name("BLOSUM45"), Error);
}

TEST(MatrixRow, RowMatchesCellAccess) {
  const ScoreMatrix& m = blosum62();
  for (int a = 0; a < kAlphabetSize; ++a) {
    const auto row = m.row(static_cast<Residue>(a));
    for (int b = 0; b < kAlphabetSize; ++b) {
      EXPECT_EQ(row[static_cast<std::size_t>(b)],
                m(static_cast<Residue>(a), static_cast<Residue>(b)));
    }
  }
}

// Properties that must hold for every shipped matrix.
class AllMatrices : public ::testing::TestWithParam<const char*> {
 protected:
  const ScoreMatrix& m() const { return matrix_by_name(GetParam()); }
};

TEST_P(AllMatrices, IsSymmetric) {
  for (int a = 0; a < kAlphabetSize; ++a) {
    for (int b = 0; b < kAlphabetSize; ++b) {
      EXPECT_EQ(m()(static_cast<Residue>(a), static_cast<Residue>(b)),
                m()(static_cast<Residue>(b), static_cast<Residue>(a)))
          << "at " << decode_residue(static_cast<Residue>(a)) << ","
          << decode_residue(static_cast<Residue>(b));
    }
  }
}

TEST_P(AllMatrices, DiagonalIsRowMaximumForStandardResidues) {
  // Identity should never score worse than substitution for the 20 standard
  // amino acids (holds for all BLOSUM/PAM matrices shipped).
  for (int a = 0; a < 20; ++a) {
    const Score self = m()(static_cast<Residue>(a), static_cast<Residue>(a));
    for (int b = 0; b < 20; ++b) {
      EXPECT_GE(self, m()(static_cast<Residue>(a), static_cast<Residue>(b)));
    }
  }
}

TEST_P(AllMatrices, DiagonalPositiveForStandardResidues) {
  for (int a = 0; a < 20; ++a) {
    EXPECT_GT(m()(static_cast<Residue>(a), static_cast<Residue>(a)), 0);
  }
}

TEST_P(AllMatrices, StopScoresAreUniformlyWorst) {
  const Residue stop = enc('*');
  const Score stop_pen = m()(enc('A'), stop);
  for (int a = 0; a < kAlphabetSize - 1; ++a) {
    EXPECT_EQ(m()(static_cast<Residue>(a), stop), stop_pen);
  }
  EXPECT_GT(m()(stop, stop), 0);
}

INSTANTIATE_TEST_SUITE_P(Shipped, AllMatrices,
                         ::testing::Values("BLOSUM62", "BLOSUM50", "BLOSUM80",
                                           "PAM250"));

}  // namespace
}  // namespace mublastp
