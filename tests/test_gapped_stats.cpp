#include "baseline/gapped_stats.hpp"

#include <gtest/gtest.h>

#include "baseline/smith_waterman.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace mublastp {
namespace {

TEST(SwScoreOnly, MatchesFullSmithWaterman) {
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Residue> a(20 + rng.next_below(80));
    std::vector<Residue> b(20 + rng.next_below(80));
    for (auto& r : a) r = static_cast<Residue>(rng.next_below(20));
    for (auto& r : b) r = static_cast<Residue>(rng.next_below(20));
    EXPECT_EQ(smith_waterman_score(a, b, blosum62(), 11, 1),
              smith_waterman(a, b, blosum62(), 11, 1).score);
  }
}

TEST(GappedStats, DeterministicForSeed) {
  GappedSimOptions opt;
  opt.num_pairs = 32;
  opt.seq_len = 64;
  const KarlinParams a = estimate_gapped_params(blosum62(), 11, 1, opt);
  const KarlinParams b = estimate_gapped_params(blosum62(), 11, 1, opt);
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.K, b.K);
}

TEST(GappedStats, Blosum62LambdaNearPublished) {
  // NCBI's fitted value for BLOSUM62 11/1 is lambda = 0.267. Simulation
  // with a few hundred pairs lands within ~15%.
  GappedSimOptions opt;
  opt.num_pairs = 300;
  opt.seq_len = 256;
  opt.seed = 7;
  const KarlinParams p = estimate_gapped_params(blosum62(), 11, 1, opt);
  EXPECT_NEAR(p.lambda, 0.267, 0.045);
  EXPECT_GT(p.K, 0.0);
}

TEST(GappedStats, HugePenaltiesRecoverUngappedLambda) {
  // With gaps priced out of existence the statistics converge to the
  // ungapped scoring system (analytic lambda = 0.3176).
  GappedSimOptions opt;
  opt.num_pairs = 300;
  opt.seq_len = 256;
  opt.seed = 9;
  const KarlinParams p = estimate_gapped_params(blosum62(), 1000, 1000, opt);
  EXPECT_NEAR(p.lambda, compute_karlin(blosum62()).lambda, 0.05);
}

TEST(GappedStats, CheaperGapsLowerLambda) {
  // Cheaper gaps -> higher random scores -> flatter tail -> smaller lambda.
  GappedSimOptions opt;
  opt.num_pairs = 200;
  opt.seq_len = 200;
  opt.seed = 11;
  const KarlinParams cheap = estimate_gapped_params(blosum62(), 7, 1, opt);
  const KarlinParams dear = estimate_gapped_params(blosum62(), 15, 2, opt);
  EXPECT_LT(cheap.lambda, dear.lambda);
}

TEST(GappedStats, RejectsDegenerateOptions) {
  GappedSimOptions opt;
  opt.num_pairs = 4;
  EXPECT_THROW(estimate_gapped_params(blosum62(), 11, 1, opt), Error);
  opt.num_pairs = 100;
  opt.seq_len = 8;
  EXPECT_THROW(estimate_gapped_params(blosum62(), 11, 1, opt), Error);
}

}  // namespace
}  // namespace mublastp
