// Unit tests for the long-sequence assembly step (core/fragment_assembly):
// converting fragment-local ungapped segments to whole-sequence coordinates
// and re-extending across fragment boundaries.
#include "core/fragment_assembly.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mublastp {
namespace {

class AssemblyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    query_.resize(80);
    for (auto& r : query_) r = static_cast<Residue>(rng.next_below(20));

    // One 1000-residue sequence with a planted copy of the query at 460
    // (straddling a fragment cut at 500).
    std::vector<Residue> seq(1000);
    for (auto& r : seq) r = static_cast<Residue>(rng.next_below(20));
    for (std::size_t i = 0; i < query_.size(); ++i) seq[460 + i] = query_[i];
    db_.add(seq, "long");
  }

  // Fragment [start, start+len) of sequence 0.
  static FragmentRef frag(std::uint32_t start, std::uint32_t len) {
    return {0, start, len};
  }

  std::vector<Residue> query_;
  SequenceStore db_;
  SearchParams params_;
};

TEST_F(AssemblyFixture, InteriorSegmentIsJustShifted) {
  // A segment fully inside fragment [400, 900): local coords + 400.
  const FragmentRef f = frag(400, 500);
  const auto subject = db_.sequence(0).subspan(400, 500);
  // Hit on the planted copy: query 20 aligns subject-local 80 (global 480).
  const UngappedSeg seg =
      ungapped_extend(query_, subject, 20, 80, blosum62(), 16);
  ASSERT_GT(seg.score, 0);
  ASSERT_GT(seg.s_start, 0u);  // does not touch the fragment start
  const UngappedAlignment out = resolve_fragment_segment(
      query_, db_, f, seg, 20, 80, blosum62(), params_);
  EXPECT_EQ(out.subject, 0u);
  EXPECT_EQ(out.q_start, seg.q_start);
  EXPECT_EQ(out.s_start, 400 + seg.s_start);
  EXPECT_EQ(out.s_end, 400 + seg.s_end);
  EXPECT_EQ(out.score, seg.score);
}

TEST_F(AssemblyFixture, LeftClippedSegmentIsReExtended) {
  // Fragment [500, 1000): the planted copy starts at 460, so an extension
  // from a hit inside the fragment runs into the left boundary and clips.
  const FragmentRef f = frag(500, 500);
  const auto subject = db_.sequence(0).subspan(500, 500);
  // Query position 45 matches global 505 = local 5.
  const UngappedSeg local =
      ungapped_extend(query_, subject, 45, 5, blosum62(), 16);
  ASSERT_EQ(local.s_start, 0u);  // clipped at the fragment edge
  const UngappedAlignment out = resolve_fragment_segment(
      query_, db_, f, local, 45, 5, blosum62(), params_);
  // Re-extension on the whole sequence recovers the full planted region.
  EXPECT_LT(out.s_start, 500u);
  EXPECT_GE(out.score, local.score);
  // And matches a direct whole-sequence extension from the same anchor.
  const UngappedSeg whole =
      ungapped_extend(query_, db_.sequence(0), 45, 505, blosum62(), 16);
  EXPECT_EQ(out.s_start, whole.s_start);
  EXPECT_EQ(out.s_end, whole.s_end);
  EXPECT_EQ(out.score, whole.score);
}

TEST_F(AssemblyFixture, RightClippedSegmentIsReExtended) {
  // Fragment [0, 500): the copy at 460 extends past the right edge.
  const FragmentRef f = frag(0, 500);
  const auto subject = db_.sequence(0).subspan(0, 500);
  // Query position 10 matches global/local 470.
  const UngappedSeg local =
      ungapped_extend(query_, subject, 10, 470, blosum62(), 16);
  ASSERT_EQ(local.s_end, 500u);  // clipped at the fragment end
  const UngappedAlignment out = resolve_fragment_segment(
      query_, db_, f, local, 10, 470, blosum62(), params_);
  EXPECT_GT(out.s_end, 500u);
  const UngappedSeg whole =
      ungapped_extend(query_, db_.sequence(0), 10, 470, blosum62(), 16);
  EXPECT_EQ(out.s_end, whole.s_end);
  EXPECT_EQ(out.score, whole.score);
}

TEST_F(AssemblyFixture, WholeSequenceFragmentNeverReExtends) {
  // A fragment covering the entire sequence: even segments touching the
  // ends are NOT boundary-clipped (there is nothing beyond them).
  const FragmentRef f = frag(0, 1000);
  const auto subject = db_.sequence(0);
  const UngappedSeg seg =
      ungapped_extend(query_, subject, 0, 460, blosum62(), 16);
  const UngappedAlignment out = resolve_fragment_segment(
      query_, db_, f, seg, 0, 460, blosum62(), params_);
  EXPECT_EQ(out.s_start, seg.s_start);
  EXPECT_EQ(out.s_end, seg.s_end);
  EXPECT_EQ(out.score, seg.score);
}

}  // namespace
}  // namespace mublastp
