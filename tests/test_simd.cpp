// SIMD subsystem tests: dispatch plumbing, the query score profile, and
// bit-exactness of every vector kernel against the scalar reference on
// randomized and adversarial inputs. Vector paths only run where the host
// CPU supports them (supported_paths), so the suite passes — with reduced
// coverage — on any machine.
#include "simd/kernels.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "baseline/smith_waterman.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/ungapped.hpp"
#include "simd/dispatch.hpp"
#include "simd/score_profile.hpp"

namespace mublastp {
namespace {

std::vector<Residue> rand_seq(std::size_t len, Rng& rng) {
  std::vector<Residue> s(len);
  for (auto& r : s) r = static_cast<Residue>(rng.next_below(20));
  return s;
}

std::vector<simd::KernelPath> supported_paths() {
  std::vector<simd::KernelPath> paths = {simd::KernelPath::kScalar};
  for (const simd::KernelPath p :
       {simd::KernelPath::kSse42, simd::KernelPath::kAvx2}) {
    if (simd::kernel_supported(p)) paths.push_back(p);
  }
  return paths;
}

void expect_same_seg(const UngappedSeg& got, const UngappedSeg& want,
                     const char* kernel) {
  EXPECT_EQ(got.score, want.score) << kernel;
  EXPECT_EQ(got.q_start, want.q_start) << kernel;
  EXPECT_EQ(got.q_end, want.q_end) << kernel;
  EXPECT_EQ(got.s_start, want.s_start) << kernel;
  EXPECT_EQ(got.s_end, want.s_end) << kernel;
}

// ---- Dispatch -------------------------------------------------------------

TEST(SimdDispatch, NameParseRoundTrip) {
  for (const simd::KernelPath p :
       {simd::KernelPath::kScalar, simd::KernelPath::kSse42,
        simd::KernelPath::kAvx2}) {
    EXPECT_EQ(simd::parse_kernel(simd::kernel_name(p)), p);
  }
}

TEST(SimdDispatch, AutoResolvesToDetectedKernel) {
  EXPECT_EQ(simd::parse_kernel("auto"), simd::detect_kernel());
}

TEST(SimdDispatch, RejectsUnknownName) {
  EXPECT_THROW(simd::parse_kernel("avx512"), Error);
  EXPECT_THROW(simd::parse_kernel(""), Error);
}

TEST(SimdDispatch, ScalarAlwaysSupportedAndDetectSupported) {
  EXPECT_TRUE(simd::kernel_supported(simd::KernelPath::kScalar));
  EXPECT_TRUE(simd::kernel_supported(simd::detect_kernel()));
}

TEST(SimdDispatch, DefaultKernelIsPinnable) {
  const simd::KernelPath before = simd::default_kernel();
  simd::set_default_kernel(simd::KernelPath::kScalar);
  EXPECT_EQ(simd::default_kernel(), simd::KernelPath::kScalar);
  simd::set_default_kernel(before);
  EXPECT_EQ(simd::default_kernel(), before);
}

// ---- Query profile --------------------------------------------------------

TEST(SimdProfile, MatchesMatrixForEveryPositionAndResidue) {
  Rng rng(23);
  const auto q = rand_seq(73, rng);
  simd::QueryProfile profile;
  profile.build(q, blosum62());
  ASSERT_EQ(profile.query_length(), q.size());
  for (std::size_t qi = 0; qi < q.size(); ++qi) {
    for (int r = 0; r < kAlphabetSize; ++r) {
      EXPECT_EQ(profile.data()[(qi << simd::kResidueShift) | r],
                blosum62()(q[qi], static_cast<Residue>(r)));
    }
  }
}

TEST(SimdProfile, RebuildTracksNewQuery) {
  Rng rng(29);
  const auto q1 = rand_seq(40, rng);
  const auto q2 = rand_seq(64, rng);
  simd::QueryProfile profile;
  profile.build(q1, blosum62());
  profile.build(q2, blosum62());
  ASSERT_EQ(profile.query_length(), q2.size());
  EXPECT_EQ(profile.data()[(5 << simd::kResidueShift) | q2[5]],
            blosum62()(q2[5], q2[5]));
  EXPECT_GT(profile.footprint_bytes(), 0u);
}

// ---- Ungapped extension kernels -------------------------------------------

TEST(SimdUngapped, FuzzMatchesScalarOnRandomHits) {
  Rng rng(31);
  for (const simd::KernelPath path : supported_paths()) {
    for (int trial = 0; trial < 300; ++trial) {
      const auto q = rand_seq(30 + rng.next_below(220), rng);
      const auto s = rand_seq(30 + rng.next_below(220), rng);
      const std::uint32_t qoff =
          static_cast<std::uint32_t>(rng.next_below(q.size() - kWordLength));
      const std::uint32_t soff =
          static_cast<std::uint32_t>(rng.next_below(s.size() - kWordLength));
      simd::QueryProfile profile;
      profile.build(q, blosum62());
      for (const Score xdrop : {Score{0}, Score{4}, Score{16}, Score{1000}}) {
        const auto want = ungapped_extend(q, s, qoff, soff, blosum62(), xdrop);
        const auto got = simd::ungapped_extend_one(path, q, s, qoff, soff,
                                                   profile, blosum62(), xdrop);
        expect_same_seg(got, want, simd::kernel_name(path));
      }
    }
  }
}

TEST(SimdUngapped, LongHomologousRunsExerciseVectorChunks) {
  // Identical sequences: the score never drops, so both sweeps run to the
  // sequence ends — well past the scalar lead, through many vector chunks.
  Rng rng(37);
  for (const simd::KernelPath path : supported_paths()) {
    for (const std::size_t len : {64u, 127u, 256u, 1000u}) {
      const auto q = rand_seq(len, rng);
      simd::QueryProfile profile;
      profile.build(q, blosum62());
      for (const std::uint32_t off :
           {0u, 1u, 7u, static_cast<std::uint32_t>(len / 2),
            static_cast<std::uint32_t>(len - kWordLength)}) {
        const auto want = ungapped_extend(q, q, off, off, blosum62(), 16);
        const auto got = simd::ungapped_extend_one(path, q, q, off, off,
                                                   profile, blosum62(), 16);
        expect_same_seg(got, want, simd::kernel_name(path));
        EXPECT_EQ(got.q_start, 0u);
        EXPECT_EQ(got.q_end, q.size());
      }
    }
  }
}

TEST(SimdUngapped, PlantedDropsStopInsideVectorChunks) {
  // A long identical run with strong-negative residues planted at varying
  // distances puts the x-drop stop at every possible lane of a chunk.
  Rng rng(41);
  for (const simd::KernelPath path : supported_paths()) {
    const auto base = rand_seq(400, rng);
    simd::QueryProfile profile;
    profile.build(base, blosum62());
    for (std::uint32_t stop_at = 180; stop_at < 240; ++stop_at) {
      auto s = base;
      // Residue 'W' vs 'C' scores -2; a run of them forces the drop.
      for (std::uint32_t i = stop_at; i < std::min<std::size_t>(s.size(),
                                                               stop_at + 30);
           ++i) {
        s[i] = s[i] == encode_sequence("W")[0] ? encode_sequence("C")[0]
                                               : encode_sequence("W")[0];
      }
      const auto want = ungapped_extend(base, s, 100, 100, blosum62(), 8);
      const auto got = simd::ungapped_extend_one(path, base, s, 100, 100,
                                                 profile, blosum62(), 8);
      expect_same_seg(got, want, simd::kernel_name(path));
    }
  }
}

TEST(SimdUngapped, BatchMatchesPerHitResults) {
  Rng rng(43);
  for (const simd::KernelPath path : supported_paths()) {
    const auto q = rand_seq(300, rng);
    simd::QueryProfile profile;
    profile.build(q, blosum62());
    std::vector<std::vector<Residue>> subjects;
    std::vector<simd::BatchHit> hits;
    for (int i = 0; i < 37; ++i) {
      subjects.push_back(rand_seq(60 + rng.next_below(300), rng));
    }
    for (int i = 0; i < 37; ++i) {
      const auto& s = subjects[i];
      hits.push_back({s.data(), static_cast<std::uint32_t>(s.size()),
                      static_cast<std::uint32_t>(
                          rng.next_below(q.size() - kWordLength)),
                      static_cast<std::uint32_t>(
                          rng.next_below(s.size() - kWordLength))});
    }
    std::vector<UngappedSeg> out(hits.size());
    simd::ungapped_extend_batch(path, q, profile, blosum62(), 16, hits,
                                out.data());
    for (std::size_t i = 0; i < hits.size(); ++i) {
      const auto want = simd::ungapped_extend_one(
          path, q,
          std::span<const Residue>(hits[i].subject, hits[i].subject_len),
          hits[i].qoff, hits[i].soff, profile, blosum62(), 16);
      expect_same_seg(out[i], want, simd::kernel_name(path));
    }
  }
}

// ---- Striped Smith-Waterman -----------------------------------------------

TEST(SimdSmithWaterman, StripedMatchesScalarScore) {
  Rng rng(47);
  for (const simd::KernelPath path : supported_paths()) {
    if (path == simd::KernelPath::kScalar) continue;
    for (int trial = 0; trial < 40; ++trial) {
      const auto q = rand_seq(1 + rng.next_below(180), rng);
      const auto s = rand_seq(1 + rng.next_below(180), rng);
      const Score want = smith_waterman_score(q, s, blosum62(), 11, 1);
      const auto got =
          simd::smith_waterman_score_striped(path, q, s, blosum62(), 11, 1);
      ASSERT_TRUE(got.has_value()) << simd::kernel_name(path);
      EXPECT_EQ(*got, want) << simd::kernel_name(path);
    }
  }
}

TEST(SimdSmithWaterman, DispatchedOverloadEqualsScalarOverload) {
  Rng rng(53);
  for (const simd::KernelPath path : supported_paths()) {
    for (int trial = 0; trial < 25; ++trial) {
      const auto q = rand_seq(20 + rng.next_below(150), rng);
      const auto s = rand_seq(20 + rng.next_below(150), rng);
      EXPECT_EQ(smith_waterman_score(q, s, blosum62(), 11, 1, path),
                smith_waterman_score(q, s, blosum62(), 11, 1))
          << simd::kernel_name(path);
    }
  }
}

TEST(SimdSmithWaterman, ScalarPathAndEmptyInputDecline) {
  Rng rng(59);
  const auto q = rand_seq(30, rng);
  EXPECT_FALSE(simd::smith_waterman_score_striped(simd::KernelPath::kScalar,
                                                  q, q, blosum62(), 11, 1)
                   .has_value());
  const std::vector<Residue> empty;
  for (const simd::KernelPath path : supported_paths()) {
    EXPECT_FALSE(
        simd::smith_waterman_score_striped(path, empty, q, blosum62(), 11, 1)
            .has_value());
  }
}

TEST(SimdSmithWaterman, IdenticalLongSequencesScoreFullMatch) {
  // Long self-alignment: the best score grows linearly, close to the int16
  // guard for very long inputs — exercises the saturation-or-exact promise.
  Rng rng(61);
  const auto q = rand_seq(2000, rng);
  const Score want = smith_waterman_score(q, q, blosum62(), 11, 1);
  for (const simd::KernelPath path : supported_paths()) {
    if (path == simd::KernelPath::kScalar) continue;
    const auto got =
        simd::smith_waterman_score_striped(path, q, q, blosum62(), 11, 1);
    if (got.has_value()) {
      EXPECT_EQ(*got, want) << simd::kernel_name(path);
    }
    // With the dispatched overload the fallback makes the answer exact
    // either way.
    EXPECT_EQ(smith_waterman_score(q, q, blosum62(), 11, 1, path), want);
  }
}

}  // namespace
}  // namespace mublastp
