#include "common/sequence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mublastp {
namespace {

TEST(SequenceStore, StartsEmpty) {
  SequenceStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.total_residues(), 0u);
}

TEST(SequenceStore, AddAsciiAndReadBack) {
  SequenceStore store;
  const SeqId id = store.add_ascii("ARNDC", "seq1");
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.length(0), 5u);
  EXPECT_EQ(store.name(0), "seq1");
  EXPECT_EQ(decode_sequence({store.sequence(0).begin(),
                             store.sequence(0).end()}),
            "ARNDC");
}

TEST(SequenceStore, MultipleSequencesContiguousArena) {
  SequenceStore store;
  store.add_ascii("AAAA");
  store.add_ascii("RRR");
  store.add_ascii("NN");
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.total_residues(), 9u);
  EXPECT_EQ(store.arena_offset(0), 0u);
  EXPECT_EQ(store.arena_offset(1), 4u);
  EXPECT_EQ(store.arena_offset(2), 7u);
  // Spans point into one arena.
  EXPECT_EQ(store.sequence(1).data(), store.arena().data() + 4);
}

TEST(SequenceStore, RejectsEmptySequence) {
  SequenceStore store;
  EXPECT_THROW(store.add_ascii(""), Error);
}

TEST(SequenceStore, IdsByLengthIsStableAscending) {
  SequenceStore store;
  store.add_ascii("AAAA");   // id 0, len 4
  store.add_ascii("RR");     // id 1, len 2
  store.add_ascii("NNNN");   // id 2, len 4 (ties with 0 -> id order)
  store.add_ascii("C");      // id 3, len 1
  const auto order = store.ids_by_length();
  EXPECT_EQ(order, (std::vector<SeqId>{3, 1, 0, 2}));
}

TEST(SequenceStore, PermutedReordersEverything) {
  SequenceStore store;
  store.add_ascii("AAAA", "a");
  store.add_ascii("RR", "r");
  store.add_ascii("NNN", "n");
  const SequenceStore p = store.permuted({2, 0, 1});
  EXPECT_EQ(p.name(0), "n");
  EXPECT_EQ(p.name(1), "a");
  EXPECT_EQ(p.name(2), "r");
  EXPECT_EQ(p.length(0), 3u);
  EXPECT_EQ(p.length(1), 4u);
  EXPECT_EQ(p.length(2), 2u);
  EXPECT_EQ(p.total_residues(), store.total_residues());
}

TEST(SequenceStore, PermutedValidatesInput) {
  SequenceStore store;
  store.add_ascii("AAAA");
  EXPECT_THROW(store.permuted({0, 0}), Error);   // wrong size
  EXPECT_THROW(store.permuted({5}), Error);      // out of range
}

TEST(SequenceStore, SortThenPermuteGivesAscendingLengths) {
  SequenceStore store;
  store.add_ascii("AAAAAAA");
  store.add_ascii("RR");
  store.add_ascii("NNNNN");
  store.add_ascii("CCC");
  const SequenceStore sorted = store.permuted(store.ids_by_length());
  for (SeqId i = 0; i + 1 < sorted.size(); ++i) {
    EXPECT_LE(sorted.length(i), sorted.length(i + 1));
  }
}

}  // namespace
}  // namespace mublastp
