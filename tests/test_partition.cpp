#include "cluster/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mublastp::cluster {
namespace {

std::vector<std::size_t> random_lens(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::size_t> lens(n);
  for (auto& l : lens) l = 60 + rng.next_below(900);
  return lens;
}

class AllStrategies : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(AllStrategies, EverySequenceAssignedExactlyOnce) {
  const auto lens = random_lens(5000, 1);
  const Partitioning part = make_partitioning(lens, 16, GetParam());
  ASSERT_EQ(part.assignment.size(), lens.size());
  std::size_t total_count = 0;
  double total_chars = 0.0;
  for (std::size_t p = 0; p < 16; ++p) {
    total_count += part.counts[p];
    total_chars += part.chars[p];
  }
  EXPECT_EQ(total_count, lens.size());
  EXPECT_NEAR(total_chars,
              static_cast<double>(std::accumulate(lens.begin(), lens.end(),
                                                  std::size_t{0})),
              0.5);
  // Assignment agrees with the summaries.
  std::vector<double> recompute(16, 0.0);
  for (std::size_t i = 0; i < lens.size(); ++i) {
    ASSERT_LT(part.assignment[i], 16u);
    recompute[part.assignment[i]] += static_cast<double>(lens[i]);
  }
  for (std::size_t p = 0; p < 16; ++p) {
    EXPECT_NEAR(recompute[p], part.chars[p], 0.5);
  }
}

TEST_P(AllStrategies, SinglePartitionTakesEverything) {
  const auto lens = random_lens(100, 2);
  const Partitioning part = make_partitioning(lens, 1, GetParam());
  EXPECT_EQ(part.counts[0], lens.size());
  EXPECT_DOUBLE_EQ(part.imbalance(), 0.0);
}

TEST_P(AllStrategies, MorePartitionsThanSequences) {
  const std::vector<std::size_t> lens{100, 200, 300};
  const Partitioning part = make_partitioning(lens, 8, GetParam());
  std::size_t nonempty = 0;
  for (const std::size_t c : part.counts) {
    if (c > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 3u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, AllStrategies,
                         ::testing::Values(PartitionStrategy::kContiguous,
                                           PartitionStrategy::kRoundRobinSorted,
                                           PartitionStrategy::kGreedyLpt),
                         [](const auto& info) {
                           std::string n = strategy_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Partition, BalanceOrderingMatchesTheory) {
  // On a length-trending database: LPT <= round-robin << contiguous.
  std::vector<std::size_t> lens(6000);
  Rng rng(3);
  for (std::size_t i = 0; i < lens.size(); ++i) {
    lens[i] = 60 + i / 8 + rng.next_below(60);
  }
  const double contiguous =
      make_partitioning(lens, 32, PartitionStrategy::kContiguous).imbalance();
  const double rr = make_partitioning(lens, 32,
                                      PartitionStrategy::kRoundRobinSorted)
                        .imbalance();
  const double lpt =
      make_partitioning(lens, 32, PartitionStrategy::kGreedyLpt).imbalance();
  EXPECT_LT(rr, contiguous);
  EXPECT_LE(lpt, rr + 1e-12);
  EXPECT_LT(lpt, 0.01);
}

TEST(Partition, RoundRobinSpreadsLengthMix) {
  // Every partition should get a similar length *distribution*, not just a
  // similar total (the paper: "a similar distribution of sequence length").
  const auto lens = random_lens(8000, 4);
  const Partitioning part =
      make_partitioning(lens, 8, PartitionStrategy::kRoundRobinSorted);
  std::vector<double> mean_len(8, 0.0);
  for (std::size_t i = 0; i < lens.size(); ++i) {
    mean_len[part.assignment[i]] += static_cast<double>(lens[i]);
  }
  for (std::size_t p = 0; p < 8; ++p) {
    mean_len[p] /= static_cast<double>(part.counts[p]);
  }
  const auto [lo, hi] = std::minmax_element(mean_len.begin(), mean_len.end());
  EXPECT_LT((*hi - *lo) / *hi, 0.02);
}

TEST(Partition, RejectsBadInputs) {
  EXPECT_THROW(make_partitioning({10}, 0, PartitionStrategy::kGreedyLpt),
               Error);
  EXPECT_THROW(make_partitioning({}, 4, PartitionStrategy::kContiguous),
               Error);
}

TEST(Partition, StrategyNames) {
  EXPECT_STREQ(strategy_name(PartitionStrategy::kContiguous), "contiguous");
  EXPECT_STREQ(strategy_name(PartitionStrategy::kRoundRobinSorted),
               "round-robin-sorted");
  EXPECT_STREQ(strategy_name(PartitionStrategy::kGreedyLpt), "greedy-lpt");
}

TEST(Partition, ParseStrategyAcceptsShortAndLongSpellings) {
  EXPECT_EQ(parse_strategy("rr"), PartitionStrategy::kRoundRobinSorted);
  EXPECT_EQ(parse_strategy("round-robin-sorted"),
            PartitionStrategy::kRoundRobinSorted);
  EXPECT_EQ(parse_strategy("lpt"), PartitionStrategy::kGreedyLpt);
  EXPECT_EQ(parse_strategy("greedy-lpt"), PartitionStrategy::kGreedyLpt);
  EXPECT_EQ(parse_strategy("contig"), PartitionStrategy::kContiguous);
  EXPECT_EQ(parse_strategy("contiguous"), PartitionStrategy::kContiguous);
  try {
    parse_strategy("fastest");
    FAIL() << "unknown strategy spec accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInvalid);
    // The error must teach the accepted spellings.
    EXPECT_NE(std::string(e.what()).find("rr"), std::string::npos);
  }
}

// imbalance() with empty partitions: the exact semantics `--shards=N` with
// N > sequence count relies on (documented on Partitioning::imbalance).
class EmptyPartitionImbalance
    : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(EmptyPartitionImbalance, SurplusPartitionsYieldMaximalImbalance) {
  // 3 sequences into 5 partitions: at least two partitions are empty, so
  // min residues is 0 and (max - 0) / max == 1.0 under every strategy.
  const Partitioning part =
      make_partitioning({100, 200, 300}, 5, GetParam());
  ASSERT_EQ(part.chars.size(), 5u);
  ASSERT_EQ(part.counts.size(), 5u);
  std::size_t empty = 0;
  for (const std::size_t c : part.counts) {
    if (c == 0) ++empty;
  }
  EXPECT_GE(empty, 2u);
  EXPECT_DOUBLE_EQ(part.imbalance(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, EmptyPartitionImbalance,
    ::testing::Values(PartitionStrategy::kContiguous,
                      PartitionStrategy::kRoundRobinSorted,
                      PartitionStrategy::kGreedyLpt),
    [](const auto& info) {
      std::string n = strategy_name(info.param);
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Partition, AllEmptyImbalanceIsZeroNeverNaN) {
  // make_partitioning rejects empty inputs, but Partitioning is a plain
  // aggregate — a hand-built all-empty partitioning (what a sharded run
  // over zero live shards would summarize) must define imbalance as 0.0.
  Partitioning part;
  part.chars = {0.0, 0.0, 0.0};
  part.counts = {0, 0, 0};
  const double v = part.imbalance();
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(v, v);  // not NaN
}

}  // namespace
}  // namespace mublastp::cluster
