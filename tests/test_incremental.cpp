// Incremental-build battery (docs/INCREMENTAL.md): the MUGEN01 manifest
// format fails closed under truncation and bit rot; K appended generations
// search bit-identically (rendered report lines included) to a from-scratch
// rebuild of the same database; every build-path injection site leaves the
// database resolvable as one of the two adjacent generations with nothing
// in between; --compact collapses the chain to one canonical member and
// garbage-collects stale files only after its own publish succeeded.
//
// The scripted half of the kill-anywhere campaign — real SIGKILL instead of
// in-process injection — lives in scripts/kill_during_append.sh.
#include "index/generation.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/gen_chain.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index_io.hpp"
#include "report/report.hpp"
#include "stats/stats.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

namespace fs = std::filesystem;

class Incremental : public ::testing::Test {
 protected:
  void SetUp() override {
    fi::reset();
    // A private directory per test: generation resolution scans the base
    // path's directory, so sibling tests must not see each other's files.
    dir_ = ::testing::TempDir() + "/mublastp_gen_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    base_ = dir_ + "/db.mbi";
  }
  void TearDown() override {
    fi::reset();
    fs::remove_all(dir_);
  }

  /// Files currently next to the base path, by name, sorted.
  std::vector<std::string> dir_listing() const {
    std::vector<std::string> names;
    for (const auto& e : fs::directory_iterator(dir_)) {
      names.push_back(e.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  /// Searches the published chain at base_ (strict) and renders every
  /// query's tabular report — the full user-visible output.
  std::string chain_report(const SequenceStore& queries) const {
    const cluster::GenerationChain chain = cluster::GenerationChain::load(
        base_, {{}, {}, /*strict=*/true}, nullptr);
    const cluster::ChainSearchResult res =
        cluster::search_chain(chain, queries, 1);
    std::ostringstream os;
    for (SeqId q = 0; q < queries.size(); ++q) {
      write_tabular(os, queries.name(q), queries.sequence(q),
                    chain.global_db(), res.results[q], blosum62());
    }
    return os.str();
  }

  /// From-scratch reference: one index over `db`, searched and rendered the
  /// same way.
  static std::string rebuild_report(const SequenceStore& db,
                                    const SequenceStore& queries) {
    const DbIndex index = DbIndex::build(db, {});
    const MuBlastpEngine engine{DbIndexView(index)};
    const std::vector<QueryResult> results = engine.search_batch(queries, 1);
    std::ostringstream os;
    for (SeqId q = 0; q < queries.size(); ++q) {
      write_tabular(os, queries.name(q), queries.sequence(q), db, results[q],
                    blosum62());
    }
    return os.str();
  }

  std::string dir_;
  std::string base_;
};

/// Splits a synthetic database into `parts` disjoint batches (append
/// order), returning the batches; `combined[k]` is the concatenation of
/// batches 0..k.
std::vector<SequenceStore> split_batches(const SequenceStore& db,
                                         std::size_t parts) {
  std::vector<SequenceStore> out(parts);
  for (SeqId s = 0; s < db.size(); ++s) {
    out[s % parts].add(db.sequence(s), db.name(s));
  }
  // Re-pack so batches keep the original relative order inside themselves
  // (the modulo walk above already does) and none is empty.
  for (const SequenceStore& b : out) EXPECT_GT(b.size(), 0u);
  return out;
}

void concat_into(SequenceStore& into, const SequenceStore& from) {
  for (SeqId s = 0; s < from.size(); ++s) {
    into.add(from.sequence(s), from.name(s));
  }
}

// --- the differential append campaign --------------------------------------

TEST_F(Incremental, AppendedChainsMatchFromScratchRebuildPerGeneration) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(60000), 99);
  Rng rng(100);
  const SequenceStore queries = synth::sample_queries(db, 3, 80, rng);
  const std::vector<SequenceStore> batches = split_batches(db, 3);

  // Generation 0: the bare base file.
  save_db_index_file_durable(base_, DbIndex::build(batches[0], {}));
  SequenceStore combined;
  concat_into(combined, batches[0]);
  EXPECT_EQ(chain_report(queries), rebuild_report(combined, queries));

  // Generations 1..K: each append must stay bit-identical to a rebuild of
  // the combined database so far — rendered report lines included, which
  // pins E-value pricing over the combined residue count, not the member's.
  for (std::size_t k = 1; k < batches.size(); ++k) {
    const AppendResult appended = append_generation(base_, batches[k]);
    EXPECT_EQ(appended.generation, k);
    EXPECT_EQ(appended.chain_length, k + 1);
    concat_into(combined, batches[k]);

    const ResolvedGeneration res = resolve_generations(base_);
    ASSERT_TRUE(res.manifest.has_value());
    EXPECT_EQ(res.generation, k);
    EXPECT_EQ(res.member_paths.size(), k + 1);
    EXPECT_EQ(res.manifest->total_sequences, combined.size());
    EXPECT_EQ(res.manifest->total_residues, combined.total_residues());

    EXPECT_EQ(chain_report(queries), rebuild_report(combined, queries))
        << "generation " << k;
  }
}

TEST_F(Incremental, ChainSearchMatchesRebuildDownToEveryCounter) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(40000), 7);
  Rng rng(8);
  const SequenceStore queries = synth::sample_queries(db, 2, 64, rng);
  const std::vector<SequenceStore> batches = split_batches(db, 2);

  save_db_index_file_durable(base_, DbIndex::build(batches[0], {}));
  (void)append_generation(base_, batches[1]);

  SequenceStore combined;
  concat_into(combined, batches[0]);
  concat_into(combined, batches[1]);
  const DbIndex full = DbIndex::build(combined, {});
  const MuBlastpEngine engine{DbIndexView(full)};
  const std::vector<QueryResult> expect = engine.search_batch(queries, 1);

  const cluster::GenerationChain chain = cluster::GenerationChain::load(
      base_, {{}, {}, /*strict=*/true}, nullptr);
  EXPECT_EQ(chain.member_count(), 2u);
  EXPECT_EQ(chain.total_residues(), combined.total_residues());
  const cluster::ChainSearchResult got =
      cluster::search_chain(chain, queries, 1);
  ASSERT_EQ(got.results.size(), expect.size());
  for (SeqId q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(got.results[q].alignments.size(),
              expect[q].alignments.size());
    // Stage stats sum over a disjoint subject partition — every field must
    // equal the single-index run, not just the final ranking.
    EXPECT_TRUE(got.results[q].stats == expect[q].stats) << "query " << q;
    for (std::size_t i = 0; i < expect[q].alignments.size(); ++i) {
      EXPECT_EQ(got.results[q].alignments[i].subject,
                expect[q].alignments[i].subject);
      EXPECT_EQ(got.results[q].alignments[i].score,
                expect[q].alignments[i].score);
      EXPECT_EQ(got.results[q].alignments[i].ops,
                expect[q].alignments[i].ops);
    }
  }
}

// --- manifest fail-closed sweeps --------------------------------------------

TEST_F(Incremental, ManifestTruncationSweepFailsClosed) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(20000), 3);
  const std::vector<SequenceStore> batches = split_batches(db, 2);
  save_db_index_file_durable(base_, DbIndex::build(batches[0], {}));
  const AppendResult appended = append_generation(base_, batches[1]);

  std::string image;
  {
    std::ifstream in(appended.manifest_path, std::ios::binary);
    image.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(image.size(), 64u);

  // Every prefix-truncation must be kCorrupt — header, section table and
  // payload cuts alike. Resolution fails closed: a damaged NEWEST manifest
  // must never silently fall back to a stale generation.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{11}, std::size_t{63}, std::size_t{64},
        image.size() / 2, image.size() - 1}) {
    {
      std::ofstream out(appended.manifest_path,
                        std::ios::binary | std::ios::trunc);
      out.write(image.data(), static_cast<std::streamsize>(cut));
    }
    try {
      (void)resolve_generations(base_);
      ADD_FAILURE() << "truncation at " << cut << " bytes was accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kCorrupt) << "cut=" << cut;
    }
  }
}

TEST_F(Incremental, ManifestBitRotSweepFailsClosedNamingTheSection) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(20000), 4);
  const std::vector<SequenceStore> batches = split_batches(db, 2);
  save_db_index_file_durable(base_, DbIndex::build(batches[0], {}));
  const AppendResult appended = append_generation(base_, batches[1]);

  std::string image;
  {
    std::ifstream in(appended.manifest_path, std::ios::binary);
    image.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }

  // One flipped byte every 16 across the whole image: all damage is
  // detected (kCorrupt), and at least one payload flip names its section.
  bool named_section = false;
  for (std::size_t at = 0; at < image.size(); at += 16) {
    std::string rotten = image;
    rotten[at] = static_cast<char>(rotten[at] ^ 0x40);
    {
      std::ofstream out(appended.manifest_path,
                        std::ios::binary | std::ios::trunc);
      out.write(rotten.data(), static_cast<std::streamsize>(rotten.size()));
    }
    try {
      (void)resolve_generations(base_);
      ADD_FAILURE() << "bit rot at offset " << at << " was accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kCorrupt) << "offset " << at;
      if (std::string(e.what()).find("section '") != std::string::npos) {
        named_section = true;
      }
    }
  }
  EXPECT_TRUE(named_section)
      << "no corruption was localized to a named section";
}

TEST_F(Incremental, RottenChainMemberQuarantinesDegradedFailsClosedStrict) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(30000), 5);
  Rng rng(6);
  const SequenceStore queries = synth::sample_queries(db, 2, 64, rng);
  const std::vector<SequenceStore> batches = split_batches(db, 2);
  save_db_index_file_durable(base_, DbIndex::build(batches[0], {}));
  const AppendResult appended = append_generation(base_, batches[1]);

  // Rot the delta member's whole tail (not the manifest).
  {
    std::fstream f(appended.delta_path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-64, std::ios::end);
    const char junk[64] = {};
    f.write(junk, sizeof(junk));
  }

  // Strict: the whole-file CRC against the manifest names the member.
  try {
    (void)cluster::GenerationChain::load(base_, {{}, {}, /*strict=*/true},
                                         nullptr);
    ADD_FAILURE() << "rotten member was accepted strictly";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kCorrupt);
    EXPECT_NE(std::string(e.what()).find("chain member 1"),
              std::string::npos)
        << e.what();
  }

  // Degraded: the member (or its rotten blocks) is quarantined, the search
  // completes over the survivors and is marked partial.
  stats::DegradedStats degraded;
  const cluster::GenerationChain chain =
      cluster::GenerationChain::load(base_, {{}, {}, /*strict=*/false},
                                     &degraded);
  EXPECT_TRUE(degraded.partial);
  EXPECT_TRUE(!degraded.quarantined.empty() ||
              !degraded.quarantined_shards.empty());
  const cluster::ChainSearchResult res =
      cluster::search_chain(chain, queries, 1);
  EXPECT_EQ(res.results.size(), queries.size());
}

// --- the kill-anywhere invariant (in-process arm) ---------------------------

TEST_F(Incremental, EveryBuildSiteFailureLeavesAnAdjacentGeneration) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(40000), 21);
  Rng rng(22);
  const SequenceStore queries = synth::sample_queries(db, 2, 64, rng);
  const std::vector<SequenceStore> batches = split_batches(db, 2);

  save_db_index_file_durable(base_, DbIndex::build(batches[0], {}));
  const std::string before = chain_report(queries);

  SequenceStore combined;
  concat_into(combined, batches[0]);
  concat_into(combined, batches[1]);
  const std::string after = rebuild_report(combined, queries);

  // Arm each build site in turn (both rename evaluations for the publish
  // site). After the injected failure the database must resolve to the
  // PREVIOUS generation and search exactly as before; the retry (disarmed,
  // after orphan cleanup) must publish the NEXT generation exactly.
  for (const char* spec :
       {"build.block_write:1", "build.fsync:1", "build.fsync:2",
        "build.manifest_write:1", "build.publish_rename:1",
        "build.publish_rename:2", "build.gc_unlink:1"}) {
    SCOPED_TRACE(spec);
    fi::reset();
    fi::arm_from_spec(spec);
    bool fired = false;
    try {
      (void)append_generation(base_, batches[1]);
    } catch (const Error& e) {
      fired = true;
      EXPECT_EQ(e.kind(), ErrorKind::kIo) << e.what();
    }
    fi::reset();
    if (!fired) {
      // A site that this append never evaluates (e.g. gc_unlink with no
      // orphans) must at least be a clean success; undo it for the next arm.
      const ResolvedGeneration res = resolve_generations(base_);
      ASSERT_TRUE(res.manifest.has_value());
      fs::remove(res.manifest_path);
      fs::remove(res.member_paths.back());
      continue;
    }

    // The failed append is invisible: still the bare generation 0, same
    // report bytes. Orphan temps are allowed — and cleaned on retry.
    const ResolvedGeneration res = resolve_generations(base_);
    EXPECT_EQ(res.generation, 0u) << "partially published!";
    EXPECT_EQ(chain_report(queries), before);

    // Retry heals: orphans removed, generation 1 published, report equals
    // the from-scratch rebuild of the combined database.
    const AppendResult retry = append_generation(base_, batches[1]);
    EXPECT_EQ(retry.generation, 1u);
    EXPECT_EQ(chain_report(queries), after);

    // Roll back to the bare base for the next site.
    fs::remove(retry.delta_path);
    fs::remove(retry.manifest_path);
  }
}

// --- compact + GC -----------------------------------------------------------

TEST_F(Incremental, CompactCollapsesToOneCanonicalMemberAndGcs) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(45000), 31);
  Rng rng(32);
  const SequenceStore queries = synth::sample_queries(db, 2, 64, rng);
  const std::vector<SequenceStore> batches = split_batches(db, 3);

  save_db_index_file_durable(base_, DbIndex::build(batches[0], {}));
  (void)append_generation(base_, batches[1]);
  (void)append_generation(base_, batches[2]);
  const std::string before = chain_report(queries);

  const CompactResult compacted = compact_generations(base_);
  EXPECT_EQ(compacted.generation, 3u);

  // One canonical member, same totals, same report bytes.
  const ResolvedGeneration res = resolve_generations(base_);
  ASSERT_TRUE(res.manifest.has_value());
  EXPECT_EQ(res.generation, 3u);
  ASSERT_EQ(res.member_paths.size(), 1u);
  EXPECT_EQ(res.member_paths[0], compacted.compact_path);
  EXPECT_EQ(chain_report(queries), before);

  // GC: the old base, both deltas and both stale manifests are gone; only
  // the canonical member and its manifest remain.
  EXPECT_EQ(compacted.removed.size(), 5u);
  const std::vector<std::string> names = dir_listing();
  EXPECT_EQ(names, (std::vector<std::string>{"db.mbi.c000003",
                                             "db.mbi.gen000003"}));

  // The canonical member is a plain single index: loadable directly, with
  // the combined counts.
  const DbIndex canonical = load_db_index_file(compacted.compact_path);
  EXPECT_EQ(canonical.db().size(), db.size());
  EXPECT_EQ(canonical.db().total_residues(), db.total_residues());
}

TEST_F(Incremental, GcFailureAfterCompactLeavesValidNewGeneration) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(25000), 41);
  Rng rng(42);
  const SequenceStore queries = synth::sample_queries(db, 2, 64, rng);
  const std::vector<SequenceStore> batches = split_batches(db, 2);

  save_db_index_file_durable(base_, DbIndex::build(batches[0], {}));
  (void)append_generation(base_, batches[1]);
  const std::string before = chain_report(queries);

  // The new generation publishes BEFORE GC starts, so an unlink failure
  // mid-GC leaves extra (stale) files but a fully valid database.
  fi::arm("build.gc_unlink", 1);
  try {
    (void)compact_generations(base_);
    ADD_FAILURE() << "armed build.gc_unlink did not fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
  fi::reset();

  const ResolvedGeneration res = resolve_generations(base_);
  ASSERT_TRUE(res.manifest.has_value());
  EXPECT_EQ(res.generation, 2u);
  EXPECT_EQ(res.member_paths.size(), 1u);
  EXPECT_EQ(chain_report(queries), before);

  // A second compact finishes the GC (compacting the compacted chain).
  const CompactResult again = compact_generations(base_);
  EXPECT_EQ(again.generation, 3u);
  EXPECT_EQ(chain_report(queries), before);
}

// --- orphan temps -----------------------------------------------------------

TEST_F(Incremental, OrphanTempsAreDetectedAndCleaned) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(20000), 51);
  const std::vector<SequenceStore> batches = split_batches(db, 2);
  save_db_index_file_durable(base_, DbIndex::build(batches[0], {}));

  // Fake the debris of a crashed publish.
  for (const char* name : {"db.mbi.d000001.tmp", "db.mbi.gen000001.tmp"}) {
    std::ofstream(dir_ + "/" + name) << "leftover";
  }
  const ResolvedGeneration res = resolve_generations(base_);
  EXPECT_EQ(res.generation, 0u);  // temps never resolve
  EXPECT_EQ(res.orphan_temps.size(), 2u);

  // The next build operation removes them.
  const AppendResult appended = append_generation(base_, batches[1]);
  EXPECT_EQ(appended.orphans_removed, 2u);
  EXPECT_TRUE(resolve_generations(base_).orphan_temps.empty());
}

}  // namespace
}  // namespace mublastp
