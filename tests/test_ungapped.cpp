#include "core/ungapped.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "memsim/memsim.hpp"

namespace mublastp {
namespace {

std::vector<Residue> rand_seq(std::size_t len, Rng& rng) {
  std::vector<Residue> s(len);
  for (auto& r : s) r = static_cast<Residue>(rng.next_below(20));
  return s;
}

// Brute-force reference with the same semantics: sweep left from the word
// end (inclusive) and right from past the word, each with its own x-drop.
UngappedSeg reference_extend(std::span<const Residue> q,
                             std::span<const Residue> s, std::uint32_t qoff,
                             std::uint32_t soff, const ScoreMatrix& m,
                             Score xdrop) {
  std::int64_t qi = qoff + kWordLength - 1;
  std::int64_t si = soff + kWordLength - 1;
  Score run = 0, best_left = 0;
  std::int64_t best_start = qi + 1;
  while (qi >= 0 && si >= 0) {
    run += m(q[qi], s[si]);
    if (run > best_left) {
      best_left = run;
      best_start = qi;
    } else if (best_left - run > xdrop) {
      break;
    }
    --qi;
    --si;
  }
  std::int64_t qj = qoff + kWordLength, sj = soff + kWordLength;
  run = 0;
  Score best_right = 0;
  std::int64_t best_end = qj;
  while (qj < static_cast<std::int64_t>(q.size()) &&
         sj < static_cast<std::int64_t>(s.size())) {
    run += m(q[qj], s[sj]);
    if (run > best_right) {
      best_right = run;
      best_end = qj + 1;
    } else if (best_right - run > xdrop) {
      break;
    }
    ++qj;
    ++sj;
  }
  UngappedSeg seg;
  seg.score = best_left + best_right;
  seg.q_start = static_cast<std::uint32_t>(best_start);
  seg.q_end = static_cast<std::uint32_t>(best_end);
  seg.s_start = static_cast<std::uint32_t>(best_start + soff - qoff);
  seg.s_end = static_cast<std::uint32_t>(best_end + soff - qoff);
  return seg;
}

Score segment_score(std::span<const Residue> q, std::span<const Residue> s,
                    const UngappedSeg& seg) {
  Score total = 0;
  for (std::uint32_t i = 0; i < seg.q_end - seg.q_start; ++i) {
    total += blosum62()(q[seg.q_start + i], s[seg.s_start + i]);
  }
  return total;
}

TEST(UngappedExtend, PerfectMatchCoversWholeSequence) {
  const auto q = encode_sequence("MKVLAWHETRRIPGW");
  const auto s = q;
  const auto seg = ungapped_extend(q, s, 5, 5, blosum62(), 16);
  EXPECT_EQ(seg.q_start, 0u);
  EXPECT_EQ(seg.q_end, q.size());
  EXPECT_EQ(seg.s_start, 0u);
  EXPECT_EQ(seg.s_end, s.size());
  EXPECT_EQ(seg.score, segment_score(q, s, seg));
}

TEST(UngappedExtend, ScoreEqualsSegmentRescore) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto q = rand_seq(50 + rng.next_below(150), rng);
    const auto s = rand_seq(50 + rng.next_below(150), rng);
    const std::uint32_t qoff =
        static_cast<std::uint32_t>(rng.next_below(q.size() - kWordLength));
    const std::uint32_t soff =
        static_cast<std::uint32_t>(rng.next_below(s.size() - kWordLength));
    const auto seg = ungapped_extend(q, s, qoff, soff, blosum62(), 16);
    EXPECT_EQ(seg.score, segment_score(q, s, seg));
  }
}

TEST(UngappedExtend, MatchesReferenceImplementation) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const auto q = rand_seq(30 + rng.next_below(200), rng);
    const auto s = rand_seq(30 + rng.next_below(200), rng);
    const std::uint32_t qoff =
        static_cast<std::uint32_t>(rng.next_below(q.size() - kWordLength));
    const std::uint32_t soff =
        static_cast<std::uint32_t>(rng.next_below(s.size() - kWordLength));
    for (const Score xdrop : {Score{4}, Score{16}, Score{1000}}) {
      const auto got = ungapped_extend(q, s, qoff, soff, blosum62(), xdrop);
      const auto want = reference_extend(q, s, qoff, soff, blosum62(), xdrop);
      EXPECT_EQ(got.score, want.score);
      EXPECT_EQ(got.q_start, want.q_start);
      EXPECT_EQ(got.q_end, want.q_end);
      EXPECT_EQ(got.s_start, want.s_start);
      EXPECT_EQ(got.s_end, want.s_end);
    }
  }
}

TEST(UngappedExtend, SegmentContainsTheSeedWordWhenPositive) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const auto q = rand_seq(100, rng);
    auto s = rand_seq(100, rng);
    // Plant an exact word so the extension has a positive core.
    const std::uint32_t qoff = 40, soff = 50;
    for (int i = 0; i < kWordLength; ++i) s[soff + i] = q[qoff + i];
    const auto seg = ungapped_extend(q, s, qoff, soff, blosum62(), 16);
    EXPECT_LE(seg.q_start, qoff);
    EXPECT_GE(seg.q_end, qoff + kWordLength);
    EXPECT_GT(seg.score, 0);
  }
}

TEST(UngappedExtend, StaysOnDiagonal) {
  Rng rng(11);
  const auto q = rand_seq(120, rng);
  const auto s = rand_seq(150, rng);
  const auto seg = ungapped_extend(q, s, 10, 31, blosum62(), 16);
  EXPECT_EQ(seg.q_end - seg.q_start, seg.s_end - seg.s_start);
  EXPECT_EQ(static_cast<std::int64_t>(seg.s_start) - seg.q_start, 21);
}

TEST(UngappedExtend, HitAtSequenceEdges) {
  Rng rng(13);
  const auto q = rand_seq(40, rng);
  const auto s = rand_seq(40, rng);
  // Word at the very start and very end must not read out of bounds.
  const auto a = ungapped_extend(q, s, 0, 0, blosum62(), 16);
  EXPECT_LE(a.q_end, q.size());
  const auto b = ungapped_extend(
      q, s, static_cast<std::uint32_t>(q.size() - kWordLength),
      static_cast<std::uint32_t>(s.size() - kWordLength), blosum62(), 16);
  EXPECT_LE(b.q_end, q.size());
  EXPECT_LE(b.s_end, s.size());
}

TEST(UngappedExtend, LargerXdropNeverLowersScore) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const auto q = rand_seq(200, rng);
    const auto s = rand_seq(200, rng);
    const std::uint32_t qoff = 90, soff = 95;
    const auto tight = ungapped_extend(q, s, qoff, soff, blosum62(), 4);
    const auto loose = ungapped_extend(q, s, qoff, soff, blosum62(), 64);
    EXPECT_GE(loose.score, tight.score);
  }
}

TEST(UngappedExtend, XdropZeroStopsAtFirstNonImprovingPosition) {
  // xdrop == 0 is the tightest legal setting: any position that fails to
  // improve the running maximum ends the sweep. Must still match the
  // reference at every boundary.
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const auto q = rand_seq(30 + rng.next_below(100), rng);
    const auto s = rand_seq(30 + rng.next_below(100), rng);
    const std::uint32_t qoff =
        static_cast<std::uint32_t>(rng.next_below(q.size() - kWordLength));
    const std::uint32_t soff =
        static_cast<std::uint32_t>(rng.next_below(s.size() - kWordLength));
    const auto got = ungapped_extend(q, s, qoff, soff, blosum62(), 0);
    const auto want = reference_extend(q, s, qoff, soff, blosum62(), 0);
    EXPECT_EQ(got.score, want.score);
    EXPECT_EQ(got.q_start, want.q_start);
    EXPECT_EQ(got.q_end, want.q_end);
  }
}

TEST(UngappedExtend, WordExactlyFillsSequence) {
  // Sequences of exactly word length: both sweeps hit their boundaries
  // immediately (right sweep length zero, left sweep covers the word).
  const auto q = encode_sequence("MKV");
  ASSERT_EQ(q.size(), static_cast<std::size_t>(kWordLength));
  const auto seg = ungapped_extend(q, q, 0, 0, blosum62(), 16);
  EXPECT_EQ(seg.q_start, 0u);
  EXPECT_EQ(seg.q_end, q.size());
  EXPECT_EQ(seg.score, segment_score(q, q, seg));
}

TEST(UngappedExtend, AsymmetricEndsClampIndependently) {
  // Subject much shorter than query (and vice versa): each sweep's length
  // is the min remaining run of BOTH sequences; the segment must stay in
  // bounds on both.
  Rng rng(27);
  const auto q = rand_seq(200, rng);
  for (const std::size_t slen : {std::size_t{8}, std::size_t{20},
                                 std::size_t{500}}) {
    auto s = rand_seq(slen, rng);
    // Plant a word so the extension is nonempty.
    for (int i = 0; i < kWordLength; ++i) s[2 + i] = q[90 + i];
    const auto seg = ungapped_extend(q, s, 90, 2, blosum62(), 16);
    EXPECT_LE(seg.q_end, q.size());
    EXPECT_LE(seg.s_end, s.size());
    EXPECT_EQ(seg.score, segment_score(q, s, seg));
  }
}

TEST(UngappedExtend, FullFlushAgainstBothSequenceEnds) {
  // Identical sequences at every hit offset: sweeps must run to position 0
  // and to the final residue without over- or under-shooting.
  Rng rng(29);
  const auto q = rand_seq(64, rng);
  for (std::uint32_t off = 0; off + kWordLength <= q.size(); ++off) {
    const auto seg = ungapped_extend(q, q, off, off, blosum62(), 1000);
    EXPECT_EQ(seg.q_start, 0u);
    EXPECT_EQ(seg.q_end, q.size());
    EXPECT_EQ(seg.s_start, 0u);
    EXPECT_EQ(seg.s_end, q.size());
  }
}

TEST(UngappedExtend, TracedVariantProducesSameResultAndTraffic) {
  Rng rng(19);
  const auto q = rand_seq(300, rng);
  const auto s = rand_seq(300, rng);
  const auto plain = ungapped_extend(q, s, 100, 120, blosum62(), 16);
  memsim::MemoryHierarchy h;
  const auto traced = ungapped_extend(q, s, 100, 120, blosum62(), 16,
                                      memsim::TracingMemoryModel(h));
  EXPECT_EQ(plain.score, traced.score);
  EXPECT_EQ(plain.q_start, traced.q_start);
  EXPECT_EQ(plain.q_end, traced.q_end);
  EXPECT_GT(h.stats().references, 0u);
}

}  // namespace
}  // namespace mublastp
