// Cross-module property tests: invariants of the whole search system that
// must hold for any input, checked over parameterized random workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baseline/query_engine.hpp"
#include "common/rng.hpp"
#include "core/gapped.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "simd/dispatch.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

struct PropCase {
  std::uint64_t seed;
  std::size_t db_residues;
  std::size_t query_len;
};

class SearchProperties : public ::testing::TestWithParam<PropCase> {
 protected:
  void SetUp() override {
    const PropCase& c = GetParam();
    db_ = synth::generate_database(synth::sprot_like(c.db_residues), c.seed);
    Rng rng(c.seed * 31 + 7);
    queries_ = synth::sample_queries(db_, 2, c.query_len, rng);
    index_ = std::make_unique<DbIndex>(DbIndex::build(db_, config()));
  }

  static DbIndexConfig config() {
    DbIndexConfig cfg;
    cfg.block_bytes = 32 * 1024;
    return cfg;
  }

  SequenceStore db_;
  SequenceStore queries_;
  std::unique_ptr<DbIndex> index_;
};

TEST_P(SearchProperties, SearchIsDeterministic) {
  const MuBlastpEngine engine(*index_);
  const QueryResult a = engine.search(queries_.sequence(0));
  const QueryResult b = engine.search(queries_.sequence(0));
  EXPECT_EQ(a.ungapped, b.ungapped);
  EXPECT_EQ(a.stats.hits, b.stats.hits);
  ASSERT_EQ(a.alignments.size(), b.alignments.size());
  for (std::size_t i = 0; i < a.alignments.size(); ++i) {
    EXPECT_EQ(a.alignments[i].ops, b.alignments[i].ops);
  }
}

TEST_P(SearchProperties, DatabaseOrderDoesNotChangeResults) {
  // Shuffle the database; alignments must be identical up to the subject id
  // relabeling induced by the shuffle.
  std::vector<SeqId> perm(db_.size());
  std::iota(perm.begin(), perm.end(), SeqId{0});
  Rng rng(GetParam().seed + 99);
  std::shuffle(perm.begin(), perm.end(), rng);
  const SequenceStore shuffled = db_.permuted(perm);
  // new_id_of[old] : perm[new] = old.
  std::vector<SeqId> new_id_of(db_.size());
  for (SeqId n = 0; n < perm.size(); ++n) new_id_of[perm[n]] = n;

  const DbIndex shuffled_index = DbIndex::build(shuffled, config());
  const MuBlastpEngine base(*index_);
  const MuBlastpEngine other(shuffled_index);

  for (SeqId q = 0; q < queries_.size(); ++q) {
    QueryResult a = base.search(queries_.sequence(q));
    const QueryResult b = other.search(queries_.sequence(q));
    // Relabel and canonicalize A's stage-2 output into B's id space.
    for (UngappedAlignment& u : a.ungapped) u.subject = new_id_of[u.subject];
    auto au = a.ungapped;
    canonicalize_ungapped(au);
    EXPECT_EQ(au, b.ungapped);
    EXPECT_EQ(a.stats.hits, b.stats.hits);
    EXPECT_EQ(a.stats.hit_pairs, b.stats.hit_pairs);
    // Final alignments: same multiset of (score, coordinates, ops).
    ASSERT_EQ(a.alignments.size(), b.alignments.size());
    const auto key = [](const GappedAlignment& g) {
      return std::tuple(g.score, g.q_start, g.q_end, g.s_start, g.s_end,
                        g.ops);
    };
    std::vector<decltype(key(a.alignments[0]))> ka, kb;
    for (const auto& g : a.alignments) ka.push_back(key(g));
    for (const auto& g : b.alignments) kb.push_back(key(g));
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
    EXPECT_EQ(ka, kb);
  }
}

TEST_P(SearchProperties, LargerWindowFindsAtLeastAsManyPairs) {
  SearchParams narrow;
  narrow.two_hit_window = 20;
  SearchParams wide;
  wide.two_hit_window = 60;
  const MuBlastpEngine en(*index_, narrow);
  const MuBlastpEngine ew(*index_, wide);
  const QueryResult rn = en.search(queries_.sequence(0));
  const QueryResult rw = ew.search(queries_.sequence(0));
  EXPECT_EQ(rn.stats.hits, rw.stats.hits);
  EXPECT_LE(rn.stats.hit_pairs, rw.stats.hit_pairs);
}

TEST_P(SearchProperties, LowerUngappedCutoffNeverLosesSegments) {
  SearchParams strict;
  strict.ungapped_cutoff = 60;
  SearchParams loose;
  loose.ungapped_cutoff = 30;
  const MuBlastpEngine es(*index_, strict);
  const MuBlastpEngine el(*index_, loose);
  const QueryResult rs = es.search(queries_.sequence(0));
  const QueryResult rl = el.search(queries_.sequence(0));
  // Segments are found greedily per diagonal, so the strict set is not
  // always a subset — but the count can never exceed the loose count, and
  // every strict segment meets the loose cutoff trivially.
  EXPECT_LE(rs.ungapped.size(), rl.ungapped.size());
  for (const UngappedAlignment& u : rs.ungapped) {
    EXPECT_GE(u.score, strict.ungapped_cutoff);
  }
}

TEST_P(SearchProperties, HigherNeighborThresholdShrinksHits) {
  DbIndexConfig strict_cfg = config();
  strict_cfg.neighbor_threshold = 13;
  const DbIndex strict_index = DbIndex::build(db_, strict_cfg);
  const MuBlastpEngine loose(*index_);
  const MuBlastpEngine strict(strict_index);
  const QueryResult rl = loose.search(queries_.sequence(0));
  const QueryResult rs = strict.search(queries_.sequence(0));
  EXPECT_LT(rs.stats.hits, rl.stats.hits);
}

TEST_P(SearchProperties, AlignmentsAreWithinBounds) {
  const MuBlastpEngine engine(*index_);
  for (SeqId q = 0; q < queries_.size(); ++q) {
    const auto query = queries_.sequence(q);
    const QueryResult r = engine.search(query);
    for (const GappedAlignment& a : r.alignments) {
      EXPECT_LT(a.subject, db_.size());
      EXPECT_LT(a.q_start, a.q_end);
      EXPECT_LE(a.q_end, query.size());
      EXPECT_LT(a.s_start, a.s_end);
      EXPECT_LE(a.s_end, db_.length(a.subject));
      EXPECT_GE(a.score, 0);
      EXPECT_GE(a.evalue, 0.0);
    }
  }
}

TEST_P(SearchProperties, QueryEngineAgreesUnderDfaAndTable) {
  const QueryIndexedEngine table(db_);
  const QueryIndexedEngine dfa(db_, {}, kDefaultNeighborThreshold,
                               QueryIndexedEngine::Detector::kDfa);
  const QueryResult a = table.search(queries_.sequence(0));
  const QueryResult b = dfa.search(queries_.sequence(0));
  EXPECT_EQ(a.ungapped, b.ungapped);
}

TEST_P(SearchProperties, GappedScoreAtLeastUngappedSeed) {
  // A gapped extension seeded by an ungapped segment can only add to the
  // segment's score (the segment's own path is reachable from the anchor),
  // and the bound must hold identically on every kernel path.
  std::vector<simd::KernelPath> paths = {simd::KernelPath::kScalar};
  for (const simd::KernelPath p :
       {simd::KernelPath::kSse42, simd::KernelPath::kAvx2}) {
    if (simd::kernel_supported(p)) paths.push_back(p);
  }
  const MuBlastpEngine engine(*index_);
  const SearchParams& params = engine.params();
  for (SeqId q = 0; q < queries_.size(); ++q) {
    const auto query = queries_.sequence(q);
    const QueryResult r = engine.search(query);
    for (const UngappedAlignment& u : r.ungapped) {
      const auto subject = db_.sequence(u.subject);
      for (const simd::KernelPath path : paths) {
        const GappedAlignment g =
            gapped_align(query, subject, u, *params.matrix, params,
                         /*traceback=*/false, path);
        EXPECT_GE(g.score, u.score) << simd::kernel_name(path);
      }
    }
  }
}

TEST_P(SearchProperties, TracebackRescoresToStageThreeScore) {
  // Stage 4 re-runs the winning extension with traceback; re-scoring the
  // recorded transcript must reproduce the stage-3 score exactly — for
  // every kernel path (transcripts are untouched by kernel choice).
  std::vector<simd::KernelPath> paths = {simd::KernelPath::kScalar};
  for (const simd::KernelPath p :
       {simd::KernelPath::kSse42, simd::KernelPath::kAvx2}) {
    if (simd::kernel_supported(p)) paths.push_back(p);
  }
  for (const simd::KernelPath path : paths) {
    MuBlastpOptions opts;
    opts.kernel = path;
    const MuBlastpEngine engine(*index_, {}, opts);
    const SearchParams& params = engine.params();
    for (SeqId q = 0; q < queries_.size(); ++q) {
      const auto query = queries_.sequence(q);
      const QueryResult r = engine.search(query);
      for (const GappedAlignment& a : r.alignments) {
        ASSERT_FALSE(a.ops.empty());
        EXPECT_EQ(score_of_transcript(query, db_.sequence(a.subject), a,
                                      *params.matrix, params.gap_open,
                                      params.gap_extend),
                  a.score)
            << simd::kernel_name(path);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SearchProperties,
    ::testing::Values(PropCase{11, 50000, 64}, PropCase{22, 100000, 128},
                      PropCase{33, 80000, 200}),
    [](const ::testing::TestParamInfo<PropCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace mublastp
