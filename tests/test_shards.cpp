// Sharded-execution campaign (the differential proof of docs/SHARDING.md):
// for every (shard count, partition strategy, worker mode) cell the merged
// sharded output must be bit-identical to the unsharded engine — same
// alignments (scores, E-values, bit scores, tracebacks), same canonical
// ungapped lists, same summed counters, same rendered report lines. Plus
// the failure half: manifest corruption is rejected naming the damaged
// section, a killed shard worker quarantines only that shard, and strict
// mode fails closed with the documented error kinds.
#include "cluster/orchestrator.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/shard_manifest.hpp"
#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index_format.hpp"
#include "index/db_index_io.hpp"
#include "index/db_index_view.hpp"
#include "report/report.hpp"
#include "score/matrix.hpp"
#include "synth/synth.hpp"

namespace mublastp::cluster {
namespace {

SearchParams test_params() {
  SearchParams p;
  // Small enough that the global top-k truncation is actually exercised by
  // the merge (several shards must compete for the k slots).
  p.max_alignments = 10;
  return p;
}

DbIndexConfig test_config() {
  DbIndexConfig cfg;
  cfg.block_bytes = 64 * 1024;
  return cfg;
}

/// Shared corpus + unsharded reference results, built once.
class ShardCampaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new SequenceStore(
        synth::generate_database(synth::sprot_like(120000), 1234));
    Rng rng(56);
    queries_ = new SequenceStore(synth::sample_queries(*db_, 3, 128, rng));
    reference_ = new std::vector<QueryResult>();
    const DbIndex index = DbIndex::build(*db_, test_config());
    const MuBlastpEngine engine(index, test_params());
    *reference_ = engine.search_batch(*queries_, 2);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete queries_;
    delete reference_;
    db_ = nullptr;
    queries_ = nullptr;
    reference_ = nullptr;
  }
  void SetUp() override { fi::reset(); }
  void TearDown() override { fi::reset(); }

  static void expect_same_alignments(const std::vector<GappedAlignment>& a,
                                     const std::vector<GappedAlignment>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].subject, b[i].subject) << i;
      EXPECT_EQ(a[i].q_start, b[i].q_start) << i;
      EXPECT_EQ(a[i].q_end, b[i].q_end) << i;
      EXPECT_EQ(a[i].s_start, b[i].s_start) << i;
      EXPECT_EQ(a[i].s_end, b[i].s_end) << i;
      EXPECT_EQ(a[i].score, b[i].score) << i;
      // Bit-identical, not approximately equal: every shard prices its
      // statistics over the combined database size.
      EXPECT_EQ(a[i].bit_score, b[i].bit_score) << i;
      EXPECT_EQ(a[i].evalue, b[i].evalue) << i;
      EXPECT_EQ(a[i].ops, b[i].ops) << i;
    }
  }

  static void expect_same_results(const std::vector<QueryResult>& got,
                                  const std::vector<QueryResult>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t q = 0; q < got.size(); ++q) {
      SCOPED_TRACE("query " + std::to_string(q));
      expect_same_alignments(got[q].alignments, want[q].alignments);
      EXPECT_EQ(got[q].ungapped, want[q].ungapped);
      EXPECT_EQ(got[q].stats, want[q].stats);
    }
  }

  static SequenceStore* db_;
  static SequenceStore* queries_;
  static std::vector<QueryResult>* reference_;
};

SequenceStore* ShardCampaign::db_ = nullptr;
SequenceStore* ShardCampaign::queries_ = nullptr;
std::vector<QueryResult>* ShardCampaign::reference_ = nullptr;

// ---------------------------------------------------------------------------
// The equivalence matrix: N x strategy x worker mode
// ---------------------------------------------------------------------------

using Cell = std::tuple<int, PartitionStrategy, ShardWorkerMode>;

class ShardEquivalence : public ShardCampaign,
                         public ::testing::WithParamInterface<Cell> {};

TEST_P(ShardEquivalence, MergedOutputIsBitIdenticalToUnsharded) {
  const auto [n, strategy, mode] = GetParam();
  const ShardSet set = ShardSet::build_in_memory(
      *db_, n, strategy, test_config(), {test_params(), {}, false});
  EXPECT_EQ(set.shard_count(), static_cast<std::uint32_t>(n));
  EXPECT_EQ(set.total_residues(), db_->total_residues());

  const ShardedSearchResult res = search_sharded(set, *queries_, 2, mode);
  EXPECT_FALSE(res.degraded.any());
  expect_same_results(res.results, *reference_);

  // Telemetry sanity: one entry per shard, counters additive.
  ASSERT_EQ(res.shards.per_shard.size(), static_cast<std::size_t>(n));
  std::uint64_t shard_hits = 0;
  for (const auto& s : res.shards.per_shard) shard_hits += s.hits;
  std::uint64_t ref_hits = 0;
  for (const QueryResult& r : *reference_) ref_hits += r.stats.hits;
  EXPECT_EQ(shard_hits, ref_hits);

  // Rendered reports must match line for line: merged results carry global
  // ids resolved against the reconstructed global store.
  const DbIndex index = DbIndex::build(*db_, test_config());
  const DbIndexView view(index);
  for (SeqId q = 0; q < queries_->size(); ++q) {
    std::ostringstream sharded, unsharded;
    write_tabular(sharded, queries_->name(q), queries_->sequence(q),
                  set.global_db(), res.results[q], blosum62());
    write_tabular(unsharded, queries_->name(q), queries_->sequence(q), view,
                  (*reference_)[q], blosum62());
    EXPECT_EQ(sharded.str(), unsharded.str()) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardEquivalence,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 7),
        ::testing::Values(PartitionStrategy::kContiguous,
                          PartitionStrategy::kRoundRobinSorted,
                          PartitionStrategy::kGreedyLpt),
        ::testing::Values(ShardWorkerMode::kThread,
                          ShardWorkerMode::kProcess)),
    [](const auto& info) {
      std::string n = "N" + std::to_string(std::get<0>(info.param));
      n += std::string("_") + strategy_name(std::get<1>(info.param));
      n += std::string("_") + shard_mode_name(std::get<2>(info.param));
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------------
// More shards than sequences: surplus shards are empty and harmless
// ---------------------------------------------------------------------------

TEST_F(ShardCampaign, EmptyShardsAreHarmless) {
  SequenceStore tiny;
  Rng rng(9);
  for (int i = 0; i < 5; ++i) {
    std::vector<Residue> seq(80 + 10 * i);
    for (auto& r : seq) r = static_cast<Residue>(rng.next_below(20));
    tiny.add(seq, "tiny" + std::to_string(i));
  }
  const DbIndex index = DbIndex::build(tiny, test_config());
  const MuBlastpEngine engine(index, test_params());
  Rng qrng(10);
  const SequenceStore queries = synth::sample_queries(tiny, 2, 60, qrng);
  std::vector<QueryResult> want;
  for (SeqId q = 0; q < queries.size(); ++q) {
    want.push_back(engine.search(queries.sequence(q)));
  }

  const ShardSet set = ShardSet::build_in_memory(
      tiny, 7, PartitionStrategy::kRoundRobinSorted, test_config(),
      {test_params(), {}, false});
  std::uint32_t live = 0;
  for (std::uint32_t k = 0; k < set.shard_count(); ++k) {
    if (set.engine(k) != nullptr) ++live;
  }
  EXPECT_EQ(live, 5u);
  const ShardedSearchResult res =
      search_sharded(set, queries, 2, ShardWorkerMode::kThread);
  EXPECT_FALSE(res.degraded.any());
  expect_same_results(res.results, want);
}

// ---------------------------------------------------------------------------
// File-based round trip: save the shards + manifest, load, search
// ---------------------------------------------------------------------------

/// Writes a real on-disk shard layout (indexes + MUSHARD01 manifest) the
/// way mublastp_makedb --shards does; returns the manifest path.
std::string write_shard_layout(const SequenceStore& db, int n,
                               PartitionStrategy strategy,
                               const std::string& stem) {
  const std::string dir = ::testing::TempDir();
  const ShardSet set = ShardSet::build_in_memory(db, n, strategy,
                                                 test_config(),
                                                 {test_params(), {}, false});
  ShardManifest m;
  m.strategy = strategy;
  m.total_sequences = db.size();
  m.total_residues = db.total_residues();
  m.shards.resize(static_cast<std::size_t>(n));
  for (std::uint32_t k = 0; k < set.shard_count(); ++k) {
    ShardManifest::Shard& shard = m.shards[k];
    shard.to_global.assign(set.to_global(k).begin(), set.to_global(k).end());
    shard.num_sequences = shard.to_global.size();
    for (const SeqId g : shard.to_global) {
      shard.num_residues += db.length(g);
    }
    if (set.engine(k) == nullptr) continue;
    const std::string path =
        stem + ".shard" + std::to_string(k) + ".mbi";
    // Rebuild the shard index from the shard's slice (build_in_memory does
    // not expose its DbIndex; the build is deterministic, so this is the
    // same index).
    SequenceStore shard_db;
    for (const SeqId g : shard.to_global) {
      shard_db.add(db.sequence(g), db.name(g));
    }
    save_db_index_file(dir + "/" + path,
                       DbIndex::build(shard_db, test_config()));
    std::ifstream in(dir + "/" + path, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    shard.path = path;
    shard.index_crc32 = crc32(bytes.data(), bytes.size());
  }
  const std::string manifest_path = dir + "/" + stem + ".manifest";
  save_shard_manifest(manifest_path, m);
  return manifest_path;
}

TEST_F(ShardCampaign, FileRoundTripMatchesUnsharded) {
  const std::string manifest = write_shard_layout(
      *db_, 3, PartitionStrategy::kRoundRobinSorted, "roundtrip");
  stats::DegradedStats deg;
  const ShardSet set =
      ShardSet::load(manifest, {test_params(), {}, false}, &deg);
  EXPECT_FALSE(deg.any());
  EXPECT_EQ(set.shard_count(), 3u);
  EXPECT_EQ(set.total_sequences(), db_->size());
  EXPECT_EQ(set.strategy(), PartitionStrategy::kRoundRobinSorted);

  const ShardedSearchResult res =
      search_sharded(set, *queries_, 2, ShardWorkerMode::kThread);
  EXPECT_FALSE(res.degraded.any());
  expect_same_results(res.results, *reference_);

  // The reconstructed global store must mirror the original database.
  ASSERT_EQ(set.global_db().size(), db_->size());
  for (SeqId i = 0; i < db_->size(); ++i) {
    ASSERT_EQ(set.global_db().length(i), db_->length(i)) << i;
    EXPECT_EQ(set.global_db().name(i), db_->name(i)) << i;
  }
}

TEST_F(ShardCampaign, RottedShardIndexIsQuarantinedOrFailsClosed) {
  const std::string manifest = write_shard_layout(
      *db_, 3, PartitionStrategy::kRoundRobinSorted, "rotted");
  // Flip one byte of shard 1's index file.
  const ShardManifest m = load_shard_manifest(manifest);
  const std::string dir = manifest.substr(0, manifest.find_last_of('/'));
  const std::string victim = dir + "/" + m.shards[1].path;
  {
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4096);
    char c = 0;
    f.seekg(4096);
    f.get(c);
    c = static_cast<char>(c ^ 0xff);
    f.seekp(4096);
    f.put(c);
  }

  stats::DegradedStats deg;
  const ShardSet set =
      ShardSet::load(manifest, {test_params(), {}, false}, &deg);
  ASSERT_EQ(deg.quarantined_shards.size(), 1u);
  EXPECT_EQ(deg.quarantined_shards[0].shard, 1u);
  EXPECT_NE(deg.quarantined_shards[0].reason.find("checksum"),
            std::string::npos);
  EXPECT_TRUE(deg.partial);
  EXPECT_EQ(set.engine(1), nullptr);

  // Surviving shards still produce their subjects' exact results.
  const ShardedSearchResult res =
      search_sharded(set, *queries_, 2, ShardWorkerMode::kThread);
  for (std::size_t q = 0; q < res.results.size(); ++q) {
    for (const GappedAlignment& a : res.results[q].alignments) {
      bool in_shard1 = false;
      for (const SeqId g : set.to_global(1)) {
        if (g == a.subject) in_shard1 = true;
      }
      EXPECT_FALSE(in_shard1) << "alignment from a quarantined shard";
    }
  }

  // Strict mode fails closed with the corrupt kind.
  try {
    ShardSet::load(manifest, {test_params(), {}, true}, nullptr);
    FAIL() << "strict load of a rotted shard did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kCorrupt);
  }
}

// ---------------------------------------------------------------------------
// Worker failure: one killed shard, both modes
// ---------------------------------------------------------------------------

class ShardFailure : public ShardCampaign,
                     public ::testing::WithParamInterface<ShardWorkerMode> {};

TEST_P(ShardFailure, KilledWorkerIsQuarantinedAndRestComplete) {
  const ShardWorkerMode mode = GetParam();
  const ShardSet set = ShardSet::build_in_memory(
      *db_, 3, PartitionStrategy::kRoundRobinSorted, test_config(),
      {test_params(), {}, false});

  fi::arm("shard.worker", 2);  // shard index 1 (parent evaluates in order)
  const ShardedSearchResult res = search_sharded(set, *queries_, 2, mode);
  ASSERT_EQ(res.degraded.quarantined_shards.size(), 1u);
  EXPECT_EQ(res.degraded.quarantined_shards[0].shard, 1u);
  EXPECT_TRUE(res.degraded.partial);

  // Every merged alignment comes from a surviving shard, and the surviving
  // shards' subjects match the reference exactly.
  for (std::size_t q = 0; q < res.results.size(); ++q) {
    std::vector<GappedAlignment> expect;
    for (const GappedAlignment& a : (*reference_)[q].alignments) {
      bool survived = true;
      for (const SeqId g : set.to_global(1)) {
        if (g == a.subject) survived = false;
      }
      if (survived) expect.push_back(a);
    }
    // The reference's global top-k minus the dead shard is a subset of the
    // degraded run's top-k (the degraded run may promote alignments the
    // full top-k squeezed out, so compare as a subset, in order).
    std::size_t j = 0;
    for (const GappedAlignment& want : expect) {
      bool found = false;
      for (; j < res.results[q].alignments.size(); ++j) {
        const GappedAlignment& got = res.results[q].alignments[j];
        if (got.subject == want.subject && got.score == want.score &&
            got.q_start == want.q_start && got.s_start == want.s_start) {
          found = true;
          ++j;
          break;
        }
      }
      EXPECT_TRUE(found) << "missing surviving alignment, query " << q;
    }
  }
}

TEST_P(ShardFailure, StrictModeFailsClosedWithIoKind) {
  const ShardWorkerMode mode = GetParam();
  const ShardSet set = ShardSet::build_in_memory(
      *db_, 3, PartitionStrategy::kRoundRobinSorted, test_config(),
      {test_params(), {}, true});
  fi::arm("shard.worker", 1);
  try {
    search_sharded(set, *queries_, 2, mode);
    FAIL() << "strict sharded search with a dead worker did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_NE(std::string(e.what()).find("shard 0"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ShardFailure,
                         ::testing::Values(ShardWorkerMode::kThread,
                                           ShardWorkerMode::kProcess),
                         [](const auto& info) {
                           return std::string(shard_mode_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Manifest corruption: every section, truncation and bit rot
// ---------------------------------------------------------------------------

class ManifestCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    ShardManifest m;
    m.strategy = PartitionStrategy::kRoundRobinSorted;
    m.total_sequences = 5;
    m.total_residues = 500;
    m.shards.resize(3);
    m.shards[0].to_global = {0, 3};
    m.shards[0].num_sequences = 2;
    m.shards[0].num_residues = 200;
    m.shards[0].path = "a.shard0";
    m.shards[0].index_crc32 = 0x11111111;
    m.shards[1].to_global = {1, 2, 4};
    m.shards[1].num_sequences = 3;
    m.shards[1].num_residues = 300;
    m.shards[1].path = "a.shard1";
    m.shards[1].index_crc32 = 0x22222222;
    // shard 2 deliberately empty: no path, no sequences.
    path_ = ::testing::TempDir() + "/corrupt.manifest";
    save_shard_manifest(path_, m);
    std::ifstream in(path_, std::ios::binary);
    image_.assign((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  }

  static std::string parse_error(const std::string& bytes) {
    try {
      parse_shard_manifest({reinterpret_cast<const std::byte*>(bytes.data()),
                            bytes.size()});
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kCorrupt) << e.what();
      return e.what();
    }
    return {};
  }

  std::string path_;
  std::string image_;
};

TEST_F(ManifestCorruption, CleanImageRoundTrips) {
  const ShardManifest m = load_shard_manifest(path_);
  EXPECT_EQ(m.shard_count(), 3u);
  EXPECT_EQ(m.total_sequences, 5u);
  EXPECT_EQ(m.shards[1].to_global, (std::vector<SeqId>{1, 2, 4}));
  EXPECT_TRUE(m.shards[2].path.empty());
  EXPECT_DOUBLE_EQ(m.predicted_imbalance(), 1.0);  // empty shard present
}

TEST_F(ManifestCorruption, TruncationAtEveryBoundaryIsRejected) {
  // Cut the file at a sweep of prefixes covering: inside the header,
  // inside the section table, and inside every section payload. Every cut
  // must produce a typed kCorrupt error — never a crash, never success.
  for (std::size_t cut = 0; cut < image_.size();
       cut += 7) {  // step keeps the sweep fast but hits every region
    const std::string truncated = image_.substr(0, cut);
    const std::string what = parse_error(truncated);
    EXPECT_FALSE(what.empty()) << "truncation at " << cut << " accepted";
  }
}

TEST_F(ManifestCorruption, BitRotInEverySectionNamesTheSection) {
  // Recover the section table to know where each payload lives.
  const ShardManifest clean = load_shard_manifest(path_);  // sanity
  ShardManifestHeader header{};
  std::memcpy(&header, image_.data(), sizeof(header));
  std::vector<SectionRecord> table(header.section_count);
  std::memcpy(table.data(), image_.data() + sizeof(header),
              table.size() * sizeof(SectionRecord));
  for (const SectionRecord& rec : table) {
    if (rec.length == 0) continue;
    std::string rotted = image_;
    rotted[rec.offset] = static_cast<char>(rotted[rec.offset] ^ 0x01);
    const std::string what = parse_error(rotted);
    const std::string want(
        shard_section_name(static_cast<ShardSectionId>(rec.id)));
    EXPECT_NE(what.find(want), std::string::npos)
        << "section " << want << " rot reported as: " << what;
  }
  // Rot in the table itself is caught by the table CRC.
  std::string rotted = image_;
  rotted[sizeof(ShardManifestHeader)] ^= 0x01;
  EXPECT_NE(parse_error(rotted).find("section table"), std::string::npos);
}

TEST_F(ManifestCorruption, BadMagicVersionAndSizeAreRejected) {
  std::string bad = image_;
  bad[0] = 'X';
  EXPECT_NE(parse_error(bad).find("magic"), std::string::npos);

  // Version lives after the 12-byte magic; CRCs do not cover the header,
  // so this tests the version check directly.
  bad = image_;
  bad[12] = 9;
  EXPECT_NE(parse_error(bad).find("version"), std::string::npos);

  bad = image_ + std::string(8, '\0');  // grown file: header size mismatch
  EXPECT_NE(parse_error(bad).find("size mismatch"), std::string::npos);
}

TEST_F(ManifestCorruption, LoadSiteInjectionFailsWithIoKind) {
  fi::reset();
  fi::arm("shard.manifest", 1);
  try {
    load_shard_manifest(path_);
    FAIL() << "armed shard.manifest site did not fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
  fi::reset();
}

TEST_F(ManifestCorruption, WriterRejectsInconsistentManifests) {
  ShardManifest m;
  m.total_sequences = 2;
  m.total_residues = 100;
  m.shards.resize(1);
  m.shards[0].to_global = {0};  // one id, but num_sequences says 2
  m.shards[0].num_sequences = 2;
  m.shards[0].num_residues = 100;
  m.shards[0].path = "x";
  EXPECT_THROW(save_shard_manifest(path_ + ".bad", m), Error);
}

}  // namespace
}  // namespace mublastp::cluster
