// Degenerate-input robustness: the engines must handle pathological queries
// and databases gracefully (no crashes, sensible empty results).
#include <gtest/gtest.h>

#include "baseline/interleaved_engine.hpp"
#include "baseline/query_engine.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "stats/stats.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

class EdgeCases : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = synth::generate_database(synth::sprot_like(40000), 71);
    DbIndexConfig cfg;
    cfg.block_bytes = 16 * 1024;
    index_ = std::make_unique<DbIndex>(DbIndex::build(db_, cfg));
  }

  SequenceStore db_;
  std::unique_ptr<DbIndex> index_;
};

TEST_F(EdgeCases, AllAmbiguityQueryFindsNothing) {
  // A query of X residues: every word scores -3 < T=11, so no word has
  // neighbors and no hits can form.
  const std::vector<Residue> query(100, encode_residue('X'));
  const MuBlastpEngine mu(*index_);
  const QueryResult r = mu.search(query);
  EXPECT_EQ(r.stats.hits, 0u);
  EXPECT_TRUE(r.ungapped.empty());
  EXPECT_TRUE(r.alignments.empty());
  const QueryIndexedEngine ncbi(db_);
  const QueryResult r2 = ncbi.search(query);
  EXPECT_EQ(r2.stats.hits, 0u);
}

TEST_F(EdgeCases, MinimumLengthQueryWorks) {
  // Exactly one word: can never form a two-hit pair, so zero extensions —
  // but it must not crash and stats must be consistent.
  std::vector<Residue> query(kWordLength);
  Rng rng(72);
  for (auto& r : query) r = static_cast<Residue>(rng.next_below(20));
  const MuBlastpEngine mu(*index_);
  const QueryResult r = mu.search(query);
  EXPECT_EQ(r.stats.hit_pairs, 0u);
  EXPECT_TRUE(r.alignments.empty());
}

TEST_F(EdgeCases, QueryLongerThanEverySubject) {
  std::vector<Residue> query(6000);
  Rng rng(73);
  for (auto& r : query) r = static_cast<Residue>(rng.next_below(20));
  const MuBlastpEngine mu(*index_);
  const QueryResult r = mu.search(query);  // must not crash or overflow keys
  for (const GappedAlignment& a : r.alignments) {
    EXPECT_LE(a.s_end, db_.length(a.subject));
  }
}

TEST_F(EdgeCases, SingleSequenceDatabase) {
  SequenceStore tiny;
  Rng rng(74);
  std::vector<Residue> seq(150);
  for (auto& r : seq) r = static_cast<Residue>(rng.next_below(20));
  tiny.add(seq, "only");
  DbIndexConfig cfg;
  const DbIndex index = DbIndex::build(tiny, cfg);
  EXPECT_EQ(index.blocks().size(), 1u);
  const MuBlastpEngine mu(index);
  // Search the sequence against itself: must find the self-match.
  const QueryResult r = mu.search(seq);
  ASSERT_FALSE(r.alignments.empty());
  EXPECT_EQ(r.alignments.front().subject, 0u);
  EXPECT_EQ(r.alignments.front().q_start, 0u);
  EXPECT_EQ(r.alignments.front().q_end, seq.size());
}

TEST_F(EdgeCases, DatabaseOfWordLengthSequences) {
  // Sequences of exactly W residues: one word each, never a two-hit pair.
  SequenceStore tiny;
  Rng rng(75);
  for (int i = 0; i < 50; ++i) {
    std::vector<Residue> seq(kWordLength);
    for (auto& r : seq) r = static_cast<Residue>(rng.next_below(20));
    tiny.add(seq, "w" + std::to_string(i));
  }
  const DbIndex index = DbIndex::build(tiny, {});
  const MuBlastpEngine mu(index);
  std::vector<Residue> query(200);
  for (auto& r : query) r = static_cast<Residue>(rng.next_below(20));
  const QueryResult r = mu.search(query);
  EXPECT_EQ(r.stats.hit_pairs, 0u);  // no diagonal can hold two hits
  EXPECT_TRUE(r.alignments.empty());
}

TEST_F(EdgeCases, RepetitiveLowComplexityQuery) {
  // A homopolymer query hammers a single word's position list; the engines
  // must survive the hit explosion and still agree.
  const std::vector<Residue> query(300, encode_residue('A'));
  const MuBlastpEngine mu(*index_);
  const InterleavedDbEngine idb(*index_);
  const QueryResult a = mu.search(query);
  const QueryResult b = idb.search(query);
  EXPECT_EQ(a.ungapped, b.ungapped);
  EXPECT_EQ(a.stats.hits, b.stats.hits);
}

TEST_F(EdgeCases, EmptyDatabaseIsRejectedCleanly) {
  // Degenerate input must surface as a typed error, not a crash — both for
  // the index builder and for the engine that takes a raw store.
  const SequenceStore empty;
  EXPECT_THROW((void)DbIndex::build(empty, {}), Error);
  EXPECT_THROW(QueryIndexedEngine{empty}, Error);
}

TEST_F(EdgeCases, SingleResidueQueryThrowsCleanlyWithStats) {
  // One residue can't form a word; the guard must fire before any stats
  // hook runs, and the collector must stay usable afterwards.
  const std::vector<Residue> query(1, encode_residue('A'));
  const MuBlastpEngine mu(*index_);
  stats::PipelineStats ps;
  EXPECT_THROW((void)mu.search(query, ps), Error);
  const QueryIndexedEngine ncbi(db_);
  EXPECT_THROW((void)ncbi.search(query, ps), Error);
  // The collector is reset by the next begin_run: a real search still works.
  Rng rng(77);
  const SequenceStore good = synth::sample_queries(db_, 1, 64, rng);
  const QueryResult r = mu.search(good.sequence(0), ps);
  EXPECT_EQ(ps.snapshot().totals, stats::counters_of(r.stats));
}

TEST_F(EdgeCases, AllAmbiguityQueryWithStatsYieldsZeroRatioAndValidJson) {
  // All-X query: zero hits everywhere. The survival ratio must come back as
  // 0 (no divide by zero) and the snapshot must still serialize cleanly.
  const std::vector<Residue> query(100, encode_residue('X'));
  const MuBlastpEngine mu(*index_);
  stats::PipelineStats ps;
  const QueryResult r = mu.search(query, ps);
  EXPECT_TRUE(r.alignments.empty());
  const stats::PipelineSnapshot snap = ps.snapshot();
  EXPECT_EQ(snap.totals.hits, 0u);
  EXPECT_EQ(snap.survival_ratio(), 0.0);
  const std::string json = stats::to_json(snap);
  const stats::PipelineSnapshot back = stats::from_json(json);
  EXPECT_EQ(back.totals, snap.totals);
  EXPECT_EQ(back.survival_ratio(), 0.0);
}

TEST_F(EdgeCases, StopCodonResiduesAreSearchable) {
  // '*' residues score -4 against everything: a query containing a few of
  // them still aligns through its normal regions.
  Rng rng(76);
  const SequenceStore queries = synth::sample_queries(db_, 1, 120, rng);
  std::vector<Residue> query(queries.sequence(0).begin(),
                             queries.sequence(0).end());
  query[40] = encode_residue('*');
  query[80] = encode_residue('*');
  const MuBlastpEngine mu(*index_);
  const QueryResult r = mu.search(query);
  EXPECT_FALSE(r.alignments.empty());
}

}  // namespace
}  // namespace mublastp
