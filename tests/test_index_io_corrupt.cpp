// Fail-closed battery for index format v3: every way a file can rot —
// truncation at and inside every section, a flipped byte in every section,
// a clobbered header field — must surface as a mublastp::Error naming the
// offending part of the file. Never a crash, never a partial index. The
// battery drives BOTH loaders (the copy loader and MappedDbIndex) over the
// same corrupted bytes; the CI sanitizer job runs this under ASan/UBSan.
#include "index/db_index_io.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index_format.hpp"
#include "index/mapped_db_index.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

// One saved index, parsed section table and all, shared by every test.
class IndexIoCorrupt : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const SequenceStore db =
        synth::generate_database(synth::sprot_like(30000), 77);
    DbIndexConfig cfg;
    cfg.block_bytes = 8 * 1024;  // several blocks -> non-trivial sections
    index_ = new DbIndex(DbIndex::build(db, cfg));
    std::stringstream buf;
    save_db_index(buf, *index_);
    bytes_ = new std::string(buf.str());

    FileHeaderV3 header;
    std::memcpy(&header, bytes_->data(), sizeof(header));
    table_ = new std::vector<SectionRecord>(header.section_count);
    std::memcpy(table_->data(), bytes_->data() + sizeof(FileHeaderV3),
                header.section_count * sizeof(SectionRecord));
  }

  static void TearDownTestSuite() {
    delete index_;
    delete bytes_;
    delete table_;
    index_ = nullptr;
    bytes_ = nullptr;
    table_ = nullptr;
  }

  static const std::string& bytes() { return *bytes_; }
  static const std::vector<SectionRecord>& table() { return *table_; }

  // Writes `data` to a temp file and asserts that BOTH load paths (copy
  // loader and verified mmap) reject it with an Error mentioning
  // `expect_substr` (empty = any Error). Returns the messages for logging.
  static void expect_rejected(const std::string& data,
                              const std::string& expect_substr,
                              const std::string& context) {
    // Unique per process: ctest runs discovered tests as parallel
    // processes, and they must not clobber each other's case files.
    const std::string path = ::testing::TempDir() + "/mublastp_corrupt_" +
                             std::to_string(::getpid()) + ".mbi";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(data.data(), static_cast<std::streamsize>(data.size()));
    }
    check_throws([&] { (void)load_db_index_file(path); }, expect_substr,
                 context + " [copy loader]");
    check_throws([&] { MappedDbIndex mapped(path); }, expect_substr,
                 context + " [mmap loader]");
    // The stream entry point must agree with the file entry point.
    std::stringstream in(data);
    check_throws([&] { (void)load_db_index(in); }, expect_substr,
                 context + " [stream loader]");
    std::remove(path.c_str());
  }

  template <typename Fn>
  static void check_throws(Fn&& fn, const std::string& expect_substr,
                           const std::string& context) {
    try {
      fn();
      ADD_FAILURE() << context << ": corrupt input was accepted";
    } catch (const Error& e) {
      if (!expect_substr.empty()) {
        EXPECT_NE(std::string(e.what()).find(expect_substr),
                  std::string::npos)
            << context << ": error was \"" << e.what()
            << "\", expected it to mention \"" << expect_substr << "\"";
      }
    } catch (const std::exception& e) {
      ADD_FAILURE() << context << ": threw non-mublastp exception: "
                    << e.what();
    }
  }

  static DbIndex* index_;
  static std::string* bytes_;
  static std::vector<SectionRecord>* table_;
};

DbIndex* IndexIoCorrupt::index_ = nullptr;
std::string* IndexIoCorrupt::bytes_ = nullptr;
std::vector<SectionRecord>* IndexIoCorrupt::table_ = nullptr;

TEST_F(IndexIoCorrupt, SavedFileIsSane) {
  ASSERT_EQ(table().size(), 11u);
  FileHeaderV3 header;
  std::memcpy(&header, bytes().data(), sizeof(header));
  EXPECT_EQ(header.file_bytes, bytes().size());
  for (const SectionRecord& r : table()) {
    EXPECT_EQ(r.offset % kSectionAlign, 0u);
    EXPECT_LE(r.offset + r.length, bytes().size());
  }
}

TEST_F(IndexIoCorrupt, TruncationAtEverySectionBoundary) {
  // Cut exactly at the start of each section: everything after it is gone.
  for (const SectionRecord& r : table()) {
    const std::string name(section_name(static_cast<SectionId>(r.id)));
    expect_rejected(bytes().substr(0, r.offset), "truncated",
                    "cut at start of '" + name + "'");
  }
  // And cut just before the end of the file (last byte missing).
  expect_rejected(bytes().substr(0, bytes().size() - 1), "truncated",
                  "last byte missing");
}

TEST_F(IndexIoCorrupt, TruncationMidSection) {
  for (const SectionRecord& r : table()) {
    if (r.length < 2) continue;
    const std::string name(section_name(static_cast<SectionId>(r.id)));
    expect_rejected(bytes().substr(0, r.offset + r.length / 2), "truncated",
                    "cut inside '" + name + "'");
  }
}

TEST_F(IndexIoCorrupt, TruncationInsideHeaderAndTable) {
  for (const std::size_t cut : {0ul, 3ul, 7ul, 15ul, sizeof(FileHeaderV3) - 1,
                                sizeof(FileHeaderV3) + 5}) {
    expect_rejected(bytes().substr(0, cut), "",
                    "cut at byte " + std::to_string(cut));
  }
}

TEST_F(IndexIoCorrupt, ByteFlipInEverySectionNamesTheSection) {
  for (const SectionRecord& r : table()) {
    if (r.length == 0) continue;  // nothing to flip (and padding is not CRCd)
    const std::string name(section_name(static_cast<SectionId>(r.id)));
    for (const std::uint64_t at :
         {r.offset, r.offset + r.length / 2, r.offset + r.length - 1}) {
      std::string mutated = bytes();
      mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
      expect_rejected(mutated, "index section '" + name + "'",
                      "flip at +" + std::to_string(at - r.offset) + " in '" +
                          name + "'");
    }
  }
}

TEST_F(IndexIoCorrupt, CorruptMagic) {
  std::string mutated = bytes();
  mutated[0] = 'X';
  expect_rejected(mutated, "bad magic", "magic[0]");
}

TEST_F(IndexIoCorrupt, CorruptVersion) {
  std::string mutated = bytes();
  mutated[4] = 99;
  expect_rejected(mutated, "unsupported index format version", "version=99");
}

TEST_F(IndexIoCorrupt, CorruptDeclaredFileSize) {
  std::string mutated = bytes();
  mutated[16] = static_cast<char>(mutated[16] ^ 0x01);  // file_bytes LSB
  expect_rejected(mutated, "truncated index file", "file_bytes flipped");
}

TEST_F(IndexIoCorrupt, CorruptTableChecksum) {
  std::string mutated = bytes();
  mutated[12] = static_cast<char>(mutated[12] ^ 0x01);  // table_crc32 LSB
  expect_rejected(mutated, "section table checksum mismatch",
                  "table_crc32 flipped");
}

TEST_F(IndexIoCorrupt, CorruptSectionRecord) {
  // Any damage to the table itself (here: the first record's stored CRC) is
  // caught by the table checksum before the record is trusted.
  std::string mutated = bytes();
  const std::size_t crc_field =
      sizeof(FileHeaderV3) + offsetof(SectionRecord, crc32);
  mutated[crc_field] = static_cast<char>(mutated[crc_field] ^ 0x01);
  expect_rejected(mutated, "section table checksum mismatch",
                  "section record crc flipped");
}

TEST_F(IndexIoCorrupt, ImplausibleSectionCount) {
  std::string mutated = bytes();
  std::uint32_t huge = 0xFFFF;
  std::memcpy(mutated.data() + 8, &huge, sizeof(huge));  // section_count
  expect_rejected(mutated, "", "section_count=0xFFFF");
}

TEST_F(IndexIoCorrupt, EmptyFile) {
  const std::string path = ::testing::TempDir() + "/mublastp_empty.mbi";
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  check_throws([&] { (void)load_db_index_file(path); }, "empty index file",
               "zero-byte file [copy loader]");
  check_throws([&] { MappedDbIndex mapped(path); }, "", "zero-byte [mmap]");
  std::remove(path.c_str());
}

TEST_F(IndexIoCorrupt, DirectoryPath) {
  const std::string dir = ::testing::TempDir() + "/mublastp_dir.mbi";
  std::filesystem::create_directory(dir);
  check_throws([&] { (void)load_db_index_file(dir); }, "directory",
               "directory path [copy loader]");
  check_throws([&] { MappedDbIndex mapped(dir); }, "", "directory [mmap]");
  std::filesystem::remove(dir);
}

TEST_F(IndexIoCorrupt, MissingFile) {
  check_throws(
      [&] { (void)load_db_index_file("/nonexistent/db.mbi"); },
      "cannot open index file", "missing file [copy loader]");
  check_throws([&] { MappedDbIndex mapped("/nonexistent/db.mbi"); }, "",
               "missing file [mmap]");
}

TEST_F(IndexIoCorrupt, MmapRejectsV2Files) {
  std::stringstream v2;
  save_db_index_v2(v2, *index_);
  const std::string path = ::testing::TempDir() + "/mublastp_v2_reject.mbi";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::string data = v2.str();
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  // The copy loader accepts it; the zero-copy loader must refuse cleanly.
  EXPECT_NO_THROW((void)load_db_index_file(path));
  check_throws([&] { MappedDbIndex mapped(path); }, "", "v2 via mmap");
  std::remove(path.c_str());
}

TEST_F(IndexIoCorrupt, DescribeRejectsCorruptHeaders) {
  const std::string path = ::testing::TempDir() + "/mublastp_describe.mbi";
  const auto write = [&](const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };
  std::string mutated = bytes();
  mutated[0] = 'X';
  write(mutated);
  check_throws([&] { (void)describe_db_index_file(path); }, "bad magic",
               "describe: magic");
  mutated = bytes();
  mutated[12] = static_cast<char>(mutated[12] ^ 0x01);
  write(mutated);
  check_throws([&] { (void)describe_db_index_file(path); },
               "section table checksum mismatch", "describe: table crc");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Degraded mode: block-local damage quarantines that block; the rest of the
// index stays searchable and produces exactly the surviving blocks' hits.

class IndexIoDegraded : public IndexIoCorrupt {
 protected:
  static const SectionRecord& section(SectionId id) {
    for (const SectionRecord& r : table()) {
      if (r.id == static_cast<std::uint32_t>(id)) return r;
    }
    throw std::runtime_error("section not in table");
  }

  static std::vector<BlockMetaRecord> block_meta() {
    const SectionRecord& r = section(SectionId::kBlockMeta);
    std::vector<BlockMetaRecord> meta(r.length / sizeof(BlockMetaRecord));
    std::memcpy(meta.data(), bytes().data() + r.offset, r.length);
    return meta;
  }

  // File offset of a byte in the middle of block `b`'s slice of kEntries.
  static std::size_t entries_byte_of_block(std::size_t b) {
    const std::vector<BlockMetaRecord> meta = block_meta();
    std::uint64_t before = 0;
    for (std::size_t i = 0; i < b; ++i) before += meta[i].num_entries;
    EXPECT_GT(meta[b].num_entries, 0u);
    return section(SectionId::kEntries).offset +
           (before + meta[b].num_entries / 2) * sizeof(std::uint32_t);
  }

  // Loads `data` tolerantly through the copy loader; fills `quarantined`.
  static DbIndex load_degraded(const std::string& data,
                               std::vector<BlockQuarantine>& quarantined) {
    std::stringstream in(data);
    IndexLoadOptions options;
    options.tolerate_block_corruption = true;
    options.quarantined = &quarantined;
    return load_db_index(in, options);
  }
};

TEST_F(IndexIoDegraded, SingleBlockCorruptionIsQuarantined) {
  ASSERT_GE(index_->blocks().size(), 3u) << "fixture must be multi-block";
  const std::size_t bad = 1;
  std::string mutated = bytes();
  const std::size_t at = entries_byte_of_block(bad);
  mutated[at] = static_cast<char>(mutated[at] ^ 0x40);

  std::vector<BlockQuarantine> quarantined;
  const DbIndex degraded = load_degraded(mutated, quarantined);
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].block, bad);
  EXPECT_NE(quarantined[0].reason.find("entries"), std::string::npos)
      << quarantined[0].reason;
  // Same block count; the quarantined one serves as an empty block.
  EXPECT_EQ(degraded.blocks().size(), index_->blocks().size());
  EXPECT_TRUE(degraded.blocks()[bad].fragments().empty());
  EXPECT_FALSE(degraded.blocks()[bad + 1].fragments().empty());

  // The mmap loader must agree byte-for-byte on the quarantine decision.
  const std::string path = ::testing::TempDir() + "/mublastp_degraded.mbi";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
  }
  MappedDbIndexOptions mopts;
  mopts.tolerate_block_corruption = true;
  const MappedDbIndex mapped(path, mopts);
  ASSERT_EQ(mapped.quarantined().size(), 1u);
  EXPECT_EQ(mapped.quarantined()[0].block, bad);
  EXPECT_TRUE(DbIndexView(mapped).blocks()[bad].fragments().empty());
  std::remove(path.c_str());
}

// The acceptance scenario: a multi-block index with one corrupted block
// still returns exactly the hits of the surviving blocks.
TEST_F(IndexIoDegraded, SurvivingBlocksProduceExactlyTheirHits) {
  ASSERT_GE(index_->blocks().size(), 3u);
  const std::size_t bad = 1;

  // Subjects (original ids) with any fragment in the corrupted block. With
  // short synthetic sequences every subject lives in exactly one block, so
  // "drop these subjects from the full results" is the exact ground truth;
  // the assertion below pins that assumption.
  std::set<SeqId> bad_subjects;
  std::map<SeqId, std::set<std::size_t>> blocks_of;
  for (std::size_t b = 0; b < index_->blocks().size(); ++b) {
    for (const FragmentRef& f : index_->blocks()[b].fragments()) {
      const SeqId orig = index_->original_id(f.seq);
      blocks_of[orig].insert(b);
      if (b == bad) bad_subjects.insert(orig);
    }
  }
  for (const auto& [seq, bs] : blocks_of) {
    ASSERT_EQ(bs.size(), 1u) << "subject " << seq << " spans blocks";
  }

  // Queries are actual database subjects — one living in the block about to
  // be corrupted, one from a surviving block — so the corrupted block is
  // guaranteed to contribute hits that degradation must then drop.
  SequenceStore queries;
  const FragmentRef& in_bad = index_->blocks()[bad].fragments().front();
  const FragmentRef& in_good = index_->blocks()[0].fragments().front();
  queries.add(index_->db().sequence(in_bad.seq), "from-corrupted-block");
  queries.add(index_->db().sequence(in_good.seq), "from-surviving-block");
  SearchParams params;
  params.max_alignments = 1000;  // keep culling out of the comparison

  const MuBlastpEngine full_engine(DbIndexView(*index_), params);
  const std::vector<QueryResult> full = full_engine.search_batch(queries, 2);

  std::string mutated = bytes();
  const std::size_t at = entries_byte_of_block(bad);
  mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
  std::vector<BlockQuarantine> quarantined;
  const DbIndex degraded_index = load_degraded(mutated, quarantined);
  ASSERT_EQ(quarantined.size(), 1u);
  const MuBlastpEngine degraded_engine(DbIndexView(degraded_index), params);
  const std::vector<QueryResult> degraded =
      degraded_engine.search_batch(queries, 2);

  bool any_dropped = false;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::vector<UngappedAlignment> expect;
    for (const UngappedAlignment& u : full[q].ungapped) {
      if (bad_subjects.count(u.subject) == 0) expect.push_back(u);
      else any_dropped = true;
    }
    EXPECT_EQ(degraded[q].ungapped, expect) << "query " << q;

    // Final alignments: same filter; per-subject stage-3/4 processing means
    // surviving subjects' alignments (scores, E-values) are unchanged.
    std::vector<const GappedAlignment*> expect_al;
    for (const GappedAlignment& a : full[q].alignments) {
      if (bad_subjects.count(a.subject) == 0) expect_al.push_back(&a);
    }
    ASSERT_EQ(degraded[q].alignments.size(), expect_al.size())
        << "query " << q;
    for (std::size_t i = 0; i < expect_al.size(); ++i) {
      const GappedAlignment& got = degraded[q].alignments[i];
      const GappedAlignment& want = *expect_al[i];
      EXPECT_EQ(got.subject, want.subject);
      EXPECT_EQ(got.score, want.score);
      EXPECT_EQ(got.q_start, want.q_start);
      EXPECT_EQ(got.s_start, want.s_start);
      EXPECT_EQ(got.evalue, want.evalue);
      EXPECT_EQ(got.ops, want.ops);
    }
  }
  // The battery is vacuous if no query ever hit the corrupted block.
  EXPECT_TRUE(any_dropped) << "no hits in the corrupted block; fixture too"
                              " small to exercise degradation";
}

TEST_F(IndexIoDegraded, EveryBlockCorruptIsFatalEvenWhenTolerant) {
  std::string mutated = bytes();
  for (std::size_t b = 0; b < index_->blocks().size(); ++b) {
    const std::size_t at = entries_byte_of_block(b);
    mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
  }
  std::vector<BlockQuarantine> quarantined;
  check_throws([&] { (void)load_degraded(mutated, quarantined); },
               "every block", "all blocks corrupt [tolerant]");
}

TEST_F(IndexIoDegraded, NonBlockSectionDamageIsFatalEvenWhenTolerant) {
  // Arena damage cannot be attributed to one block: fail closed.
  const SectionRecord& arena = section(SectionId::kArena);
  std::string mutated = bytes();
  const std::size_t at = arena.offset + arena.length / 2;
  mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
  std::vector<BlockQuarantine> quarantined;
  check_throws([&] { (void)load_degraded(mutated, quarantined); }, "arena",
               "arena corrupt [tolerant]");
  EXPECT_TRUE(quarantined.empty());
}

TEST_F(IndexIoDegraded, PreBlockCrcFilesAreNotQuarantinable) {
  // Rewrite the file as an old writer would have: zero every block_crc32,
  // refresh the blockmeta section CRC and the table CRC so the file is
  // valid, then rot one entries byte. Tolerant load must fail closed: the
  // damage is real but cannot be localized to a block.
  std::string mutated = bytes();
  const SectionRecord meta_sec = section(SectionId::kBlockMeta);
  std::vector<BlockMetaRecord> meta = block_meta();
  for (BlockMetaRecord& m : meta) m.block_crc32 = 0;
  std::memcpy(mutated.data() + meta_sec.offset, meta.data(),
              meta.size() * sizeof(BlockMetaRecord));

  FileHeaderV3 header;
  std::memcpy(&header, mutated.data(), sizeof(header));
  std::vector<SectionRecord> tab(header.section_count);
  std::memcpy(tab.data(), mutated.data() + sizeof(header),
              tab.size() * sizeof(SectionRecord));
  for (SectionRecord& r : tab) {
    if (r.id == static_cast<std::uint32_t>(SectionId::kBlockMeta)) {
      r.crc32 = crc32(mutated.data() + r.offset, r.length);
    }
  }
  std::memcpy(mutated.data() + sizeof(header), tab.data(),
              tab.size() * sizeof(SectionRecord));
  header.table_crc32 = crc32(mutated.data() + sizeof(header),
                             tab.size() * sizeof(SectionRecord));
  std::memcpy(mutated.data(), &header, sizeof(header));

  // Sanity: the rewrite itself still loads strictly.
  {
    std::stringstream in(mutated);
    EXPECT_NO_THROW((void)load_db_index(in));
  }
  const std::size_t at = entries_byte_of_block(1);
  mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
  std::vector<BlockQuarantine> quarantined;
  check_throws([&] { (void)load_degraded(mutated, quarantined); },
               "per-block checksums", "pre-block-CRC file [tolerant]");
}

}  // namespace
}  // namespace mublastp
