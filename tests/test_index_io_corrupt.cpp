// Fail-closed battery for index format v3: every way a file can rot —
// truncation at and inside every section, a flipped byte in every section,
// a clobbered header field — must surface as a mublastp::Error naming the
// offending part of the file. Never a crash, never a partial index. The
// battery drives BOTH loaders (the copy loader and MappedDbIndex) over the
// same corrupted bytes; the CI sanitizer job runs this under ASan/UBSan.
#include "index/db_index_io.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "index/db_index_format.hpp"
#include "index/mapped_db_index.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

// One saved index, parsed section table and all, shared by every test.
class IndexIoCorrupt : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const SequenceStore db =
        synth::generate_database(synth::sprot_like(30000), 77);
    DbIndexConfig cfg;
    cfg.block_bytes = 8 * 1024;  // several blocks -> non-trivial sections
    index_ = new DbIndex(DbIndex::build(db, cfg));
    std::stringstream buf;
    save_db_index(buf, *index_);
    bytes_ = new std::string(buf.str());

    FileHeaderV3 header;
    std::memcpy(&header, bytes_->data(), sizeof(header));
    table_ = new std::vector<SectionRecord>(header.section_count);
    std::memcpy(table_->data(), bytes_->data() + sizeof(FileHeaderV3),
                header.section_count * sizeof(SectionRecord));
  }

  static void TearDownTestSuite() {
    delete index_;
    delete bytes_;
    delete table_;
    index_ = nullptr;
    bytes_ = nullptr;
    table_ = nullptr;
  }

  static const std::string& bytes() { return *bytes_; }
  static const std::vector<SectionRecord>& table() { return *table_; }

  // Writes `data` to a temp file and asserts that BOTH load paths (copy
  // loader and verified mmap) reject it with an Error mentioning
  // `expect_substr` (empty = any Error). Returns the messages for logging.
  static void expect_rejected(const std::string& data,
                              const std::string& expect_substr,
                              const std::string& context) {
    const std::string path =
        ::testing::TempDir() + "/mublastp_corrupt_case.mbi";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(data.data(), static_cast<std::streamsize>(data.size()));
    }
    check_throws([&] { (void)load_db_index_file(path); }, expect_substr,
                 context + " [copy loader]");
    check_throws([&] { MappedDbIndex mapped(path); }, expect_substr,
                 context + " [mmap loader]");
    // The stream entry point must agree with the file entry point.
    std::stringstream in(data);
    check_throws([&] { (void)load_db_index(in); }, expect_substr,
                 context + " [stream loader]");
    std::remove(path.c_str());
  }

  template <typename Fn>
  static void check_throws(Fn&& fn, const std::string& expect_substr,
                           const std::string& context) {
    try {
      fn();
      ADD_FAILURE() << context << ": corrupt input was accepted";
    } catch (const Error& e) {
      if (!expect_substr.empty()) {
        EXPECT_NE(std::string(e.what()).find(expect_substr),
                  std::string::npos)
            << context << ": error was \"" << e.what()
            << "\", expected it to mention \"" << expect_substr << "\"";
      }
    } catch (const std::exception& e) {
      ADD_FAILURE() << context << ": threw non-mublastp exception: "
                    << e.what();
    }
  }

  static DbIndex* index_;
  static std::string* bytes_;
  static std::vector<SectionRecord>* table_;
};

DbIndex* IndexIoCorrupt::index_ = nullptr;
std::string* IndexIoCorrupt::bytes_ = nullptr;
std::vector<SectionRecord>* IndexIoCorrupt::table_ = nullptr;

TEST_F(IndexIoCorrupt, SavedFileIsSane) {
  ASSERT_EQ(table().size(), 11u);
  FileHeaderV3 header;
  std::memcpy(&header, bytes().data(), sizeof(header));
  EXPECT_EQ(header.file_bytes, bytes().size());
  for (const SectionRecord& r : table()) {
    EXPECT_EQ(r.offset % kSectionAlign, 0u);
    EXPECT_LE(r.offset + r.length, bytes().size());
  }
}

TEST_F(IndexIoCorrupt, TruncationAtEverySectionBoundary) {
  // Cut exactly at the start of each section: everything after it is gone.
  for (const SectionRecord& r : table()) {
    const std::string name(section_name(static_cast<SectionId>(r.id)));
    expect_rejected(bytes().substr(0, r.offset), "truncated",
                    "cut at start of '" + name + "'");
  }
  // And cut just before the end of the file (last byte missing).
  expect_rejected(bytes().substr(0, bytes().size() - 1), "truncated",
                  "last byte missing");
}

TEST_F(IndexIoCorrupt, TruncationMidSection) {
  for (const SectionRecord& r : table()) {
    if (r.length < 2) continue;
    const std::string name(section_name(static_cast<SectionId>(r.id)));
    expect_rejected(bytes().substr(0, r.offset + r.length / 2), "truncated",
                    "cut inside '" + name + "'");
  }
}

TEST_F(IndexIoCorrupt, TruncationInsideHeaderAndTable) {
  for (const std::size_t cut : {0ul, 3ul, 7ul, 15ul, sizeof(FileHeaderV3) - 1,
                                sizeof(FileHeaderV3) + 5}) {
    expect_rejected(bytes().substr(0, cut), "",
                    "cut at byte " + std::to_string(cut));
  }
}

TEST_F(IndexIoCorrupt, ByteFlipInEverySectionNamesTheSection) {
  for (const SectionRecord& r : table()) {
    if (r.length == 0) continue;  // nothing to flip (and padding is not CRCd)
    const std::string name(section_name(static_cast<SectionId>(r.id)));
    for (const std::uint64_t at :
         {r.offset, r.offset + r.length / 2, r.offset + r.length - 1}) {
      std::string mutated = bytes();
      mutated[at] = static_cast<char>(mutated[at] ^ 0x40);
      expect_rejected(mutated, "index section '" + name + "'",
                      "flip at +" + std::to_string(at - r.offset) + " in '" +
                          name + "'");
    }
  }
}

TEST_F(IndexIoCorrupt, CorruptMagic) {
  std::string mutated = bytes();
  mutated[0] = 'X';
  expect_rejected(mutated, "bad magic", "magic[0]");
}

TEST_F(IndexIoCorrupt, CorruptVersion) {
  std::string mutated = bytes();
  mutated[4] = 99;
  expect_rejected(mutated, "unsupported index format version", "version=99");
}

TEST_F(IndexIoCorrupt, CorruptDeclaredFileSize) {
  std::string mutated = bytes();
  mutated[16] = static_cast<char>(mutated[16] ^ 0x01);  // file_bytes LSB
  expect_rejected(mutated, "truncated index file", "file_bytes flipped");
}

TEST_F(IndexIoCorrupt, CorruptTableChecksum) {
  std::string mutated = bytes();
  mutated[12] = static_cast<char>(mutated[12] ^ 0x01);  // table_crc32 LSB
  expect_rejected(mutated, "section table checksum mismatch",
                  "table_crc32 flipped");
}

TEST_F(IndexIoCorrupt, CorruptSectionRecord) {
  // Any damage to the table itself (here: the first record's stored CRC) is
  // caught by the table checksum before the record is trusted.
  std::string mutated = bytes();
  const std::size_t crc_field =
      sizeof(FileHeaderV3) + offsetof(SectionRecord, crc32);
  mutated[crc_field] = static_cast<char>(mutated[crc_field] ^ 0x01);
  expect_rejected(mutated, "section table checksum mismatch",
                  "section record crc flipped");
}

TEST_F(IndexIoCorrupt, ImplausibleSectionCount) {
  std::string mutated = bytes();
  std::uint32_t huge = 0xFFFF;
  std::memcpy(mutated.data() + 8, &huge, sizeof(huge));  // section_count
  expect_rejected(mutated, "", "section_count=0xFFFF");
}

TEST_F(IndexIoCorrupt, EmptyFile) {
  const std::string path = ::testing::TempDir() + "/mublastp_empty.mbi";
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  check_throws([&] { (void)load_db_index_file(path); }, "empty index file",
               "zero-byte file [copy loader]");
  check_throws([&] { MappedDbIndex mapped(path); }, "", "zero-byte [mmap]");
  std::remove(path.c_str());
}

TEST_F(IndexIoCorrupt, DirectoryPath) {
  const std::string dir = ::testing::TempDir() + "/mublastp_dir.mbi";
  std::filesystem::create_directory(dir);
  check_throws([&] { (void)load_db_index_file(dir); }, "directory",
               "directory path [copy loader]");
  check_throws([&] { MappedDbIndex mapped(dir); }, "", "directory [mmap]");
  std::filesystem::remove(dir);
}

TEST_F(IndexIoCorrupt, MissingFile) {
  check_throws(
      [&] { (void)load_db_index_file("/nonexistent/db.mbi"); },
      "cannot open index file", "missing file [copy loader]");
  check_throws([&] { MappedDbIndex mapped("/nonexistent/db.mbi"); }, "",
               "missing file [mmap]");
}

TEST_F(IndexIoCorrupt, MmapRejectsV2Files) {
  std::stringstream v2;
  save_db_index_v2(v2, *index_);
  const std::string path = ::testing::TempDir() + "/mublastp_v2_reject.mbi";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::string data = v2.str();
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  // The copy loader accepts it; the zero-copy loader must refuse cleanly.
  EXPECT_NO_THROW((void)load_db_index_file(path));
  check_throws([&] { MappedDbIndex mapped(path); }, "", "v2 via mmap");
  std::remove(path.c_str());
}

TEST_F(IndexIoCorrupt, DescribeRejectsCorruptHeaders) {
  const std::string path = ::testing::TempDir() + "/mublastp_describe.mbi";
  const auto write = [&](const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };
  std::string mutated = bytes();
  mutated[0] = 'X';
  write(mutated);
  check_throws([&] { (void)describe_db_index_file(path); }, "bad magic",
               "describe: magic");
  mutated = bytes();
  mutated[12] = static_cast<char>(mutated[12] ^ 0x01);
  write(mutated);
  check_throws([&] { (void)describe_db_index_file(path); },
               "section table checksum mismatch", "describe: table crc");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mublastp
