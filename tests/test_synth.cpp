#include "synth/synth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "score/karlin.hpp"

namespace mublastp::synth {
namespace {

TEST(Synth, DeterministicForSeed) {
  const DatabaseSpec spec = sprot_like(50000);
  const SequenceStore a = generate_database(spec, 7);
  const SequenceStore b = generate_database(spec, 7);
  ASSERT_EQ(a.size(), b.size());
  for (SeqId i = 0; i < a.size(); ++i) {
    const auto sa = a.sequence(i);
    const auto sb = b.sequence(i);
    ASSERT_EQ(sa.size(), sb.size());
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()));
  }
}

TEST(Synth, DifferentSeedsDiffer) {
  const DatabaseSpec spec = sprot_like(50000);
  const SequenceStore a = generate_database(spec, 1);
  const SequenceStore b = generate_database(spec, 2);
  bool same = a.size() == b.size();
  if (same) {
    same = a.total_residues() == b.total_residues();
  }
  EXPECT_FALSE(same);
}

TEST(Synth, ReachesTargetResidues) {
  const DatabaseSpec spec = envnr_like(200000);
  const SequenceStore db = generate_database(spec, 3);
  EXPECT_GE(db.total_residues(), spec.target_residues);
  EXPECT_LT(db.total_residues(),
            spec.target_residues + spec.max_length * 70);
}

TEST(Synth, LengthsRespectTruncation) {
  DatabaseSpec spec = sprot_like(100000);
  spec.min_length = 50;
  spec.max_length = 1200;
  const SequenceStore db = generate_database(spec, 5);
  for (SeqId i = 0; i < db.size(); ++i) {
    EXPECT_GE(db.length(i), spec.min_length);
    // Children of planted families can gain a few indel insertions.
    EXPECT_LE(db.length(i), spec.max_length + 64);
  }
}

TEST(Synth, MedianLengthNearSpec) {
  const DatabaseSpec spec = sprot_like(1 << 21);
  const SequenceStore db = generate_database(spec, 11);
  std::vector<std::size_t> lens;
  for (SeqId i = 0; i < db.size(); ++i) lens.push_back(db.length(i));
  std::sort(lens.begin(), lens.end());
  const double median = static_cast<double>(lens[lens.size() / 2]);
  EXPECT_NEAR(median, spec.median_length, spec.median_length * 0.15);
}

TEST(Synth, MeanLengthNearSpec) {
  const DatabaseSpec spec = envnr_like(1 << 21);
  const SequenceStore db = generate_database(spec, 13);
  const double mean = static_cast<double>(db.total_residues()) /
                      static_cast<double>(db.size());
  EXPECT_NEAR(mean, spec.mean_length, spec.mean_length * 0.15);
}

TEST(Synth, EnvNrSequencesAreShorterThanSprot) {
  const SequenceStore sprot = generate_database(sprot_like(1 << 20), 17);
  const SequenceStore envnr = generate_database(envnr_like(1 << 20), 17);
  const double sprot_mean = static_cast<double>(sprot.total_residues()) /
                            static_cast<double>(sprot.size());
  const double envnr_mean = static_cast<double>(envnr.total_residues()) /
                            static_cast<double>(envnr.size());
  EXPECT_GT(sprot_mean, envnr_mean);
}

TEST(Synth, PlantsFamilies) {
  const SequenceStore db = generate_database(sprot_like(1 << 20), 19);
  std::size_t family_members = 0;
  for (SeqId i = 0; i < db.size(); ++i) {
    if (db.name(i).starts_with("fam")) ++family_members;
  }
  EXPECT_GT(family_members, db.size() / 10);
  EXPECT_LT(family_members, db.size());
}

TEST(Synth, CompositionRoughlyRobinson) {
  const SequenceStore db = generate_database(sprot_like(1 << 21), 23);
  std::array<std::size_t, kAlphabetSize> counts{};
  for (const Residue r : db.arena()) ++counts[r];
  const auto& want = robinson_frequencies();
  const double total = static_cast<double>(db.total_residues());
  for (int i = 0; i < 20; ++i) {
    const double got = static_cast<double>(counts[i]) / total;
    EXPECT_NEAR(got, want[i], want[i] * 0.25 + 0.002)
        << "residue " << decode_residue(static_cast<Residue>(i));
  }
  // No ambiguity codes in synthetic data.
  for (int i = 20; i < kAlphabetSize; ++i) EXPECT_EQ(counts[i], 0u);
}

TEST(Synth, RejectsBadSpec) {
  DatabaseSpec spec = sprot_like(1000);
  spec.mean_length = spec.median_length - 1;
  EXPECT_THROW(generate_database(spec, 1), Error);
}

TEST(SampleQueries, FixedLengthWindows) {
  const SequenceStore db = generate_database(sprot_like(1 << 19), 29);
  Rng rng(5);
  const SequenceStore q = sample_queries(db, 16, 128, rng);
  ASSERT_EQ(q.size(), 16u);
  for (SeqId i = 0; i < q.size(); ++i) EXPECT_EQ(q.length(i), 128u);
}

TEST(SampleQueries, WindowsComeFromDatabase) {
  const SequenceStore db = generate_database(sprot_like(1 << 18), 31);
  Rng rng(6);
  const SequenceStore q = sample_queries(db, 4, 64, rng);
  for (SeqId i = 0; i < q.size(); ++i) {
    // Each query window must appear verbatim in some database sequence.
    bool found = false;
    const auto probe = q.sequence(i);
    for (SeqId s = 0; s < db.size() && !found; ++s) {
      const auto seq = db.sequence(s);
      if (seq.size() < probe.size()) continue;
      found = std::search(seq.begin(), seq.end(), probe.begin(),
                          probe.end()) != seq.end();
    }
    EXPECT_TRUE(found) << "query " << i;
  }
}

TEST(SampleQueries, ThrowsWhenNoSequenceLongEnough) {
  SequenceStore db;
  db.add_ascii("ARNDCQ");
  Rng rng(7);
  EXPECT_THROW(sample_queries(db, 1, 100, rng), Error);
}

TEST(SampleQueriesMixed, FollowsDatabaseLengths) {
  const SequenceStore db = generate_database(envnr_like(1 << 20), 37);
  Rng rng(8);
  const SequenceStore q = sample_queries_mixed(db, 200, rng);
  ASSERT_EQ(q.size(), 200u);
  const double db_mean = static_cast<double>(db.total_residues()) /
                         static_cast<double>(db.size());
  const double q_mean = static_cast<double>(q.total_residues()) /
                        static_cast<double>(q.size());
  EXPECT_NEAR(q_mean, db_mean, db_mean * 0.30);
}

TEST(LengthHistogram, CountsAndOverflow) {
  SequenceStore db;
  db.add_ascii(std::string(10, 'A'));
  db.add_ascii(std::string(20, 'A'));
  db.add_ascii(std::string(30, 'A'));
  db.add_ascii(std::string(100, 'A'));
  const auto h = length_histogram(db, {15, 25, 50});
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 1u);  // <= 15
  EXPECT_EQ(h[1], 1u);  // (15, 25]
  EXPECT_EQ(h[2], 1u);  // (25, 50]
  EXPECT_EQ(h[3], 1u);  // > 50
}

}  // namespace
}  // namespace mublastp::synth
