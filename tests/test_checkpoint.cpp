// Checkpoint-journal battery: replay, torn-tail truncation, fingerprint
// binding and the checkpoint.write injection site. The journal's contract
// is what makes kill-and-resume bit-identical (the CI job proves the
// end-to-end property; these tests pin the file-format mechanics).
#include "common/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "common/faultinject.hpp"

namespace mublastp {
namespace {

class Checkpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    fi::reset();
    // Unique per test: ctest runs discovered tests in parallel, so a
    // shared journal path would let concurrent tests clobber each other.
    path_ = ::testing::TempDir() + "/mublastp_checkpoint_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ckpt";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    fi::reset();
    std::remove(path_.c_str());
  }

  std::uint64_t file_size() const {
    return std::filesystem::file_size(path_);
  }

  void append_raw(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

constexpr std::uint32_t kFp = 0xC0FFEE42;
constexpr std::uint64_t kHeader = 16;
constexpr std::uint64_t kRecord = 24;

TEST_F(Checkpoint, FreshJournalIsEmptyAndDurable) {
  CheckpointJournal journal(path_, kFp);
  EXPECT_EQ(journal.num_completed(), 0u);
  EXPECT_EQ(journal.resume_offset(), 0u);
  EXPECT_FALSE(journal.completed(0));
  EXPECT_EQ(file_size(), kHeader);
}

TEST_F(Checkpoint, AppendThenReplay) {
  {
    CheckpointJournal journal(path_, kFp);
    journal.append(0, 100);
    journal.append(1, 250);
    journal.append(2, 260);
    EXPECT_TRUE(journal.completed(1));
    EXPECT_EQ(journal.resume_offset(), 260u);
  }
  CheckpointJournal replay(path_, kFp);
  EXPECT_EQ(replay.num_completed(), 3u);
  EXPECT_TRUE(replay.completed(0));
  EXPECT_TRUE(replay.completed(2));
  EXPECT_FALSE(replay.completed(3));
  EXPECT_EQ(replay.resume_offset(), 260u);
  // Resumes appending where it left off.
  replay.append(3, 400);
  EXPECT_EQ(replay.resume_offset(), 400u);
}

TEST_F(Checkpoint, TornTailIsTruncatedOnReplay) {
  {
    CheckpointJournal journal(path_, kFp);
    journal.append(0, 100);
    journal.append(1, 200);
  }
  // A kill -9 mid-append leaves a short record: replay must drop it.
  append_raw(std::string(11, '\x5A'));
  ASSERT_EQ(file_size(), kHeader + 2 * kRecord + 11);
  CheckpointJournal replay(path_, kFp);
  EXPECT_EQ(replay.num_completed(), 2u);
  EXPECT_EQ(replay.resume_offset(), 200u);
  EXPECT_EQ(file_size(), kHeader + 2 * kRecord);
}

TEST_F(Checkpoint, GarbageFullRecordTailIsDroppedByCrc) {
  {
    CheckpointJournal journal(path_, kFp);
    journal.append(0, 100);
  }
  // A full-size but CRC-invalid record (power loss scrambling the tail).
  append_raw(std::string(kRecord, '\x5A'));
  CheckpointJournal replay(path_, kFp);
  EXPECT_EQ(replay.num_completed(), 1u);
  EXPECT_EQ(replay.resume_offset(), 100u);
  EXPECT_EQ(file_size(), kHeader + kRecord);
  // And valid records AFTER garbage are also discarded: the journal is a
  // prefix log, not a scavenger.
  replay.append(1, 180);
  EXPECT_EQ(replay.num_completed(), 2u);
}

TEST_F(Checkpoint, CorruptedMidRecordCutsTheLogThere) {
  {
    CheckpointJournal journal(path_, kFp);
    journal.append(0, 100);
    journal.append(1, 200);
    journal.append(2, 300);
  }
  {
    // Flip a byte inside record 1: replay keeps only record 0.
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(kHeader + kRecord + 3));
    const char x = '\x7F';
    f.write(&x, 1);
  }
  CheckpointJournal replay(path_, kFp);
  EXPECT_EQ(replay.num_completed(), 1u);
  EXPECT_TRUE(replay.completed(0));
  EXPECT_FALSE(replay.completed(2));
  EXPECT_EQ(replay.resume_offset(), 100u);
}

TEST_F(Checkpoint, FingerprintMismatchIsRejected) {
  { CheckpointJournal journal(path_, kFp); }
  try {
    CheckpointJournal other(path_, kFp + 1);
    ADD_FAILURE() << "fingerprint mismatch was accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("different run configuration"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(Checkpoint, NonCheckpointFileIsCorrupt) {
  append_raw("this is not a checkpoint journal, it is prose");
  try {
    CheckpointJournal journal(path_, kFp);
    ADD_FAILURE() << "garbage header was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kCorrupt);
  }
}

TEST_F(Checkpoint, DirectoryPathIsIo) {
  const std::string dir = ::testing::TempDir() + "/mublastp_ckpt_dir";
  std::filesystem::create_directory(dir);
  try {
    CheckpointJournal journal(dir, kFp);
    ADD_FAILURE() << "directory path was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
  std::filesystem::remove(dir);
}

// Site "checkpoint.write": the Nth append fails kIo; the record is NOT
// journaled (so the batch will be re-searched after resume — safe), and the
// journal stays usable for subsequent appends.
TEST_F(Checkpoint, InjectedWriteFailureLosesOnlyThatRecord) {
  CheckpointJournal journal(path_, kFp);
  journal.append(0, 100);
  fi::arm("checkpoint.write", 1);
  try {
    journal.append(1, 200);
    ADD_FAILURE() << "armed checkpoint.write did not fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
  }
  EXPECT_FALSE(journal.completed(1));
  EXPECT_EQ(journal.resume_offset(), 100u);
  journal.append(1, 200);  // disarmed: works again
  EXPECT_TRUE(journal.completed(1));
  EXPECT_EQ(journal.resume_offset(), 200u);
}

// Site "checkpoint.dirsync": a fresh journal is only durable once its NAME
// is — the parent-directory fsync after creation. An injected failure there
// is kIo, and a clean retry produces a valid empty journal.
TEST_F(Checkpoint, InjectedDirsyncFailureIsIoAndRetryable) {
  fi::arm("checkpoint.dirsync", 1);
  try {
    CheckpointJournal journal(path_, kFp);
    ADD_FAILURE() << "armed checkpoint.dirsync did not fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kIo);
    EXPECT_NE(std::string(e.what()).find("checkpoint.dirsync"),
              std::string::npos)
        << e.what();
  }
  // Retry from scratch: the half-created file (header already written and
  // fsynced) replays as a valid empty journal.
  CheckpointJournal retry(path_, kFp);
  EXPECT_EQ(retry.num_completed(), 0u);
  EXPECT_EQ(retry.resume_offset(), 0u);
}

}  // namespace
}  // namespace mublastp
