// Differential-fuzz campaign for the banded tiered int8/int16 gapped
// x-drop kernel: every vector path must match the scalar DP exactly — on
// score, on extension lengths, on anchor coordinates — across randomized
// (query, subject, matrix, gap-params, xdrop) cases spanning the length
// classes where band bookkeeping is most fragile (empty, single-residue,
// band-width +/- 1, long homologous). Plus targeted saturation-boundary
// cases straddling the int8 ceiling, proving the int16 re-run fires and is
// tallied, and engine-level tests of the tier counters.
//
// Vector paths only run where the CPU supports them; the fuzz suite skips
// (reduced coverage, still green) on scalar-only hosts.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/gapped.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "score/matrix.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

std::vector<simd::KernelPath> vector_paths() {
  std::vector<simd::KernelPath> paths;
  for (const simd::KernelPath p :
       {simd::KernelPath::kSse42, simd::KernelPath::kAvx2}) {
    if (simd::kernel_supported(p)) paths.push_back(p);
  }
  return paths;
}

std::vector<Residue> rand_seq(std::size_t len, Rng& rng) {
  std::vector<Residue> s(len);
  for (auto& r : s) r = static_cast<Residue>(rng.next_below(20));
  return s;
}

// A homolog of `a`: point mutations at ~10% of positions plus a few
// single-residue indels — long extensions that keep the band alive.
std::vector<Residue> mutate(const std::vector<Residue>& a, Rng& rng) {
  std::vector<Residue> b;
  b.reserve(a.size() + 4);
  for (const Residue r : a) {
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 10) {
      b.push_back(static_cast<Residue>(rng.next_below(20)));  // substitute
    } else if (roll < 12) {
      // deletion: skip
    } else if (roll < 14) {
      b.push_back(r);
      b.push_back(static_cast<Residue>(rng.next_below(20)));  // insertion
    } else {
      b.push_back(r);
    }
  }
  return b;
}

// Length classes: empty, single residue, the adaptive band's natural width
// +/- 1 (where the row [lo, hi] bookkeeping clips against the sequence
// end), and long.
std::size_t pick_len(Score gap_extend, Score xdrop, Rng& rng) {
  const std::size_t bw =
      static_cast<std::size_t>(xdrop / std::max<Score>(gap_extend, 1)) + 1;
  switch (rng.next_below(8)) {
    case 0:
      return 0;
    case 1:
      return 1;
    case 2:
      return bw > 0 ? bw - 1 : 0;
    case 3:
      return bw;
    case 4:
      return bw + 1;
    default:
      return 50 + rng.next_below(351);  // 50..400
  }
}

struct FuzzCase {
  const ScoreMatrix* matrix;
  Score gap_open;
  Score gap_extend;
  Score xdrop;
  std::vector<Residue> a;
  std::vector<Residue> b;
};

FuzzCase make_case(Rng& rng) {
  static const ScoreMatrix* const kMatrices[] = {&blosum62(), &blosum50(),
                                                 &blosum80(), &pam250()};
  static constexpr std::pair<Score, Score> kGaps[] = {
      {11, 1}, {7, 2}, {0, 3}, {32, 1}};
  static constexpr Score kXdrops[] = {0, 1, 5, 16, 38, 100};
  FuzzCase c;
  c.matrix = kMatrices[rng.next_below(4)];
  const auto [go, ge] = kGaps[rng.next_below(4)];
  c.gap_open = go;
  c.gap_extend = ge;
  c.xdrop = kXdrops[rng.next_below(6)];
  c.a = rand_seq(pick_len(ge, c.xdrop, rng), rng);
  // A third of the cases are homologous pairs: only those keep the band
  // alive long enough to stress row-to-row band movement and revival.
  if (rng.next_below(3) == 0 && !c.a.empty()) {
    c.b = mutate(c.a, rng);
  } else {
    c.b = rand_seq(pick_len(ge, c.xdrop, rng), rng);
  }
  return c;
}

// ---- The campaign: >= 10k (path, case) differential comparisons ----------

TEST(GappedSimdFuzz, ExtensionMatchesScalarEverywhere) {
  const auto paths = vector_paths();
  if (paths.empty()) GTEST_SKIP() << "no vector kernel on this CPU";
  const std::size_t per_path = 10000 / paths.size() + 1;
  std::uint64_t compared = 0;
  for (const simd::KernelPath path : paths) {
    // Same seed per path: every path sees the identical case stream, so a
    // path-specific divergence is attributable by case index alone.
    Rng rng(0x9e3779b9);
    simd::GappedKernelCounters kc;
    for (std::size_t i = 0; i < per_path; ++i) {
      const FuzzCase c = make_case(rng);
      const GappedHalf want = xdrop_extend(c.a, c.b, *c.matrix, c.gap_open,
                                           c.gap_extend, c.xdrop, false);
      const GappedHalf got =
          xdrop_extend(c.a, c.b, *c.matrix, c.gap_open, c.gap_extend,
                       c.xdrop, false, path, &kc);
      ASSERT_EQ(got.score, want.score)
          << simd::kernel_name(path) << " case " << i << ": " << c.a.size()
          << "x" << c.b.size() << " " << c.matrix->name() << " gap "
          << c.gap_open << "/" << c.gap_extend << " xdrop " << c.xdrop;
      ASSERT_EQ(got.q_len, want.q_len)
          << simd::kernel_name(path) << " case " << i;
      ASSERT_EQ(got.s_len, want.s_len)
          << simd::kernel_name(path) << " case " << i;
      ++compared;
    }
    // Every dispatched call is settled by exactly one tier.
    EXPECT_EQ(kc.int8_runs + kc.int16_reruns + kc.scalar_fallbacks, per_path)
        << simd::kernel_name(path);
    // The campaign is pointless if the vector kernel never engages.
    EXPECT_GT(kc.int8_runs, per_path / 2) << simd::kernel_name(path);
  }
  EXPECT_GE(compared, 10000u);
}

TEST(GappedSimdFuzz, AnchoredAlignmentMatchesScalar) {
  const auto paths = vector_paths();
  if (paths.empty()) GTEST_SKIP() << "no vector kernel on this CPU";
  const SearchParams params;
  for (const simd::KernelPath path : paths) {
    Rng rng(0x51ed270b);
    for (std::size_t i = 0; i < 500; ++i) {
      const std::vector<Residue> q = rand_seq(60 + rng.next_below(200), rng);
      const std::vector<Residue> s = mutate(q, rng);
      const std::uint32_t qm =
          static_cast<std::uint32_t>(rng.next_below(q.size()));
      const std::uint32_t sm = static_cast<std::uint32_t>(
          std::min<std::size_t>(qm, s.size() - 1));
      const GappedAlignment want = gapped_align_at_anchor(
          q, s, qm, sm, *params.matrix, params, /*traceback=*/false);
      const GappedAlignment got = gapped_align_at_anchor(
          q, s, qm, sm, *params.matrix, params, /*traceback=*/false, path);
      ASSERT_EQ(got.score, want.score)
          << simd::kernel_name(path) << " case " << i;
      ASSERT_EQ(got.q_start, want.q_start)
          << simd::kernel_name(path) << " case " << i;
      ASSERT_EQ(got.q_end, want.q_end)
          << simd::kernel_name(path) << " case " << i;
      ASSERT_EQ(got.s_start, want.s_start)
          << simd::kernel_name(path) << " case " << i;
      ASSERT_EQ(got.s_end, want.s_end)
          << simd::kernel_name(path) << " case " << i;
      ASSERT_EQ(got.anchor_q, want.anchor_q)
          << simd::kernel_name(path) << " case " << i;
      ASSERT_EQ(got.anchor_s, want.anchor_s)
          << simd::kernel_name(path) << " case " << i;
    }
  }
}

// ---- Saturation boundary: hand-built alignments around the int8 ceiling --

// blosum62: A-A scores 4, W-W scores 11. With the default xdrop (38) the
// int8 tier is always eligible (38 + 11 <= 127); whether it *survives* a
// case depends on whether the running best touches 127.
class GappedSimdSaturation
    : public ::testing::TestWithParam<simd::KernelPath> {};

GappedHalf run_banded(std::span<const Residue> a, std::span<const Residue> b,
                      simd::KernelPath path,
                      simd::GappedKernelCounters& kc) {
  return xdrop_extend(a, b, blosum62(), 11, 1, 38, false, path, &kc);
}

TEST_P(GappedSimdSaturation, JustBelowCeilingStaysInt8) {
  // 31 identical A: best score 31*4 = 124 < 127 — int8 exact, no re-run.
  const std::vector<Residue> a(31, encode_residue('A'));
  simd::GappedKernelCounters kc;
  const GappedHalf got = run_banded(a, a, GetParam(), kc);
  EXPECT_EQ(got.score, 124);
  EXPECT_EQ(kc.int8_runs, 1u);
  EXPECT_EQ(kc.int16_reruns, 0u);
  EXPECT_EQ(kc.scalar_fallbacks, 0u);
}

TEST_P(GappedSimdSaturation, ExactCeilingTriggersConservativeRerun) {
  // 29 A + 1 W: best score 29*4 + 11 = 127 — lands exactly on the int8
  // saturation value, indistinguishable from an overflow, so the kernel
  // must re-run at int16 and still report 127.
  std::vector<Residue> a(29, encode_residue('A'));
  a.push_back(encode_residue('W'));
  simd::GappedKernelCounters kc;
  const GappedHalf want = xdrop_extend(a, a, blosum62(), 11, 1, 38, false);
  ASSERT_EQ(want.score, 127);
  const GappedHalf got = run_banded(a, a, GetParam(), kc);
  EXPECT_EQ(got.score, want.score);
  EXPECT_EQ(got.q_len, want.q_len);
  EXPECT_EQ(got.s_len, want.s_len);
  EXPECT_EQ(kc.int8_runs, 0u);
  EXPECT_EQ(kc.int16_reruns, 1u);
  EXPECT_EQ(kc.scalar_fallbacks, 0u);
}

TEST_P(GappedSimdSaturation, AboveCeilingRerunsInt16) {
  // 32 identical A: true score 128 > 127 — the int8 pass saturates mid-run
  // and the int16 re-run must recover the exact value.
  const std::vector<Residue> a(32, encode_residue('A'));
  simd::GappedKernelCounters kc;
  const GappedHalf want = xdrop_extend(a, a, blosum62(), 11, 1, 38, false);
  ASSERT_EQ(want.score, 128);
  const GappedHalf got = run_banded(a, a, GetParam(), kc);
  EXPECT_EQ(got.score, want.score);
  EXPECT_EQ(got.q_len, want.q_len);
  EXPECT_EQ(got.s_len, want.s_len);
  EXPECT_EQ(kc.int8_runs, 0u);
  EXPECT_EQ(kc.int16_reruns, 1u);
  EXPECT_EQ(kc.scalar_fallbacks, 0u);
}

TEST_P(GappedSimdSaturation, BeyondInt16FallsBackToScalar) {
  // 8200 identical A: true score 32800 > 32767 — both tiers overflow and
  // the dispatched call must fall through to the scalar int32 DP.
  const std::vector<Residue> a(8200, encode_residue('A'));
  simd::GappedKernelCounters kc;
  const GappedHalf want = xdrop_extend(a, a, blosum62(), 11, 1, 38, false);
  ASSERT_EQ(want.score, 32800);
  const GappedHalf got = run_banded(a, a, GetParam(), kc);
  EXPECT_EQ(got.score, want.score);
  EXPECT_EQ(got.q_len, want.q_len);
  EXPECT_EQ(got.s_len, want.s_len);
  EXPECT_EQ(kc.int8_runs, 0u);
  EXPECT_EQ(kc.int16_reruns, 0u);
  EXPECT_EQ(kc.scalar_fallbacks, 1u);
}

TEST_P(GappedSimdSaturation, IneligibleParamsDeclineBothTiers) {
  // xdrop so large that xdrop + max_score overflows even int16 eligibility:
  // the kernel must decline up front and the scalar DP must run.
  const std::vector<Residue> a(20, encode_residue('A'));
  simd::GappedKernelCounters kc;
  const GappedHalf want = xdrop_extend(a, a, blosum62(), 11, 1, 32760, false);
  const GappedHalf got =
      xdrop_extend(a, a, blosum62(), 11, 1, 32760, false, GetParam(), &kc);
  EXPECT_EQ(got.score, want.score);
  EXPECT_EQ(kc.int8_runs, 0u);
  EXPECT_EQ(kc.int16_reruns, 0u);
  EXPECT_EQ(kc.scalar_fallbacks, 1u);
}

INSTANTIATE_TEST_SUITE_P(VectorPaths, GappedSimdSaturation,
                         ::testing::ValuesIn(vector_paths()),
                         [](const auto& info) {
                           return std::string(simd::kernel_name(info.param));
                         });

// ---- Engine-level tier counters -------------------------------------------

TEST(GappedSimdCounters, EngineTalliesTwoHalvesPerExtension) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(100000), 515);
  Rng rng(516);
  const SequenceStore queries = synth::sample_queries(db, 2, 128, rng);
  const DbIndex index = DbIndex::build(db, {});

  MuBlastpOptions scalar_opts;
  scalar_opts.kernel = simd::KernelPath::kScalar;
  const MuBlastpEngine scalar_engine(index, {}, scalar_opts);
  const QueryResult sr = scalar_engine.search(queries.sequence(0));
  // Scalar runs must never book banded-kernel tiers.
  EXPECT_EQ(sr.stats.gapped_int8_runs, 0u);
  EXPECT_EQ(sr.stats.gapped_int16_reruns, 0u);
  EXPECT_EQ(sr.stats.gapped_scalar_fallbacks, 0u);
  ASSERT_GT(sr.stats.gapped_extensions, 0u) << "workload seeds no gapped"
                                               " extensions; test is vacuous";

  std::vector<StageStats> per_path;
  for (const simd::KernelPath path : vector_paths()) {
    MuBlastpOptions opts;
    opts.kernel = path;
    const MuBlastpEngine engine(index, {}, opts);
    const QueryResult r = engine.search(queries.sequence(0));
    // One banded call per extension half, each settled by exactly one tier.
    EXPECT_EQ(r.stats.gapped_int8_runs + r.stats.gapped_int16_reruns +
                  r.stats.gapped_scalar_fallbacks,
              2 * r.stats.gapped_extensions)
        << simd::kernel_name(path);
    EXPECT_EQ(r.stats.gapped_extensions, sr.stats.gapped_extensions)
        << simd::kernel_name(path);
    per_path.push_back(r.stats);
  }
  // The tier choice is value-driven, so SSE4.2 and AVX2 must tally alike.
  for (std::size_t i = 1; i < per_path.size(); ++i) {
    EXPECT_EQ(per_path[i].gapped_int8_runs, per_path[0].gapped_int8_runs);
    EXPECT_EQ(per_path[i].gapped_int16_reruns,
              per_path[0].gapped_int16_reruns);
    EXPECT_EQ(per_path[i].gapped_scalar_fallbacks,
              per_path[0].gapped_scalar_fallbacks);
  }
}

// ---- --kernel= spec parsing -----------------------------------------------

TEST(KernelSpec, ParsesPathAndUngappedSuffix) {
  EXPECT_EQ(simd::parse_kernel_spec("scalar").path, simd::KernelPath::kScalar);
  EXPECT_FALSE(simd::parse_kernel_spec("scalar").vector_ungapped);
  const simd::KernelSpec s = simd::parse_kernel_spec("sse42+ungapped");
  EXPECT_EQ(s.path, simd::KernelPath::kSse42);
  EXPECT_TRUE(s.vector_ungapped);
  EXPECT_EQ(simd::parse_kernel_spec("auto+ungapped").path,
            simd::detect_kernel());
}

TEST(KernelSpec, RejectsUnknownSuffixOrPath) {
  EXPECT_THROW(simd::parse_kernel_spec("avx2+foo"), Error);
  EXPECT_THROW(simd::parse_kernel_spec("avx2+"), Error);
  EXPECT_THROW(simd::parse_kernel_spec("avx512"), Error);
}

}  // namespace
}  // namespace mublastp
