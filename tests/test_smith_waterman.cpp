#include "baseline/smith_waterman.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mublastp {
namespace {

std::vector<Residue> rand_seq(std::size_t len, Rng& rng) {
  std::vector<Residue> s(len);
  for (auto& r : s) r = static_cast<Residue>(rng.next_below(20));
  return s;
}

// Re-scores a transcript to validate traceback consistency.
Score rescore(const std::vector<Residue>& q, const std::vector<Residue>& s,
              const SwAlignment& a, Score open, Score extend) {
  Score total = 0;
  std::size_t qi = a.q_start, si = a.s_start;
  char prev = 'M';
  for (char op : a.ops) {
    if (op == 'M') {
      total += blosum62()(q[qi++], s[si++]);
    } else if (op == 'I') {
      total -= (prev == 'I') ? extend : open + extend;
      ++qi;
    } else {
      total -= (prev == 'D') ? extend : open + extend;
      ++si;
    }
    prev = op;
  }
  EXPECT_EQ(qi, a.q_end);
  EXPECT_EQ(si, a.s_end);
  return total;
}

TEST(SmithWaterman, IdenticalSequencesAlignFully) {
  const auto q = encode_sequence("MKVLAWHETRRIPGW");
  const auto a = smith_waterman(q, q, blosum62(), 11, 1);
  EXPECT_EQ(a.q_start, 0u);
  EXPECT_EQ(a.q_end, q.size());
  EXPECT_EQ(a.ops, std::string(q.size(), 'M'));
  Score self = 0;
  for (const Residue r : q) self += blosum62()(r, r);
  EXPECT_EQ(a.score, self);
}

TEST(SmithWaterman, FindsEmbeddedMotif) {
  const auto motif = encode_sequence("WWHHKKRRWW");
  Rng rng(5);
  auto subject = rand_seq(80, rng);
  std::copy(motif.begin(), motif.end(), subject.begin() + 30);
  const auto a = smith_waterman(motif, subject, blosum62(), 11, 1);
  EXPECT_EQ(a.q_start, 0u);
  EXPECT_EQ(a.q_end, motif.size());
  EXPECT_LE(a.s_start, 30u);
  EXPECT_GE(a.s_end, 40u);
  Score motif_self = 0;
  for (const Residue r : motif) motif_self += blosum62()(r, r);
  EXPECT_GE(a.score, motif_self);
}

TEST(SmithWaterman, GapIsBridgedWhenWorthIt) {
  // Two strong blocks separated by an insertion in the subject.
  const auto q = encode_sequence("WWWHHHKKKRRRWWWHHHKKKRRR");
  const auto s = encode_sequence("WWWHHHKKKRRRAAAAWWWHHHKKKRRR");
  const auto a = smith_waterman(q, s, blosum62(), 11, 1);
  // 24 matches vs a 4-gap: score = sum(self) - (11 + 4*1).
  EXPECT_NE(a.ops.find('D'), std::string::npos);
  EXPECT_EQ(rescore(q, s, a, 11, 1), a.score);
}

TEST(SmithWaterman, NoPositiveAlignmentReturnsZero) {
  const auto q = encode_sequence("WWW");
  const auto s = encode_sequence("PPP");
  const auto a = smith_waterman(q, s, blosum62(), 11, 1);
  EXPECT_EQ(a.score, 0);
  EXPECT_TRUE(a.ops.empty());
}

TEST(SmithWaterman, TranscriptAlwaysRescoresToScore) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto q = rand_seq(20 + rng.next_below(80), rng);
    const auto s = rand_seq(20 + rng.next_below(80), rng);
    const auto a = smith_waterman(q, s, blosum62(), 11, 1);
    if (a.score > 0) {
      EXPECT_EQ(rescore(q, s, a, 11, 1), a.score);
      EXPECT_EQ(a.ops.front(), 'M');  // local alignment trims gaps at ends
      EXPECT_EQ(a.ops.back(), 'M');
    }
  }
}

TEST(SmithWaterman, ScoreIsSymmetric) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const auto q = rand_seq(40, rng);
    const auto s = rand_seq(60, rng);
    EXPECT_EQ(smith_waterman(q, s, blosum62(), 11, 1).score,
              smith_waterman(s, q, blosum62(), 11, 1).score);
  }
}

TEST(SmithWaterman, GappedBeatsOrMatchesUngapped) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const auto q = rand_seq(60, rng);
    const auto s = rand_seq(60, rng);
    EXPECT_GE(smith_waterman(q, s, blosum62(), 11, 1).score,
              best_ungapped_score(q, s, blosum62()));
  }
}

TEST(BestUngapped, ExactValuesOnTinyCases) {
  const auto q = encode_sequence("AW");
  const auto s = encode_sequence("AW");
  // Best diagonal run: A/A + W/W = 4 + 11.
  EXPECT_EQ(best_ungapped_score(q, s, blosum62()), 15);
  const auto t = encode_sequence("WA");
  // Cross diagonals only pair A/W (-3) or single letters: best is
  // max(A/A, W/W) = 11 on the off-diagonals.
  EXPECT_EQ(best_ungapped_score(q, t, blosum62()), 11);
}

}  // namespace
}  // namespace mublastp
