#include "index/db_index_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

DbIndex make_index(std::uint64_t seed, std::size_t residues = 100000) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(residues), seed);
  DbIndexConfig cfg;
  cfg.block_bytes = 32 * 1024;
  return DbIndex::build(db, cfg);
}

TEST(DbIndexIo, RoundTripPreservesStructure) {
  const DbIndex original = make_index(31);
  std::stringstream buf;
  save_db_index(buf, original);
  const DbIndex loaded = load_db_index(buf);

  ASSERT_EQ(loaded.db().size(), original.db().size());
  EXPECT_EQ(loaded.db().total_residues(), original.db().total_residues());
  ASSERT_EQ(loaded.blocks().size(), original.blocks().size());
  EXPECT_EQ(loaded.config().block_bytes, original.config().block_bytes);
  EXPECT_EQ(loaded.neighbors().threshold(),
            original.neighbors().threshold());

  for (SeqId i = 0; i < loaded.db().size(); ++i) {
    EXPECT_EQ(loaded.db().name(i), original.db().name(i));
    EXPECT_EQ(loaded.original_id(i), original.original_id(i));
    EXPECT_EQ(loaded.sorted_id(i), original.sorted_id(i));
    const auto a = loaded.db().sequence(i);
    const auto b = original.db().sequence(i);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }

  for (std::size_t bi = 0; bi < loaded.blocks().size(); ++bi) {
    const DbIndexBlock& lb = loaded.blocks()[bi];
    const DbIndexBlock& ob = original.blocks()[bi];
    EXPECT_EQ(lb.num_positions(), ob.num_positions());
    EXPECT_EQ(lb.total_chars(), ob.total_chars());
    EXPECT_EQ(lb.max_fragment_len(), ob.max_fragment_len());
    EXPECT_EQ(lb.offset_bits(), ob.offset_bits());
    ASSERT_EQ(lb.fragments().size(), ob.fragments().size());
    for (std::uint32_t w = 0; w < static_cast<std::uint32_t>(kNumWords);
         w += 173) {
      const auto le = lb.entries(w);
      const auto oe = ob.entries(w);
      ASSERT_EQ(le.size(), oe.size());
      EXPECT_TRUE(std::equal(le.begin(), le.end(), oe.begin()));
    }
  }
}

TEST(DbIndexIo, LoadedIndexSearchesIdentically) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(150000), 33);
  DbIndexConfig cfg;
  cfg.block_bytes = 64 * 1024;
  const DbIndex original = DbIndex::build(db, cfg);
  std::stringstream buf;
  save_db_index(buf, original);
  const DbIndex loaded = load_db_index(buf);

  Rng rng(34);
  const SequenceStore queries = synth::sample_queries(db, 3, 128, rng);
  const MuBlastpEngine e1(original);
  const MuBlastpEngine e2(loaded);
  for (SeqId q = 0; q < queries.size(); ++q) {
    const QueryResult a = e1.search(queries.sequence(q));
    const QueryResult b = e2.search(queries.sequence(q));
    EXPECT_EQ(a.ungapped, b.ungapped);
    ASSERT_EQ(a.alignments.size(), b.alignments.size());
    for (std::size_t i = 0; i < a.alignments.size(); ++i) {
      EXPECT_EQ(a.alignments[i].score, b.alignments[i].score);
      EXPECT_EQ(a.alignments[i].subject, b.alignments[i].subject);
      EXPECT_EQ(a.alignments[i].ops, b.alignments[i].ops);
    }
  }
}

TEST(DbIndexIo, FileRoundTrip) {
  const DbIndex original = make_index(35, 50000);
  const std::string path = ::testing::TempDir() + "/mublastp_index_test.mbi";
  save_db_index_file(path, original);
  const DbIndex loaded = load_db_index_file(path);
  EXPECT_EQ(loaded.db().size(), original.db().size());
  EXPECT_EQ(loaded.blocks().size(), original.blocks().size());
}

TEST(DbIndexIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOTANINDEX_____________";
  EXPECT_THROW(load_db_index(buf), Error);
}

TEST(DbIndexIo, RejectsWrongVersion) {
  const DbIndex original = make_index(36, 50000);
  std::stringstream buf;
  save_db_index(buf, original);
  std::string bytes = buf.str();
  bytes[4] = 99;  // clobber the version field
  std::stringstream bad(bytes);
  EXPECT_THROW(load_db_index(bad), Error);
}

TEST(DbIndexIo, RejectsTruncatedFile) {
  const DbIndex original = make_index(37, 50000);
  std::stringstream buf;
  save_db_index(buf, original);
  const std::string bytes = buf.str();
  for (const double frac : {0.1, 0.5, 0.9, 0.999}) {
    std::stringstream cut(
        bytes.substr(0, static_cast<std::size_t>(bytes.size() * frac)));
    EXPECT_THROW(load_db_index(cut), Error) << "frac " << frac;
  }
}

TEST(DbIndexIo, ParallelBuildIsByteIdenticalToSerial) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(120000), 39);
  DbIndexConfig serial_cfg;
  serial_cfg.block_bytes = 16 * 1024;  // many blocks -> real parallelism
  serial_cfg.build_threads = 1;
  DbIndexConfig parallel_cfg = serial_cfg;
  parallel_cfg.build_threads = 4;
  std::stringstream a;
  save_db_index(a, DbIndex::build(db, serial_cfg));
  std::stringstream b;
  save_db_index(b, DbIndex::build(db, parallel_cfg));
  EXPECT_EQ(a.str(), b.str());
}

TEST(DbIndexIo, RejectsMissingFile) {
  EXPECT_THROW(load_db_index_file("/nonexistent/index.mbi"), Error);
}

TEST(DbIndexIo, CorruptFragmentRangeDetected) {
  const DbIndex original = make_index(38, 50000);
  std::stringstream buf;
  save_db_index(buf, original);
  std::string bytes = buf.str();
  // Flip bytes near the end (inside block data) until the loader objects;
  // structural validation must catch gross corruption rather than crash.
  bool threw = false;
  for (std::size_t back = 32; back <= 4096 && !threw; back *= 2) {
    std::string mutated = bytes;
    for (std::size_t i = mutated.size() - back;
         i < mutated.size() - back + 16 && i < mutated.size(); ++i) {
      mutated[i] = static_cast<char>(0xFF);
    }
    std::stringstream bad(mutated);
    try {
      const DbIndex loaded = load_db_index(bad);
      (void)loaded;
    } catch (const Error&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace mublastp
