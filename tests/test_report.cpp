#include "report/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

GappedAlignment make_alignment(SeqId subject, std::uint32_t qs,
                               std::uint32_t ss, const std::string& ops) {
  GappedAlignment a;
  a.subject = subject;
  a.q_start = qs;
  a.s_start = ss;
  std::uint32_t q = qs, s = ss;
  for (char op : ops) {
    if (op == 'M' || op == 'I') ++q;
    if (op == 'M' || op == 'D') ++s;
  }
  a.q_end = q;
  a.s_end = s;
  a.ops = ops;
  return a;
}

TEST(Summarize, PerfectMatch) {
  const auto q = encode_sequence("ARNDC");
  const auto a = make_alignment(0, 0, 0, "MMMMM");
  const auto s = summarize_alignment(q, q, a, blosum62());
  EXPECT_EQ(s.length, 5u);
  EXPECT_EQ(s.identities, 5u);
  EXPECT_EQ(s.positives, 5u);
  EXPECT_EQ(s.mismatches, 0u);
  EXPECT_EQ(s.gaps, 0u);
  EXPECT_DOUBLE_EQ(s.percent_identity(), 100.0);
}

TEST(Summarize, CountsMismatchesAndPositives) {
  const auto q = encode_sequence("ILK");   // I/L scores +2 (positive)
  const auto s2 = encode_sequence("LLK");  // first pair mismatch but positive
  const auto a = make_alignment(0, 0, 0, "MMM");
  const auto s = summarize_alignment(q, s2, a, blosum62());
  EXPECT_EQ(s.identities, 2u);
  EXPECT_EQ(s.positives, 3u);
  EXPECT_EQ(s.mismatches, 1u);
}

TEST(Summarize, CountsGapRuns) {
  const auto q = encode_sequence("ARNDCQ");
  const auto s2 = encode_sequence("ARCQ");
  // ARNDCQ vs AR--CQ: one gap run of length 2 in the subject.
  const auto a = make_alignment(0, 0, 0, "MMIIMM");
  const auto s = summarize_alignment(q, s2, a, blosum62());
  EXPECT_EQ(s.length, 6u);
  EXPECT_EQ(s.gaps, 2u);
  EXPECT_EQ(s.gap_opens, 1u);
  EXPECT_EQ(s.identities, 4u);
}

TEST(Summarize, SeparateGapRunsCountedSeparately) {
  const auto q = encode_sequence("ARNDC");
  const auto s2 = encode_sequence("RND");
  const auto a = make_alignment(0, 0, 0, "IMMMI");
  const auto s = summarize_alignment(q, s2, a, blosum62());
  EXPECT_EQ(s.gap_opens, 2u);
  EXPECT_EQ(s.gaps, 2u);
}

TEST(Summarize, RejectsMissingTranscript) {
  const auto q = encode_sequence("ARNDC");
  GappedAlignment a;
  a.q_end = 5;
  a.s_end = 5;
  EXPECT_THROW(summarize_alignment(q, q, a, blosum62()), Error);
}

class ReportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = synth::generate_database(synth::sprot_like(100000), 21);
    index_ = std::make_unique<DbIndex>(DbIndex::build(db_, {}));
    engine_ = std::make_unique<MuBlastpEngine>(*index_);
    Rng rng(22);
    queries_ = synth::sample_queries(db_, 1, 120, rng);
    result_ = engine_->search(queries_.sequence(0));
    // Reports address subjects in the index's sorted store.
    for (GappedAlignment& a : result_.alignments) {
      a.subject = index_->sorted_id(a.subject);
    }
    ASSERT_FALSE(result_.alignments.empty());
  }

  SequenceStore db_;
  std::unique_ptr<DbIndex> index_;
  std::unique_ptr<MuBlastpEngine> engine_;
  SequenceStore queries_;
  QueryResult result_;
};

TEST_F(ReportFixture, TabularHasTwelveColumns) {
  std::ostringstream out;
  write_tabular(out, "query1", queries_.sequence(0), index_->db(), result_,
                blosum62());
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 11) << line;
    EXPECT_EQ(line.substr(0, 6), "query1");
  }
  EXPECT_EQ(count, result_.alignments.size());
}

TEST_F(ReportFixture, TabularCoordinatesAreOneBasedInclusive) {
  std::ostringstream out;
  write_tabular(out, "q", queries_.sequence(0), index_->db(), result_,
                blosum62());
  std::istringstream first_line(out.str());
  std::string field;
  std::vector<std::string> fields;
  while (std::getline(first_line, field, '\t')) fields.push_back(field);
  ASSERT_GE(fields.size(), 10u);
  const GappedAlignment& a = result_.alignments.front();
  EXPECT_EQ(std::stoul(fields[6]), a.q_start + 1);
  EXPECT_EQ(std::stoul(fields[7]), a.q_end);
  EXPECT_EQ(std::stoul(fields[8]), a.s_start + 1);
}

TEST_F(ReportFixture, TopHitIsNearHundredPercentIdentity) {
  // The query is a window of a database sequence: its source should report
  // ~100% identity in the tabular output.
  const GappedAlignment& top = result_.alignments.front();
  const auto s = summarize_alignment(queries_.sequence(0),
                                     index_->db().sequence(top.subject), top,
                                     blosum62());
  EXPECT_GT(s.percent_identity(), 99.0);
}

TEST_F(ReportFixture, PairwiseContainsHeadersAndBlocks) {
  std::ostringstream out;
  write_pairwise(out, "query1", queries_.sequence(0), index_->db(), result_,
                 blosum62());
  const std::string text = out.str();
  EXPECT_NE(text.find("Query= query1"), std::string::npos);
  EXPECT_NE(text.find("Score ="), std::string::npos);
  EXPECT_NE(text.find("Identities ="), std::string::npos);
  EXPECT_NE(text.find("Query      1"), std::string::npos);
  EXPECT_NE(text.find("Sbjct"), std::string::npos);
}

TEST_F(ReportFixture, PairwiseWrapsAtRequestedWidth) {
  std::ostringstream out;
  write_pairwise(out, "q", queries_.sequence(0), index_->db(), result_,
                 blosum62(), 30);
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("Query  ", 0) == 0 || line.rfind("Sbjct  ", 0) == 0) {
      // "Label  NNNNN  <seq>  NNN": the sequence field is <= 30 chars.
      const std::size_t first = line.find("  ", 7);
      ASSERT_NE(first, std::string::npos);
      const std::size_t seq_start = first + 2;
      const std::size_t seq_end = line.find("  ", seq_start);
      ASSERT_NE(seq_end, std::string::npos);
      EXPECT_LE(seq_end - seq_start, 30u);
    }
  }
}

TEST_F(ReportFixture, PairwiseEmptyResultSaysNoHits) {
  QueryResult empty;
  std::ostringstream out;
  write_pairwise(out, "q", queries_.sequence(0), index_->db(), empty,
                 blosum62());
  EXPECT_NE(out.str().find("No hits found"), std::string::npos);
}

}  // namespace
}  // namespace mublastp
