// End-to-end searches under non-default scoring matrices: the matrix is a
// parameter of both the index (neighbor table) and the search, and the
// engine-equivalence guarantee must hold for every supported matrix.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/interleaved_engine.hpp"
#include "baseline/query_engine.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/db_index_io.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

class MultiMatrix : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    matrix_ = &matrix_by_name(GetParam());
    db_ = synth::generate_database(synth::sprot_like(80000), 61);
    Rng rng(62);
    queries_ = synth::sample_queries(db_, 2, 100, rng);
    DbIndexConfig cfg;
    cfg.block_bytes = 32 * 1024;
    cfg.matrix = matrix_;
    // BLOSUM80/PAM250 rescale scores; keep T at a level where all matrices
    // produce hits on this small database.
    cfg.neighbor_threshold = 11;
    index_ = std::make_unique<DbIndex>(DbIndex::build(db_, cfg));
    params_.matrix = matrix_;
  }

  const ScoreMatrix* matrix_ = nullptr;
  SequenceStore db_;
  SequenceStore queries_;
  std::unique_ptr<DbIndex> index_;
  SearchParams params_;
};

TEST_P(MultiMatrix, EnginesAgree) {
  const QueryIndexedEngine ncbi(db_, params_, 11);
  const InterleavedDbEngine ncbi_db(*index_, params_);
  const MuBlastpEngine mu(*index_, params_);
  for (SeqId q = 0; q < queries_.size(); ++q) {
    const auto query = queries_.sequence(q);
    const QueryResult a = ncbi.search(query);
    const QueryResult b = ncbi_db.search(query);
    const QueryResult c = mu.search(query);
    EXPECT_EQ(a.ungapped, b.ungapped) << GetParam();
    EXPECT_EQ(b.ungapped, c.ungapped) << GetParam();
    ASSERT_EQ(a.alignments.size(), c.alignments.size()) << GetParam();
    for (std::size_t i = 0; i < a.alignments.size(); ++i) {
      EXPECT_EQ(a.alignments[i].score, c.alignments[i].score);
      EXPECT_EQ(a.alignments[i].ops, c.alignments[i].ops);
    }
  }
}

TEST_P(MultiMatrix, FindsSelfMatch) {
  const MuBlastpEngine mu(*index_, params_);
  const QueryResult r = mu.search(queries_.sequence(0));
  ASSERT_FALSE(r.alignments.empty()) << GetParam();
  // Top alignment covers most of the query at near-self score.
  const GappedAlignment& top = r.alignments.front();
  EXPECT_GT(top.q_end - top.q_start, 90u);
  Score self = 0;
  for (const Residue res : queries_.sequence(0)) {
    self += (*matrix_)(res, res);
  }
  EXPECT_GT(top.score, self * 9 / 10);
}

TEST_P(MultiMatrix, IndexIoPreservesMatrix) {
  std::stringstream buf;
  save_db_index(buf, *index_);
  const DbIndex loaded = load_db_index(buf);
  EXPECT_EQ(loaded.config().matrix, matrix_);
  const MuBlastpEngine a(*index_, params_);
  const MuBlastpEngine b(loaded, params_);
  const QueryResult ra = a.search(queries_.sequence(0));
  const QueryResult rb = b.search(queries_.sequence(0));
  EXPECT_EQ(ra.ungapped, rb.ungapped);
}

INSTANTIATE_TEST_SUITE_P(Matrices, MultiMatrix,
                         ::testing::Values("BLOSUM62", "BLOSUM80", "BLOSUM50",
                                           "PAM250"));

TEST(MatrixMismatch, EngineRejectsWrongMatrix) {
  const SequenceStore db = synth::generate_database(synth::sprot_like(30000),
                                                    63);
  DbIndexConfig cfg;
  cfg.matrix = &blosum80();
  const DbIndex index = DbIndex::build(db, cfg);
  SearchParams params;  // defaults to BLOSUM62
  EXPECT_THROW(MuBlastpEngine(index, params), Error);
  EXPECT_THROW(InterleavedDbEngine(index, params), Error);
}

}  // namespace
}  // namespace mublastp
