#include "score/karlin.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace mublastp {
namespace {

TEST(RobinsonFrequencies, SumToOneOverStandardResidues) {
  const auto& f = robinson_frequencies();
  double sum = 0.0;
  for (int i = 0; i < 20; ++i) sum += f[i];
  EXPECT_NEAR(sum, 1.0, 1e-3);
  for (int i = 20; i < kAlphabetSize; ++i) EXPECT_EQ(f[i], 0.0);
}

TEST(Karlin, Blosum62LambdaMatchesPublished) {
  // NCBI publishes ungapped BLOSUM62 lambda = 0.3176 (Robinson freqs).
  const KarlinParams p = compute_karlin(blosum62());
  EXPECT_NEAR(p.lambda, 0.3176, 0.005);
}

TEST(Karlin, Blosum62EntropyMatchesPublished) {
  // Published H ~= 0.40 nats for ungapped BLOSUM62.
  const KarlinParams p = compute_karlin(blosum62());
  EXPECT_NEAR(p.H, 0.40, 0.03);
}

TEST(Karlin, Blosum62KInPublishedBand) {
  // Published K = 0.134; our closed-form estimate must land within ~15%.
  const KarlinParams p = compute_karlin(blosum62());
  EXPECT_GT(p.K, 0.134 * 0.85);
  EXPECT_LT(p.K, 0.134 * 1.15);
}

TEST(Karlin, LambdaSatisfiesDefiningEquation) {
  const KarlinParams p = compute_karlin(blosum62());
  const auto& freqs = robinson_frequencies();
  double sum = 0.0;
  for (int a = 0; a < 20; ++a) {
    for (int b = 0; b < 20; ++b) {
      sum += freqs[a] * freqs[b] *
             std::exp(p.lambda * blosum62()(static_cast<Residue>(a),
                                            static_cast<Residue>(b)));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Karlin, OtherMatricesHavePositiveParams) {
  for (const char* name : {"BLOSUM50", "BLOSUM80", "PAM250"}) {
    const KarlinParams p = compute_karlin(matrix_by_name(name));
    EXPECT_GT(p.lambda, 0.0) << name;
    EXPECT_GT(p.K, 0.0) << name;
    EXPECT_GT(p.H, 0.0) << name;
  }
}

TEST(Karlin, StricterMatrixHasHigherEntropy) {
  // BLOSUM80 (closely related sequences) carries more information per
  // aligned pair than BLOSUM50.
  EXPECT_GT(compute_karlin(blosum80()).H, compute_karlin(blosum50()).H);
}

TEST(Karlin, GappedParamsKnownTriple) {
  const KarlinParams p = gapped_params(blosum62(), 11, 1);
  EXPECT_NEAR(p.lambda, 0.267, 1e-9);
  EXPECT_NEAR(p.K, 0.041, 1e-9);
}

TEST(Karlin, GappedParamsFallbackIsScaledUngapped) {
  const KarlinParams p = gapped_params(blosum62(), 7, 3);  // not in table
  EXPECT_GT(p.lambda, 0.0);
  EXPECT_LT(p.lambda, compute_karlin(blosum62()).lambda);
}

TEST(Evalue, DecreasesWithScore) {
  const KarlinParams p = gapped_params(blosum62(), 11, 1);
  const double e1 = evalue(50, 300, 1000000, p);
  const double e2 = evalue(100, 300, 1000000, p);
  EXPECT_GT(e1, e2);
}

TEST(Evalue, GrowsWithSearchSpace) {
  const KarlinParams p = gapped_params(blosum62(), 11, 1);
  EXPECT_LT(evalue(60, 300, 1000000, p), evalue(60, 300, 100000000, p));
}

TEST(Evalue, BitScoreIsAffineInRawScore) {
  const KarlinParams p = gapped_params(blosum62(), 11, 1);
  const double b1 = bit_score(100, p);
  const double b2 = bit_score(200, p);
  const double b3 = bit_score(300, p);
  EXPECT_NEAR(b3 - b2, b2 - b1, 1e-9);
  EXPECT_GT(b2, b1);
}

TEST(Evalue, CutoffInvertsEvalue) {
  const KarlinParams p = gapped_params(blosum62(), 11, 1);
  const std::size_t m = 300;
  const std::size_t n = 5000000;
  for (const double target : {10.0, 1.0, 1e-3, 1e-10}) {
    const Score s = cutoff_for_evalue(target, m, n, p);
    EXPECT_LE(evalue(s, m, n, p), target);
    if (s > 1) {
      EXPECT_GT(evalue(s - 1, m, n, p), target);
    }
  }
}

TEST(Evalue, CutoffRejectsNonPositiveTarget) {
  const KarlinParams p = gapped_params(blosum62(), 11, 1);
  EXPECT_THROW(cutoff_for_evalue(0.0, 100, 100, p), Error);
}

}  // namespace
}  // namespace mublastp
