#include "index/dfa_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/query_engine.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "index/query_index.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

const NeighborTable& nbtable() {
  static const NeighborTable t(blosum62(), 11);
  return t;
}

std::vector<Residue> rand_seq(std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Residue> s(len);
  for (auto& r : s) r = static_cast<Residue>(rng.next_below(20));
  return s;
}

// Collects (soff, qoff) hit pairs from a DFA scan.
std::multiset<std::pair<std::uint32_t, std::uint32_t>> dfa_hits(
    const DfaQueryIndex& dfa, std::span<const Residue> subject) {
  std::multiset<std::pair<std::uint32_t, std::uint32_t>> out;
  dfa.scan(subject, [&](std::uint32_t soff, std::uint32_t qoff) {
    out.insert({soff, qoff});
  });
  return out;
}

// Reference hit set from the lookup-table index.
std::multiset<std::pair<std::uint32_t, std::uint32_t>> table_hits(
    const QueryIndex& idx, std::span<const Residue> subject) {
  std::multiset<std::pair<std::uint32_t, std::uint32_t>> out;
  for (std::uint32_t soff = 0; soff + kWordLength <= subject.size(); ++soff) {
    const std::uint32_t w = word_key(subject.data() + soff);
    for (const std::uint32_t qoff : idx.positions(w)) {
      out.insert({soff, qoff});
    }
  }
  return out;
}

TEST(DfaIndex, StateArithmetic) {
  // State = last (W-1) residues; transitions drop the oldest one.
  std::uint32_t s = 0;
  s = DfaQueryIndex::next_state(s, 3);
  EXPECT_EQ(s, 3u);
  s = DfaQueryIndex::next_state(s, 5);
  EXPECT_EQ(s, 3u * 24 + 5);
  s = DfaQueryIndex::next_state(s, 7);
  EXPECT_EQ(s, 5u * 24 + 7);  // the leading 3 aged out
}

TEST(DfaIndex, RejectsShortQuery) {
  const std::vector<Residue> q{1, 2};
  EXPECT_THROW(DfaQueryIndex(q, nbtable()), Error);
}

TEST(DfaIndex, FootprintMatchesLookupTable) {
  const auto q = rand_seq(200, 3);
  const DfaQueryIndex dfa(q, nbtable());
  const QueryIndex idx(q, nbtable());
  EXPECT_EQ(dfa.total_positions(), idx.total_positions());
}

TEST(DfaIndex, ShortSubjectEmitsNothing) {
  const auto q = rand_seq(50, 5);
  const DfaQueryIndex dfa(q, nbtable());
  const std::vector<Residue> tiny{1, 2};
  std::size_t hits = 0;
  dfa.scan(tiny, [&](std::uint32_t, std::uint32_t) { ++hits; });
  EXPECT_EQ(hits, 0u);
}

class DfaEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DfaEquivalence, SameHitStreamAsLookupTable) {
  const auto q = rand_seq(64 + GetParam() * 48, GetParam());
  const DfaQueryIndex dfa(q, nbtable());
  const QueryIndex idx(q, nbtable());
  for (int trial = 0; trial < 10; ++trial) {
    const auto subject = rand_seq(100 + 50 * trial, GetParam() * 100 + trial);
    EXPECT_EQ(dfa_hits(dfa, subject), table_hits(idx, subject));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfaEquivalence,
                         ::testing::Values(1, 2, 3, 4));

TEST(DfaEngine, FullSearchMatchesLookupTableEngine) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(80000), 41);
  Rng rng(42);
  const SequenceStore queries = synth::sample_queries(db, 2, 96, rng);
  const QueryIndexedEngine table_engine(db);
  const QueryIndexedEngine dfa_engine(db, {}, kDefaultNeighborThreshold,
                                      QueryIndexedEngine::Detector::kDfa);
  for (SeqId q = 0; q < queries.size(); ++q) {
    const QueryResult a = table_engine.search(queries.sequence(q));
    const QueryResult b = dfa_engine.search(queries.sequence(q));
    EXPECT_EQ(a.stats.hits, b.stats.hits);
    EXPECT_EQ(a.ungapped, b.ungapped);
    ASSERT_EQ(a.alignments.size(), b.alignments.size());
    for (std::size_t i = 0; i < a.alignments.size(); ++i) {
      EXPECT_EQ(a.alignments[i].score, b.alignments[i].score);
      EXPECT_EQ(a.alignments[i].ops, b.alignments[i].ops);
    }
  }
}

}  // namespace
}  // namespace mublastp
