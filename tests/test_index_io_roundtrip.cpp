// Round-trip property battery for index format v3 (and the v2 legacy
// path): for a spread of database shapes, an index that goes through
// save -> load (stream or file) or save -> mmap must drive the engine to
// BIT-IDENTICAL results and telemetry counters as the in-memory original.
#include "index/db_index_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "index/mapped_db_index.hpp"
#include "stats/stats.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

struct Shape {
  const char* label;
  std::uint64_t seed;
  std::size_t residues;
  std::size_t block_bytes;
  std::size_t long_seq_limit;
  std::size_t long_seq_overlap;
};

// ~20 shapes: tiny to mid databases, one-block and many-block layouts, and
// aggressive fragmentation (long_seq_limit far below typical lengths).
const Shape kShapes[] = {
    {"tiny", 101, 2000, 4096, 8192, 128},
    {"tiny_frag", 102, 2000, 4096, 256, 32},
    {"small_a", 103, 10000, 8192, 8192, 128},
    {"small_b", 104, 10000, 4096, 8192, 128},
    {"small_frag", 105, 10000, 8192, 256, 32},
    {"small_frag_tightlap", 106, 10000, 8192, 200, 64},
    {"mid_a", 107, 50000, 32 * 1024, 8192, 128},
    {"mid_b", 108, 50000, 16 * 1024, 8192, 128},
    {"mid_frag", 109, 50000, 32 * 1024, 512, 48},
    {"mid_manyblocks", 110, 50000, 4096, 8192, 128},
    {"big_a", 111, 200000, 64 * 1024, 8192, 128},
    {"big_manyblocks", 112, 200000, 16 * 1024, 8192, 128},
    {"big_frag", 113, 200000, 64 * 1024, 1024, 96},
    {"reseed_a", 114, 30000, 32 * 1024, 8192, 128},
    {"reseed_b", 115, 30000, 32 * 1024, 8192, 128},
    {"reseed_c", 116, 30000, 32 * 1024, 8192, 128},
    {"reseed_frag", 117, 30000, 32 * 1024, 300, 40},
};

DbIndex build_shape(const Shape& s, SequenceStore* db_out = nullptr) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(s.residues), s.seed);
  DbIndexConfig cfg;
  cfg.block_bytes = s.block_bytes;
  cfg.long_seq_limit = s.long_seq_limit;
  cfg.long_seq_overlap = s.long_seq_overlap;
  if (db_out != nullptr) *db_out = db;
  return DbIndex::build(db, cfg);
}

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "/mublastp_rt_" + tag + ".mbi";
}

// Result of driving one engine over a query set with telemetry on.
struct RunOutput {
  std::vector<QueryResult> results;
  std::vector<stats::StageCounters> counters;
};

RunOutput drive(const MuBlastpEngine& engine, const SequenceStore& queries) {
  RunOutput out;
  for (SeqId q = 0; q < queries.size(); ++q) {
    stats::PipelineStats ps;
    out.results.push_back(engine.search(queries.sequence(q), ps));
    out.counters.push_back(ps.snapshot().totals);
  }
  return out;
}

void expect_identical(const RunOutput& ref, const RunOutput& got,
                      const char* what) {
  ASSERT_EQ(ref.results.size(), got.results.size()) << what;
  for (std::size_t q = 0; q < ref.results.size(); ++q) {
    const QueryResult& a = ref.results[q];
    const QueryResult& b = got.results[q];
    EXPECT_EQ(a.ungapped, b.ungapped) << what << " query " << q;
    EXPECT_TRUE(ref.counters[q] == got.counters[q])
        << what << " counters, query " << q;
    ASSERT_EQ(a.alignments.size(), b.alignments.size())
        << what << " query " << q;
    for (std::size_t i = 0; i < a.alignments.size(); ++i) {
      const GappedAlignment& x = a.alignments[i];
      const GappedAlignment& y = b.alignments[i];
      EXPECT_EQ(x.subject, y.subject) << what;
      EXPECT_EQ(x.score, y.score) << what;
      EXPECT_EQ(x.q_start, y.q_start) << what;
      EXPECT_EQ(x.q_end, y.q_end) << what;
      EXPECT_EQ(x.s_start, y.s_start) << what;
      EXPECT_EQ(x.s_end, y.s_end) << what;
      EXPECT_EQ(x.ops, y.ops) << what;
      EXPECT_DOUBLE_EQ(x.evalue, y.evalue) << what;
    }
  }
}

class IndexIoRoundTrip : public ::testing::TestWithParam<Shape> {};

TEST_P(IndexIoRoundTrip, AllLoadPathsSearchIdentically) {
  const Shape& shape = GetParam();
  SequenceStore db;
  const DbIndex original = build_shape(shape, &db);

  Rng rng(shape.seed + 1000);
  const SequenceStore queries = synth::sample_queries(db, 3, 96, rng);
  const RunOutput ref = drive(MuBlastpEngine(original), queries);

  // Stream round-trip (v3 copy loader).
  std::stringstream buf;
  save_db_index(buf, original);
  const DbIndex stream_loaded = load_db_index(buf);
  expect_identical(ref, drive(MuBlastpEngine(stream_loaded), queries),
                   "stream-loaded");

  // File round-trip (copy loader) and mmap round-trip (zero-copy loader)
  // over the same bytes.
  const std::string path = temp_path(shape.label);
  save_db_index_file(path, original);
  const DbIndex file_loaded = load_db_index_file(path);
  expect_identical(ref, drive(MuBlastpEngine(file_loaded), queries),
                   "file-loaded");
  {
    const MappedDbIndex mapped(path);
    expect_identical(ref, drive(MuBlastpEngine(mapped), queries), "mapped");
    EXPECT_EQ(mapped.num_sequences(), original.db().size());
    EXPECT_GT(mapped.file_bytes(), 0u);
  }
  {
    // Unverified open must serve the same data (it only skips checks).
    MappedDbIndex::Options opts;
    opts.verify_checksums = false;
    const MappedDbIndex lazy(path, opts);
    expect_identical(ref, drive(MuBlastpEngine(lazy), queries),
                     "mapped-unverified");
  }

  // Legacy v2 writer -> v2 reader must also reproduce the search exactly.
  std::stringstream v2buf;
  save_db_index_v2(v2buf, original);
  const DbIndex v2_loaded = load_db_index(v2buf);
  expect_identical(ref, drive(MuBlastpEngine(v2_loaded), queries),
                   "v2-loaded");

  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Shapes, IndexIoRoundTrip,
                         ::testing::ValuesIn(kShapes),
                         [](const auto& info) {
                           return std::string(info.param.label);
                         });

TEST(IndexIoRoundTrip, SingleSequenceDatabase) {
  const SequenceStore pool =
      synth::generate_database(synth::sprot_like(5000), 211);
  SequenceStore db;
  db.add(pool.sequence(0), "");  // also exercises an empty FASTA name
  DbIndexConfig cfg;
  cfg.block_bytes = 4096;
  const DbIndex original = DbIndex::build(db, cfg);

  Rng rng(212);
  const SequenceStore queries = synth::sample_queries(db, 2, 32, rng);
  const RunOutput ref = drive(MuBlastpEngine(original), queries);

  const std::string path = temp_path("single_seq");
  save_db_index_file(path, original);
  const DbIndex loaded = load_db_index_file(path);
  EXPECT_EQ(loaded.db().name(0), "");
  expect_identical(ref, drive(MuBlastpEngine(loaded), queries), "file");
  const MappedDbIndex mapped(path);
  EXPECT_EQ(DbIndexView(mapped).name(0), "");
  expect_identical(ref, drive(MuBlastpEngine(mapped), queries), "mapped");
  std::remove(path.c_str());
}

TEST(IndexIoRoundTrip, SingleLongFragmentedSequence) {
  // One sequence far above the fragment limit: every block entry goes
  // through the fragment/assembly machinery.
  const SequenceStore pool =
      synth::generate_database(synth::sprot_like(60000), 213);
  SeqId longest = 0;
  for (SeqId i = 0; i < pool.size(); ++i) {
    if (pool.length(i) > pool.length(longest)) longest = i;
  }
  SequenceStore db;
  db.add(pool.sequence(longest), "the_long_one");
  DbIndexConfig cfg;
  cfg.block_bytes = 4096;
  cfg.long_seq_limit = 128;
  cfg.long_seq_overlap = 24;
  const DbIndex original = DbIndex::build(db, cfg);
  ASSERT_GT(original.blocks().size(), 0u);

  Rng rng(214);
  const SequenceStore queries = synth::sample_queries(db, 2, 48, rng);
  const RunOutput ref = drive(MuBlastpEngine(original), queries);
  const std::string path = temp_path("long_frag");
  save_db_index_file(path, original);
  expect_identical(ref,
                   drive(MuBlastpEngine(load_db_index_file(path)), queries),
                   "file");
  const MappedDbIndex mapped(path);
  expect_identical(ref, drive(MuBlastpEngine(mapped), queries), "mapped");
  std::remove(path.c_str());
}

TEST(IndexIoRoundTrip, EmptyDatabaseIsRejectedAtBuild) {
  // There is no such thing as an empty index file: an empty store cannot be
  // indexed, so the whole save/load surface never sees a zero-sequence DB.
  const SequenceStore empty;
  EXPECT_THROW(DbIndex::build(empty, {}), Error);
}

TEST(IndexIoRoundTrip, V2FixtureStillLoads) {
  // A v2 file produced by the legacy writer is checked into tests/data/ so
  // forward compatibility is pinned by bytes on disk, not by the current
  // writer's behaviour.
  const std::string path = std::string(MUBLASTP_TEST_DATA_DIR) +
                           "/tiny_v2.mbi";
  const DbIndex loaded = load_db_index_file(path);
  ASSERT_EQ(loaded.db().size(), 4u);
  EXPECT_EQ(loaded.config().block_bytes, 4096u);

  // Reconstruct the original-order store through the id maps and rebuild;
  // the fixture index must search exactly like a fresh build of its DB.
  SequenceStore original_db;
  for (SeqId orig = 0; orig < loaded.db().size(); ++orig) {
    const SeqId sorted = loaded.sorted_id(orig);
    original_db.add(loaded.db().sequence(sorted), loaded.db().name(sorted));
  }
  EXPECT_EQ(original_db.name(0), "fix_helix");
  const DbIndex rebuilt = DbIndex::build(original_db, loaded.config());

  Rng rng(215);
  const SequenceStore queries = synth::sample_queries(original_db, 2, 24, rng);
  expect_identical(drive(MuBlastpEngine(rebuilt), queries),
                   drive(MuBlastpEngine(loaded), queries), "v2 fixture");
}

TEST(IndexIoRoundTrip, DescribeReportsSectionsForV3AndVersionForV2) {
  const SequenceStore db =
      synth::generate_database(synth::sprot_like(5000), 216);
  DbIndexConfig cfg;
  cfg.block_bytes = 4096;
  const DbIndex index = DbIndex::build(db, cfg);

  const std::string v3_path = temp_path("describe_v3");
  save_db_index_file(v3_path, index);
  const DbIndexFileInfo v3 = describe_db_index_file(v3_path);
  EXPECT_EQ(v3.version, kDbIndexFormatVersion);
  EXPECT_EQ(v3.sections.size(), 11u);
  for (const IndexSectionInfo& s : v3.sections) {
    EXPECT_NE(s.name, "unknown");
    EXPECT_EQ(s.offset % kSectionAlign, 0u) << s.name;
    EXPECT_LE(s.offset + s.length, v3.file_bytes) << s.name;
  }

  const std::string v2_path = temp_path("describe_v2");
  {
    std::ofstream out(v2_path, std::ios::binary);
    save_db_index_v2(out, index);
  }
  const DbIndexFileInfo v2 = describe_db_index_file(v2_path);
  EXPECT_EQ(v2.version, 2u);
  EXPECT_TRUE(v2.sections.empty());
  std::remove(v3_path.c_str());
  std::remove(v2_path.c_str());
}

}  // namespace
}  // namespace mublastp
