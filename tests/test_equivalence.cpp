// The paper's Section V-E verification: every optimization preserves
// outputs. The three engines (query-indexed NCBI, interleaved NCBI-db,
// muBLASTP in all its pipeline variants) must produce identical stage-2
// ungapped alignments and identical final gapped alignments on the same
// inputs.
#include <gtest/gtest.h>

#include "baseline/interleaved_engine.hpp"
#include "baseline/query_engine.hpp"
#include "common/rng.hpp"
#include "core/mublastp_engine.hpp"
#include "synth/synth.hpp"

namespace mublastp {
namespace {

void expect_same_ungapped(const QueryResult& a, const QueryResult& b,
                          const char* label) {
  ASSERT_EQ(a.ungapped.size(), b.ungapped.size()) << label;
  for (std::size_t i = 0; i < a.ungapped.size(); ++i) {
    EXPECT_EQ(a.ungapped[i], b.ungapped[i]) << label << " seg " << i;
  }
}

void expect_same_alignments(const QueryResult& a, const QueryResult& b,
                            const char* label) {
  ASSERT_EQ(a.alignments.size(), b.alignments.size()) << label;
  for (std::size_t i = 0; i < a.alignments.size(); ++i) {
    const GappedAlignment& x = a.alignments[i];
    const GappedAlignment& y = b.alignments[i];
    EXPECT_EQ(x.subject, y.subject) << label << " aln " << i;
    EXPECT_EQ(x.score, y.score) << label << " aln " << i;
    EXPECT_EQ(x.q_start, y.q_start) << label << " aln " << i;
    EXPECT_EQ(x.q_end, y.q_end) << label << " aln " << i;
    EXPECT_EQ(x.s_start, y.s_start) << label << " aln " << i;
    EXPECT_EQ(x.s_end, y.s_end) << label << " aln " << i;
    EXPECT_EQ(x.ops, y.ops) << label << " aln " << i;
  }
}

struct EquivCase {
  std::uint64_t seed;
  std::size_t db_residues;
  std::size_t query_len;
  std::size_t block_bytes;
};

class EngineEquivalence : public ::testing::TestWithParam<EquivCase> {
 protected:
  void SetUp() override {
    const EquivCase& c = GetParam();
    db_ = synth::generate_database(synth::sprot_like(c.db_residues), c.seed);
    Rng rng(c.seed ^ 0x5eed);
    queries_ = synth::sample_queries(db_, 3, c.query_len, rng);
    DbIndexConfig cfg;
    cfg.block_bytes = c.block_bytes;
    index_ = std::make_unique<DbIndex>(DbIndex::build(db_, cfg));
  }

  SequenceStore db_;
  SequenceStore queries_;
  std::unique_ptr<DbIndex> index_;
};

TEST_P(EngineEquivalence, AllEnginesAgreeOnEveryStage) {
  const QueryIndexedEngine ncbi(db_);
  const QueryIndexedEngine ncbi_dfa(db_, {}, kDefaultNeighborThreshold,
                                    QueryIndexedEngine::Detector::kDfa);
  const InterleavedDbEngine ncbi_db(*index_);
  const MuBlastpEngine mu(*index_);

  MuBlastpOptions no_prefilter;
  no_prefilter.prefilter = false;
  const MuBlastpEngine mu_nopf(*index_, {}, no_prefilter);

  for (SeqId q = 0; q < queries_.size(); ++q) {
    const auto query = queries_.sequence(q);
    const QueryResult r_ncbi = ncbi.search(query);
    const QueryResult r_dfa = ncbi_dfa.search(query);
    const QueryResult r_db = ncbi_db.search(query);
    const QueryResult r_mu = mu.search(query);
    const QueryResult r_mu_nopf = mu_nopf.search(query);
    expect_same_ungapped(r_ncbi, r_dfa, "lookup vs dfa");
    expect_same_alignments(r_ncbi, r_dfa, "lookup vs dfa");

    // Stage-1/2 counters: all database-indexed paths see the same hits.
    EXPECT_EQ(r_db.stats.hits, r_mu.stats.hits);
    EXPECT_EQ(r_db.stats.hit_pairs, r_mu.stats.hit_pairs);
    EXPECT_EQ(r_mu.stats.hit_pairs, r_mu_nopf.stats.hit_pairs);
    // The query-indexed engine sees the same hit set too (symmetric
    // neighbor relation).
    EXPECT_EQ(r_ncbi.stats.hits, r_db.stats.hits);

    // Stage-2 output identity.
    expect_same_ungapped(r_ncbi, r_db, "ncbi vs ncbi-db");
    expect_same_ungapped(r_db, r_mu, "ncbi-db vs mublastp");
    expect_same_ungapped(r_mu, r_mu_nopf, "prefilter vs postfilter");

    // Final output identity.
    expect_same_alignments(r_ncbi, r_db, "ncbi vs ncbi-db");
    expect_same_alignments(r_db, r_mu, "ncbi-db vs mublastp");
    expect_same_alignments(r_mu, r_mu_nopf, "prefilter vs postfilter");
  }
}

TEST_P(EngineEquivalence, AllSortAlgorithmsAgree) {
  const MuBlastpEngine lsd(*index_);
  MuBlastpOptions o;
  o.sort_algo = MuBlastpOptions::SortAlgo::kRadixMsd;
  const MuBlastpEngine msd(*index_, {}, o);
  o.sort_algo = MuBlastpOptions::SortAlgo::kMergeSort;
  const MuBlastpEngine merge(*index_, {}, o);
  o.sort_algo = MuBlastpOptions::SortAlgo::kStdStable;
  const MuBlastpEngine stds(*index_, {}, o);

  const auto query = queries_.sequence(0);
  const QueryResult a = lsd.search(query);
  const QueryResult b = msd.search(query);
  const QueryResult c = merge.search(query);
  const QueryResult d = stds.search(query);
  expect_same_ungapped(a, b, "lsd vs msd");
  expect_same_ungapped(a, c, "lsd vs merge");
  expect_same_ungapped(a, d, "lsd vs std");
  expect_same_alignments(a, b, "lsd vs msd");
  expect_same_alignments(a, c, "lsd vs merge");
  expect_same_alignments(a, d, "lsd vs std");
}

TEST_P(EngineEquivalence, BlockSizeDoesNotChangeResults) {
  const MuBlastpEngine base(*index_);
  DbIndexConfig other;
  other.block_bytes = GetParam().block_bytes * 4;
  const DbIndex index2 = DbIndex::build(db_, other);
  const MuBlastpEngine engine2(index2);
  for (SeqId q = 0; q < queries_.size(); ++q) {
    const auto query = queries_.sequence(q);
    const QueryResult a = base.search(query);
    const QueryResult b = engine2.search(query);
    expect_same_ungapped(a, b, "block size");
    expect_same_alignments(a, b, "block size");
  }
}

TEST_P(EngineEquivalence, BatchMatchesSingleQuerySearch) {
  const MuBlastpEngine mu(*index_);
  const auto batch = mu.search_batch(queries_, 4);
  ASSERT_EQ(batch.size(), queries_.size());
  for (SeqId q = 0; q < queries_.size(); ++q) {
    const QueryResult single = mu.search(queries_.sequence(q));
    expect_same_ungapped(batch[q], single, "batch vs single");
    expect_same_alignments(batch[q], single, "batch vs single");
    EXPECT_EQ(batch[q].stats.hits, single.stats.hits);
  }
}

TEST_P(EngineEquivalence, TracedSearchMatchesPlainSearch) {
  const MuBlastpEngine mu(*index_);
  memsim::MemoryHierarchy h;
  const auto query = queries_.sequence(0);
  const QueryResult plain = mu.search(query);
  const QueryResult traced = mu.search_traced(query, h);
  expect_same_ungapped(plain, traced, "traced");
  expect_same_alignments(plain, traced, "traced");
  EXPECT_GT(h.stats().references, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EngineEquivalence,
    ::testing::Values(EquivCase{101, 60000, 64, 16 * 1024},
                      EquivCase{202, 120000, 128, 32 * 1024},
                      EquivCase{303, 120000, 256, 64 * 1024},
                      EquivCase{404, 250000, 128, 128 * 1024},
                      EquivCase{505, 60000, 48, 8 * 1024}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace mublastp
